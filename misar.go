// Package misar is a from-scratch reproduction of "MiSAR: Minimalistic
// Synchronization Accelerator with Resource Overflow Management" (Liang &
// Prvulovic, ISCA 2015) as a Go library.
//
// The package models a tiled many-core processor — cores with private L1
// caches, a distributed directory-coherent LLC, and a 2D-mesh NoC — extended
// with the paper's Minimalistic Synchronization Accelerator (MSA) and
// Overflow Management Unit (OMU): a per-tile accelerator with a handful of
// entries that serves locks, barriers, and condition variables in hardware,
// falling back safely and dynamically to a software (pthreads-style)
// implementation when its resources overflow.
//
// # Quick start
//
//	m := misar.New(misar.MSAOMU(16, 2))
//	arena := misar.NewArena(0x100000)
//	lock := arena.Mutex()
//	lib := misar.HWLib()
//	m.SpawnAll(16, func(tid int, e misar.Env) {
//		rt := lib.Bind(e, arena.QNode())
//		rt.Lock(lock)
//		e.Store(0x200000, e.Load(0x200000)+1)
//		rt.Unlock(lock)
//	})
//	cycles, err := m.Run(misar.RunDeadline)
//
// Simulated threads are ordinary Go functions: they receive an Env through
// which they issue timed computation, memory accesses against the simulated
// coherent memory, and the six MiSAR synchronization instructions (via the
// syncrt library types, which implement the paper's Algorithms 1-3:
// hardware first, software fallback on FAIL/ABORT).
//
// Machine variants mirror the paper's evaluation: MSAOMU(tiles, entries),
// MSA0 (instructions always fail locally), MSAInf (unbounded entries),
// Ideal (zero-latency synchronization), plus the WithoutOMU, WithoutHWSync,
// LockOnly and BarrierOnly ablation transforms. The workload suite and the
// per-figure experiment harness are exposed through subordinate helpers;
// see cmd/misar-fig to regenerate every table and figure of the paper.
package misar

import (
	"misar/internal/cpu"
	"misar/internal/harness"
	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/metrics"
	"misar/internal/sim"
	"misar/internal/stats"
	"misar/internal/store"
	"misar/internal/syncrt"
	"misar/internal/trace"
	"misar/internal/verify"
	"misar/internal/workload"
)

// Core model types, re-exported for library users.
type (
	// Config describes a machine (tile count, NoC/cache/MSA/CPU settings).
	Config = machine.Config
	// Machine is a fully wired model instance.
	Machine = machine.Machine
	// Env is the execution environment a simulated thread sees.
	Env = cpu.Env
	// Thread is a simulated software thread (for suspend/resume/migration).
	Thread = cpu.Thread
	// Time is the simulated clock in cycles.
	Time = sim.Time
	// Addr is a simulated physical address.
	Addr = memory.Addr

	// Lib is a synchronization-library configuration; T its per-thread
	// binding with Lock/Unlock/Wait/CondWait/CondSignal/CondBroadcast.
	Lib = syncrt.Lib
	T   = syncrt.T
	// Mutex, Cond and Barrier are synchronization variable descriptors.
	Mutex   = syncrt.Mutex
	Cond    = syncrt.Cond
	Barrier = syncrt.Barrier
	// Arena hands out non-overlapping simulated addresses.
	Arena = syncrt.Arena

	// App is a runnable benchmark program from the workload suite.
	App = workload.App
	// Table is a rendered experiment result.
	Table = stats.Table
	// Options scales harness experiments.
	Options = harness.Options
	// TraceBuffer records protocol events (see Machine.AttachTracer and
	// cmd/misar-trace).
	TraceBuffer = trace.Buffer
	// Histogram is a power-of-two bucketed latency histogram.
	Histogram = stats.Histogram

	// MetricsRegistry holds a metered machine's instruments (set
	// Config.Metrics, then read Machine.Metrics).
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of every instrument.
	MetricsSnapshot = metrics.Snapshot
	// MetricsReport is the per-run JSON observability artifact (see
	// Machine.MetricsReport and Runner.Reports).
	MetricsReport = metrics.Report
)

// RunDeadline is a generous default bound for Machine.Run.
const RunDeadline = workload.RunDeadline

// New builds a machine from a configuration.
func New(cfg Config) *Machine { return machine.New(cfg) }

// Machine configurations (paper §6).
var (
	// Default is the headline MSA/OMU-2 machine.
	Default = machine.Default
	// MSAOMU is the MSA/OMU-N configuration.
	MSAOMU = machine.MSAOMU
	// MSA0 makes every synchronization instruction FAIL locally.
	MSA0 = machine.MSA0
	// MSAInf gives the accelerator unbounded entries.
	MSAInf = machine.MSAInf
	// Ideal resolves synchronization with zero latency.
	Ideal = machine.Ideal
	// WithoutOMU disables overflow management (Fig. 7 baseline).
	WithoutOMU = machine.WithoutOMU
	// WithoutHWSync disables the §5 optimization (Fig. 8 baseline).
	WithoutHWSync = machine.WithoutHWSync
	// LockOnly/BarrierOnly restrict accelerated types (Fig. 9).
	LockOnly    = machine.LockOnly
	BarrierOnly = machine.BarrierOnly
	// WithBloomOMU swaps in the counting-Bloom-filter OMU (§3.2).
	WithBloomOMU = machine.WithBloomOMU
	// WithFixedPriority replaces NBTC round-robin grants (ablation A3).
	WithFixedPriority = machine.WithFixedPriority
	// SaveConfig/LoadConfig serialize machine configurations as JSON.
	SaveConfig = machine.SaveConfig
	LoadConfig = machine.LoadConfig
	// NewTraceBuffer creates a bounded protocol-event recorder.
	NewTraceBuffer = trace.NewBuffer
	// NewMetricsRegistry builds an empty metrics registry.
	NewMetricsRegistry = metrics.NewRegistry
	// WriteChromeTrace renders recorded events as Chrome trace-event JSON
	// (Perfetto-loadable).
	WriteChromeTrace = trace.WriteChrome
)

// Synchronization libraries (the paper's software baselines and the
// modified hardware-first library of Algorithms 1-3).
var (
	PthreadLib = syncrt.PthreadLib
	SpinLib    = syncrt.SpinLib
	MCSTourLib = syncrt.MCSTourLib
	MCSTreeLib = syncrt.MCSTreeLib
	HWLib      = syncrt.HWLib
)

// Condition-variable semantics (set Lib.Cond).
const (
	CondMesa       = syncrt.CondMesa
	CondNoSpurious = syncrt.CondNoSpurious
)

// Latency histogram classes (see Machine.Latency).
const (
	LatLock    = cpu.LatLock
	LatUnlock  = cpu.LatUnlock
	LatBarrier = cpu.LatBarrier
	LatCond    = cpu.LatCond
)

// NewArena starts a synchronization-variable allocator at base.
func NewArena(base Addr) *Arena { return syncrt.NewArena(base) }

// Workload suite access.
var (
	// Suite returns every benchmark profile of the evaluation.
	Suite = workload.Suite
	// AppByName finds one benchmark by its paper name.
	AppByName = workload.ByName
	// RunApp executes an app on a fresh machine.
	RunApp = workload.Run
)

// Experiment harness: one entry per paper artifact. Each figure returns
// (*stats.Table, error); Options.Parallel sizes the worker pool these
// package-level entry points use. To share one memoization cache across
// several figures, build a Runner and call its methods instead.
var (
	Table1         = harness.Table1
	Fig5           = harness.Fig5
	Fig6           = harness.Fig6
	Fig7           = harness.Fig7
	Fig8           = harness.Fig8
	Fig9           = harness.Fig9
	Headline       = harness.Headline
	OMUSweep       = harness.OMUSweep
	BloomSweep     = harness.BloomSweep
	EntrySweep     = harness.EntrySweep
	Fairness       = harness.Fairness
	SuspendStress  = harness.SuspendStress
	SyncOverhead   = harness.SyncOverhead
	DefaultOptions = harness.DefaultOptions
	QuickOptions   = harness.QuickOptions
	// ScaleSweep measures the sharded kernel's wall-clock scaling at
	// machine sizes beyond the paper's evaluation (256/1024 tiles).
	ScaleSweep = harness.ScaleSweep
	// ShardTransform is the Runner config transform that moves every
	// compatible simulation onto the N-shard conservative kernel.
	ShardTransform = harness.ShardTransform
	// NewRunner builds the parallel, memoizing experiment executor.
	NewRunner = harness.NewRunner
)

// Runner is the parallel, memoizing experiment executor: a worker pool
// that simulates each unique (app, config, tiles, library) combination
// exactly once, sharing results (e.g. the pthread baseline) across
// figures. ProgressEvent and RunnerStats expose its per-run reporting and
// cache counters.
type (
	Runner        = harness.Runner
	ProgressEvent = harness.ProgressEvent
	RunnerStats   = harness.RunnerStats
)

// Store is the content-addressed, disk-persistent result store. Attach one
// to a Runner with SetStore and identical simulations are served from disk
// across processes and restarts (misar-fig -store, misar-served -store).
type Store = store.Store

// OpenStore opens a persistent result store rooted at dir, creating the
// directory if needed. Multiple processes may share one store directory.
var OpenStore = store.Open

// VerifyModels returns the shipped protocol models (MESI, OMU exclusivity,
// MSA lock mutex, barrier epochs) for the counter-abstraction model checker,
// and CertifyModels explores them all — plus their deliberately-broken
// variants — into a JSON-ready certificate (see DESIGN.md §12 and
// cmd/misar-verify).
var (
	VerifyModels  = verify.Models
	CertifyModels = verify.Certify
)
