GO ?= go

.PHONY: all build test race bench chaos figs serve clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/harness/... ./internal/sim/... ./internal/metrics/... ./internal/trace/... ./internal/service/... ./internal/store/...

# bench renders every figure once (-benchtime=1x) plus the event-kernel
# microbenchmarks and writes BENCH_kernel.json with speedup/alloc ratios
# against the checked-in seed-kernel baseline.
bench:
	$(GO) run ./cmd/misar-bench -benchtime 1x -out BENCH_kernel.json

# chaos runs the seeded fault-injection campaign (must pass) plus the
# broken-OMU detection selftest (must be caught); see DESIGN.md §10.
chaos:
	$(GO) run ./cmd/misar-chaos -seeds 200 -out CHAOS.json
	$(GO) run ./cmd/misar-chaos -seeds 30 -broken -quiet -out CHAOS_broken.json

figs:
	$(GO) run ./cmd/misar-fig -fig all

# serve starts the simulation job server with a persistent result store;
# see DESIGN.md §11 and README "Running as a service".
serve:
	$(GO) run ./cmd/misar-served -addr :8091 -store misar-store

clean:
	rm -f BENCH_kernel.json CHAOS.json CHAOS_broken.json
