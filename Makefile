GO ?= go

.PHONY: all build test race bench figs clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/harness/... ./internal/sim/... ./internal/metrics/... ./internal/trace/...

# bench renders every figure once (-benchtime=1x) plus the event-kernel
# microbenchmarks and writes BENCH_kernel.json with speedup/alloc ratios
# against the checked-in seed-kernel baseline.
bench:
	$(GO) run ./cmd/misar-bench -benchtime 1x -out BENCH_kernel.json

figs:
	$(GO) run ./cmd/misar-fig -fig all

clean:
	rm -f BENCH_kernel.json
