GO ?= go

.PHONY: all build test race bench verify chaos tm figs serve fleet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/harness/... ./internal/sim/... ./internal/metrics/... ./internal/trace/... ./internal/service/... ./internal/store/... ./internal/fleet/...

# bench renders every figure once (-benchtime=1x) plus the event-kernel
# microbenchmarks, gates against the committed BENCH_kernel.json (>15%
# ns/op or allocs/op regression fails), and refreshes the report in place.
bench:
	$(GO) run ./cmd/misar-bench -benchtime 1x -out /tmp/bench_fresh.json -against BENCH_kernel.json
	mv /tmp/bench_fresh.json BENCH_kernel.json

# verify certifies the protocol models by exhaustive counter-abstraction
# model checking, proves the broken variants are detected (expected exit 1),
# and runs the bridge + consistency + fuzz cross-checks; see DESIGN.md §12.
verify:
	$(GO) run ./cmd/misar-verify -o cert.json
	$(GO) run ./cmd/misar-verify -broken > /dev/null; test $$? -eq 1
	$(GO) test ./internal/verify/ ./internal/fault/
	$(GO) test ./internal/verify/ -run '^$$' -fuzz FuzzReachability -fuzztime 30s

# chaos runs the seeded fault-injection campaign (must pass) plus the
# broken-OMU detection selftest (must be caught); see DESIGN.md §10.
chaos:
	$(GO) run ./cmd/misar-chaos -seeds 200 -out CHAOS.json
	$(GO) run ./cmd/misar-chaos -seeds 30 -broken -quiet -out CHAOS_broken.json

# tm exercises the transactional-memory backend end to end: unit + bridge
# tests under the race detector, the tm-commit certification with its broken
# variants (expected exit 1), the TM chaos campaign plus the skipped-
# validation detection selftest, and the three-way figure; see DESIGN.md §16.
tm:
	$(GO) test -race ./internal/tm/ ./internal/verify/ ./internal/chaos/
	$(GO) run ./cmd/misar-verify -model tm-commit -o /dev/null
	$(GO) run ./cmd/misar-verify -model tm-commit -broken > /dev/null; test $$? -eq 1
	$(GO) run ./cmd/misar-chaos -seeds 100 -tm -quiet -out CHAOS_tm.json
	$(GO) run ./cmd/misar-chaos -seeds 30 -broken-tm -quiet -out CHAOS_tm_broken.json
	$(GO) run ./cmd/misar-fig -fig tm -quick

figs:
	$(GO) run ./cmd/misar-fig -fig all

# serve starts the simulation job server with a persistent result store;
# see DESIGN.md §11 and README "Running as a service".
serve:
	$(GO) run ./cmd/misar-served -addr :8091 -store misar-store

# fleet runs the fault-tolerance suite under the race detector: ring,
# membership, and peer-store units, then the multi-process kill-a-node
# stress and the overload-degradation check; see DESIGN.md §15.
fleet:
	$(GO) test -race -v ./internal/fleet ./internal/service/client
	FLEET_TRACE_OUT=/tmp/failover-trace.json $(GO) test -race -count=1 -v ./internal/fleet -run 'TestFleetKillANodeStress'

clean:
	rm -f CHAOS.json CHAOS_broken.json CHAOS_tm.json CHAOS_tm_broken.json cert.json
