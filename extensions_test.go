package misar_test

import (
	"path/filepath"
	"testing"

	"misar"
)

// Exercises the extension surface through the public facade: Bloom OMU,
// tracing, latency histograms, and config serialization.

func TestBloomConfigThroughFacade(t *testing.T) {
	cfg := misar.WithBloomOMU(misar.MSAOMU(8, 2), 2)
	app, _ := misar.AppByName("radiosity")
	m, cycles, err := misar.RunApp(app, cfg, misar.HWLib())
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 || m.Coverage() <= 0 {
		t.Fatal("bloom machine did not run")
	}
}

func TestTracerThroughFacade(t *testing.T) {
	m := misar.New(misar.MSAOMU(4, 2))
	buf := misar.NewTraceBuffer(10_000)
	m.AttachTracer(buf)
	arena := misar.NewArena(0x100000)
	lock := arena.Mutex()
	lib := misar.HWLib()
	qn := arena.QNode()
	m.SpawnAll(1, func(tid int, e misar.Env) {
		rt := lib.Bind(e, qn)
		rt.Lock(lock)
		e.Compute(10)
		rt.Unlock(lock)
	})
	if _, err := m.Run(misar.RunDeadline); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	// The timeline must contain the lock request and its response.
	var sawReq, sawResp bool
	for _, ev := range buf.Events() {
		switch string(ev.Kind) {
		case "req":
			sawReq = true
		case "resp":
			sawResp = true
		}
	}
	if !sawReq || !sawResp {
		t.Fatalf("timeline incomplete: req=%v resp=%v", sawReq, sawResp)
	}
}

func TestConfigIOThroughFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := misar.SaveConfig(path, misar.MSAOMU(16, 2)); err != nil {
		t.Fatal(err)
	}
	cfg, err := misar.LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tiles != 16 || cfg.MSA.Entries != 2 {
		t.Fatalf("config mangled: %+v", cfg)
	}
}

func TestNoSpuriousLibThroughFacade(t *testing.T) {
	lib := misar.HWLib()
	lib.Cond = misar.CondNoSpurious
	m := misar.New(misar.MSAOMU(4, 2))
	arena := misar.NewArena(0x100000)
	lock := arena.Mutex()
	cond := arena.Cond()
	flag := arena.Data(1)
	qn := []misar.Addr{arena.QNode(), arena.QNode()}
	m.SpawnAll(2, func(tid int, e misar.Env) {
		rt := lib.Bind(e, qn[tid])
		if tid == 0 {
			rt.Lock(lock)
			for e.Load(flag) == 0 {
				rt.CondWait(cond, lock)
			}
			rt.Unlock(lock)
			return
		}
		e.Compute(5000)
		rt.Lock(lock)
		e.Store(flag, 1)
		rt.CondSignal(cond)
		rt.Unlock(lock)
	})
	if _, err := m.Run(misar.RunDeadline); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyThroughFacade(t *testing.T) {
	app, _ := misar.AppByName("streamcluster")
	m, _, err := misar.RunApp(app, misar.MSAOMU(8, 2), misar.HWLib())
	if err != nil {
		t.Fatal(err)
	}
	h := m.Latency(misar.LatBarrier)
	if h.Count() == 0 || h.Mean() <= 0 {
		t.Fatalf("barrier latency histogram empty")
	}
}
