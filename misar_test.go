package misar_test

import (
	"fmt"
	"testing"

	"misar"
)

// TestPublicAPIQuickstart is the README quickstart, verbatim.
func TestPublicAPIQuickstart(t *testing.T) {
	m := misar.New(misar.MSAOMU(16, 2))
	arena := misar.NewArena(0x100000)
	lock := arena.Mutex()
	counter := arena.Data(1)
	lib := misar.HWLib()
	qnodes := make([]misar.Addr, 16)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}
	m.SpawnAll(16, func(tid int, e misar.Env) {
		rt := lib.Bind(e, qnodes[tid])
		for i := 0; i < 5; i++ {
			rt.Lock(lock)
			e.Store(counter, e.Load(counter)+1)
			rt.Unlock(lock)
			e.Compute(100)
		}
	})
	cycles, err := m.Run(misar.RunDeadline)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("no time elapsed")
	}
	if got := m.Store.Load(counter); got != 80 {
		t.Fatalf("counter = %d, want 80", got)
	}
	if m.Coverage() < 0.9 {
		t.Fatalf("coverage = %.2f, want >= 0.9 for a single hot lock", m.Coverage())
	}
}

func TestPublicSuite(t *testing.T) {
	if len(misar.Suite()) < 18 {
		t.Fatalf("suite has %d apps", len(misar.Suite()))
	}
	if _, ok := misar.AppByName("streamcluster"); !ok {
		t.Fatal("streamcluster missing")
	}
	if _, ok := misar.AppByName("nope"); ok {
		t.Fatal("unknown app found")
	}
}

func TestPublicAppRun(t *testing.T) {
	app, _ := misar.AppByName("streamcluster")
	m, cycles, err := misar.RunApp(app, misar.MSAOMU(8, 2), misar.HWLib())
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 || m.SyncOps() == 0 {
		t.Fatal("app did not execute")
	}
}

func ExampleNew() {
	m := misar.New(misar.MSAOMU(4, 2))
	arena := misar.NewArena(0x100000)
	bar := arena.Barrier(4)
	lib := misar.HWLib()
	qnodes := make([]misar.Addr, 4)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}
	order := arena.Data(1)
	m.SpawnAll(4, func(tid int, e misar.Env) {
		rt := lib.Bind(e, qnodes[tid])
		e.Compute(uint64(100 * (tid + 1)))
		rt.Wait(bar)
		e.FetchAdd(order, 1)
	})
	if _, err := m.Run(misar.RunDeadline); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("arrived:", m.Store.Load(order))
	// Output: arrived: 4
}
