// Package workload provides the benchmark programs of the evaluation: the
// Fig. 5 raw-latency microbenchmarks and a suite of synthetic application
// profiles standing in for Splash-2 and PARSEC (see DESIGN.md, substitution
// table). Each profile reproduces the *synchronization signature* the paper
// describes for its namesake — how many locks, how contended, how often
// barriers fire, how much computation separates operations — because those
// signatures, not the numerical kernels, determine the paper's results.
package workload

import (
	"context"
	"fmt"

	"misar/internal/cpu"
	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/obs"
	"misar/internal/sim"
	"misar/internal/syncrt"
)

// RunDeadline bounds any single benchmark run.
const RunDeadline = sim.Time(3_000_000_000)

// App is a runnable multithreaded program.
type App struct {
	Name string
	// SyncSensitive marks the benchmarks the paper shows individually in
	// Fig. 6 (those with >= 4% Ideal benefit).
	SyncSensitive bool
	// Build allocates the program's shared state from the arena and
	// returns the per-thread body. threads == machine tiles.
	Build func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(tid int, e cpu.Env)
}

// Run executes the app on a fresh machine built from cfg and returns the
// completion cycle.
func Run(app App, cfg machine.Config, lib *syncrt.Lib) (*machine.Machine, sim.Time, error) {
	return RunBudget(app, cfg, lib, RunDeadline)
}

// RunBudget is Run with an explicit cycle budget. Fault-injection campaigns
// use budgets far below RunDeadline so a hung seed fails fast — with a
// watchdog diagnosis — instead of burning the full default bound.
func RunBudget(app App, cfg machine.Config, lib *syncrt.Lib, deadline sim.Time) (*machine.Machine, sim.Time, error) {
	return RunBudgetCtx(context.Background(), app, cfg, lib, deadline)
}

// RunBudgetCtx is RunBudget with caller cancellation: when ctx ends before
// the run completes, the machine is torn down and the error is a
// *machine.CancelError (see machine.RunCtx). The serving layer threads
// per-job contexts through here so an abandoned job stops consuming a
// worker.
func RunBudgetCtx(ctx context.Context, app App, cfg machine.Config, lib *syncrt.Lib, deadline sim.Time) (*machine.Machine, sim.Time, error) {
	build := obs.StartSpan(ctx, "sim", "sim.build")
	m := machine.New(cfg)
	arena := syncrt.NewArena(0x1000000)
	body := app.Build(arena, cfg.Tiles, lib)
	m.SpawnAll(cfg.Tiles, body)
	build.SetArg("app", app.Name)
	build.SetArg("config", cfg.Name)
	build.End()
	run := obs.StartSpan(ctx, "sim", "sim.run")
	end, err := m.RunCtx(ctx, deadline)
	run.SetArg("app", app.Name)
	run.SetArg("config", cfg.Name)
	run.SetArg("cycles", fmt.Sprint(uint64(end)))
	run.End()
	return m, end, err
}

// hash64 is a deterministic per-thread mixing function used for workload
// jitter (no global RNG: runs must be reproducible).
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// jitter returns a deterministic value in [0, n) from (tid, i).
func jitter(tid, i, n int) uint64 {
	if n <= 0 {
		return 0
	}
	return hash64(uint64(tid)*0x9E3779B97F4A7C15+uint64(i)) % uint64(n)
}

// bindQNodes pre-allocates one MCS queue-node line per thread.
func bindQNodes(a *syncrt.Arena, threads int) []memory.Addr {
	qn := make([]memory.Addr, threads)
	for i := range qn {
		qn[i] = a.QNode()
	}
	return qn
}

// initVars model a program's startup phase: one-shot initialization locks
// and a setup barrier, each touched exactly once. They matter for the
// overflow study (Fig. 7): without the OMU, these first-touched addresses
// permanently occupy MSA entries that the steady-state synchronization then
// cannot use (paper §3.2).
type initVars struct {
	locks []syncrt.Mutex
	bar   syncrt.Barrier
}

func newInitVars(a *syncrt.Arena, threads int) initVars {
	return initVars{locks: a.MutexArray(threads * 2), bar: a.Barrier(threads)}
}

// run executes the startup phase on one thread.
func (iv initVars) run(tid int, rt *syncrt.T, e cpu.Env) {
	for k := 0; k < 2; k++ {
		l := iv.locks[tid*2+k]
		rt.Critical(l, func() {
			e.Compute(60) // initialize a shared structure
		})
		e.Compute(300)
	}
	rt.Wait(iv.bar)
}
