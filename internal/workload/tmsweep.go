package workload

import (
	"fmt"

	"misar/internal/cpu"
	"misar/internal/syncrt"
)

// TMSweepApp builds the contention-parameterized workload behind the
// three-way lock/MSA/TM evaluation (harness.TMSweep). Each thread performs a
// fixed number of critical sections; a fraction hotPermille/1000 of them
// read-modify-write two words of a four-word hot set shared by every thread
// (under locks these serialize on one hot mutex; under TM they conflict on
// data and abort/retry), and the rest update a thread-private word under a
// private mutex (lock-free of contention, conflict-free under TM).
//
// The hot section's two-word update is deliberately not a blind increment:
// the second word's new value depends on the first word's old one, so a TM
// interleaving that misses a conflict would corrupt the sum — exactly what
// the tm-commit model's stale-commit state abstracts.
func TMSweepApp(hotPermille int) App {
	if hotPermille < 0 {
		hotPermille = 0
	}
	if hotPermille > 1000 {
		hotPermille = 1000
	}
	name := fmt.Sprintf("tm-sweep-%03d", hotPermille)
	return App{Name: name, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		hotLock := a.Mutex()
		ownLocks := a.MutexArray(threads)
		hotWords := a.DataArray(4)
		ownWords := a.DataArray(threads)
		bar := a.Barrier(threads)
		const ops = 40
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			for i := 0; i < ops; i++ {
				if jitter(tid, i, 1000) < uint64(hotPermille) {
					w1 := int(jitter(tid, i*3+1, 4))
					w2 := (w1 + 1) % 4
					rt.Critical(hotLock, func() {
						v := rt.Load(hotWords[w1])
						rt.Store(hotWords[w1], v+1)
						rt.Store(hotWords[w2], rt.Load(hotWords[w2])+v)
						e.Compute(40) // update shared statistics
					})
				} else {
					rt.Critical(ownLocks[tid], func() {
						rt.Store(ownWords[tid], rt.Load(ownWords[tid])+1)
						e.Compute(40)
					})
				}
				e.Compute(220 + jitter(tid, i*7, 120)) // between-section work
			}
			rt.Wait(bar)
		}
	}}
}
