package workload

import (
	"fmt"
	"sort"

	"misar/internal/cpu"
	"misar/internal/machine"
	"misar/internal/metrics"
	"misar/internal/sim"
	"misar/internal/syncrt"
)

// Fig. 5 raw synchronization latency microbenchmarks. Each returns the mean
// cycle count of the measured interval, mirroring the paper's definitions:
//
//	LockAcquire    — no contention: time inside lock() (disjoint per-thread
//	                 locks).
//	LockHandoff    — high contention: cycle unlock() is entered to cycle the
//	                 released lock() exits (all threads on one lock).
//	BarrierHandoff — cycle the last-arriving thread enters barrier() to the
//	                 cycle the last thread exits.
//	CondSignal     — entering cond_signal() to exit of the released
//	                 cond_wait().
//	CondBroadcast  — entering cond_broadcast() to exit of the last released
//	                 cond_wait().
type MicroResult struct {
	Name    string
	Cycles  float64 // mean measured latency
	Samples int
	// Report carries the machine-wide metrics snapshot when cfg.Metrics is
	// set; nil otherwise.
	Report *metrics.Report
}

// event records a timestamped measurement point. The simulation is single
// threaded, so Go-side slices can be shared safely across thread bodies.
type event struct {
	at   sim.Time
	kind int
	tid  int
}

const (
	evUnlockEnter = iota
	evLockExit
	evBarrierEnter
	evBarrierExit
	evSignalEnter
	evWaitExit
)

// MicroLockAcquire measures the uncontended acquire path.
func MicroLockAcquire(cfg machine.Config, lib *syncrt.Lib) MicroResult {
	const iters = 30
	m := machine.New(cfg)
	a := syncrt.NewArena(0x1000000)
	threads := cfg.Tiles
	locks := make([]syncrt.Mutex, threads)
	for i := range locks {
		locks[i] = a.Mutex()
	}
	qn := bindQNodes(a, threads)
	total := make([]sim.Time, threads)
	n := make([]int, threads)
	m.SpawnAll(threads, func(tid int, e cpu.Env) {
		rt := lib.Bind(e, qn[tid])
		for i := 0; i < iters; i++ {
			t0 := e.Now()
			rt.Lock(locks[tid])
			if i >= 2 { // skip cold-miss warmup
				total[tid] += e.Now() - t0
				n[tid]++
			}
			e.Compute(20)
			rt.Unlock(locks[tid])
			e.Compute(50)
		}
	})
	mustRun(m, "LockAcquire")
	rep := m.MetricsReport("micro", "LockAcquire", lib.Desc())
	var sum sim.Time
	var cnt int
	for i := range total {
		sum += total[i]
		cnt += n[i]
	}
	return MicroResult{Name: "LockAcquire", Cycles: float64(sum) / float64(cnt), Samples: cnt, Report: rep}
}

// MicroLockHandoff measures contended lock handoff.
func MicroLockHandoff(cfg machine.Config, lib *syncrt.Lib) MicroResult {
	const iters = 12
	m := machine.New(cfg)
	a := syncrt.NewArena(0x1000000)
	threads := cfg.Tiles
	lock := a.Mutex()
	qn := bindQNodes(a, threads)
	var events []event
	m.SpawnAll(threads, func(tid int, e cpu.Env) {
		rt := lib.Bind(e, qn[tid])
		for i := 0; i < iters; i++ {
			rt.Lock(lock)
			events = append(events, event{at: e.Now(), kind: evLockExit, tid: tid})
			e.Compute(30) // critical section
			events = append(events, event{at: e.Now(), kind: evUnlockEnter, tid: tid})
			rt.Unlock(lock)
			e.Compute(10)
		}
	})
	mustRun(m, "LockHandoff")
	rep := m.MetricsReport("micro", "LockHandoff", lib.Desc())
	// Handoff = time from an unlock-enter to the next lock-exit (by a
	// different thread). Sort by time; pair consecutive events.
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	var sum sim.Time
	cnt := 0
	var pendingRelease *event
	for i := range events {
		ev := events[i]
		switch ev.kind {
		case evUnlockEnter:
			pendingRelease = &events[i]
		case evLockExit:
			if pendingRelease != nil && ev.tid != pendingRelease.tid {
				sum += ev.at - pendingRelease.at
				cnt++
			}
			pendingRelease = nil
		}
	}
	if cnt == 0 {
		return MicroResult{Name: "LockHandoff", Cycles: 0, Report: rep}
	}
	return MicroResult{Name: "LockHandoff", Cycles: float64(sum) / float64(cnt), Samples: cnt, Report: rep}
}

// MicroBarrierHandoff measures barrier release latency.
func MicroBarrierHandoff(cfg machine.Config, lib *syncrt.Lib) MicroResult {
	const episodes = 10
	m := machine.New(cfg)
	a := syncrt.NewArena(0x1000000)
	threads := cfg.Tiles
	bar := a.Barrier(threads)
	qn := bindQNodes(a, threads)
	enters := make([][]sim.Time, episodes)
	exits := make([][]sim.Time, episodes)
	for i := range enters {
		enters[i] = make([]sim.Time, threads)
		exits[i] = make([]sim.Time, threads)
	}
	m.SpawnAll(threads, func(tid int, e cpu.Env) {
		rt := lib.Bind(e, qn[tid])
		for ep := 0; ep < episodes; ep++ {
			// Stagger arrivals so the last arrival is well defined.
			e.Compute(100 + uint64(tid)*37 + jitter(tid, ep, 50))
			enters[ep][tid] = e.Now()
			rt.Wait(bar)
			exits[ep][tid] = e.Now()
		}
	})
	mustRun(m, "BarrierHandoff")
	rep := m.MetricsReport("micro", "BarrierHandoff", lib.Desc())
	var sum sim.Time
	cnt := 0
	for ep := 2; ep < episodes; ep++ { // skip warmup episodes
		lastEnter, lastExit := sim.Time(0), sim.Time(0)
		for t := 0; t < threads; t++ {
			if enters[ep][t] > lastEnter {
				lastEnter = enters[ep][t]
			}
			if exits[ep][t] > lastExit {
				lastExit = exits[ep][t]
			}
		}
		sum += lastExit - lastEnter
		cnt++
	}
	return MicroResult{Name: "BarrierHandoff", Cycles: float64(sum) / float64(cnt), Samples: cnt, Report: rep}
}

// MicroCondSignal measures signal-to-wakeup latency with a single waiter.
func MicroCondSignal(cfg machine.Config, lib *syncrt.Lib) MicroResult {
	return microCond(cfg, lib, false)
}

// MicroCondBroadcast measures broadcast-to-last-wakeup latency with all
// other threads waiting.
func MicroCondBroadcast(cfg machine.Config, lib *syncrt.Lib) MicroResult {
	return microCond(cfg, lib, true)
}

func microCond(cfg machine.Config, lib *syncrt.Lib, bcast bool) MicroResult {
	const rounds = 8
	name := "CondSignal"
	if bcast {
		name = "CondBroadcast"
	}
	m := machine.New(cfg)
	a := syncrt.NewArena(0x1000000)
	threads := cfg.Tiles
	lock := a.Mutex()
	cv := a.Cond()
	seq := a.Data(1)   // round the waiters may consume
	woken := a.Data(1) // wakeups consumed this round
	qn := bindQNodes(a, threads)
	waiters := 1
	if bcast {
		waiters = threads - 1
	}
	sigAt := make([]sim.Time, rounds)
	lastWake := make([]sim.Time, rounds)
	m.SpawnAll(threads, func(tid int, e cpu.Env) {
		rt := lib.Bind(e, qn[tid])
		if tid == 0 {
			// Signaler: let waiters queue up, then wake.
			for r := 0; r < rounds; r++ {
				e.Compute(4000) // generous time for waiters to block
				rt.Lock(lock)
				e.Store(seq, uint64(r+1))
				sigAt[r] = e.Now()
				if bcast {
					rt.CondBroadcast(cv)
				} else {
					rt.CondSignal(cv)
				}
				rt.Unlock(lock)
				// Wait until all wakeups for this round are consumed.
				for e.Load(woken) < uint64((r+1)*waiters) {
					e.Compute(200)
				}
			}
			return
		}
		if tid > waiters {
			return // spectators in the signal (non-bcast) case
		}
		for r := 0; r < rounds; r++ {
			rt.Lock(lock)
			for e.Load(seq) < uint64(r+1) {
				rt.CondWait(cv, lock)
			}
			w := e.Now()
			if w > lastWake[r] {
				lastWake[r] = w
			}
			e.Store(woken, e.Load(woken)+1)
			rt.Unlock(lock)
		}
	})
	mustRun(m, name)
	rep := m.MetricsReport("micro", name, lib.Desc())
	var sum sim.Time
	cnt := 0
	for r := 2; r < rounds; r++ {
		if lastWake[r] > sigAt[r] {
			sum += lastWake[r] - sigAt[r]
			cnt++
		}
	}
	if cnt == 0 {
		return MicroResult{Name: name, Cycles: 0, Report: rep}
	}
	return MicroResult{Name: name, Cycles: float64(sum) / float64(cnt), Samples: cnt, Report: rep}
}

func mustRun(m *machine.Machine, what string) {
	if _, err := m.Run(RunDeadline); err != nil {
		panic(fmt.Sprintf("workload: %s: %v", what, err))
	}
}

// Micros runs all five Fig. 5 microbenchmarks.
func Micros(cfg machine.Config, lib *syncrt.Lib) []MicroResult {
	return []MicroResult{
		MicroLockAcquire(cfg, lib),
		MicroLockHandoff(cfg, lib),
		MicroBarrierHandoff(cfg, lib),
		MicroCondSignal(cfg, lib),
		MicroCondBroadcast(cfg, lib),
	}
}
