package workload

import (
	"misar/internal/cpu"
	"misar/internal/memory"
	"misar/internal/syncrt"
)

// Ferret: PARSEC's four-stage similarity-search pipeline. Threads are
// partitioned into stages connected by bounded queues, each guarded by a
// lock and a pair of condition variables — the heaviest condition-variable
// user in the suite, exercising multiple cond entries pinning multiple lock
// entries concurrently.
func Ferret() App {
	return App{Name: "ferret", SyncSensitive: true, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		const stages = 4
		// Queue i connects stage i to stage i+1 (stages-1 queues).
		type queue struct {
			lock     syncrt.Mutex
			notEmpty syncrt.Cond
			notFull  syncrt.Cond
			depth    memory.Addr
			pushed   memory.Addr
			popped   memory.Addr
		}
		qs := make([]queue, stages-1)
		for i := range qs {
			qs[i] = queue{
				lock:     a.Mutex(),
				notEmpty: a.Cond(),
				notFull:  a.Cond(),
				depth:    a.Data(1),
				pushed:   a.Data(1),
				popped:   a.Data(1),
			}
		}
		const capacity = 8
		perSource := uint64(16)
		// Stage sizing: stage s gets threads/stages workers (remainder to
		// the last stage).
		stageOf := func(tid int) int {
			s := tid * stages / threads
			if s >= stages {
				s = stages - 1
			}
			return s
		}
		sources := 0
		for tid := 0; tid < threads; tid++ {
			if stageOf(tid) == 0 {
				sources++
			}
		}
		total := uint64(sources) * perSource

		push := func(rt *syncrt.T, e cpu.Env, q *queue) {
			rt.Lock(q.lock)
			for e.Load(q.depth) >= capacity {
				rt.CondWait(q.notFull, q.lock)
			}
			e.Store(q.depth, e.Load(q.depth)+1)
			e.Store(q.pushed, e.Load(q.pushed)+1)
			rt.CondSignal(q.notEmpty)
			rt.Unlock(q.lock)
		}
		// pop returns false when the stream is exhausted.
		pop := func(rt *syncrt.T, e cpu.Env, q *queue) bool {
			rt.Lock(q.lock)
			for e.Load(q.depth) == 0 && e.Load(q.popped) < total {
				rt.CondWait(q.notEmpty, q.lock)
			}
			if e.Load(q.popped) >= total {
				rt.CondBroadcast(q.notEmpty) // wake peers so they can exit
				rt.Unlock(q.lock)
				return false
			}
			e.Store(q.depth, e.Load(q.depth)-1)
			e.Store(q.popped, e.Load(q.popped)+1)
			done := e.Load(q.popped) >= total
			rt.CondSignal(q.notFull)
			if done {
				rt.CondBroadcast(q.notEmpty)
			}
			rt.Unlock(q.lock)
			return true
		}

		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			stage := stageOf(tid)
			switch stage {
			case 0: // load stage: produce items
				for i := uint64(0); i < perSource; i++ {
					e.Compute(1800 + jitter(tid, int(i), 600))
					push(rt, e, &qs[0])
				}
			case stages - 1: // output stage: consume to the end
				for pop(rt, e, &qs[stages-2]) {
					e.Compute(1200 + jitter(tid, 3, 400))
				}
			default: // middle stages: pop, work, push
				for pop(rt, e, &qs[stage-1]) {
					e.Compute(2400 + jitter(tid, stage, 800))
					push(rt, e, &qs[stage])
				}
				// Propagate exhaustion downstream: the stream length is
				// the same for every queue, so once our input is done our
				// output will be completed by peers; nothing to do.
			}
		}
	}}
}
