package workload

import (
	"misar/internal/cpu"
	"misar/internal/syncrt"
)

// Suite returns the application profiles in the order the paper's Fig. 6
// presents them, followed by the low-sensitivity remainder of the suites.
func Suite() []App {
	apps := []App{
		Radiosity(),
		Raytrace(),
		WaterSP(),
		Ocean(),
		OceanNC(),
		Cholesky(),
		Fluidanimate(),
		Streamcluster(),
		Bodytrack(),
		Dedup(),
		Ferret(),
	}
	// Low-sensitivity fillers: large compute blocks with occasional
	// synchronization, standing in for the rest of Splash-2/PARSEC (their
	// Ideal benefit is below the paper's 4% display threshold; they mostly
	// dilute the geomean, as in the paper).
	for _, f := range []struct {
		name            string
		compute         int
		locks, barriers int
	}{
		{"barnes", 95000, 4, 1},
		{"fmm", 120000, 3, 1},
		{"lu", 80000, 0, 1},
		{"fft", 140000, 0, 1},
		{"radix", 70000, 1, 1},
		{"volrend", 60000, 5, 1},
		{"water-ns", 100000, 4, 1},
		{"swaptions", 160000, 1, 0},
		{"blackscholes", 150000, 0, 1},
		{"canneal", 90000, 3, 0},
		{"freqmine", 110000, 2, 1},
		{"x264", 85000, 1, 1},
		{"vips", 130000, 2, 0},
	} {
		apps = append(apps, computeHeavy(f.name, f.compute, f.locks, f.barriers))
	}
	return apps
}

// ByName returns the named app from the suite.
func ByName(name string) (App, bool) {
	for _, a := range Suite() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// --- Sync-sensitive profiles (individually shown in Fig. 6) ---

// Radiosity: frequent operations on many low-contention locks guarding
// per-thread task queues, with heavy work stealing so each lock is used by
// *different* threads over time (the paper notes only ~20% of acquires can
// use the HWSync fast path).
func Radiosity() App {
	return App{Name: "radiosity", SyncSensitive: true, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		// Several queue locks per thread: far more locks than MSA entries.
		perThread := 6
		locks := a.MutexArray(threads * perThread)
		qdepth := a.DataArray(len(locks))
		bar := a.Barrier(threads)
		const tasks = 60
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			for i := 0; i < tasks; i++ {
				// 1/4 own queue, 3/4 steal from someone else's.
				victim := tid
				if jitter(tid, i, 4) != 0 {
					victim = int(jitter(tid, i*7+1, threads-1))
					if victim >= tid {
						victim++
					}
				}
				q := victim*perThread + int(jitter(tid, i*3+2, perThread))
				rt.Critical(locks[q], func() {
					rt.Store(qdepth[q], rt.Load(qdepth[q])+1)
					e.Compute(30 + jitter(tid, i, 20)) // queue manipulation
				})
				e.Compute(130 + jitter(tid, i*5, 60)) // task body
				// Push the result back onto the own queue.
				rt.Critical(locks[tid*perThread], func() {
					rt.Store(qdepth[tid*perThread], rt.Load(qdepth[tid*perThread])+1)
				})
				e.Compute(60 + jitter(tid, i*9, 40))
			}
			rt.Wait(bar)
		}
	}}
}

// Raytrace: lock-intensive with one hot, highly contended lock (the global
// ray-ID counter); handoff latency dominates.
func Raytrace() App {
	return App{Name: "raytrace", SyncSensitive: true, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		hot := a.Mutex()
		counter := a.Data(1)
		misc := a.MutexArray(threads)
		const rays = 50
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			for i := 0; i < rays; i++ {
				rt.Critical(hot, func() {
					rt.Store(counter, rt.Load(counter)+1) // grab next ray id
				})
				e.Compute(1400 + jitter(tid, i, 500)) // trace the ray
				if jitter(tid, i*3, 4) == 0 {
					m := int(jitter(tid, i*5, threads))
					rt.Critical(misc[m], func() {
						e.Compute(15)
					})
				}
			}
		}
	}}
}

// WaterSP: per-molecule locks (moderately many, lightly contended) plus a
// few barriers per timestep.
func WaterSP() App {
	return App{Name: "water-sp", SyncSensitive: true, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		mols := threads * 4
		locks := a.MutexArray(mols)
		acc := a.DataArray(mols)
		bar := a.Barrier(threads)
		const steps = 8
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			for s := 0; s < steps; s++ {
				for i := 0; i < 10; i++ {
					m := int(jitter(tid, s*100+i, mols))
					rt.Critical(locks[m], func() {
						rt.Store(acc[m], rt.Load(acc[m])+1) // accumulate forces
					})
					e.Compute(140 + jitter(tid, s*31+i, 60))
				}
				rt.Wait(bar)
				e.Compute(300)
				rt.Wait(bar)
			}
		}
	}}
}

// Ocean: barrier-heavy iterative stencil with real compute between
// barriers.
func Ocean() App {
	return App{Name: "ocean", SyncSensitive: true, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		bar := a.Barrier(threads)
		const iters = 40
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			for i := 0; i < iters; i++ {
				e.Compute(7000 + jitter(tid, i, 1500))
				rt.Wait(bar)
				e.Compute(5200 + jitter(tid, i*3, 900))
				rt.Wait(bar)
			}
		}
	}}
}

// OceanNC (non-contiguous partitions): more barriers, less compute between
// them — synchronization weighs more.
func OceanNC() App {
	return App{Name: "ocean-nc", SyncSensitive: true, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		bar := a.Barrier(threads)
		const iters = 60
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			for i := 0; i < iters; i++ {
				e.Compute(3600 + jitter(tid, i, 700))
				rt.Wait(bar)
				e.Compute(3300 + jitter(tid, i*3, 600))
				rt.Wait(bar)
				e.Compute(2700 + jitter(tid, i*5, 500))
				rt.Wait(bar)
			}
		}
	}}
}

// Cholesky: a central task queue guarded by one contended lock, with
// moderate task bodies.
func Cholesky() App {
	return App{Name: "cholesky", SyncSensitive: true, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		nq := threads / 8
		if nq < 1 {
			nq = 1
		}
		qlocks := a.MutexArray(nq)
		heads := a.DataArray(nq)
		perQueue := uint64(8 * 30)
		bar := a.Barrier(threads)
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			q := tid % nq
			for {
				// The dequeue is closure-shaped with an early exit: the body
				// resets its outputs first because a transactional library
				// may re-run it after an abort.
				var done bool
				var h uint64
				rt.Critical(qlocks[q], func() {
					done = false
					h = rt.Load(heads[q])
					if h >= perQueue {
						done = true
						return
					}
					rt.Store(heads[q], h+1)
					e.Compute(25) // dequeue bookkeeping
				})
				if done {
					break
				}
				e.Compute(1100 + jitter(tid, int(h), 400)) // factor a block
			}
			rt.Wait(bar)
		}
	}}
}

// Fluidanimate: very many locks, very low contention — each thread
// re-acquires its own region locks over and over (90% of acquires can use
// the HWSync fast path; without it the hardware round trip *loses* to an
// L1-hit software acquire, Fig. 8).
func Fluidanimate() App {
	return App{Name: "fluidanimate", SyncSensitive: true, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		perThread := 8
		locks := a.MutexArray(threads * perThread)
		cells := a.DataArray(len(locks))
		bar := a.Barrier(threads)
		const frames = 3
		const particlesPerCell = 30
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			for f := 0; f < frames; f++ {
				// Visit own cells in order; each cell's lock is acquired
				// once per particle — a burst of re-acquisitions by the
				// same thread, the pattern that makes the HWSync fast path
				// cover ~90% of acquires.
				for ci := 0; ci < perThread; ci++ {
					// Rotate the visit order per thread so concurrent
					// bursts spread across home tiles (each thread starts
					// its sweep at a different corner of its region).
					c := (ci + tid + tid/8) % perThread
					l := tid*perThread + c
					for p := 0; p < particlesPerCell; p++ {
						rt.Critical(locks[l], func() {
							rt.Store(cells[l], rt.Load(cells[l])+1)
						})
						e.Compute(260 + jitter(tid, f*1000+c*100+p, 80))
					}
					e.Compute(120) // per-cell density interpolation
					// Occasionally a boundary particle touches a
					// neighbour's edge cell.
					if jitter(tid, f*100+c, 8) == 0 {
						nb := ((tid+1)%threads)*perThread + c
						rt.Critical(locks[nb], func() {
							rt.Store(cells[nb], rt.Load(cells[nb])+1)
						})
					}
				}
				rt.Wait(bar)
			}
		}
	}}
}

// Streamcluster: barrier-intensive — tight loop of tiny work separated by
// barriers; the paper's biggest winner (7.59x at 64 cores).
func Streamcluster() App {
	return App{Name: "streamcluster", SyncSensitive: true, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		bar := a.Barrier(threads)
		const iters = 120
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			for i := 0; i < iters; i++ {
				e.Compute(480 + jitter(tid, i, 80))
				rt.Wait(bar)
			}
		}
	}}
}

// Bodytrack: a condition-variable work pool — workers wait for frames, the
// coordinator signals work and collects results at a barrier. Its critical
// sections wrap condition-variable waits, which cannot be expressed as
// transactions (a wait releases the section mid-body), so bodytrack keeps
// explicit Lock/Unlock under every library, including TM (see DESIGN.md §16).
func Bodytrack() App {
	return App{Name: "bodytrack", SyncSensitive: true, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		lock := a.Mutex()
		work := a.Cond()
		ticket := a.Data(1) // next work item
		issued := a.Data(1) // items released by the coordinator
		bar := a.Barrier(threads)
		const frames = 5
		itemsPer := uint64(threads - 1)
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			for f := 0; f < frames; f++ {
				target := uint64(f+1) * itemsPer
				if tid == 0 {
					// Coordinator: publish this frame's items, wake workers.
					rt.Lock(lock)
					e.Store(issued, target)
					rt.CondBroadcast(work)
					rt.Unlock(lock)
				} else {
					for {
						rt.Lock(lock)
						for e.Load(ticket) >= e.Load(issued) && e.Load(ticket) < target {
							rt.CondWait(work, lock)
						}
						t := e.Load(ticket)
						if t >= target {
							rt.Unlock(lock)
							break
						}
						e.Store(ticket, t+1)
						rt.Unlock(lock)
						e.Compute(30000 + jitter(tid, f*100+int(t), 8000))
					}
				}
				rt.Wait(bar)
			}
		}
	}}
}

// Dedup: a two-stage pipeline over a shared bounded queue with two
// condition variables (not-empty / not-full).
func Dedup() App {
	return App{Name: "dedup", SyncSensitive: true, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		lock := a.Mutex()
		notEmpty := a.Cond()
		notFull := a.Cond()
		depth := a.Data(1)
		produced := a.Data(1)
		consumed := a.Data(1)
		const capacity = 16
		producers := threads / 2
		if producers == 0 {
			producers = 1
		}
		perProducer := uint64(20)
		total := uint64(producers) * perProducer
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			if tid < producers {
				for i := uint64(0); i < perProducer; i++ {
					e.Compute(5200 + jitter(tid, int(i), 1500)) // chunk+hash
					rt.Lock(lock)
					for e.Load(depth) >= capacity {
						rt.CondWait(notFull, lock)
					}
					e.Store(depth, e.Load(depth)+1)
					e.Store(produced, e.Load(produced)+1)
					rt.CondSignal(notEmpty)
					rt.Unlock(lock)
				}
				return
			}
			for {
				rt.Lock(lock)
				for e.Load(depth) == 0 && e.Load(consumed) < total {
					rt.CondWait(notEmpty, lock)
				}
				if e.Load(consumed) >= total {
					rt.CondBroadcast(notEmpty) // let peers exit
					rt.Unlock(lock)
					return
				}
				e.Store(depth, e.Load(depth)-1)
				e.Store(consumed, e.Load(consumed)+1)
				last := e.Load(consumed) >= total
				rt.CondSignal(notFull)
				if last {
					rt.CondBroadcast(notEmpty)
				}
				rt.Unlock(lock)
				e.Compute(5600 + jitter(tid, 7, 1500)) // compress+write
			}
		}
	}}
}

// computeHeavy builds a low-sync-sensitivity profile: big compute blocks
// with occasional lock/barrier activity.
func computeHeavy(name string, compute, locksUsed, barriers int) App {
	return App{Name: name, Build: func(a *syncrt.Arena, threads int, lib *syncrt.Lib) func(int, cpu.Env) {
		qn := bindQNodes(a, threads)
		iv := newInitVars(a, threads)
		var locks []syncrt.Mutex
		for i := 0; i < locksUsed; i++ {
			locks = append(locks, a.Mutex())
		}
		var bar syncrt.Barrier
		if barriers > 0 {
			bar = a.Barrier(threads)
		}
		const iters = 5
		return func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qn[tid])
			iv.run(tid, rt, e)
			for i := 0; i < iters; i++ {
				e.Compute(uint64(compute) + jitter(tid, i, compute/4))
				if locksUsed > 0 && jitter(tid, i, 2) == 0 {
					l := int(jitter(tid, i*3, locksUsed))
					rt.Critical(locks[l], func() {
						e.Compute(20)
					})
				}
				for b := 0; b < barriers; b++ {
					rt.Wait(bar)
				}
			}
		}
	}}
}
