package workload

import (
	"testing"

	"misar/internal/cpu"
	"misar/internal/machine"
	"misar/internal/syncrt"
)

func baselineCfg(tiles int) machine.Config {
	c := machine.Default(tiles)
	c.Name = "pthread"
	c.CPU.Mode = cpu.ModeAlwaysFail
	return c
}

// TestSuiteRunsEverywhere smoke-tests every app under the main configs.
func TestSuiteRunsEverywhere(t *testing.T) {
	tiles := 8
	cfgs := []struct {
		cfg machine.Config
		lib *syncrt.Lib
	}{
		{baselineCfg(tiles), syncrt.PthreadLib()},
		{machine.MSAOMU(tiles, 2), syncrt.HWLib()},
		{machine.Ideal(tiles), syncrt.HWLib()},
		{baselineCfg(tiles), syncrt.MCSTourLib()},
	}
	for _, app := range Suite() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for _, tc := range cfgs {
				_, cycles, err := Run(app, tc.cfg, tc.lib)
				if err != nil {
					t.Fatalf("%s on %s: %v", app.Name, tc.cfg.Name, err)
				}
				if cycles == 0 {
					t.Fatalf("%s on %s finished in 0 cycles", app.Name, tc.cfg.Name)
				}
			}
		})
	}
}

// TestSuiteDeterministic: same app+config twice gives identical cycles.
func TestSuiteDeterministic(t *testing.T) {
	app, _ := ByName("radiosity")
	cfg := machine.MSAOMU(8, 2)
	_, c1, err1 := Run(app, cfg, syncrt.HWLib())
	_, c2, err2 := Run(app, cfg, syncrt.HWLib())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if c1 != c2 {
		t.Fatalf("nondeterministic: %d vs %d", c1, c2)
	}
}

// TestMicrosRun exercises all five microbenchmarks under every library.
func TestMicrosRun(t *testing.T) {
	tiles := 8
	cases := []struct {
		name string
		cfg  machine.Config
		lib  *syncrt.Lib
	}{
		{"pthread", baselineCfg(tiles), syncrt.PthreadLib()},
		{"spinlock", baselineCfg(tiles), syncrt.SpinLib()},
		{"mcs-tour", baselineCfg(tiles), syncrt.MCSTourLib()},
		{"msa0", machine.MSA0(tiles), syncrt.HWLib()},
		{"msaomu2", machine.MSAOMU(tiles, 2), syncrt.HWLib()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, r := range Micros(tc.cfg, tc.lib) {
				if r.Cycles <= 0 {
					t.Errorf("%s: non-positive latency %f", r.Name, r.Cycles)
				}
				if r.Samples == 0 {
					t.Errorf("%s: no samples", r.Name)
				}
			}
		})
	}
}

// TestMicroShapes checks the paper's qualitative Fig. 5 orderings at 16
// cores: the MSA has the best contended handoff and barrier latency, and
// MSA-0 is in the same ballpark as pthread.
func TestMicroShapes(t *testing.T) {
	tiles := 16
	hw := machine.MSAOMU(tiles, 2)
	base := baselineCfg(tiles)

	hwHandoff := MicroLockHandoff(hw, syncrt.HWLib())
	ptHandoff := MicroLockHandoff(base, syncrt.PthreadLib())
	mcsHandoff := MicroLockHandoff(base, syncrt.MCSTourLib())
	if hwHandoff.Cycles >= ptHandoff.Cycles {
		t.Errorf("lock handoff: MSA (%.0f) should beat pthread (%.0f)", hwHandoff.Cycles, ptHandoff.Cycles)
	}
	if hwHandoff.Cycles >= mcsHandoff.Cycles {
		t.Errorf("lock handoff: MSA (%.0f) should beat MCS (%.0f)", hwHandoff.Cycles, mcsHandoff.Cycles)
	}

	hwBar := MicroBarrierHandoff(hw, syncrt.HWLib())
	ptBar := MicroBarrierHandoff(base, syncrt.PthreadLib())
	tourBar := MicroBarrierHandoff(base, syncrt.MCSTourLib())
	if hwBar.Cycles >= ptBar.Cycles || hwBar.Cycles >= tourBar.Cycles {
		t.Errorf("barrier: MSA (%.0f) should beat pthread (%.0f) and tournament (%.0f)",
			hwBar.Cycles, ptBar.Cycles, tourBar.Cycles)
	}

	hwSig := MicroCondSignal(hw, syncrt.HWLib())
	ptSig := MicroCondSignal(base, syncrt.PthreadLib())
	if hwSig.Cycles >= ptSig.Cycles {
		t.Errorf("cond signal: MSA (%.0f) should beat pthread (%.0f)", hwSig.Cycles, ptSig.Cycles)
	}

	// Uncontended acquire: the HWSync fast path should make the MSA at
	// least competitive with pthread's L1-hit CAS.
	hwAcq := MicroLockAcquire(hw, syncrt.HWLib())
	ptAcq := MicroLockAcquire(base, syncrt.PthreadLib())
	if hwAcq.Cycles > ptAcq.Cycles*2 {
		t.Errorf("uncontended acquire: MSA (%.0f) far above pthread (%.0f)", hwAcq.Cycles, ptAcq.Cycles)
	}
}
