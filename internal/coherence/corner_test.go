package coherence

import (
	"testing"

	"misar/internal/memory"
)

// Corner-path tests for the directory protocol: revocations, grant races,
// and per-line transaction queueing.

func TestRevokeUncachedLine(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0x1000)
	home := memory.HomeOf(a, 4)
	done := false
	r.engine.At(0, func() {
		r.dir[home].Revoke(a, func() { done = true })
	})
	r.run(t)
	if !done {
		t.Fatal("revoke of uncached line never completed")
	}
}

func TestRevokeSharedLineInvalidatesAll(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0x2000)
	home := memory.HomeOf(a, 4)
	r.engine.At(0, func() {
		r.load(0, a, nil, func() {
			r.load(1, a, nil, func() {
				r.load(2, a, nil, func() {
					r.dir[home].Revoke(a, nil)
				})
			})
		})
	})
	r.run(t)
	for c := 0; c < 3; c++ {
		if got := r.l1[c].State(a); got != Invalid {
			t.Errorf("core %d state = %v after revoke, want I", c, got)
		}
	}
}

func TestRevokeModifiedLinePreservesData(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0x3000)
	home := memory.HomeOf(a, 4)
	var after uint64
	r.engine.At(0, func() {
		r.storeOp(1, a, 77, func() {
			r.dir[home].Revoke(a, func() {
				r.load(2, a, &after, nil)
			})
		})
	})
	r.run(t)
	if after != 77 {
		t.Fatalf("data lost across revoke: %d", after)
	}
}

func TestGrantQueuesBehindDemandRequest(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0x4000)
	home := memory.HomeOf(a, 4)
	var order []string
	r.engine.At(0, func() {
		// Demand store and a grant to a different core in the same cycle:
		// the directory must serialize them on the line.
		r.storeOp(0, a, 1, func() { order = append(order, "store") })
		r.dir[home].GrantExclusive(a, 2, func() { order = append(order, "grant") })
	})
	r.run(t)
	if len(order) != 2 {
		t.Fatalf("completions = %v", order)
	}
	// Whoever finished last must hold the line exclusively; the other must
	// have been invalidated.
	last := order[1]
	if last == "grant" {
		if !r.l1[2].HWSyncHit(a) || r.l1[0].State(a) != Invalid {
			t.Fatalf("grant-last: states %v/%v", r.l1[0].State(a), r.l1[2].State(a))
		}
	} else {
		if r.l1[0].State(a) != Modified {
			t.Fatalf("store-last: state %v", r.l1[0].State(a))
		}
	}
}

func TestQueuedRequestsDrainInOrder(t *testing.T) {
	r := newRig(t, 8, DefaultL1Config())
	a := memory.Addr(0x5000)
	var order []int
	r.engine.At(0, func() {
		for c := 0; c < 8; c++ {
			c := c
			r.fetchAdd(c, a, 1, func(old uint64) {
				order = append(order, int(old))
			})
		}
	})
	r.run(t)
	if len(order) != 8 {
		t.Fatalf("completions = %d", len(order))
	}
	if r.store.Load(a) != 8 {
		t.Fatalf("final = %d", r.store.Load(a))
	}
	// Each fetch-add observed a distinct value 0..7 (linearizable).
	seen := map[int]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("duplicate RMW observation %d in %v", v, order)
		}
		seen[v] = true
	}
}

func TestDirectoryConflictStats(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0x6000)
	home := memory.HomeOf(a, 4)
	r.engine.At(0, func() {
		for c := 0; c < 4; c++ {
			r.l1[c].Access(a+memory.Addr(c*8), AccRMW, 0,
				func(st *memory.Store, ad memory.Addr) uint64 { return st.Add(ad, 1) },
				func(uint64) {})
		}
	})
	r.run(t)
	if r.dir[home].Stats().Conflicts == 0 {
		t.Fatal("same-line RMW storm produced no queued conflicts")
	}
}

func TestEvictionOfHWSyncLineClearsBit(t *testing.T) {
	cfg := L1Config{Sets: 1, Ways: 1, HitLatency: 1}
	r := newRig(t, 4, cfg)
	a := memory.Addr(0x7000)
	home := memory.HomeOf(a, 4)
	r.engine.At(0, func() {
		r.dir[home].GrantExclusive(a, 0, func() {
			// The fill is still in flight when the home-side callback runs;
			// give it time to land before checking and evicting.
			r.engine.After(100, func() {
				if !r.l1[0].HWSyncHit(a) {
					t.Error("bit not set after grant")
				}
				// Any other access evicts the single-line cache.
				r.load(0, a+0x40, nil, nil)
			})
		})
	})
	r.run(t)
	if r.l1[0].HWSyncHit(a) {
		t.Fatal("HWSync bit survived eviction")
	}
	if r.l1[0].Stats().HWSyncCleared != 1 {
		t.Fatalf("HWSyncCleared = %d", r.l1[0].Stats().HWSyncCleared)
	}
}
