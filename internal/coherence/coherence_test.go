package coherence

import (
	"math/rand"
	"testing"

	"misar/internal/memory"
	"misar/internal/noc"
	"misar/internal/sim"
)

// rig wires N L1s and N directory slices over a mesh, one tile each.
type rig struct {
	engine *sim.Engine
	net    *noc.Network
	store  *memory.Store
	l1     []*L1
	dir    []*Directory
}

func newRig(t testing.TB, tiles int, l1cfg L1Config) *rig {
	w, h := meshDims(tiles)
	e := sim.NewEngine()
	n := noc.New(e, noc.DefaultConfig(w, h))
	st := memory.NewStore()
	r := &rig{engine: e, net: n, store: st,
		l1:  make([]*L1, tiles),
		dir: make([]*Directory, tiles)}
	for i := 0; i < tiles; i++ {
		i := i
		send := func(dst int, m *Msg) {
			n.Send(&noc.Message{Src: i, Dst: dst, Bytes: m.Bytes(), Payload: m})
		}
		r.l1[i] = NewL1(i, tiles, l1cfg, e, st, send)
		r.dir[i] = NewDirectory(i, tiles, DirConfig{LLCLatency: 4, MemLatency: 20}, e, send)
		n.Attach(i, func(nm *noc.Message) {
			m := nm.Payload.(*Msg)
			switch m.Kind {
			case RspDataS, RspDataE, MsgInv, MsgFwd:
				r.l1[i].Handle(m)
			default:
				r.dir[i].Handle(m)
			}
		})
	}
	return r
}

func meshDims(tiles int) (int, int) {
	w := 1
	for w*w < tiles {
		w++
	}
	h := (tiles + w - 1) / w
	return w, h
}

// run drains the engine with a deadlock guard.
func (r *rig) run(t testing.TB) {
	t.Helper()
	if !r.engine.RunUntil(50_000_000) {
		t.Fatal("coherence test did not quiesce (deadlock?)")
	}
}

// load issues a blocking load on core c via callback, recording the value.
func (r *rig) load(c int, a memory.Addr, out *uint64, then func()) {
	r.l1[c].Access(a, AccLoad, 0, nil, func(v uint64) {
		if out != nil {
			*out = v
		}
		if then != nil {
			then()
		}
	})
}

func (r *rig) storeOp(c int, a memory.Addr, v uint64, then func()) {
	r.l1[c].Access(a, AccStore, v, nil, func(uint64) {
		if then != nil {
			then()
		}
	})
}

func (r *rig) fetchAdd(c int, a memory.Addr, d uint64, then func(old uint64)) {
	r.l1[c].Access(a, AccRMW, 0, func(st *memory.Store, addr memory.Addr) uint64 {
		return st.Add(addr, d)
	}, func(v uint64) {
		if then != nil {
			then(v)
		}
	})
}

func TestLoadMissGrantsExclusive(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	var v uint64 = 99
	r.store.Store(0x1000, 7)
	r.engine.At(0, func() { r.load(0, 0x1000, &v, nil) })
	r.run(t)
	if v != 7 {
		t.Fatalf("load = %d, want 7", v)
	}
	if got := r.l1[0].State(0x1000); got != Exclusive {
		t.Fatalf("state = %v, want E (MESI E optimization)", got)
	}
}

func TestTwoReadersShare(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	var v0, v1 uint64
	r.store.Store(0x2000, 5)
	r.engine.At(0, func() {
		r.load(0, 0x2000, &v0, func() {
			r.load(1, 0x2000, &v1, nil)
		})
	})
	r.run(t)
	if v0 != 5 || v1 != 5 {
		t.Fatalf("loads = %d,%d", v0, v1)
	}
	if r.l1[0].State(0x2000) != Shared || r.l1[1].State(0x2000) != Shared {
		t.Fatalf("states = %v,%v, want S,S (downgrade on second read)",
			r.l1[0].State(0x2000), r.l1[1].State(0x2000))
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0x3000)
	r.engine.At(0, func() {
		r.load(0, a, nil, func() {
			r.load(1, a, nil, func() {
				r.load(2, a, nil, func() {
					r.storeOp(3, a, 42, nil)
				})
			})
		})
	})
	r.run(t)
	for c := 0; c < 3; c++ {
		if got := r.l1[c].State(a); got != Invalid {
			t.Errorf("core %d state = %v, want I", c, got)
		}
	}
	if got := r.l1[3].State(a); got != Modified {
		t.Errorf("writer state = %v, want M", got)
	}
	if r.store.Load(a) != 42 {
		t.Errorf("memory = %d, want 42", r.store.Load(a))
	}
}

func TestUpgradeFromShared(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0x4000)
	r.engine.At(0, func() {
		r.load(0, a, nil, func() {
			r.load(1, a, nil, func() {
				// Core 0 upgrades its Shared copy.
				r.storeOp(0, a, 9, nil)
			})
		})
	})
	r.run(t)
	if r.l1[0].State(a) != Modified {
		t.Fatalf("upgrader state = %v, want M", r.l1[0].State(a))
	}
	if r.l1[1].State(a) != Invalid {
		t.Fatalf("other sharer state = %v, want I", r.l1[1].State(a))
	}
}

func TestDirtyLineRecalledOnRead(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0x5000)
	var v uint64
	r.engine.At(0, func() {
		r.storeOp(0, a, 13, func() {
			r.load(1, a, &v, nil)
		})
	})
	r.run(t)
	if v != 13 {
		t.Fatalf("read-after-remote-write = %d, want 13", v)
	}
	if r.l1[0].State(a) != Shared || r.l1[1].State(a) != Shared {
		t.Fatalf("states after recall: %v,%v, want S,S",
			r.l1[0].State(a), r.l1[1].State(a))
	}
}

func TestDirtyLineRecalledOnWrite(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0x6000)
	r.engine.At(0, func() {
		r.storeOp(0, a, 1, func() {
			r.storeOp(1, a, 2, nil)
		})
	})
	r.run(t)
	if r.l1[0].State(a) != Invalid || r.l1[1].State(a) != Modified {
		t.Fatalf("states = %v,%v, want I,M", r.l1[0].State(a), r.l1[1].State(a))
	}
	if r.store.Load(a) != 2 {
		t.Fatalf("memory = %d", r.store.Load(a))
	}
}

// The canonical atomicity test: concurrent fetch-and-adds from every core
// must all be counted.
func TestConcurrentFetchAddAtomicity(t *testing.T) {
	const tiles, per = 16, 25
	r := newRig(t, tiles, DefaultL1Config())
	a := memory.Addr(0x7000)
	doneCount := 0
	for c := 0; c < tiles; c++ {
		c := c
		var step func(i int)
		step = func(i int) {
			if i == per {
				doneCount++
				return
			}
			r.fetchAdd(c, a, 1, func(uint64) { step(i + 1) })
		}
		r.engine.At(sim.Time(c%3), func() { step(0) })
	}
	r.run(t)
	if doneCount != tiles {
		t.Fatalf("only %d cores finished", doneCount)
	}
	if got := r.store.Load(a); got != tiles*per {
		t.Fatalf("counter = %d, want %d", got, tiles*per)
	}
}

// Tiny cache forces evictions and writebacks; dirty data must survive a
// round trip through the directory.
func TestEvictionWritebackRoundTrip(t *testing.T) {
	cfg := L1Config{Sets: 2, Ways: 1, HitLatency: 1}
	r := newRig(t, 4, cfg)
	const n = 32
	r.engine.At(0, func() {
		var step func(i int)
		step = func(i int) {
			if i == n {
				// Read everything back (evicting again as we go).
				var check func(j int)
				check = func(j int) {
					if j == n {
						return
					}
					var v uint64
					r.load(0, memory.Addr(j*memory.LineSize), &v, func() {
						if v != uint64(j+1) {
							t.Errorf("line %d = %d, want %d", j, v, j+1)
						}
						check(j + 1)
					})
				}
				check(0)
				return
			}
			r.storeOp(0, memory.Addr(i*memory.LineSize), uint64(i+1), func() { step(i + 1) })
		}
		step(0)
	})
	r.run(t)
	if r.l1[0].Stats().Writebacks == 0 {
		t.Fatal("expected writebacks with a 2-line cache")
	}
}

func TestHWSyncGrantSetsBit(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0x8000)
	home := memory.HomeOf(a, 4)
	granted := false
	r.engine.At(0, func() {
		r.dir[home].GrantExclusive(a, 2, func() { granted = true })
	})
	r.run(t)
	if !granted {
		t.Fatal("grant callback did not run")
	}
	if !r.l1[2].HWSyncHit(a) {
		t.Fatal("HWSync bit not set after grant")
	}
	if r.l1[2].State(a) != Exclusive {
		t.Fatalf("state = %v, want E", r.l1[2].State(a))
	}
}

func TestHWSyncBitClearedByInvalidation(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0x9000)
	home := memory.HomeOf(a, 4)
	r.engine.At(0, func() {
		r.dir[home].GrantExclusive(a, 2, func() {
			// Another core writes the line; core 2 must lose the bit.
			r.storeOp(1, a, 5, nil)
		})
	})
	r.run(t)
	if r.l1[2].HWSyncHit(a) {
		t.Fatal("HWSync bit survived invalidation")
	}
	if r.l1[2].Stats().HWSyncCleared != 1 {
		t.Fatalf("HWSyncCleared = %d", r.l1[2].Stats().HWSyncCleared)
	}
}

func TestHWSyncBitNotWritableAfterDowngrade(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0xa000)
	home := memory.HomeOf(a, 4)
	r.engine.At(0, func() {
		r.dir[home].GrantExclusive(a, 2, func() {
			r.load(1, a, nil, nil) // downgrade core 2 to S
		})
	})
	r.run(t)
	if r.l1[2].State(a) != Shared {
		t.Fatalf("state = %v, want S", r.l1[2].State(a))
	}
	if r.l1[2].HWSyncHit(a) {
		t.Fatal("HWSyncHit must require a writable (E/M) line")
	}
}

func TestGrantToCurrentOwnerIsIdempotent(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0xb000)
	home := memory.HomeOf(a, 4)
	n := 0
	r.engine.At(0, func() {
		r.dir[home].GrantExclusive(a, 2, func() {
			n++
			r.dir[home].GrantExclusive(a, 2, func() { n++ })
		})
	})
	r.run(t)
	if n != 2 {
		t.Fatalf("grants completed = %d, want 2", n)
	}
	if !r.l1[2].HWSyncHit(a) {
		t.Fatal("bit lost on re-grant")
	}
}

func TestIsExclusiveAt(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0xc000)
	home := memory.HomeOf(a, 4)
	r.engine.At(0, func() {
		r.storeOp(3, a, 1, nil)
	})
	r.run(t)
	if !r.dir[home].IsExclusiveAt(a, 3) {
		t.Fatal("IsExclusiveAt(owner) = false")
	}
	if r.dir[home].IsExclusiveAt(a, 2) {
		t.Fatal("IsExclusiveAt(non-owner) = true")
	}
	// After another core reads, no one is exclusive.
	r.engine.At(r.engine.Now()+1, func() { r.load(1, a, nil, nil) })
	r.run(t)
	if r.dir[home].IsExclusiveAt(a, 3) {
		t.Fatal("IsExclusiveAt true after downgrade")
	}
}

// Randomized stress: many cores, tiny caches, random ops over a small pool
// of lines. Checks (a) the system quiesces, (b) fetch-add counts are exact,
// (c) final store values match a sequential oracle of committed ops.
func TestRandomStress(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 42}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const tiles = 8
			cfg := L1Config{Sets: 2, Ways: 2, HitLatency: 1}
			r := newRig(t, tiles, cfg)
			addrs := make([]memory.Addr, 6)
			for i := range addrs {
				addrs[i] = memory.Addr(0x10000 + i*memory.LineSize)
			}
			counter := addrs[0]
			adds := 0
			finished := 0
			for c := 0; c < tiles; c++ {
				c := c
				ops := 40 + rng.Intn(40)
				plan := make([]int, ops)
				for i := range plan {
					plan[i] = rng.Intn(3)
				}
				targets := make([]memory.Addr, ops)
				for i := range targets {
					targets[i] = addrs[1+rng.Intn(len(addrs)-1)]
				}
				if c%2 == 0 {
					adds += ops
				}
				var step func(i int)
				step = func(i int) {
					if i == ops {
						finished++
						return
					}
					if c%2 == 0 {
						r.fetchAdd(c, counter, 1, func(uint64) { step(i + 1) })
						return
					}
					switch plan[i] {
					case 0:
						r.load(c, targets[i], nil, func() { step(i + 1) })
					case 1:
						r.storeOp(c, targets[i], uint64(c*1000+i), func() { step(i + 1) })
					default:
						r.fetchAdd(c, targets[i], 0, func(uint64) { step(i + 1) })
					}
				}
				r.engine.At(sim.Time(rng.Intn(20)), func() { step(0) })
			}
			r.run(t)
			if finished != tiles {
				t.Fatalf("finished = %d/%d", finished, tiles)
			}
			if got := r.store.Load(counter); got != uint64(adds) {
				t.Fatalf("counter = %d, want %d (lost updates)", got, adds)
			}
		})
	}
}

func TestDirectoryStats(t *testing.T) {
	r := newRig(t, 4, DefaultL1Config())
	a := memory.Addr(0xd000)
	home := memory.HomeOf(a, 4)
	r.engine.At(0, func() {
		r.load(0, a, nil, func() {
			r.load(1, a, nil, func() {
				r.storeOp(2, a, 1, nil)
			})
		})
	})
	r.run(t)
	s := r.dir[home].Stats()
	if s.GetS != 2 || s.GetX != 1 {
		t.Errorf("GetS=%d GetX=%d", s.GetS, s.GetX)
	}
	if s.ColdMisses != 1 {
		t.Errorf("ColdMisses = %d", s.ColdMisses)
	}
	if s.InvSent == 0 && s.FwdSent == 0 {
		t.Error("expected probes for the write")
	}
}

func BenchmarkCoherencePingPong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRig(b, 4, DefaultL1Config())
		a := memory.Addr(0x1000)
		var step func(turn, c int)
		step = func(turn, c int) {
			if turn == 100 {
				return
			}
			r.storeOp(c, a, uint64(turn), func() { step(turn+1, 1-c) })
		}
		r.engine.At(0, func() { step(0, 0) })
		r.engine.Run()
	}
}
