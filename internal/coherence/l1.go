package coherence

import (
	"fmt"

	"misar/internal/memory"
	"misar/internal/sim"
)

// LineState is the MESI state of an L1 line.
type LineState uint8

const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

func (s LineState) String() string {
	return [...]string{"I", "S", "E", "M"}[s]
}

// AccessKind distinguishes the three core memory operations.
type AccessKind uint8

const (
	AccLoad AccessKind = iota
	AccStore
	AccRMW
)

// RMWFunc performs an atomic read-modify-write against the functional store
// at commit time and returns the value the instruction yields (e.g. the old
// value for fetch-and-add, 0/1 for CAS success).
type RMWFunc func(st *memory.Store, addr memory.Addr) uint64

// SendFunc transmits a coherence message to a tile; wired by the machine.
type SendFunc func(dst int, m *Msg)

// L1Config describes one private cache.
type L1Config struct {
	Sets, Ways int
	HitLatency sim.Time
	// AtomicExtra is the additional latency of an atomic read-modify-write
	// over a plain access: pipeline serialization, store-buffer drain, and
	// the locked operation itself (~12 cycles on contemporary cores).
	AtomicExtra sim.Time
}

// DefaultL1Config is a 32 KiB, 8-way, 64 B-line cache with 2-cycle hits and
// 12-cycle extra atomic-RMW cost.
func DefaultL1Config() L1Config {
	return L1Config{Sets: 64, Ways: 8, HitLatency: 2, AtomicExtra: 12}
}

// L1Stats counts cache activity.
type L1Stats struct {
	Loads, Stores, RMWs   uint64
	Hits, Misses          uint64
	Evictions, Writebacks uint64
	InvReceived           uint64
	FwdReceived           uint64
	HWSyncSet             uint64
	HWSyncCleared         uint64
}

type l1Line struct {
	tag    memory.Addr // line address; valid iff state != Invalid
	state  LineState
	hwsync bool
	lru    uint64
}

type pendingOp struct {
	addr     memory.Addr
	kind     AccessKind
	storeVal uint64
	rmw      RMWFunc
	done     func(val uint64)
}

// L1 is a private cache controller. It supports one outstanding demand miss
// (the owning core blocks on memory operations) while continuing to service
// invalidations, recalls, and unsolicited HWSync grant fills.
type L1 struct {
	core   int
	tiles  int
	cfg    L1Config
	engine *sim.Engine
	send   SendFunc
	store  *memory.Store
	sets   [][]l1Line
	tick   uint64
	pend   *pendingOp
	// pendBuf backs pend: with one outstanding access per L1, the pending
	// miss never needs a fresh allocation.
	pendBuf pendingOp
	// compVal/compDone park a committed operation's result across its
	// completion-latency event; l1Complete drops the reference when it
	// fires, so a finished access pins nothing.
	compVal  uint64
	compDone func(val uint64)
	// pool supplies outgoing message records (nil: plain allocation).
	pool  *MsgPool
	stats L1Stats

	// acceptHWSync, when set, is consulted before installing the HWSync bit
	// from an MSA grant fill. The core uses it to drop grants whose
	// requesting thread has since been context-switched away (the bit would
	// otherwise let an unrelated thread silently acquire the lock).
	acceptHWSync func(line memory.Addr) bool
}

// SetAcceptHWSync installs the grant-bit admission hook.
func (c *L1) SetAcceptHWSync(f func(line memory.Addr) bool) { c.acceptHWSync = f }

// SetMsgPool makes outgoing messages come from p (the machine shares one
// pool across all controllers and recycles each message after delivery).
func (c *L1) SetMsgPool(p *MsgPool) { c.pool = p }

// ClearHWSyncLine drops the HWSync bit of one line, if present. The core
// calls this when an UNLOCK response indicates the lock was handed to a
// waiter — the local bit must not permit a silent re-acquire afterwards.
func (c *L1) ClearHWSyncLine(line memory.Addr) {
	if l := c.lookup(memory.LineOf(line)); l != nil {
		c.clearHWSync(l)
	}
}

// ClearAllHWSync drops every HWSync bit in the cache. The core calls this on
// a context switch: the bit means "the thread on this core may silently
// re-acquire this lock", which must not survive a thread change.
func (c *L1) ClearAllHWSync() {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].state != Invalid {
				c.clearHWSync(&c.sets[s][w])
			}
		}
	}
}

// NewL1 builds a cache for the given core (= tile) id.
func NewL1(core, tiles int, cfg L1Config, engine *sim.Engine, store *memory.Store, send SendFunc) *L1 {
	sets := make([][]l1Line, cfg.Sets)
	for i := range sets {
		sets[i] = make([]l1Line, cfg.Ways)
	}
	return &L1{
		core: core, tiles: tiles, cfg: cfg,
		engine: engine, store: store, send: send, sets: sets,
	}
}

// Stats returns a snapshot of the cache statistics.
func (c *L1) Stats() L1Stats { return c.stats }

func (c *L1) setOf(line memory.Addr) int {
	return int((uint64(line) / memory.LineSize) % uint64(c.cfg.Sets))
}

// lookup returns the way holding line, or nil.
func (c *L1) lookup(line memory.Addr) *l1Line {
	set := c.sets[c.setOf(line)]
	for i := range set {
		if set[i].state != Invalid && set[i].tag == line {
			return &set[i]
		}
	}
	return nil
}

func (c *L1) touch(l *l1Line) {
	c.tick++
	l.lru = c.tick
}

// State reports the MESI state of the line holding addr (Invalid if absent).
func (c *L1) State(addr memory.Addr) LineState {
	if l := c.lookup(memory.LineOf(addr)); l != nil {
		return l.state
	}
	return Invalid
}

// HWSyncHit reports whether addr's line is present, writable (E or M), and
// carries the HWSync bit — the §5 proxy for "can re-acquire this lock
// silently".
func (c *L1) HWSyncHit(addr memory.Addr) bool {
	l := c.lookup(memory.LineOf(addr))
	return l != nil && l.hwsync && (l.state == Exclusive || l.state == Modified)
}

// Access starts a memory operation. done is invoked (with the load/RMW
// result) when the operation commits; for stores the value is the stored
// value. Only one Access may be outstanding per L1.
func (c *L1) Access(addr memory.Addr, kind AccessKind, storeVal uint64, rmw RMWFunc, done func(val uint64)) {
	if c.pend != nil {
		panic(fmt.Sprintf("coherence: core %d issued a second outstanding access", c.core))
	}
	switch kind {
	case AccLoad:
		c.stats.Loads++
	case AccStore:
		c.stats.Stores++
	case AccRMW:
		c.stats.RMWs++
	}
	line := memory.LineOf(addr)
	l := c.lookup(line)
	if l != nil && (kind == AccLoad || l.state == Exclusive || l.state == Modified) {
		// Hit with sufficient permission.
		c.stats.Hits++
		c.touch(l)
		val := c.commit(l, addr, kind, storeVal, rmw)
		c.complete(c.opLatency(kind), val, done)
		return
	}
	// Miss or upgrade.
	c.stats.Misses++
	c.pendBuf = pendingOp{addr: addr, kind: kind, storeVal: storeVal, rmw: rmw, done: done}
	c.pend = &c.pendBuf
	req := ReqGetS
	if kind != AccLoad {
		req = ReqGetX
	}
	home := memory.HomeOf(line, c.tiles)
	c.send(home, c.pool.Get(Msg{Kind: req, Line: line, Core: c.core}))
}

// complete schedules done(val) after the operation's completion latency
// without allocating: the pair is parked on the controller (legal because at
// most one access is in flight) and handed to the static l1Complete handler.
func (c *L1) complete(after sim.Time, val uint64, done func(uint64)) {
	if c.compDone != nil {
		panic(fmt.Sprintf("coherence: core %d completion already pending", c.core))
	}
	c.compVal, c.compDone = val, done
	c.engine.AfterCall(after, l1Complete, c)
}

func l1Complete(arg any) {
	c := arg.(*L1)
	done, val := c.compDone, c.compVal
	c.compDone = nil
	done(val)
}

// opLatency returns the completion latency charged after commit.
func (c *L1) opLatency(kind AccessKind) sim.Time {
	if kind == AccRMW {
		return c.cfg.HitLatency + c.cfg.AtomicExtra
	}
	return c.cfg.HitLatency
}

// commit performs the functional effect of an operation on a line the cache
// holds with sufficient permission, updating the MESI state for writes.
func (c *L1) commit(l *l1Line, addr memory.Addr, kind AccessKind, storeVal uint64, rmw RMWFunc) uint64 {
	switch kind {
	case AccLoad:
		return c.store.Load(addr)
	case AccStore:
		l.state = Modified
		c.store.Store(addr, storeVal)
		return storeVal
	case AccRMW:
		l.state = Modified
		return rmw(c.store, addr)
	}
	panic("coherence: unknown access kind")
}

// Handle processes a coherence message addressed to this core.
func (c *L1) Handle(m *Msg) {
	switch m.Kind {
	case RspDataS, RspDataE:
		c.fill(m)
	case MsgInv:
		c.stats.InvReceived++
		if l := c.lookup(m.Line); l != nil {
			c.clearHWSync(l)
			l.state = Invalid
		}
		home := memory.HomeOf(m.Line, c.tiles)
		c.send(home, c.pool.Get(Msg{Kind: MsgInvAck, Line: m.Line, Core: c.core}))
	case MsgFwd:
		c.stats.FwdReceived++
		home := memory.HomeOf(m.Line, c.tiles)
		l := c.lookup(m.Line)
		if l == nil || (l.state != Exclusive && l.state != Modified) {
			c.send(home, c.pool.Get(Msg{Kind: MsgFwdMiss, Line: m.Line, Core: c.core}))
			return
		}
		if m.Intent == FwdDowngrade {
			l.state = Shared
			c.send(home, c.pool.Get(Msg{Kind: MsgFwdAckS, Line: m.Line, Core: c.core}))
		} else {
			c.clearHWSync(l)
			l.state = Invalid
			c.send(home, c.pool.Get(Msg{Kind: MsgFwdAckI, Line: m.Line, Core: c.core}))
		}
	default:
		panic(fmt.Sprintf("coherence: L1 %d got unexpected %v", c.core, m.Kind))
	}
}

func (c *L1) clearHWSync(l *l1Line) {
	if l.hwsync {
		l.hwsync = false
		c.stats.HWSyncCleared++
	}
}

// fill installs a granted line. Demand responses (Grant == false) must match
// the pending miss, which they complete. MSA-initiated grant fills
// (Grant == true) install the line and its HWSync bit without completing
// anything; a grant that collides with a pending demand miss on the same
// line is dropped — the demand response follows and supersedes it.
func (c *L1) fill(m *Msg) {
	if m.Grant {
		if c.pend != nil && memory.LineOf(c.pend.addr) == m.Line {
			return
		}
	} else if c.pend == nil || memory.LineOf(c.pend.addr) != m.Line {
		// A stray demand response can only be a model bug.
		panic(fmt.Sprintf("coherence: L1 %d unsolicited demand fill of %#x", c.core, m.Line))
	}
	solicited := !m.Grant
	l := c.lookup(m.Line)
	if l == nil {
		l = c.victim(m.Line)
		l.tag = m.Line
		l.hwsync = false
	}
	switch m.Kind {
	case RspDataS:
		l.state = Shared
	case RspDataE:
		if l.state != Modified {
			l.state = Exclusive
		}
	}
	if m.HWSync && (c.acceptHWSync == nil || c.acceptHWSync(m.Line)) {
		l.hwsync = true
		c.stats.HWSyncSet++
	}
	c.touch(l)
	if solicited {
		op := *c.pend
		c.pend = nil
		c.pendBuf = pendingOp{} // drop the rmw/done references
		val := c.commit(l, op.addr, op.kind, op.storeVal, op.rmw)
		c.complete(c.opLatency(op.kind), val, op.done)
	}
}

// victim selects and evicts a way in line's set, returning the freed slot.
func (c *L1) victim(line memory.Addr) *l1Line {
	set := c.sets[c.setOf(line)]
	var v *l1Line
	for i := range set {
		if set[i].state == Invalid {
			return &set[i]
		}
		if v == nil || set[i].lru < v.lru {
			v = &set[i]
		}
	}
	c.evict(v)
	return v
}

func (c *L1) evict(l *l1Line) {
	c.stats.Evictions++
	c.clearHWSync(l)
	home := memory.HomeOf(l.tag, c.tiles)
	switch l.state {
	case Shared:
		c.send(home, c.pool.Get(Msg{Kind: ReqPutS, Line: l.tag, Core: c.core}))
	case Exclusive:
		c.send(home, c.pool.Get(Msg{Kind: ReqPutE, Line: l.tag, Core: c.core}))
	case Modified:
		c.stats.Writebacks++
		c.send(home, c.pool.Get(Msg{Kind: ReqPutM, Line: l.tag, Core: c.core}))
	}
	l.state = Invalid
}
