// Package coherence implements the MESI directory protocol that connects
// private L1 caches to the distributed shared LLC over the mesh.
//
// Protocol shape (see DESIGN.md S4):
//
//   - Each line has a home tile (memory.HomeOf) holding its directory entry.
//   - Cores send GetS on read misses and GetX on write/RMW misses or
//     upgrades. The home responds with DataS or DataE after invalidating or
//     recalling other copies as needed.
//   - The home serializes transactions per line: conflicting requests queue
//     and are processed FIFO.
//   - Replacements send PutS/PutE/PutM notifications so the directory stays
//     precise; the protocol tolerates the resulting crossing races (an Inv
//     for an absent line is acked anyway, a Fwd that misses waits for the
//     in-flight writeback).
//
// The network is point-to-point ordered (same source, same destination),
// which the protocol relies on exactly where a real NoC virtual network
// would.
package coherence

import (
	"fmt"

	"misar/internal/memory"
)

// MsgKind enumerates coherence message types.
type MsgKind uint8

const (
	// Core -> home requests.
	ReqGetS MsgKind = iota // read miss: want at least Shared
	ReqGetX                // write/RMW miss or upgrade: want exclusive
	ReqPutS                // eviction notice of a Shared line
	ReqPutE                // eviction notice of a clean Exclusive line
	ReqPutM                // writeback of a Modified line

	// Home -> core responses and probes.
	RspDataS // grant Shared copy
	RspDataE // grant Exclusive copy (MESI E; becomes M on first write)
	MsgInv   // invalidate your copy
	MsgFwd   // recall: downgrade (for GetS) or invalidate (for GetX)

	// Core -> home probe replies.
	MsgInvAck  // invalidation acknowledged (sent even if line absent)
	MsgFwdAckS // owner downgraded to S, data returned
	MsgFwdAckI // owner invalidated, data returned
	MsgFwdMiss // owner no longer has the line (writeback in flight)
)

func (k MsgKind) String() string {
	names := [...]string{
		"GetS", "GetX", "PutS", "PutE", "PutM",
		"DataS", "DataE", "Inv", "Fwd",
		"InvAck", "FwdAckS", "FwdAckI", "FwdMiss",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// FwdIntent says what a MsgFwd asks the owner to do.
type FwdIntent uint8

const (
	FwdDowngrade  FwdIntent = iota // keep a Shared copy (GetS recall)
	FwdInvalidate                  // drop the line (GetX recall)
)

// Msg is a coherence message payload carried by the NoC.
type Msg struct {
	Kind   MsgKind
	Line   memory.Addr // line-aligned address
	Core   int         // requesting / responding core id
	Intent FwdIntent   // for MsgFwd
	HWSync bool        // for RspDataE: set the L1 HWSync bit on fill (§5)
	Grant  bool        // fill initiated by the MSA, not by a demand miss
}

// Message byte sizes: control messages are header-only; data messages carry
// a 64-byte line plus header.
const (
	CtrlBytes = 8
	DataBytes = 8 + memory.LineSize
)

// Bytes returns the wire size of the message.
func (m *Msg) Bytes() int {
	switch m.Kind {
	case RspDataS, RspDataE, ReqPutM, MsgFwdAckS, MsgFwdAckI:
		return DataBytes
	}
	return CtrlBytes
}

// MsgPool recycles coherence messages within one machine. Every message is
// consumed by exactly one Handle call at its destination, so the machine's
// delivery handler returns it here afterwards and the steady-state protocol
// traffic allocates nothing. A nil pool degrades to plain allocation, which
// lets tests wire controllers directly without managing message lifetimes.
type MsgPool struct{ free []*Msg }

// Get returns a message initialized to m, reusing a recycled record when one
// is available.
func (p *MsgPool) Get(m Msg) *Msg {
	if p == nil {
		fresh := m
		return &fresh
	}
	if k := len(p.free); k > 0 {
		r := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		*r = m
		return r
	}
	fresh := m
	return &fresh
}

// Put recycles a delivered message. The caller must guarantee no reference
// survives the destination handler's return.
func (p *MsgPool) Put(m *Msg) {
	if p == nil {
		return
	}
	*m = Msg{}
	p.free = append(p.free, m)
}
