package coherence

import (
	"fmt"

	"misar/internal/bitset"
	"misar/internal/memory"
	"misar/internal/sim"
)

// DirConfig holds LLC-slice timing.
type DirConfig struct {
	LLCLatency sim.Time // directory/LLC access latency charged per transaction
	MemLatency sim.Time // extra latency when a line is touched for the first time
}

// DefaultDirConfig mirrors a ~8-cycle LLC slice with ~90-cycle DRAM fills.
func DefaultDirConfig() DirConfig {
	return DirConfig{LLCLatency: 8, MemLatency: 90}
}

// DirStats counts directory activity.
type DirStats struct {
	GetS, GetX    uint64
	Grants        uint64
	InvSent       uint64
	FwdSent       uint64
	Writebacks    uint64
	ColdMisses    uint64
	Conflicts     uint64 // requests that queued behind a busy line
	MaxQueueDepth int
}

type dirState uint8

const (
	dirInvalid dirState = iota
	dirShared
	dirExclusive
)

// txnKind distinguishes demand transactions from MSA grant transactions.
type txnKind uint8

const (
	txnGetS txnKind = iota
	txnGetX
	txnGrant  // MSA-initiated exclusive grant with HWSync bit (§5)
	txnRevoke // MSA-initiated invalidation of all copies (standby revocation)
)

type txn struct {
	kind   txnKind
	core   int
	onDone func()
}

type dirEntry struct {
	// d and line are fixed at creation so the entry itself can be the
	// argument of the static start-transaction event handler.
	d    *Directory
	line memory.Addr

	state   dirState
	owner   int
	sharers bitset.Set // one bit per core, sized to the machine's tile count

	busy       bool
	cur        *txn
	waitq      []*txn
	pendingInv int
	ownerGone  bool
	awaitingWB bool
}

// Directory is the home-tile controller for all lines mapping to one tile:
// it owns the LLC slice's directory state and serializes transactions per
// line.
type Directory struct {
	tile   int
	tiles  int
	cfg    DirConfig
	engine *sim.Engine
	send   SendFunc
	lines  map[memory.Addr]*dirEntry
	// txnFree recycles transaction records; a line's current transaction
	// returns to the list when it concludes.
	txnFree []*txn
	// pool supplies outgoing message records (nil: plain allocation).
	pool  *MsgPool
	stats DirStats
	// extraLat, when installed, returns extra cycles to charge a transaction
	// before it starts (fault-campaign delayed coherence replies). Kept as a
	// plain func so the package stays decoupled from the injector.
	extraLat func() sim.Time
}

// SetMsgPool makes outgoing messages come from p (shared with the L1s; see
// L1.SetMsgPool).
func (d *Directory) SetMsgPool(p *MsgPool) { d.pool = p }

// SetExtraLatency installs a per-transaction extra-latency hook (nil
// removes it). The delay lands before the transaction starts, so per-line
// serialization and the reply protocol are unaffected — grants,
// invalidations, and fills simply arrive later.
func (d *Directory) SetExtraLatency(fn func() sim.Time) { d.extraLat = fn }

// NewDirectory builds the controller for one tile.
func NewDirectory(tile, tiles int, cfg DirConfig, engine *sim.Engine, send SendFunc) *Directory {
	return &Directory{
		tile: tile, tiles: tiles, cfg: cfg,
		engine: engine, send: send,
		lines: make(map[memory.Addr]*dirEntry),
	}
}

// Stats returns a snapshot of the directory statistics.
func (d *Directory) Stats() DirStats { return d.stats }

// IsExclusiveAt reports whether line is recorded as owned (E or M) by core.
// The MSA, co-located with this directory, uses it to decide whether a
// standby lock entry may still be silently re-acquired (§5).
func (d *Directory) IsExclusiveAt(line memory.Addr, core int) bool {
	e, ok := d.lines[memory.LineOf(line)]
	return ok && e.state == dirExclusive && e.owner == core
}

func (d *Directory) entry(line memory.Addr) (*dirEntry, bool) {
	e, ok := d.lines[line]
	if !ok {
		e = &dirEntry{d: d, line: line, sharers: bitset.New(d.tiles)}
		d.lines[line] = e
		d.stats.ColdMisses++
	}
	return e, !ok
}

// newTxn builds a transaction record, reusing a concluded one when possible.
func (d *Directory) newTxn(kind txnKind, core int, onDone func()) *txn {
	if k := len(d.txnFree); k > 0 {
		t := d.txnFree[k-1]
		d.txnFree[k-1] = nil
		d.txnFree = d.txnFree[:k-1]
		*t = txn{kind: kind, core: core, onDone: onDone}
		return t
	}
	return &txn{kind: kind, core: core, onDone: onDone}
}

// Handle processes a coherence message addressed to this home tile.
func (d *Directory) Handle(m *Msg) {
	line := memory.LineOf(m.Line)
	if memory.HomeOf(line, d.tiles) != d.tile {
		panic(fmt.Sprintf("coherence: tile %d is not home of %#x", d.tile, line))
	}
	switch m.Kind {
	case ReqGetS:
		d.stats.GetS++
		d.admit(line, d.newTxn(txnGetS, m.Core, nil))
	case ReqGetX:
		d.stats.GetX++
		d.admit(line, d.newTxn(txnGetX, m.Core, nil))
	case ReqPutS:
		d.handlePutS(line, m.Core)
	case ReqPutE, ReqPutM:
		if m.Kind == ReqPutM {
			d.stats.Writebacks++
		}
		d.handlePutEM(line, m.Core)
	case MsgInvAck:
		d.handleInvAck(line)
	case MsgFwdAckS:
		d.handleFwdAckS(line, m.Core)
	case MsgFwdAckI:
		d.handleFwdAckI(line)
	case MsgFwdMiss:
		d.handleFwdMiss(line)
	default:
		panic(fmt.Sprintf("coherence: directory %d got unexpected %v", d.tile, m.Kind))
	}
}

// GrantExclusive asks the directory to move line into core's L1 in Exclusive
// state with the HWSync bit set, invalidating or recalling other copies.
// onDone (may be nil) runs when the grant completes. Used by the MSA when it
// hands a lock to a core (§5).
func (d *Directory) GrantExclusive(line memory.Addr, core int, onDone func()) {
	d.stats.Grants++
	d.admit(memory.LineOf(line), d.newTxn(txnGrant, core, onDone))
}

// Revoke invalidates every cached copy of line, leaving it uncached. onDone
// (may be nil) runs when no copy remains. The MSA uses it before promoting a
// waiter past a standby lock entry (closing the silent re-acquire window)
// and before deallocating an entry whose HWSync block may be live.
func (d *Directory) Revoke(line memory.Addr, onDone func()) {
	d.admit(memory.LineOf(line), d.newTxn(txnRevoke, -1, onDone))
}

// admit queues or starts a transaction, charging LLC (and cold-miss) latency
// before processing begins.
func (d *Directory) admit(line memory.Addr, t *txn) {
	e, cold := d.entry(line)
	if e.busy {
		d.stats.Conflicts++
		e.waitq = append(e.waitq, t)
		if len(e.waitq) > d.stats.MaxQueueDepth {
			d.stats.MaxQueueDepth = len(e.waitq)
		}
		return
	}
	e.busy = true
	e.cur = t
	lat := d.cfg.LLCLatency
	if cold {
		lat += d.cfg.MemLatency
	}
	if d.extraLat != nil {
		lat += d.extraLat()
	}
	d.engine.AfterCall(lat, dirStart, e)
}

// dirStart is the static start-of-transaction event handler; arg is the
// *dirEntry. At most one such event per entry is ever in flight: admit
// schedules it only on the idle→busy transition and conclude only when
// handing the line to the next queued transaction.
func dirStart(arg any) {
	e := arg.(*dirEntry)
	e.d.start(e.line, e)
}

// start runs the admitted transaction against the entry's stable state.
func (d *Directory) start(line memory.Addr, e *dirEntry) {
	t := e.cur
	switch e.state {
	case dirInvalid:
		// MESI E optimization: first requester gets Exclusive even on GetS.
		d.finishExclusive(line, e)
	case dirShared:
		if t.kind == txnGetS {
			e.sharers.Add(t.core)
			d.respond(line, e, RspDataS)
			return
		}
		// GetX/grant: invalidate all sharers except the requester.
		// A revoke (core == -1) invalidates everyone.
		invs := e.sharers.Count()
		if e.sharers.Has(t.core) {
			invs--
		}
		if invs == 0 {
			d.finishExclusive(line, e)
			return
		}
		e.pendingInv = invs
		e.sharers.ForEach(func(c int) {
			if c == t.core {
				return
			}
			d.stats.InvSent++
			d.send(c, d.pool.Get(Msg{Kind: MsgInv, Line: line}))
		})
	case dirExclusive:
		if e.owner == t.core {
			// Degenerate re-request (e.g. a grant to the current owner, or a
			// demand response racing an earlier grant): re-grant Exclusive.
			d.finishExclusive(line, e)
			return
		}
		intent := FwdInvalidate
		if t.kind == txnGetS {
			intent = FwdDowngrade
		}
		// Note: ownerGone may already be true if the owner's writeback
		// arrived between admission and start; the Fwd below will then miss
		// and the FwdMiss handler completes the transaction. The flags are
		// cleared in respond(), never here.
		d.stats.FwdSent++
		d.send(e.owner, d.pool.Get(Msg{Kind: MsgFwd, Line: line, Intent: intent}))
	}
}

// finishExclusive completes the current transaction. For demand and grant
// transactions the line is granted exclusively to the requester; a revoke
// leaves the line uncached.
func (d *Directory) finishExclusive(line memory.Addr, e *dirEntry) {
	t := e.cur
	if t.kind == txnRevoke {
		e.state = dirInvalid
		e.owner = 0
		e.sharers.Clear()
		d.conclude(line, e, nil)
		return
	}
	e.state = dirExclusive
	e.owner = t.core
	e.sharers.Clear()
	e.sharers.Add(t.core)
	d.respond(line, e, RspDataE)
}

// respond sends the data grant for the current transaction and unbusies the
// line, starting the next queued transaction if any.
func (d *Directory) respond(line memory.Addr, e *dirEntry, kind MsgKind) {
	t := e.cur
	msg := d.pool.Get(Msg{Kind: kind, Line: line, Core: t.core})
	if t.kind == txnGrant {
		msg.Grant = true
		msg.HWSync = true
	}
	d.conclude(line, e, msg)
}

// conclude finishes the current transaction: deliver the response (if any),
// run the completion callback, and start the next queued transaction.
func (d *Directory) conclude(line memory.Addr, e *dirEntry, msg *Msg) {
	t := e.cur
	if msg != nil {
		d.send(t.core, msg)
	}
	if t.onDone != nil {
		t.onDone()
	}
	*t = txn{} // drop the callback before the record re-enters the pool
	d.txnFree = append(d.txnFree, t)
	e.busy = false
	e.cur = nil
	e.pendingInv = 0
	e.ownerGone = false
	e.awaitingWB = false
	if len(e.waitq) > 0 {
		next := e.waitq[0]
		e.waitq[0] = nil
		e.waitq = e.waitq[1:]
		e.busy = true
		e.cur = next
		d.engine.AfterCall(d.cfg.LLCLatency, dirStart, e)
	}
}

func (d *Directory) handlePutS(line memory.Addr, core int) {
	e, ok := d.lines[line]
	if !ok {
		return
	}
	e.sharers.Remove(core)
	if !e.busy && e.state == dirShared && e.sharers.Empty() {
		e.state = dirInvalid
	}
}

func (d *Directory) handlePutEM(line memory.Addr, core int) {
	e, ok := d.lines[line]
	if !ok || e.state != dirExclusive || e.owner != core {
		return // stale eviction notice; benign
	}
	if e.busy {
		// The current transaction's Fwd will miss at this (former) owner.
		e.ownerGone = true
		e.sharers.Remove(core)
		if e.awaitingWB {
			e.awaitingWB = false
			d.finishExclusive(line, e)
		}
		return
	}
	e.state = dirInvalid
	e.sharers.Clear()
}

func (d *Directory) handleInvAck(line memory.Addr) {
	e := d.mustBusy(line, "InvAck")
	e.pendingInv--
	if e.pendingInv == 0 {
		d.finishExclusive(line, e)
	}
}

func (d *Directory) handleFwdAckS(line memory.Addr, oldOwner int) {
	e := d.mustBusy(line, "FwdAckS")
	t := e.cur
	e.state = dirShared
	e.sharers.Clear()
	e.sharers.Add(oldOwner)
	e.sharers.Add(t.core)
	d.respond(line, e, RspDataS)
}

func (d *Directory) handleFwdAckI(line memory.Addr) {
	e := d.mustBusy(line, "FwdAckI")
	d.finishExclusive(line, e)
}

func (d *Directory) handleFwdMiss(line memory.Addr) {
	e := d.mustBusy(line, "FwdMiss")
	if e.ownerGone {
		d.finishExclusive(line, e)
		return
	}
	// The owner's writeback is still in flight; complete when it arrives.
	e.awaitingWB = true
}

func (d *Directory) mustBusy(line memory.Addr, what string) *dirEntry {
	e, ok := d.lines[line]
	if !ok || !e.busy {
		panic(fmt.Sprintf("coherence: directory %d got %s for idle line %#x", d.tile, what, line))
	}
	return e
}
