package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint("misar-run/v1\napp:streamcluster\n{...}")
	if _, ok := s.Get(fp); ok {
		t.Fatal("hit on empty store")
	}
	payload := []byte(`{"cycles":12345,"coverage":0.97}`)
	if err := s.Put(fp, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(fp)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v", st)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

// Fingerprint is the cross-process contract: if it drifts, every warm store
// silently goes cold. Pin it.
func TestFingerprintStable(t *testing.T) {
	const want = "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08"
	if got := Fingerprint("test"); got != want {
		t.Fatalf("Fingerprint(test) = %s, want %s", got, want)
	}
}

func TestReopenSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	fp := Fingerprint("key")
	s1, _ := Open(dir)
	if err := s1.Put(fp, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir) // a second process opening the same directory
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(fp)
	if !ok || string(got) != "payload" {
		t.Fatalf("after reopen: Get = %q, %v", got, ok)
	}
}

// corrupt applies fn to the single record file in the store directory.
func corrupt(t *testing.T, s *Store, fp string, fn func(path string)) {
	t.Helper()
	p := s.path(fp)
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	fn(p)
}

func TestCrashConsistency(t *testing.T) {
	cases := []struct {
		name string
		mut  func(t *testing.T, path string)
	}{
		{"truncated mid-write", func(t *testing.T, path string) {
			fi, _ := os.Stat(path)
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated to zero", func(t *testing.T, path string) {
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped payload bit", func(t *testing.T, path string) {
			raw, _ := os.ReadFile(path)
			raw[len(raw)-1] ^= 0x40
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"foreign file", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not a record"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"oversized length field", func(t *testing.T, path string) {
			raw, _ := os.ReadFile(path)
			raw[4], raw[5], raw[6], raw[7] = 0xff, 0xff, 0xff, 0x7f
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := Open(t.TempDir())
			fp := Fingerprint(tc.name)
			if err := s.Put(fp, []byte("the payload under test")); err != nil {
				t.Fatal(err)
			}
			corrupt(t, s, fp, func(path string) { tc.mut(t, path) })

			// Reopen (a fresh process) and read: must evict, not panic.
			s2, err := Open(s.Dir())
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := s2.Get(fp); ok {
				t.Fatal("corrupt record served as a hit")
			}
			if st := s2.Stats(); st.Evictions != 1 {
				t.Errorf("evictions = %d, want 1 (stats %+v)", st.Evictions, st)
			}
			if _, err := os.Stat(s2.path(fp)); !os.IsNotExist(err) {
				t.Errorf("corrupt record not removed: %v", err)
			}
			// The slot is reusable after eviction.
			if err := s2.Put(fp, []byte("rewritten")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s2.Get(fp); !ok || string(got) != "rewritten" {
				t.Fatalf("after rewrite: Get = %q, %v", got, ok)
			}
		})
	}
}

// A crash between CreateTemp and rename leaves a .tmp- orphan; it must never
// satisfy a lookup.
func TestOrphanTempIgnored(t *testing.T) {
	s, _ := Open(t.TempDir())
	fp := Fingerprint("orphan")
	shard := filepath.Dir(s.path(fp))
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(shard, ".tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fp); ok {
		t.Fatal("orphan temp file served as a hit")
	}
	if s.Len() != 0 {
		t.Errorf("Len counts temp files: %d", s.Len())
	}
}

func TestBadFingerprintRejected(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.Put("short", []byte("x")); err == nil {
		t.Error("Put accepted a malformed fingerprint")
	}
	if _, ok := s.Get("../../etc/passwd"); ok {
		t.Error("Get accepted a malformed fingerprint")
	}
}

// TestConcurrentSharedDir hammers one directory through two independent
// Store handles (standing in for two processes) with mixed readers and
// writers, including same-fingerprint write races. Run under -race in CI.
func TestConcurrentSharedDir(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir)
	b, _ := Open(dir)
	stores := []*Store{a, b}

	const keys = 8
	const workers = 16
	const iters = 50
	payload := func(k int) []byte { return []byte(fmt.Sprintf(`{"k":%d,"v":"result"}`, k)) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := stores[w%len(stores)]
			for i := 0; i < iters; i++ {
				k := (w + i) % keys
				fp := Fingerprint(fmt.Sprintf("key-%d", k))
				if w%2 == 0 {
					if err := s.Put(fp, payload(k)); err != nil {
						t.Error(err)
						return
					}
				}
				if got, ok := s.Get(fp); ok && !bytes.Equal(got, payload(k)) {
					t.Errorf("torn read for key %d: %q", k, got)
					return
				}
			}
		}()
	}
	wg.Wait()

	// After the dust settles every key written must verify.
	for k := 0; k < keys; k++ {
		fp := Fingerprint(fmt.Sprintf("key-%d", k))
		if got, ok := a.Get(fp); !ok || !bytes.Equal(got, payload(k)) {
			t.Errorf("final read key %d: %q, %v", k, got, ok)
		}
	}
}
