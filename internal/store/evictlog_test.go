package store

import (
	"context"
	"log/slog"
	"os"
	"sync"
	"testing"

	"misar/internal/obs"
)

// recordingHandler captures slog records for assertion.
type recordingHandler struct {
	mu   sync.Mutex
	recs []map[string]string
}

func (h *recordingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *recordingHandler) Handle(_ context.Context, r slog.Record) error {
	attrs := map[string]string{"msg": r.Message}
	r.Attrs(func(a slog.Attr) bool {
		attrs[a.Key] = a.Value.String()
		return true
	})
	h.mu.Lock()
	h.recs = append(h.recs, attrs)
	h.mu.Unlock()
	return nil
}
func (h *recordingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *recordingHandler) WithGroup(string) slog.Handler      { return h }

func (h *recordingHandler) snapshot() []map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]map[string]string(nil), h.recs...)
}

// A torn write is evicted exactly once — one counter tick, one log line
// carrying the fingerprint, the failure reason, and the trace ID of the
// request that tripped over it. The retry is then a clean miss: no second
// eviction, no second log.
func TestTornWriteEvictionLoggedOnce(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := &recordingHandler{}
	s.SetLogger(slog.New(h))

	fp := Fingerprint("torn write under test")
	if err := s.Put(fp, []byte(`{"cycles":999}`)); err != nil {
		t.Fatal(err)
	}
	p := s.path(fp)
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	ctx := obs.WithTrace(context.Background(), "trace-evict-log")
	if _, ok := s.GetCtx(ctx, fp); ok {
		t.Fatal("torn record served as a hit")
	}
	if _, ok := s.GetCtx(ctx, fp); ok {
		t.Fatal("second lookup served a hit")
	}

	if ev := s.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want exactly 1", ev)
	}
	recs := h.snapshot()
	if len(recs) != 1 {
		t.Fatalf("eviction log lines = %d, want exactly 1: %v", len(recs), recs)
	}
	r := recs[0]
	if r["msg"] != "store: corrupt record evicted" {
		t.Errorf("message = %q", r["msg"])
	}
	if r["fingerprint"] != fp {
		t.Errorf("fingerprint attr = %q, want %q", r["fingerprint"], fp)
	}
	if r["reason"] == "" {
		t.Error("log line has no verification-failure reason")
	}
	if r["trace"] != "trace-evict-log" {
		t.Errorf("trace attr = %q, want the request's trace ID", r["trace"])
	}
}

// Distinct corruption modes surface distinct reasons, so an operator can
// tell bit rot (crc) from a torn write (truncation).
func TestEvictionReasonsDistinguishCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mut    func(t *testing.T, path string)
		reason string
	}{
		{"truncation", func(t *testing.T, path string) {
			fi, _ := os.Stat(path)
			if err := os.Truncate(path, fi.Size()-2); err != nil {
				t.Fatal(err)
			}
		}, "length mismatch"},
		{"bit rot", func(t *testing.T, path string) {
			raw, _ := os.ReadFile(path)
			raw[len(raw)-1] ^= 1
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "crc mismatch"},
		{"foreign file", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
				t.Fatal(err)
			}
		}, "bad magic or truncated header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := Open(t.TempDir())
			h := &recordingHandler{}
			s.SetLogger(slog.New(h))
			fp := Fingerprint(tc.name)
			if err := s.Put(fp, []byte("victim payload")); err != nil {
				t.Fatal(err)
			}
			tc.mut(t, s.path(fp))
			if _, ok := s.Get(fp); ok {
				t.Fatal("corrupt record served")
			}
			recs := h.snapshot()
			if len(recs) != 1 || recs[0]["reason"] != tc.reason {
				t.Fatalf("log = %v, want one line with reason %q", recs, tc.reason)
			}
		})
	}
}
