// Package store is a content-addressed, disk-persistent result store: the
// durable form of the harness.Runner memo cache. Entries are keyed by the
// SHA-256 fingerprint of a canonical run key (experiment kind + JSON machine
// config + library + cycle budget), so any process that rebuilds the same key
// — misar-fig, misar-bench, misar-served, across restarts — reads the same
// record.
//
// Durability and corruption model: every record is written to a temp file,
// fsync'd, and renamed into place, so a crash never leaves a partially
// written record under a live name. Reads verify a magic, a length, and a
// CRC-32 before trusting the payload; any mismatch (torn rename target,
// truncated file, bit rot, foreign file) evicts the entry — the file is
// removed and the lookup reports a miss. A corrupt store therefore costs a
// re-simulation, never a panic or a wrong result.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sync/atomic"

	"misar/internal/obs"
)

// magic brands every record file; "MSR1" bumps with any layout change.
const magic = "MSR1"

// headerSize is magic + uint32 payload length + uint32 CRC-32 (IEEE).
const headerSize = len(magic) + 4 + 4

// maxPayload bounds a record payload; a metered 64-tile report is ~100KB,
// so 64MB is three orders of magnitude of headroom while still rejecting a
// corrupt length field before allocating.
const maxPayload = 64 << 20

// Stats counts store activity since Open. Eviction means a record failed
// verification and was deleted.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
}

// Store is a handle on one store directory. It is safe for concurrent use
// by multiple goroutines and, because records are immutable once renamed
// into place, by multiple processes sharing the directory.
type Store struct {
	dir string
	log atomic.Pointer[slog.Logger] // nil disables eviction logging

	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	evictions atomic.Uint64
}

// Open returns a Store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetLogger attaches a structured logger. Corruption evictions — silent
// before — are logged with the fingerprint, file path, verification failure
// reason, and (via GetCtx) the trace ID of the request that tripped over
// the bad record, so an operator can tell bit rot from a torn write and
// correlate it with the job that paid the re-simulation.
func (s *Store) SetLogger(l *slog.Logger) { s.log.Store(l) }

// Fingerprint maps a canonical run key to its content address (the SHA-256
// hex digest). Callers pass fingerprints, not raw keys, to Get/Put so the
// hashing policy lives in exactly one place.
func Fingerprint(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// path shards records by the first fingerprint byte to keep directory
// listings sane for large sweeps (16/64 full figure sweep is ~550 records).
func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp[:2], fp[2:]+".rec")
}

// Get returns the payload stored under fp. A record that fails any
// verification step is evicted (removed) and reported as a miss.
func (s *Store) Get(fp string) ([]byte, bool) {
	return s.GetCtx(context.Background(), fp)
}

// GetCtx is Get with a context for observability only: when the ctx carries
// a trace ID (obs.WithTrace) an eviction log line is tagged with it. The
// lookup itself never blocks on the context.
func (s *Store) GetCtx(ctx context.Context, fp string) ([]byte, bool) {
	if len(fp) != 2*sha256.Size {
		s.misses.Add(1)
		return nil, false
	}
	p := s.path(fp)
	raw, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, reason := decode(raw)
	if reason != "" {
		os.Remove(p)
		s.evictions.Add(1)
		s.misses.Add(1)
		if l := s.log.Load(); l != nil {
			attrs := []slog.Attr{
				slog.String("fingerprint", fp),
				slog.String("path", p),
				slog.String("reason", reason),
				slog.Int("bytes", len(raw)),
			}
			if id := obs.TraceIDOf(ctx); id != "" {
				attrs = append(attrs, slog.String("trace", id))
			}
			l.LogAttrs(ctx, slog.LevelWarn, "store: corrupt record evicted", attrs...)
		}
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// decode verifies a record image and returns its payload; a non-empty
// reason names the verification step that failed.
func decode(raw []byte) (payload []byte, reason string) {
	if len(raw) < headerSize || string(raw[:len(magic)]) != magic {
		return nil, "bad magic or truncated header"
	}
	n := binary.LittleEndian.Uint32(raw[len(magic):])
	sum := binary.LittleEndian.Uint32(raw[len(magic)+4:])
	if n > maxPayload || len(raw) != headerSize+int(n) {
		return nil, "length mismatch"
	}
	payload = raw[headerSize:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, "crc mismatch"
	}
	return payload, ""
}

// PutCtx is Put with a context for observability symmetry with GetCtx; the
// write itself never blocks on the context.
func (s *Store) PutCtx(_ context.Context, fp string, payload []byte) error {
	return s.Put(fp, payload)
}

// Put stores payload under fp, atomically: the record is staged in a temp
// file, fsync'd, and renamed over the final name. Concurrent writers of the
// same fingerprint are harmless — both write identical bytes (content
// addressing) and rename is atomic, so readers see one complete record.
func (s *Store) Put(fp string, payload []byte) error {
	if len(fp) != 2*sha256.Size {
		return fmt.Errorf("store: bad fingerprint %q", fp)
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("store: payload %d bytes exceeds limit", len(payload))
	}
	p := s.path(fp)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[len(magic)+4:], crc32.ChecksumIEEE(payload))

	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(hdr[:]); err == nil {
		_, err = tmp.Write(payload)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// Len walks the store and counts verified-extension record files (it does
// not validate contents; Get does that lazily). Used by tests and smoke
// checks, not hot paths.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".rec" {
			n++
		}
		return nil
	})
	return n
}

// Stats returns the activity counters since Open.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Evictions: s.evictions.Load(),
	}
}
