package isa

import "testing"

func TestResultString(t *testing.T) {
	cases := map[Result]string{
		Success:    "SUCCESS",
		Fail:       "FAIL",
		Abort:      "ABORT",
		Result(99): "Result(99)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Result(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestSyncOpString(t *testing.T) {
	cases := map[SyncOp]string{
		OpLock:       "LOCK",
		OpUnlock:     "UNLOCK",
		OpBarrier:    "BARRIER",
		OpCondWait:   "COND_WAIT",
		OpCondSignal: "COND_SIGNAL",
		OpCondBcast:  "COND_BCAST",
		OpFinish:     "FINISH",
		OpSuspend:    "SUSPEND",
		OpLockSilent: "LOCK_SILENT",
		SyncOp(200):  "SyncOp(200)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("SyncOp.String() = %q, want %q", got, want)
		}
	}
}

func TestAcquireReleasePartition(t *testing.T) {
	acquires := []SyncOp{OpLock, OpBarrier, OpCondWait}
	releases := []SyncOp{OpUnlock, OpCondSignal, OpCondBcast}
	neither := []SyncOp{OpFinish, OpSuspend, OpLockSilent}

	for _, op := range acquires {
		if !op.IsAcquire() || op.IsRelease() {
			t.Errorf("%v: want acquire-only", op)
		}
	}
	for _, op := range releases {
		if op.IsAcquire() || !op.IsRelease() {
			t.Errorf("%v: want release-only", op)
		}
	}
	for _, op := range neither {
		if op.IsAcquire() || op.IsRelease() {
			t.Errorf("%v: want neither acquire nor release", op)
		}
	}
}

func TestTypeOf(t *testing.T) {
	cases := []struct {
		op   SyncOp
		want SyncType
		ok   bool
	}{
		{OpLock, TypeLock, true},
		{OpUnlock, TypeLock, true},
		{OpLockSilent, TypeLock, true},
		{OpBarrier, TypeBarrier, true},
		{OpCondWait, TypeCond, true},
		{OpCondSignal, TypeCond, true},
		{OpCondBcast, TypeCond, true},
		{OpFinish, 0, false},
		{OpSuspend, 0, false},
	}
	for _, c := range cases {
		got, ok := TypeOf(c.op)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("TypeOf(%v) = %v,%v; want %v,%v", c.op, got, ok, c.want, c.ok)
		}
	}
}

func TestSyncTypeString(t *testing.T) {
	if TypeLock.String() != "lock" || TypeBarrier.String() != "barrier" || TypeCond.String() != "cond" {
		t.Error("SyncType String mismatch")
	}
	if SyncType(9).String() != "SyncType(9)" {
		t.Error("unknown SyncType String mismatch")
	}
}
