// Package isa defines the MiSAR ISA extension: the six synchronization
// instructions visible to software (LOCK, UNLOCK, BARRIER, COND_WAIT,
// COND_SIGNAL, COND_BCAST), the FINISH notification, the SUSPEND and
// LOCK_SILENT machine operations, and the tri-state result every
// synchronization instruction returns (SUCCESS, FAIL, ABORT).
//
// The contract (paper §3): a synchronization instruction acts as a memory
// fence and begins its activity when it is next to commit. SUCCESS means the
// operation completed in hardware; FAIL means it could not be performed in
// hardware and software must take over; ABORT means the MSA terminated the
// operation because of OS thread scheduling (suspend/migration).
package isa

import "fmt"

// Result is the return value of a synchronization instruction.
type Result uint8

const (
	// Success: the operation was performed by the hardware accelerator.
	Success Result = iota
	// Fail: the operation cannot be performed in hardware; the software
	// fallback implementation must be used.
	Fail
	// Abort: the MSA terminated the operation due to OS thread scheduling
	// (suspension, migration, interrupt).
	Abort
)

func (r Result) String() string {
	switch r {
	case Success:
		return "SUCCESS"
	case Fail:
		return "FAIL"
	case Abort:
		return "ABORT"
	}
	return fmt.Sprintf("Result(%d)", uint8(r))
}

// SyncOp identifies a synchronization instruction or machine operation sent
// to the MSA home tile.
type SyncOp uint8

const (
	OpLock SyncOp = iota
	OpUnlock
	OpBarrier
	OpCondWait
	OpCondSignal
	OpCondBcast
	OpFinish     // software-side exit notification (OMU decrement)
	OpSuspend    // core-initiated dequeue on context switch
	OpLockSilent // HWSync-bit fast re-acquire notification (§5)
)

func (op SyncOp) String() string {
	switch op {
	case OpLock:
		return "LOCK"
	case OpUnlock:
		return "UNLOCK"
	case OpBarrier:
		return "BARRIER"
	case OpCondWait:
		return "COND_WAIT"
	case OpCondSignal:
		return "COND_SIGNAL"
	case OpCondBcast:
		return "COND_BCAST"
	case OpFinish:
		return "FINISH"
	case OpSuspend:
		return "SUSPEND"
	case OpLockSilent:
		return "LOCK_SILENT"
	}
	return fmt.Sprintf("SyncOp(%d)", uint8(op))
}

// IsAcquire reports whether op is an acquire-type operation, i.e. one for
// which the MSA may allocate a new entry (paper §3.1).
func (op SyncOp) IsAcquire() bool {
	return op == OpLock || op == OpBarrier || op == OpCondWait
}

// IsRelease reports whether op is a release-type operation, which never
// allocates an entry and defaults to software on a miss.
func (op SyncOp) IsRelease() bool {
	return op == OpUnlock || op == OpCondSignal || op == OpCondBcast
}

// SyncType is the synchronization class recorded in an MSA entry's 2-bit
// Type field.
type SyncType uint8

const (
	TypeLock SyncType = iota
	TypeBarrier
	TypeCond
)

func (t SyncType) String() string {
	switch t {
	case TypeLock:
		return "lock"
	case TypeBarrier:
		return "barrier"
	case TypeCond:
		return "cond"
	}
	return fmt.Sprintf("SyncType(%d)", uint8(t))
}

// TypeOf maps an instruction to the entry type it operates on. FINISH and
// SUSPEND address whichever entry the address resolves to, so they have no
// intrinsic type and TypeOf reports ok=false for them.
func TypeOf(op SyncOp) (t SyncType, ok bool) {
	switch op {
	case OpLock, OpUnlock, OpLockSilent:
		return TypeLock, true
	case OpBarrier:
		return TypeBarrier, true
	case OpCondWait, OpCondSignal, OpCondBcast:
		return TypeCond, true
	}
	return 0, false
}

// Addr is a 64-bit physical address of a synchronization variable.
type Addr uint64
