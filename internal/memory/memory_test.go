package memory

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0}, {1, 0}, {63, 0}, {64, 64}, {127, 64}, {128, 128},
	}
	for _, c := range cases {
		if got := LineOf(c.in); got != c.want {
			t.Errorf("LineOf(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestWordOf(t *testing.T) {
	if WordOf(13) != 8 || WordOf(8) != 8 || WordOf(7) != 0 {
		t.Error("WordOf misaligned")
	}
}

func TestHomeOfInterleaving(t *testing.T) {
	// Consecutive lines go to consecutive tiles.
	for i := 0; i < 100; i++ {
		a := Addr(i * LineSize)
		if got := HomeOf(a, 16); got != i%16 {
			t.Fatalf("HomeOf(line %d) = %d, want %d", i, got, i%16)
		}
	}
	// All addresses within a line share a home.
	for off := Addr(0); off < LineSize; off++ {
		if HomeOf(320+off, 16) != HomeOf(320, 16) {
			t.Fatal("home differs within a line")
		}
	}
}

func TestStoreLoadStore(t *testing.T) {
	s := NewStore()
	if s.Load(100) != 0 {
		t.Fatal("fresh store not zero")
	}
	s.Store(100, 42)
	if s.Load(100) != 42 {
		t.Fatal("store/load mismatch")
	}
	// Same word, different byte offset.
	if s.Load(96+3) != s.Load(96) {
		t.Fatal("sub-word addressing broken")
	}
}

func TestStoreAdd(t *testing.T) {
	s := NewStore()
	if old := s.Add(8, 5); old != 0 {
		t.Fatalf("Add returned %d, want 0", old)
	}
	if old := s.Add(8, 3); old != 5 {
		t.Fatalf("Add returned %d, want 5", old)
	}
	if s.Load(8) != 8 {
		t.Fatalf("final = %d, want 8", s.Load(8))
	}
}

func TestStoreSwap(t *testing.T) {
	s := NewStore()
	s.Store(16, 7)
	if old := s.Swap(16, 9); old != 7 {
		t.Fatalf("Swap returned %d", old)
	}
	if s.Load(16) != 9 {
		t.Fatal("Swap did not store")
	}
}

func TestStoreCAS(t *testing.T) {
	s := NewStore()
	s.Store(24, 1)
	if old, ok := s.CompareAndSwap(24, 2, 5); ok || old != 1 {
		t.Fatal("CAS should fail")
	}
	if old, ok := s.CompareAndSwap(24, 1, 5); !ok || old != 1 {
		t.Fatal("CAS should succeed")
	}
	if s.Load(24) != 5 {
		t.Fatal("CAS did not store")
	}
}

// Property: LineOf is idempotent and HomeOf is stable under any offset
// within the line.
func TestPropertyLineAlignment(t *testing.T) {
	f := func(a Addr, tiles uint8) bool {
		n := int(tiles%64) + 1
		l := LineOf(a)
		return LineOf(l) == l && l <= a && a-l < LineSize &&
			HomeOf(a, n) == HomeOf(l, n) && HomeOf(a, n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is equivalent to load+store.
func TestPropertyAdd(t *testing.T) {
	f := func(a Addr, init, delta uint64) bool {
		s := NewStore()
		s.Store(a, init)
		old := s.Add(a, delta)
		return old == init && s.Load(a) == init+delta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Shared-mode Store must behave exactly like the serial Store under a
// single goroutine...
func TestSharedStoreMatchesSerial(t *testing.T) {
	f := func(a Addr, init, delta, v, casOld, casNew uint64) bool {
		ser, sh := NewStore(), NewSharedStore()
		if !sh.Shared() || ser.Shared() {
			return false
		}
		for _, s := range []*Store{ser, sh} {
			s.Store(a, init)
		}
		if ser.Add(a, delta) != sh.Add(a, delta) || ser.Load(a) != sh.Load(a) {
			return false
		}
		if ser.Swap(a, v) != sh.Swap(a, v) {
			return false
		}
		o1, ok1 := ser.CompareAndSwap(a, casOld, casNew)
		o2, ok2 := sh.CompareAndSwap(a, casOld, casNew)
		return o1 == o2 && ok1 == ok2 && ser.Load(a) == sh.Load(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ...and must survive concurrent hammering from many goroutines: per-word
// atomicity of Add (sums conserved) and no map-level races (run with -race).
func TestSharedStoreConcurrent(t *testing.T) {
	s := NewSharedStore()
	const (
		workers = 8
		words   = 32 // deliberately fewer than stripes AND colliding across them
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				a := Addr(((seed*2654435761 + uint64(i)) % words) * WordSize)
				s.Add(a, 1)
				s.Load(a)
				if i%7 == 0 {
					s.CompareAndSwap(a+words*WordSize, 0, seed) // disjoint CAS area
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	var total uint64
	for i := 0; i < words; i++ {
		total += s.Load(Addr(i * WordSize))
	}
	if want := uint64(workers * rounds); total != want {
		t.Fatalf("concurrent Adds lost updates: total %d, want %d", total, want)
	}
}
