// Package memory provides the functional (value-holding) memory model and
// address arithmetic shared by the timing model.
//
// The simulator separates function from timing, as architectural simulators
// commonly do: values live in a single flat Store and are read/written at the
// instant an access commits, while the coherence protocol and NoC determine
// *when* that instant occurs. Because the event kernel is single threaded and
// the directory serializes conflicting transactions per line, the resulting
// memory is linearizable.
package memory

import (
	"fmt"
	"sync"
)

// LineSize is the coherence granularity in bytes.
const LineSize = 64

// WordSize is the granularity of the functional store.
const WordSize = 8

// Addr is a 64-bit physical address.
type Addr uint64

// LineOf returns the line-aligned base address containing a.
func LineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// WordOf returns the word-aligned address containing a.
func WordOf(a Addr) Addr { return a &^ (WordSize - 1) }

// HomeOf maps a line to its home tile (LLC slice and directory location) by
// low-order line interleaving, the mapping the MSA shares (paper §3).
func HomeOf(a Addr, tiles int) int {
	return int((uint64(a) / LineSize) % uint64(tiles))
}

// Store is the flat functional memory, word granular. The zero value is an
// all-zeroes memory.
//
// A Store built with NewStore is the serial mode: a single flat map with no
// synchronization, matching the single-threaded event kernel. A Store built
// with NewSharedStore is safe for concurrent access from the sharded kernel:
// words live in lock-striped sub-maps, so accesses to different stripes never
// contend and Go's map implementation is never raced. The *model-level*
// serialization of conflicting accesses is still the coherence protocol's
// job (permission transfer between tiles costs at least one NoC hop, which
// exceeds the shard window width); the stripes only make the Go-level map
// mutation safe and linearizable per word.
type Store struct {
	words   map[Addr]uint64 // serial mode; nil in shared mode
	stripes []storeStripe   // shared mode; nil in serial mode
	mask    uint64          // len(stripes)-1, stripes is a power of two
}

// storeStripe is one lock-guarded sub-map, padded so neighboring stripes do
// not share a cache line under concurrent hammering.
type storeStripe struct {
	mu    sync.Mutex
	words map[Addr]uint64
	_     [40]byte
}

// NewStore returns an empty (all-zero) memory for the serial kernel.
func NewStore() *Store {
	return &Store{words: make(map[Addr]uint64)}
}

// sharedStripes is the stripe count of a shared store. 64 stripes keep the
// probability of two concurrently-executing shards colliding on a stripe
// low while staying cheap to construct per simulated machine.
const sharedStripes = 64

// NewSharedStore returns an empty memory safe for concurrent access from
// multiple shard goroutines.
func NewSharedStore() *Store {
	s := &Store{stripes: make([]storeStripe, sharedStripes), mask: sharedStripes - 1}
	for i := range s.stripes {
		s.stripes[i].words = make(map[Addr]uint64)
	}
	return s
}

// Shared reports whether the store is in the concurrent (striped) mode.
func (s *Store) Shared() bool { return s.stripes != nil }

// stripe returns the stripe owning word-aligned address w.
func (s *Store) stripe(w Addr) *storeStripe {
	// Word index mixed so striding by one word or one line both spread.
	h := uint64(w) >> 3
	h ^= h >> 7
	return &s.stripes[h&s.mask]
}

// Load returns the 64-bit word containing a.
func (s *Store) Load(a Addr) uint64 {
	w := WordOf(a)
	if s.stripes == nil {
		return s.words[w]
	}
	st := s.stripe(w)
	st.mu.Lock()
	v := st.words[w]
	st.mu.Unlock()
	return v
}

// Store writes the 64-bit word containing a.
func (s *Store) Store(a Addr, v uint64) {
	w := WordOf(a)
	if s.stripes == nil {
		s.words[w] = v
		return
	}
	st := s.stripe(w)
	st.mu.Lock()
	st.words[w] = v
	st.mu.Unlock()
}

// Add atomically adds delta and returns the previous value. Atomicity is
// inherent in serial mode (the caller invokes this at commit time under the
// single-threaded kernel) and lock-guaranteed in shared mode.
func (s *Store) Add(a Addr, delta uint64) uint64 {
	w := WordOf(a)
	if s.stripes == nil {
		old := s.words[w]
		s.words[w] = old + delta
		return old
	}
	st := s.stripe(w)
	st.mu.Lock()
	old := st.words[w]
	st.words[w] = old + delta
	st.mu.Unlock()
	return old
}

// Swap stores v and returns the previous value.
func (s *Store) Swap(a Addr, v uint64) uint64 {
	w := WordOf(a)
	if s.stripes == nil {
		old := s.words[w]
		s.words[w] = v
		return old
	}
	st := s.stripe(w)
	st.mu.Lock()
	old := st.words[w]
	st.words[w] = v
	st.mu.Unlock()
	return old
}

// CompareAndSwap stores newV if the current value equals oldV, returning the
// previous value and whether the swap happened.
func (s *Store) CompareAndSwap(a Addr, oldV, newV uint64) (uint64, bool) {
	w := WordOf(a)
	if s.stripes == nil {
		cur := s.words[w]
		if cur == oldV {
			s.words[w] = newV
			return cur, true
		}
		return cur, false
	}
	st := s.stripe(w)
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.words[w]
	if cur == oldV {
		st.words[w] = newV
		return cur, true
	}
	return cur, false
}

func (s *Store) String() string {
	if s.stripes != nil {
		n := 0
		for i := range s.stripes {
			s.stripes[i].mu.Lock()
			n += len(s.stripes[i].words)
			s.stripes[i].mu.Unlock()
		}
		return fmt.Sprintf("Store{%d words, shared}", n)
	}
	return fmt.Sprintf("Store{%d words}", len(s.words))
}
