// Package memory provides the functional (value-holding) memory model and
// address arithmetic shared by the timing model.
//
// The simulator separates function from timing, as architectural simulators
// commonly do: values live in a single flat Store and are read/written at the
// instant an access commits, while the coherence protocol and NoC determine
// *when* that instant occurs. Because the event kernel is single threaded and
// the directory serializes conflicting transactions per line, the resulting
// memory is linearizable.
package memory

import "fmt"

// LineSize is the coherence granularity in bytes.
const LineSize = 64

// WordSize is the granularity of the functional store.
const WordSize = 8

// Addr is a 64-bit physical address.
type Addr uint64

// LineOf returns the line-aligned base address containing a.
func LineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// WordOf returns the word-aligned address containing a.
func WordOf(a Addr) Addr { return a &^ (WordSize - 1) }

// HomeOf maps a line to its home tile (LLC slice and directory location) by
// low-order line interleaving, the mapping the MSA shares (paper §3).
func HomeOf(a Addr, tiles int) int {
	return int((uint64(a) / LineSize) % uint64(tiles))
}

// Store is the flat functional memory, word granular. The zero value is an
// all-zeroes memory.
type Store struct {
	words map[Addr]uint64
}

// NewStore returns an empty (all-zero) memory.
func NewStore() *Store {
	return &Store{words: make(map[Addr]uint64)}
}

// Load returns the 64-bit word containing a.
func (s *Store) Load(a Addr) uint64 {
	return s.words[WordOf(a)]
}

// Store writes the 64-bit word containing a.
func (s *Store) Store(a Addr, v uint64) {
	s.words[WordOf(a)] = v
}

// Add atomically adds delta and returns the previous value. Atomicity is
// inherent: the caller invokes this at commit time under the single-threaded
// kernel.
func (s *Store) Add(a Addr, delta uint64) uint64 {
	w := WordOf(a)
	old := s.words[w]
	s.words[w] = old + delta
	return old
}

// Swap stores v and returns the previous value.
func (s *Store) Swap(a Addr, v uint64) uint64 {
	w := WordOf(a)
	old := s.words[w]
	s.words[w] = v
	return old
}

// CompareAndSwap stores newV if the current value equals oldV, returning the
// previous value and whether the swap happened.
func (s *Store) CompareAndSwap(a Addr, oldV, newV uint64) (uint64, bool) {
	w := WordOf(a)
	cur := s.words[w]
	if cur == oldV {
		s.words[w] = newV
		return cur, true
	}
	return cur, false
}

func (s *Store) String() string {
	return fmt.Sprintf("Store{%d words}", len(s.words))
}
