package machine

import (
	"encoding/json"
	"fmt"
	"os"
)

// Machine configurations are plain data, so they round-trip through JSON —
// useful for pinning an experiment's exact parameters next to its results
// or sweeping parameters from scripts (misar-sim -config-file).

// SaveConfig writes cfg to path as indented JSON.
func SaveConfig(path string, cfg Config) error {
	b, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("machine: marshal config: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("machine: write config: %w", err)
	}
	return nil
}

// LoadConfig reads a JSON machine configuration and validates it.
func LoadConfig(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("machine: read config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(b, &cfg); err != nil {
		return Config{}, fmt.Errorf("machine: parse config: %w", err)
	}
	if err := Validate(cfg); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate rejects configurations the model cannot run.
func Validate(cfg Config) error {
	switch {
	case cfg.Tiles < 1 || cfg.Tiles > 64:
		return fmt.Errorf("machine: tiles %d out of range [1,64]", cfg.Tiles)
	case cfg.NoC.Width*cfg.NoC.Height < cfg.Tiles:
		return fmt.Errorf("machine: %dx%d mesh smaller than %d tiles",
			cfg.NoC.Width, cfg.NoC.Height, cfg.Tiles)
	case cfg.L1.Sets < 1 || cfg.L1.Ways < 1:
		return fmt.Errorf("machine: invalid L1 geometry %dx%d", cfg.L1.Sets, cfg.L1.Ways)
	case cfg.MSA.Entries == 0:
		return fmt.Errorf("machine: MSA entries must be nonzero (negative = unbounded); use CPU mode MSA-0 for no accelerator")
	case cfg.MSA.OMUCounters < 1:
		return fmt.Errorf("machine: OMU needs at least one counter")
	}
	return nil
}
