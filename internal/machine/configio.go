package machine

import (
	"encoding/json"
	"fmt"
	"os"

	"misar/internal/cpu"
)

// Machine configurations are plain data, so they round-trip through JSON —
// useful for pinning an experiment's exact parameters next to its results
// or sweeping parameters from scripts (misar-sim -config-file).

// SaveConfig writes cfg to path as indented JSON.
func SaveConfig(path string, cfg Config) error {
	b, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("machine: marshal config: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("machine: write config: %w", err)
	}
	return nil
}

// LoadConfig reads a JSON machine configuration and validates it.
func LoadConfig(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("machine: read config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(b, &cfg); err != nil {
		return Config{}, fmt.Errorf("machine: parse config: %w", err)
	}
	if err := Validate(cfg); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate rejects configurations the model cannot run.
func Validate(cfg Config) error {
	switch {
	case cfg.Tiles < 1 || cfg.Tiles > 1024:
		return fmt.Errorf("machine: tiles %d out of range [1,1024]", cfg.Tiles)
	case cfg.NoC.Width*cfg.NoC.Height < cfg.Tiles:
		return fmt.Errorf("machine: %dx%d mesh smaller than %d tiles",
			cfg.NoC.Width, cfg.NoC.Height, cfg.Tiles)
	case cfg.L1.Sets < 1 || cfg.L1.Ways < 1:
		return fmt.Errorf("machine: invalid L1 geometry %dx%d", cfg.L1.Sets, cfg.L1.Ways)
	case cfg.MSA.Entries == 0:
		return fmt.Errorf("machine: MSA entries must be nonzero (negative = unbounded); use CPU mode MSA-0 for no accelerator")
	case cfg.MSA.OMUCounters < 1:
		return fmt.Errorf("machine: OMU needs at least one counter")
	}
	return validateSharding(cfg)
}

// validateSharding checks the constraints of the conservative parallel
// kernel; always nil for serial configurations. Sharding partitions the
// mesh into contiguous row bands and requires every cross-shard interaction
// to carry at least one hop of latency, so features that share mutable
// state across tiles with zero latency are rejected.
func validateSharding(cfg Config) error {
	k := cfg.ShardCount()
	if k == 1 {
		if cfg.Shards < 0 {
			return fmt.Errorf("machine: negative shard count %d", cfg.Shards)
		}
		return nil
	}
	switch {
	case cfg.NoC.Height%k != 0:
		return fmt.Errorf("machine: %d shards do not divide mesh height %d into row bands",
			k, cfg.NoC.Height)
	case cfg.NoC.RouteAtInjection:
		return fmt.Errorf("machine: route-at-injection reserves remote links eagerly; incompatible with %d shards", k)
	case cfg.CPU.Mode == cpu.ModeIdeal:
		return fmt.Errorf("machine: Ideal mode uses zero-latency shared sync tables; incompatible with %d shards", k)
	case cfg.Fault.Enabled():
		return fmt.Errorf("machine: fault injection uses cross-tile delay hooks; incompatible with %d shards", k)
	}
	return nil
}
