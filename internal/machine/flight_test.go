package machine_test

// Acceptance test for the always-on flight recorder: a deadlocked run's
// LivenessError must carry a non-empty flight dump whose trailing events
// agree with the watchdog's wait-for-graph diagnosis — the last LOCK request
// each blocked thread sent is the very address the diagnosis says it is
// waiting on, and no grant for it ever went back out.

import (
	"errors"
	"testing"

	"misar/internal/cpu"
	"misar/internal/isa"
	"misar/internal/machine"
	"misar/internal/obs"
	"misar/internal/syncrt"
)

// runABBADeadlock wedges two threads in a classic lock-order inversion and
// returns the resulting liveness error.
func runABBADeadlock(t *testing.T) error {
	t.Helper()
	const tiles = 4
	cfg := machine.MSAOMU(tiles, 2)
	cfg.Invariants = true
	m := machine.New(cfg)
	arena := syncrt.NewArena(0x100000)
	lib := syncrt.HWLib()

	lockA := syncrt.Mutex{Addr: lineWithHome(arena, tiles, 0)}
	lockB := syncrt.Mutex{Addr: lineWithHome(arena, tiles, 1)}
	order := [][2]syncrt.Mutex{{lockA, lockB}, {lockB, lockA}}
	for i := 0; i < 2; i++ {
		i := i
		th := m.Complex.Spawn(i, func(e cpu.Env) {
			rt := lib.Bind(e, arena.QNode())
			rt.Lock(order[i][0])
			e.Compute(2000)
			rt.Lock(order[i][1]) // never granted
			rt.Unlock(order[i][1])
			rt.Unlock(order[i][0])
		})
		m.Complex.Start(th, i, 0)
	}
	_, err := m.Run(1_000_000)
	if err == nil {
		t.Fatal("ABBA scenario completed cleanly; the wedge did not happen")
	}
	return err
}

func TestFlightDumpMatchesWatchdogDiagnosis(t *testing.T) {
	err := runABBADeadlock(t)
	var le *machine.LivenessError
	if !errors.As(err, &le) {
		t.Fatalf("want *machine.LivenessError, got %T: %v", err, err)
	}
	flight := machine.FlightOf(err)
	if len(flight) == 0 {
		t.Fatal("liveness error carries an empty flight dump")
	}
	if le.Diag == nil || len(le.Diag.Blocked) == 0 {
		t.Fatal("no watchdog diagnosis to cross-check against")
	}

	// The dump must be in simulated-time order (the ring unrolls oldest
	// first).
	for i := 1; i < len(flight); i++ {
		if flight[i].At < flight[i-1].At {
			t.Fatalf("flight dump out of order at %d: %v after %v", i, flight[i], flight[i-1])
		}
	}

	// Agreement, per blocked thread: the last MSA request this core sent is
	// a LOCK for exactly the address the watchdog says the thread is
	// waiting on, and no successful response for it ever followed.
	for _, td := range le.Diag.Blocked {
		if td.OutAddr == 0 || td.Core < 0 {
			continue
		}
		lastReq := -1
		for i, ev := range flight {
			if ev.Kind == obs.FMsaReq && int(ev.Core) == td.Core {
				lastReq = i
			}
		}
		if lastReq < 0 {
			t.Errorf("thread %d: no MSA request from core %d in the flight dump", td.ID, td.Core)
			continue
		}
		req := flight[lastReq]
		if req.Addr != td.OutAddr {
			t.Errorf("thread %d: last flight request is for %#x, diagnosis says waiting on %#x",
				td.ID, uint64(req.Addr), uint64(td.OutAddr))
		}
		if op := isa.SyncOp(req.Arg); op != isa.OpLock {
			t.Errorf("thread %d: last flight request is %v, want LOCK", td.ID, op)
		}
		for _, ev := range flight[lastReq:] {
			if ev.Kind == obs.FMsaResp && int(ev.Core) == td.Core && ev.Addr == td.OutAddr &&
				isa.Result(ev.Arg&0xff) == isa.Success {
				t.Errorf("thread %d: flight shows a grant for %#x after the supposedly blocked request",
					td.ID, uint64(td.OutAddr))
			}
		}
	}

	// Every wait-for edge's lock must have protocol history in the dump.
	for _, edge := range le.Diag.Edges {
		seen := false
		for _, ev := range flight {
			if ev.Addr == edge.Addr {
				seen = true
				break
			}
		}
		if !seen {
			t.Errorf("wait-for edge lock %#x absent from the flight dump", uint64(edge.Addr))
		}
	}
}

// TestFlightRecorderAlwaysOn checks a healthy run records flight events too
// (the recorder is not failure-gated), and that they render through the
// trace conversion without loss.
func TestFlightRecorderAlwaysOn(t *testing.T) {
	const tiles = 4
	cfg := machine.MSAOMU(tiles, 2)
	m := machine.New(cfg)
	arena := syncrt.NewArena(0x100000)
	lib := syncrt.HWLib()
	lock := syncrt.Mutex{Addr: lineWithHome(arena, tiles, 0)}
	for i := 0; i < 2; i++ {
		th := m.Complex.Spawn(i, func(e cpu.Env) {
			rt := lib.Bind(e, arena.QNode())
			rt.Lock(lock)
			e.Compute(100)
			rt.Unlock(lock)
		})
		m.Complex.Start(th, i, 0)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	evs := m.Flight.Events()
	if len(evs) == 0 {
		t.Fatal("clean run recorded no flight events")
	}
	var reqs, cohs int
	for _, ev := range evs {
		switch ev.Kind {
		case obs.FMsaReq:
			reqs++
		case obs.FCoh:
			cohs++
		}
	}
	if reqs == 0 {
		t.Error("no MSA requests in the flight ring")
	}
	if cohs == 0 {
		t.Error("no coherence deliveries in the flight ring")
	}
	if conv := obs.TraceEvents(evs); len(conv) != len(evs) {
		t.Errorf("trace conversion lost events: %d -> %d", len(evs), len(conv))
	}
}
