package machine

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"misar/internal/cpu"
	"misar/internal/memory"
	"misar/internal/sim"
	"misar/internal/syncrt"
)

// waitGoroutines retries until the goroutine count returns to its pre-test
// level (worker teardown is asynchronous with respect to RunCtx returning
// only on the panic path; elsewhere it is a strict post-condition).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

// shardedConfig is the reference sharded machine for these tests: 16 tiles on
// a 4×4 mesh (so 2 and 4 shards divide the height), full observability on.
func shardedConfig(tiles, shards int) Config {
	cfg := MSAOMU(tiles, 2)
	cfg.Metrics = true
	cfg.Invariants = true
	cfg.Shards = shards
	return cfg
}

// shardWorkload spawns the canonical mixed workload on every tile: a
// contended global mutex protecting a non-atomic counter, then barrier
// phases — both cross every shard boundary through the MSA.
func shardWorkload(m *Machine, tiles, iters, phases int) (counter memory.Addr) {
	arena := syncrt.NewArena(0x100000)
	lock := arena.Mutex()
	counter = arena.Data(1)
	bar := arena.Barrier(tiles)
	qnodes := make([]memory.Addr, tiles)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}
	lib := syncrt.HWLib()
	m.SpawnAll(tiles, func(tid int, e cpu.Env) {
		rt := lib.Bind(e, qnodes[tid])
		for i := 0; i < iters; i++ {
			rt.Lock(lock)
			v := e.Load(counter)
			e.Compute(5)
			e.Store(counter, v+1)
			rt.Unlock(lock)
			e.Compute(uint64(7 + tid))
		}
		for p := 0; p < phases; p++ {
			e.Compute(uint64(3 + tid%5))
			rt.Wait(bar)
		}
	})
	return counter
}

type shardRun struct {
	end      sim.Time
	counter  uint64
	snapshot string // JSON metrics snapshot: map keys marshal sorted, so diffable
	syncOps  uint64
}

func runSharded(t *testing.T, tiles, shards, iters, phases int) shardRun {
	t.Helper()
	m := New(shardedConfig(tiles, shards))
	counter := shardWorkload(m, tiles, iters, phases)
	end, err := m.Run(deadline)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	m.collectMetrics()
	b, err := json.Marshal(m.Metrics.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return shardRun{end, m.Store.Load(counter), string(b), m.SyncOps()}
}

// TestShardedMachineMatchesSerial is the machine-level equivalence result
// for tie-free schedules: this workload's component interactions cross
// tiles through the NoC, whose link-grant order is physical (per-cycle,
// per-link) rather than event-insertion-order, and never contend on the
// same cycle, so sharded runs finish on the serial machine's exact cycle
// with byte-identical merged metrics. This is deliberately a special case:
// under same-cycle contention the two kernels resolve ties by different
// (both legal) orders — that divergence is pinned by
// harness.TestShardedFigureDivergencePinned and explained in DESIGN.md §14.
func TestShardedMachineMatchesSerial(t *testing.T) {
	const tiles, iters, phases = 16, 6, 4
	serial := runSharded(t, tiles, 0, iters, phases)
	if serial.counter != tiles*iters {
		t.Fatalf("serial counter = %d, want %d", serial.counter, tiles*iters)
	}
	for _, k := range []int{1, 2, 4} {
		got := runSharded(t, tiles, k, iters, phases)
		if got.counter != tiles*iters {
			t.Errorf("shards=%d: counter = %d, want %d (mutual exclusion)", k, got.counter, tiles*iters)
		}
		if got.end != serial.end {
			t.Errorf("shards=%d: finished at cycle %d, serial %d", k, got.end, serial.end)
		}
		if got.syncOps != serial.syncOps {
			t.Errorf("shards=%d: %d sync ops, serial %d", k, got.syncOps, serial.syncOps)
		}
		if got.snapshot != serial.snapshot {
			t.Errorf("shards=%d: metrics snapshot diverges from serial\n sharded: %.300s\n serial:  %.300s",
				k, got.snapshot, serial.snapshot)
		}
	}
}

// TestShardedRaggedMesh: 8 tiles land on a 3×3 mesh whose last position is
// a core-less pass-through router; with 3 shards (height 3 divides) that
// router still needs a shard owner for its hop events. Regression for the
// shard map being sized to the tile count instead of the mesh.
func TestShardedRaggedMesh(t *testing.T) {
	const tiles, iters, phases = 8, 4, 3
	serial := runSharded(t, tiles, 0, iters, phases)
	got := runSharded(t, tiles, 3, iters, phases)
	if got.counter != tiles*iters {
		t.Errorf("counter = %d, want %d (mutual exclusion)", got.counter, tiles*iters)
	}
	if got.syncOps != serial.syncOps {
		t.Errorf("%d sync ops, serial %d", got.syncOps, serial.syncOps)
	}
	again := runSharded(t, tiles, 3, iters, phases)
	if got != again {
		t.Fatalf("two identical ragged-mesh runs diverged:\n%+v\n%+v", got, again)
	}
}

// TestShardedMachineDeterministic: same config, same workload, same bytes —
// twice, at every shard count.
func TestShardedMachineDeterministic(t *testing.T) {
	for _, k := range []int{2, 4} {
		a := runSharded(t, 16, k, 5, 3)
		b := runSharded(t, 16, k, 5, 3)
		if a != b {
			t.Fatalf("shards=%d: two identical runs diverged:\n%+v\n%+v", k, a, b)
		}
	}
}

// TestShardedCancelMidRun cancels from inside a shard's own event stream and
// checks the structured error plus full worker-goroutine teardown.
func TestShardedCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	m := New(shardedConfig(16, 4))
	m.SpawnAll(16, func(tid int, e cpu.Env) {
		for {
			e.Compute(10)
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Group.Engine(2).At(5_000, func() { cancel() })

	_, err := m.RunCtx(ctx, sim.Time(1_000_000_000_000))
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CancelError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false (err %v)", err)
	}
	if ce.At < 5_000 {
		t.Errorf("cancelled at cycle %d, before the cancel event", ce.At)
	}
	// Thread teardown is asynchronous (Kill closes the handoff channels and
	// the bodies unwind on their own goroutines): leak-freedom, not a
	// counter, is the post-condition.
	waitGoroutines(t, before)
}

// TestShardedCancelStress is the mid-window teardown soak: many short runs,
// each cancelled at a different point in the window schedule, must every
// time produce a clean CancelError and leak nothing. CI runs this under
// -race, where it doubles as a handoff-ordering check on the barrier.
func TestShardedCancelStress(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	before := runtime.NumGoroutine()
	for round := 0; round < rounds; round++ {
		m := New(shardedConfig(16, 4))
		m.SpawnAll(16, func(tid int, e cpu.Env) {
			for {
				e.Compute(uint64(5 + tid%7))
			}
		})
		ctx, cancel := context.WithCancel(context.Background())
		// Vary both the cancelling shard and the cycle within the window
		// schedule, so teardown is exercised at many barrier phases.
		shard := round % 4
		at := sim.Time(500 + 37*round)
		m.Group.Engine(shard).At(at, func() { cancel() })
		_, err := m.RunCtx(ctx, sim.Time(1_000_000_000_000))
		cancel()
		var ce *CancelError
		if !errors.As(err, &ce) {
			t.Fatalf("round %d: err = %v, want *CancelError", round, err)
		}
	}
	waitGoroutines(t, before)
}

// TestShardedPanicBecomesStructuredError: a component panic on a non-zero
// shard must surface as *PanicError carrying the faulting shard's own stack,
// with all workers joined.
func TestShardedPanicBecomesStructuredError(t *testing.T) {
	before := runtime.NumGoroutine()
	m := New(shardedConfig(16, 4))
	m.SpawnAll(16, func(tid int, e cpu.Env) {
		for i := 0; i < 50; i++ {
			e.Compute(10)
		}
	})
	m.Group.Engine(3).At(100, func() { panic("injected component fault") })
	_, err := m.Run(deadline)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "injected component fault" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if pe.Stack == "" {
		t.Error("PanicError.Stack empty, want the faulting shard's stack")
	}
	waitGoroutines(t, before)
}

// TestShardedFlightEventsMerged: the per-shard flight rings merge into one
// timestamp-ordered dump spanning tiles from different shards.
func TestShardedFlightEventsMerged(t *testing.T) {
	m := New(shardedConfig(16, 4))
	shardWorkload(m, 16, 3, 2)
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	evs := m.FlightEvents()
	if len(evs) == 0 {
		t.Fatal("no flight events recorded")
	}
	shardsSeen := map[int]bool{}
	for i, e := range evs {
		if i > 0 && evs[i-1].At > e.At {
			t.Fatalf("flight events out of order at %d: %d then %d", i, evs[i-1].At, e.At)
		}
		shardsSeen[m.ShardOf(int(e.Tile))] = true
	}
	if len(shardsSeen) != 4 {
		t.Errorf("flight dump covers %d shards, want 4", len(shardsSeen))
	}
}

// TestShardedRejectsIncompatibleConfigs: the constructor refuses the
// combinations validateSharding documents, with the same message Validate
// would report for file-loaded configs.
func TestShardedRejectsIncompatibleConfigs(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: New did not panic", name)
			}
		}()
		New(cfg)
	}
	ideal := Ideal(16)
	ideal.Shards = 2
	mustPanic("ideal", ideal)

	badBands := shardedConfig(16, 3) // 3 does not divide height 4
	mustPanic("bands", badBands)

	atInj := shardedConfig(16, 2)
	atInj.NoC.RouteAtInjection = true
	mustPanic("route-at-injection", atInj)

	faulted := shardedConfig(16, 2)
	faulted.Fault.SteerRate = 1 << 20
	mustPanic("fault-injection", faulted)
}
