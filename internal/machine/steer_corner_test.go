package machine_test

// OMU steer corner cases (satellite of the fault-injection issue): aliasing
// false steers, the steer-during-release race under delayed acks, and
// re-acquire after a forced un-steer. Each test pins a fixed seed / layout so
// a regression reproduces exactly.

import (
	"testing"

	"misar/internal/core"
	"misar/internal/cpu"
	"misar/internal/fault"
	"misar/internal/machine"
	"misar/internal/metrics"
	"misar/internal/syncrt"
)

// TestAliasingFalseSteer constructs two distinct locks homed on the same tile
// whose addresses hash to the same untagged OMU counter. While one is held in
// software (after a genuine capacity steer), an acquire of the other must be
// steered too — a false steer, costing performance but never correctness —
// and the slice must classify it as such in its metrics.
func TestAliasingFalseSteer(t *testing.T) {
	const tiles = 4
	cfg := machine.MSAOMU(tiles, 1)
	cfg = machine.WithoutHWSync(cfg)
	cfg.Metrics = true
	cfg.Invariants = true
	m := machine.New(cfg)
	arena := syncrt.NewArena(0x100000)
	lib := syncrt.HWLib()

	const home = 0
	n := cfg.MSA.OMUCounters
	blocker := syncrt.Mutex{Addr: lineWithHome(arena, tiles, home)}
	lockA := syncrt.Mutex{Addr: lineWithHome(arena, tiles, home)}
	var lockB syncrt.Mutex
	for {
		p := lineWithHome(arena, tiles, home)
		if core.OMUIndex(p, n) == core.OMUIndex(lockA.Addr, n) {
			lockB = syncrt.Mutex{Addr: p}
			break
		}
	}

	// t0 occupies tile 0's only MSA entry; t1's Lock(A) capacity-steers to
	// software and holds A across t2's Lock(B); by then the entry is free, so
	// B's steer can only come from the aliased counter.
	bodies := []func(rt *syncrt.T, e cpu.Env){
		func(rt *syncrt.T, e cpu.Env) {
			rt.Lock(blocker)
			e.Compute(4000)
			rt.Unlock(blocker)
		},
		func(rt *syncrt.T, e cpu.Env) {
			e.Compute(1000)
			rt.Lock(lockA)
			e.Compute(8000)
			rt.Unlock(lockA)
		},
		func(rt *syncrt.T, e cpu.Env) {
			e.Compute(6000)
			rt.Lock(lockB)
			e.Compute(100)
			rt.Unlock(lockB)
		},
	}
	for i := range bodies {
		i := i
		th := m.Complex.Spawn(i, func(e cpu.Env) {
			bodies[i](lib.Bind(e, arena.QNode()), e)
		})
		m.Complex.Start(th, i, 0)
	}
	if _, err := m.Run(300_000); err != nil {
		t.Fatalf("scenario failed: %v", err)
	}
	if v := m.Checker.Violations(); len(v) != 0 {
		t.Fatalf("aliasing must never cost correctness; violations: %v", v)
	}
	falseSteers := m.Metrics.Counter(metrics.TileName("msa", home, "omu_false_steers")).Value()
	if falseSteers == 0 {
		t.Error("Lock(B) was not classified as a false (aliasing) steer")
	}
	if st := m.MSAStats(); st.OMUSteers == 0 || st.CapacitySteers == 0 {
		t.Errorf("expected both a capacity steer (A) and an OMU steer (B): %+v", st)
	}
}

// TestSteerDuringReleaseRace hammers one lock from three cores while the
// injector delays slice acknowledgments and jitters the NoC (fixed seed). The
// dangerous window is an unlock FAIL in flight while the slice concurrently
// grants or steers the next acquire; the mutual-exclusion invariant and the
// exact final count prove the window stays closed.
func TestSteerDuringReleaseRace(t *testing.T) {
	const tiles = 6
	cfg := machine.MSAOMU(tiles, 1)
	cfg.Invariants = true
	cfg.Fault = fault.Plan{
		Seed:      0xC0FFEE,
		SteerRate: 20000, // ~30% of allocatable acquires steered anyway
		AckRate:   40000, AckMax: 400, // ~61% of responses held up to 400 cycles
		NoCRate: 30000, NoCMax: 100,
	}
	m := machine.New(cfg)
	arena := syncrt.NewArena(0x100000)
	lib := syncrt.HWLib()

	lock := arena.Mutex()
	counter := arena.Data(1)
	const threads, iters = 3, 20
	for i := 0; i < threads; i++ {
		i := i
		th := m.Complex.Spawn(i, func(e cpu.Env) {
			rt := lib.Bind(e, arena.QNode())
			for k := 0; k < iters; k++ {
				rt.Lock(lock)
				e.Store(counter, e.Load(counter)+1)
				e.Compute(uint64(5 + (i+k)%11))
				rt.Unlock(lock)
				e.Compute(uint64(20 + (i*7+k)%31))
			}
		})
		m.Complex.Start(th, 2*i, 0)
	}
	if _, err := m.Run(chaosBudget); err != nil {
		t.Fatalf("race scenario failed: %v", err)
	}
	if v := m.Checker.Violations(); len(v) != 0 {
		t.Fatalf("violations under delayed-ack release: %v", v)
	}
	if got := m.Store.Load(counter); got != threads*iters {
		t.Fatalf("counter = %d, want %d (lost update)", got, threads*iters)
	}
	c := m.Injector.Counts()
	if c.AckDelays == 0 || c.Steers == 0 {
		t.Fatalf("fault pressure did not materialize: %s", c.String())
	}
}

// TestReacquireAfterUnsteer keeps the HWSync optimization on and forces
// spurious standby-entry evictions (un-steers): a core's silent re-acquire
// privilege is revoked between acquires, so LOCK_SILENT must fall back to the
// full protocol without ever double-granting.
func TestReacquireAfterUnsteer(t *testing.T) {
	const tiles = 4
	cfg := machine.MSAOMU(tiles, 2)
	cfg.Invariants = true
	cfg.Fault = fault.Plan{Seed: 7, EvictRate: 45000} // ~69% of requests trigger a sweep
	m := machine.New(cfg)
	arena := syncrt.NewArena(0x100000)
	lib := syncrt.HWLib()

	lock := arena.Mutex()
	counter := arena.Data(1)
	const threads, iters = 2, 25
	for i := 0; i < threads; i++ {
		i := i
		th := m.Complex.Spawn(i, func(e cpu.Env) {
			rt := lib.Bind(e, arena.QNode())
			for k := 0; k < iters; k++ {
				rt.Lock(lock)
				e.Store(counter, e.Load(counter)+1)
				e.Compute(uint64(10 + (i*3+k)%17))
				rt.Unlock(lock)
				e.Compute(uint64(200 + (i*13+k*7)%97)) // long enough for standby
			}
		})
		m.Complex.Start(th, 2*i, 0)
	}
	if _, err := m.Run(chaosBudget); err != nil {
		t.Fatalf("un-steer scenario failed: %v", err)
	}
	if v := m.Checker.Violations(); len(v) != 0 {
		t.Fatalf("violations under forced eviction: %v", v)
	}
	if got := m.Store.Load(counter); got != threads*iters {
		t.Fatalf("counter = %d, want %d (lost update)", got, threads*iters)
	}
	if c := m.Injector.Counts(); c.Evicts == 0 {
		t.Fatalf("no forced evictions fired: %s", c.String())
	}
}

// chaosBudget bounds the corner-case runs far below the tier-1 deadline so a
// wedge fails fast with a watchdog diagnosis.
const chaosBudget = 2_000_000
