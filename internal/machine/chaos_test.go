package machine_test

// Chaos suite: seeded, deterministic stress campaigns over the full machine
// (scenario derivation, campaign driver, and fault plans live in
// internal/chaos; this file is the tier-1 entry point that CI runs).
//
// Three layers of detection run on every seed:
//   - the Go-side holder oracle and per-lock counters (independent of the
//     simulated machine's own bookkeeping),
//   - the runtime safety-invariant checker (Config.Invariants),
//   - the liveness watchdog (budgeted machine.Run with wait-for diagnosis).

import (
	"runtime"
	"testing"

	"misar/internal/chaos"
	"misar/internal/fault"
)

// TestChaos runs the unfaulted campaign: random machine shapes, lock plans,
// and suspend/migrate disturbances, with the invariant checker armed. Any
// violation, oracle overlap, lost update, or hang fails the seed.
func TestChaos(t *testing.T) {
	seeds := int64(100)
	if testing.Short() {
		seeds = 10
	}
	outs := chaos.Campaign(0, seeds, runtime.GOMAXPROCS(0), chaos.Options{}, nil)
	for _, o := range outs {
		if o.Failed() {
			t.Errorf("seed %d (%s / %s): err=%q oracle=%d lost=%d violations=%v",
				o.Seed, o.Config, o.Lib, o.Err, o.Oracle, o.LostUpdates, o.Violations)
		}
	}
}

// TestChaosFaulted is the acceptance campaign from the issue: every seed runs
// with fault.DefaultPlan(seed) live — forced steers, capacity steals, entry
// evictions, ack delays, NoC jitter, coherence delays — and must still
// complete with zero safety violations and exact lock counters. The test also
// proves the faults actually fired (a campaign that injected nothing would
// vacuously pass).
func TestChaosFaulted(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 25
	}
	outs := chaos.Campaign(0, seeds, runtime.GOMAXPROCS(0), chaos.Options{Faults: true}, nil)
	var fired uint64
	for _, o := range outs {
		if o.Failed() {
			t.Errorf("seed %d (%s / %s): err=%q oracle=%d lost=%d violations=%v counts=%s",
				o.Seed, o.Config, o.Lib, o.Err, o.Oracle, o.LostUpdates, o.Violations, o.Counts.String())
		}
		fired += o.Counts.Total()
	}
	if fired == 0 {
		t.Fatal("faulted campaign fired zero faults — injection sites are not wired")
	}
	t.Logf("campaign: %d seeds, %d faults fired", seeds, fired)
}

// TestChaosBrokenOMU runs the same faulted campaign with the OMU exclusivity
// check deliberately skipped (Config.MSA.UnsafeNoOMUCheck). The detection
// layers must now catch real divergence: some seeds must fail, and the
// failures must include both checker violations and watchdog liveness
// diagnoses (a broken machine typically wedges as a live software spin, so
// the cycle budget — not quiescence — triggers the watchdog).
func TestChaosBrokenOMU(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 8
	}
	outs := chaos.Campaign(0, seeds, runtime.GOMAXPROCS(0),
		chaos.Options{Faults: true, BrokenOMU: true}, nil)
	var failed, withViolations, withDiag int
	for _, o := range outs {
		if !o.Failed() {
			continue
		}
		failed++
		if len(o.Violations) > 0 {
			withViolations++
		}
		if o.Diag != nil {
			withDiag++
		}
	}
	t.Logf("broken OMU: %d/%d seeds failed (%d with violations, %d with watchdog diagnosis)",
		failed, seeds, withViolations, withDiag)
	if failed == 0 {
		t.Fatal("no seed detected the broken OMU — detection layers are blind")
	}
	if withViolations == 0 {
		t.Error("no failing seed carried a safety violation from the invariant checker")
	}
	if withDiag == 0 {
		t.Error("no failing seed carried a liveness watchdog diagnosis")
	}
}

// TestChaosShrink pins the shrinker: take a seed known to fail under the
// broken OMU, greedily strip fault sites, and verify the reduced plan still
// reproduces the failure deterministically.
func TestChaosShrink(t *testing.T) {
	const seed = 6 // fails under BrokenOMU via the liveness watchdog
	opt := chaos.Options{Faults: true, BrokenOMU: true}
	plan, out, ok := chaos.Shrink(seed, opt)
	if !ok {
		t.Fatalf("seed %d no longer fails under the full default plan", seed)
	}
	if !out.Failed() {
		t.Fatalf("shrink returned ok but a passing outcome: %+v", out)
	}
	if full := fault.DefaultPlan(seed); len(plan.Sites()) > len(full.Sites()) {
		t.Errorf("shrunken plan has more enabled sites (%v) than the full plan (%v)",
			plan.Sites(), full.Sites())
	}
	// The reduction must be a deterministic reproducer, not a one-off.
	rerun := chaos.RunPlan(seed, plan, opt)
	if !rerun.Failed() {
		t.Fatalf("shrunken plan %v does not reproduce the failure on re-run", plan.Sites())
	}
	t.Logf("seed %d shrunk to sites %v (err=%q, %d violations)",
		seed, plan.Sites(), rerun.Err, len(rerun.Violations))
}
