package machine

import (
	"math/rand"
	"testing"

	"misar/internal/cpu"
	"misar/internal/memory"
	"misar/internal/sim"
	"misar/internal/syncrt"
)

// Chaos test: random mixes of locks, barriers and condition variables with
// random thread suspensions and migrations thrown at them. The invariants
// checked are exact — mutual exclusion (per-lock counters), barrier
// separation, and full completion — so any lost update, lost wakeup, or
// protocol deadlock fails the run. Every seed is deterministic, so a failing
// seed reproduces exactly.
func TestChaos(t *testing.T) {
	seeds := int64(100)
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	tiles := 4 + rng.Intn(5)*2 // 4..12
	nthreads := tiles / 2      // home core 2i, spare 2i+1
	cfg := MSAOMU(tiles, 1+rng.Intn(2))
	if rng.Intn(3) == 0 {
		cfg = WithoutHWSync(cfg)
	}
	if rng.Intn(4) == 0 {
		cfg = WithBloomOMU(cfg, 2)
	}
	if rng.Intn(4) == 0 {
		cfg = WithFixedPriority(cfg)
	}
	m := New(cfg)
	arena := syncrt.NewArena(0x100000)
	lib := syncrt.HWLib()
	if rng.Intn(3) == 0 {
		lib.Cond = syncrt.CondNoSpurious
	}

	nlocks := 1 + rng.Intn(6)
	locks := arena.MutexArray(nlocks)
	counters := arena.DataArray(nlocks)
	bar := arena.Barrier(nthreads)
	useBarrier := rng.Intn(2) == 0
	iters := 6 + rng.Intn(10)
	qnodes := make([]memory.Addr, nthreads)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}
	plans := make([][]int, nthreads)
	for i := range plans {
		plans[i] = make([]int, iters)
		for k := range plans[i] {
			plans[i][k] = rng.Intn(nlocks)
		}
	}

	// Direct mutual-exclusion oracle: the simulation is single threaded, so
	// Go-side holder bookkeeping observes every overlap instantly.
	holder := make([]int, nlocks)
	for i := range holder {
		holder[i] = -1
	}
	violations := 0
	var threads []*cpu.Thread
	for i := 0; i < nthreads; i++ {
		i := i
		th := m.Complex.Spawn(i, func(e cpu.Env) {
			rt := lib.Bind(e, qnodes[i])
			for k := 0; k < iters; k++ {
				l := plans[i][k]
				rt.Lock(locks[l])
				if holder[l] != -1 {
					violations++
				}
				holder[l] = i
				v := e.Load(counters[l])
				e.Compute(uint64(5 + (i*7+k*3)%20))
				e.Store(counters[l], v+1)
				if holder[l] != i {
					violations++
				}
				holder[l] = -1
				rt.Unlock(locks[l])
				e.Compute(uint64(30 + (i*13+k*11)%60))
				if useBarrier {
					rt.Wait(bar)
				}
			}
		})
		threads = append(threads, th)
		m.Complex.Start(th, 2*i, 0)
	}

	// Random disturbance schedule: suspend a victim, resume it on its home
	// or spare core after a random delay.
	loc := make([]int, nthreads)
	for i := range loc {
		loc[i] = 2 * i
	}
	disturbances := rng.Intn(8)
	var schedule func(round int)
	schedule = func(round int) {
		if round >= disturbances {
			return
		}
		v := rng.Intn(nthreads)
		delay := sim.Time(500 + rng.Intn(4000))
		m.Complex.Suspend(threads[v], func() {
			m.Engine.After(delay, func() {
				if !threads[v].Done() {
					loc[v] = 2*v + rng.Intn(2)
					m.Complex.Resume(threads[v], loc[v])
				}
				m.Engine.After(sim.Time(1000+rng.Intn(3000)), func() { schedule(round + 1) })
			})
		})
	}
	m.Engine.At(sim.Time(1000+rng.Intn(2000)), func() { schedule(0) })

	if _, err := m.Run(sim.Time(500_000_000)); err != nil {
		t.Fatalf("seed %d (%s): %v", seed, cfg.Name, err)
	}
	// Exact per-lock counts: acquisitions planned per lock must all land.
	want := make([]uint64, nlocks)
	for i := range plans {
		for _, l := range plans[i] {
			want[l]++
		}
	}
	for l := 0; l < nlocks; l++ {
		if got := m.Store.Load(counters[l]); got != want[l] {
			t.Fatalf("seed %d (%s): lock %d counter = %d, want %d (lost update)",
				seed, cfg.Name, l, got, want[l])
		}
	}
	if violations != 0 {
		t.Fatalf("seed %d (%s): %d direct mutual-exclusion violations", seed, cfg.Name, violations)
	}
}
