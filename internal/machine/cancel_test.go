package machine

import (
	"context"
	"errors"
	"testing"

	"misar/internal/cpu"
	"misar/internal/sim"
)

// spinners builds a small machine whose threads compute forever, so a run
// can only end via deadline or cancellation.
func spinners(t *testing.T) *Machine {
	t.Helper()
	m := New(MSAOMU(4, 2))
	for i := 0; i < 2; i++ {
		th := m.Complex.Spawn(i, func(e cpu.Env) {
			for {
				e.Compute(10)
			}
		})
		m.Complex.Start(th, i, 0)
	}
	return m
}

func TestRunCtxCancelMidRun(t *testing.T) {
	m := spinners(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from inside the simulation: the event handler runs on the
	// RunCtx goroutine, so the poll sees it deterministically within
	// cancelCheckEvery events — no wall-clock timing in the test.
	m.Engine.At(5_000, func() { cancel() })

	_, err := m.RunCtx(ctx, sim.Time(1_000_000_000_000))
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CancelError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false (err %v)", err)
	}
	if ce.At < 5_000 {
		t.Errorf("cancelled at cycle %d, before the cancel event", ce.At)
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	m := spinners(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.RunCtx(ctx, sim.Time(1_000_000_000_000))
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CancelError", err)
	}
	if m.Engine.Fired() != 0 {
		t.Errorf("pre-cancelled run fired %d events, want 0", m.Engine.Fired())
	}
}

// A background context must take the unpolled path and behave exactly like
// Run: the deadline fires as a LivenessError, not a CancelError.
func TestRunCtxBackgroundHitsDeadline(t *testing.T) {
	m := spinners(t)
	_, err := m.RunCtx(context.Background(), 50_000)
	var le *LivenessError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LivenessError", err)
	}
}

func TestRunCtxCompletesBeforeCancel(t *testing.T) {
	m := New(MSAOMU(4, 2))
	th := m.Complex.Spawn(0, func(e cpu.Env) { e.Compute(100) })
	m.Complex.Start(th, 0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	end, err := m.RunCtx(ctx, sim.Time(1_000_000))
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if end == 0 {
		t.Error("completed at cycle 0")
	}
}
