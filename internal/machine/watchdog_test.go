package machine_test

// Acceptance tests for the safety-invariant checker and liveness watchdog:
// a machine with the OMU exclusivity check deliberately disabled
// (Config.MSA.UnsafeNoOMUCheck) must be caught by the invariant layer AND
// produce a wait-for diagnosis from the watchdog, deterministically.

import (
	"errors"
	"strings"
	"testing"

	"misar/internal/cpu"
	"misar/internal/fault"
	"misar/internal/isa"
	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/syncrt"
)

// lineWithHome allocates arena lines until one lands on the requested home
// tile (lines interleave round-robin, so this terminates within tiles steps).
func lineWithHome(a *syncrt.Arena, tiles, home int) memory.Addr {
	for {
		p := a.Data(1)
		if memory.HomeOf(p, tiles) == home {
			return p
		}
	}
}

// runSplitWorldScenario builds a 4-tile machine with a single MSA entry per
// slice and a workload crafted to split a barrier across the hardware and
// software worlds when the OMU check is off:
//
//   - thread 0 holds a lock whose entry occupies tile 0's only MSA slot,
//   - thread 1 arrives at a barrier homed on the same tile while the slot is
//     taken -> capacity-steered to software, OMU counter goes live,
//   - thread 0 releases, the entry retires (HWSync off), and arrives at the
//     barrier: a correct OMU steers it to software (counter still live); a
//     broken one allocates a hardware entry over the live software episode,
//   - threads 2 and 3 join the hardware entry.
//
// Broken outcome: 3 arrivals in hardware + 1 spinning in software, goal 4 —
// a permanent wedge the watchdog must diagnose, with the exclusivity and
// barrier-world violations recorded by the checker at the moment of the bad
// allocation.
func runSplitWorldScenario(broken bool) (*machine.Machine, error) {
	const tiles = 4
	cfg := machine.MSAOMU(tiles, 1)
	cfg = machine.WithoutHWSync(cfg)
	cfg.Invariants = true
	cfg.MSA.UnsafeNoOMUCheck = broken
	m := machine.New(cfg)
	arena := syncrt.NewArena(0x100000)
	lib := syncrt.HWLib()

	const home = 0
	lock := syncrt.Mutex{Addr: lineWithHome(arena, tiles, home)}
	bar := syncrt.Barrier{Addr: lineWithHome(arena, tiles, home), Goal: tiles}
	bodies := []func(rt *syncrt.T, e cpu.Env){
		func(rt *syncrt.T, e cpu.Env) {
			rt.Lock(lock)
			e.Compute(5000)
			rt.Unlock(lock)
			e.Compute(2000)
			rt.Wait(bar)
		},
		func(rt *syncrt.T, e cpu.Env) {
			e.Compute(1000)
			rt.Wait(bar)
		},
		func(rt *syncrt.T, e cpu.Env) {
			e.Compute(9000)
			rt.Wait(bar)
		},
		func(rt *syncrt.T, e cpu.Env) {
			e.Compute(9000)
			rt.Wait(bar)
		},
	}
	for i := 0; i < tiles; i++ {
		i := i
		th := m.Complex.Spawn(i, func(e cpu.Env) {
			bodies[i](lib.Bind(e, arena.QNode()), e)
		})
		m.Complex.Start(th, i, 0)
	}
	_, err := m.Run(300_000)
	return m, err
}

func TestBrokenOMUCaughtByCheckerAndWatchdog(t *testing.T) {
	m, err := runSplitWorldScenario(true)
	if err == nil {
		t.Fatal("broken-OMU scenario completed cleanly; the crafted world split did not happen")
	}
	var le *machine.LivenessError
	if !errors.As(err, &le) {
		t.Fatalf("want *machine.LivenessError, got %T: %v", err, err)
	}
	if le.Diag == nil {
		t.Fatal("liveness error carries no watchdog diagnosis")
	}

	// Invariant layer: the bad allocation must be on record, as both an
	// OMU-exclusivity breach and a barrier-epoch world split.
	kinds := map[fault.ViolationKind]bool{}
	for _, v := range m.Checker.Violations() {
		kinds[v.Kind] = true
	}
	if !kinds[fault.ViolationExclusivity] {
		t.Errorf("checker missed the OMU exclusivity violation; got %v", m.Checker.Violations())
	}
	if !kinds[fault.ViolationBarrierWorld] {
		t.Errorf("checker missed the barrier world split; got %v", m.Checker.Violations())
	}

	// Watchdog layer: the diagnosis must show the wedged hardware barrier
	// entry (3 of 4 arrivals) and the blocked threads.
	var barEntry bool
	for _, e := range le.Diag.Entries {
		if e.Typ == isa.TypeBarrier && e.Goal == 4 {
			barEntry = true
		}
	}
	if !barEntry {
		t.Errorf("diagnosis has no hardware barrier entry: %+v", le.Diag.Entries)
	}
	if len(le.Diag.Blocked) == 0 {
		t.Error("diagnosis lists no blocked threads")
	}
	if len(le.Diag.Violations) == 0 {
		t.Error("diagnosis does not carry the checker violations")
	}
	if s := le.Diag.Summary(); !strings.Contains(s, "barrier") {
		t.Errorf("diagnosis summary does not mention the barrier:\n%s", s)
	}
}

// TestWorkingOMUControl runs the identical scenario with the OMU check armed:
// the late arrival is steered to software behind the live counter, all four
// threads meet at the software barrier, and the run completes violation-free.
func TestWorkingOMUControl(t *testing.T) {
	m, err := runSplitWorldScenario(false)
	if err != nil {
		t.Fatalf("control run failed: %v", err)
	}
	if v := m.Checker.Violations(); len(v) != 0 {
		t.Fatalf("control run recorded violations: %v", v)
	}
}

// TestWatchdogDiagnosesDeadlockCycle wedges the machine with a classic ABBA
// lock-order inversion in the hardware path and checks the watchdog extracts
// the wait-for cycle between the two threads from the MSA entry snapshots.
func TestWatchdogDiagnosesDeadlockCycle(t *testing.T) {
	const tiles = 4
	cfg := machine.MSAOMU(tiles, 2)
	cfg.Invariants = true
	m := machine.New(cfg)
	arena := syncrt.NewArena(0x100000)
	lib := syncrt.HWLib()

	lockA := syncrt.Mutex{Addr: lineWithHome(arena, tiles, 0)}
	lockB := syncrt.Mutex{Addr: lineWithHome(arena, tiles, 1)}
	order := [][2]syncrt.Mutex{{lockA, lockB}, {lockB, lockA}}
	for i := 0; i < 2; i++ {
		i := i
		th := m.Complex.Spawn(i, func(e cpu.Env) {
			rt := lib.Bind(e, arena.QNode())
			rt.Lock(order[i][0])
			e.Compute(2000)
			rt.Lock(order[i][1]) // never granted
			rt.Unlock(order[i][1])
			rt.Unlock(order[i][0])
		})
		m.Complex.Start(th, i, 0)
	}

	_, err := m.Run(1_000_000)
	var le *machine.LivenessError
	if !errors.As(err, &le) {
		t.Fatalf("want *machine.LivenessError, got %T: %v", err, err)
	}
	if !strings.Contains(le.Reason, "deadlock") {
		t.Errorf("deadlock wedge reported as %q, want quiescent-deadlock reason", le.Reason)
	}
	if le.Diag == nil {
		t.Fatal("no diagnosis attached")
	}
	found := false
	for _, cyc := range le.Diag.Cycles {
		in := map[int]bool{}
		for _, id := range cyc {
			in[id] = true
		}
		if in[0] && in[1] {
			found = true
		}
	}
	if !found {
		t.Errorf("wait-for cycle {0,1} not found; edges=%v cycles=%v", le.Diag.Edges, le.Diag.Cycles)
	}
}
