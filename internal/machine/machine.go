// Package machine assembles the full tiled many-core model: per tile a core
// with private L1, a slice of the distributed LLC with its directory, an MSA
// slice with its OMU, and a mesh router — exactly the organization of the
// paper's §3. It also provides the named configurations the evaluation
// compares (Baseline software, MSA-0, MSA/OMU-N, MSA-inf, Ideal, and the
// Fig. 7/8/9 ablations).
package machine

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"

	"misar/internal/coherence"
	corepkg "misar/internal/core"
	"misar/internal/cpu"
	"misar/internal/fault"
	"misar/internal/isa"
	"misar/internal/memory"
	"misar/internal/metrics"
	"misar/internal/noc"
	"misar/internal/obs"
	"misar/internal/sim"
	"misar/internal/stats"
	"misar/internal/trace"
)

// cohMsgNames decodes coherence.MsgKind values for the flight recorder's
// FCoh events. Registered from here because obs cannot import coherence
// (the dependency points the other way).
var cohMsgNames = func() []string {
	names := make([]string, int(coherence.MsgFwdMiss)+1)
	for k := range names {
		names[k] = coherence.MsgKind(k).String()
	}
	return names
}()

func init() { obs.RegisterArgNames(obs.FCoh, cohMsgNames) }

// Config describes one machine.
type Config struct {
	Name  string
	Tiles int
	NoC   noc.Config
	L1    coherence.L1Config
	Dir   coherence.DirConfig
	MSA   corepkg.Config
	CPU   cpu.Config
	// Metrics attaches a metrics.Registry to the machine: the MSA slices
	// record per-tile instruments inline, and Run fills in machine-wide
	// totals from the component statistics when the simulation finishes.
	// A plain bool (rather than a registry pointer) keeps Config a pure
	// value: it serializes to JSON and fingerprints deterministically for
	// the experiment harness's memoization keys.
	Metrics bool
	// Fault configures deterministic fault injection (see internal/fault).
	// The zero value disables every site; such a machine constructs no
	// injector and pays one nil check per site. Like Metrics, Plan is a pure
	// value so Config keeps serializing and fingerprinting cleanly.
	Fault fault.Plan
	// Invariants attaches the runtime safety checker (OMU exclusivity,
	// per-lock mutual exclusion, barrier-epoch separation) and feeds the
	// liveness watchdog's software-world view. The checker is pure Go
	// bookkeeping — it schedules no events and issues no simulated
	// operations — so enabling it cannot change simulated timing.
	Invariants bool
	// Shards selects the conservative parallel kernel: 0 or 1 is the serial
	// event loop; N>1 partitions the mesh into N contiguous row bands, each
	// advancing on its own engine in lookahead-bounded time windows (see
	// internal/sim ShardGroup and DESIGN.md §14). Sharding changes which
	// goroutine executes an event but never which events exist; each shard
	// count is run-to-run deterministic. The Name deliberately does not
	// mention Shards, so sharded and serial sweeps render comparable tables.
	Shards int
}

// ShardCount normalizes Cfg.Shards: 0 means serial, i.e. one shard.
func (c Config) ShardCount() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// meshDims picks the squarest W×H decomposition for n tiles.
func meshDims(n int) (int, int) {
	w := 1
	for w*w < n {
		w++
	}
	return w, (n + w - 1) / w
}

// Default returns the standard MSA/OMU-2 machine with the given tile count.
func Default(tiles int) Config {
	w, h := meshDims(tiles)
	return Config{
		Name:  fmt.Sprintf("MSA/OMU-2 %dc", tiles),
		Tiles: tiles,
		NoC:   noc.DefaultConfig(w, h),
		L1:    coherence.DefaultL1Config(),
		Dir:   coherence.DefaultDirConfig(),
		MSA:   corepkg.DefaultConfig(),
		CPU:   cpu.DefaultConfig(),
	}
}

// MSAOMU returns the MSA/OMU-N configuration.
func MSAOMU(tiles, entries int) Config {
	c := Default(tiles)
	c.Name = fmt.Sprintf("MSA/OMU-%d %dc", entries, tiles)
	c.MSA.Entries = entries
	return c
}

// MSA0 returns the paper's MSA-0: the new instructions exist but always
// FAIL locally; everything runs in the software library.
func MSA0(tiles int) Config {
	c := Default(tiles)
	c.Name = fmt.Sprintf("MSA-0 %dc", tiles)
	c.CPU.Mode = cpu.ModeAlwaysFail
	c.CPU.HWSyncOpt = false
	return c
}

// MSAInf returns the infinite-entry accelerator (no overflow possible).
func MSAInf(tiles int) Config {
	c := Default(tiles)
	c.Name = fmt.Sprintf("MSA-inf %dc", tiles)
	c.MSA.Entries = -1
	return c
}

// Ideal returns zero-latency synchronization.
func Ideal(tiles int) Config {
	c := Default(tiles)
	c.Name = fmt.Sprintf("Ideal %dc", tiles)
	c.CPU.Mode = cpu.ModeIdeal
	c.CPU.HWSyncOpt = false
	return c
}

// WithoutOMU disables overflow management (Fig. 7 baseline).
func WithoutOMU(c Config) Config {
	c.Name = c.Name + " noOMU"
	c.MSA.OMUEnabled = false
	return c
}

// WithFixedPriority replaces the NBTC round-robin grant with
// lowest-core-first selection (ablation A3).
func WithFixedPriority(c Config) Config {
	c.Name = c.Name + " fixedPrio"
	c.MSA.FixedPriority = true
	return c
}

// WithBloomOMU swaps the plain OMU counters for the counting Bloom filter
// the paper suggests in §3.2, with k hash functions over the same counter
// budget.
func WithBloomOMU(c Config, k int) Config {
	c.Name = fmt.Sprintf("%s bloom(k=%d)", c.Name, k)
	c.MSA.OMUBloom = true
	c.MSA.OMUHashes = k
	return c
}

// WithoutHWSync disables the §5 optimization (Fig. 8 baseline).
func WithoutHWSync(c Config) Config {
	c.Name = c.Name + " noHWSync"
	c.MSA.HWSyncOpt = false
	c.CPU.HWSyncOpt = false
	return c
}

// LockOnly restricts the MSA to lock acceleration (Fig. 9).
func LockOnly(c Config) Config {
	c.Name = c.Name + " lockOnly"
	c.MSA.Barriers = false
	c.MSA.Conds = false
	return c
}

// BarrierOnly restricts the MSA to barrier acceleration (Fig. 9).
func BarrierOnly(c Config) Config {
	c.Name = c.Name + " barrierOnly"
	c.MSA.Locks = false
	c.MSA.Conds = false
	return c
}

// Machine is a fully wired model instance.
type Machine struct {
	Cfg    Config
	Engine *sim.Engine // serial engine, or shard 0's engine when sharded
	// Group is the conservative shard coordinator (nil on a serial machine).
	// External schedulers (examples, chaos scenarios, ablation helpers) that
	// call m.Engine.At directly require a serial machine.
	Group  *sim.ShardGroup
	Net    *noc.Network
	Store  *memory.Store
	L1s    []*coherence.L1
	Dirs   []*coherence.Directory
	Slices []*corepkg.Slice
	Cores  []*cpu.Core
	// Complex is shard 0's scheduler; Complexes holds one per shard (len 1
	// on a serial machine). Thread state for diagnostics should go through
	// Threads()/RunningThreads(), which merge across shards.
	Complex   *cpu.Complex
	Complexes []*cpu.Complex
	shardOf   []int // tile -> shard (nil on serial machines)
	// Metrics is the machine's instrument registry (nil unless Cfg.Metrics).
	Metrics *metrics.Registry
	// Injector drives fault injection (nil unless Cfg.Fault enables a site).
	Injector *fault.Injector
	// Checker records safety-invariant violations (nil unless Cfg.Invariants).
	Checker *fault.Checker
	// Flight is the always-on flight recorder: a fixed ring of the most
	// recent protocol events (MSA ops, OMU steers, entry lifecycle,
	// coherence deliveries), dumped into LivenessError/SafetyError/
	// PanicError so failures carry their own last moments. It is not a
	// Config knob — Config stays a pure value for memo/store fingerprints —
	// and recording is allocation-free, so every machine carries one.
	// Sharded machines carry one single-writer ring per shard (Flights;
	// Flight aliases shard 0's) and FlightEvents merges them by timestamp.
	Flight  *obs.FlightRecorder
	Flights []*obs.FlightRecorder

	// regs holds the per-shard metric registries (len 1 serial); Metrics
	// aliases regs[0], into which collectMetrics merges the rest.
	regs []*metrics.Registry

	collected bool // machine-wide totals already folded into Metrics
}

// ShardOf returns the shard owning tile (always 0 on a serial machine).
func (m *Machine) ShardOf(tile int) int {
	if m.shardOf == nil {
		return 0
	}
	return m.shardOf[tile]
}

// Now returns the machine's completion clock: the serial engine's time, or
// the latest shard clock on a sharded machine. Call between windows (the
// run loop, error paths, and post-run reporting all qualify).
func (m *Machine) Now() sim.Time {
	if m.Group == nil {
		return m.Engine.Now()
	}
	return m.Group.MaxNow()
}

// Threads returns every spawned thread, shard 0 first (identical to
// Complex.Threads() on a serial machine).
func (m *Machine) Threads() []*cpu.Thread {
	if len(m.Complexes) == 1 {
		return m.Complex.Threads()
	}
	var out []*cpu.Thread
	for _, x := range m.Complexes {
		out = append(out, x.Threads()...)
	}
	return out
}

// RunningThreads sums started-but-unfinished threads across shards.
func (m *Machine) RunningThreads() int {
	n := 0
	for _, x := range m.Complexes {
		n += x.Running()
	}
	return n
}

// killThreads tears down unfinished threads on every shard.
func (m *Machine) killThreads() {
	for _, x := range m.Complexes {
		x.Kill()
	}
}

// FlightEvents merges the per-shard flight-recorder rings into one
// timestamp-ordered dump (stable by shard at equal cycles). On a serial
// machine it is exactly Flight.Events().
func (m *Machine) FlightEvents() []obs.FlightEvent {
	if len(m.Flights) == 1 {
		return m.Flight.Events()
	}
	var all []obs.FlightEvent
	for _, f := range m.Flights {
		all = append(all, f.Events()...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}

// shardMap partitions the mesh into contiguous row bands, one per shard:
// tile t of a width-w mesh with rowsPer rows per shard lives on shard
// (t/w)/rowsPer. Contiguity matters — boundary crossings (and thus
// cross-shard mail) happen only on the north/south links between bands.
// The map covers every mesh POSITION (width×height), not just the
// populated tiles: on a ragged mesh (e.g. 8 tiles on 3×3) the trailing
// core-less routers still carry pass-through traffic, so their hop events
// need a shard owner like any other.
func shardMap(tiles, width, height, shards int) []int {
	rowsPer := height / shards
	out := make([]int, tiles)
	for t := range out {
		s := (t / width) / rowsPer
		if s >= shards {
			s = shards - 1
		}
		out[t] = s
	}
	return out
}

// New builds and wires a machine. With Cfg.Shards > 1 the machine runs on
// the conservative parallel kernel: one engine per shard, cross-shard NoC
// hops handed over through the shard group, and every piece of mutable
// per-tile state (component structs, payload pools, flight rings, metric
// registries) owned by its tile's shard. Combinations that would share
// zero-latency mutable state across shards (Ideal mode, fault injection,
// route-at-injection) panic here; Validate reports them as errors first
// for configurations arriving from files.
func New(cfg Config) *Machine {
	shards := cfg.ShardCount()
	var group *sim.ShardGroup
	var engine *sim.Engine
	if shards > 1 {
		if err := validateSharding(cfg); err != nil {
			panic("machine: " + err.Error())
		}
		group = sim.NewShardGroup(shards, cfg.NoC.RouterLatency+cfg.NoC.LinkLatency)
		engine = group.Engine(0)
	} else {
		engine = sim.NewEngine()
	}
	net := noc.New(engine, cfg.NoC)
	if net.Tiles() < cfg.Tiles {
		panic("machine: mesh smaller than tile count")
	}
	m := &Machine{
		Cfg:    cfg,
		Engine: engine,
		Group:  group,
		Net:    net,
		L1s:    make([]*coherence.L1, cfg.Tiles),
		Dirs:   make([]*coherence.Directory, cfg.Tiles),
		Slices: make([]*corepkg.Slice, cfg.Tiles),
		Cores:  make([]*cpu.Core, cfg.Tiles),
	}
	if shards > 1 {
		m.Store = memory.NewSharedStore()
		m.shardOf = shardMap(net.Tiles(), cfg.NoC.Width, cfg.NoC.Height, shards)
		net.SetShards(group, func(t int) int { return m.shardOf[t] })
	} else {
		m.Store = memory.NewStore()
	}
	engineOf := func(tile int) *sim.Engine {
		if group == nil {
			return engine
		}
		return group.Engine(m.shardOf[tile])
	}
	m.Flights = make([]*obs.FlightRecorder, shards)
	for s := range m.Flights {
		m.Flights[s] = obs.NewFlightRecorder(0)
	}
	m.Flight = m.Flights[0]
	var ideal *cpu.Ideal
	if cfg.CPU.Mode == cpu.ModeIdeal {
		ideal = cpu.NewIdeal()
	}
	// One payload pool set per shard (one total on a serial machine). The
	// attach handler below is the sole consumer of every payload (the
	// coherence controllers, slices, and cores retain copies of the fields
	// they need, never the pointer — see the pool doc comments), so each
	// record is recycled the moment its Handle call returns — always into
	// the pool of the shard whose goroutine is executing.
	msgPools := make([]*coherence.MsgPool, shards)
	reqPools := make([]*corepkg.ReqPool, shards)
	respPools := make([]*corepkg.RespPool, shards)
	for s := 0; s < shards; s++ {
		msgPools[s] = new(coherence.MsgPool)
		reqPools[s] = new(corepkg.ReqPool)
		respPools[s] = new(corepkg.RespPool)
	}
	for i := 0; i < cfg.Tiles; i++ {
		i := i
		eng := engineOf(i)
		shard := m.ShardOf(i)
		msgPool, reqPool, respPool := msgPools[shard], reqPools[shard], respPools[shard]
		flight := m.Flights[shard]
		// All component senders go through the network's pooled Post path:
		// the machine's attach handler consumes each message synchronously,
		// so the Message structs recycle and the send fan-out allocates only
		// the payloads.
		sendCoh := func(dst int, msg *coherence.Msg) {
			net.Post(i, dst, msg.Bytes(), msg)
		}
		m.L1s[i] = coherence.NewL1(i, cfg.Tiles, cfg.L1, eng, m.Store, sendCoh)
		m.L1s[i].SetMsgPool(msgPool)
		m.Dirs[i] = coherence.NewDirectory(i, cfg.Tiles, cfg.Dir, eng, sendCoh)
		m.Dirs[i].SetMsgPool(msgPool)
		m.Slices[i] = corepkg.NewSlice(i, cfg.Tiles, cfg.MSA, eng, m.Dirs[i],
			func(c int, r *corepkg.Resp) {
				net.Post(i, c, corepkg.RespBytes, r)
			},
			func(tile int, msg *corepkg.MsaMsg) {
				net.Post(i, tile, corepkg.MsaBytes, msg)
			})
		m.Cores[i] = cpu.NewCore(i, cfg.Tiles, cfg.CPU, eng, m.L1s[i],
			func(home int, r *corepkg.Req) {
				net.Post(i, home, corepkg.ReqBytes, r)
			}, ideal)
		m.Cores[i].SetReqPool(reqPool)
		m.Cores[i].SetFlight(flight)
		m.Slices[i].SetRespPool(respPool)
		m.Slices[i].SetFlight(flight)
		net.Attach(i, func(nm *noc.Message) {
			switch p := nm.Payload.(type) {
			case *coherence.Msg:
				// Every coherence message funnels through here on delivery,
				// so one record covers NoC traffic and protocol transitions.
				flight.Record(obs.FlightEvent{
					At: eng.Now(), Kind: obs.FCoh, Tile: int16(i),
					Core: int16(p.Core), Addr: p.Line, Arg: uint32(p.Kind),
				})
				switch p.Kind {
				case coherence.RspDataS, coherence.RspDataE, coherence.MsgInv, coherence.MsgFwd:
					m.L1s[i].Handle(p)
				default:
					m.Dirs[i].Handle(p)
				}
				msgPool.Put(p)
			case *corepkg.Req:
				m.Slices[i].HandleReq(p)
				reqPool.Put(p)
			case *corepkg.Resp:
				m.Cores[i].HandleResp(p)
				respPool.Put(p)
			case *corepkg.MsaMsg:
				m.Slices[i].HandleMsa(p)
			default:
				panic(fmt.Sprintf("machine: tile %d got unknown payload %T", i, nm.Payload))
			}
		})
	}
	if cfg.Fault.Enabled() {
		m.Injector = fault.New(cfg.Fault)
		for _, sl := range m.Slices {
			sl.SetInjector(m.Injector)
		}
		for _, c := range m.Cores {
			// Thread code reaches the injector via Env.Faults (the TM
			// spurious-abort site); fault plans only run on serial machines
			// (validateSharding), so the single-threaded contract holds.
			c.SetInjector(m.Injector)
		}
		net.SetDelay(m.Injector.MsgDelay)
		for _, d := range m.Dirs {
			d.SetExtraLatency(m.Injector.CohDelay)
		}
	}
	if cfg.Invariants {
		if group != nil {
			// The checker is shared bookkeeping fed from every shard: give
			// it the (monotone, barrier-published) window clock and a lock.
			m.Checker = fault.NewChecker(group.Now)
			m.Checker.Synchronize()
			net.SetDeliveryCheck(m.Checker.ShardDelivery)
		} else {
			m.Checker = fault.NewChecker(engine.Now)
		}
		for _, sl := range m.Slices {
			sl.SetChecker(m.Checker)
		}
		for _, c := range m.Cores {
			c.SetChecker(m.Checker)
		}
	}
	if cfg.Metrics {
		m.regs = make([]*metrics.Registry, shards)
		for s := range m.regs {
			m.regs[s] = metrics.NewRegistry()
		}
		m.Metrics = m.regs[0]
		for i, sl := range m.Slices {
			sl.SetMetrics(m.regs[m.ShardOf(i)])
		}
		for i, c := range m.Cores {
			c.SetMetrics(m.regs[m.ShardOf(i)])
		}
		m.Injector.AttachMetrics(m.Metrics)
		// The checker's violation counter lives in shard 0's registry; its
		// increments happen under the checker lock in sharded mode.
		m.Checker.AttachMetrics(m.Metrics)
	}
	if group != nil {
		m.Complexes = make([]*cpu.Complex, shards)
		for s := range m.Complexes {
			m.Complexes[s] = cpu.NewComplex(group.Engine(s), m.Cores)
		}
	} else {
		m.Complexes = []*cpu.Complex{cpu.NewComplex(engine, m.Cores)}
	}
	m.Complex = m.Complexes[0]
	return m
}

// SpawnAll starts one thread per core (thread i on core i) at time 0,
// running body with the thread id. On a sharded machine each thread is
// spawned on its core's shard complex, so its start event and all its
// synchronous handoffs stay on the owning shard's engine.
func (m *Machine) SpawnAll(n int, body func(tid int, e cpu.Env)) {
	if n > m.Cfg.Tiles {
		panic("machine: more threads than cores")
	}
	for i := 0; i < n; i++ {
		i := i
		x := m.Complexes[m.ShardOf(i)]
		t := x.Spawn(i, func(e cpu.Env) { body(i, e) })
		x.Start(t, i, 0)
	}
}

// Run drives the simulation until all threads finish. It returns the final
// cycle, or an error on deadlock, timeout, a panicking thread body, a
// panicking component, or (with Cfg.Invariants) recorded safety violations.
// Liveness failures come back as *LivenessError carrying a full watchdog
// Diagnosis instead of a bare string, so a hung fault-injection run is
// triageable from the error value alone.
func (m *Machine) Run(deadline sim.Time) (sim.Time, error) {
	return m.RunCtx(context.Background(), deadline)
}

// cancelCheckEvery spaces RunCtx's cancellation polls: one context check per
// 64Ki fired events keeps the per-event hot path untouched while bounding
// cancellation latency to a few milliseconds of wall clock.
const cancelCheckEvery = 1 << 16

// shardCancelCheckWindows spaces cancellation polls on the sharded kernel,
// where the natural poll point is the window barrier: 4Ki windows is a few
// thousand simulated cycles between polls, comparable wall-clock spacing to
// the serial constant.
const shardCancelCheckWindows = 1 << 12

// RunCtx is Run with caller cancellation. When ctx ends before the
// simulation finishes, the threads are torn down (their goroutines unwind,
// nothing leaks) and the error is a *CancelError wrapping the context's
// cause. A context that can never be cancelled (ctx.Done() == nil) costs
// nothing: the run takes the unpolled RunUntil path.
func (m *Machine) RunCtx(ctx context.Context, deadline sim.Time) (_ sim.Time, err error) {
	defer m.collectMetrics()
	defer func() {
		if r := recover(); r != nil {
			// A component (slice, directory, network) panicked mid-event.
			// Thread bodies are recovered inside their own goroutines, so
			// this is a model bug, not a workload bug. Tear the threads down
			// so their goroutines unwind instead of leaking, then surface
			// the panic as a structured error the harness can tag. On the
			// sharded kernel the panic arrives pre-wrapped as *ShardPanic
			// with the faulting shard's own stack.
			m.killThreads()
			if sp, ok := r.(*sim.ShardPanic); ok {
				err = &PanicError{Value: sp.Value, Stack: sp.Stack, Flight: m.FlightEvents()}
			} else {
				err = &PanicError{Value: r, Stack: string(debug.Stack()), Flight: m.FlightEvents()}
			}
		}
	}()
	var drained bool
	switch {
	case m.Group != nil:
		var interrupt func() bool
		if ctx.Done() != nil {
			if ctx.Err() != nil {
				return m.Now(), &CancelError{Cause: context.Cause(ctx), At: m.Now()}
			}
			interrupt = func() bool { return ctx.Err() != nil }
		}
		var interrupted bool
		drained, interrupted = m.Group.RunUntilCheck(deadline, shardCancelCheckWindows, interrupt)
		if interrupted {
			m.killThreads()
			return m.Now(), &CancelError{Cause: context.Cause(ctx), At: m.Now()}
		}
	case ctx.Done() == nil:
		drained = m.Engine.RunUntil(deadline)
	default:
		if ctx.Err() != nil {
			return m.Now(), &CancelError{Cause: context.Cause(ctx), At: m.Now()}
		}
		var interrupted bool
		drained, interrupted = m.Engine.RunUntilCheck(deadline, cancelCheckEvery,
			func() bool { return ctx.Err() != nil })
		if interrupted {
			m.killThreads()
			return m.Now(), &CancelError{Cause: context.Cause(ctx), At: m.Now()}
		}
	}
	for _, t := range m.Threads() {
		if t.Err() != nil {
			return m.Now(), fmt.Errorf("machine: thread %d panicked: %v", t.ID(), t.Err())
		}
	}
	if !drained {
		reason := fmt.Sprintf("machine: deadline %d reached with work pending", deadline)
		return m.Now(), &LivenessError{Reason: reason, Diag: m.Diagnose(reason), Flight: m.FlightEvents()}
	}
	if r := m.RunningThreads(); r > 0 {
		reason := fmt.Sprintf("machine: quiesced with %d threads blocked (deadlock)", r)
		return m.Now(), &LivenessError{Reason: reason, Diag: m.Diagnose(reason), Flight: m.FlightEvents()}
	}
	if v := m.Checker.Violations(); len(v) > 0 {
		return m.Now(), &SafetyError{Violations: v, Flight: m.FlightEvents()}
	}
	return m.Now(), nil
}

// latNames labels the cpu.LatencyKind histogram classes for metric names.
var latNames = [...]struct {
	kind cpu.LatencyKind
	name string
}{
	{cpu.LatLock, "lock"},
	{cpu.LatUnlock, "unlock"},
	{cpu.LatBarrier, "barrier"},
	{cpu.LatCond, "cond"},
}

// collectMetrics folds machine-wide totals — MSA operation mix, OMU
// activity, coherence message counts, core stall breakdown, NoC traffic —
// from the component statistics into the registry. The MSA per-tile entry
// and steer counters are recorded inline during simulation; everything
// collected here already exists in a component Stats struct, so the hot
// paths pay nothing for it. Idempotent; a no-op on an unmetered machine.
func (m *Machine) collectMetrics() {
	r := m.Metrics
	if r == nil || m.collected {
		return
	}
	m.collected = true

	// Sharded machines recorded tile-local instruments into per-shard
	// registries; fold shards 1..K-1 into shard 0's before adding the
	// machine-wide totals. The merge order is fixed (shard index), so the
	// combined registry is deterministic for a deterministic run.
	for _, reg := range m.regs[1:] {
		r.Merge(reg)
	}

	r.Gauge("sim.cycles").Observe(uint64(m.Now()))

	// MSA operation mix (machine totals; per-tile entry/steer counters are
	// recorded inline by the slices).
	ms := m.MSAStats()
	r.Counter("msa.lock_hw").Add(ms.LockHW)
	r.Counter("msa.lock_sw").Add(ms.LockSW)
	r.Counter("msa.unlock_hw").Add(ms.UnlockHW)
	r.Counter("msa.unlock_sw").Add(ms.UnlockSW)
	r.Counter("msa.barrier_hw").Add(ms.BarrierHW)
	r.Counter("msa.barrier_sw").Add(ms.BarrierSW)
	r.Counter("msa.cond_hw").Add(ms.CondHW)
	r.Counter("msa.cond_sw").Add(ms.CondSW)
	r.Counter("msa.silent_locks").Add(ms.SilentLocks)
	r.Counter("msa.omu_steers").Add(ms.OMUSteers)
	r.Counter("msa.capacity_steers").Add(ms.CapacitySteers)

	for i, sl := range m.Slices {
		os := sl.OMUStats()
		r.Counter(metrics.TileName("omu", i, "incs")).Add(os.Incs)
		r.Counter(metrics.TileName("omu", i, "decs")).Add(os.Decs)
		r.Gauge(metrics.TileName("omu", i, "max_level")).Observe(uint64(os.MaxValue))
	}

	// Coherence message counts by type, plus directory pressure.
	var l1 coherence.L1Stats
	var dir coherence.DirStats
	maxQueue := 0
	for i := range m.L1s {
		ls, ds := m.L1s[i].Stats(), m.Dirs[i].Stats()
		l1.Loads += ls.Loads
		l1.Stores += ls.Stores
		l1.RMWs += ls.RMWs
		l1.Hits += ls.Hits
		l1.Misses += ls.Misses
		l1.Evictions += ls.Evictions
		l1.Writebacks += ls.Writebacks
		l1.InvReceived += ls.InvReceived
		l1.FwdReceived += ls.FwdReceived
		l1.HWSyncSet += ls.HWSyncSet
		l1.HWSyncCleared += ls.HWSyncCleared
		dir.GetS += ds.GetS
		dir.GetX += ds.GetX
		dir.Grants += ds.Grants
		dir.InvSent += ds.InvSent
		dir.FwdSent += ds.FwdSent
		dir.Writebacks += ds.Writebacks
		dir.ColdMisses += ds.ColdMisses
		dir.Conflicts += ds.Conflicts
		if ds.MaxQueueDepth > maxQueue {
			maxQueue = ds.MaxQueueDepth
		}
	}
	r.Counter("l1.loads").Add(l1.Loads)
	r.Counter("l1.stores").Add(l1.Stores)
	r.Counter("l1.rmws").Add(l1.RMWs)
	r.Counter("l1.hits").Add(l1.Hits)
	r.Counter("l1.misses").Add(l1.Misses)
	r.Counter("l1.evictions").Add(l1.Evictions)
	r.Counter("l1.writebacks").Add(l1.Writebacks)
	r.Counter("l1.inv_received").Add(l1.InvReceived)
	r.Counter("l1.fwd_received").Add(l1.FwdReceived)
	r.Counter("l1.hwsync_set").Add(l1.HWSyncSet)
	r.Counter("l1.hwsync_cleared").Add(l1.HWSyncCleared)
	r.Counter("dir.gets").Add(dir.GetS)
	r.Counter("dir.getx").Add(dir.GetX)
	r.Counter("dir.grants").Add(dir.Grants)
	r.Counter("dir.inv_sent").Add(dir.InvSent)
	r.Counter("dir.fwd_sent").Add(dir.FwdSent)
	r.Counter("dir.writebacks").Add(dir.Writebacks)
	r.Counter("dir.cold_misses").Add(dir.ColdMisses)
	r.Counter("dir.conflicts").Add(dir.Conflicts)
	r.Gauge("dir.max_queue_depth").Observe(uint64(maxQueue))

	// Core activity: per-op issue counts, stall-cycle breakdown by cause,
	// and the per-operation latency histograms.
	var cs cpu.Stats
	for i, c := range m.Cores {
		st := c.Stats()
		for op, v := range st.SyncIssued {
			cs.SyncIssued[op] += v
		}
		cs.SilentLocks += st.SilentLocks
		cs.SyncStallCycles += st.SyncStallCycles
		for k, v := range st.SyncStallByKind {
			cs.SyncStallByKind[k] += v
		}
		cs.ComputeCycles += st.ComputeCycles
		cs.Suspends += st.Suspends
		cs.Resumes += st.Resumes
		cs.Migrations += st.Migrations
		r.Counter(metrics.TileName("cpu", i, "sync_stall_cycles")).Add(uint64(st.SyncStallCycles))
	}
	for op, v := range cs.SyncIssued {
		if v > 0 {
			r.Counter("cpu.sync_issued." + isa.SyncOp(op).String()).Add(v)
		}
	}
	r.Counter("cpu.silent_locks").Add(cs.SilentLocks)
	r.Counter("cpu.sync_stall_cycles").Add(uint64(cs.SyncStallCycles))
	r.Counter("cpu.compute_cycles").Add(cs.ComputeCycles)
	r.Counter("cpu.suspends").Add(cs.Suspends)
	r.Counter("cpu.resumes").Add(cs.Resumes)
	r.Counter("cpu.migrations").Add(cs.Migrations)
	for _, ln := range latNames {
		r.Counter("cpu.stall_" + ln.name + "_cycles").Add(uint64(cs.SyncStallByKind[ln.kind]))
		h := m.Latency(ln.kind)
		if h.Count() > 0 {
			r.Histogram("cpu.latency." + ln.name).Merge(&h)
		}
	}

	// NoC traffic: totals, the hop-distance distribution, and per-link flit
	// counts for the four directed links of every router.
	ns := m.Net.Stats()
	r.Counter("noc.messages").Add(ns.Messages)
	r.Counter("noc.flits").Add(ns.Flits)
	r.Counter("noc.hop_count").Add(ns.HopCount)
	r.Counter("noc.total_latency").Add(uint64(ns.TotalLatency))
	r.Gauge("noc.max_latency").Observe(uint64(ns.MaxLatency))
	r.Histogram("noc.hops").Merge(&ns.HopHist)
	for i := 0; i < m.Cfg.Tiles; i++ {
		for d, name := range noc.DirNames {
			if f := m.Net.LinkFlits(i, d); f > 0 {
				r.Counter(metrics.TileName("noc", i, "link_flits."+name)).Add(f)
			}
		}
	}
}

// MetricsReport builds the per-run observability artifact from the metered
// machine: identification plus a full snapshot. Returns nil on an unmetered
// machine. kind is "app" or "micro"; app names the workload; lib describes
// the synchronization library (syncrt.Lib.Desc).
func (m *Machine) MetricsReport(kind, app, lib string) *metrics.Report {
	if m.Metrics == nil {
		return nil
	}
	m.collectMetrics()
	return &metrics.Report{
		Schema:  metrics.ReportSchema,
		Kind:    kind,
		App:     app,
		Config:  m.Cfg.Name,
		Lib:     lib,
		Tiles:   m.Cfg.Tiles,
		Cycles:  uint64(m.Now()),
		Metrics: m.Metrics.Snapshot(),
	}
}

// AttachTracer records protocol events from every MSA slice and core into
// b (see cmd/misar-trace). Pass nil to detach. The trace buffer is a shared
// single-writer structure, so tracing requires the serial kernel.
func (m *Machine) AttachTracer(b *trace.Buffer) {
	if b != nil && m.Group != nil {
		panic("machine: tracing requires a serial machine (Shards <= 1)")
	}
	for _, sl := range m.Slices {
		sl.SetTracer(b)
	}
	for _, c := range m.Cores {
		c.SetTracer(b)
	}
}

// MSAStats aggregates all slices' statistics.
func (m *Machine) MSAStats() corepkg.Stats {
	var s corepkg.Stats
	for _, sl := range m.Slices {
		st := sl.Stats()
		s.Add(&st)
	}
	return s
}

// Coverage returns the fraction of synchronization operations completed in
// hardware. For MSA-0 and Ideal it reports 0 and 1 respectively by
// definition.
func (m *Machine) Coverage() float64 {
	switch m.Cfg.CPU.Mode {
	case cpu.ModeAlwaysFail:
		return 0
	case cpu.ModeIdeal:
		return 1
	}
	s := m.MSAStats()
	hw, sw := s.HWOps(), s.SWOps()
	if hw+sw == 0 {
		return 0
	}
	return float64(hw) / float64(hw+sw)
}

// Latency merges every core's histogram for one operation class.
func (m *Machine) Latency(k cpu.LatencyKind) stats.Histogram {
	var h stats.Histogram
	for _, c := range m.Cores {
		h.Merge(c.Latency(k))
	}
	return h
}

// SyncOps reports total synchronization instructions issued by all cores.
func (m *Machine) SyncOps() uint64 {
	var n uint64
	for _, c := range m.Cores {
		st := c.Stats()
		for _, v := range st.SyncIssued {
			n += v
		}
	}
	return n
}
