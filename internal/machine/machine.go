// Package machine assembles the full tiled many-core model: per tile a core
// with private L1, a slice of the distributed LLC with its directory, an MSA
// slice with its OMU, and a mesh router — exactly the organization of the
// paper's §3. It also provides the named configurations the evaluation
// compares (Baseline software, MSA-0, MSA/OMU-N, MSA-inf, Ideal, and the
// Fig. 7/8/9 ablations).
package machine

import (
	"fmt"

	"misar/internal/coherence"
	corepkg "misar/internal/core"
	"misar/internal/cpu"
	"misar/internal/memory"
	"misar/internal/noc"
	"misar/internal/sim"
	"misar/internal/stats"
	"misar/internal/trace"
)

// Config describes one machine.
type Config struct {
	Name  string
	Tiles int
	NoC   noc.Config
	L1    coherence.L1Config
	Dir   coherence.DirConfig
	MSA   corepkg.Config
	CPU   cpu.Config
}

// meshDims picks the squarest W×H decomposition for n tiles.
func meshDims(n int) (int, int) {
	w := 1
	for w*w < n {
		w++
	}
	return w, (n + w - 1) / w
}

// Default returns the standard MSA/OMU-2 machine with the given tile count.
func Default(tiles int) Config {
	w, h := meshDims(tiles)
	return Config{
		Name:  fmt.Sprintf("MSA/OMU-2 %dc", tiles),
		Tiles: tiles,
		NoC:   noc.DefaultConfig(w, h),
		L1:    coherence.DefaultL1Config(),
		Dir:   coherence.DefaultDirConfig(),
		MSA:   corepkg.DefaultConfig(),
		CPU:   cpu.DefaultConfig(),
	}
}

// MSAOMU returns the MSA/OMU-N configuration.
func MSAOMU(tiles, entries int) Config {
	c := Default(tiles)
	c.Name = fmt.Sprintf("MSA/OMU-%d %dc", entries, tiles)
	c.MSA.Entries = entries
	return c
}

// MSA0 returns the paper's MSA-0: the new instructions exist but always
// FAIL locally; everything runs in the software library.
func MSA0(tiles int) Config {
	c := Default(tiles)
	c.Name = fmt.Sprintf("MSA-0 %dc", tiles)
	c.CPU.Mode = cpu.ModeAlwaysFail
	c.CPU.HWSyncOpt = false
	return c
}

// MSAInf returns the infinite-entry accelerator (no overflow possible).
func MSAInf(tiles int) Config {
	c := Default(tiles)
	c.Name = fmt.Sprintf("MSA-inf %dc", tiles)
	c.MSA.Entries = -1
	return c
}

// Ideal returns zero-latency synchronization.
func Ideal(tiles int) Config {
	c := Default(tiles)
	c.Name = fmt.Sprintf("Ideal %dc", tiles)
	c.CPU.Mode = cpu.ModeIdeal
	c.CPU.HWSyncOpt = false
	return c
}

// WithoutOMU disables overflow management (Fig. 7 baseline).
func WithoutOMU(c Config) Config {
	c.Name = c.Name + " noOMU"
	c.MSA.OMUEnabled = false
	return c
}

// WithFixedPriority replaces the NBTC round-robin grant with
// lowest-core-first selection (ablation A3).
func WithFixedPriority(c Config) Config {
	c.Name = c.Name + " fixedPrio"
	c.MSA.FixedPriority = true
	return c
}

// WithBloomOMU swaps the plain OMU counters for the counting Bloom filter
// the paper suggests in §3.2, with k hash functions over the same counter
// budget.
func WithBloomOMU(c Config, k int) Config {
	c.Name = fmt.Sprintf("%s bloom(k=%d)", c.Name, k)
	c.MSA.OMUBloom = true
	c.MSA.OMUHashes = k
	return c
}

// WithoutHWSync disables the §5 optimization (Fig. 8 baseline).
func WithoutHWSync(c Config) Config {
	c.Name = c.Name + " noHWSync"
	c.MSA.HWSyncOpt = false
	c.CPU.HWSyncOpt = false
	return c
}

// LockOnly restricts the MSA to lock acceleration (Fig. 9).
func LockOnly(c Config) Config {
	c.Name = c.Name + " lockOnly"
	c.MSA.Barriers = false
	c.MSA.Conds = false
	return c
}

// BarrierOnly restricts the MSA to barrier acceleration (Fig. 9).
func BarrierOnly(c Config) Config {
	c.Name = c.Name + " barrierOnly"
	c.MSA.Locks = false
	c.MSA.Conds = false
	return c
}

// Machine is a fully wired model instance.
type Machine struct {
	Cfg     Config
	Engine  *sim.Engine
	Net     *noc.Network
	Store   *memory.Store
	L1s     []*coherence.L1
	Dirs    []*coherence.Directory
	Slices  []*corepkg.Slice
	Cores   []*cpu.Core
	Complex *cpu.Complex
}

// New builds and wires a machine.
func New(cfg Config) *Machine {
	engine := sim.NewEngine()
	net := noc.New(engine, cfg.NoC)
	if net.Tiles() < cfg.Tiles {
		panic("machine: mesh smaller than tile count")
	}
	m := &Machine{
		Cfg:    cfg,
		Engine: engine,
		Net:    net,
		Store:  memory.NewStore(),
		L1s:    make([]*coherence.L1, cfg.Tiles),
		Dirs:   make([]*coherence.Directory, cfg.Tiles),
		Slices: make([]*corepkg.Slice, cfg.Tiles),
		Cores:  make([]*cpu.Core, cfg.Tiles),
	}
	var ideal *cpu.Ideal
	if cfg.CPU.Mode == cpu.ModeIdeal {
		ideal = cpu.NewIdeal()
	}
	for i := 0; i < cfg.Tiles; i++ {
		i := i
		sendCoh := func(dst int, msg *coherence.Msg) {
			net.Send(&noc.Message{Src: i, Dst: dst, Bytes: msg.Bytes(), Payload: msg})
		}
		m.L1s[i] = coherence.NewL1(i, cfg.Tiles, cfg.L1, engine, m.Store, sendCoh)
		m.Dirs[i] = coherence.NewDirectory(i, cfg.Tiles, cfg.Dir, engine, sendCoh)
		m.Slices[i] = corepkg.NewSlice(i, cfg.Tiles, cfg.MSA, engine, m.Dirs[i],
			func(c int, r *corepkg.Resp) {
				net.Send(&noc.Message{Src: i, Dst: c, Bytes: corepkg.RespBytes, Payload: r})
			},
			func(tile int, msg *corepkg.MsaMsg) {
				net.Send(&noc.Message{Src: i, Dst: tile, Bytes: corepkg.MsaBytes, Payload: msg})
			})
		m.Cores[i] = cpu.NewCore(i, cfg.Tiles, cfg.CPU, engine, m.L1s[i],
			func(home int, r *corepkg.Req) {
				net.Send(&noc.Message{Src: i, Dst: home, Bytes: corepkg.ReqBytes, Payload: r})
			}, ideal)
		net.Attach(i, func(nm *noc.Message) {
			switch p := nm.Payload.(type) {
			case *coherence.Msg:
				switch p.Kind {
				case coherence.RspDataS, coherence.RspDataE, coherence.MsgInv, coherence.MsgFwd:
					m.L1s[i].Handle(p)
				default:
					m.Dirs[i].Handle(p)
				}
			case *corepkg.Req:
				m.Slices[i].HandleReq(p)
			case *corepkg.Resp:
				m.Cores[i].HandleResp(p)
			case *corepkg.MsaMsg:
				m.Slices[i].HandleMsa(p)
			default:
				panic(fmt.Sprintf("machine: tile %d got unknown payload %T", i, nm.Payload))
			}
		})
	}
	m.Complex = cpu.NewComplex(engine, m.Cores)
	return m
}

// SpawnAll starts one thread per core (thread i on core i) at time 0,
// running body with the thread id.
func (m *Machine) SpawnAll(n int, body func(tid int, e cpu.Env)) {
	if n > m.Cfg.Tiles {
		panic("machine: more threads than cores")
	}
	for i := 0; i < n; i++ {
		i := i
		t := m.Complex.Spawn(i, func(e cpu.Env) { body(i, e) })
		m.Complex.Start(t, i, 0)
	}
}

// Run drives the simulation until all threads finish. It returns the final
// cycle, or an error on deadlock, timeout, or a panicking thread body.
func (m *Machine) Run(deadline sim.Time) (sim.Time, error) {
	drained := m.Engine.RunUntil(deadline)
	for _, t := range m.Complex.Threads() {
		if t.Err() != nil {
			return m.Engine.Now(), fmt.Errorf("machine: thread %d panicked: %v", t.ID(), t.Err())
		}
	}
	if !drained {
		return m.Engine.Now(), fmt.Errorf("machine: deadline %d reached with work pending", deadline)
	}
	if r := m.Complex.Running(); r > 0 {
		return m.Engine.Now(), fmt.Errorf("machine: quiesced with %d threads blocked (deadlock)", r)
	}
	return m.Engine.Now(), nil
}

// AttachTracer records protocol events from every MSA slice and core into
// b (see cmd/misar-trace). Pass nil to detach.
func (m *Machine) AttachTracer(b *trace.Buffer) {
	for _, sl := range m.Slices {
		sl.SetTracer(b)
	}
	for _, c := range m.Cores {
		c.SetTracer(b)
	}
}

// MSAStats aggregates all slices' statistics.
func (m *Machine) MSAStats() corepkg.Stats {
	var s corepkg.Stats
	for _, sl := range m.Slices {
		st := sl.Stats()
		s.Add(&st)
	}
	return s
}

// Coverage returns the fraction of synchronization operations completed in
// hardware. For MSA-0 and Ideal it reports 0 and 1 respectively by
// definition.
func (m *Machine) Coverage() float64 {
	switch m.Cfg.CPU.Mode {
	case cpu.ModeAlwaysFail:
		return 0
	case cpu.ModeIdeal:
		return 1
	}
	s := m.MSAStats()
	hw, sw := s.HWOps(), s.SWOps()
	if hw+sw == 0 {
		return 0
	}
	return float64(hw) / float64(hw+sw)
}

// Latency merges every core's histogram for one operation class.
func (m *Machine) Latency(k cpu.LatencyKind) stats.Histogram {
	var h stats.Histogram
	for _, c := range m.Cores {
		h.Merge(c.Latency(k))
	}
	return h
}

// SyncOps reports total synchronization instructions issued by all cores.
func (m *Machine) SyncOps() uint64 {
	var n uint64
	for _, c := range m.Cores {
		st := c.Stats()
		for _, v := range st.SyncIssued {
			n += v
		}
	}
	return n
}
