package machine

// The liveness watchdog. When a run stops making progress — the event queue
// drains with threads still blocked, or the cycle budget expires with work
// pending — Run does not simply report "deadlock": it assembles a structured
// Diagnosis of who is blocked on what, across both the hardware world (MSA
// entry snapshots, outstanding synchronization instructions at the cores) and
// the software world (the invariant checker's lock/barrier/cond registries),
// builds the lock wait-for graph spanning the two, and reports any cycles.
// The same machinery serves fault-injection campaigns (cmd/misar-chaos),
// where a liveness failure under an adversarial schedule must be triaged from
// a single deterministic seed.

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	corepkg "misar/internal/core"
	"misar/internal/fault"
	"misar/internal/isa"
	"misar/internal/memory"
	"misar/internal/obs"
	"misar/internal/sim"
)

// FlightOf extracts the flight-recorder dump carried by a structured run
// error (LivenessError, SafetyError, PanicError), or nil for other errors.
// Callers get the machine's last protocol events without caring which
// failure class produced them.
func FlightOf(err error) []obs.FlightEvent {
	var le *LivenessError
	if errors.As(err, &le) {
		return le.Flight
	}
	var se *SafetyError
	if errors.As(err, &se) {
		return se.Flight
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe.Flight
	}
	return nil
}

// ThreadDiag describes one unfinished thread at diagnosis time.
type ThreadDiag struct {
	ID     int  `json:"id"`
	Core   int  `json:"core"` // tile the thread last ran on; -1 if never scheduled
	Parked bool `json:"parked"`
	// Outstanding synchronization instruction at the thread's core, if the
	// thread is installed there and one is in flight.
	OutOp    string      `json:"out_op,omitempty"`
	OutAddr  memory.Addr `json:"out_addr,omitempty"`
	OutSince sim.Time    `json:"out_since,omitempty"`
}

// EntryDiag is one live MSA entry, tagged with its home tile.
type EntryDiag struct {
	Tile int `json:"tile"`
	corepkg.EntrySnapshot
}

// WaitEdge is one edge of the lock wait-for graph: Waiter is blocked on a
// lock currently held by Holder (both thread ids; hardware-side core ids are
// resolved to the thread installed on that core).
type WaitEdge struct {
	Waiter int         `json:"waiter"`
	Holder int         `json:"holder"`
	Addr   memory.Addr `json:"addr"`
}

// Diagnosis is the watchdog's structured report of a stuck (or suspect)
// machine. All slices are sorted for deterministic rendering.
type Diagnosis struct {
	Reason  string       `json:"reason"`
	Now     sim.Time     `json:"now"`
	Blocked []ThreadDiag `json:"blocked,omitempty"`
	Entries []EntryDiag  `json:"entries,omitempty"`
	// LastReq[i] is the cycle at which MSA slice i last accepted a request —
	// a quick read on which tile went quiet first.
	LastReq []sim.Time `json:"last_req,omitempty"`
	// Software-world registries from the invariant checker (empty when
	// invariant checking is disabled).
	Locks    []fault.LockState    `json:"locks,omitempty"`
	Barriers []fault.BarrierState `json:"barriers,omitempty"`
	Conds    []fault.CondState    `json:"conds,omitempty"`
	// Safety violations recorded so far, folded in so a single error value
	// carries both the liveness and the safety story.
	Violations []fault.Violation `json:"violations,omitempty"`
	// The lock wait-for graph and any cycles found in it (each cycle a list
	// of thread ids; a cycle is a proven deadlock among those threads).
	Edges  []WaitEdge `json:"edges,omitempty"`
	Cycles [][]int    `json:"cycles,omitempty"`
}

// Summary renders the diagnosis as a compact human-readable block.
func (d *Diagnosis) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "liveness diagnosis at cycle %d:\n", d.Now)
	for _, t := range d.Blocked {
		fmt.Fprintf(&b, "  thread %d on core %d", t.ID, t.Core)
		if t.Parked {
			b.WriteString(" (parked)")
		}
		if t.OutOp != "" {
			fmt.Fprintf(&b, " awaiting %s %#x since cycle %d", t.OutOp, t.OutAddr, t.OutSince)
		}
		b.WriteByte('\n')
	}
	for _, e := range d.Entries {
		fmt.Fprintf(&b, "  msa[%d] %s %#x owner=%d waiters=%#x goal=%d pins=%d",
			e.Tile, e.Typ, e.Addr, e.Owner, e.Waiters, e.Goal, e.Pins)
		if e.Standby {
			b.WriteString(" standby")
		}
		if e.Draining {
			b.WriteString(" draining")
		}
		if e.Revoking {
			b.WriteString(" revoking")
		}
		b.WriteByte('\n')
	}
	for _, l := range d.Locks {
		if !l.Held && len(l.Waiters) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  lock %#x", l.Addr)
		if l.Held {
			fmt.Fprintf(&b, " held by %d (%s)", l.Holder, l.World)
		} else {
			b.WriteString(" free")
		}
		if len(l.Waiters) > 0 {
			fmt.Fprintf(&b, " waiters=%v", l.Waiters)
		}
		b.WriteByte('\n')
	}
	for _, bs := range d.Barriers {
		fmt.Fprintf(&b, "  barrier %#x (%s) %d/%d arrived %v\n",
			bs.Addr, bs.World, len(bs.Arrived), bs.Goal, bs.Arrived)
	}
	for _, c := range d.Conds {
		fmt.Fprintf(&b, "  cond %#x waiters=%v\n", c.Addr, c.Waiters)
	}
	for _, cyc := range d.Cycles {
		fmt.Fprintf(&b, "  wait-for cycle: %v\n", cyc)
	}
	for _, v := range d.Violations {
		fmt.Fprintf(&b, "  violation: %s\n", v.String())
	}
	return strings.TrimRight(b.String(), "\n")
}

// Diagnose assembles a Diagnosis for the machine's current state. It is
// read-only and safe to call at any point the engine is not mid-event; Run
// calls it when a liveness check trips.
func (m *Machine) Diagnose(reason string) *Diagnosis {
	d := &Diagnosis{Reason: reason, Now: m.Now()}

	// Thread states, with the outstanding instruction when the thread is
	// the one installed on its core. Threads() merges every shard complex,
	// so a sharded machine's diagnosis spans the whole machine.
	for _, t := range m.Threads() {
		if t.Done() {
			continue
		}
		td := ThreadDiag{ID: t.ID(), Core: t.CoreID(), Parked: t.Parked()}
		if c := t.CoreID(); c >= 0 && m.Cores[c].Current() == t {
			if op, addr, since, ok := m.Cores[c].Outstanding(); ok {
				td.OutOp = op.String()
				td.OutAddr = addr
				td.OutSince = since
			}
		}
		d.Blocked = append(d.Blocked, td)
	}
	// Threads() groups by shard; re-sort by id so the report is stable
	// regardless of how threads were distributed.
	sort.Slice(d.Blocked, func(i, j int) bool { return d.Blocked[i].ID < d.Blocked[j].ID })

	// Hardware world: live MSA entries and per-tile last-request times.
	d.LastReq = make([]sim.Time, len(m.Slices))
	for i, sl := range m.Slices {
		d.LastReq[i] = sl.LastReq()
		for _, e := range sl.Snapshot() {
			d.Entries = append(d.Entries, EntryDiag{Tile: i, EntrySnapshot: e})
		}
	}

	// Software world (and recorded violations), when the checker is attached.
	if ch := m.Checker; ch != nil {
		d.Locks = ch.LockStates()
		d.Barriers = ch.BarrierStates()
		d.Conds = ch.CondStates()
		d.Violations = ch.Violations()
	}

	d.Edges = m.waitEdges(d)
	d.Cycles = findCycles(d.Edges)
	return d
}

// threadOnCore resolves a core id to the id of the thread installed on it,
// or -1 when the core is idle.
func (m *Machine) threadOnCore(c int) int {
	if c < 0 || c >= len(m.Cores) {
		return -1
	}
	if t := m.Cores[c].Current(); t != nil {
		return t.ID()
	}
	return -1
}

// waitEdges builds the lock wait-for graph over thread ids, merging the
// hardware world (MSA lock entries: waiter cores blocked on an owner core)
// with the software world (the checker's lock registry). Hardware core ids
// are resolved through the scheduler to the thread currently installed;
// edges whose endpoints cannot be resolved are dropped — the graph is a
// best-effort aid, the authoritative state is in the Diagnosis itself.
func (m *Machine) waitEdges(d *Diagnosis) []WaitEdge {
	var edges []WaitEdge
	add := func(waiter, holder int, addr memory.Addr) {
		if waiter < 0 || holder < 0 || waiter == holder {
			return
		}
		edges = append(edges, WaitEdge{Waiter: waiter, Holder: holder, Addr: addr})
	}

	for _, e := range d.Entries {
		if e.Typ != isa.TypeLock || e.Owner < 0 {
			continue
		}
		holder := m.threadOnCore(e.Owner)
		for c := 0; c < len(m.Cores); c++ {
			if e.Waiters.Has(c) {
				add(m.threadOnCore(c), holder, e.Addr)
			}
		}
	}
	for _, l := range d.Locks {
		if !l.Held {
			continue
		}
		holder := l.Holder
		if l.World == fault.WorldHW {
			holder = m.threadOnCore(holder)
		}
		for _, w := range l.Waiters {
			waiter := w.ID
			if w.World == fault.WorldHW {
				waiter = m.threadOnCore(waiter)
			}
			add(waiter, holder, l.Addr)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Waiter != edges[j].Waiter {
			return edges[i].Waiter < edges[j].Waiter
		}
		if edges[i].Holder != edges[j].Holder {
			return edges[i].Holder < edges[j].Holder
		}
		return edges[i].Addr < edges[j].Addr
	})
	// Dedup (an edge can be seen by both worlds).
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// findCycles reports the simple cycles of the wait-for graph via DFS with an
// on-stack marker. Each cycle is rotated to start at its smallest thread id
// and reported once.
func findCycles(edges []WaitEdge) [][]int {
	adj := map[int][]int{}
	for _, e := range edges {
		adj[e.Waiter] = append(adj[e.Waiter], e.Holder)
	}
	nodes := make([]int, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var stack []int
	seen := map[string]bool{}
	var cycles [][]int

	var dfs func(n int)
	dfs = func(n int) {
		color[n] = gray
		stack = append(stack, n)
		for _, next := range adj[n] {
			switch color[next] {
			case white:
				dfs(next)
			case gray:
				// Back edge: the cycle is the stack suffix from next to n.
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == next {
						cyc := normalizeCycle(stack[i:])
						key := fmt.Sprint(cyc)
						if !seen[key] {
							seen[key] = true
							cycles = append(cycles, cyc)
						}
						break
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
	return cycles
}

// normalizeCycle rotates a cycle so its smallest element comes first.
func normalizeCycle(c []int) []int {
	min := 0
	for i := range c {
		if c[i] < c[min] {
			min = i
		}
	}
	out := make([]int, 0, len(c))
	out = append(out, c[min:]...)
	out = append(out, c[:min]...)
	return out
}

// LivenessError is returned by Run when the machine stops making progress:
// either the event queue drained with threads still blocked (a true
// quiescent deadlock) or the cycle budget expired with work pending
// (livelock or pathological slowdown). Reason preserves the legacy one-line
// description; Diag carries the full structured picture.
type LivenessError struct {
	Reason string
	Diag   *Diagnosis
	// Flight is the machine's flight-recorder tail at failure time: the
	// last protocol events leading into the hang (see obs.FlightRecorder).
	Flight []obs.FlightEvent
}

func (e *LivenessError) Error() string {
	if e.Diag == nil {
		return e.Reason
	}
	return e.Reason + "\n" + e.Diag.Summary()
}

// SafetyError is returned by Run when the simulation completed but the
// invariant checker recorded violations: the run is functionally finished
// yet provably unsafe (mutual exclusion, OMU exclusivity, or barrier-epoch
// separation was broken along the way).
type SafetyError struct {
	Violations []fault.Violation
	// Flight is the flight-recorder tail at completion (see LivenessError).
	Flight []obs.FlightEvent
}

func (e *SafetyError) Error() string {
	if len(e.Violations) == 0 {
		return "machine: safety violations recorded"
	}
	return fmt.Sprintf("machine: %d safety violation(s), first: %s",
		len(e.Violations), e.Violations[0].String())
}

// PanicError is returned by Run when a machine component (slice, directory,
// network — not a thread body, which is recovered separately) panicked
// mid-event. The simulated threads are torn down so their goroutines do not
// leak; the machine must be discarded.
type PanicError struct {
	Value any
	Stack string
	// Flight is the flight-recorder tail at the panic (see LivenessError).
	Flight []obs.FlightEvent
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("machine: component panicked: %v", e.Value)
}

// CancelError is returned by RunCtx when the caller's context ended before
// the simulation finished. It is an abandonment, not a verdict: the machine
// was torn down mid-flight and its partial statistics mean nothing. Cause is
// the context's error (context.Canceled or context.DeadlineExceeded), so
// errors.Is(err, context.Canceled) works through the wrapper.
type CancelError struct {
	Cause error
	At    sim.Time // simulated cycle at which the run was abandoned
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("machine: run cancelled at cycle %d: %v", e.At, e.Cause)
}

func (e *CancelError) Unwrap() error { return e.Cause }
