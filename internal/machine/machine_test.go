package machine

import (
	"fmt"
	"testing"

	"misar/internal/cpu"
	"misar/internal/memory"
	"misar/internal/sim"
	"misar/internal/syncrt"
)

const deadline = sim.Time(200_000_000)

// configsUnderTest pairs every machine variant with its library, as the
// paper's evaluation does.
func configsUnderTest(tiles int) []struct {
	cfg Config
	lib *syncrt.Lib
} {
	return []struct {
		cfg Config
		lib *syncrt.Lib
	}{
		{func() Config { c := Default(tiles); c.Name = "pthread"; c.CPU.Mode = cpu.ModeAlwaysFail; return c }(), syncrt.PthreadLib()},
		{MSA0(tiles), syncrt.HWLib()},
		{MSAOMU(tiles, 1), syncrt.HWLib()},
		{MSAOMU(tiles, 2), syncrt.HWLib()},
		{WithoutHWSync(MSAOMU(tiles, 2)), syncrt.HWLib()},
		{MSAInf(tiles), syncrt.HWLib()},
		{Ideal(tiles), syncrt.HWLib()},
		{func() Config { c := Default(tiles); c.Name = "mcs-tour"; c.CPU.Mode = cpu.ModeAlwaysFail; return c }(), syncrt.MCSTourLib()},
		{LockOnly(MSAOMU(tiles, 2)), syncrt.HWLib()},
		{BarrierOnly(MSAOMU(tiles, 2)), syncrt.HWLib()},
		{WithoutOMU(MSAOMU(tiles, 2)), syncrt.HWLib()},
	}
}

// TestMutualExclusionAllConfigs hammers one lock from every core and checks
// that a non-atomic read-modify-write sequence under the lock never loses an
// update — the canonical mutual-exclusion test.
func TestMutualExclusionAllConfigs(t *testing.T) {
	const tiles, iters = 8, 20
	for _, tc := range configsUnderTest(tiles) {
		tc := tc
		t.Run(tc.cfg.Name, func(t *testing.T) {
			m := New(tc.cfg)
			arena := syncrt.NewArena(0x100000)
			lock := arena.Mutex()
			counter := arena.Data(1)
			qnodes := make([]memory.Addr, tiles)
			for i := range qnodes {
				qnodes[i] = arena.QNode()
			}
			m.SpawnAll(tiles, func(tid int, e cpu.Env) {
				rt := tc.lib.Bind(e, qnodes[tid])
				for i := 0; i < iters; i++ {
					rt.Lock(lock)
					v := e.Load(counter) // non-atomic increment under lock
					e.Compute(5)
					e.Store(counter, v+1)
					rt.Unlock(lock)
					e.Compute(20)
				}
			})
			if _, err := m.Run(deadline); err != nil {
				t.Fatal(err)
			}
			if got := m.Store.Load(counter); got != tiles*iters {
				t.Fatalf("counter = %d, want %d (mutual exclusion violated)", got, tiles*iters)
			}
		})
	}
}

// TestBarrierPhasesAllConfigs runs a multi-phase computation where phase k
// writes must all be visible before phase k+1 reads.
func TestBarrierPhasesAllConfigs(t *testing.T) {
	const tiles, phases = 8, 6
	for _, tc := range configsUnderTest(tiles) {
		tc := tc
		t.Run(tc.cfg.Name, func(t *testing.T) {
			m := New(tc.cfg)
			arena := syncrt.NewArena(0x100000)
			bar := arena.Barrier(tiles)
			cells := arena.Data(tiles)
			qnodes := make([]memory.Addr, tiles)
			for i := range qnodes {
				qnodes[i] = arena.QNode()
			}
			bad := make([]bool, tiles)
			m.SpawnAll(tiles, func(tid int, e cpu.Env) {
				rt := tc.lib.Bind(e, qnodes[tid])
				my := cells + memory.Addr(tid*memory.LineSize)
				for p := 1; p <= phases; p++ {
					e.Store(my, uint64(p))
					e.Compute(uint64(10 + tid*3))
					rt.Wait(bar)
					// Everyone must observe every cell at phase p.
					peer := cells + memory.Addr(((tid+1)%tiles)*memory.LineSize)
					if e.Load(peer) < uint64(p) {
						bad[tid] = true
					}
					rt.Wait(bar)
				}
			})
			if _, err := m.Run(deadline); err != nil {
				t.Fatal(err)
			}
			for tid, b := range bad {
				if b {
					t.Fatalf("thread %d crossed a barrier early", tid)
				}
			}
		})
	}
}

// TestCondVarProducerConsumer checks signal/wait semantics: a bounded
// buffer with one producer and many consumers.
func TestCondVarProducerConsumer(t *testing.T) {
	const tiles = 8
	const items = 24
	for _, tc := range configsUnderTest(tiles) {
		tc := tc
		t.Run(tc.cfg.Name, func(t *testing.T) {
			m := New(tc.cfg)
			arena := syncrt.NewArena(0x100000)
			lock := arena.Mutex()
			notEmpty := arena.Cond()
			queue := arena.Data(1)    // item count
			consumed := arena.Data(1) // total consumed
			qnodes := make([]memory.Addr, tiles)
			for i := range qnodes {
				qnodes[i] = arena.QNode()
			}
			m.SpawnAll(tiles, func(tid int, e cpu.Env) {
				rt := tc.lib.Bind(e, qnodes[tid])
				if tid == 0 {
					// Producer.
					for i := 0; i < items; i++ {
						rt.Lock(lock)
						e.Store(queue, e.Load(queue)+1)
						rt.CondSignal(notEmpty)
						rt.Unlock(lock)
						e.Compute(50)
					}
					return
				}
				// Consumers: each takes items until the global total is met.
				for {
					rt.Lock(lock)
					for e.Load(queue) == 0 && e.Load(consumed) < items {
						rt.CondWait(notEmpty, lock)
					}
					if e.Load(consumed) >= items {
						// Wake any remaining sleeper so everyone can exit.
						rt.CondSignal(notEmpty)
						rt.Unlock(lock)
						return
					}
					e.Store(queue, e.Load(queue)-1)
					e.Store(consumed, e.Load(consumed)+1)
					if e.Load(consumed) >= items {
						rt.CondBroadcast(notEmpty)
					}
					rt.Unlock(lock)
					e.Compute(30)
				}
			})
			if _, err := m.Run(deadline); err != nil {
				t.Fatal(err)
			}
			if got := m.Store.Load(consumed); got != items {
				t.Fatalf("consumed = %d, want %d", got, items)
			}
			if got := m.Store.Load(queue); got != 0 {
				t.Fatalf("queue = %d, want 0", got)
			}
		})
	}
}

// TestManyLocksOverflow uses far more locks than MSA entries; the OMU must
// keep everything correct while entries churn.
func TestManyLocksOverflow(t *testing.T) {
	const tiles, locks, iters = 8, 64, 6
	cfg := MSAOMU(tiles, 2)
	m := New(cfg)
	arena := syncrt.NewArena(0x100000)
	ms := make([]syncrt.Mutex, locks)
	for i := range ms {
		ms[i] = arena.Mutex()
	}
	counters := arena.Data(locks)
	qnodes := make([]memory.Addr, tiles)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}
	lib := syncrt.HWLib()
	m.SpawnAll(tiles, func(tid int, e cpu.Env) {
		rt := lib.Bind(e, qnodes[tid])
		for i := 0; i < iters; i++ {
			for j := 0; j < locks; j++ {
				k := (j*7 + tid*13) % locks
				rt.Lock(ms[k])
				addr := counters + memory.Addr(k*memory.LineSize)
				e.Store(addr, e.Load(addr)+1)
				rt.Unlock(ms[k])
			}
		}
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < locks; k++ {
		addr := counters + memory.Addr(k*memory.LineSize)
		if got := m.Store.Load(addr); got != tiles*iters {
			t.Fatalf("lock %d counter = %d, want %d", k, got, tiles*iters)
		}
	}
	// With 8 slices × 2 entries and 64 locks, software fallback must have
	// happened — and hardware must still have served a decent share.
	s := m.MSAStats()
	if s.SWOps() == 0 {
		t.Error("expected some software fallback with 64 locks on MSA-2")
	}
	if s.HWOps() == 0 {
		t.Error("expected some hardware coverage")
	}
	if s.Allocs == 0 || s.Deallocs == 0 {
		t.Error("expected entry churn")
	}
}

// TestCoverageImprovesWithOMU reproduces Fig. 7's direction: with many
// barriers+locks cycling, the OMU-managed MSA covers more operations than
// the never-deallocate baseline.
func TestCoverageImprovesWithOMU(t *testing.T) {
	run := func(without bool) float64 {
		cfg := MSAOMU(8, 2)
		if without {
			cfg = WithoutOMU(cfg)
		}
		m := New(cfg)
		arena := syncrt.NewArena(0x100000)
		const locks = 48
		ms := make([]syncrt.Mutex, locks)
		for i := range ms {
			ms[i] = arena.Mutex()
		}
		qnodes := make([]memory.Addr, 8)
		for i := range qnodes {
			qnodes[i] = arena.QNode()
		}
		lib := syncrt.HWLib()
		m.SpawnAll(8, func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qnodes[tid])
			// Phased: use one lock heavily, then move on — the OMU lets
			// entries follow the active set.
			for phase := 0; phase < locks; phase++ {
				k := (phase + tid) % locks
				for i := 0; i < 4; i++ {
					rt.Lock(ms[k])
					e.Compute(10)
					rt.Unlock(ms[k])
				}
			}
		})
		if _, err := m.Run(deadline); err != nil {
			t.Fatal(err)
		}
		return m.Coverage()
	}
	with := run(false)
	without := run(true)
	if with <= without {
		t.Fatalf("coverage with OMU (%.2f) should beat without (%.2f)", with, without)
	}
}

// TestSilentReacquire verifies the §5 fast path fires when one thread
// repeatedly locks its own lock.
func TestSilentReacquire(t *testing.T) {
	m := New(MSAOMU(4, 2))
	arena := syncrt.NewArena(0x100000)
	lock := arena.Mutex()
	lib := syncrt.HWLib()
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		rt := lib.Bind(e, arena.QNode())
		for i := 0; i < 10; i++ {
			rt.Lock(lock)
			e.Compute(150)
			rt.Unlock(lock)
			e.Compute(150)
		}
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	st := m.Cores[0].Stats()
	if st.SilentLocks < 7 {
		t.Fatalf("silent locks = %d, want >= 7 of 10 (grant fill takes ~1 round trip)", st.SilentLocks)
	}
}

// TestSuspendResumeMigration exercises the SUSPEND/ABORT machinery: a
// waiter is suspended while queued, resumed on another core, and the lock
// still ends up correctly handed around.
func TestSuspendResumeMigration(t *testing.T) {
	m := New(MSAOMU(4, 2))
	arena := syncrt.NewArena(0x100000)
	lock := arena.Mutex()
	counter := arena.Data(1)
	lib := syncrt.HWLib()
	qn := []memory.Addr{arena.QNode(), arena.QNode()}

	t0 := m.Complex.Spawn(0, func(e cpu.Env) {
		rt := lib.Bind(e, qn[0])
		rt.Lock(lock)
		e.Compute(3000) // hold long enough for thread 1 to queue up
		e.Store(counter, e.Load(counter)+1)
		rt.Unlock(lock)
	})
	t1 := m.Complex.Spawn(1, func(e cpu.Env) {
		rt := lib.Bind(e, qn[1])
		e.Compute(200) // let thread 0 win
		rt.Lock(lock)
		e.Store(counter, e.Load(counter)+1)
		rt.Unlock(lock)
	})
	m.Complex.Start(t0, 0, 0)
	m.Complex.Start(t1, 1, 0)
	// While thread 1 waits in the HWQueue, suspend it and migrate to core 3.
	m.Engine.At(800, func() {
		m.Complex.Suspend(t1, func() {
			m.Engine.After(5000, func() { m.Complex.Resume(t1, 3) })
		})
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(counter); got != 2 {
		t.Fatalf("counter = %d, want 2", got)
	}
	if m.Cores[3].Stats().Migrations != 1 {
		t.Fatal("migration not recorded")
	}
}

// TestMigratedOwnerUnlockAbort: the owner migrates mid-critical-section and
// unlocks from another core; waiters must be aborted to software and still
// make progress.
func TestMigratedOwnerUnlockAbort(t *testing.T) {
	m := New(MSAOMU(4, 2))
	arena := syncrt.NewArena(0x100000)
	lock := arena.Mutex()
	counter := arena.Data(1)
	lib := syncrt.HWLib()
	qn := []memory.Addr{arena.QNode(), arena.QNode(), arena.QNode()}

	t0 := m.Complex.Spawn(0, func(e cpu.Env) {
		rt := lib.Bind(e, qn[0])
		rt.Lock(lock)
		e.Compute(5000) // hold while being migrated
		e.Store(counter, e.Load(counter)+1)
		rt.Unlock(lock) // executed from core 3 after migration
	})
	waiter := func(i int) func(cpu.Env) {
		return func(e cpu.Env) {
			rt := lib.Bind(e, qn[i])
			e.Compute(300)
			rt.Lock(lock)
			e.Store(counter, e.Load(counter)+1)
			rt.Unlock(lock)
		}
	}
	t1 := m.Complex.Spawn(1, waiter(1))
	t2 := m.Complex.Spawn(2, waiter(2))
	m.Complex.Start(t0, 0, 0)
	m.Complex.Start(t1, 1, 0)
	m.Complex.Start(t2, 2, 0)
	// Migrate the owner mid-hold: it parks during its Compute, resumes on 3.
	m.Engine.At(1000, func() {
		m.Complex.Suspend(t0, func() {
			m.Engine.After(100, func() { m.Complex.Resume(t0, 3) })
		})
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(counter); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if m.MSAStats().Aborts == 0 {
		t.Fatal("expected waiter aborts from the migrated-owner unlock")
	}
}

// TestBarrierSuspensionFallsBackToSoftware suspends a thread waiting at a
// hardware barrier; everyone must fall back to software and still complete.
func TestBarrierSuspensionFallsBackToSoftware(t *testing.T) {
	const tiles = 4
	m := New(MSAOMU(tiles, 2))
	arena := syncrt.NewArena(0x100000)
	bar := arena.Barrier(tiles)
	lib := syncrt.HWLib()
	qnodes := make([]memory.Addr, tiles)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}
	done := arena.Data(1)
	var threads []*cpu.Thread
	for i := 0; i < tiles; i++ {
		i := i
		th := m.Complex.Spawn(i, func(e cpu.Env) {
			rt := lib.Bind(e, qnodes[i])
			if i == tiles-1 {
				e.Compute(50_000) // last arrival comes very late
			}
			rt.Wait(bar)
			e.FetchAdd(done, 1)
		})
		threads = append(threads, th)
		m.Complex.Start(th, i, 0)
	}
	// Suspend thread 0 while it waits at the barrier, resume shortly after.
	m.Engine.At(2000, func() {
		m.Complex.Suspend(threads[0], func() {
			m.Engine.After(3000, func() { m.Complex.Resume(threads[0], 0) })
		})
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(done); got != tiles {
		t.Fatalf("done = %d, want %d", got, tiles)
	}
	if m.MSAStats().Aborts == 0 {
		t.Fatal("expected barrier abort")
	}
}

// TestDeterminism: identical runs produce identical cycle counts and stats.
func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		m := New(MSAOMU(8, 2))
		arena := syncrt.NewArena(0x100000)
		lock := arena.Mutex()
		bar := arena.Barrier(8)
		counter := arena.Data(1)
		qnodes := make([]memory.Addr, 8)
		for i := range qnodes {
			qnodes[i] = arena.QNode()
		}
		lib := syncrt.HWLib()
		m.SpawnAll(8, func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qnodes[tid])
			for i := 0; i < 10; i++ {
				rt.Lock(lock)
				e.Store(counter, e.Load(counter)+1)
				rt.Unlock(lock)
				rt.Wait(bar)
			}
		})
		end, err := m.Run(deadline)
		if err != nil {
			t.Fatal(err)
		}
		st := m.MSAStats()
		return end, st.HWOps()
	}
	e1, h1 := run()
	e2, h2 := run()
	if e1 != e2 || h1 != h2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", e1, h1, e2, h2)
	}
}

// TestSpeedupSanity: on a barrier-heavy workload at 16 cores, hardware
// synchronization must beat the software baseline, and MSA-0 must be close
// to it.
func TestSpeedupSanity(t *testing.T) {
	run := func(cfg Config, lib *syncrt.Lib) sim.Time {
		const tiles = 16
		m := New(cfg)
		arena := syncrt.NewArena(0x100000)
		bar := arena.Barrier(tiles)
		qnodes := make([]memory.Addr, tiles)
		for i := range qnodes {
			qnodes[i] = arena.QNode()
		}
		m.SpawnAll(tiles, func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qnodes[tid])
			for i := 0; i < 30; i++ {
				e.Compute(uint64(100 + (tid*37+i*11)%50))
				rt.Wait(bar)
			}
		})
		end, err := m.Run(deadline)
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	base := run(func() Config { c := Default(16); c.CPU.Mode = cpu.ModeAlwaysFail; return c }(), syncrt.PthreadLib())
	hw := run(MSAOMU(16, 2), syncrt.HWLib())
	msa0 := run(MSA0(16), syncrt.HWLib())
	ideal := run(Ideal(16), syncrt.HWLib())
	t.Logf("pthread=%d msa0=%d hw=%d ideal=%d", base, msa0, hw, ideal)
	if hw >= base {
		t.Errorf("MSA/OMU (%d cycles) should beat pthread (%d)", hw, base)
	}
	if ideal > hw {
		t.Errorf("Ideal (%d) should not be slower than MSA/OMU (%d)", ideal, hw)
	}
	// MSA-0 overhead over the baseline should be small (paper: within 1%,
	// we allow 5% for model noise).
	if float64(msa0) > float64(base)*1.05 {
		t.Errorf("MSA-0 (%d) adds too much overhead over pthread (%d)", msa0, base)
	}
}

func ExampleNew() {
	m := New(MSAOMU(4, 2))
	arena := syncrt.NewArena(0x100000)
	lock := arena.Mutex()
	lib := syncrt.HWLib()
	m.SpawnAll(4, func(tid int, e cpu.Env) {
		rt := lib.Bind(e, 0x7F0000+memory.Addr(tid*64))
		rt.Lock(lock)
		e.Store(0x200000, e.Load(0x200000)+1)
		rt.Unlock(lock)
	})
	if _, err := m.Run(1_000_000); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("counter:", m.Store.Load(0x200000))
	// Output: counter: 4
}
