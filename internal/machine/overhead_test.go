package machine_test

// Satellite of the fault-injection issue: the disabled hooks must be
// invisible. Two claims, one test each:
//
//  1. Attaching the safety-invariant checker never changes simulated timing
//     (it is pure Go-side bookkeeping) — even with faults firing.
//  2. The nil-hook fast path adds no work to the unfaulted pipeline beyond a
//     pointer comparison per site — benchmarked below; the figure-pipeline
//     goldens (internal/harness/golden_test.go) pin byte identity separately.

import (
	"testing"

	"misar/internal/fault"
	"misar/internal/machine"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

func runApp(tb testing.TB, name string, mutate func(*machine.Config)) uint64 {
	app, ok := workload.ByName(name)
	if !ok {
		tb.Fatalf("unknown app %q", name)
	}
	cfg := machine.MSAOMU(8, 2)
	if mutate != nil {
		mutate(&cfg)
	}
	_, end, err := workload.Run(app, cfg, syncrt.HWLib())
	if err != nil {
		tb.Fatalf("%s on %s: %v", name, cfg.Name, err)
	}
	return uint64(end)
}

// TestCheckerTimingInvisible runs a synchronization-heavy app with the
// invariant checker off and on and demands cycle-identical completion —
// stronger than the issue's 5% bound: the checker cannot move time at all.
func TestCheckerTimingInvisible(t *testing.T) {
	for _, name := range []string{"radiosity", "raytrace"} {
		bare := runApp(t, name, nil)
		checked := runApp(t, name, func(c *machine.Config) { c.Invariants = true })
		if bare != checked {
			t.Errorf("%s: checker changed timing: %d cycles bare, %d checked", name, bare, checked)
		}
	}
}

// TestCheckerTimingInvisibleUnderFaults repeats the comparison with a live
// fault plan: injected delays DO move time (identically, since the injector's
// PRNG stream is independent of the checker), and toggling the checker on top
// must still not.
func TestCheckerTimingInvisibleUnderFaults(t *testing.T) {
	plan := fault.DefaultPlan(99)
	faulted := runApp(t, "radiosity", func(c *machine.Config) { c.Fault = plan })
	both := runApp(t, "radiosity", func(c *machine.Config) { c.Fault = plan; c.Invariants = true })
	if faulted != both {
		t.Errorf("checker changed faulted timing: %d vs %d cycles", faulted, both)
	}
}

// BenchmarkUnfaultedPipeline measures wall-clock simulation cost of the
// unfaulted machine with hooks absent (the production configuration) versus
// with the checker attached. Compare with `benchstat`; the nil-hook delta vs
// the pre-fault-subsystem baseline is the issue's <=5% budget.
func BenchmarkUnfaultedPipeline(b *testing.B) {
	app, _ := workload.ByName("radiosity")
	for _, bc := range []struct {
		name   string
		mutate func(*machine.Config)
	}{
		{"nil-hooks", nil},
		{"checker", func(c *machine.Config) { c.Invariants = true }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := machine.MSAOMU(8, 2)
				if bc.mutate != nil {
					bc.mutate(&cfg)
				}
				if _, _, err := workload.Run(app, cfg, syncrt.HWLib()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
