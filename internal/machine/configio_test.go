package machine

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"misar/internal/cpu"
	"misar/internal/isa"
	"misar/internal/memory"
)

type memAddr = memory.Addr

func TestConfigRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	want := WithBloomOMU(MSAOMU(16, 4), 2)
	want.L1.Sets = 32
	if err := SaveConfig(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, want)
	}
	// A loaded config must build and run.
	m := New(got)
	if m.Cfg.MSA.OMUBloom != true {
		t.Fatal("bloom flag lost")
	}
}

func TestLoadConfigErrors(t *testing.T) {
	if _, err := LoadConfig("/nonexistent/cfg.json"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	cfg := Default(16)
	cfg.Tiles = 0
	if err := SaveConfig(invalid, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(invalid); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(*Config) {}, true},
		{"zero tiles", func(c *Config) { c.Tiles = 0 }, false},
		{"too many tiles", func(c *Config) { c.Tiles = 128 }, false},
		{"mesh too small", func(c *Config) { c.NoC.Width = 1; c.NoC.Height = 1 }, false},
		{"bad L1", func(c *Config) { c.L1.Ways = 0 }, false},
		{"zero entries", func(c *Config) { c.MSA.Entries = 0 }, false},
		{"inf entries", func(c *Config) { c.MSA.Entries = -1 }, true},
		{"no counters", func(c *Config) { c.MSA.OMUCounters = 0 }, false},
	}
	for _, tc := range cases {
		cfg := Default(16)
		tc.mut(&cfg)
		err := Validate(cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestLatencyAggregation(t *testing.T) {
	m := New(MSAOMU(4, 2))
	m.SpawnAll(4, func(tid int, e cpu.Env) {
		addr := isaAddr(tid)
		e.Sync(isa.OpLock, addr, 0, 0)
		e.Compute(20)
		e.Sync(isa.OpUnlock, addr, 0, 0)
	})
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	lock := m.Latency(cpu.LatLock)
	unlock := m.Latency(cpu.LatUnlock)
	if lock.Count() != 4 || unlock.Count() != 4 {
		t.Fatalf("lock n=%d unlock n=%d, want 4 each", lock.Count(), unlock.Count())
	}
	if lock.Mean() <= 0 || lock.Percentile(95) < uint64(lock.Mean()) {
		t.Fatalf("histogram inconsistent: mean=%f p95=%d", lock.Mean(), lock.Percentile(95))
	}
}

// isaAddr gives each thread a distinct line-aligned sync address.
func isaAddr(tid int) memAddr { return memAddr(0x10000 + tid*64) }
