package service

import (
	"net/http"
	"sync"
	"time"
)

// timeseriesCapacity bounds the live-telemetry ring: at the default 5s
// cadence, 512 samples cover the last ~42 minutes of server history.
const timeseriesCapacity = 512

// Sample is one point of the server's live telemetry, taken every
// Options.SampleInterval and served by GET /v1/timeseries.
type Sample struct {
	// UnixMS is the sample's wall-clock timestamp.
	UnixMS int64 `json:"unix_ms"`
	// QueueDepth is the number of admitted-but-unfinished jobs.
	QueueDepth int `json:"queue_depth"`
	// InFlight is the number of unique simulations currently executing
	// (deduplicated jobs share one).
	InFlight int `json:"in_flight"`
	// Accepted is the cumulative count of admitted jobs.
	Accepted uint64 `json:"jobs_accepted_total"`
	// Done is the cumulative count of completed simulations.
	Done int `json:"sims_done_total"`
	// HitRatio is the fraction of submissions satisfied without executing
	// (memo + store hits); 0 until the first submission.
	HitRatio float64 `json:"hit_ratio"`
	// StoreHits/StoreMisses are cumulative persistent-store counters; zero
	// when the server runs without a store.
	StoreHits   uint64 `json:"store_hits_total"`
	StoreMisses uint64 `json:"store_misses_total"`
}

// timeseries is a fixed-size ring of telemetry samples. Unlike the flight
// recorder it is multi-reader (HTTP handlers) + single-writer (sampleLoop),
// so it takes a plain mutex — it is nowhere near a hot path.
type timeseries struct {
	mu    sync.Mutex
	ring  []Sample
	next  int
	total uint64
}

func newTimeseries(capacity int) *timeseries {
	if capacity < 1 {
		capacity = timeseriesCapacity
	}
	return &timeseries{ring: make([]Sample, capacity)}
}

func (t *timeseries) record(s Sample) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
}

// samples returns the retained window, oldest first.
func (t *timeseries) samples() []Sample {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := int(t.total)
	if uint64(len(t.ring)) < t.total {
		n = len(t.ring)
	}
	out := make([]Sample, 0, n)
	start := (t.next - n + len(t.ring)) % len(t.ring)
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// sample takes one telemetry reading of the server's current state.
func (s *Server) sample() Sample {
	s.mu.Lock()
	depth := s.admitted
	accepted := s.accepted
	s.mu.Unlock()
	rs := s.runner.Stats()
	p := Sample{
		UnixMS:     time.Now().UnixMilli(),
		QueueDepth: depth,
		InFlight:   int(rs.Unique - rs.Done),
		Accepted:   accepted,
		Done:       rs.Done,
	}
	if rs.Submitted > 0 {
		p.HitRatio = float64(rs.Submitted-rs.Executed) / float64(rs.Submitted)
	}
	if s.store != nil {
		ss := s.store.Stats()
		p.StoreHits, p.StoreMisses = ss.Hits, ss.Misses
	}
	return p
}

// sampleLoop records one telemetry sample per Options.SampleInterval until
// the server is closed. Started by New; there is exactly one per Server.
func (s *Server) sampleLoop() {
	ticker := time.NewTicker(s.opt.SampleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.ts.record(s.sample())
		case <-s.baseCtx.Done():
			return
		}
	}
}

// timeseriesResponse is the body of GET /v1/timeseries.
type timeseriesResponse struct {
	// IntervalMS is the sampling cadence.
	IntervalMS int64 `json:"interval_ms"`
	// Current is a fresh sample taken at request time, so a scrape always
	// sees live state even before the first tick.
	Current Sample `json:"current"`
	// Samples is the retained history, oldest first.
	Samples []Sample `json:"samples"`
}

func (s *Server) handleTimeseries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, timeseriesResponse{
		IntervalMS: s.opt.SampleInterval.Milliseconds(),
		Current:    s.sample(),
		Samples:    s.ts.samples(),
	})
}
