package service

import (
	"testing"
	"time"
)

// White-box tests for the derived Retry-After estimate and the batch
// admission limit — the queue math, separated from HTTP plumbing.

func newBareServer(t *testing.T, queue int) *Server {
	t.Helper()
	s, err := New(Options{Workers: 1, QueueLimit: queue})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestRetryAfterDerivedFromDrainRate(t *testing.T) {
	s := newBareServer(t, 64)

	// No history, empty queue: the floor.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("cold estimate = %d, want 1", got)
	}

	// 5 completions over the last second, 10 jobs queued: ~2s to drain.
	now := time.Now()
	s.mu.Lock()
	s.admitted = 10
	s.drains = nil
	for i := 0; i < 5; i++ {
		s.drains = append(s.drains, now.Add(-time.Second+time.Duration(i)*200*time.Millisecond))
	}
	s.mu.Unlock()
	if got := s.retryAfterSeconds(); got < 2 || got > 3 {
		t.Errorf("estimate = %ds, want ~2 (10 queued / 5 per sec)", got)
	}

	// A glacial drain rate clamps at 30s, not an unbounded promise.
	s.mu.Lock()
	s.admitted = 64
	s.drains = []time.Time{now.Add(-time.Minute)}
	s.mu.Unlock()
	if got := s.retryAfterSeconds(); got != 30 {
		t.Errorf("clamped estimate = %d, want 30", got)
	}

	// Full history but an empty queue: nothing to wait for, floor again.
	s.mu.Lock()
	s.admitted = 0
	s.mu.Unlock()
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("empty-queue estimate = %d, want 1", got)
	}
}

func TestBatchLimitIsHalfQueue(t *testing.T) {
	if got := newBareServer(t, 64).batchLimit(); got != 32 {
		t.Errorf("batchLimit(64) = %d, want 32", got)
	}
	if got := newBareServer(t, 1).batchLimit(); got != 1 {
		t.Errorf("batchLimit(1) = %d, want 1 (never zero)", got)
	}
}
