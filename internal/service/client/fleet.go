package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"misar/internal/service"
)

// RetryPolicy shapes the Fleet client's resilience behavior. The zero value
// gets sensible defaults from NewFleet.
type RetryPolicy struct {
	// MaxAttempts is the total submission attempts across replicas before
	// giving up; < 1 means len(addrs)+1 (every node once, plus one retry
	// back on the first after backoff).
	MaxAttempts int
	// BaseBackoff is the delay before the second attempt; successive
	// retries double it (with jitter) up to MaxBackoff. <= 0 means 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff schedule. <= 0 means 5s.
	MaxBackoff time.Duration
	// AttemptTimeout bounds the silence tolerated within one attempt: if no
	// NDJSON event (heartbeats included) arrives for this long, the attempt
	// is abandoned and the next replica tried. It is an activity watchdog,
	// not a total-duration cap — a healthy server heartbeats every few
	// hundred milliseconds no matter how long the simulation runs. <= 0
	// means 30s.
	AttemptTimeout time.Duration
	// Hedge, when > 0, races a second attempt on the next replica if the
	// first has not finished within this delay. Meant for warm lookups
	// (expected store hits, where the straggler is tail latency, not a
	// simulation): a cold hedge can run the same simulation twice, bounded
	// by fleet-wide single-flight on the owner. onEvent may observe
	// interleaved events from both attempts; the returned terminal event is
	// the winner's.
	Hedge time.Duration
}

func (p RetryPolicy) withDefaults(nodes int) RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = nodes + 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = 30 * time.Second
	}
	return p
}

// Fleet is a resilient client over a set of misar-served replicas: it
// spreads submissions round-robin, bounds each attempt with an activity
// watchdog, fails over to the next replica on connection errors, truncated
// streams, 429s, and 5xx responses, backs off exponentially with jitter
// (honoring the server's Retry-After), and optionally hedges warm lookups.
// Deterministic failures — 4xx rejections and jobs that ran and failed —
// are returned immediately; retrying them elsewhere would reproduce them.
//
// Trace identity survives failover: every attempt carries the submission
// context's trace ID (obs.WithTrace), so the attempt that finally succeeds
// shares a timeline with the ones that died, and the terminal event's spans
// all bear one ID.
type Fleet struct {
	addrs   []string
	clients []*Client
	policy  RetryPolicy
	next    atomic.Uint64 // round-robin start cursor

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter
}

// NewFleet builds a resilient client over addrs (each "host:port" or a full
// http:// URL). At least one address is required.
func NewFleet(addrs []string, policy RetryPolicy) *Fleet {
	if len(addrs) == 0 {
		panic("client: NewFleet needs at least one address")
	}
	f := &Fleet{
		addrs:  addrs,
		policy: policy.withDefaults(len(addrs)),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, a := range addrs {
		f.clients = append(f.clients, New(a))
	}
	return f
}

// Addrs returns the replica addresses in rotation order.
func (f *Fleet) Addrs() []string { return f.addrs }

// errAttemptTimeout marks an attempt abandoned by the activity watchdog —
// retryable, unlike a parent-context cancellation.
var errAttemptTimeout = errors.New("no stream activity within the attempt timeout")

// Retryable reports whether err is worth another attempt on a different
// replica: transport failures, watchdog timeouts, truncated streams, 429
// backpressure, and 5xx are; deterministic rejections (other 4xx), jobs
// that ran and failed (JobError), and parent-context cancellation are not.
func Retryable(err error) bool {
	var je *JobError
	if errors.As(err, &je) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusTooManyRequests || ae.Status >= 500
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// Submit posts the job with retry, failover, and (when the policy hedges)
// hedged attempts, following the winning NDJSON stream to its terminal
// event. onEvent observes every event of every attempt.
func (f *Fleet) Submit(ctx context.Context, req service.JobRequest, onEvent func(service.JobEvent)) (*service.JobEvent, error) {
	n := len(f.clients)
	start := int(f.next.Add(1)-1) % n
	var lastErr error
	for attempt := 0; attempt < f.policy.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx := (start + attempt) % n
		var ev *service.JobEvent
		var err error
		if f.policy.Hedge > 0 && n > 1 {
			ev, err = f.hedged(ctx, idx, req, onEvent)
		} else {
			ev, err = f.attempt(ctx, idx, req, onEvent)
		}
		if err == nil {
			return ev, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !Retryable(err) {
			return nil, err
		}
		lastErr = err
		delay := f.backoff(attempt)
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfterDuration > delay {
			delay = ae.RetryAfterDuration
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
	}
	return nil, fmt.Errorf("fleet: gave up after %d attempts: %w", f.policy.MaxAttempts, lastErr)
}

// attempt is one bounded submission to one replica: an activity watchdog
// cancels the attempt if the stream goes silent for AttemptTimeout (a
// SIGKILLed or wedged node stops heartbeating long before TCP gives up).
func (f *Fleet) attempt(ctx context.Context, idx int, req service.JobRequest, onEvent func(service.JobEvent)) (*service.JobEvent, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	var timedOut atomic.Bool
	watchdog := time.AfterFunc(f.policy.AttemptTimeout, func() {
		timedOut.Store(true)
		cancel()
	})
	defer watchdog.Stop()
	observe := func(ev service.JobEvent) {
		watchdog.Reset(f.policy.AttemptTimeout)
		if onEvent != nil {
			onEvent(ev)
		}
	}
	ev, err := f.clients[idx].Submit(actx, req, observe)
	if err != nil && timedOut.Load() && ctx.Err() == nil {
		return nil, fmt.Errorf("fleet: %s: %w", f.addrs[idx], errAttemptTimeout)
	}
	return ev, err
}

// hedged races an attempt on idx against one on the next replica, launched
// after the hedge delay (or immediately, if the first fails fast). First
// success wins and cancels the other; if both fail, the first failure is
// reported.
func (f *Fleet) hedged(ctx context.Context, idx int, req service.JobRequest, onEvent func(service.JobEvent)) (*service.JobEvent, error) {
	type outcome struct {
		ev  *service.JobEvent
		err error
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 2)
	launch := func(i int) {
		go func() {
			ev, err := f.attempt(hctx, i, req, onEvent)
			ch <- outcome{ev, err}
		}()
	}
	launch(idx)
	launched, failed := 1, 0
	var firstErr error
	hedgeTimer := time.NewTimer(f.policy.Hedge)
	defer hedgeTimer.Stop()
	for {
		select {
		case o := <-ch:
			if o.err == nil {
				return o.ev, nil
			}
			failed++
			if firstErr == nil {
				firstErr = o.err
			}
			if launched < 2 {
				launch((idx + 1) % len(f.clients))
				launched++
			} else if failed == launched {
				return nil, firstErr
			}
		case <-hedgeTimer.C:
			if launched < 2 {
				launch((idx + 1) % len(f.clients))
				launched++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// backoff returns the jittered exponential delay before retry `attempt`:
// uniform in [d/2, d] where d doubles from BaseBackoff up to MaxBackoff, so
// a refused thundering herd decorrelates instead of re-arriving in phase.
func (f *Fleet) backoff(attempt int) time.Duration {
	d := f.policy.BaseBackoff
	for i := 0; i < attempt && d < f.policy.MaxBackoff; i++ {
		d *= 2
	}
	if d > f.policy.MaxBackoff {
		d = f.policy.MaxBackoff
	}
	f.rngMu.Lock()
	j := time.Duration(f.rng.Int63n(int64(d/2) + 1))
	f.rngMu.Unlock()
	return d/2 + j
}

// Health returns the first replica health report it can fetch, trying every
// node in rotation order.
func (f *Fleet) Health(ctx context.Context) (*service.Health, error) {
	var lastErr error
	for _, c := range f.clients {
		h, err := c.Health(ctx)
		if err == nil {
			return h, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fleet: no replica answered /healthz: %w", lastErr)
}
