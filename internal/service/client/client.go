// Package client is a small typed client for the misar-served job API.
// It submits jobs, follows their NDJSON progress streams, and decodes the
// final result — the plumbing behind `misar-sim -remote`.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"misar/internal/obs"
	"misar/internal/service"
)

// Client talks to one misar-served instance.
type Client struct {
	base string
	http *http.Client
}

// New builds a client for addr ("host:port" or a full http:// URL).
func New(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base: strings.TrimRight(addr, "/"),
		// No overall timeout: job streams are long-lived by design; use the
		// submission context to bound a call.
		http: &http.Client{},
	}
}

// decodeError turns a non-2xx response into an error, preserving the
// server's message and the status code.
func decodeError(resp *http.Response) error {
	ra := resp.Header.Get("Retry-After")
	var ae struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		return &APIError{Status: resp.StatusCode, Message: ae.Error, RetryAfter: ra, RetryAfterDuration: parseRetryAfter(ra)}
	}
	return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body)), RetryAfter: ra, RetryAfterDuration: parseRetryAfter(ra)}
}

// parseRetryAfter decodes a Retry-After header: RFC 9110 allows
// delta-seconds or an HTTP-date. Unparseable or absent values yield 0 —
// the retry loop falls back to its own backoff.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// APIError is a non-2xx response from the server.
type APIError struct {
	Status     int
	Message    string
	RetryAfter string // the raw Retry-After header, when present (429); kept for compatibility
	// RetryAfterDuration is the parsed form of RetryAfter (delta-seconds or
	// HTTP-date); 0 when absent or unparseable. The Fleet retry loop waits
	// at least this long before the next attempt.
	RetryAfterDuration time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d %s", e.Status, e.Message)
}

// JobError is a job that ran and failed ("error" terminal event). The
// simulator is deterministic, so retrying a JobError on another node would
// reproduce the same failure — the Fleet retry loop treats it as permanent.
type JobError struct {
	Job     string
	Message string
}

func (e *JobError) Error() string {
	return fmt.Sprintf("job %s failed: %s", e.Job, e.Message)
}

// Submit posts one job and follows its NDJSON stream until the terminal
// event. onEvent (may be nil) observes every event, heartbeats included.
// The returned event is the terminal "done"; an "error" event becomes a Go
// error.
//
// Tracing: when ctx carries a trace ID (obs.WithTrace) it is sent in the
// X-Misar-Trace header and the server adopts it, so client-side spans
// (recorded when ctx also carries an obs.Recorder) and the server's spans
// share one timeline. Without one, the server mints an ID; either way the
// effective ID is on the terminal event's Trace field.
func (c *Client) Submit(ctx context.Context, req service.JobRequest, onEvent func(service.JobEvent)) (*service.JobEvent, error) {
	sp := obs.StartSpan(ctx, "client", "client.submit")
	sp.SetArg("app", req.App)
	sp.SetArg("config", req.Config)
	defer sp.End()
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := obs.TraceIDOf(ctx); id != "" {
		hreq.Header.Set(service.TraceHeader, id)
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20) // metered 64c reports are large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev service.JobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("client: bad event line: %w", err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
		switch ev.Event {
		case "done":
			return &ev, nil
		case "error":
			return nil, &JobError{Job: ev.Job, Message: ev.Error}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: stream ended early: %w", err)
	}
	return nil, fmt.Errorf("client: stream ended without a terminal event")
}

// Status polls one job.
func (c *Client) Status(ctx context.Context, id string) (*service.JobStatus, error) {
	var st service.JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel requests cancellation of one job and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (*service.JobStatus, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*service.Health, error) {
	var h service.Health
	if err := c.getJSON(ctx, "/healthz", &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// WaitHealthy polls /healthz until the server answers or ctx expires —
// startup convenience for scripts and tests.
func (c *Client) WaitHealthy(ctx context.Context) error {
	for {
		if _, err := c.Health(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("client: server never became healthy: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
