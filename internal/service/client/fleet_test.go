package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"misar/internal/service"
)

// ndjsonStub serves POST /v1/jobs with the given handler and counts hits.
func ndjsonStub(t *testing.T, handle func(w http.ResponseWriter, r *http.Request)) (*httptest.Server, *atomic.Uint64) {
	t.Helper()
	var hits atomic.Uint64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs" {
			http.NotFound(w, r)
			return
		}
		hits.Add(1)
		handle(w, r)
	}))
	t.Cleanup(hs.Close)
	return hs, &hits
}

// healthyStream emits accepted → done, the minimal successful job stream.
func healthyStream(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	fmt.Fprintln(w, `{"event":"accepted","job":"j-1"}`)
	fmt.Fprintln(w, `{"event":"done","job":"j-1","result":{"schema":1,"kind":"micro","label":"stub"}}`)
}

func fastPolicy() RetryPolicy {
	return RetryPolicy{
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		AttemptTimeout: time.Second,
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"transport error", errors.New("dial tcp: connection refused"), true},
		{"429 backpressure", &APIError{Status: http.StatusTooManyRequests}, true},
		{"500", &APIError{Status: http.StatusInternalServerError}, true},
		{"503 draining", &APIError{Status: http.StatusServiceUnavailable}, true},
		{"400 bad request", &APIError{Status: http.StatusBadRequest}, false},
		{"404", &APIError{Status: http.StatusNotFound}, false},
		{"job ran and failed", &JobError{Job: "j-1", Message: "invariant violated"}, false},
		{"parent cancelled", context.Canceled, false},
		{"parent deadline", context.DeadlineExceeded, false},
		{"wrapped job error", fmt.Errorf("outer: %w", &JobError{Job: "j", Message: "m"}), false},
		{"watchdog timeout", fmt.Errorf("fleet: x: %w", errAttemptTimeout), true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("%s: Retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("7"); d != 7*time.Second {
		t.Errorf("delta-seconds: %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("absent: %v", d)
	}
	if d := parseRetryAfter("not a number"); d != 0 {
		t.Errorf("garbage: %v", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Errorf("negative: %v", d)
	}
	date := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(date); d < 8*time.Second || d > 10*time.Second {
		t.Errorf("http-date: %v", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Errorf("past http-date: %v", d)
	}
}

// A dead first replica must cost one failed dial, not the job.
func TestFleetFailsOverOnConnectionError(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	alive, hits := ndjsonStub(t, healthyStream)

	f := NewFleet([]string{deadURL, alive.URL}, fastPolicy())
	// Force the rotation to start on the dead node: attempt both orders.
	var ok bool
	for i := 0; i < 2 && !ok; i++ {
		ev, err := f.Submit(context.Background(), service.JobRequest{App: "x"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ok = ev.Event == "done"
	}
	if !ok {
		t.Fatal("no done event")
	}
	if hits.Load() == 0 {
		t.Fatal("healthy replica never reached")
	}
}

// 429s fail over; the Retry-After duration floors the backoff.
func TestFleetRetriesBackpressure(t *testing.T) {
	busy, busyHits := ndjsonStub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"queue full"}`)
	})
	alive, aliveHits := ndjsonStub(t, healthyStream)

	f := NewFleet([]string{busy.URL, alive.URL}, fastPolicy())
	for i := 0; i < 2; i++ { // both rotation starts
		if _, err := f.Submit(context.Background(), service.JobRequest{App: "x"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if busyHits.Load() == 0 || aliveHits.Load() == 0 {
		t.Fatalf("hits: busy %d alive %d", busyHits.Load(), aliveHits.Load())
	}
}

// Deterministic failures must NOT fail over: a bad request is bad
// everywhere, and a job that ran and failed would fail identically on every
// replica (the simulator is deterministic).
func TestFleetDoesNotRetryPermanentErrors(t *testing.T) {
	rejecting, rejHits := ndjsonStub(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `{"error":"unknown app"}`)
	})
	spare, spareHits := ndjsonStub(t, healthyStream)

	f := NewFleet([]string{rejecting.URL, spare.URL}, RetryPolicy{
		MaxAttempts: 4, BaseBackoff: time.Millisecond, AttemptTimeout: time.Second,
	})
	_, err := f.Submit(context.Background(), service.JobRequest{App: "nope"}, nil)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if rejHits.Load() != 1 || spareHits.Load() != 0 {
		t.Errorf("hits: rejecting %d (want 1), spare %d (want 0)", rejHits.Load(), spareHits.Load())
	}

	failing, failHits := ndjsonStub(t, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"event":"accepted","job":"j-9"}`)
		fmt.Fprintln(w, `{"event":"error","job":"j-9","error":"deadlock detected"}`)
	})
	f2 := NewFleet([]string{failing.URL, spare.URL}, RetryPolicy{
		MaxAttempts: 4, BaseBackoff: time.Millisecond, AttemptTimeout: time.Second,
	})
	_, err = f2.Submit(context.Background(), service.JobRequest{App: "x"}, nil)
	var je *JobError
	if !errors.As(err, &je) || je.Message != "deadlock detected" {
		t.Fatalf("err = %v, want JobError", err)
	}
	if failHits.Load() != 1 || spareHits.Load() != 0 {
		t.Errorf("hits: failing %d (want 1), spare %d (want 0)", failHits.Load(), spareHits.Load())
	}
}

// A stream that goes silent (a SIGKILLed node's socket lingers) must be
// abandoned by the activity watchdog and the job finished elsewhere.
func TestFleetWatchdogAbandonsSilentStream(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	silent, silentHits := ndjsonStub(t, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"event":"accepted","job":"j-1"}`)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-hang // no heartbeats, no terminal event
	})
	alive, aliveHits := ndjsonStub(t, healthyStream)

	f := NewFleet([]string{silent.URL, alive.URL}, RetryPolicy{
		MaxAttempts:    3,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		AttemptTimeout: 100 * time.Millisecond,
	})
	start := time.Now()
	for i := 0; i < 2; i++ { // both rotation starts
		if _, err := f.Submit(context.Background(), service.JobRequest{App: "x"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("watchdog took %v, expected ~attempt timeout", elapsed)
	}
	if silentHits.Load() == 0 || aliveHits.Load() == 0 {
		t.Fatalf("hits: silent %d alive %d", silentHits.Load(), aliveHits.Load())
	}
}

// Hedged mode: when the first replica is slow, the hedge fires and the fast
// replica's result wins.
func TestFleetHedgedRead(t *testing.T) {
	slow, _ := ndjsonStub(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
		healthyStream(w, r)
	})
	fast, fastHits := ndjsonStub(t, healthyStream)

	f := NewFleet([]string{slow.URL, fast.URL}, RetryPolicy{
		MaxAttempts:    2,
		BaseBackoff:    time.Millisecond,
		AttemptTimeout: 5 * time.Second,
		Hedge:          20 * time.Millisecond,
	})
	// Pin the rotation so the slow node is tried first.
	f.next.Store(0)
	start := time.Now()
	ev, err := f.Submit(context.Background(), service.JobRequest{App: "x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Event != "done" {
		t.Fatalf("event %q", ev.Event)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedge did not rescue the slow read: %v", elapsed)
	}
	if fastHits.Load() == 0 {
		t.Error("hedge attempt never reached the fast replica")
	}
}

// Parent-context cancellation wins over retries immediately.
func TestFleetStopsOnParentCancel(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	f := NewFleet([]string{deadURL}, RetryPolicy{
		MaxAttempts: 100, BaseBackoff: 50 * time.Millisecond, AttemptTimeout: time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Submit(ctx, service.JobRequest{App: "x"}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}
