package service

import (
	"fmt"

	"misar/internal/fault"
	"misar/internal/harness"
	"misar/internal/store"
	"misar/internal/workload"
)

// RequestFingerprint maps a job request onto the content fingerprint its
// result will be stored under — the fleet's consistent-hash routing key.
// Identity here MUST agree with what the runner actually persists: the
// config mutations mirror buildSubmit exactly, and the key goes through
// harness.StoreKey with the same budget the runner uses (the default
// workload.RunDeadline for apps, the fixed 0 for micros), so a request
// routed by this fingerprint lands on the node whose store holds (or will
// hold) its record. Routing is only an optimization — a stale or mismatched
// fingerprint costs locality, never correctness — but the service test
// suite pins the agreement anyway.
func RequestFingerprint(req *JobRequest) (string, error) {
	cfg, libf, err := harness.Variant(req.Config, req.Tiles)
	if err != nil {
		return "", err
	}
	cfg.Metrics = req.Metrics
	if req.FaultPlan != nil {
		cfg.Fault = *req.FaultPlan
		cfg.Invariants = true
	} else if req.FaultSeed != 0 {
		cfg.Fault = fault.DefaultPlan(req.FaultSeed)
		cfg.Invariants = true
	}
	if req.Invariants {
		cfg.Invariants = true
	}
	switch req.Kind {
	case "", "app":
		if _, ok := workload.ByName(req.App); !ok {
			return "", fmt.Errorf("unknown app %q", req.App)
		}
		return store.Fingerprint(harness.StoreKey("app:"+req.App, cfg, libf(), workload.RunDeadline)), nil
	case "micro":
		if _, ok := harness.MicroOp(req.App); !ok {
			return "", fmt.Errorf("unknown micro op %q", req.App)
		}
		return store.Fingerprint(harness.StoreKey("micro:"+req.App, cfg, libf(), 0)), nil
	default:
		return "", fmt.Errorf("unknown kind %q (want \"app\" or \"micro\")", req.Kind)
	}
}
