package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"misar/internal/service"
)

// TestFingerprintMatchesStoredRecord pins the routing/storage identity
// agreement: the fingerprint RequestFingerprint derives for a request must
// be exactly where the runner persists that request's result. If this
// drifts, fleet routing silently loses locality (every job becomes a cold
// miss on its owner).
func TestFingerprintMatchesStoredRecord(t *testing.T) {
	s, _, c := newServer(t, service.Options{Workers: 2, StoreDir: t.TempDir()})

	cases := []service.JobRequest{
		{App: "streamcluster", Config: "msaomu2", Tiles: 4},
		{Kind: "micro", App: "LockAcquire", Config: "msaomu2", Tiles: 4},
		{App: "streamcluster", Config: "msaomu2", Tiles: 4, Metrics: true},
		{App: "streamcluster", Config: "msaomu2", Tiles: 4, Invariants: true},
	}
	for _, req := range cases {
		fp, err := service.RequestFingerprint(&req)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if _, ok := s.Store().Get(fp); ok {
			t.Fatalf("%+v: record exists before the job ran", req)
		}
		if _, err := c.Submit(context.Background(), req, nil); err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if _, ok := s.Store().Get(fp); !ok {
			t.Errorf("%+v: no record at the routing fingerprint %s after completion", req, fp)
		}
	}

	// Unroutable requests must error, not alias to a valid fingerprint.
	for _, bad := range []service.JobRequest{
		{App: "no-such-app", Config: "msaomu2", Tiles: 4},
		{Kind: "micro", App: "NoSuchOp", Config: "msaomu2", Tiles: 4},
		{Kind: "mystery", App: "streamcluster", Config: "msaomu2", Tiles: 4},
	} {
		if _, err := service.RequestFingerprint(&bad); err == nil {
			t.Errorf("%+v: fingerprinted an unroutable request", bad)
		}
	}
}

// Batch jobs are shed at half queue occupancy while interactive jobs still
// admit — the first rung of the overload ladder.
func TestBatchShedBeforeInteractive(t *testing.T) {
	_, hs, c := newServer(t, service.Options{Workers: 1, QueueLimit: 4})

	// Occupy half the queue (the batch limit) with slow interactive jobs,
	// then a batch job must bounce while an interactive one still admits.
	// Real simulations can drain early on a loaded machine; retry with
	// fresh tile counts until the window is observed.
	tiles := []int{32, 48, 64, 16, 24, 40}
	observed := false
	for attempt := 0; attempt+1 < len(tiles) && !observed; attempt += 2 {
		waitQueueEmpty(t, c)
		id1, code1, _ := asyncSubmit(t, hs.URL, slowJob(tiles[attempt]))
		id2, code2, _ := asyncSubmit(t, hs.URL, slowJob(tiles[attempt+1]))
		if code1 != http.StatusAccepted || code2 != http.StatusAccepted {
			t.Fatalf("setup submissions: %d, %d", code1, code2)
		}

		batch := slowJob(56)
		batch.Priority = service.PriorityBatch
		body, _ := json.Marshal(batch)
		resp, err := http.Post(hs.URL+"/v1/jobs?wait=0", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		var apiErr struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&apiErr)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			observed = true
			if !strings.Contains(apiErr.Error, "batch") {
				t.Errorf("shed message %q does not name the batch limit", apiErr.Error)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("batch shed without Retry-After")
			}
			// The same occupancy still admits interactive work.
			id3, code3, _ := asyncSubmit(t, hs.URL, slowJob(8))
			if code3 != http.StatusAccepted {
				t.Errorf("interactive submission at batch-shed occupancy got %d, want 202", code3)
			} else {
				waitDone(t, c, id3)
			}
		case http.StatusAccepted:
			t.Logf("attempt %d: queue drained early, retrying", attempt/2)
			json.NewDecoder(resp.Body).Decode(&struct{}{})
		default:
			t.Fatalf("batch submission got %d, want 429 or 202", resp.StatusCode)
		}
		waitDone(t, c, id1)
		waitDone(t, c, id2)
	}
	if !observed {
		t.Fatal("never observed a batch shed at half occupancy")
	}
}

func TestUnknownPriorityRejected(t *testing.T) {
	_, hs, _ := newServer(t, service.Options{Workers: 1})
	req := quickJob()
	req.Priority = "urgent"
	body, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown priority got %d, want 400", resp.StatusCode)
	}
}

// /healthz must publish the backpressure hints a load balancer steers by.
func TestHealthExposesBackpressureHints(t *testing.T) {
	_, _, c := newServer(t, service.Options{Workers: 1, QueueLimit: 8})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.BatchLimit != 4 {
		t.Errorf("batch_limit = %d, want 4 (half of 8)", h.BatchLimit)
	}
	if h.RetryAfterS < 1 || h.RetryAfterS > 30 {
		t.Errorf("retry_after_s = %d, want within [1, 30]", h.RetryAfterS)
	}
}
