// Package service is the serving layer: a long-running HTTP/JSON job server
// that turns the simulator into simulation-as-a-service. Jobs are admitted
// through a bounded queue with backpressure (429 + Retry-After when full),
// deduplicated in flight by the harness.Runner memo cache (single-flight),
// satisfied from the content-addressed persistent store when warm, and
// streamed back to the client as NDJSON progress events. The server drains
// gracefully on request: admission stops (503) while accepted jobs run to
// completion, and every result is durable in the store before Drain
// returns.
//
// Endpoints:
//
//	POST   /v1/jobs        submit; NDJSON stream (accepted/running/done/error)
//	GET    /v1/jobs/{id}   poll one job
//	DELETE /v1/jobs/{id}   cancel one job
//	GET    /healthz        liveness + queue occupancy
//	GET    /metrics        text exposition (internal/metrics registry)
//
// A job survives its client: the simulation runs under the server's
// lifecycle context, not the request context, so a disconnected client
// costs nothing but the progress stream — the result still lands in the
// store and any identical future request is a hit.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"

	"misar/internal/fault"
	"misar/internal/harness"
	"misar/internal/machine"
	"misar/internal/metrics"
	"misar/internal/obs"
	"misar/internal/store"
	"misar/internal/trace"
	"misar/internal/workload"
)

// Options configure a Server.
type Options struct {
	// Workers is the simulation worker-pool size; < 1 means GOMAXPROCS.
	Workers int
	// QueueLimit bounds admitted-but-unfinished jobs; < 1 means 64.
	// Admission beyond the limit is refused with 429 + Retry-After.
	QueueLimit int
	// TenantQuota bounds the unfinished jobs any single tenant (the
	// TenantHeader value) may hold; over-quota submissions are refused
	// with 429 + Retry-After while other tenants still admit normally.
	// Anonymous requests (no header) are exempt — they contend only for
	// the shared queue. < 1 means a quarter of QueueLimit, at least 1.
	TenantQuota int
	// StoreDir roots the persistent result store; "" disables persistence
	// (memo cache only).
	StoreDir string
	// Heartbeat is the NDJSON "running" event cadence; <= 0 means 500ms.
	Heartbeat time.Duration
	// DefaultTimeout caps each job's wall-clock execution when the request
	// does not set its own timeout_ms; 0 means unbounded.
	DefaultTimeout time.Duration
	// Logger receives structured request and job-lifecycle logs, each line
	// tagged with the job's trace ID; nil disables logging.
	Logger *slog.Logger
	// SampleInterval is the live-telemetry sampling cadence (queue depth,
	// in-flight jobs, store hit ratio into the /v1/timeseries ring);
	// <= 0 means 5s.
	SampleInterval time.Duration
	// StreamWriteTimeout bounds each write on a job's NDJSON stream. A
	// consumer that cannot drain a write within this budget is disconnected
	// (the job itself is unaffected), so one stalled client can never pin a
	// handler goroutine forever. <= 0 means 30s.
	StreamWriteTimeout time.Duration
	// WrapStore, when set, wraps the opened persistent store before it is
	// attached to the runner. The fleet layer uses it to interpose peer
	// fetch and replication (internal/fleet.PeerStore) under the runner's
	// store lookups without the service knowing about membership.
	WrapStore func(*store.Store) harness.ResultStore
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueLimit < 1 {
		o.QueueLimit = 64
	}
	if o.TenantQuota < 1 {
		o.TenantQuota = o.QueueLimit / 4
		if o.TenantQuota < 1 {
			o.TenantQuota = 1
		}
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
	if o.SampleInterval <= 0 {
		o.SampleInterval = 5 * time.Second
	}
	if o.StreamWriteTimeout <= 0 {
		o.StreamWriteTimeout = 30 * time.Second
	}
	return o
}

// Server is one serving instance. Create with New, expose via Handler,
// shut down with Drain (graceful) and/or Close (hard).
type Server struct {
	opt    Options
	runner *harness.Runner
	store  *store.Store
	start  time.Time
	log    *slog.Logger  // nil disables logging
	spans  *obs.Recorder // server-side wall-clock span ring
	ts     *timeseries   // live telemetry sample ring

	baseCtx context.Context // parent of every job; cancelled by Close
	stop    context.CancelFunc

	// met guards the serving-side metrics registry: the sim-side
	// instruments are single-writer by design, so concurrent HTTP handlers
	// must serialize around one registry.
	met sync.Mutex
	reg *metrics.Registry
	mux *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // finished job IDs in completion order, for pruning
	nextID   uint64
	admitted int            // accepted, not yet finished
	tenants  map[string]int // unfinished jobs per tenant (TenantHeader)
	accepted uint64
	draining bool
	drains   []time.Time    // completion times of the last reaps, for Retry-After
	wg       sync.WaitGroup // one per admitted job
}

// drainWindow bounds the completion-time history behind the Retry-After
// estimate: enough reaps to smooth burstiness, few enough that the rate
// tracks the last seconds of behavior, not ancient history.
const drainWindow = 32

// keepFinished bounds how many completed job records stay queryable; older
// ones are pruned so a long-running server's job table cannot grow without
// bound (results remain in the persistent store regardless).
const keepFinished = 1024

// Job tracks one admitted simulation.
type Job struct {
	ID    string
	Label string
	Trace string // end-to-end trace ID (client-minted or server-minted)

	cancel context.CancelFunc
	run    *harness.Run
	start  time.Time
	tenant string        // TenantHeader value at admission; "" = anonymous
	done   chan struct{} // closed after the fields below are final

	// Written by reap before close(done); read only after <-done.
	result    *harness.Result
	errMsg    string
	fromStore bool
	elapsed   time.Duration
	flight    obs.FlightDump // the simulation's flight-recorder tail
}

// New builds a Server (opening the store when configured) but does not
// listen; callers mount Handler on an http.Server of their choosing.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	s := &Server{
		opt:     opt,
		start:   time.Now(),
		log:     opt.Logger,
		reg:     metrics.NewRegistry(),
		spans:   obs.NewRecorder(0),
		ts:      newTimeseries(timeseriesCapacity),
		jobs:    make(map[string]*Job),
		tenants: make(map[string]int),
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	s.runner = harness.NewRunner(opt.Workers)
	if opt.StoreDir != "" {
		st, err := store.Open(opt.StoreDir)
		if err != nil {
			return nil, err
		}
		s.store = st
		if opt.Logger != nil {
			st.SetLogger(opt.Logger)
		}
		var rs harness.ResultStore = st
		if opt.WrapStore != nil {
			rs = opt.WrapStore(st)
		}
		s.runner.SetStore(rs)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.Handle("POST /v1/jobs", s.instrument("jobs_submit", s.handleSubmit))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("jobs_get", s.handleJobGet))
	mux.Handle("DELETE /v1/jobs/{id}", s.instrument("jobs_cancel", s.handleJobCancel))
	mux.Handle("GET /v1/jobs/{id}/flight", s.instrument("jobs_flight", s.handleJobFlight))
	mux.Handle("GET /v1/jobs/{id}/trace", s.instrument("jobs_trace", s.handleJobTrace))
	mux.Handle("GET /v1/timeseries", s.instrument("timeseries", s.handleTimeseries))
	// Profiling and runtime tracing, mounted explicitly (no blanket
	// DefaultServeMux import): /debug/pprof/profile?seconds=N captures a CPU
	// profile of a live server, /debug/pprof/trace?seconds=N a runtime
	// execution trace (loadable with `go tool trace`).
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	go s.sampleLoop()
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// RunnerStats exposes the underlying runner's counters (tests, ops).
func (s *Server) RunnerStats() harness.RunnerStats { return s.runner.Stats() }

// Store exposes the persistent store handle (nil when persistence is off).
// The fleet layer serves GET/PUT /v1/store/{fp} straight off it.
func (s *Server) Store() *store.Store { return s.store }

// Recorder exposes the server-side span recorder so the fleet layer can
// record routing hops (fleet/route.forward) into the same timeline the job
// spans land in.
func (s *Server) Recorder() *obs.Recorder { return s.spans }

// StoreStats exposes the persistent store's counters; zero when no store.
func (s *Server) StoreStats() store.Stats {
	if s.store == nil {
		return store.Stats{}
	}
	return s.store.Stats()
}

// Drain stops admission (new submissions get 503) and waits until every
// already-admitted job has finished or ctx expires. Results are fsync'd
// into the store as each job completes, so a drained server owes nothing.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted with jobs in flight: %w", ctx.Err())
	}
}

// Close hard-cancels every in-flight job (their simulations stop at the
// next cancellation poll) and stops admission. Use after a failed Drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stop()
}

// batchLimit is the queue occupancy beyond which batch-priority jobs are
// refused: half the queue (at least one slot), reserving the rest for
// interactive work. This is the first rung of the overload ladder — batch
// degrades to fast 429s while interactive admission is still healthy.
func (s *Server) batchLimit() int {
	l := s.opt.QueueLimit / 2
	if l < 1 {
		l = 1
	}
	return l
}

// retryAfterSeconds estimates how long a refused client should wait for the
// queue to drain enough to admit it: current depth divided by the recent
// drain rate (reaps in the window spanned by the last drainWindow
// completions, measured up to now so a stalled server's estimate grows),
// clamped to [1, 30] seconds. Before any job has drained the floor applies —
// there is no evidence the server is slow, only that it is momentarily full.
func (s *Server) retryAfterSeconds() int {
	s.mu.Lock()
	depth := s.admitted
	var oldest time.Time
	n := len(s.drains)
	if n > 0 {
		oldest = s.drains[0]
	}
	s.mu.Unlock()
	if n == 0 || depth == 0 {
		return 1
	}
	window := time.Since(oldest)
	if window <= 0 {
		return 1
	}
	rate := float64(n) / window.Seconds() // completions per second
	secs := int(float64(depth)/rate + 0.5)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// inc bumps a serving-side counter under the metrics lock.
func (s *Server) inc(name string) {
	s.met.Lock()
	s.reg.Counter(name).Inc()
	s.met.Unlock()
}

// statusWriter captures the response status for request logging while
// passing Flush and (via Unwrap, for http.ResponseController) write
// deadlines through to the underlying writer.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with request counting, a latency histogram
// (microseconds) keyed per endpoint, and structured request logging tagged
// with the request's trace ID.
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		elapsed := time.Since(t0)
		s.met.Lock()
		s.reg.Counter("http.requests." + name).Inc()
		s.reg.Histogram("http.latency_us." + name).Observe(uint64(elapsed.Microseconds()))
		s.met.Unlock()
		if s.log != nil {
			attrs := []any{
				"method", r.Method, "path", r.URL.Path,
				"status", sw.status, "dur_ms", elapsed.Milliseconds(),
			}
			// The handler echoes the effective trace ID; fall back to the
			// client's header for requests that do not mint one.
			id := sw.Header().Get(TraceHeader)
			if id == "" {
				id = r.Header.Get(TraceHeader)
			}
			if id != "" {
				attrs = append(attrs, "trace", id)
			}
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "http "+name, toAttrs(attrs)...)
		}
	})
}

// toAttrs converts alternating key/value pairs to slog attributes.
func toAttrs(kv []any) []slog.Attr {
	out := make([]slog.Attr, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, slog.Any(kv[i].(string), kv[i+1]))
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	h := Health{
		Status:      "ok",
		InFlight:    s.admitted,
		QueueDepth:  s.admitted,
		QueueFree:   s.opt.QueueLimit - s.admitted,
		QueueLimit:  s.opt.QueueLimit,
		BatchLimit:  s.batchLimit(),
		TenantQuota: s.opt.TenantQuota,
		Tenants:     len(s.tenants),
		Accepted:    s.accepted,
		UptimeMS:    time.Since(s.start).Milliseconds(),
	}
	if s.draining {
		h.Status = "draining"
		h.Draining = true
	}
	s.mu.Unlock()
	if h.QueueFree < 0 {
		h.QueueFree = 0
	}
	h.RetryAfterS = s.retryAfterSeconds()
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	rs := s.runner.Stats()

	// The level gauges reflect the instant of the scrape: queue depth is
	// maintained at admission/reap, simulations in flight derives from the
	// runner counters here (the runner has no level hook of its own).
	s.met.Lock()
	s.reg.Level("serve.sims.inflight").Set(int64(rs.Unique - rs.Done))
	snap := s.reg.Snapshot()
	s.met.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	metrics.WriteText(w, "misar", snap)
	fmt.Fprintf(w, "misar_runner_done %d\n", rs.Done)
	fmt.Fprintf(w, "misar_runner_executed %d\n", rs.Executed)
	fmt.Fprintf(w, "misar_runner_memo_hits %d\n", rs.Submitted-rs.Unique)
	fmt.Fprintf(w, "misar_runner_store_hits %d\n", rs.StoreHits)
	fmt.Fprintf(w, "misar_runner_submitted %d\n", rs.Submitted)
	fmt.Fprintf(w, "misar_runner_unique %d\n", rs.Unique)
	if rs.Submitted > 0 {
		hit := float64(rs.Submitted-rs.Executed) / float64(rs.Submitted)
		fmt.Fprintf(w, "misar_cache_hit_ratio %.6f\n", hit)
	}
	fmt.Fprintf(w, "misar_serve_draining %d\n", draining)
	fmt.Fprintf(w, "misar_serve_inflight %d\n", rs.Unique-rs.Done)
	fmt.Fprintf(w, "misar_serve_queue_limit %d\n", s.opt.QueueLimit)
	fmt.Fprintf(w, "misar_serve_tenant_quota %d\n", s.opt.TenantQuota)
	if s.store != nil {
		ss := s.store.Stats()
		fmt.Fprintf(w, "misar_store_evictions %d\n", ss.Evictions)
		fmt.Fprintf(w, "misar_store_hits %d\n", ss.Hits)
		fmt.Fprintf(w, "misar_store_misses %d\n", ss.Misses)
		fmt.Fprintf(w, "misar_store_puts %d\n", ss.Puts)
	}
}

// buildSubmit validates a request and returns the submission closure. All
// validation happens before admission, so a malformed request never
// occupies a queue slot.
func buildSubmit(req *JobRequest) (label string, submit func(context.Context, *harness.Runner) *harness.Run, err error) {
	switch req.Priority {
	case "", PriorityInteractive, PriorityBatch:
	default:
		return "", nil, fmt.Errorf("unknown priority %q (want %q or %q)", req.Priority, PriorityInteractive, PriorityBatch)
	}
	cfg, libf, err := harness.Variant(req.Config, req.Tiles)
	if err != nil {
		return "", nil, err
	}
	if err := machine.Validate(cfg); err != nil {
		return "", nil, err
	}
	cfg.Metrics = req.Metrics
	if req.FaultPlan != nil {
		cfg.Fault = *req.FaultPlan
		cfg.Invariants = true
	} else if req.FaultSeed != 0 {
		cfg.Fault = fault.DefaultPlan(req.FaultSeed)
		cfg.Invariants = true
	}
	if req.Invariants {
		cfg.Invariants = true
	}
	switch req.Kind {
	case "", "app":
		app, ok := workload.ByName(req.App)
		if !ok {
			return "", nil, fmt.Errorf("unknown app %q", req.App)
		}
		return fmt.Sprintf("%s on %s", app.Name, cfg.Name),
			func(ctx context.Context, r *harness.Runner) *harness.Run {
				return r.AppCtx(ctx, app, cfg, libf())
			}, nil
	case "micro":
		op := req.App
		fn, ok := harness.MicroOp(op)
		if !ok {
			return "", nil, fmt.Errorf("unknown micro op %q (known: %v)", op, harness.MicroOpNames())
		}
		return fmt.Sprintf("%s on %s", op, cfg.Name),
			func(ctx context.Context, r *harness.Runner) *harness.Run {
				return r.MicroCtx(ctx, op, fn, cfg, libf())
			}, nil
	default:
		return "", nil, fmt.Errorf("unknown kind %q (want \"app\" or \"micro\")", req.Kind)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.inc("serve.jobs_rejected_bad_request")
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request: " + err.Error()})
		return
	}
	label, submit, err := buildSubmit(&req)
	if err != nil {
		s.inc("serve.jobs_rejected_bad_request")
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	// Trace identity: a client that sets the header owns the ID (its spans
	// and ours share one timeline); otherwise the server mints one. Either
	// way the response echoes the effective ID.
	traceID := r.Header.Get(TraceHeader)
	if traceID == "" {
		traceID = obs.NewTraceID()
	}

	// The job's context descends from the SERVER lifecycle, not the
	// request: a client that hangs up has abandoned the stream, not the
	// simulation. Its result still lands in the store.
	timeout := s.opt.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	var jobCtx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		jobCtx, cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		jobCtx, cancel = context.WithCancel(s.baseCtx)
	}
	jobCtx = obs.WithRecorder(obs.WithTrace(jobCtx, traceID), s.spans)

	// Admission control: bounded queue of unfinished jobs.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		s.inc("serve.jobs_rejected_draining")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining"})
		return
	}
	// Priority-classed admission: batch fills only half the queue, so an
	// overload of background work degrades to fast 429s while interactive
	// slots remain. The Retry-After is derived from the live drain rate —
	// a saturated-but-draining server answers with an honest estimate
	// instead of a hardcoded second.
	limit := s.opt.QueueLimit
	if req.Priority == PriorityBatch {
		limit = s.batchLimit()
	}
	if s.admitted >= limit {
		shedBatch := req.Priority == PriorityBatch && s.admitted < s.opt.QueueLimit
		s.mu.Unlock()
		cancel()
		s.inc("serve.jobs_rejected_queue_full")
		msg := "queue full"
		if shedBatch {
			s.inc("serve.jobs_shed_batch")
			msg = "queue beyond batch occupancy limit"
		}
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: msg})
		return
	}
	// Per-tenant quota: a single identified tenant may hold at most
	// TenantQuota unfinished jobs, so one chatty client degrades alone
	// while the rest of the queue stays admittable. Checked after the
	// global limit — a full queue is the more honest answer when both
	// apply — and skipped for anonymous requests.
	tenant := r.Header.Get(TenantHeader)
	if tenant != "" && s.tenants[tenant] >= s.opt.TenantQuota {
		s.mu.Unlock()
		cancel()
		s.inc("serve.queue.tenant_rejects")
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, apiError{
			Error: fmt.Sprintf("tenant %q over quota (%d unfinished jobs)", tenant, s.opt.TenantQuota)})
		return
	}
	if tenant != "" {
		s.tenants[tenant]++
	}
	s.admitted++
	s.accepted++
	s.nextID++
	depth := s.admitted
	job := &Job{
		ID:     fmt.Sprintf("j-%08d", s.nextID),
		Label:  label,
		Trace:  traceID,
		cancel: cancel,
		start:  time.Now(),
		tenant: tenant,
		done:   make(chan struct{}),
	}
	s.jobs[job.ID] = job
	s.wg.Add(1)
	s.mu.Unlock()
	s.met.Lock()
	s.reg.Counter("serve.jobs_accepted").Inc()
	s.reg.Level("serve.queue.depth").Set(int64(depth))
	s.reg.Gauge("serve.queue.depth.max").Observe(uint64(depth))
	s.met.Unlock()
	if s.log != nil {
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "job accepted",
			slog.String("job", job.ID), slog.String("label", job.Label),
			slog.String("trace", job.Trace), slog.Int("queue_depth", depth))
	}

	job.run = submit(jobCtx, s.runner)
	go s.reap(job)

	w.Header().Set(TraceHeader, traceID)

	// ?wait=0: fire-and-poll. One "accepted" JSON object, then done.
	if r.URL.Query().Get("wait") == "0" {
		writeJSON(w, http.StatusAccepted, JobEvent{Event: "accepted", Job: job.ID, Label: job.Label, Trace: job.Trace})
		return
	}
	s.stream(w, r, job)
}

// reap waits for the job's run, finalizes the job record, and releases its
// queue slot. Exactly one reap per admitted job.
func (s *Server) reap(job *Job) {
	res, err := job.run.Result()
	if err != nil {
		job.errMsg = err.Error()
	} else {
		job.result = res
		job.fromStore = job.run.FromStore()
	}
	job.elapsed = time.Since(job.start)
	// Capture the flight-recorder tail before publishing the job as done:
	// on failure it is the dump embedded in the error (the window around
	// the hang/violation), on success the machine's live ring.
	if evs := job.run.Flight(); len(evs) > 0 {
		job.flight = obs.FlightDump{
			Schema: obs.FlightDumpSchema,
			Job:    job.ID,
			Label:  job.Label,
			Trace:  job.Trace,
			Total:  uint64(len(evs)),
			Events: evs,
		}
	}
	// One umbrella span per job, covering admission to completion, so the
	// Chrome trace shows queue wait + store lookup + sim phases nested
	// under the job they belong to.
	s.spans.Record(trace.Span{
		Trace: job.Trace,
		Proc:  "served",
		Name:  "job " + job.ID,
		Start: job.start.UnixMicro(),
		Dur:   job.elapsed.Microseconds(),
		Args:  map[string]string{"label": job.Label, "from_store": fmt.Sprint(job.fromStore)},
	})
	close(job.done)

	s.mu.Lock()
	s.admitted--
	if job.tenant != "" {
		if s.tenants[job.tenant]--; s.tenants[job.tenant] <= 0 {
			delete(s.tenants, job.tenant)
		}
	}
	depth := s.admitted
	s.drains = append(s.drains, time.Now())
	if len(s.drains) > drainWindow {
		s.drains = s.drains[len(s.drains)-drainWindow:]
	}
	s.finished = append(s.finished, job.ID)
	for len(s.finished) > keepFinished {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
	s.met.Lock()
	s.reg.Level("serve.queue.depth").Set(int64(depth))
	s.met.Unlock()
	outcome := "done"
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.inc("serve.jobs_cancelled")
			outcome = "cancelled"
		} else {
			s.inc("serve.jobs_failed")
			outcome = "failed"
		}
	} else {
		s.inc("serve.jobs_done")
		if job.fromStore {
			s.inc("serve.jobs_from_store")
		}
	}
	if s.log != nil {
		attrs := []slog.Attr{
			slog.String("job", job.ID), slog.String("label", job.Label),
			slog.String("trace", job.Trace), slog.String("outcome", outcome),
			slog.Int64("elapsed_ms", job.elapsed.Milliseconds()),
			slog.Bool("from_store", job.fromStore),
		}
		if job.errMsg != "" {
			attrs = append(attrs, slog.String("error", job.errMsg))
		}
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "job "+outcome, attrs...)
	}
	s.wg.Done()
}

// stream writes the job's NDJSON event stream: accepted, periodic running
// heartbeats, and a final done/error event. A client disconnect ends the
// stream silently; the job itself keeps running. Every write carries a
// deadline (Options.StreamWriteTimeout) so a consumer that stops reading
// is disconnected instead of pinning this goroutine on a full socket
// buffer — the job is unaffected either way.
func (s *Server) stream(w http.ResponseWriter, r *http.Request, job *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	deadlines := true
	emit := func(ev JobEvent) bool {
		if deadlines {
			if err := rc.SetWriteDeadline(time.Now().Add(s.opt.StreamWriteTimeout)); err != nil {
				// Recorders (httptest) don't support deadlines; stream
				// unbounded rather than fail.
				deadlines = false
			}
		}
		if err := enc.Encode(ev); err != nil {
			s.inc("serve.streams_dropped_slow")
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(JobEvent{Event: "accepted", Job: job.ID, Label: job.Label, Trace: job.Trace}) {
		return
	}

	ticker := time.NewTicker(s.opt.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-job.done:
			ev := JobEvent{
				Job:       job.ID,
				Label:     job.Label,
				ElapsedMS: job.elapsed.Milliseconds(),
				FromStore: job.fromStore,
				Trace:     job.Trace,
				Spans:     s.spans.SpansFor(job.Trace),
			}
			if job.errMsg != "" {
				ev.Event, ev.Error = "error", job.errMsg
			} else {
				ev.Event, ev.Result = "done", job.result
			}
			emit(ev)
			return
		case <-ticker.C:
			if !emit(JobEvent{
				Event:     "running",
				Job:       job.ID,
				Label:     job.Label,
				ElapsedMS: time.Since(job.start).Milliseconds(),
			}) {
				return
			}
		case <-r.Context().Done():
			// Client gone; the job continues under s.baseCtx.
			s.inc("serve.streams_disconnected")
			return
		}
	}
}

// status snapshots a job's public state.
func (s *Server) status(job *Job) JobStatus {
	st := JobStatus{ID: job.ID, Label: job.Label, Trace: job.Trace}
	select {
	case <-job.done:
		st.ElapsedMS = job.elapsed.Milliseconds()
		st.FromStore = job.fromStore
		if job.errMsg != "" {
			st.State, st.Error = "failed", job.errMsg
		} else {
			st.State, st.Result = "done", job.result
		}
	default:
		st.State = "running"
		st.ElapsedMS = time.Since(job.start).Milliseconds()
	}
	return st
}

func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, s.status(job))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	job.cancel()
	writeJSON(w, http.StatusOK, s.status(job))
}

// handleJobFlight serves the job's flight-recorder dump: the tail of sim
// events leading up to completion (or, for a failed job, up to the hang or
// violation the watchdog diagnosed). Render it with misar-trace -from-flight.
func (s *Server) handleJobFlight(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	select {
	case <-job.done:
	default:
		writeJSON(w, http.StatusConflict, apiError{Error: "job still running; flight dump is available on completion"})
		return
	}
	if len(job.flight.Events) == 0 {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no flight events recorded (result served from cache or store)"})
		return
	}
	w.Header().Set(TraceHeader, job.Trace)
	writeJSON(w, http.StatusOK, job.flight)
}

// handleJobTrace serves the job's server-side spans as a Chrome trace (load
// at ui.perfetto.dev or chrome://tracing). The client's NDJSON terminal
// event carries the same spans, so this endpoint exists for operators
// inspecting jobs they did not submit.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	spans := s.spans.SpansFor(job.Trace)
	if len(spans) == 0 {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no spans recorded for this job yet"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(TraceHeader, job.Trace)
	trace.WriteChromeSpans(w, spans)
}
