package service

import (
	"misar/internal/fault"
	"misar/internal/harness"
	"misar/internal/trace"
)

// The wire schema of the job API ("misar-served/v1"). Requests and events
// are plain JSON; POST /v1/jobs responses are NDJSON streams of JobEvent.

// TraceHeader carries the request's trace ID. A client that sets it owns the
// ID (the server adopts it); otherwise the server mints one. The response
// always echoes the effective ID in the same header.
const TraceHeader = "X-Misar-Trace"

// TenantHeader identifies the submitting tenant for per-tenant admission
// quotas. A tenant may hold at most Options.TenantQuota unfinished jobs;
// submissions beyond that are refused with 429 + Retry-After even while the
// shared queue has room, so one chatty client cannot monopolize it.
// Requests without the header are anonymous and subject only to the shared
// queue limit.
const TenantHeader = "X-Misar-Tenant"

// JobRequest describes one simulation to run.
type JobRequest struct {
	// Kind selects the experiment type: "app" (default) runs a full
	// application, "micro" one Fig. 5 microbenchmark operation.
	Kind string `json:"kind,omitempty"`
	// App is the benchmark name (kind "app", see misar-sim -list) or the
	// microbenchmark operation (kind "micro", e.g. "LockAcquire").
	App string `json:"app"`
	// Config is a named machine variant ("msaomu2", "pthread", ...).
	Config string `json:"config"`
	// Tiles is the core count (1..64).
	Tiles int `json:"tiles"`
	// FaultSeed, when non-zero, arms the fault injector with
	// fault.DefaultPlan(FaultSeed) and the safety-invariant checker.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// FaultPlan overrides FaultSeed with an explicit plan.
	FaultPlan *fault.Plan `json:"fault_plan,omitempty"`
	// Invariants arms the safety-invariant checker without faults.
	Invariants bool `json:"invariants,omitempty"`
	// Metrics meters the run, attaching a full metrics report to the
	// result.
	Metrics bool `json:"metrics,omitempty"`
	// TimeoutMS bounds the job's wall-clock execution; 0 means no per-job
	// deadline beyond the server's configured default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Priority classes the job for admission: "interactive" (the default)
	// may fill the whole queue; "batch" is shed with a fast 429 once the
	// queue passes half occupancy, so background sweeps degrade before they
	// can starve interactive work (the overload ladder, DESIGN.md §15).
	Priority string `json:"priority,omitempty"`
}

// Admission priority classes.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// JobEvent is one line of a job's NDJSON stream.
type JobEvent struct {
	// Event is "accepted", "running" (heartbeat), "done", or "error".
	Event string `json:"event"`
	// Job is the server-assigned job ID.
	Job string `json:"job,omitempty"`
	// Label is the human-readable experiment label.
	Label string `json:"label,omitempty"`
	// ElapsedMS is wall-clock milliseconds since admission.
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	// FromStore marks a result replayed from the persistent store.
	FromStore bool `json:"from_store,omitempty"`
	// Error is the failure message on an "error" event.
	Error string `json:"error,omitempty"`
	// Result carries the simulation outcome on a "done" event.
	Result *harness.Result `json:"result,omitempty"`
	// Trace is the job's end-to-end trace ID (terminal events).
	Trace string `json:"trace,omitempty"`
	// Spans carries the server-side wall-clock spans of this job's trace on
	// the terminal event, so the client can merge them with its own spans
	// into one Chrome/Perfetto timeline.
	Spans []trace.Span `json:"spans,omitempty"`
}

// JobStatus is the response of GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // "running", "done", or "failed"
	Label string `json:"label"`
	// ElapsedMS is wall-clock milliseconds from admission to completion
	// (or to now, while running).
	ElapsedMS int64           `json:"elapsed_ms"`
	FromStore bool            `json:"from_store,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    *harness.Result `json:"result,omitempty"`
	Trace     string          `json:"trace,omitempty"`
}

// Health is the response of GET /healthz.
type Health struct {
	Status string `json:"status"` // "ok" or "draining"
	// Draining mirrors Status == "draining" as a boolean, so health probes
	// need no string comparison to gate traffic away.
	Draining   bool `json:"draining"`
	InFlight   int  `json:"in_flight"`
	QueueDepth int  `json:"queue_depth"` // occupied queue slots (== InFlight)
	QueueFree  int  `json:"queue_free"`  // slots before admission refuses
	QueueLimit int  `json:"queue_limit"`
	// BatchLimit is the occupancy beyond which batch-priority jobs are shed.
	BatchLimit int `json:"batch_limit"`
	// TenantQuota is the per-tenant unfinished-job cap (TenantHeader);
	// Tenants counts tenants currently holding at least one queue slot.
	TenantQuota int    `json:"tenant_quota"`
	Tenants     int    `json:"tenants"`
	Accepted    uint64 `json:"jobs_accepted_total"`
	UptimeMS    int64  `json:"uptime_ms"`
	// RetryAfterS is the backoff hint a refused client would receive right
	// now: queue depth over the recent drain rate, clamped to [1, 30]
	// seconds. Load balancers can read it to steer away before the 429.
	RetryAfterS int `json:"retry_after_s"`
}

// apiError is the JSON body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}
