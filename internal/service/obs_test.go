package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"misar/internal/obs"
	"misar/internal/service"
	"misar/internal/trace"
)

// TestTraceGoldenStructure is the tracing acceptance criterion: one served
// job yields one coherent set of spans — client submit, queue wait, store
// lookup, and the per-phase sim spans — all sharing the trace ID minted at
// the client, and the merged set renders as a single Chrome trace.
func TestTraceGoldenStructure(t *testing.T) {
	_, _, c := newServer(t, service.Options{Workers: 1, StoreDir: t.TempDir()})

	// The client mints the trace ID and records its own spans.
	id := obs.NewTraceID()
	rec := obs.NewRecorder(0)
	ctx := obs.WithRecorder(obs.WithTrace(context.Background(), id), rec)

	final, err := c.Submit(ctx, quickJob(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Trace != id {
		t.Fatalf("terminal event trace %q, want client-minted %q", final.Trace, id)
	}

	// Merge server-side spans (from the terminal event) with the client's.
	spans := append([]trace.Span{}, final.Spans...)
	spans = append(spans, rec.SpansFor(id)...)

	// Golden structure: every expected proc/name pair present exactly, and
	// every span on the one trace ID.
	want := map[string]bool{
		"client/client.submit": false,
		"harness/queue.wait":   false,
		"harness/store.lookup": false,
		"sim/sim.build":        false,
		"sim/sim.run":          false,
		"served/job":           false,
	}
	for _, sp := range spans {
		if sp.Trace != id {
			t.Errorf("span %s/%s has trace %q, want %q", sp.Proc, sp.Name, sp.Trace, id)
		}
		key := sp.Proc + "/" + sp.Name
		if sp.Proc == "served" && strings.HasPrefix(sp.Name, "job ") {
			key = "served/job"
		}
		if _, ok := want[key]; ok {
			want[key] = true
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("missing span %s in %d spans: %+v", key, len(spans), names(spans))
		}
	}

	// The merged set must render as one loadable Chrome trace.
	var buf bytes.Buffer
	if err := trace.WriteChromeSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &envelope); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	for _, ev := range envelope.TraceEvents {
		if ev["name"] == "process_name" {
			args := ev["args"].(map[string]any)
			procs[args["name"].(string)] = true
		}
	}
	for _, p := range []string{"client", "served", "harness", "sim"} {
		if !procs[p] {
			t.Errorf("chrome trace missing process lane %q", p)
		}
	}
}

func names(spans []trace.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Proc + "/" + sp.Name
	}
	return out
}

// A client that does not mint a trace ID still gets one: the server mints
// it, echoes it in the response header, and tags the job with it.
func TestServerMintsTraceID(t *testing.T) {
	_, _, c := newServer(t, service.Options{Workers: 1})
	final, err := c.Submit(context.Background(), quickJob(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Trace == "" {
		t.Fatal("terminal event has no trace ID")
	}
	st, err := c.Status(context.Background(), final.Job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace != final.Trace {
		t.Errorf("status trace %q != stream trace %q", st.Trace, final.Trace)
	}
}

// TestHealthzQueueOccupancyAndDraining: /healthz must report live queue
// occupancy and flip to draining with the boolean set.
func TestHealthzQueueOccupancyAndDraining(t *testing.T) {
	s, hs, c := newServer(t, service.Options{Workers: 1, QueueLimit: 4})

	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Draining || h.QueueDepth != 0 || h.QueueFree != 4 {
		t.Fatalf("idle health: %+v", h)
	}

	id, code, _ := asyncSubmit(t, hs.URL, slowJob(48))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	h, err = c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.QueueDepth != 1 || h.QueueFree != 3 || h.InFlight != 1 {
		t.Errorf("health with one job in flight: %+v", h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	h, err = c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Draining || h.Status != "draining" {
		t.Errorf("post-drain health: %+v", h)
	}
	if h.QueueDepth != 0 {
		t.Errorf("drained server reports queue depth %d", h.QueueDepth)
	}
	_ = id

	// The queue-depth level gauge must have come back DOWN to zero (the
	// watermark keeps the max) — the regression the level gauge exists for.
	scrape := httpGet(t, hs.URL+"/metrics")
	for _, want := range []string{"misar_serve_queue_depth 0", "misar_serve_queue_depth_max 1"} {
		if !strings.Contains(scrape, want) {
			t.Errorf("metrics missing %q:\n%s", want, scrape)
		}
	}
}

// slowSink is a ResponseWriter whose consumer never drains: the first write
// (the accepted event) succeeds, every later write blocks until the write
// deadline set via SetWriteDeadline (discovered by http.ResponseController
// through the server's wrapper chain) and then fails, like a TCP socket
// with a full send buffer.
type slowSink struct {
	mu       sync.Mutex
	h        http.Header
	deadline time.Time
	writes   int
}

func (w *slowSink) Header() http.Header {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}

func (w *slowSink) WriteHeader(int) {}

func (w *slowSink) SetWriteDeadline(t time.Time) error {
	w.mu.Lock()
	w.deadline = t
	w.mu.Unlock()
	return nil
}

func (w *slowSink) Write(b []byte) (int, error) {
	w.mu.Lock()
	w.writes++
	first := w.writes == 1
	d := w.deadline
	w.mu.Unlock()
	if first {
		return len(b), nil
	}
	if !d.IsZero() {
		time.Sleep(time.Until(d))
	}
	return 0, os.ErrDeadlineExceeded
}

// TestSlowStreamConsumerDisconnected is the slow-consumer regression test:
// a client that stops reading its NDJSON stream must be cut loose within
// the write-deadline budget — the handler goroutine returns, the drop is
// counted, and the job itself still completes.
func TestSlowStreamConsumerDisconnected(t *testing.T) {
	s, hs, c := newServer(t, service.Options{
		Workers:            1,
		Heartbeat:          10 * time.Millisecond,
		StreamWriteTimeout: 100 * time.Millisecond,
	})

	body, _ := json.Marshal(slowJob(32))
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	sink := &slowSink{}

	returned := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(sink, req)
		close(returned)
	}()
	select {
	case <-returned:
	case <-time.After(10 * time.Second):
		t.Fatal("stream handler still pinned by a slow consumer after 10s")
	}

	scrape := httpGet(t, hs.URL+"/metrics")
	if !strings.Contains(scrape, "misar_serve_streams_dropped_slow 1") {
		t.Errorf("slow-consumer drop not counted:\n%s", scrape)
	}

	// The job survives its abandoned stream.
	var jobID string
	deadline := time.Now().Add(10 * time.Second)
	for jobID == "" && time.Now().Before(deadline) {
		h, err := c.Health(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if h.Accepted >= 1 {
			jobID = fmt.Sprintf("j-%08d", 1)
		}
	}
	st := waitDone(t, c, jobID)
	if st.State != "done" {
		t.Fatalf("job after slow-consumer disconnect: %+v", st)
	}
}

// TestFlightEndpoint: a completed job exposes its flight-recorder dump; a
// running job answers 409.
func TestFlightEndpoint(t *testing.T) {
	_, hs, c := newServer(t, service.Options{Workers: 1})

	final, err := c.Submit(context.Background(), quickJob(), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/" + final.Job + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight endpoint: %d", resp.StatusCode)
	}
	var dump obs.FlightDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Schema != obs.FlightDumpSchema {
		t.Errorf("dump schema %q, want %q", dump.Schema, obs.FlightDumpSchema)
	}
	if dump.Job != final.Job || dump.Trace != final.Trace {
		t.Errorf("dump identity %q/%q, want %q/%q", dump.Job, dump.Trace, final.Job, final.Trace)
	}
	if len(dump.Events) == 0 {
		t.Fatal("flight dump has no events")
	}
	// Events must be decodable sim history, in time order.
	for i := 1; i < len(dump.Events); i++ {
		if dump.Events[i].At < dump.Events[i-1].At {
			t.Fatalf("flight events out of order at %d", i)
		}
	}

	// A running job refuses with 409.
	id, code, _ := asyncSubmit(t, hs.URL, slowJob(64))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	resp2, err := http.Get(hs.URL + "/v1/jobs/" + id + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("flight of running job: %d, want 409", resp2.StatusCode)
	}
	waitDone(t, c, id)
}

// TestJobTraceEndpoint: GET /v1/jobs/{id}/trace serves a Chrome trace of
// the job's server-side spans.
func TestJobTraceEndpoint(t *testing.T) {
	_, hs, c := newServer(t, service.Options{Workers: 1})
	final, err := c.Submit(context.Background(), quickJob(), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/" + final.Job + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(service.TraceHeader); got != final.Trace {
		t.Errorf("trace endpoint header %q, want %q", got, final.Trace)
	}
	var envelope struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("trace endpoint did not serve JSON: %v", err)
	}
	if len(envelope.TraceEvents) == 0 {
		t.Fatal("empty chrome trace")
	}
}

// TestTimeseriesEndpoint: the sampler fills the ring and /v1/timeseries
// serves it with a live "current" sample.
func TestTimeseriesEndpoint(t *testing.T) {
	_, hs, c := newServer(t, service.Options{Workers: 1, SampleInterval: 20 * time.Millisecond})
	if _, err := c.Submit(context.Background(), quickJob(), nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // let a few samples land

	var ts struct {
		IntervalMS int64            `json:"interval_ms"`
		Current    map[string]any   `json:"current"`
		Samples    []map[string]any `json:"samples"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, hs.URL+"/v1/timeseries")), &ts); err != nil {
		t.Fatal(err)
	}
	if ts.IntervalMS != 20 {
		t.Errorf("interval_ms = %d, want 20", ts.IntervalMS)
	}
	if len(ts.Samples) == 0 {
		t.Error("no samples recorded by the sampler")
	}
	if got := ts.Current["jobs_accepted_total"].(float64); got < 1 {
		t.Errorf("current sample accepted = %v, want >= 1", got)
	}
	if _, ok := ts.Current["hit_ratio"]; !ok {
		t.Error("current sample missing hit_ratio")
	}
}
