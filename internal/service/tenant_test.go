package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// White-box tests for per-tenant admission quotas: the bookkeeping around
// s.tenants, separated from real simulation lifetimes by seeding the
// occupancy maps directly.

func postJob(t *testing.T, s *Server, tenant string) *httptest.ResponseRecorder {
	t.Helper()
	body, _ := json.Marshal(JobRequest{App: "streamcluster", Config: "msaomu2", Tiles: 4})
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs?wait=0", strings.NewReader(string(body)))
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	rec := httptest.NewRecorder()
	s.handleSubmit(rec, req)
	return rec
}

func TestTenantQuotaDefaultsToQuarterQueue(t *testing.T) {
	if got := newBareServer(t, 64).opt.TenantQuota; got != 16 {
		t.Errorf("TenantQuota(queue 64) = %d, want 16", got)
	}
	if got := newBareServer(t, 2).opt.TenantQuota; got != 1 {
		t.Errorf("TenantQuota(queue 2) = %d, want 1 (never zero)", got)
	}
}

func TestTenantQuotaBreachAndRecovery(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueLimit: 8, TenantQuota: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Seed: tenant "acme" already holds its full quota of unfinished jobs.
	s.mu.Lock()
	s.tenants["acme"] = 2
	s.admitted = 2
	s.mu.Unlock()

	// Over-quota submission: 429 with a Retry-After hint and the dedicated
	// counter, while the shared queue still has 6 free slots.
	rec := postJob(t, s, "acme")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "over quota") {
		t.Errorf("reject body %q, want an over-quota mention", rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("over-quota reject missing Retry-After")
	}
	s.met.Lock()
	rejects := s.reg.Counter("serve.queue.tenant_rejects").Value()
	s.met.Unlock()
	if rejects != 1 {
		t.Errorf("serve.queue.tenant_rejects = %d, want 1", rejects)
	}

	// A different tenant and an anonymous client are unaffected.
	if rec := postJob(t, s, "rival"); rec.Code != http.StatusAccepted {
		t.Errorf("rival tenant submit = %d, want 202 (body %s)", rec.Code, rec.Body.String())
	}
	if rec := postJob(t, s, ""); rec.Code != http.StatusAccepted {
		t.Errorf("anonymous submit = %d, want 202 (body %s)", rec.Code, rec.Body.String())
	}

	// Recovery: once acme's jobs reap (simulated by releasing its slots),
	// the tenant admits again.
	s.mu.Lock()
	delete(s.tenants, "acme")
	s.admitted -= 2
	s.mu.Unlock()
	if rec := postJob(t, s, "acme"); rec.Code != http.StatusAccepted {
		t.Errorf("post-reap acme submit = %d, want 202 (body %s)", rec.Code, rec.Body.String())
	}
	s.mu.Lock()
	held := s.tenants["acme"]
	s.mu.Unlock()
	if held != 1 {
		t.Errorf("acme holds %d slots after re-admission, want 1", held)
	}
}

// TestTenantReapReleasesSlot drives one real job end to end and checks the
// tenant's slot is returned (and the empty bucket pruned) at reap.
func TestTenantReapReleasesSlot(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	rec := postJob(t, s, "acme")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202 (body %s)", rec.Code, rec.Body.String())
	}
	var ev JobEvent
	if err := json.NewDecoder(rec.Body).Decode(&ev); err != nil || ev.Job == "" {
		t.Fatalf("accepted event: %+v, err %v", ev, err)
	}
	s.mu.Lock()
	job := s.jobs[ev.Job]
	s.mu.Unlock()
	if job == nil || job.tenant != "acme" {
		t.Fatalf("job %q not tracked with tenant acme: %+v", ev.Job, job)
	}
	<-job.done
	// reap decrements under s.mu after close(done); spin briefly for it.
	for i := 0; ; i++ {
		s.mu.Lock()
		n, ok := s.tenants["acme"]
		adm := s.admitted
		s.mu.Unlock()
		if !ok && adm == 0 {
			break
		}
		if i > 1000 {
			t.Fatalf("tenant slot not released: acme=%d (present %v), admitted=%d", n, ok, adm)
		}
		time.Sleep(time.Millisecond)
	}
}
