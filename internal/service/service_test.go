package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"misar/internal/service"
	"misar/internal/service/client"
)

func newServer(t *testing.T, opt service.Options) (*service.Server, *httptest.Server, *client.Client) {
	t.Helper()
	if opt.Heartbeat == 0 {
		opt.Heartbeat = 20 * time.Millisecond
	}
	s, err := service.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		hs.Close()
	})
	return s, hs, client.New(hs.URL)
}

// quickJob is small enough to finish in tens of milliseconds.
func quickJob() service.JobRequest {
	return service.JobRequest{App: "streamcluster", Config: "msaomu2", Tiles: 4}
}

// slowJob runs long enough (hundreds of milliseconds) that tests can
// observe it in flight.
func slowJob(tiles int) service.JobRequest {
	return service.JobRequest{App: "fluidanimate", Config: "msaomu2", Tiles: tiles}
}

// TestRoundTripDedupAndRestart is the tentpole acceptance criterion: a cold
// server runs two identical submissions as ONE simulation (single-flight +
// store), visibly in /metrics, and a restarted server serves the third
// request entirely from the persistent store.
func TestRoundTripDedupAndRestart(t *testing.T) {
	dir := t.TempDir()
	s1, hs1, c1 := newServer(t, service.Options{Workers: 2, StoreDir: dir})

	var events []string
	final, err := c1.Submit(context.Background(), quickJob(), func(ev service.JobEvent) {
		events = append(events, ev.Event)
	})
	if err != nil {
		t.Fatal(err)
	}
	if events[0] != "accepted" {
		t.Errorf("first event %q, want accepted", events[0])
	}
	if final.Result == nil || final.Result.Cycles == 0 {
		t.Fatalf("done event missing result: %+v", final)
	}
	if final.FromStore {
		t.Error("cold run claimed from_store")
	}

	// Identical second submission: memo or store hit, never a second sim.
	second, err := c1.Submit(context.Background(), quickJob(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Result.Cycles != final.Result.Cycles {
		t.Errorf("dedup returned different cycles: %d vs %d", second.Result.Cycles, final.Result.Cycles)
	}
	if rs := s1.RunnerStats(); rs.Executed != 1 {
		t.Errorf("two identical submissions executed %d sims, want 1", rs.Executed)
	}

	// /metrics must expose the single-flight evidence.
	scrape := httpGet(t, hs1.URL+"/metrics")
	for _, want := range []string{"misar_runner_executed 1", "misar_serve_jobs_accepted 2"} {
		if !strings.Contains(scrape, want) {
			t.Errorf("metrics missing %q:\n%s", want, scrape)
		}
	}

	// "Restart": a fresh server over the same store directory.
	s2, _, c2 := newServer(t, service.Options{Workers: 2, StoreDir: dir})
	third, err := c2.Submit(context.Background(), quickJob(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !third.FromStore {
		t.Error("restarted server did not serve from the persistent store")
	}
	if third.Result.Cycles != final.Result.Cycles {
		t.Errorf("store replay cycles %d, cold cycles %d", third.Result.Cycles, final.Result.Cycles)
	}
	if rs := s2.RunnerStats(); rs.Executed != 0 || rs.StoreHits != 1 {
		t.Errorf("restarted server stats %+v, want 0 executed / 1 store hit", rs)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// asyncSubmit posts with ?wait=0 and returns the accepted job ID (or the
// response status code on rejection).
func asyncSubmit(t *testing.T, base string, req service.JobRequest) (string, int, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/jobs?wait=0", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ev service.JobEvent
	json.NewDecoder(resp.Body).Decode(&ev)
	return ev.Job, resp.StatusCode, resp.Header
}

func TestQueueFullBackpressure(t *testing.T) {
	_, hs, c := newServer(t, service.Options{Workers: 1, QueueLimit: 2})

	// Fill the queue with two distinct slow jobs (one occupies the worker,
	// one queues), then a third must bounce with 429. Jobs are real
	// simulations, so on a loaded machine the pair can drain before the
	// third submission lands; retry with fresh tile counts (fresh memo
	// keys) until the full-queue window is observed.
	tiles := []int{32, 48, 64, 16, 24, 40, 8, 12, 20}
	bounced := false
	for attempt := 0; attempt+2 < len(tiles) && !bounced; attempt += 3 {
		waitQueueEmpty(t, c)
		id1, code1, _ := asyncSubmit(t, hs.URL, slowJob(tiles[attempt]))
		id2, code2, _ := asyncSubmit(t, hs.URL, slowJob(tiles[attempt+1]))
		if code1 != http.StatusAccepted || code2 != http.StatusAccepted {
			t.Fatalf("setup submissions: %d, %d", code1, code2)
		}
		_, code3, hdr := asyncSubmit(t, hs.URL, slowJob(tiles[attempt+2]))
		switch code3 {
		case http.StatusTooManyRequests:
			bounced = true
			if hdr.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		case http.StatusAccepted:
			t.Logf("attempt %d: queue drained before third submission, retrying", attempt/3)
		default:
			t.Fatalf("third submission got %d, want 429 or 202", code3)
		}
		waitDone(t, c, id1)
		waitDone(t, c, id2)
	}
	if !bounced {
		t.Fatal("never observed a 429 with a full queue")
	}

	// Queue drained: the same previously-bounced job must now be admitted.
	waitQueueEmpty(t, c)
	_, code, _ := asyncSubmit(t, hs.URL, slowJob(64))
	if code != http.StatusAccepted {
		t.Errorf("post-drain submission got %d, want 202", code)
	}
}

// waitQueueEmpty polls /healthz until no jobs are admitted-but-unfinished.
func waitQueueEmpty(t *testing.T, c *client.Client) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		h, err := c.Health(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if h.InFlight == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("queue never emptied")
}

func waitDone(t *testing.T, c *client.Client, id string) *service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// TestClientDisconnectJobCompletes: killing the progress stream must not
// kill the job — it finishes under the server's context and the result
// lands in the persistent store.
func TestClientDisconnectJobCompletes(t *testing.T) {
	s, hs, c := newServer(t, service.Options{Workers: 1, StoreDir: t.TempDir()})

	req := slowJob(32)
	body, _ := json.Marshal(req)
	hctx, hcancel := context.WithCancel(context.Background())
	hreq, _ := http.NewRequestWithContext(hctx, http.MethodPost, hs.URL+"/v1/jobs", strings.NewReader(string(body)))
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	// Read just the accepted line, then hang up mid-stream.
	dec := json.NewDecoder(resp.Body)
	var accepted service.JobEvent
	if err := dec.Decode(&accepted); err != nil || accepted.Event != "accepted" {
		t.Fatalf("accepted event: %+v, %v", accepted, err)
	}
	hcancel()
	resp.Body.Close()

	st := waitDone(t, c, accepted.Job)
	if st.State != "done" {
		t.Fatalf("job after disconnect: %+v", st)
	}
	if ss := s.StoreStats(); ss.Puts != 1 {
		t.Errorf("store puts = %d, want 1 (disconnected job must persist)", ss.Puts)
	}
	// And a rerun of the same request is a pure hit.
	final, err := c.Submit(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs := s.RunnerStats(); rs.Executed != 1 {
		t.Errorf("executed %d sims, want 1 (second was warm) — final %+v", rs.Executed, final)
	}
}

func TestCancelEndpoint(t *testing.T) {
	_, hs, c := newServer(t, service.Options{Workers: 1})
	id, code, _ := asyncSubmit(t, hs.URL, slowJob(64))
	if code != http.StatusAccepted {
		t.Fatal("setup submit failed")
	}
	if _, err := c.Cancel(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, c, id)
	if st.State != "failed" || !strings.Contains(st.Error, "cancelled") {
		t.Errorf("cancelled job status: %+v", st)
	}
	// Cancelling nonsense 404s.
	if _, err := c.Cancel(context.Background(), "j-99999999"); err == nil {
		t.Error("cancel of unknown job succeeded")
	}
}

// TestGracefulDrain: draining returns every accepted job, refuses new ones
// with 503, and leaves each result in the store.
func TestGracefulDrain(t *testing.T) {
	s, hs, c := newServer(t, service.Options{Workers: 2, QueueLimit: 8, StoreDir: t.TempDir()})

	var ids []string
	for _, tiles := range []int{16, 24, 32} {
		id, code, _ := asyncSubmit(t, hs.URL, slowJob(tiles))
		if code != http.StatusAccepted {
			t.Fatalf("submit %dc: %d", tiles, code)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Errorf("after drain, job %s is %s (%s)", id, st.State, st.Error)
		}
	}
	if ss := s.StoreStats(); ss.Puts != uint64(len(ids)) {
		t.Errorf("store puts = %d, want %d", ss.Puts, len(ids))
	}
	if _, code, _ := asyncSubmit(t, hs.URL, quickJob()); code != http.StatusServiceUnavailable {
		t.Errorf("submission while draining got %d, want 503", code)
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("health status %q, want draining", h.Status)
	}
}

// TestStress100Clients hammers the server with 100 concurrent streaming
// clients spread over four distinct experiments. Single-flight must collapse
// them to at most four simulations, and every client must get a result.
// Run under -race in CI.
func TestStress100Clients(t *testing.T) {
	s, _, c := newServer(t, service.Options{Workers: 4, QueueLimit: 256, StoreDir: t.TempDir()})

	reqs := []service.JobRequest{
		{Kind: "micro", App: "LockAcquire", Config: "msaomu2", Tiles: 4},
		{Kind: "micro", App: "BarrierHandoff", Config: "msaomu2", Tiles: 4},
		{App: "streamcluster", Config: "msaomu2", Tiles: 4},
		{App: "streamcluster", Config: "msa0", Tiles: 4},
	}
	const clients = 100
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev, err := c.Submit(context.Background(), reqs[i%len(reqs)], nil)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			if ev.Result == nil {
				errs <- fmt.Errorf("client %d: no result", i)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	rs := s.RunnerStats()
	if rs.Executed > len(reqs) {
		t.Errorf("100 clients over %d experiments executed %d sims", len(reqs), rs.Executed)
	}
	if rs.Submitted != clients {
		t.Errorf("submitted %d, want %d", rs.Submitted, clients)
	}
}

func TestBadRequests(t *testing.T) {
	_, hs, _ := newServer(t, service.Options{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"unknown app", `{"app":"nope","config":"msaomu2","tiles":4}`},
		{"unknown config", `{"app":"streamcluster","config":"nope","tiles":4}`},
		{"bad tiles", `{"app":"streamcluster","config":"msaomu2","tiles":0}`},
		{"oversized tiles", `{"app":"streamcluster","config":"msaomu2","tiles":4096}`},
		{"unknown kind", `{"kind":"nope","app":"streamcluster","config":"msaomu2","tiles":4}`},
		{"unknown micro", `{"kind":"micro","app":"nope","config":"msaomu2","tiles":4}`},
		{"unknown field", `{"app":"streamcluster","config":"msaomu2","tiles":4,"bogus":1}`},
		{"garbage", `}{`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400", resp.StatusCode)
			}
			var ae struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Error == "" {
				t.Errorf("400 body not an api error: %v", err)
			}
		})
	}
}

// The heartbeat stream must carry "running" events for a job that outlives
// the cadence.
func TestHeartbeats(t *testing.T) {
	_, _, c := newServer(t, service.Options{Workers: 1, Heartbeat: 10 * time.Millisecond})
	running := 0
	_, err := c.Submit(context.Background(), slowJob(24), func(ev service.JobEvent) {
		if ev.Event == "running" {
			running++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if running == 0 {
		t.Error("no running heartbeats observed")
	}
}
