package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// The event pool must recycle storage: after an event fires, the next
// scheduling reuses its slot instead of allocating.
func TestPoolReuseAfterFire(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.PoolAllocated() == 0 {
		t.Fatal("pool never allocated")
	}
	high := e.PoolAllocated()
	// Steady-state churn: schedule/fire repeatedly at the same depth.
	for i := 0; i < 10000; i++ {
		e.After(1, func() {})
		e.Step()
	}
	if got := e.PoolAllocated(); got != high {
		t.Fatalf("steady-state churn grew the pool: %d -> %d", high, got)
	}
}

// Cancelled events must return to the pool immediately, not only when their
// firing time is reached.
func TestPoolReuseAfterCancel(t *testing.T) {
	e := NewEngine()
	warm := e.At(1, func() {})
	warm.Cancel()
	high := e.PoolAllocated()
	for i := 0; i < 10000; i++ {
		// A long-lived timer cancelled long before it would fire: with
		// immediate recycling the pool never grows past the warm-up mark.
		ev := e.At(1_000_000+Time(i), func() {})
		ev.Cancel()
	}
	if got := e.PoolAllocated(); got != high {
		t.Fatalf("cancel churn grew the pool: %d -> %d", high, got)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after cancelling everything", e.Pending())
	}
}

// A handle to a fired event must not affect the pooled slot's next tenant.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, func() {})
	e.Step() // fires; slot recycled
	fired := false
	fresh := e.At(2, func() { fired = true })
	stale.Cancel() // stale generation: must be a no-op
	if fresh.Pending() != true {
		t.Fatal("stale Cancel() cancelled the slot's new tenant")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// Cancel must also be generation-safe when the slot was recycled via Cancel
// rather than via firing.
func TestStaleHandleAfterCancelRecycle(t *testing.T) {
	e := NewEngine()
	first := e.At(10, func() { t.Error("cancelled event fired") })
	first.Cancel()
	ok := false
	second := e.At(10, func() { ok = true })
	first.Cancel() // stale; must not touch `second`, which reuses the slot
	if !second.Pending() {
		t.Fatal("stale handle cancelled the recycled slot's new event")
	}
	e.Run()
	if !ok {
		t.Fatal("live event did not fire")
	}
}

// refEvent / refModel: a naive sorted-slice reference implementation of the
// kernel's contract, used as the oracle for fuzzing the intrusive heap.
type refEvent struct {
	when      Time
	seq       uint64
	id        int
	cancelled bool
}

type refModel struct {
	now    Time
	seq    uint64
	events []*refEvent
}

func (m *refModel) at(t Time, id int) *refEvent {
	ev := &refEvent{when: t, seq: m.seq, id: id}
	m.seq++
	m.events = append(m.events, ev)
	return ev
}

// step fires the earliest live event, returning its id, or -1 if none.
func (m *refModel) step() int {
	live := m.events[:0]
	for _, ev := range m.events {
		if !ev.cancelled {
			live = append(live, ev)
		}
	}
	m.events = live
	if len(m.events) == 0 {
		return -1
	}
	sort.SliceStable(m.events, func(i, j int) bool {
		if m.events[i].when != m.events[j].when {
			return m.events[i].when < m.events[j].when
		}
		return m.events[i].seq < m.events[j].seq
	})
	ev := m.events[0]
	m.events = m.events[1:]
	m.now = ev.when
	return ev.id
}

// Fuzz the heap against the reference model under interleaved At / Cancel /
// Step, checking identical firing order, identical clocks, and the heap
// invariant throughout.
func TestHeapFuzzAgainstReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		ref := &refModel{}
		var liveHandles []Event
		var liveRef []*refEvent
		var fired []int
		nextID := 0

		for op := 0; op < 2000; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // schedule
				t0 := e.Now() + Time(rng.Intn(50))
				id := nextID
				nextID++
				liveHandles = append(liveHandles, e.At(t0, func() { fired = append(fired, id) }))
				liveRef = append(liveRef, ref.at(t0, id))
			case r < 7: // cancel a random outstanding event (possibly stale)
				if len(liveHandles) > 0 {
					i := rng.Intn(len(liveHandles))
					liveHandles[i].Cancel()
					liveRef[i].cancelled = true
				}
			default: // step
				want := ref.step()
				before := len(fired)
				stepped := e.Step()
				if want == -1 {
					if stepped {
						t.Fatalf("seed %d op %d: engine fired with empty reference", seed, op)
					}
					continue
				}
				if !stepped || len(fired) != before+1 || fired[len(fired)-1] != want {
					t.Fatalf("seed %d op %d: engine fired %v, reference wants id %d",
						seed, op, fired[before:], want)
				}
				if e.Now() != ref.now {
					t.Fatalf("seed %d op %d: clock %d, reference %d", seed, op, e.Now(), ref.now)
				}
			}
			checkHeapInvariant(t, e)
		}
	}
}

// checkHeapInvariant verifies the 4-ary heap ordering and the intrusive
// position indices.
func checkHeapInvariant(t *testing.T, e *Engine) {
	t.Helper()
	for i, ev := range e.heap {
		if int(ev.pos) != i {
			t.Fatalf("heap[%d].pos = %d", i, ev.pos)
		}
		if i > 0 {
			p := (i - 1) >> 2
			if less(ev, e.heap[p]) {
				t.Fatalf("heap violation at %d: (%d,%d) < parent (%d,%d)",
					i, ev.when, ev.seq, e.heap[p].when, e.heap[p].seq)
			}
		}
	}
}

// Determinism: the (when, seq) tie-break must survive pool recycling — an
// event's firing order depends only on its scheduling order, never on which
// pooled slot it landed in.
func TestPooledTieBreakDeterminism(t *testing.T) {
	run := func(churn int) []int {
		e := NewEngine()
		// Perturb the pool's slot assignment with unrelated churn first.
		for i := 0; i < churn; i++ {
			ev := e.At(Time(1+i%7), func() {})
			if i%3 == 0 {
				ev.Cancel()
			}
		}
		e.Run()
		base := e.Now()
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			e.At(base+Time(10+(i%5)), func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	want := run(0)
	for _, churn := range []int{1, 17, 256, 999} {
		got := run(churn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("churn %d changed firing order at %d: got %d want %d",
					churn, i, got[i], want[i])
			}
		}
	}
}

// Stop is sticky until Resume: a stopped engine refuses Step/Run/RunUntil,
// and Resume re-enables them with the queue intact.
func TestEngineStopResumeContract(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(1, func() { order = append(order, 1); e.Stop() })
	e.At(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 1 {
		t.Fatalf("Stop did not halt Run: %v", order)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	if e.Step() {
		t.Fatal("Step executed on a stopped engine")
	}
	if e.Run() != 1 {
		t.Fatal("Run advanced a stopped engine")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want the un-fired event to stay queued", e.Pending())
	}
	e.Resume()
	if e.Stopped() {
		t.Fatal("Stopped() = true after Resume")
	}
	e.Run()
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("Resume did not continue the queue: %v", order)
	}
	e.Resume() // resuming a running engine is a no-op
}

// A fired or cancelled handle keeps reporting its scheduling time.
func TestEventWhenSurvivesRecycle(t *testing.T) {
	e := NewEngine()
	a := e.At(7, func() {})
	b := e.At(9, func() {})
	b.Cancel()
	e.Run()
	if a.When() != 7 || b.When() != 9 {
		t.Fatalf("When after recycle: a=%d b=%d, want 7, 9", a.When(), b.When())
	}
	if a.Pending() || b.Pending() {
		t.Fatal("completed handles still report Pending")
	}
}

// BenchmarkEngineChurn measures the kernel's steady-state schedule/fire/
// cancel loop. The acceptance bar is 0 allocs/op: every event comes from
// the pool, and neither the closure-free AtCall path nor Cancel allocates.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	nop := func(any) {}
	// Warm the pool and the heap slice.
	for i := 0; i < 64; i++ {
		e.AtCall(Time(i), nop, nil)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Two schedules, one cancel, two fires: exercises push, remove, and
		// popMin against the free list every iteration.
		e.AfterCall(3, nop, nil)
		dead := e.AfterCall(5, nop, nil)
		e.AfterCall(1, nop, nil)
		dead.Cancel()
		e.Step()
		e.Step()
	}
}

// BenchmarkEngineChurnClosure measures the compatibility path (closure per
// event); the closure itself is the only allocation.
func BenchmarkEngineChurnClosure(b *testing.B) {
	e := NewEngine()
	e.At(0, func() {})
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}
