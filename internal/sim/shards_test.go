package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// shardTracer records (shard, when, tag) tuples, each shard appending only
// to its own lane so tracing itself is race-free.
type shardTracer struct {
	lanes [][]traceEntry
}

type traceEntry struct {
	when Time
	tag  int
}

func newShardTracer(shards int) *shardTracer {
	return &shardTracer{lanes: make([][]traceEntry, shards)}
}

func (tr *shardTracer) record(shard int, when Time, tag int) {
	tr.lanes[shard] = append(tr.lanes[shard], traceEntry{when, tag})
}

// pingPong wires a deterministic K-shard token-passing workload: `tokens`
// tokens start on shard 0 and each hop to the next shard every `hop`
// cycles (hop >= lookahead), for `hops` total hops.
func pingPong(g *ShardGroup, tr *shardTracer, tokens, hops int, hop Time) {
	k := g.Shards()
	type token struct {
		id   int
		left int
		at   int // current shard
	}
	var bounce Handler
	bounce = func(arg any) {
		tk := arg.(*token)
		e := g.Engine(tk.at)
		tr.record(tk.at, e.Now(), tk.id)
		if tk.left == 0 {
			return
		}
		tk.left--
		next := (tk.at + 1) % k
		src := tk.at
		tk.at = next
		g.Post(src, next, e.Now()+hop, bounce, tk)
	}
	for i := 0; i < tokens; i++ {
		g.Engine(0).AtCall(Time(1+i), bounce, &token{id: i, left: hops, at: 0})
	}
}

func collect(tr *shardTracer) []string {
	var out []string
	for s, lane := range tr.lanes {
		for _, e := range lane {
			out = append(out, fmt.Sprintf("s%d@%d#%d", s, e.when, e.tag))
		}
	}
	return out
}

func TestShardGroupPingPongDrains(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		g := NewShardGroup(k, 3)
		tr := newShardTracer(k)
		pingPong(g, tr, 5, 40, 3)
		drained, interrupted := g.RunUntilCheck(1_000_000, 16, nil)
		if !drained || interrupted {
			t.Fatalf("k=%d: drained=%v interrupted=%v, want drained", k, drained, interrupted)
		}
		total := 0
		for _, lane := range tr.lanes {
			total += len(lane)
			for i := 1; i < len(lane); i++ {
				if lane[i].when < lane[i-1].when {
					t.Fatalf("k=%d: shard trace went backwards: %v then %v", k, lane[i-1], lane[i])
				}
			}
		}
		if want := 5 * 41; total != want {
			t.Fatalf("k=%d: %d events traced, want %d", k, total, want)
		}
		if k > 1 && g.Posted() == 0 {
			t.Fatalf("k=%d: no cross-shard messages were mailed", k)
		}
	}
}

func TestShardGroupDeterministicPerShardCount(t *testing.T) {
	run := func(k int) []string {
		g := NewShardGroup(k, 3)
		tr := newShardTracer(k)
		pingPong(g, tr, 7, 31, 4)
		if drained, _ := g.RunUntilCheck(1_000_000, 4, nil); !drained {
			t.Fatalf("k=%d did not drain", k)
		}
		return collect(tr)
	}
	for _, k := range []int{1, 2, 4, 8} {
		a, b := run(k), run(k)
		if len(a) != len(b) {
			t.Fatalf("k=%d: %d vs %d trace entries across runs", k, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("k=%d: traces diverge at %d: %q vs %q", k, i, a[i], b[i])
			}
		}
	}
}

// The workload above is contention-free, so every shard count must produce
// the identical event trace — sharding may only reorder same-cycle ties,
// and this workload has none that cross shards.
func TestShardGroupMatchesSerialOnDisjointWork(t *testing.T) {
	run := func(k int) map[string]int {
		g := NewShardGroup(k, 3)
		tr := newShardTracer(k)
		pingPong(g, tr, 3, 20, 5)
		if drained, _ := g.RunUntilCheck(1_000_000, 1, nil); !drained {
			t.Fatalf("k=%d did not drain", k)
		}
		set := map[string]int{}
		for s, lane := range tr.lanes {
			for _, e := range lane {
				// Key by logical position, not shard id, so shard counts compare.
				_ = s
				set[fmt.Sprintf("@%d#%d", e.when, e.tag)]++
			}
		}
		return set
	}
	base := run(1)
	for _, k := range []int{2, 4} {
		got := run(k)
		if len(got) != len(base) {
			t.Fatalf("k=%d: %d distinct events, serial had %d", k, len(got), len(base))
		}
		for key, n := range base {
			if got[key] != n {
				t.Fatalf("k=%d: event %s seen %d times, serial %d", k, key, got[key], n)
			}
		}
	}
}

func TestShardGroupDeadline(t *testing.T) {
	g := NewShardGroup(2, 3)
	tr := newShardTracer(2)
	pingPong(g, tr, 1, 100, 3)
	drained, interrupted := g.RunUntilCheck(50, 1, nil)
	if drained || interrupted {
		t.Fatalf("drained=%v interrupted=%v, want neither (deadline)", drained, interrupted)
	}
	for s := 0; s < 2; s++ {
		if now := g.Engine(s).Now(); now > 50 {
			t.Fatalf("shard %d clock %d ran past deadline 50", s, now)
		}
	}
	for _, lane := range tr.lanes {
		for _, e := range lane {
			if e.when > 50 {
				t.Fatalf("event executed at %d, past deadline 50", e.when)
			}
		}
	}
	// Resuming with a later deadline finishes the workload.
	if drained, _ := g.RunUntilCheck(1_000_000, 1, nil); !drained {
		t.Fatal("resumed run did not drain")
	}
	total := 0
	for _, lane := range tr.lanes {
		total += len(lane)
	}
	if total != 101 {
		t.Fatalf("%d events after resume, want 101", total)
	}
}

func TestShardGroupInterruptJoinsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	g := NewShardGroup(4, 3)
	tr := newShardTracer(4)
	pingPong(g, tr, 8, 10_000, 3)
	var polls atomic.Int64
	drained, interrupted := g.RunUntilCheck(1_000_000_000, 8, func() bool {
		return polls.Add(1) >= 3
	})
	if drained || !interrupted {
		t.Fatalf("drained=%v interrupted=%v, want interrupted", drained, interrupted)
	}
	waitGoroutines(t, before)
}

func TestShardGroupPanicPropagatesAndJoins(t *testing.T) {
	before := runtime.NumGoroutine()
	g := NewShardGroup(3, 2)
	g.Engine(2).AtCall(10, func(any) { panic("component exploded") }, nil)
	g.Engine(0).AtCall(5, func(any) {}, nil)
	defer func() {
		r := recover()
		sp, ok := r.(*ShardPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want *ShardPanic", r, r)
		}
		if sp.Shard != 2 || sp.Value != "component exploded" {
			t.Fatalf("ShardPanic = shard %d value %v", sp.Shard, sp.Value)
		}
		if sp.Stack == "" {
			t.Fatal("ShardPanic carries no stack")
		}
		waitGoroutines(t, before)
	}()
	g.RunUntilCheck(1_000_000, 1, nil)
	t.Fatal("run returned without panicking")
}

func TestShardGroupLookaheadViolationPanics(t *testing.T) {
	g := NewShardGroup(2, 3)
	g.Engine(0).AtCall(10, func(any) {
		// Cross-shard send 2 cycles out under lookahead 3: model bug.
		g.Post(0, 1, g.Engine(0).Now()+2, func(any) {}, nil)
	}, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead violation did not panic")
		}
		if _, ok := r.(*ShardPanic); !ok {
			t.Fatalf("recovered %T, want *ShardPanic", r)
		}
	}()
	g.RunUntilCheck(1_000, 1, nil)
}

func TestShardGroupRejectsBadConstruction(t *testing.T) {
	for _, tc := range []struct{ shards, lookahead int }{{0, 3}, {-1, 3}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewShardGroup(%d, %d) did not panic", tc.shards, tc.lookahead)
				}
			}()
			NewShardGroup(tc.shards, Time(tc.lookahead))
		}()
	}
}

func TestShardGroupCountersAndClocks(t *testing.T) {
	g := NewShardGroup(2, 3)
	tr := newShardTracer(2)
	pingPong(g, tr, 2, 10, 3)
	g.RunUntilCheck(1_000_000, 1, nil)
	if g.Windows() == 0 {
		t.Fatal("no windows recorded")
	}
	if g.Fired() == 0 {
		t.Fatal("no events counted")
	}
	if g.MaxNow() < g.Now() {
		t.Fatalf("MaxNow %d < Now %d", g.MaxNow(), g.Now())
	}
}

// waitGoroutines retries because worker goroutines finish their final
// shutdown increment slightly after RunUntilCheck returns the join.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}
