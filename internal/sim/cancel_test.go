package sim

import "testing"

// A self-rescheduling chain never drains, so only the interrupt poll (or the
// deadline) can stop RunUntilCheck.
func chain(e *Engine) {
	var tick func()
	tick = func() { e.After(1, tick) }
	e.After(1, tick)
}

func TestRunUntilCheckInterrupt(t *testing.T) {
	e := NewEngine()
	chain(e)
	polls := 0
	drained, interrupted := e.RunUntilCheck(1_000_000, 64, func() bool {
		polls++
		return polls >= 3
	})
	if drained || !interrupted {
		t.Fatalf("drained=%v interrupted=%v, want false/true", drained, interrupted)
	}
	if got := e.Fired(); got != 3*64 {
		t.Errorf("fired %d events before stopping, want %d", got, 3*64)
	}
	if e.Pending() == 0 {
		t.Error("interrupt dropped pending events")
	}
	// The engine is reusable after an interrupt: the same poll cadence
	// resumes from where it left off.
	_, interrupted = e.RunUntilCheck(1_000_000, 64, func() bool { return true })
	if !interrupted {
		t.Error("second RunUntilCheck did not interrupt")
	}
}

func TestRunUntilCheckDeadline(t *testing.T) {
	e := NewEngine()
	chain(e)
	drained, interrupted := e.RunUntilCheck(100, 64, func() bool { return false })
	if drained || interrupted {
		t.Fatalf("drained=%v interrupted=%v, want false/false at deadline", drained, interrupted)
	}
	if e.Now() != 100 {
		t.Errorf("stopped at cycle %d, want 100", e.Now())
	}
}

func TestRunUntilCheckDrains(t *testing.T) {
	e := NewEngine()
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {})
	}
	drained, interrupted := e.RunUntilCheck(1000, 1, func() bool { return false })
	if !drained || interrupted {
		t.Fatalf("drained=%v interrupted=%v, want true/false", drained, interrupted)
	}
}

// every < 1 must behave as 1, not divide-by-zero or spin unpolled.
func TestRunUntilCheckZeroEvery(t *testing.T) {
	e := NewEngine()
	chain(e)
	n := 0
	_, interrupted := e.RunUntilCheck(1_000_000, 0, func() bool { n++; return n >= 5 })
	if !interrupted || e.Fired() != 5 {
		t.Fatalf("interrupted=%v fired=%d, want true/5", interrupted, e.Fired())
	}
}
