// Conservative parallel extension of the event kernel. A ShardGroup runs K
// independent Engines — one per machine shard — in lockstep bounded time
// windows, in the classic conservative-synchronization (CMB) style:
//
//   - Every cross-shard interaction is declared to the group with Post and
//     carries a minimum latency, the *lookahead* L (for the NoC model this
//     is the per-hop router+link latency: a message physically cannot cross
//     a shard boundary faster than one hop).
//   - The group repeatedly picks the globally earliest pending work time T
//     (over all engine queues and undelivered cross-shard mail), delivers
//     the mail into destination engines, and lets all shards execute the
//     window [T, T+L-1] in parallel.
//   - An event executing at time t >= T can only produce cross-shard work
//     at t+L > T+L-1, i.e. strictly beyond the window — so no shard can
//     receive an event timestamped in its past, no matter how the
//     goroutines interleave. (internal/verify's "shard-window" model checks
//     exactly this invariant and refutes the variant that skips the drain.)
//
// Determinism: each engine is only ever advanced by one goroutine at a
// time, windows are separated by barriers, and mailed events are injected
// in the total order (delivery time, source shard, per-source sequence), so
// a sharded run is a pure function of (configuration, shard count). It is
// NOT guaranteed to be event-order identical to the serial kernel: the
// serial kernel breaks same-cycle ties by global scheduling order, which a
// parallel run cannot observe. See DESIGN.md §14 for the pinned divergence.
package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"time"
)

// crossMsg is one cross-shard event in flight: h(arg) must run on the
// destination engine at absolute cycle when.
type crossMsg struct {
	when Time
	h    Handler
	arg  any
}

// crossRef is a mailed event plus its deterministic injection key.
type crossRef struct {
	when Time
	src  int32 // source shard
	idx  int32 // per-(src,dst) send sequence within the window
	h    Handler
	arg  any
}

// ShardPanic wraps a panic raised by a component while a shard executed a
// window. The group re-raises it on the coordinating goroutine so the usual
// machine-level recovery sees one structured failure.
type ShardPanic struct {
	Shard int
	Value any
	Stack string
}

func (p *ShardPanic) String() string {
	return fmt.Sprintf("shard %d panicked: %v", p.Shard, p.Value)
}

// ShardGroup coordinates K engines advancing in conservative time windows.
// Construct with NewShardGroup, wire components to the per-shard engines,
// declare every cross-shard interaction through Post, then drive the whole
// group with RunUntilCheck. The zero value is not usable.
//
// Mailboxes are double-buffered: during a window each source shard appends
// to the "fill" side only; at the window barrier — all shards parked — the
// coordinator flips the sides, so destinations drain the quiescent side
// while sources append to the other. No lock is ever taken on the simulated
// path; the epoch/done atomics of the window barrier carry all the
// necessary happens-before edges.
type ShardGroup struct {
	engines   []*Engine
	lookahead Time

	// mail[f][src*K+dst] holds cross-shard events sent by src to dst.
	// Side g.fill is append-only for the current window; side 1-fill is
	// drained by destinations at the window start and left empty.
	mail [2][][]crossMsg
	fill int

	// postedBy[src] counts messages ever mailed by src (src-owned slot).
	postedBy []uint64

	// scratch[dst] is shard dst's reusable injection sort buffer.
	scratch [][]crossRef

	// Window barrier: the coordinator publishes windowEnd and bumps epoch
	// to release the workers; each worker executes its shard's window and
	// increments done.
	windowEnd Time
	now       Time
	epoch     atomic.Uint64
	done      atomic.Int64
	shutdown  atomic.Bool

	panics  []*ShardPanic // one slot per shard, filled on worker panic
	windows uint64        // windows executed (coordination metric)
	running bool          // a RunUntilCheck is in progress
}

// NewShardGroup builds K empty engines coupled with lookahead L (in
// cycles). Every cross-shard Post must carry at least L cycles of latency;
// L therefore also bounds the window width. shards and lookahead must be
// >= 1.
func NewShardGroup(shards int, lookahead Time) *ShardGroup {
	if shards < 1 {
		panic(fmt.Sprintf("sim: shard group needs >= 1 shards, got %d", shards))
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("sim: shard lookahead must be >= 1 cycle, got %d", lookahead))
	}
	g := &ShardGroup{
		engines:   make([]*Engine, shards),
		lookahead: lookahead,
		postedBy:  make([]uint64, shards),
		scratch:   make([][]crossRef, shards),
		panics:    make([]*ShardPanic, shards),
	}
	g.mail[0] = make([][]crossMsg, shards*shards)
	g.mail[1] = make([][]crossMsg, shards*shards)
	for i := range g.engines {
		g.engines[i] = NewEngine()
	}
	return g
}

// Shards returns the number of shards.
func (g *ShardGroup) Shards() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *ShardGroup) Engine(i int) *Engine { return g.engines[i] }

// Engines returns all shard engines in shard order.
func (g *ShardGroup) Engines() []*Engine { return g.engines }

// Lookahead returns the group's coupling latency in cycles.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// Windows returns how many time windows the group has executed — the
// coordination-overhead metric tracked by misar-bench's parallel suite.
func (g *ShardGroup) Windows() uint64 { return g.windows }

// Posted returns how many cross-shard events have been mailed.
func (g *ShardGroup) Posted() uint64 {
	var n uint64
	for _, v := range g.postedBy {
		n += v
	}
	return n
}

// Fired sums the event counts of all shards.
func (g *ShardGroup) Fired() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.Fired()
	}
	return n
}

// Now returns the current window start — the conservative global clock. All
// shard clocks are within [Now, Now+lookahead-1] while a window executes.
// Intended for diagnostics; component code uses its own engine's clock.
func (g *ShardGroup) Now() Time { return g.now }

// MaxNow returns the latest shard-local clock — the machine's completion
// cycle once the group has drained. Only meaningful between windows.
func (g *ShardGroup) MaxNow() Time {
	var t Time
	for _, e := range g.engines {
		if e.Now() > t {
			t = e.Now()
		}
	}
	return t
}

// Post schedules h(arg) at absolute cycle when on shard dst's engine. It
// must be called from code executing on shard src's engine (i.e. inside an
// event of the current window). Cross-shard sends must respect the
// lookahead: when < src.now + lookahead is a model bug and panics, because
// the destination may already have executed past when. Same-shard posts
// degenerate to a local AtCall.
func (g *ShardGroup) Post(src, dst int, when Time, h Handler, arg any) {
	if src == dst {
		g.engines[src].AtCall(when, h, arg)
		return
	}
	if now := g.engines[src].now; when < now+g.lookahead {
		panic(fmt.Sprintf("sim: cross-shard post %d->%d at %d violates lookahead %d (src now %d)",
			src, dst, when, g.lookahead, now))
	}
	k := src*len(g.engines) + dst
	g.mail[g.fill][k] = append(g.mail[g.fill][k], crossMsg{when: when, h: h, arg: arg})
	g.postedBy[src]++
}

// inject drains every quiescent-side mailbox destined to shard dst into its
// engine, in the deterministic total order (when, source shard, per-source
// sequence). Runs on shard dst's goroutine at the start of a window.
func (g *ShardGroup) inject(dst int) {
	k := len(g.engines)
	side := g.mail[g.fill^1]
	buf := g.scratch[dst][:0]
	for src := 0; src < k; src++ {
		box := side[src*k+dst]
		if len(box) == 0 {
			continue
		}
		for i, m := range box {
			buf = append(buf, crossRef{when: m.when, src: int32(src), idx: int32(i), h: m.h, arg: m.arg})
			box[i] = crossMsg{} // drop references so pooled args never pin
		}
		side[src*k+dst] = box[:0]
	}
	if len(buf) > 1 {
		sort.Slice(buf, func(a, b int) bool {
			if buf[a].when != buf[b].when {
				return buf[a].when < buf[b].when
			}
			if buf[a].src != buf[b].src {
				return buf[a].src < buf[b].src
			}
			return buf[a].idx < buf[b].idx
		})
	}
	for i := range buf {
		g.engines[dst].AtCall(buf[i].when, buf[i].h, buf[i].arg)
		buf[i] = crossRef{}
	}
	g.scratch[dst] = buf[:0]
}

// runWindow executes shard s's slice of the current window: deliver inbound
// mail, then run every local event up to (and including) the published
// window end.
func (g *ShardGroup) runWindow(s int) {
	defer func() {
		if r := recover(); r != nil {
			g.panics[s] = &ShardPanic{Shard: s, Value: r, Stack: string(debug.Stack())}
		}
	}()
	g.inject(s)
	g.engines[s].RunUntil(g.windowEnd)
}

// worker is the long-lived goroutine for shard s (s >= 1; shard 0 runs on
// the coordinating goroutine). It waits for each epoch bump with a bounded
// spin that degrades to yielding and then sleeping, so an idle or uneven
// group does not starve the shards that still have work — on a host with
// no spare hardware threads the spin phase is skipped entirely.
func (g *ShardGroup) worker(s int, spin int, seen uint64) {
	for {
		for i := 0; ; i++ {
			if e := g.epoch.Load(); e != seen {
				seen = e
				break
			}
			switch {
			case i < spin:
				// hot spin
			case i < spin+4096:
				runtime.Gosched()
			default:
				time.Sleep(20 * time.Microsecond)
			}
		}
		if g.shutdown.Load() {
			g.done.Add(1)
			return
		}
		g.runWindow(s)
		g.done.Add(1)
	}
}

// await blocks until all n workers reported the current window done, with
// the same spin/yield/sleep ladder as worker.
func (g *ShardGroup) await(n int64, spin int) {
	for i := 0; ; i++ {
		if g.done.Load() >= n {
			return
		}
		switch {
		case i < spin:
		case i < spin+4096:
			runtime.Gosched()
		default:
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// next returns the earliest pending work time across every engine queue and
// both mailbox sides. ok is false when the whole group has quiesced. Only
// called between windows, all workers parked.
func (g *ShardGroup) next() (Time, bool) {
	var t Time
	ok := false
	for _, e := range g.engines {
		if len(e.heap) > 0 {
			if w := e.heap[0].when; !ok || w < t {
				t, ok = w, true
			}
		}
	}
	for side := 0; side < 2; side++ {
		for _, box := range g.mail[side] {
			for i := range box {
				if w := box[i].when; !ok || w < t {
					t, ok = w, true
				}
			}
		}
	}
	return t, ok
}

// release resets the done count, flips the mailbox sides, and wakes the
// workers for one window (or for shutdown).
func (g *ShardGroup) release() {
	g.done.Store(0)
	g.fill ^= 1
	g.epoch.Add(1)
}

// RunUntilCheck executes windows until the group drains, the deadline is
// passed, or the interrupt poll asks to stop. interrupt (may be nil) is
// polled every `every` windows; drained and interrupted mirror
// Engine.RunUntilCheck. A component panic inside any shard is re-raised
// here as *ShardPanic.
//
// The call spawns one goroutine per extra shard and joins all of them
// before returning — also on interrupt, deadline, and component panic — so
// a cancelled sharded run leaks nothing.
func (g *ShardGroup) RunUntilCheck(deadline Time, every uint64, interrupt func() bool) (drained, interrupted bool) {
	if g.running {
		panic("sim: ShardGroup is already running")
	}
	g.running = true
	defer func() { g.running = false }()
	if every < 1 {
		every = 1
	}
	k := len(g.engines)

	// With no spare hardware threads, spinning only steals cycles from the
	// shard we are waiting for — go straight to cooperative yielding.
	spin := 128
	if runtime.GOMAXPROCS(0) <= k {
		spin = 0
	}

	if k > 1 {
		g.shutdown.Store(false)
		// The epoch baseline must be captured BEFORE spawning: on a busy
		// host a worker may not run until after the coordinator released
		// the first window, and reading the epoch itself then would make
		// it wait for a bump that already happened.
		base := g.epoch.Load()
		for s := 1; s < k; s++ {
			go g.worker(s, spin, base)
		}
		// Join the workers on every exit path, including a re-raised
		// ShardPanic: release-with-shutdown wakes them one last time. The
		// extra fill flip in release is harmless at shutdown.
		defer func() {
			g.shutdown.Store(true)
			g.release()
			g.await(int64(k-1), spin)
		}()
	}

	var sinceCheck uint64
	for {
		t, ok := g.next()
		if !ok {
			return true, false
		}
		if t > deadline {
			return false, false
		}
		g.now = t
		g.windowEnd = t + g.lookahead - 1
		if g.windowEnd > deadline {
			// Clamp so a deadline mid-window stops every shard at the same
			// cycle (RunUntil's bound is inclusive).
			g.windowEnd = deadline
		}
		g.windows++
		if k > 1 {
			g.release()
			g.runWindow(0)
			g.await(int64(k-1), spin)
		} else {
			g.fill ^= 1
			g.runWindow(0)
		}
		if p := g.firstPanic(); p != nil {
			panic(p)
		}
		if sinceCheck++; sinceCheck >= every {
			sinceCheck = 0
			if interrupt != nil && interrupt() {
				return false, true
			}
		}
	}
}

// firstPanic returns the lowest-shard recorded panic, if any.
func (g *ShardGroup) firstPanic() *ShardPanic {
	for _, p := range g.panics {
		if p != nil {
			return p
		}
	}
	return nil
}
