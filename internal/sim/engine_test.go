package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if got := e.Run(); got != 0 {
		t.Fatalf("empty run ended at %d, want 0", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 3) }) // same time: FIFO by seq
	e.At(20, func() { order = append(order, 4) })
	e.Run()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 100; i++ {
		if order[i] != i {
			t.Fatalf("same-cycle events not FIFO at %d: %v", i, order[:i+1])
		}
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 105 {
		t.Fatalf("After fired at %d, want 105", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.At(5, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine()
	n := 0
	ev := e.At(1, func() { n++ })
	e.Run()
	ev.Cancel() // must be a no-op
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(1, func() { order = append(order, 1); e.Stop() })
	e.At(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 1 {
		t.Fatalf("Stop did not halt: %v", order)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, t0 := range []Time{5, 10, 15, 20} {
		t0 := t0
		e.At(t0, func() { fired = append(fired, t0) })
	}
	if e.RunUntil(12) {
		t.Fatal("RunUntil reported drained with events pending")
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events <= 12", fired)
	}
	if !e.RunUntil(100) {
		t.Fatal("RunUntil(100) should drain")
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4", fired)
	}
}

func TestEngineChainedEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 1000 {
			e.After(1, step)
		}
	}
	e.At(0, step)
	e.Run()
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
	if e.Now() != 999 {
		t.Fatalf("Now = %d, want 999", e.Now())
	}
}

func TestEngineFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 10 {
		t.Fatalf("Fired = %d, want 10", e.Fired())
	}
}

// Cancel-at-head during RunUntil: a dead event at the queue head must not
// fire, must not advance the clock, must not count in Fired, and must not
// make RunUntil misreport drained/pending.
func TestEngineRunUntilCancelAtHead(t *testing.T) {
	e := NewEngine()
	headFired := false
	head := e.At(10, func() { headFired = true })
	var tail []Time
	e.At(20, func() { tail = append(tail, e.Now()) })
	e.At(5, func() { head.Cancel() })

	// Deadline lands between the dead head (10) and the live tail (20):
	// RunUntil must prune the head, then stop at the tail without firing it.
	if e.RunUntil(15) {
		t.Fatal("RunUntil(15) reported drained with a live event at 20")
	}
	if headFired {
		t.Fatal("cancelled head event fired")
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %d, want 5: a dead event must not advance the clock", e.Now())
	}
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1: dead events must not count as fired", e.Fired())
	}
	if !e.RunUntil(25) {
		t.Fatal("RunUntil(25) should drain")
	}
	if len(tail) != 1 || tail[0] != 20 || e.Fired() != 2 {
		t.Fatalf("tail = %v, Fired = %d; want [20], 2", tail, e.Fired())
	}
}

// A queue holding only cancelled events counts as drained, including past
// the deadline and after Stop.
func TestEngineRunUntilAllDeadDrains(t *testing.T) {
	e := NewEngine()
	evs := []Event{e.At(10, func() {}), e.At(20, func() {}), e.At(30, func() {})}
	for _, ev := range evs {
		ev.Cancel()
	}
	if !e.RunUntil(5) {
		t.Fatal("all-dead queue should report drained even before the deadline")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}

	e2 := NewEngine()
	var late Event
	e2.At(1, func() { e2.Stop(); late.Cancel() })
	late = e2.At(50, func() {})
	if !e2.RunUntil(100) {
		t.Fatal("stopped engine whose only pending event is dead should report drained")
	}
}

// Step must skip dead events without firing them or counting them.
func TestEngineStepSkipsDead(t *testing.T) {
	e := NewEngine()
	dead := e.At(3, func() { t.Error("dead event fired") })
	dead.Cancel()
	fired := false
	e.At(7, func() { fired = true })
	if !e.Step() {
		t.Fatal("Step should fire the live event")
	}
	if !fired || e.Fired() != 1 || e.Now() != 7 {
		t.Fatalf("fired=%v Fired=%d Now=%d; want true, 1, 7", fired, e.Fired(), e.Now())
	}
	if e.Step() {
		t.Fatal("queue should be empty")
	}
}

// Property: regardless of insertion order, events fire in nondecreasing time
// order, and same-time events fire in insertion order.
func TestEnginePropertyOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		type stamp struct {
			t   Time
			seq int
		}
		var fired []stamp
		for i := 0; i < int(n); i++ {
			i := i
			tt := Time(rng.Intn(50))
			e.At(tt, func() { fired = append(fired, stamp{tt, i}) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i].t < fired[i-1].t {
				return false
			}
			if fired[i].t == fired[i-1].t && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return len(fired) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: events scheduled from within events still respect ordering.
func TestEnginePropertyNestedScheduling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var last Time
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if depth <= 0 {
				return
			}
			for i := 0; i < 2; i++ {
				d := Time(rng.Intn(10))
				e.After(d, func() { spawn(depth - 1) })
			}
		}
		e.At(0, func() { spawn(6) })
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%37), func() {})
		}
		e.Run()
	}
}
