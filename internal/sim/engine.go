// Package sim provides the discrete-event simulation kernel that drives the
// entire MiSAR model. The kernel maintains a priority queue of events keyed
// by (time, sequence-number); all components — cores, caches, directories,
// routers, and the MSA/OMU — schedule work by posting events. Determinism is
// guaranteed because the kernel is single-threaded and ties on time are
// broken by insertion order.
//
// The kernel is allocation-free in steady state: events live in a free-list
// pool owned by the engine and are recycled on fire and on cancel, the
// priority queue is a hand-rolled intrusive 4-ary min-heap specialized to
// the (when, seq) key (no container/heap, no `any` boxing per operation),
// and the AtCall/AfterCall entry points let hot schedulers pass a
// (handler, arg) pair — a package-level function plus a pooled argument —
// instead of capturing state in a fresh closure per event.
package sim

import "fmt"

// Time is the simulated clock in cycles.
type Time uint64

// Handler is a scheduled callback invoked as h(arg) at the event's firing
// time. Hot paths use package-level Handler functions with pooled pointer
// arguments so scheduling allocates nothing.
type Handler func(arg any)

// closureHandler adapts the closure-based At/After API onto the
// (handler, arg) representation: the closure itself is the argument.
func closureHandler(arg any) { arg.(func())() }

// event is the pooled, heap-intrusive representation of one scheduled
// callback. Events are owned by the engine: they are recycled through a
// free list on fire and on cancel, and their callback state (h, arg) is
// cleared at release so a long-dead timer never pins captured state.
type event struct {
	when Time
	seq  uint64
	h    Handler
	arg  any
	pos  int32  // index in Engine.heap; -1 when not queued
	gen  uint64 // incremented on every release; guards stale handles
}

// Event is a cancellable handle to a scheduled event. It is a value type:
// the underlying pooled storage is recycled once the event fires or is
// cancelled, and the generation stamp makes operations through stale
// handles safe no-ops. The zero Event is a valid handle to nothing.
type Event struct {
	eng  *Engine
	p    *event
	gen  uint64
	when Time
}

// When reports the cycle at which the event fires (or fired). It remains
// valid after the event completes.
func (h Event) When() Time { return h.when }

// Pending reports whether the event is still queued: it has not fired and
// has not been cancelled.
func (h Event) Pending() bool {
	return h.p != nil && h.p.gen == h.gen && h.p.pos >= 0
}

// Cancel removes a pending event from the queue; it will not fire, does not
// advance the clock, and does not count in Fired. The event's callback and
// argument are released immediately, so a cancelled long-lived timer does
// not pin whatever state its closure captured. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (h Event) Cancel() {
	if h.p == nil || h.p.gen != h.gen || h.p.pos < 0 {
		return
	}
	h.eng.remove(h.p)
}

// Engine is the event kernel. The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	heap    []*event // intrusive 4-ary min-heap ordered by (when, seq)
	free    []*event // recycled events
	alloced uint64   // pool high-water mark: events ever allocated
	stopped bool
	fired   uint64
}

// NewEngine returns an empty kernel at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (a progress metric).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of queued events. Cancelled events leave the
// queue immediately and are not counted.
func (e *Engine) Pending() int { return len(e.heap) }

// PoolAllocated returns how many event structs the engine has ever
// allocated — the pool's high-water mark. In steady state (schedule, fire,
// cancel at a stable outstanding-event count) this stops growing: every
// operation is served from the free list.
func (e *Engine) PoolAllocated() uint64 { return e.alloced }

// get returns a recycled event or allocates a fresh one.
func (e *Engine) get() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	e.alloced++
	return &event{pos: -1}
}

// release clears an event's callback state and returns it to the free list.
// The generation bump invalidates every outstanding handle to it.
func (e *Engine) release(ev *event) {
	ev.h, ev.arg = nil, nil
	ev.pos = -1
	ev.gen++
	e.free = append(e.free, ev)
}

// less orders events by (when, seq): earlier cycle first, insertion order
// within a cycle.
func less(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// siftUp restores the heap property from index i toward the root. The
// element is held out and written once at its final position, so each level
// costs one pointer move instead of a swap.
func (e *Engine) siftUp(i int) {
	q := e.heap
	ev := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ev, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].pos = int32(i)
		i = p
	}
	q[i] = ev
	ev.pos = int32(i)
}

// siftDown restores the heap property from index i toward the leaves,
// selecting the minimum of up to four children per level.
func (e *Engine) siftDown(i int) {
	q := e.heap
	n := len(q)
	ev := q[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(q[j], q[m]) {
				m = j
			}
		}
		if !less(q[m], ev) {
			break
		}
		q[i] = q[m]
		q[i].pos = int32(i)
		i = m
	}
	q[i] = ev
	ev.pos = int32(i)
}

// push inserts ev into the heap.
func (e *Engine) push(ev *event) {
	ev.pos = int32(len(e.heap))
	e.heap = append(e.heap, ev)
	e.siftUp(len(e.heap) - 1)
}

// popMin removes and returns the earliest event. The caller must release it.
func (e *Engine) popMin() *event {
	q := e.heap
	min := q[0]
	n := len(q) - 1
	if n > 0 {
		q[0] = q[n]
		q[0].pos = 0
	}
	q[n] = nil
	e.heap = q[:n]
	if n > 1 {
		e.siftDown(0)
	}
	min.pos = -1
	return min
}

// remove deletes an interior event from the heap and recycles it.
func (e *Engine) remove(ev *event) {
	q := e.heap
	i := int(ev.pos)
	n := len(q) - 1
	if i != n {
		q[i] = q[n]
		q[i].pos = int32(i)
	}
	q[n] = nil
	e.heap = q[:n]
	if i != n && n > 1 {
		e.siftDown(i)
		e.siftUp(int(q[i].pos))
	}
	ev.pos = -1
	e.release(ev)
}

// schedule is the common entry point for all four scheduling calls.
func (e *Engine) schedule(t Time, h Handler, arg any) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	ev := e.get()
	ev.when, ev.seq, ev.h, ev.arg = t, e.seq, h, arg
	e.seq++
	e.push(ev)
	return Event{eng: e, p: ev, gen: ev.gen, when: t}
}

// At schedules fn to run at absolute cycle t. Scheduling in the past panics:
// that is always a model bug. The closure-based form allocates the closure
// at the caller; allocation-sensitive schedulers should use AtCall.
func (e *Engine) At(t Time, fn func()) Event {
	return e.schedule(t, closureHandler, fn)
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) Event {
	return e.schedule(e.now+d, closureHandler, fn)
}

// AtCall schedules h(arg) at absolute cycle t. With a package-level handler
// and a pooled pointer argument this is allocation-free: the event comes
// from the engine's pool and a pointer stored in `any` does not allocate.
func (e *Engine) AtCall(t Time, h Handler, arg any) Event {
	return e.schedule(t, h, arg)
}

// AfterCall schedules h(arg) to run d cycles from now.
func (e *Engine) AfterCall(d Time, h Handler, arg any) Event {
	return e.schedule(e.now+d, h, arg)
}

// Stop makes Run (and Step, and RunUntil) return after the current event
// completes. Stopping is sticky: the engine refuses further work until
// Resume is called, so a stopped engine can be inspected without racing
// against pending events. Pending events stay queued.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether the engine is stopped.
func (e *Engine) Stopped() bool { return e.stopped }

// Resume clears a previous Stop, allowing Step/Run/RunUntil to execute
// events again. Resuming a running engine is a no-op.
func (e *Engine) Resume() { e.stopped = false }

// Step executes the single earliest pending event. It reports false when the
// queue is empty (simulation quiesced) or the engine was stopped.
func (e *Engine) Step() bool {
	if e.stopped || len(e.heap) == 0 {
		return false
	}
	ev := e.popMin()
	e.now = ev.when
	e.fired++
	// Extract the callback and recycle the event before invoking it: the
	// handler may immediately schedule new work into the freed slot, and
	// clearing h/arg here guarantees fired events never pin captured state.
	h, arg := ev.h, ev.arg
	e.release(ev)
	h(arg)
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the final simulated time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with firing time <= deadline. It reports whether
// the queue drained (true) or the deadline was reached with work pending
// (false). Reaching the deadline with pending events usually indicates a
// deadlock or runaway workload in tests.
func (e *Engine) RunUntil(deadline Time) bool {
	for {
		if e.stopped || len(e.heap) == 0 {
			return len(e.heap) == 0
		}
		if e.heap[0].when > deadline {
			return false
		}
		e.Step()
	}
}

// RunUntilCheck is RunUntil with a periodic interrupt poll: after every
// `every` fired events it calls interrupt, and stops between events when it
// returns true. This is how caller cancellation (context.Context in
// machine.RunCtx) reaches the single-threaded kernel without putting an
// atomic load on the per-event hot path. every < 1 is treated as 1.
// interrupted is true only when the poll stopped the run; drained keeps
// RunUntil's meaning and is always false when interrupted.
func (e *Engine) RunUntilCheck(deadline Time, every uint64, interrupt func() bool) (drained, interrupted bool) {
	if every < 1 {
		every = 1
	}
	var n uint64
	for {
		if e.stopped || len(e.heap) == 0 {
			return len(e.heap) == 0, false
		}
		if e.heap[0].when > deadline {
			return false, false
		}
		e.Step()
		if n++; n >= every {
			n = 0
			if interrupt() {
				return false, true
			}
		}
	}
}
