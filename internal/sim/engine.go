// Package sim provides the discrete-event simulation kernel that drives the
// entire MiSAR model. The kernel maintains a priority queue of events keyed
// by (time, sequence-number); all components — cores, caches, directories,
// routers, and the MSA/OMU — schedule work by posting events. Determinism is
// guaranteed because the kernel is single-threaded and ties on time are
// broken by insertion order.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is the simulated clock in cycles.
type Time uint64

// Event is a callback scheduled to run at a specific cycle.
type Event struct {
	when Time
	seq  uint64
	fn   func()
	idx  int // heap index; -1 when not queued
	dead bool
}

// When reports the cycle at which the event fires (or fired).
func (e *Event) When() Time { return e.when }

// Cancel prevents a pending event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Engine is the event kernel. The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64
}

// NewEngine returns an empty kernel at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (a progress metric).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute cycle t. Scheduling in the past panics:
// that is always a model bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// pruneDead discards cancelled events at the head of the queue. Every
// queue consumer goes through this one helper, so dead events are handled
// uniformly: they never fire, never advance the clock, and never count in
// Fired — whether they are met by Step, RunUntil, or a deadline check.
func (e *Engine) pruneDead() {
	for len(e.queue) > 0 && e.queue[0].dead {
		heap.Pop(&e.queue)
	}
}

// Step executes the single earliest pending event. It reports false when the
// queue is empty (simulation quiesced) or the engine was stopped.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	e.pruneDead()
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.when
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the final simulated time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with firing time <= deadline. It reports whether
// the queue drained (true) or the deadline was reached with work pending
// (false). Reaching the deadline with pending events usually indicates a
// deadlock or runaway workload in tests.
func (e *Engine) RunUntil(deadline Time) bool {
	for {
		e.pruneDead()
		if e.stopped || len(e.queue) == 0 {
			return len(e.queue) == 0
		}
		if e.queue[0].when > deadline {
			return false
		}
		e.Step()
	}
}
