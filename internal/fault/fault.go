// Package fault is a seeded, deterministic fault injector plus a set of
// runtime safety-invariant checkers for the MiSAR machine. Both follow the
// nil-receiver-safe hook contract established by metrics.Registry and
// trace.Buffer: every method is safe to call on a nil receiver and does
// nothing, so an uninstrumented machine pays exactly one pointer comparison
// per potential injection or check site.
//
// The injector perturbs the machine at the MSA/OMU boundary the paper cares
// about (PAPER.md §3-4): forced OMU steers, artificial capacity reduction,
// spurious standby evictions (un-steers), delayed MSA acknowledgments, NoC
// per-message latency jitter, and delayed coherence replies. All decisions
// come from a splitmix64 stream seeded by Plan.Seed and consumed in event
// order, so a (workload, config, Plan) triple replays exactly.
package fault

import (
	"fmt"

	"misar/internal/metrics"
	"misar/internal/sim"
)

// Plan configures the injector. It is a pointer-free value struct — it is
// embedded in machine.Config, which the harness fingerprints with
// fmt.Sprintf("%+v", cfg) for memoization — and its zero value means "no
// faults". Rates are probabilities in 1/65536 units (65536 = always);
// delay maxima are in cycles.
type Plan struct {
	Seed uint64

	SteerRate uint32 // forced OMU steer on an otherwise-allocatable acquire
	CapRate   uint32 // artificial capacity reduction: refuse a free entry
	EvictRate uint32 // spurious un-steer: evict/revoke standby entries

	AckRate  uint32 // delay an MSA acknowledgment (slice -> core response)
	AckMax   uint32 // max extra cycles per delayed ack
	NoCRate  uint32 // jitter a NoC message's route start
	NoCMax   uint32 // max extra cycles per jittered message
	CohRate  uint32 // delay a coherence directory reply
	CohMax   uint32 // max extra cycles per delayed reply

	// TMAbortRate forces spurious TM aborts: a commit phase that acquired
	// its locks and would have committed aborts anyway (internal/tm rolls
	// this once per lock-holding commit attempt). Exercises the abort-release
	// path — the tm-commit model's abort-release rule — under load.
	TMAbortRate uint32
}

// Enabled reports whether any fault site can fire. A Plan carrying only a
// Seed is still disabled: machine.New skips injector construction entirely
// and every hook stays nil.
func (p Plan) Enabled() bool {
	return p.SteerRate > 0 || p.CapRate > 0 || p.EvictRate > 0 ||
		p.AckRate > 0 || p.NoCRate > 0 || p.CohRate > 0 || p.TMAbortRate > 0
}

// Sites returns the names of the enabled fault sites, in a fixed order.
// Used by the chaos shrinker and for report labeling.
func (p Plan) Sites() []string {
	var s []string
	if p.SteerRate > 0 {
		s = append(s, "steer")
	}
	if p.CapRate > 0 {
		s = append(s, "cap")
	}
	if p.EvictRate > 0 {
		s = append(s, "evict")
	}
	if p.AckRate > 0 {
		s = append(s, "ack")
	}
	if p.NoCRate > 0 {
		s = append(s, "noc")
	}
	if p.CohRate > 0 {
		s = append(s, "coh")
	}
	if p.TMAbortRate > 0 {
		s = append(s, "tmabort")
	}
	return s
}

// Without returns a copy of the plan with the named site disabled. Unknown
// names return the plan unchanged.
func (p Plan) Without(site string) Plan {
	switch site {
	case "steer":
		p.SteerRate = 0
	case "cap":
		p.CapRate = 0
	case "evict":
		p.EvictRate = 0
	case "ack":
		p.AckRate, p.AckMax = 0, 0
	case "noc":
		p.NoCRate, p.NoCMax = 0, 0
	case "coh":
		p.CohRate, p.CohMax = 0, 0
	case "tmabort":
		p.TMAbortRate = 0
	}
	return p
}

// DefaultPlan is the standard chaos-campaign plan: every site enabled at a
// moderate rate with short delays, seeded by seed.
func DefaultPlan(seed uint64) Plan {
	return Plan{
		Seed:      seed,
		SteerRate: 2048,  // ~3% of allocatable acquires steered
		CapRate:   2048,  // ~3% of free-entry allocations refused
		EvictRate: 1024,  // ~1.5% of MSA requests trigger a reclaim sweep
		AckRate:   4096,  // ~6% of acks delayed
		AckMax:    200,
		NoCRate:   4096,  // ~6% of messages jittered
		NoCMax:    64,
		CohRate:   4096,  // ~6% of directory replies delayed
		CohMax:    100,
		// ~12% of lock-holding TM commit attempts spuriously aborted. The
		// site only fires on runs using the TM backend (internal/tm); lock
		// and MSA campaigns never poll it, so their outcomes are unchanged.
		TMAbortRate: 8192,
	}
}

// Counts is the per-site tally of what the injector actually did.
type Counts struct {
	Steers, CapSteals, Evicts   uint64
	AckDelays, Jitters, CohDelays uint64
	TMAborts                    uint64
	DelayCycles                 uint64 // total extra cycles across all delay sites
}

// Total returns the number of discrete faults injected.
func (c Counts) Total() uint64 {
	return c.Steers + c.CapSteals + c.Evicts + c.AckDelays + c.Jitters + c.CohDelays + c.TMAborts
}

func (c Counts) String() string {
	return fmt.Sprintf("steers=%d cap=%d evicts=%d ackDelays=%d jitters=%d cohDelays=%d tmAborts=%d (+%d cycles)",
		c.Steers, c.CapSteals, c.Evicts, c.AckDelays, c.Jitters, c.CohDelays, c.TMAborts, c.DelayCycles)
}

// injMetrics are the optional registry counters, one per site. Nil-safe like
// every instrument: resolved once at attach, recorded unconditionally.
type injMetrics struct {
	steers, capSteals, evicts     *metrics.Counter
	ackDelays, jitters, cohDelays *metrics.Counter
	tmAborts                      *metrics.Counter
	delayCycles                   *metrics.Counter
}

// Injector makes the fault decisions. All methods are nil-receiver-safe: a
// nil *Injector never fires, so hook sites cost one comparison. A non-nil
// Injector is only ever used from the (single-threaded) simulation event
// loop; it is not safe for concurrent use.
type Injector struct {
	plan   Plan
	rng    uint64
	counts Counts
	met    injMetrics
}

// New builds an injector for the plan. Returns a ready injector even for a
// disabled plan (all sites then never fire); callers normally gate on
// plan.Enabled() and keep the hook nil instead.
func New(p Plan) *Injector {
	// splitmix64 recommends a non-zero odd-ish stream start; mixing the seed
	// once decorrelates small consecutive seeds.
	return &Injector{plan: p, rng: mix64(p.Seed ^ 0x9E3779B97F4A7C15)}
}

// AttachMetrics resolves the per-site counters under "fault.*". Safe on a
// nil injector or nil registry.
func (i *Injector) AttachMetrics(reg *metrics.Registry) {
	if i == nil || reg == nil {
		return
	}
	i.met = injMetrics{
		steers:      reg.Counter("fault.forced_steers"),
		capSteals:   reg.Counter("fault.capacity_steals"),
		evicts:      reg.Counter("fault.forced_evicts"),
		ackDelays:   reg.Counter("fault.ack_delays"),
		jitters:     reg.Counter("fault.noc_jitters"),
		cohDelays:   reg.Counter("fault.coh_delays"),
		tmAborts:    reg.Counter("fault.tm_aborts"),
		delayCycles: reg.Counter("fault.delay_cycles"),
	}
}

// Plan returns the plan the injector was built with (zero Plan when nil).
func (i *Injector) Plan() Plan {
	if i == nil {
		return Plan{}
	}
	return i.plan
}

// Counts returns the tally of injected faults so far (zero when nil).
func (i *Injector) Counts() Counts {
	if i == nil {
		return Counts{}
	}
	return i.counts
}

// mix64 is the splitmix64 output function.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// next advances the splitmix64 stream.
func (i *Injector) next() uint64 {
	i.rng += 0x9E3779B97F4A7C15
	return mix64(i.rng)
}

// roll consumes one random number iff rate > 0 and reports whether the site
// fires. Zero-rate sites consume nothing, so disabling one site does not
// shift the stream seen by the others — the shrinker depends on this being
// at least approximately stable.
func (i *Injector) roll(rate uint32) bool {
	if rate == 0 {
		return false
	}
	return uint32(i.next()&0xFFFF) < rate
}

// delay consumes one or two random numbers and returns 0 (no fault) or an
// extra delay in [1, max].
func (i *Injector) delay(rate, max uint32) sim.Time {
	if !i.roll(rate) || max == 0 {
		return 0
	}
	d := sim.Time(1 + i.next()%uint64(max))
	i.counts.DelayCycles += uint64(d)
	i.met.delayCycles.Add(uint64(d))
	return d
}

// ForceSteer reports whether an otherwise-allocatable acquire should be
// steered to software as if the OMU had vetoed it.
func (i *Injector) ForceSteer() bool {
	if i == nil || !i.roll(i.plan.SteerRate) {
		return false
	}
	i.counts.Steers++
	i.met.steers.Inc()
	return true
}

// ForceCapacitySteer reports whether an allocation that found a free entry
// should be refused anyway, emulating a smaller MSA slice than configured.
func (i *Injector) ForceCapacitySteer() bool {
	if i == nil || !i.roll(i.plan.CapRate) {
		return false
	}
	i.counts.CapSteals++
	i.met.capSteals.Inc()
	return true
}

// ForceEvict reports whether the slice should run a standby-reclaim sweep
// right now (a spurious un-steer: silent-acquire privileges are revoked and
// standby entries are evicted even with no capacity pressure).
func (i *Injector) ForceEvict() bool {
	if i == nil || !i.roll(i.plan.EvictRate) {
		return false
	}
	i.counts.Evicts++
	i.met.evicts.Inc()
	return true
}

// AckDelay returns the extra cycles to hold back one MSA acknowledgment
// (slice-to-core response), or 0.
func (i *Injector) AckDelay() sim.Time {
	if i == nil {
		return 0
	}
	d := i.delay(i.plan.AckRate, i.plan.AckMax)
	if d > 0 {
		i.counts.AckDelays++
		i.met.ackDelays.Inc()
	}
	return d
}

// MsgDelay returns the extra cycles to delay one NoC message's route start,
// or 0. The network clamps route starts so per-(src,dst) FIFO order is
// preserved; jitter reorders messages between pairs, never within one.
func (i *Injector) MsgDelay(src, dst int) sim.Time {
	if i == nil {
		return 0
	}
	d := i.delay(i.plan.NoCRate, i.plan.NoCMax)
	if d > 0 {
		i.counts.Jitters++
		i.met.jitters.Inc()
	}
	return d
}

// ForceTMAbort reports whether a TM commit phase that acquired its locks
// should abort anyway (spurious abort). internal/tm rolls this once per
// lock-holding commit attempt, from thread code that runs while the serial
// kernel is parked — the same single-threaded discipline as the event-loop
// sites (sharded machines reject fault plans outright, see
// machine.Validate).
func (i *Injector) ForceTMAbort() bool {
	if i == nil || !i.roll(i.plan.TMAbortRate) {
		return false
	}
	i.counts.TMAborts++
	i.met.tmAborts.Inc()
	return true
}

// CohDelay returns the extra cycles to add to one coherence directory
// reply, or 0.
func (i *Injector) CohDelay() sim.Time {
	if i == nil {
		return 0
	}
	d := i.delay(i.plan.CohRate, i.plan.CohMax)
	if d > 0 {
		i.counts.CohDelays++
		i.met.cohDelays.Inc()
	}
	return d
}
