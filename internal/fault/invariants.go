package fault

// Kinds returns every violation class the runtime checker can emit, in
// declaration order. internal/verify's consistency tests iterate this to
// prove the kind <-> model mapping is total in both directions.
func Kinds() []ViolationKind {
	return []ViolationKind{
		ViolationExclusivity,
		ViolationMutex,
		ViolationLockWorld,
		ViolationBarrierEpoch,
		ViolationBarrierWorld,
		ViolationShardDelivery,
		ViolationTMCommitOverlap,
		ViolationTMAtomicity,
	}
}

// ModelsFor names the internal/verify protocol models that certify the
// invariant a violation kind reports against. The mapping is maintained by
// hand here (fault must stay import-free of verify); the consistency test
// in internal/verify asserts it agrees exactly with the Invariants each
// shipped model declares, so drift on either side fails tier-1.
func ModelsFor(k ViolationKind) []string {
	switch k {
	case ViolationExclusivity:
		return []string{"omu-exclusivity"}
	case ViolationMutex:
		return []string{"mesi", "msa-lock-mutex"}
	case ViolationLockWorld:
		return []string{"msa-lock-mutex"}
	case ViolationBarrierEpoch, ViolationBarrierWorld:
		return []string{"barrier-epoch"}
	case ViolationShardDelivery:
		return []string{"window-protocol"}
	case ViolationTMCommitOverlap, ViolationTMAtomicity:
		return []string{"tm-commit"}
	}
	return nil
}
