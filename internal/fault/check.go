package fault

import (
	"fmt"
	"sort"
	"sync"

	"misar/internal/memory"
	"misar/internal/metrics"
	"misar/internal/sim"
)

// World says which implementation of a synchronization variable an event
// came from: the hardware MSA or the software fallback runtime.
type World uint8

const (
	WorldHW World = iota
	WorldSW
)

func (w World) String() string {
	if w == WorldHW {
		return "HW"
	}
	return "SW"
}

// ViolationKind classifies a broken safety invariant.
type ViolationKind uint8

const (
	// ViolationExclusivity: an address became live in an MSA entry while
	// threads were still active in its software path — the OMU property of
	// PAPER.md §3.2 ("the hardware and software worlds never handle the
	// same variable concurrently").
	ViolationExclusivity ViolationKind = iota
	// ViolationMutex: a lock was acquired while already held, or released
	// while free.
	ViolationMutex
	// ViolationLockWorld: a lock was released from a different world than
	// it was acquired in — the HW/SW split the OMU exists to prevent.
	ViolationLockWorld
	// ViolationBarrierEpoch: a thread arrived twice in one barrier epoch,
	// an epoch overfilled, or a release fired with the wrong arrival count.
	ViolationBarrierEpoch
	// ViolationBarrierWorld: one barrier epoch collected arrivals from both
	// the MSA and the software barrier — a split episode that deadlocks
	// (each side waits for the full goal).
	ViolationBarrierWorld
	// ViolationShardDelivery: a cross-shard NoC message arrived at a
	// destination shard carrying a timestamp behind an earlier arrival on
	// that shard — the conservative parallel kernel's no-straggler property
	// (every delivery lands in the receiver's future) broken at runtime.
	ViolationShardDelivery
	// ViolationTMCommitOverlap: two in-flight TM commit phases held the same
	// word's commit lock at once — conflicting write sets were not
	// serialized (the tm-commit model's two-commit-writers predicate), or a
	// commit lock was leaked/released while free (its lock-leak predicate).
	ViolationTMCommitOverlap
	// ViolationTMAtomicity: a transaction committed against a read snapshot
	// that a concurrent committed write had invalidated — the atomicity
	// read-set validation exists to guarantee (the tm-commit model's
	// stale-commit predicate).
	ViolationTMAtomicity
)

func (k ViolationKind) String() string {
	switch k {
	case ViolationExclusivity:
		return "omu-exclusivity"
	case ViolationMutex:
		return "mutual-exclusion"
	case ViolationLockWorld:
		return "lock-world-split"
	case ViolationBarrierEpoch:
		return "barrier-epoch"
	case ViolationBarrierWorld:
		return "barrier-world-split"
	case ViolationShardDelivery:
		return "shard-delivery"
	case ViolationTMCommitOverlap:
		return "tm-commit-overlap"
	case ViolationTMAtomicity:
		return "tm-atomicity"
	}
	return "unknown"
}

// Violation is one detected invariant breach.
type Violation struct {
	Kind   ViolationKind
	Addr   memory.Addr
	At     sim.Time
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[cycle %d] %s at %#x: %s", v.At, v.Kind, v.Addr, v.Detail)
}

// maxViolations bounds the recorded list; a broken machine can breach an
// invariant on every operation and we only need the first few for triage.
const maxViolations = 64

type lockHold struct {
	holder int // core id (HW) or thread id (SW)
	world  World
}

type barrierEpoch struct {
	goal    int
	world   World
	split   bool // already reported a world split this epoch
	arrived map[int]bool
}

// Checker verifies the paper's safety invariants online, fed by the MSA
// slices, the cores, and the software sync runtime. All methods are
// nil-receiver-safe and do nothing on nil. It performs pure Go bookkeeping —
// no simulated operations, no event scheduling — so an attached checker is
// timing-invisible: cycle counts are identical with it on or off.
//
// On a serial machine it is driven only from the simulation's
// single-threaded world (kernel event handlers, and thread code that runs
// while the kernel is parked on the synchronous handoff channel), so it
// needs no locking. A sharded machine feeds it from every shard goroutine
// concurrently; Synchronize installs an internal mutex for that case. The
// lock affects only host wall-clock, never simulated timing.
type Checker struct {
	now        func() sim.Time
	mu         *sync.Mutex // nil on serial machines; see Synchronize
	violations []Violation
	count      *metrics.Counter

	swLevel map[memory.Addr]int         // threads active in the SW path, per address
	locks   map[memory.Addr]lockHold    // currently-held locks
	lockWts map[memory.Addr]map[int]World // threads waiting for a lock in SW
	condWts map[memory.Addr]map[int]bool  // threads waiting on a SW condvar
	epochs  map[memory.Addr]*barrierEpoch
	shardHWM map[int]sim.Time // per-shard high-water cross-shard delivery timestamp

	// TM shadow state (see internal/tm and the tm-commit model): a
	// committed-write generation per word, each in-flight transaction's
	// read snapshots of those generations, and the commit-lock holders.
	tmGen    map[memory.Addr]uint64
	tmReads  map[int]map[memory.Addr]uint64 // thread id -> word -> generation at first read
	tmCommit map[memory.Addr]int            // word -> thread id holding its commit lock
}

// NewChecker builds a checker; now supplies the simulation clock for
// violation timestamps (nil is allowed and stamps 0).
func NewChecker(now func() sim.Time) *Checker {
	return &Checker{
		now:     now,
		swLevel: make(map[memory.Addr]int),
		locks:   make(map[memory.Addr]lockHold),
		lockWts: make(map[memory.Addr]map[int]World),
		condWts: make(map[memory.Addr]map[int]bool),
		epochs:  make(map[memory.Addr]*barrierEpoch),
		shardHWM: make(map[int]sim.Time),
		tmGen:    make(map[memory.Addr]uint64),
		tmReads:  make(map[int]map[memory.Addr]uint64),
		tmCommit: make(map[memory.Addr]int),
	}
}

// ShardDelivery records a cross-shard NoC arrival at a destination shard
// with the message's scheduled timestamp. The conservative kernel delivers
// each shard's cross-shard messages in non-decreasing timestamp order
// (every injection lands at or beyond the shard's window start), so a
// timestamp behind the shard's high-water mark is a straggler — the runtime
// shadow of the window-protocol model's no-straggler property.
func (c *Checker) ShardDelivery(shard int, when sim.Time) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if hwm, ok := c.shardHWM[shard]; ok && when < hwm {
		c.violate(ViolationShardDelivery, 0,
			"shard %d delivery at t=%d behind high-water t=%d (straggler)", shard, when, hwm)
		return
	}
	c.shardHWM[shard] = when
}

// Synchronize guards every checker method with a mutex, for machines that
// feed the checker from multiple shard goroutines. Call before the run
// starts. Safe on a nil checker.
func (c *Checker) Synchronize() {
	if c != nil {
		c.mu = new(sync.Mutex)
	}
}

func (c *Checker) lock() {
	if c.mu != nil {
		c.mu.Lock()
	}
}

func (c *Checker) unlock() {
	if c.mu != nil {
		c.mu.Unlock()
	}
}

// AttachMetrics resolves the violation counter. Safe on nil checker/registry.
func (c *Checker) AttachMetrics(reg *metrics.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.count = reg.Counter("fault.violations")
}

func (c *Checker) violate(kind ViolationKind, addr memory.Addr, format string, args ...any) {
	c.count.Inc()
	if len(c.violations) >= maxViolations {
		return
	}
	var at sim.Time
	if c.now != nil {
		at = c.now()
	}
	c.violations = append(c.violations, Violation{
		Kind: kind, Addr: addr, At: at, Detail: fmt.Sprintf(format, args...),
	})
}

// Violations returns the recorded breaches (nil on a nil checker).
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	c.lock()
	defer c.unlock()
	return c.violations
}

// SWEnter records a thread becoming active in the software path of addr
// (mirrors an OMU counter increment, but exact per address — untagged OMU
// counters alias, the shadow does not). No invariant is asserted here: the
// protocol legally pre-charges the OMU while an entry is still draining
// (lock-abort and condition-suspend flows).
func (c *Checker) SWEnter(addr memory.Addr) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	c.swLevel[addr]++
}

// SWExit records a thread leaving the software path of addr.
func (c *Checker) SWExit(addr memory.Addr) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if c.swLevel[addr] <= 0 {
		c.violate(ViolationExclusivity, addr, "SW-activity underflow (exit without enter)")
		return
	}
	c.swLevel[addr]--
	if c.swLevel[addr] == 0 {
		delete(c.swLevel, addr)
	}
}

// SWLevel returns the exact software-activity level for addr.
func (c *Checker) SWLevel(addr memory.Addr) int {
	if c == nil {
		return 0
	}
	c.lock()
	defer c.unlock()
	return c.swLevel[addr]
}

// HWAlloc asserts the OMU exclusivity property at the moment an MSA entry
// is allocated: no thread may still be active in the software path of the
// same address. This is the check the UnsafeNoOMUCheck test toggle defeats
// upstream — and the one that then catches it.
func (c *Checker) HWAlloc(addr memory.Addr) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if lvl := c.swLevel[addr]; lvl > 0 {
		c.violate(ViolationExclusivity, addr,
			"MSA entry allocated while %d thread(s) active in the software path", lvl)
	}
}

// LockWaiting records id starting to wait for addr in world (software spin
// loops register here; hardware waiters are visible through the MSA entry
// wait lists and core outstanding-op state instead, but SW registration
// feeds the watchdog's wait-for graph).
func (c *Checker) LockWaiting(addr memory.Addr, id int, world World) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	w := c.lockWts[addr]
	if w == nil {
		w = make(map[int]World)
		c.lockWts[addr] = w
	}
	w[id] = world
}

// LockAcquired records id taking the lock at addr in world and asserts
// mutual exclusion. Re-registration by the same (holder, world) is a no-op
// so idempotent paths (silent re-acquire seen by both core and slice in
// some configs) stay quiet.
func (c *Checker) LockAcquired(addr memory.Addr, id int, world World) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if w := c.lockWts[addr]; w != nil {
		delete(w, id)
		if len(w) == 0 {
			delete(c.lockWts, addr)
		}
	}
	if h, held := c.locks[addr]; held {
		if h.holder == id && h.world == world {
			return
		}
		c.violate(ViolationMutex, addr,
			"acquired by %s:%d while held by %s:%d", world, id, h.world, h.holder)
	}
	c.locks[addr] = lockHold{holder: id, world: world}
}

// LockReleased records the lock at addr being released from world and
// asserts it was held, and held by the same world.
func (c *Checker) LockReleased(addr memory.Addr, world World) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	h, held := c.locks[addr]
	if !held {
		c.violate(ViolationMutex, addr, "released while free (%s side)", world)
		return
	}
	if h.world != world {
		c.violate(ViolationLockWorld, addr,
			"acquired in %s by %d but released in %s", h.world, h.holder, world)
	}
	delete(c.locks, addr)
}

// BarrierArrive records id reaching the barrier at addr in world and
// asserts epoch separation: no double arrivals, no overfilled epochs, and —
// the OMU-failure signature — no epoch mixing HW and SW arrivals.
func (c *Checker) BarrierArrive(addr memory.Addr, id, goal int, world World) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	ep := c.epochs[addr]
	if ep == nil {
		ep = &barrierEpoch{goal: goal, world: world, arrived: make(map[int]bool)}
		c.epochs[addr] = ep
	}
	if ep.world != world && !ep.split {
		ep.split = true
		c.violate(ViolationBarrierWorld, addr,
			"epoch started in %s (%d arrived) but %s:%d also arrived", ep.world, len(ep.arrived), world, id)
	}
	if ep.arrived[id] {
		c.violate(ViolationBarrierEpoch, addr,
			"%s:%d arrived twice in one epoch", world, id)
		return
	}
	ep.arrived[id] = true
	if len(ep.arrived) > ep.goal {
		c.violate(ViolationBarrierEpoch, addr,
			"epoch overfull: %d arrivals for goal %d", len(ep.arrived), ep.goal)
	}
}

// BarrierRelease records the barrier at addr releasing its epoch and
// asserts the arrival count matched the goal.
func (c *Checker) BarrierRelease(addr memory.Addr) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	ep := c.epochs[addr]
	if ep == nil {
		c.violate(ViolationBarrierEpoch, addr, "release with no open epoch")
		return
	}
	if len(ep.arrived) != ep.goal && !ep.split {
		c.violate(ViolationBarrierEpoch, addr,
			"released with %d/%d arrivals", len(ep.arrived), ep.goal)
	}
	delete(c.epochs, addr)
}

// BarrierAbort records the MSA abandoning the barrier episode at addr
// (suspend-triggered abort, §4.2.2): waiters restart in software, so the
// epoch bookkeeping resets.
func (c *Checker) BarrierAbort(addr memory.Addr) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	delete(c.epochs, addr)
}

// CondWaiting records id blocking on the software path of condvar addr.
// Not an invariant — it feeds the watchdog's wait-for graph.
func (c *Checker) CondWaiting(addr memory.Addr, id int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	w := c.condWts[addr]
	if w == nil {
		w = make(map[int]bool)
		c.condWts[addr] = w
	}
	w[id] = true
}

// CondWoken records id leaving the software wait on condvar addr.
func (c *Checker) CondWoken(addr memory.Addr, id int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if w := c.condWts[addr]; w != nil {
		delete(w, id)
		if len(w) == 0 {
			delete(c.condWts, addr)
		}
	}
}

// Waiter is one blocked agent in a snapshot.
type Waiter struct {
	ID    int
	World World
}

// LockState is the snapshot of one tracked lock for diagnosis.
type LockState struct {
	Addr    memory.Addr
	Held    bool
	Holder  int
	World   World
	Waiters []Waiter
}

// BarrierState is the snapshot of one open barrier epoch for diagnosis.
type BarrierState struct {
	Addr    memory.Addr
	Goal    int
	World   World
	Arrived []int
}

// CondState is the snapshot of one software condvar wait set for diagnosis.
type CondState struct {
	Addr    memory.Addr
	Waiters []int
}

// LockStates returns all locks that are held or waited on, sorted by
// address. Used by the liveness watchdog.
func (c *Checker) LockStates() []LockState {
	if c == nil {
		return nil
	}
	c.lock()
	defer c.unlock()
	addrs := make(map[memory.Addr]bool)
	for a := range c.locks {
		addrs[a] = true
	}
	for a := range c.lockWts {
		addrs[a] = true
	}
	out := make([]LockState, 0, len(addrs))
	for a := range addrs {
		st := LockState{Addr: a}
		if h, held := c.locks[a]; held {
			st.Held, st.Holder, st.World = true, h.holder, h.world
		}
		for id, w := range c.lockWts[a] {
			st.Waiters = append(st.Waiters, Waiter{ID: id, World: w})
		}
		sort.Slice(st.Waiters, func(i, j int) bool { return st.Waiters[i].ID < st.Waiters[j].ID })
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// BarrierStates returns all open barrier epochs, sorted by address.
func (c *Checker) BarrierStates() []BarrierState {
	if c == nil {
		return nil
	}
	c.lock()
	defer c.unlock()
	out := make([]BarrierState, 0, len(c.epochs))
	for a, ep := range c.epochs {
		st := BarrierState{Addr: a, Goal: ep.goal, World: ep.world}
		for id := range ep.arrived {
			st.Arrived = append(st.Arrived, id)
		}
		sort.Ints(st.Arrived)
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// CondStates returns all software condvar wait sets, sorted by address.
func (c *Checker) CondStates() []CondState {
	if c == nil {
		return nil
	}
	c.lock()
	defer c.unlock()
	out := make([]CondState, 0, len(c.condWts))
	for a, w := range c.condWts {
		st := CondState{Addr: a}
		for id := range w {
			st.Waiters = append(st.Waiters, id)
		}
		sort.Ints(st.Waiters)
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// --- TM shadow (internal/tm, certified by the tm-commit model) ---
//
// The checker keeps its own notion of "which committed write does this
// transaction's read reflect": a per-word generation bumped exactly once per
// committed writer, at the writer's commit decision. Each hook below is
// invoked from transaction code immediately after one specific simulated
// operation, so on a serial machine it is atomic with that operation:
//
//   TMRead        with TryRead's second (validating) lockword load
//   TMCommitLock  with the commit phase's acquiring CAS
//   TMValidated   with a successful validation re-load of one read word
//   TMCommit      with the clock FetchAdd (validated=false: the wv==rv+1
//                 fast path, or a broken variant that skipped validation)
//                 or the last validation load (validated=true)
//   TMCommitUnlock BEFORE the releasing store is issued (commit and abort)
//
// Under that placement the correct TL2 protocol never trips the checks (a
// writer's generation bump happens strictly inside its commit-lock hold, so
// any read that validates saw either the pre-acquire or post-release word),
// while skipped or broken validation surfaces as ViolationTMAtomicity and
// overlapping commit phases as ViolationTMCommitOverlap.
//
// Deferred completions: a thread suspension (cpu.Complex.Suspend) parks a
// thread AT an operation boundary with the result held until Resume — the
// operation's architectural effect lands at commit time, but the thread code
// carrying the hook runs arbitrarily later. Each hook therefore linearizes
// somewhere between its preceding operation's commit and its following
// operation's issue. The commit-lock shadow is exact under that interval
// semantics because TMCommitUnlock precedes the releasing store's issue: a
// foreign CAS succeeds only after the release commits, so shadow releases
// always order before foreign shadow acquires. The generation-freshness
// checks (TMValidated, unvalidated TMCommit) compare against tmGen at hook
// time and so assume no foreign commit slips between an operation's commit
// and its hook — true whenever no thread is suspended mid-transaction, which
// holds for every certification test and for the chaos TM campaigns (their
// disturbance schedule is disabled in TM mode for exactly this reason).

// TMRead records tid's first read of word a, snapshotting the word's
// committed-write generation. Later reads of the same word keep the first
// snapshot (the strictest sound choice: the transaction's outcome must be
// consistent with its earliest read).
func (c *Checker) TMRead(tid int, a memory.Addr) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	r := c.tmReads[tid]
	if r == nil {
		r = make(map[memory.Addr]uint64)
		c.tmReads[tid] = r
	}
	if _, seen := r[a]; !seen {
		r[a] = c.tmGen[a]
	}
}

// TMCommitLock records tid's commit phase acquiring word a's commit lock
// and asserts no other in-flight commit phase holds it.
func (c *Checker) TMCommitLock(a memory.Addr, tid int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if holder, held := c.tmCommit[a]; held {
		c.violate(ViolationTMCommitOverlap, a,
			"commit lock acquired by txn %d while held by txn %d", tid, holder)
	}
	c.tmCommit[a] = tid
}

// TMCommitUnlock records tid's commit phase releasing word a's commit lock
// (write-back and abort paths both end here).
func (c *Checker) TMCommitUnlock(a memory.Addr, tid int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	holder, held := c.tmCommit[a]
	if !held {
		c.violate(ViolationTMCommitOverlap, a,
			"commit lock released by txn %d while free", tid)
		return
	}
	if holder == tid {
		delete(c.tmCommit, a)
	}
}

// TMValidated records tid successfully re-validating its read of word a at
// commit and asserts no writer committed to a since the read.
func (c *Checker) TMValidated(tid int, a memory.Addr) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if snap, seen := c.tmReads[tid][a]; seen && c.tmGen[a] != snap {
		c.violate(ViolationTMAtomicity, a,
			"txn %d validated a read of generation %d but generation is %d", tid, snap, c.tmGen[a])
	}
}

// TMCommit records tid committing with write set written. When validated is
// false (the wv==rv+1 fast path — or a variant that skipped validation) the
// whole read set is asserted fresh here instead of per-word TMValidated
// calls. Every written word's generation advances, invalidating other
// transactions' snapshots of it.
func (c *Checker) TMCommit(tid int, validated bool, written []memory.Addr) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	if !validated {
		for a, snap := range c.tmReads[tid] {
			if c.tmGen[a] != snap {
				c.violate(ViolationTMAtomicity, a,
					"txn %d committed without validation over a stale read (generation %d, now %d)",
					tid, snap, c.tmGen[a])
			}
		}
	}
	for _, a := range written {
		c.tmGen[a]++
	}
	delete(c.tmReads, tid)
}

// TMAbort discards tid's read snapshots (the transaction will retry fresh).
func (c *Checker) TMAbort(tid int) {
	if c == nil {
		return
	}
	c.lock()
	defer c.unlock()
	delete(c.tmReads, tid)
}
