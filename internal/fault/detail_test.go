package fault

import (
	"strings"
	"testing"

	"misar/internal/memory"
)

// TestViolationDetailsNameTheEvidence sweeps every violate() call site and
// pins the triage contract: each recorded violation carries the faulted
// address, and its detail names the concrete entities involved — holder ids
// and worlds for locks, arrival counts and goals for barriers, activity
// levels for the OMU shadow. A violation that only says "invariant broken"
// is useless to the chaos shrinker's human consumer.
func TestViolationDetailsNameTheEvidence(t *testing.T) {
	const addr = memory.Addr(0x4bc0)
	cases := []struct {
		name  string
		kind  ViolationKind
		drive func(c *Checker)
		want  []string // substrings the Detail must contain
	}{
		{
			name: "hw-alloc-over-sw",
			kind: ViolationExclusivity,
			drive: func(c *Checker) {
				c.SWEnter(addr)
				c.SWEnter(addr)
				c.HWAlloc(addr)
			},
			want: []string{"2 thread(s)", "software path"},
		},
		{
			name:  "sw-exit-underflow",
			kind:  ViolationExclusivity,
			drive: func(c *Checker) { c.SWExit(addr) },
			want:  []string{"underflow"},
		},
		{
			name: "double-acquire",
			kind: ViolationMutex,
			drive: func(c *Checker) {
				c.LockAcquired(addr, 3, WorldHW)
				c.LockAcquired(addr, 7, WorldSW)
			},
			want: []string{"SW:7", "HW:3"}, // both claimants, with worlds
		},
		{
			name:  "release-while-free",
			kind:  ViolationMutex,
			drive: func(c *Checker) { c.LockReleased(addr, WorldSW) },
			want:  []string{"free", "SW"},
		},
		{
			name: "world-split-release",
			kind: ViolationLockWorld,
			drive: func(c *Checker) {
				c.LockAcquired(addr, 5, WorldHW)
				c.LockReleased(addr, WorldSW)
			},
			want: []string{"HW", "5", "SW"}, // acquiring world+holder, releasing world
		},
		{
			name: "double-arrival",
			kind: ViolationBarrierEpoch,
			drive: func(c *Checker) {
				c.BarrierArrive(addr, 4, 3, WorldHW)
				c.BarrierArrive(addr, 4, 3, WorldHW)
			},
			want: []string{"HW:4", "twice"},
		},
		{
			name: "epoch-overfull",
			kind: ViolationBarrierEpoch,
			drive: func(c *Checker) {
				c.BarrierArrive(addr, 0, 1, WorldHW)
				c.BarrierArrive(addr, 1, 1, WorldHW)
			},
			want: []string{"2 arrivals", "goal 1"},
		},
		{
			name:  "release-without-epoch",
			kind:  ViolationBarrierEpoch,
			drive: func(c *Checker) { c.BarrierRelease(addr) },
			want:  []string{"no open epoch"},
		},
		{
			name: "short-release",
			kind: ViolationBarrierEpoch,
			drive: func(c *Checker) {
				c.BarrierArrive(addr, 0, 3, WorldHW)
				c.BarrierRelease(addr)
			},
			want: []string{"1/3 arrivals"},
		},
		{
			name: "world-split-epoch",
			kind: ViolationBarrierWorld,
			drive: func(c *Checker) {
				c.BarrierArrive(addr, 0, 2, WorldHW)
				c.BarrierArrive(addr, 1, 2, WorldSW)
			},
			want: []string{"HW", "SW:1", "1 arrived"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestChecker()
			tc.drive(c)
			var v *Violation
			for i := range c.Violations() {
				if c.Violations()[i].Kind == tc.kind {
					v = &c.Violations()[i]
					break
				}
			}
			if v == nil {
				t.Fatalf("no %v violation recorded: %v", tc.kind, c.Violations())
			}
			if v.Addr != addr {
				t.Errorf("violation lost its address: got %#x want %#x", v.Addr, addr)
			}
			for _, sub := range tc.want {
				if !strings.Contains(v.Detail, sub) {
					t.Errorf("detail %q does not name %q", v.Detail, sub)
				}
			}
			if s := v.String(); !strings.Contains(s, "0x4bc0") || !strings.Contains(s, tc.kind.String()) {
				t.Errorf("String() %q must carry the address and kind name", s)
			}
			if v.At == 0 {
				t.Error("violation not timestamped from the simulation clock")
			}
		})
	}
}

// TestKindsAndModelsForAreTotal: every kind has a String name that is not
// "unknown" and maps to at least one certifying model; the verify-side
// agreement is asserted in internal/verify's consistency test.
func TestKindsAndModelsForAreTotal(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[k.String()] {
			t.Errorf("duplicate kind name %q", k)
		}
		seen[k.String()] = true
		if len(ModelsFor(k)) == 0 {
			t.Errorf("kind %q maps to no certifying model", k)
		}
	}
	if ModelsFor(ViolationKind(250)) != nil {
		t.Error("unknown kind should map to no models")
	}
}
