package fault

import (
	"testing"

	"misar/internal/memory"
	"misar/internal/metrics"
	"misar/internal/sim"
)

func newTestChecker() *Checker {
	t := sim.Time(0)
	return NewChecker(func() sim.Time { t++; return t })
}

func kinds(c *Checker) map[ViolationKind]int {
	m := map[ViolationKind]int{}
	for _, v := range c.Violations() {
		m[v.Kind]++
	}
	return m
}

// TestNilCheckerIsInert: every recording and snapshot method must be a safe
// no-op on a nil *Checker (the disabled machine's configuration).
func TestNilCheckerIsInert(t *testing.T) {
	var c *Checker
	c.AttachMetrics(metrics.NewRegistry())
	c.SWEnter(1 << 6)
	c.SWExit(1 << 6)
	c.HWAlloc(1 << 6)
	c.LockWaiting(1<<6, 0, WorldSW)
	c.LockAcquired(1<<6, 0, WorldSW)
	c.LockReleased(1<<6, WorldSW)
	c.BarrierArrive(2<<6, 0, 2, WorldHW)
	c.BarrierRelease(2 << 6)
	c.BarrierAbort(2 << 6)
	c.CondWaiting(3<<6, 0)
	c.CondWoken(3<<6, 0)
	if c.Violations() != nil || c.SWLevel(1<<6) != 0 ||
		c.LockStates() != nil || c.BarrierStates() != nil || c.CondStates() != nil {
		t.Error("nil checker returned state")
	}
}

func TestExclusivityViolation(t *testing.T) {
	c := newTestChecker()
	a := memory.Addr(0x1000)
	c.SWEnter(a)
	c.HWAlloc(a) // MSA entry over a live SW episode — the broken-OMU signature
	if kinds(c)[ViolationExclusivity] != 1 {
		t.Fatalf("want 1 exclusivity violation, got %v", c.Violations())
	}
	c.SWExit(a)
	c.HWAlloc(a) // now legal
	if n := len(c.Violations()); n != 1 {
		t.Fatalf("legal alloc recorded a violation: %v", c.Violations())
	}
	// Exit without enter underflows.
	c.SWExit(a)
	if kinds(c)[ViolationExclusivity] != 2 {
		t.Fatalf("underflow not caught: %v", c.Violations())
	}
}

func TestMutexViolations(t *testing.T) {
	c := newTestChecker()
	a := memory.Addr(0x2000)
	c.LockAcquired(a, 1, WorldHW)
	c.LockAcquired(a, 1, WorldHW) // idempotent re-registration: silent
	if len(c.Violations()) != 0 {
		t.Fatalf("idempotent re-acquire flagged: %v", c.Violations())
	}
	c.LockAcquired(a, 2, WorldHW) // double grant
	if kinds(c)[ViolationMutex] != 1 {
		t.Fatalf("double grant not caught: %v", c.Violations())
	}
	c.LockReleased(a, WorldHW)
	c.LockReleased(a, WorldHW) // release while free
	if kinds(c)[ViolationMutex] != 2 {
		t.Fatalf("free release not caught: %v", c.Violations())
	}
}

func TestLockWorldSplit(t *testing.T) {
	c := newTestChecker()
	a := memory.Addr(0x3000)
	c.LockAcquired(a, 1, WorldHW)
	c.LockReleased(a, WorldSW) // released by the wrong world
	if kinds(c)[ViolationLockWorld] != 1 {
		t.Fatalf("world split not caught: %v", c.Violations())
	}
}

func TestBarrierEpochViolations(t *testing.T) {
	c := newTestChecker()
	a := memory.Addr(0x4000)
	c.BarrierArrive(a, 0, 2, WorldHW)
	c.BarrierArrive(a, 0, 2, WorldHW) // double arrival
	if kinds(c)[ViolationBarrierEpoch] != 1 {
		t.Fatalf("double arrival not caught: %v", c.Violations())
	}
	c.BarrierArrive(a, 1, 2, WorldHW)
	c.BarrierArrive(a, 2, 2, WorldHW) // overfull
	if kinds(c)[ViolationBarrierEpoch] != 2 {
		t.Fatalf("overfull epoch not caught: %v", c.Violations())
	}
	c.BarrierRelease(a) // count mismatch at release (3/2): one more
	c.BarrierRelease(a) // no open epoch
	if kinds(c)[ViolationBarrierEpoch] != 4 {
		t.Fatalf("spurious release not caught: %v", c.Violations())
	}
	// Underfull release.
	c.BarrierArrive(a, 0, 2, WorldHW)
	c.BarrierRelease(a)
	if kinds(c)[ViolationBarrierEpoch] != 5 {
		t.Fatalf("underfull release not caught: %v", c.Violations())
	}
}

func TestBarrierWorldSplit(t *testing.T) {
	c := newTestChecker()
	a := memory.Addr(0x5000)
	c.BarrierArrive(a, 0, 3, WorldHW)
	c.BarrierArrive(a, 1, 3, WorldSW) // the deadlocking split episode
	c.BarrierArrive(a, 2, 3, WorldSW) // reported once per epoch
	if got := kinds(c); got[ViolationBarrierWorld] != 1 {
		t.Fatalf("want exactly 1 world-split violation, got %v", c.Violations())
	}
	// An aborted episode resets cleanly: the next epoch may pick either world.
	c.BarrierAbort(a)
	c.BarrierArrive(a, 0, 3, WorldSW)
	if kinds(c)[ViolationBarrierWorld] != 1 {
		t.Fatalf("post-abort arrival flagged: %v", c.Violations())
	}
}

func TestCheckerSnapshotsAndMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	c := newTestChecker()
	c.AttachMetrics(reg)
	lock := memory.Addr(0x6000)
	bar := memory.Addr(0x7000)
	cond := memory.Addr(0x8000)
	c.LockAcquired(lock, 3, WorldSW)
	c.LockWaiting(lock, 5, WorldSW)
	c.BarrierArrive(bar, 1, 4, WorldSW)
	c.CondWaiting(cond, 2)

	ls := c.LockStates()
	if len(ls) != 1 || !ls[0].Held || ls[0].Holder != 3 || len(ls[0].Waiters) != 1 || ls[0].Waiters[0].ID != 5 {
		t.Fatalf("lock snapshot wrong: %+v", ls)
	}
	bs := c.BarrierStates()
	if len(bs) != 1 || bs[0].Goal != 4 || len(bs[0].Arrived) != 1 || bs[0].Arrived[0] != 1 {
		t.Fatalf("barrier snapshot wrong: %+v", bs)
	}
	cs := c.CondStates()
	if len(cs) != 1 || len(cs[0].Waiters) != 1 || cs[0].Waiters[0] != 2 {
		t.Fatalf("cond snapshot wrong: %+v", cs)
	}

	c.LockReleased(lock, WorldHW) // world split -> counted in metrics
	if v := reg.Counter("fault.violations").Value(); v != 1 {
		t.Fatalf("fault.violations = %d, want 1", v)
	}
}

// TestViolationCap: a machine breaching on every operation must not grow the
// record unboundedly; the metric keeps the true count.
func TestViolationCap(t *testing.T) {
	reg := metrics.NewRegistry()
	c := newTestChecker()
	c.AttachMetrics(reg)
	for i := 0; i < maxViolations+50; i++ {
		c.LockReleased(memory.Addr(0x9000), WorldSW) // always free: violation
	}
	if n := len(c.Violations()); n != maxViolations {
		t.Fatalf("recorded %d violations, want cap %d", n, maxViolations)
	}
	if v := reg.Counter("fault.violations").Value(); v != maxViolations+50 {
		t.Fatalf("metric = %d, want %d", v, maxViolations+50)
	}
}
