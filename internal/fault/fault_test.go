package fault

import (
	"strings"
	"testing"

	"misar/internal/metrics"
)

// TestNilInjectorIsInert pins the hook contract every wired component relies
// on: all decision methods on a nil *Injector are safe no-ops.
func TestNilInjectorIsInert(t *testing.T) {
	var i *Injector
	i.AttachMetrics(metrics.NewRegistry())
	if i.ForceSteer() || i.ForceCapacitySteer() || i.ForceEvict() {
		t.Error("nil injector forced a fault")
	}
	if i.AckDelay() != 0 || i.MsgDelay(0, 1) != 0 || i.CohDelay() != 0 {
		t.Error("nil injector injected a delay")
	}
	if c := i.Counts(); c.Total() != 0 {
		t.Errorf("nil injector has counts: %s", c.String())
	}
}

// TestDeterminism: two injectors built from the same plan make identical
// decisions for identical call sequences — the property that makes a failing
// chaos seed a reproducer.
func TestDeterminism(t *testing.T) {
	p := DefaultPlan(42)
	a, b := New(p), New(p)
	for n := 0; n < 10_000; n++ {
		switch n % 6 {
		case 0:
			if a.ForceSteer() != b.ForceSteer() {
				t.Fatalf("ForceSteer diverged at call %d", n)
			}
		case 1:
			if a.ForceCapacitySteer() != b.ForceCapacitySteer() {
				t.Fatalf("ForceCapacitySteer diverged at call %d", n)
			}
		case 2:
			if a.ForceEvict() != b.ForceEvict() {
				t.Fatalf("ForceEvict diverged at call %d", n)
			}
		case 3:
			if a.AckDelay() != b.AckDelay() {
				t.Fatalf("AckDelay diverged at call %d", n)
			}
		case 4:
			if a.MsgDelay(n%4, n%3) != b.MsgDelay(n%4, n%3) {
				t.Fatalf("MsgDelay diverged at call %d", n)
			}
		case 5:
			if a.CohDelay() != b.CohDelay() {
				t.Fatalf("CohDelay diverged at call %d", n)
			}
		}
	}
	if ca, cb := a.Counts(), b.Counts(); ca != cb {
		t.Fatalf("counts diverged: %s vs %s", ca.String(), cb.String())
	}
	if a.Counts().Total() == 0 {
		t.Fatal("default plan fired nothing in 10k calls")
	}
}

// TestDisabledSiteConsumesNoRandomness: a site with rate 0 must not advance
// the PRNG, so shrinking a plan (zeroing sites) leaves the remaining sites'
// decision streams untouched for the calls they see.
func TestDisabledSiteConsumesNoRandomness(t *testing.T) {
	full := Plan{Seed: 7, NoCRate: 4096, NoCMax: 64}
	a := New(full) // only NoC enabled
	b := New(full)
	var sa, sb []uint64
	for n := 0; n < 1000; n++ {
		// a interleaves calls to disabled sites; b does not.
		a.ForceSteer()
		a.AckDelay()
		a.CohDelay()
		sa = append(sa, uint64(a.MsgDelay(0, 1)))
		sb = append(sb, uint64(b.MsgDelay(0, 1)))
	}
	for n := range sa {
		if sa[n] != sb[n] {
			t.Fatalf("disabled sites perturbed the NoC stream at call %d: %d vs %d", n, sa[n], sb[n])
		}
	}
}

// TestSitesAndWithout pins the shrinker's plan algebra.
func TestSitesAndWithout(t *testing.T) {
	p := DefaultPlan(1)
	want := []string{"steer", "cap", "evict", "ack", "noc", "coh", "tmabort"}
	got := p.Sites()
	if len(got) != len(want) {
		t.Fatalf("DefaultPlan sites = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DefaultPlan sites = %v, want %v", got, want)
		}
	}
	for _, site := range want {
		q := p.Without(site)
		if len(q.Sites()) != len(want)-1 {
			t.Errorf("Without(%q) still has sites %v", site, q.Sites())
		}
		for _, s := range q.Sites() {
			if s == site {
				t.Errorf("Without(%q) did not remove the site", site)
			}
		}
	}
	q := p
	for _, site := range want {
		q = q.Without(site)
	}
	if q.Enabled() {
		t.Errorf("plan with all sites removed still enabled: %+v", q)
	}
	if (Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
}

// TestAlwaysFireRates: rate 65536/65536 fires on every call and the delay
// sites respect their maxima.
func TestAlwaysFireRates(t *testing.T) {
	i := New(Plan{Seed: 3, SteerRate: 65536, AckRate: 65536, AckMax: 10})
	for n := 0; n < 100; n++ {
		if !i.ForceSteer() {
			t.Fatal("rate 65536 did not fire")
		}
		d := i.AckDelay()
		if d < 1 || d > 10 {
			t.Fatalf("AckDelay %d outside [1, AckMax=10]", d)
		}
	}
	c := i.Counts()
	if c.Steers != 100 || c.AckDelays != 100 {
		t.Fatalf("counts: %s", c.String())
	}
	if c.DelayCycles == 0 {
		t.Fatal("delay cycles not accumulated")
	}
}

// TestInjectorMetrics: firing sites shows up in the attached registry.
func TestInjectorMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	i := New(Plan{Seed: 9, SteerRate: 65536})
	i.AttachMetrics(reg)
	for n := 0; n < 5; n++ {
		i.ForceSteer()
	}
	if v := reg.Counter("fault.forced_steers").Value(); v != 5 {
		t.Fatalf("fault.forced_steers = %d, want 5", v)
	}
}

func TestCountsString(t *testing.T) {
	i := New(Plan{Seed: 1, SteerRate: 65536})
	i.ForceSteer()
	if s := i.Counts().String(); !strings.Contains(s, "steer") {
		t.Errorf("Counts.String() = %q, want a steer mention", s)
	}
}
