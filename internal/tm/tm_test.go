package tm_test

import (
	"errors"
	"testing"

	"misar/internal/cpu"
	"misar/internal/fault"
	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/sim"
	"misar/internal/tm"
)

const deadline = sim.Time(200_000_000)

// cfg builds the software-only machine TM runs on (the TM backend never
// issues MSA instructions, so the accelerator is moot).
func cfg(tiles int) machine.Config {
	c := machine.Default(tiles)
	c.Name = "tm-test"
	c.CPU.Mode = cpu.ModeAlwaysFail
	return c
}

// spin blocks (in simulated time) until the word at a becomes v.
func spin(e cpu.Env, a memory.Addr, v uint64) {
	for e.Load(a) != v {
		e.Compute(50)
	}
}

// TestAtomicIncrement is the TM analogue of the canonical mutual-exclusion
// test: every thread transactionally read-modify-writes one hot word; no
// update may be lost, no matter how many aborts the contention causes.
func TestAtomicIncrement(t *testing.T) {
	const tiles, iters = 8, 25
	c := cfg(tiles)
	c.Metrics = true
	m := machine.New(c)
	w := memory.Addr(0x100000)
	m.SpawnAll(tiles, func(tid int, e cpu.Env) {
		ctx := tm.New(e, false)
		for i := 0; i < iters; i++ {
			ctx.Run(func() {
				ctx.Write(w, ctx.Read(w)+1)
			})
			e.Compute(30)
		}
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(w); got != tiles*iters {
		t.Fatalf("counter = %d, want %d (atomicity violated)", got, tiles*iters)
	}
	commits := m.Metrics.Counter("tm.commits").Value()
	aborts := m.Metrics.Counter("tm.aborts").Value()
	retries := m.Metrics.Counter("tm.retries").Value()
	if commits != tiles*iters {
		t.Fatalf("tm.commits = %d, want %d", commits, tiles*iters)
	}
	if aborts != retries {
		t.Fatalf("tm.aborts = %d != tm.retries = %d (every abort retries exactly once)", aborts, retries)
	}
	if aborts == 0 {
		t.Fatalf("expected contention aborts on one hot word across %d threads", tiles)
	}
}

// TestCrossWordInvariant checks serializability, not just single-word
// atomicity: each transaction increments two words, so they must stay equal
// in every committed state.
func TestCrossWordInvariant(t *testing.T) {
	const tiles, iters = 8, 15
	m := machine.New(cfg(tiles))
	w1, w2 := memory.Addr(0x100000), memory.Addr(0x100040)
	m.SpawnAll(tiles, func(tid int, e cpu.Env) {
		ctx := tm.New(e, false)
		for i := 0; i < iters; i++ {
			ctx.Run(func() {
				a, b := ctx.Read(w1), ctx.Read(w2)
				if a != b {
					t.Errorf("tid %d saw torn state: %d != %d", tid, a, b)
				}
				ctx.Write(w1, a+1)
				ctx.Write(w2, b+1)
			})
			e.Compute(40)
		}
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if a, b := m.Store.Load(w1), m.Store.Load(w2); a != tiles*iters || b != tiles*iters {
		t.Fatalf("final state (%d, %d), want (%d, %d)", a, b, tiles*iters, tiles*iters)
	}
}

// TestReadOnlyFastPath: a read-only transaction commits without locks and
// without bumping the global clock (TL2's read-only rule).
func TestReadOnlyFastPath(t *testing.T) {
	c := cfg(1)
	c.Metrics = true
	m := machine.New(c)
	w := memory.Addr(0x100000)
	var got uint64
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		e.Store(w, 42)
		ctx := tm.New(e, false)
		ctx.Run(func() { got = ctx.Read(w) })
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("read %d, want 42", got)
	}
	if clk := m.Store.Load(tm.ClockAddr); clk != 0 {
		t.Fatalf("global clock = %d after read-only commit, want 0", clk)
	}
	if bumps := m.Metrics.Counter("tm.clock_bumps").Value(); bumps != 0 {
		t.Fatalf("tm.clock_bumps = %d, want 0", bumps)
	}
}

// TestReadYourOwnWrite: reads see the transaction's buffered writes, and
// rewriting a word updates the buffer in place.
func TestReadYourOwnWrite(t *testing.T) {
	m := machine.New(cfg(1))
	w := memory.Addr(0x100000)
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		ctx := tm.New(e, false)
		ctx.Run(func() {
			ctx.Write(w, 5)
			if v := ctx.Read(w); v != 5 {
				t.Errorf("read-your-own-write saw %d, want 5", v)
			}
			ctx.Write(w, 7)
		})
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(w); got != 7 {
		t.Fatalf("final value %d, want 7", got)
	}
}

// TestValidationAbort choreographs the stepping API: a writer commits to a
// word after our transaction read it, so our commit (whose write version is
// not rv+1) must fail read-set validation.
func TestValidationAbort(t *testing.T) {
	c := cfg(2)
	c.Metrics = true
	m := machine.New(c)
	var (
		w1    = memory.Addr(0x100000)
		w3    = memory.Addr(0x100080)
		flag1 = memory.Addr(0x200000)
		flag2 = memory.Addr(0x200040)
	)
	m.SpawnAll(2, func(tid int, e cpu.Env) {
		ctx := tm.New(e, false)
		if tid == 0 {
			ctx.Begin()
			v, ok := ctx.TryRead(w1)
			if !ok {
				t.Error("initial TryRead aborted unexpectedly")
				return
			}
			ctx.Write(w3, v+1)
			e.Store(flag1, 1)
			spin(e, flag2, 1)
			if ctx.TryCommit() {
				t.Error("commit validated a stale read set")
			}
			// The retry (now seeing the writer's value) must succeed.
			ctx.Begin()
			v, _ = ctx.TryRead(w1)
			ctx.Write(w3, v+1)
			if !ctx.TryCommit() {
				t.Error("conflict-free retry failed to commit")
			}
			return
		}
		spin(e, flag1, 1)
		ctx.Begin()
		ctx.Write(w1, 9)
		if !ctx.TryCommit() {
			t.Error("uncontended writer failed to commit")
		}
		e.Store(flag2, 1)
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(w3); got != 10 {
		t.Fatalf("w3 = %d, want 10 (retry must see the committed 9)", got)
	}
	if aborts := m.Metrics.Counter("tm.aborts").Value(); aborts != 1 {
		t.Fatalf("tm.aborts = %d, want exactly 1", aborts)
	}
}

// TestReadConflictAbort: reading a word whose version is newer than the
// transaction's read version aborts at the read, not at commit.
func TestReadConflictAbort(t *testing.T) {
	m := machine.New(cfg(2))
	var (
		w1    = memory.Addr(0x100000)
		flag1 = memory.Addr(0x200000)
	)
	m.SpawnAll(2, func(tid int, e cpu.Env) {
		ctx := tm.New(e, false)
		if tid == 0 {
			ctx.Begin() // rv = 0
			spin(e, flag1, 1)
			if _, ok := ctx.TryRead(w1); ok {
				t.Error("TryRead accepted a word newer than rv")
			}
			return
		}
		ctx.Begin()
		ctx.Write(w1, 9)
		if !ctx.TryCommit() {
			t.Error("writer failed to commit")
		}
		e.Store(flag1, 1)
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
}

// TestSelfOwnedValidation: a transaction that reads and writes the same word
// validates that word against its own lock acquisition (the pre-CAS value),
// so an unrelated concurrent commit must not abort it.
func TestSelfOwnedValidation(t *testing.T) {
	m := machine.New(cfg(2))
	var (
		w1    = memory.Addr(0x100000)
		other = memory.Addr(0x103000)
		flag1 = memory.Addr(0x200000)
		flag2 = memory.Addr(0x200040)
	)
	m.SpawnAll(2, func(tid int, e cpu.Env) {
		ctx := tm.New(e, false)
		if tid == 0 {
			ctx.Begin()
			v, _ := ctx.TryRead(w1)
			ctx.Write(w1, v+1)
			e.Store(flag1, 1)
			spin(e, flag2, 1)
			// The clock moved (wv != rv+1), forcing full validation; w1's
			// slot is self-owned and unchanged, so the commit succeeds.
			if !ctx.TryCommit() {
				t.Error("self-owned validation aborted a serializable commit")
			}
			return
		}
		spin(e, flag1, 1)
		ctx.Begin()
		ctx.Write(other, 1)
		if !ctx.TryCommit() {
			t.Error("unrelated writer failed to commit")
		}
		e.Store(flag2, 1)
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(w1); got != 1 {
		t.Fatalf("w1 = %d, want 1", got)
	}
}

// TestLockBusyAbort: a held commit lock aborts the attempt, and the abort
// restores nothing it did not change — releasing the lock lets the retry
// commit.
func TestLockBusyAbort(t *testing.T) {
	m := machine.New(cfg(1))
	w := memory.Addr(0x100000)
	la := tm.LockAddr(w)
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		ctx := tm.New(e, false)
		if !e.CAS(la, 0, 1) { // hold w's commit lock, as a peer mid-commit would
			t.Error("failed to seed a held lock word")
		}
		ctx.Begin()
		ctx.Write(w, 5)
		if ctx.TryCommit() {
			t.Error("commit succeeded over a held lock word")
		}
		e.Store(la, 0)
		ctx.Begin()
		ctx.Write(w, 5)
		if !ctx.TryCommit() {
			t.Error("retry after lock release failed")
		}
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(w); got != 5 {
		t.Fatalf("w = %d, want 5", got)
	}
}

// TestForcedAbort: the tmabort fault site makes lock-holding commit attempts
// abort spuriously; the retry loop must still make progress and the injector
// must tally its interventions.
func TestForcedAbort(t *testing.T) {
	const iters = 10
	c := cfg(1)
	c.Fault = fault.Plan{Seed: 7, TMAbortRate: 32768} // ~50% of commit attempts
	m := machine.New(c)
	w := memory.Addr(0x100000)
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		ctx := tm.New(e, false)
		for i := 0; i < iters; i++ {
			ctx.Run(func() { ctx.Write(w, ctx.Read(w)+1) })
		}
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(w); got != iters {
		t.Fatalf("counter = %d, want %d despite forced aborts", got, iters)
	}
	if n := m.Injector.Counts().TMAborts; n == 0 {
		t.Fatal("injector recorded no forced TM aborts at a 50% rate")
	}
}

// TestNoValidateCaughtByChecker: the deliberately broken protocol variant
// (validation skipped) commits a stale read set under the same choreography
// TestValidationAbort uses — and the runtime checker's TM shadow flags it as
// a tm-atomicity violation, failing the run.
func TestNoValidateCaughtByChecker(t *testing.T) {
	c := cfg(2)
	c.Invariants = true
	m := machine.New(c)
	var (
		w1    = memory.Addr(0x100000)
		w3    = memory.Addr(0x100080)
		flag1 = memory.Addr(0x200000)
		flag2 = memory.Addr(0x200040)
	)
	m.SpawnAll(2, func(tid int, e cpu.Env) {
		if tid == 0 {
			broken := tm.New(e, true) // noValidate
			broken.Begin()
			v, _ := broken.TryRead(w1)
			broken.Write(w3, v+1)
			e.Store(flag1, 1)
			spin(e, flag2, 1)
			if !broken.TryCommit() {
				t.Error("the broken variant was supposed to commit blindly")
			}
			return
		}
		ctx := tm.New(e, false)
		spin(e, flag1, 1)
		ctx.Begin()
		ctx.Write(w1, 9)
		if !ctx.TryCommit() {
			t.Error("writer failed to commit")
		}
		e.Store(flag2, 1)
	})
	_, err := m.Run(deadline)
	var se *machine.SafetyError
	if !errors.As(err, &se) {
		t.Fatalf("run error = %v, want a SafetyError from the TM shadow", err)
	}
	found := false
	for _, v := range se.Violations {
		if v.Kind == fault.ViolationTMAtomicity {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v carry no tm-atomicity entry", se.Violations)
	}
}

// TestCorrectProtocolCleanUnderChecker reruns the contended increment with
// the invariant checker attached: the TM shadow must report nothing for the
// real protocol (no false positives from its generation bookkeeping).
func TestCorrectProtocolCleanUnderChecker(t *testing.T) {
	const tiles, iters = 8, 15
	c := cfg(tiles)
	c.Invariants = true
	m := machine.New(c)
	w := memory.Addr(0x100000)
	m.SpawnAll(tiles, func(tid int, e cpu.Env) {
		ctx := tm.New(e, false)
		for i := 0; i < iters; i++ {
			ctx.Run(func() { ctx.Write(w, ctx.Read(w)+1) })
			e.Compute(30)
		}
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if v := m.Checker.Violations(); len(v) != 0 {
		t.Fatalf("correct protocol flagged: %v", v)
	}
}

func TestLockAddrProperties(t *testing.T) {
	seen := map[memory.Addr]bool{}
	for a := memory.Addr(0x100000); a < 0x100000+4096*8; a += 8 {
		la := tm.LockAddr(a)
		if la < tm.LockBase || la >= tm.LockBase+tm.LockSlots*memory.LineSize {
			t.Fatalf("LockAddr(%#x) = %#x outside the lock table", a, la)
		}
		if la%memory.LineSize != 0 {
			t.Fatalf("LockAddr(%#x) = %#x not line-aligned", a, la)
		}
		if got := tm.LockAddr(a + 4); got != la {
			t.Fatalf("sub-word addresses map to different slots: %#x vs %#x", got, la)
		}
		seen[la] = true
	}
	if len(seen) != tm.LockSlots {
		t.Fatalf("4096 words hash to %d slots, want all %d in use", len(seen), tm.LockSlots)
	}
}

func TestAbortReasonString(t *testing.T) {
	want := map[tm.AbortReason]string{
		tm.AbortReadConflict: "read-conflict",
		tm.AbortLockBusy:     "lock-busy",
		tm.AbortValidation:   "validation",
		tm.AbortForced:       "forced",
	}
	for r, s := range want {
		if r.String() != s {
			t.Fatalf("AbortReason(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
	if tm.AbortReason(200).String() != "AbortReason(?)" {
		t.Fatal("out-of-range reason must not panic")
	}
}
