// Package tm is a software transactional-memory runtime for the simulated
// machine: a word-based, lazy-versioning STM in the TL2 style (Dice, Shalev,
// Shavit, DISC 2006) whose every load, store, and compare-and-swap executes
// through the simulated L1 / directory / NoC via cpu.Env. It is the third
// synchronization backend next to the pthread-style software libraries and
// the MSA hardware path (see syncrt.TMLib).
//
// # Protocol
//
// Shared TM metadata lives at fixed simulated addresses below the workload
// arena: a global version clock and a 256-entry table of versioned lock
// words, each on its own cache line so clock and lock traffic exercise the
// coherence protocol like any other contended data. A lock word encodes
// version<<1 | lockedBit; simulated memory zero-fills, so version 0 /
// unlocked needs no initialization.
//
//   - Begin samples the global clock into rv (the read version).
//   - A transactional read loads the word's lock word, the word, and the
//     lock word again: if the lock word is locked, newer than rv, or changed
//     across the sandwich, the transaction aborts (the snapshot would not be
//     consistent at rv).
//   - Writes are buffered in the write set; reads see their own writes.
//   - Commit locks the write set's lock words in ascending slot order with
//     CAS (aborting, not blocking, if any is busy), increments the global
//     clock to obtain the write version wv, validates the read set — skipped
//     when wv == rv+1, because then no other transaction can have committed
//     since Begin — writes back, and releases each lock word to wv<<1.
//   - Aborts restore the original lock words, back off (bounded exponential
//     with per-thread deterministic jitter), and retry.
//
// # Verification
//
// The commit protocol is certified by the "tm-commit" counter-abstraction
// model in internal/verify, with broken variants (skipped validation, leaked
// commit lock, blind lock acquisition) refuted by short witnesses. Bridge
// tests in verify pin each abstract rule to the concrete transition here,
// and fault.Checker's TM* hooks shadow runs at the exact linearization
// points documented in internal/fault/check.go.
package tm

import (
	"sort"

	"misar/internal/cpu"
	"misar/internal/fault"
	"misar/internal/memory"
	"misar/internal/metrics"
	"misar/internal/obs"
)

// Fixed simulated addresses of the TM metadata region. Both sit below the
// workload arena base used throughout internal/workload (0x1000000) and
// clear of the synchronization-variable region, so no workload data aliases
// a lock word.
const (
	// ClockAddr holds the global version clock, alone on its line.
	ClockAddr memory.Addr = 0xF00000
	// LockBase is the first of LockSlots versioned lock words, one per
	// cache line so two slots never false-share.
	LockBase memory.Addr = 0xF10000
	// LockSlots is the lock table size. Fibonacci-hashing the word address
	// spreads neighboring words across slots.
	LockSlots = 256
)

// LockAddr returns the simulated address of the versioned lock word covering
// word address a. Words that hash to the same slot share a lock (false
// conflicts are possible, never missed conflicts).
func LockAddr(a memory.Addr) memory.Addr {
	slot := (uint64(a>>3) * 0x9E3779B97F4A7C15) >> 56
	return LockBase + memory.Addr(slot)*memory.LineSize
}

// AbortReason classifies why a transaction attempt aborted; it is the Arg of
// obs.FTxAbort flight events.
type AbortReason uint8

const (
	// AbortReadConflict: a transactional read saw a locked or too-new lock
	// word (the snapshot would not be consistent at rv).
	AbortReadConflict AbortReason = iota
	// AbortLockBusy: commit found one of its write-set lock words held.
	AbortLockBusy
	// AbortValidation: commit-time read-set validation failed.
	AbortValidation
	// AbortForced: a fault-injection spurious abort (fault.Plan.TMAbortRate).
	AbortForced
	numAbortReasons
)

var abortReasonNames = [numAbortReasons]string{
	"read-conflict", "lock-busy", "validation", "forced",
}

func (r AbortReason) String() string {
	if int(r) < len(abortReasonNames) {
		return abortReasonNames[r]
	}
	return "AbortReason(?)"
}

func init() {
	obs.RegisterArgNames(obs.FTxAbort, abortReasonNames[:])
}

// abortSignal unwinds a transaction body when Read detects a conflict; Run
// recovers it and retries. Any other panic (including the kernel's
// thread-kill) passes through.
type abortSignal struct{}

// backoff bounds. Units are Compute cycles; the jitter keeps two aborters
// from re-colliding in lockstep while staying deterministic per thread.
const (
	backoffBase = 32
	backoffCap  = 4096
)

// readEntry is one read-set record: the word read, its lock word's address,
// and the lock word value the read sandwich observed.
type readEntry struct {
	word memory.Addr
	lock memory.Addr
	seen uint64
}

// writeEntry is one buffered store, kept in program order for write-back.
type writeEntry struct {
	addr memory.Addr
	val  uint64
}

// lockAcq records one commit-time lock acquisition: the slot's lock word
// address and its pre-acquisition value (restored on abort).
type lockAcq struct {
	lock memory.Addr
	old  uint64
}

// Ctx is one thread's transaction context. Bind one per thread (it is not
// concurrency-safe); reuse it across transactions — the sets are recycled.
//
// Two API layers share the state: Run executes a closure with panic-based
// abort/retry (what syncrt uses), while Begin / TryRead / Write / TryCommit
// expose each protocol step with explicit outcomes so the verify bridge
// tests can drive one abstract rule at a time.
type Ctx struct {
	e          cpu.Env
	noValidate bool // broken variant for checker/model refutation tests
	rng        uint64

	check  *fault.Checker
	inj    *fault.Injector
	flight *obs.FlightRecorder

	commits    *metrics.Counter
	aborts     *metrics.Counter
	retries    *metrics.Counter
	clockBumps *metrics.Counter

	active  bool
	rv      uint64 // global clock sample at Begin
	attempt uint32 // attempt number within the current Run, 0-based

	reads  []readEntry
	writes []writeEntry
	windex map[memory.Addr]int // word -> writes index (read-your-own-write)
	locked []lockAcq           // commit-time acquisitions, ascending slot order
	slots  []memory.Addr       // scratch: unique write-set lock addresses
	words  []memory.Addr       // scratch: unique written words, for the checker
}

// New binds a transaction context to a thread's environment. Instruments,
// checker, injector, and flight recorder are resolved once here, following
// the bind-once, nil-safe contract of syncrt.Bind.
func New(e cpu.Env, noValidate bool) *Ctx {
	reg := e.Metrics()
	return &Ctx{
		e:          e,
		noValidate: noValidate,
		rng:        uint64(e.ThreadID())*0x9E3779B97F4A7C15 + 0x1234567,
		check:      e.Check(),
		inj:        e.Faults(),
		flight:     e.Flight(),
		commits:    reg.Counter("tm.commits"),
		aborts:     reg.Counter("tm.aborts"),
		retries:    reg.Counter("tm.retries"),
		clockBumps: reg.Counter("tm.clock_bumps"),
		windex:     make(map[memory.Addr]int, 8),
	}
}

// InTx reports whether a transaction is open. Nil-receiver-safe so callers
// without a TM context (lock-based libraries) pay one comparison.
func (c *Ctx) InTx() bool { return c != nil && c.active }

// Begin opens a transaction attempt: clears the sets and samples the global
// clock as the read version.
func (c *Ctx) Begin() {
	c.active = true
	c.reads = c.reads[:0]
	c.writes = c.writes[:0]
	for k := range c.windex {
		delete(c.windex, k)
	}
	c.rv = c.e.Load(ClockAddr)
	c.recordFlight(obs.FTxBegin, 0, c.attempt)
}

// TryRead performs one transactional load of the word containing a. ok=false
// means the attempt aborted (already recorded); the caller must retry from
// Begin. Reads see the transaction's own buffered writes.
func (c *Ctx) TryRead(a memory.Addr) (v uint64, ok bool) {
	a = memory.WordOf(a)
	if i, hit := c.windex[a]; hit {
		return c.writes[i].val, true
	}
	la := LockAddr(a)
	l1 := c.e.Load(la)
	if l1&1 != 0 || l1>>1 > c.rv {
		c.selfAbort(AbortReadConflict, a)
		return 0, false
	}
	v = c.e.Load(a)
	if c.e.Load(la) != l1 {
		c.selfAbort(AbortReadConflict, a)
		return 0, false
	}
	// Shadow the read now: atomic with the validating (second) lock-word
	// load just issued — no simulated op separates them.
	c.check.TMRead(c.e.ThreadID(), a)
	// Record for commit-time validation, deduplicating by word. (Two words
	// sharing a slot record separate entries; re-validating a slot twice is
	// harmless.)
	for i := range c.reads {
		if c.reads[i].word == a {
			return v, true
		}
	}
	c.reads = append(c.reads, readEntry{word: a, lock: la, seen: l1})
	return v, true
}

// Read is TryRead with panic-based abort propagation, for use inside Run
// bodies.
func (c *Ctx) Read(a memory.Addr) uint64 {
	v, ok := c.TryRead(a)
	if !ok {
		panic(abortSignal{})
	}
	return v
}

// Write buffers a transactional store of the word containing a. It never
// fails; conflicts surface at commit.
func (c *Ctx) Write(a memory.Addr, v uint64) {
	a = memory.WordOf(a)
	if i, hit := c.windex[a]; hit {
		c.writes[i].val = v
		return
	}
	c.windex[a] = len(c.writes)
	c.writes = append(c.writes, writeEntry{addr: a, val: v})
}

// TryCommit attempts to commit the open transaction. true: the transaction
// is durable (reads validated, writes visible). false: it aborted (already
// recorded); retry from Begin.
func (c *Ctx) TryCommit() bool {
	tid := c.e.ThreadID()
	if len(c.writes) == 0 {
		// Read-only fast path: every read was validated against rv by its
		// sandwich, so the whole snapshot is consistent at rv — no locks,
		// no clock bump (TL2's read-only rule).
		c.active = false
		c.check.TMCommit(tid, true, nil)
		c.commits.Inc()
		c.recordFlight(obs.FTxCommit, 0, 0)
		return true
	}

	// Collect the write set's distinct lock slots, ascending. Sorted
	// acquisition is not needed for deadlock freedom (we abort on a busy
	// lock, never block) but keeps the simulated op sequence — and thus the
	// cycle count — independent of write order.
	c.slots = c.slots[:0]
	c.words = c.words[:0]
	for i := range c.writes {
		c.words = append(c.words, c.writes[i].addr)
		la := LockAddr(c.writes[i].addr)
		dup := false
		for _, s := range c.slots {
			if s == la {
				dup = true
				break
			}
		}
		if !dup {
			c.slots = append(c.slots, la)
		}
	}
	sort.Slice(c.slots, func(i, j int) bool { return c.slots[i] < c.slots[j] })

	// Lock phase: CAS each slot from its current unlocked value to
	// value|1. A locked or too-new slot aborts the attempt.
	c.locked = c.locked[:0]
	for _, la := range c.slots {
		cur := c.e.Load(la)
		if cur&1 != 0 || !c.e.CAS(la, cur, cur|1) {
			c.abortCommit(AbortLockBusy, la)
			return false
		}
		c.locked = append(c.locked, lockAcq{lock: la, old: cur})
		// Shadow the acquisition per covered written word, atomic with the
		// CAS that just succeeded.
		for _, w := range c.words {
			if LockAddr(w) == la {
				c.check.TMCommitLock(w, tid)
			}
		}
	}

	// Fault injection: a forced spurious abort exercises abort-release
	// under a full lock hold. Rolled once per lock-holding commit attempt.
	if c.inj.ForceTMAbort() {
		c.abortCommit(AbortForced, 0)
		return false
	}

	// Write version: bump the global clock. wv is strictly greater than the
	// rv of every transaction that began before this point.
	wv := c.e.FetchAdd(ClockAddr, 1) + 1
	c.clockBumps.Inc()

	if c.noValidate || wv == c.rv+1 {
		// Validation skipped. When wv == rv+1 no transaction committed
		// between our Begin and our clock bump, so every sandwich-validated
		// read is still current — provably safe, and the checker's
		// whole-read-set freshness check (atomic with the FetchAdd above)
		// agrees. Under noValidate the same call is how the broken variant
		// gets caught.
		c.check.TMCommit(tid, false, c.words)
	} else {
		// Validate each read word: its lock slot must be unchanged since
		// the read — unless we hold it ourselves, in which case compare
		// against the pre-acquisition value.
		for i := range c.reads {
			r := &c.reads[i]
			if old, own := c.ownLock(r.lock); own {
				if old != r.seen {
					c.abortCommit(AbortValidation, r.word)
					return false
				}
			} else if c.e.Load(r.lock) != r.seen {
				c.abortCommit(AbortValidation, r.word)
				return false
			}
			c.check.TMValidated(tid, r.word)
		}
		c.check.TMCommit(tid, true, c.words)
	}

	// Write back in program order, then release each slot to wv<<1
	// (unlocked, new version). The shadow generations were bumped by
	// TMCommit above, before any store became visible. The shadow unlock
	// precedes the releasing store's ISSUE: a competing CAS can only
	// succeed after that store commits, so the shadow release is ordered
	// before any foreign shadow acquire even when a thread suspension
	// defers the completion-side code (see fault/check.go).
	for i := range c.writes {
		c.e.Store(c.writes[i].addr, c.writes[i].val)
	}
	for _, l := range c.locked {
		for _, w := range c.words {
			if LockAddr(w) == l.lock {
				c.check.TMCommitUnlock(w, tid)
			}
		}
		c.e.Store(l.lock, wv<<1)
	}
	c.locked = c.locked[:0]
	c.active = false
	c.commits.Inc()
	c.recordFlight(obs.FTxCommit, 0, uint32(len(c.writes)))
	return true
}

// ownLock reports whether the commit phase holds la, returning its
// pre-acquisition value.
func (c *Ctx) ownLock(la memory.Addr) (old uint64, own bool) {
	for i := range c.locked {
		if c.locked[i].lock == la {
			return c.locked[i].old, true
		}
	}
	return 0, false
}

// selfAbort records an abort detected during the read phase (no locks held).
func (c *Ctx) selfAbort(reason AbortReason, a memory.Addr) {
	c.active = false
	c.check.TMAbort(c.e.ThreadID())
	c.aborts.Inc()
	c.recordFlight(obs.FTxAbort, a, uint32(reason))
}

// abortCommit unwinds a failed commit phase: every acquired lock word is
// restored to its pre-acquisition value (version unchanged, unlocked). As in
// the commit path, the shadow unlock precedes the restoring store's issue.
func (c *Ctx) abortCommit(reason AbortReason, a memory.Addr) {
	tid := c.e.ThreadID()
	for _, l := range c.locked {
		for _, w := range c.words {
			if LockAddr(w) == l.lock {
				c.check.TMCommitUnlock(w, tid)
			}
		}
		c.e.Store(l.lock, l.old)
	}
	c.locked = c.locked[:0]
	c.active = false
	c.check.TMAbort(tid)
	c.aborts.Inc()
	c.recordFlight(obs.FTxAbort, a, uint32(reason))
}

// Run executes body as one transaction, retrying on abort with bounded
// exponential backoff. body may call Read / Write (and TryRead / TryCommit
// must not be mixed in). Reads that hit conflicts unwind body by panic;
// anything body allocated or computed in the doomed attempt is discarded.
func (c *Ctx) Run(body func()) {
	c.attempt = 0
	for {
		c.Begin()
		if c.runBody(body) && c.TryCommit() {
			return
		}
		c.retries.Inc()
		c.backoff()
		c.attempt++
	}
}

// runBody invokes body, converting an abortSignal panic into ok=false. The
// kernel's thread-kill panic (and genuine bugs) propagate.
func (c *Ctx) runBody(body func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(abortSignal); is {
				ok = false
				return
			}
			panic(r)
		}
	}()
	body()
	return true
}

// backoff burns a bounded, jittered number of cycles after an abort.
func (c *Ctx) backoff() {
	shift := c.attempt
	if shift > 7 { // 32<<7 == backoffCap; larger shifts would overflow
		shift = 7
	}
	window := uint64(backoffBase) << shift
	c.e.Compute(backoffBase + c.nextRand()%window)
}

// nextRand is the per-thread xorshift64 stream (same generator as syncrt).
func (c *Ctx) nextRand() uint64 {
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	return x
}

// recordFlight emits one TM flight event on this core's recorder.
func (c *Ctx) recordFlight(kind obs.FlightKind, a memory.Addr, arg uint32) {
	if c.flight == nil {
		return
	}
	c.flight.Record(obs.FlightEvent{
		At: c.e.Now(), Kind: kind, Addr: a, Arg: arg,
		Tile: int16(c.e.Core()), Core: int16(c.e.ThreadID()),
	})
}
