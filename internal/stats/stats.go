// Package stats provides the small numeric and presentation helpers the
// experiment harness uses: geometric means, histograms, and fixed-width
// text tables that mirror the paper's figures as rows and columns.
package stats

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs (ignoring non-positive values,
// which would otherwise poison the product).
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram is a simple power-of-two bucketed latency histogram.
//
// Bucket edges: bucket 0 holds exactly {0}, bucket 1 exactly {1}, and bucket
// b >= 1 holds the range [2^(b-1), 2^b - 1] (so buckets 0 and 1 are exact
// single-value buckets, bucket 2 is {2,3}, bucket 3 is {4..7}, ...). The
// last bucket (63) additionally absorbs values >= 2^62 so Observe never
// indexes out of range.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// bucketOf maps a sample to its bucket index: 0 for 0, otherwise
// floor(log2(v)) + 1, clamped to the final bucket.
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b > 63 {
		b = 63
	}
	return b
}

// bucketEdge returns bucket b's inclusive upper edge (2^b - 1; 0 for b = 0).
func bucketEdge(b int) uint64 {
	if b == 0 {
		return 0
	}
	return 1<<uint(b) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge accumulates another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean sample value.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Percentile returns an upper bound for the p-th percentile (p in [0,100]):
// the inclusive upper edge of the bucket holding that rank, clamped to the
// largest observed sample. Buckets 0 and 1 hold single values, so small
// percentiles are exact; larger ones are tight to within their
// power-of-two bucket.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(float64(h.count) * p / 100))
	if target < 1 {
		target = 1
	}
	var seen uint64
	for b, c := range h.buckets {
		seen += c
		if seen >= target {
			if edge := bucketEdge(b); edge < h.max {
				return edge
			}
			return h.max
		}
	}
	return h.max
}

// Table is an ordered grid of labelled rows for figure output.
type Table struct {
	Title string
	Cols  []string
	rows  []row
}

type row struct {
	label string
	cells []string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends a row of float cells formatted with %.2f.
func (t *Table) AddRow(label string, cells ...float64) {
	cs := make([]string, len(cells))
	for i, c := range cells {
		cs[i] = fmt.Sprintf("%.2f", c)
	}
	t.rows = append(t.rows, row{label: label, cells: cs})
}

// AddRowInts appends a row of integer cells.
func (t *Table) AddRowInts(label string, cells ...int64) {
	cs := make([]string, len(cells))
	for i, c := range cells {
		cs[i] = fmt.Sprintf("%d", c)
	}
	t.rows = append(t.rows, row{label: label, cells: cs})
}

// AddRowStrings appends a row of preformatted cells.
func (t *Table) AddRowStrings(label string, cells ...string) {
	t.rows = append(t.rows, row{label: label, cells: cells})
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the raw cell text at (row, col).
func (t *Table) Cell(r, c int) string { return t.rows[r].cells[c] }

// RowLabel returns row r's label.
func (t *Table) RowLabel(r int) string { return t.rows[r].label }

// Lookup finds a row by label.
func (t *Table) Lookup(label string) (cells []string, ok bool) {
	for _, r := range t.rows {
		if r.label == label {
			return r.cells, true
		}
	}
	return nil, false
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Cols)+1)
	widths[0] = len(t.Title)
	for i, c := range t.Cols {
		widths[i+1] = len(c)
	}
	for _, r := range t.rows {
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
		for i, c := range r.cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}
	line := func(label string, cells []string) {
		fmt.Fprintf(w, "%-*s", widths[0], label)
		for i, c := range cells {
			wd := 8
			if i+1 < len(widths) {
				wd = widths[i+1]
			}
			fmt.Fprintf(w, "  %*s", wd, c)
		}
		fmt.Fprintln(w)
	}
	line(t.Title, t.Cols)
	total := widths[0]
	for _, wd := range widths[1:] {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.rows {
		line(r.label, r.cells)
	}
}

// SortRows orders rows by label (used by tests for stable comparison).
func (t *Table) SortRows() {
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i].label < t.rows[j].label })
}
