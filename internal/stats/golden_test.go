package stats

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestTableRenderGolden pins Table.Render byte-for-byte: title and header
// alignment, column widths driven by the widest cell, %.2f float
// formatting, integer and preformatted rows, and insertion-order row
// placement. The parallel experiment Runner relies on rendered-table
// byte-identity as its determinism oracle, so any change here is a
// deliberate, reviewed format change (`go test ./internal/stats
// -run Golden -update-golden` refreshes the file).
func TestTableRenderGolden(t *testing.T) {
	tbl := NewTable("Fig6: speedup vs pthread", "MSA-0", "MCS-Tour", "MSA/OMU-2")
	tbl.AddRow("radiosity/64c", 1.0449, 1.18, 1.2399)          // rounds down
	tbl.AddRow("streamcluster/64c", 0.997, 2.26, 7.506)        // rounds up, widens col
	tbl.AddRow("a-very-long-benchmark-name/64c", 0.5, 10.25, 100.125)
	tbl.AddRowInts("sync ops", 12, 3456, 789)
	tbl.AddRowStrings("notes", "HW", "SW", "HW+OMU")
	tbl.AddRow("GeoMean", 1.0, 1.5333, 3.0)

	var got bytes.Buffer
	tbl.Render(&got)

	golden := filepath.Join("testdata", "table_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("rendered table differs from golden file.\ngot:\n%s\nwant:\n%s", got.String(), want)
	}
}

// TestTableRowOrderPreserved guards against silent reordering: rows come
// back in exactly the order they were added, and SortRows is the only way
// to change that.
func TestTableRowOrderPreserved(t *testing.T) {
	tbl := NewTable("order", "V")
	labels := []string{"zeta", "alpha", "mid", "alpha2", "beta"}
	for i, l := range labels {
		tbl.AddRow(l, float64(i))
	}
	for i, l := range labels {
		if got := tbl.RowLabel(i); got != l {
			t.Errorf("row %d label = %q, want %q", i, got, l)
		}
	}
	tbl.SortRows()
	sorted := []string{"alpha", "alpha2", "beta", "mid", "zeta"}
	for i, l := range sorted {
		if got := tbl.RowLabel(i); got != l {
			t.Errorf("after SortRows, row %d = %q, want %q", i, got, l)
		}
	}
}
