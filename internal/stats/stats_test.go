package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{2, 8}, 4},
		{[]float64{4}, 4},
		{nil, 0},
		{[]float64{0, -1}, 0},   // non-positive ignored; nothing left
		{[]float64{2, 0, 8}, 4}, // zero skipped
	}
	for _, c := range cases {
		if got := Geomean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestPropertyGeomeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var pos []float64
		min, max := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			x = math.Abs(x)
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 && x > 1e-100 {
				pos = append(pos, x)
				if x < min {
					min = x
				}
				if x > max {
					max = x
				}
			}
		}
		g := Geomean(pos)
		if len(pos) == 0 {
			return g == 0
		}
		return g >= min*(1-1e-9) && g <= max*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 4, 8, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d", h.Max())
	}
	if got := h.Mean(); math.Abs(got-1115.0/6) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if p := h.Percentile(50); p < 4 || p > 16 {
		t.Errorf("P50 = %d", p)
	}
	if p := h.Percentile(100); p < 1000 {
		t.Errorf("P100 = %d", p)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 {
		t.Error("empty histogram not zero")
	}
}

func TestTableRenderAndLookup(t *testing.T) {
	tab := NewTable("demo", "A", "B")
	tab.AddRow("x", 1.5, 2.25)
	tab.AddRowInts("y", 10, 20)
	tab.AddRowStrings("z", "yes", "no")
	if tab.Rows() != 3 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
	if tab.Cell(0, 1) != "2.25" || tab.Cell(1, 0) != "10" || tab.Cell(2, 1) != "no" {
		t.Fatal("cell contents wrong")
	}
	if tab.RowLabel(2) != "z" {
		t.Fatal("label wrong")
	}
	cells, ok := tab.Lookup("y")
	if !ok || cells[1] != "20" {
		t.Fatal("lookup failed")
	}
	if _, ok := tab.Lookup("nope"); ok {
		t.Fatal("phantom row")
	}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "A", "B", "1.50", "yes", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableSortRows(t *testing.T) {
	tab := NewTable("t", "v")
	tab.AddRow("b", 2)
	tab.AddRow("a", 1)
	tab.SortRows()
	if tab.RowLabel(0) != "a" {
		t.Fatal("not sorted")
	}
}
