package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{2, 8}, 4},
		{[]float64{4}, 4},
		{nil, 0},
		{[]float64{0, -1}, 0},   // non-positive ignored; nothing left
		{[]float64{2, 0, 8}, 4}, // zero skipped
	}
	for _, c := range cases {
		if got := Geomean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestPropertyGeomeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var pos []float64
		min, max := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			x = math.Abs(x)
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 && x > 1e-100 {
				pos = append(pos, x)
				if x < min {
					min = x
				}
				if x > max {
					max = x
				}
			}
		}
		g := Geomean(pos)
		if len(pos) == 0 {
			return g == 0
		}
		return g >= min*(1-1e-9) && g <= max*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 4, 8, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d", h.Max())
	}
	if got := h.Mean(); math.Abs(got-1115.0/6) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if p := h.Percentile(50); p < 4 || p > 16 {
		t.Errorf("P50 = %d", p)
	}
	if p := h.Percentile(100); p < 1000 {
		t.Errorf("P100 = %d", p)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 {
		t.Error("empty histogram not zero")
	}
}

// TestHistogramExactSmallBuckets pins the bucket-edge semantics: buckets 0
// and 1 hold exactly {0} and {1}, so percentiles over those values are
// exact rather than power-of-two upper bounds.
func TestHistogramExactSmallBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	h.Observe(0)
	if p := h.Percentile(50); p != 0 {
		t.Errorf("all-zero P50 = %d, want 0", p)
	}
	var h1 Histogram
	h1.Observe(1)
	h1.Observe(1)
	if p := h1.Percentile(99); p != 1 {
		t.Errorf("all-one P99 = %d, want 1", p)
	}
}

// TestHistogramPercentileClampedToMax guards the clamp: a bucket's edge can
// exceed every sample in it (e.g. 100 lands in bucket [64,127]), and the
// reported percentile must never exceed the observed maximum.
func TestHistogramPercentileClampedToMax(t *testing.T) {
	var h Histogram
	h.Observe(100)
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got := h.Percentile(p); got != 100 {
			t.Errorf("P%.0f = %d, want clamp to max 100", p, got)
		}
	}
}

func TestHistogramHugeValueNoPanic(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxUint64) // must clamp into the final bucket
	h.Observe(1 << 62)
	if h.Count() != 2 || h.Max() != math.MaxUint64 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	// Both samples land in the final absorbing bucket; the percentile is
	// its edge (2^63-1), never more than max and never a panic.
	if p := h.Percentile(99); p < 1<<62 || p > h.Max() {
		t.Errorf("P99 = %d, want within [2^62, max]", p)
	}
}

func TestHistogramSumAndMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(3)
	a.Observe(5)
	b.Observe(7)
	a.Merge(&b)
	if a.Sum() != 15 || a.Count() != 3 || a.Max() != 7 {
		t.Fatalf("after merge: sum=%d count=%d max=%d", a.Sum(), a.Count(), a.Max())
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	var h Histogram
	for i := uint64(0); i < 1000; i += 7 {
		h.Observe(i)
	}
	prev := uint64(0)
	for p := 1.0; p <= 100; p++ {
		cur := h.Percentile(p)
		if cur < prev {
			t.Fatalf("P%.0f = %d < P%.0f = %d", p, cur, p-1, prev)
		}
		prev = cur
	}
	if prev != h.Max() {
		t.Fatalf("P100 = %d, want max %d", prev, h.Max())
	}
}

func TestTableRenderAndLookup(t *testing.T) {
	tab := NewTable("demo", "A", "B")
	tab.AddRow("x", 1.5, 2.25)
	tab.AddRowInts("y", 10, 20)
	tab.AddRowStrings("z", "yes", "no")
	if tab.Rows() != 3 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
	if tab.Cell(0, 1) != "2.25" || tab.Cell(1, 0) != "10" || tab.Cell(2, 1) != "no" {
		t.Fatal("cell contents wrong")
	}
	if tab.RowLabel(2) != "z" {
		t.Fatal("label wrong")
	}
	cells, ok := tab.Lookup("y")
	if !ok || cells[1] != "20" {
		t.Fatal("lookup failed")
	}
	if _, ok := tab.Lookup("nope"); ok {
		t.Fatal("phantom row")
	}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "A", "B", "1.50", "yes", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableSortRows(t *testing.T) {
	tab := NewTable("t", "v")
	tab.AddRow("b", 2)
	tab.AddRow("a", 1)
	tab.SortRows()
	if tab.RowLabel(0) != "a" {
		t.Fatal("not sorted")
	}
}
