package syncrt

import (
	"misar/internal/isa"
)

// No-spurious-wakeup condition variables (paper §4.3.2). The paper notes
// that software condition variables can be implemented so that a waiter
// returns only when a signal or broadcast genuinely addressed it, using
// timestamps of the last broadcast and the signal budget — and that the
// hardware COND_WAIT composes with such semantics if the library reads the
// timestamps before waiting and re-checks them when the instruction is
// ABORTed (re-waiting if nothing actually happened).
//
// Memory layout (one line):
//
//	c+0  broadcast sequence number
//	c+8  undelivered signal budget
//	c+16 waiter count (signals sent with no waiters are wasted, per POSIX)
//
// All mutations happen while holding the associated mutex (callers follow
// the POSIX discipline), except the waiter's polling loop, which consumes a
// signal with an atomic CAS.

const (
	offBcast   = 0
	offSignals = 8
	offWaiters = 16
)

func (t *T) swCondWaitNS(c Cond, m Mutex) {
	t.E.Compute(condCallOverhead)
	g := t.E.Load(c.Addr + offBcast)
	t.E.FetchAdd(c.Addr+offWaiters, 1)
	t.Unlock(m)
	for !t.condNSWakeup(c, g) {
		t.E.Compute(condPollCycles)
	}
	t.E.FetchAdd(c.Addr+offWaiters, ^uint64(0)) // -1
	t.Lock(m)
}

// condNSWakeup reports whether a broadcast happened since generation g or a
// pending signal could be consumed.
func (t *T) condNSWakeup(c Cond, g uint64) bool {
	if t.E.Load(c.Addr+offBcast) != g {
		return true
	}
	for {
		s := t.E.Load(c.Addr + offSignals)
		if s == 0 {
			return false
		}
		if t.E.CAS(c.Addr+offSignals, s, s-1) {
			return true
		}
	}
}

func (t *T) swCondSignalNS(c Cond) {
	t.E.Compute(condCallOverhead / 2)
	if t.E.Load(c.Addr+offWaiters) > 0 {
		t.E.FetchAdd(c.Addr+offSignals, 1)
	}
	// No waiters: the signal is wasted (POSIX semantics).
}

func (t *T) swCondBcastNS(c Cond) {
	t.E.Compute(condCallOverhead / 2)
	t.E.FetchAdd(c.Addr+offBcast, 1)
	t.E.Store(c.Addr+offSignals, 0) // broadcast supersedes pending signals
}

// condWaitNS is the hardware-first wait under no-spurious semantics: read
// the generation before waiting; on ABORT re-acquire the lock and re-check —
// if neither a broadcast nor a consumable signal arrived, go back to
// waiting instead of returning (this is exactly the paper's §4.3.2 recipe).
func (t *T) condWaitNS(c Cond, m Mutex) {
	for {
		g := t.E.Load(c.Addr + offBcast)
		switch t.E.Sync(isa.OpCondWait, c.Addr, 0, m.Addr) {
		case isa.Success:
			return
		case isa.Abort:
			t.Lock(m)
			t.E.Sync(isa.OpFinish, c.Addr, 0, 0)
			if t.condNSWakeup(c, g) {
				return
			}
			// Nothing happened: wait again (we hold the lock).
			continue
		}
		t.swCondWaitNS(c, m)
		t.E.Sync(isa.OpFinish, c.Addr, 0, 0)
		return
	}
}

// condSignalNS / condBcastNS: hardware first; software path updates the
// timestamp words.
func (t *T) condSignalNS(c Cond) {
	if t.E.Sync(isa.OpCondSignal, c.Addr, 0, 0) == isa.Success {
		return
	}
	t.swCondSignalNS(c)
}

func (t *T) condBcastNS(c Cond) {
	if t.E.Sync(isa.OpCondBcast, c.Addr, 0, 0) == isa.Success {
		return
	}
	t.swCondBcastNS(c)
}
