package syncrt

// Software condition variables with Mesa semantics: the cond word is a
// generation counter; waiters record it, release the mutex, and poll until
// it changes; signal and broadcast bump it. All woken spinners re-acquire
// the mutex and re-check their predicate, so spurious wakeups (which POSIX
// permits, and which the paper's ABORT path also produces) are handled by
// the caller's standard while-loop.
//
// As §4.3.3 requires, the internal lock operations use the library's
// Lock/Unlock — i.e. the hardware-first Algorithm 1 when UseHW is set — so a
// software-managed condition variable composes with a hardware-managed lock.

const condPollCycles = 48

// condCallOverhead is the library-call cost of the software condition
// variable operations.
const condCallOverhead = 30

func (t *T) swCondWait(c Cond, m Mutex) {
	t.E.Compute(condCallOverhead)
	g := t.E.Load(c.Addr)
	t.Unlock(m)
	for t.E.Load(c.Addr) == g {
		t.E.Compute(condPollCycles)
	}
	t.Lock(m)
}

// swCondBump implements both signal and broadcast: every polling waiter
// observes the new generation and races to re-acquire the mutex. This is
// how spin-based (futex-less) pthread implementations behave; it makes
// software signals effectively broadcast-shaped, which is exactly the
// inefficiency the MSA's direct notification removes.
func (t *T) swCondBump(c Cond) {
	t.E.Compute(condCallOverhead / 2)
	t.E.FetchAdd(c.Addr, 1)
}
