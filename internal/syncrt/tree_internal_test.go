package syncrt

import "testing"

// White-box checks of the combining tree's shape math; the behavioral
// separation property is covered by TestBarriersAllKinds.

func TestTreeNodesShape(t *testing.T) {
	cases := []struct {
		goal   int
		levels []int
	}{
		{1, nil},
		{2, []int{1}},
		{4, []int{1}},
		{5, []int{2, 1}},
		{16, []int{4, 1}},
		{17, []int{5, 2, 1}},
		{256, []int{64, 16, 4, 1}},
		{1024, []int{256, 64, 16, 4, 1}},
	}
	for _, c := range cases {
		got := treeNodes(c.goal)
		if len(got) != len(c.levels) {
			t.Fatalf("goal %d: levels %v, want %v", c.goal, got, c.levels)
		}
		for i := range got {
			if got[i] != c.levels[i] {
				t.Fatalf("goal %d: levels %v, want %v", c.goal, got, c.levels)
			}
		}
	}
}

// Every node's fan-in must be in [1, treeAry] and each level's fan-ins must
// sum to the arrival count feeding it, so no arrival is lost or double
// counted — the invariant the climb loop relies on to terminate.
func TestTreeFanInsCoverEveryArrival(t *testing.T) {
	for goal := 2; goal <= 300; goal++ {
		levels := treeNodes(goal)
		feed := goal
		for level, n := range levels {
			sum := 0
			for idx := 0; idx < n; idx++ {
				fan := treeFanIn(goal, levels, level, idx)
				if fan < 1 || fan > treeAry {
					t.Fatalf("goal %d node (%d,%d): fan-in %d", goal, level, idx, fan)
				}
				sum += fan
			}
			if sum != feed {
				t.Fatalf("goal %d level %d: fan-ins sum to %d, feed is %d", goal, level, sum, feed)
			}
			feed = n
		}
		if feed != 1 {
			t.Fatalf("goal %d: tree does not converge to a root", goal)
		}
	}
}

// The tournament footprint dominates the tree's at every goal the arena
// accepts, so Arena.Barrier's max() keeps existing layouts byte-identical.
func TestTreeArenaFitsUnderTournament(t *testing.T) {
	for goal := 2; goal <= 1024; goal++ {
		tour := (tourRounds(goal) + 1) * goal
		if tree := treeNodeLines(goal); tree > tour {
			t.Fatalf("goal %d: tree needs %d lines, tournament arena only %d", goal, tree, tour)
		}
	}
}
