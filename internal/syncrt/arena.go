package syncrt

import (
	"fmt"

	"misar/internal/memory"
)

// Arena hands out non-overlapping, line-aligned simulated addresses for
// synchronization variables and their auxiliary state. Workloads create one
// arena and allocate everything from it, which guarantees no false sharing
// between synchronization variables (real tuned code pads its locks the
// same way) and keeps address 0 unused (MCS encodes nil as 0).
type Arena struct {
	next memory.Addr
}

// NewArena starts allocating at base (must be line-aligned and nonzero).
func NewArena(base memory.Addr) *Arena {
	if base == 0 || base%memory.LineSize != 0 {
		panic(fmt.Sprintf("syncrt: arena base %#x must be nonzero and line-aligned", base))
	}
	return &Arena{next: base}
}

// lines reserves n whole cache lines and returns the first address.
func (a *Arena) lines(n int) memory.Addr {
	p := a.next
	a.next += memory.Addr(n * memory.LineSize)
	return p
}

// Mutex allocates a lock variable on its own line.
func (a *Arena) Mutex() Mutex { return Mutex{Addr: a.lines(1)} }

// MutexArray allocates n locks on consecutive lines (the natural layout of
// a program's lock array, which also spreads them evenly across home tiles).
func (a *Arena) MutexArray(n int) []Mutex {
	ms := make([]Mutex, n)
	for i := range ms {
		ms[i] = Mutex{Addr: a.lines(1)}
	}
	return ms
}

// DataArray allocates n scratch lines and returns their base addresses.
func (a *Arena) DataArray(n int) []memory.Addr {
	ds := make([]memory.Addr, n)
	for i := range ds {
		ds[i] = a.lines(1)
	}
	return ds
}

// Cond allocates a condition variable on its own line.
func (a *Arena) Cond() Cond { return Cond{Addr: a.lines(1)} }

// Barrier allocates a barrier for goal participants, including a flag arena
// big enough for whichever software implementation the library picks: the
// tournament needs (rounds+1)*goal lines, the combining tree two lines per
// node. The tournament footprint dominates for every goal >= 2, but the
// sizing takes the max explicitly so the layouts stay independently
// changeable.
func (a *Arena) Barrier(goal int) Barrier {
	if goal < 1 {
		panic("syncrt: barrier goal must be >= 1")
	}
	b := Barrier{Addr: a.lines(1), Goal: goal}
	flagLines := (tourRounds(goal) + 1) * goal
	if tl := treeNodeLines(goal); tl > flagLines {
		flagLines = tl
	}
	b.flagBase = a.lines(flagLines)
	return b
}

// QNode allocates one thread's private MCS queue node line.
func (a *Arena) QNode() memory.Addr { return a.lines(1) }

// Data allocates n whole lines of scratch data for workload use.
func (a *Arena) Data(n int) memory.Addr { return a.lines(n) }
