package syncrt_test

import (
	"testing"
	"testing/quick"

	"misar/internal/cpu"
	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/sim"
	"misar/internal/syncrt"
)

const deadline = sim.Time(500_000_000)

// swMachine returns a machine where hardware sync always fails, so only the
// software implementations run.
func swMachine(tiles int) *machine.Machine {
	cfg := machine.Default(tiles)
	cfg.CPU.Mode = cpu.ModeAlwaysFail
	return machine.New(cfg)
}

func allLockKinds() []*syncrt.Lib {
	return []*syncrt.Lib{
		{Lock: syncrt.LockTTS, Barrier: syncrt.BarrierCentral},
		{Lock: syncrt.LockSpin, Barrier: syncrt.BarrierCentral},
		{Lock: syncrt.LockTicket, Barrier: syncrt.BarrierCentral},
		{Lock: syncrt.LockMCS, Barrier: syncrt.BarrierTournament},
	}
}

// TestSoftwareLockMutualExclusion checks every software lock under real
// contention on the simulated memory system.
func TestSoftwareLockMutualExclusion(t *testing.T) {
	const tiles, iters = 8, 15
	for _, lib := range allLockKinds() {
		lib := lib
		t.Run(kindName(lib.Lock), func(t *testing.T) {
			m := swMachine(tiles)
			arena := syncrt.NewArena(0x100000)
			lock := arena.Mutex()
			counter := arena.Data(1)
			qnodes := make([]memory.Addr, tiles)
			for i := range qnodes {
				qnodes[i] = arena.QNode()
			}
			m.SpawnAll(tiles, func(tid int, e cpu.Env) {
				rt := lib.Bind(e, qnodes[tid])
				for i := 0; i < iters; i++ {
					rt.Lock(lock)
					v := e.Load(counter)
					e.Compute(7)
					e.Store(counter, v+1)
					rt.Unlock(lock)
					e.Compute(uint64(11 + tid))
				}
			})
			if _, err := m.Run(deadline); err != nil {
				t.Fatal(err)
			}
			if got := m.Store.Load(counter); got != tiles*iters {
				t.Fatalf("counter = %d, want %d", got, tiles*iters)
			}
		})
	}
}

func kindName(k syncrt.LockKind) string {
	return [...]string{"tts", "spin", "ticket", "mcs"}[k]
}

// TestTicketLockFIFO: the ticket lock must grant in arrival order.
func TestTicketLockFIFO(t *testing.T) {
	const tiles = 6
	m := swMachine(tiles)
	arena := syncrt.NewArena(0x100000)
	lib := &syncrt.Lib{Lock: syncrt.LockTicket, Barrier: syncrt.BarrierCentral}
	lock := arena.Mutex()
	var order []int
	qnodes := make([]memory.Addr, tiles)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}
	m.SpawnAll(tiles, func(tid int, e cpu.Env) {
		rt := lib.Bind(e, qnodes[tid])
		// Stagger arrivals far enough apart that ticket order == tid order.
		e.Compute(uint64(2000 * (tid + 1)))
		rt.Lock(lock)
		order = append(order, tid)
		e.Compute(30000) // hold long enough that everyone queues
		rt.Unlock(lock)
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	for i, tid := range order {
		if tid != i {
			t.Fatalf("ticket order = %v, want FIFO", order)
		}
	}
}

// TestBarriersAllKinds: both software barriers must provide the separation
// property over many reuses.
func TestBarriersAllKinds(t *testing.T) {
	for _, kind := range []syncrt.BarrierKind{syncrt.BarrierCentral, syncrt.BarrierTournament, syncrt.BarrierTree} {
		kind := kind
		name := [...]string{"central", "tournament", "tree"}[kind]
		t.Run(name, func(t *testing.T) {
			// Include non-power-of-two participant counts.
			for _, tiles := range []int{2, 3, 5, 8, 13} {
				m := swMachine(tiles)
				arena := syncrt.NewArena(0x100000)
				lib := &syncrt.Lib{Lock: syncrt.LockTTS, Barrier: kind}
				bar := arena.Barrier(tiles)
				cells := arena.DataArray(tiles)
				qnodes := make([]memory.Addr, tiles)
				for i := range qnodes {
					qnodes[i] = arena.QNode()
				}
				violations := 0
				const phases = 8
				m.SpawnAll(tiles, func(tid int, e cpu.Env) {
					rt := lib.Bind(e, qnodes[tid])
					for p := 1; p <= phases; p++ {
						e.Compute(jitterish(tid, p))
						e.Store(cells[tid], uint64(p))
						rt.Wait(bar)
						for j := 0; j < tiles; j++ {
							if e.Load(cells[j]) < uint64(p) {
								violations++
							}
						}
						rt.Wait(bar)
					}
				})
				if _, err := m.Run(deadline); err != nil {
					t.Fatalf("%d tiles: %v", tiles, err)
				}
				if violations != 0 {
					t.Fatalf("%d tiles: %d separation violations", tiles, violations)
				}
			}
		})
	}
}

func jitterish(tid, p int) uint64 {
	return uint64((tid*131 + p*17) % 97)
}

// TestCondVarSoftware: Mesa-semantics wait/signal with predicate loops.
func TestCondVarSoftware(t *testing.T) {
	const tiles = 4
	m := swMachine(tiles)
	arena := syncrt.NewArena(0x100000)
	lib := syncrt.PthreadLib()
	lock := arena.Mutex()
	cond := arena.Cond()
	flag := arena.Data(1)
	reached := arena.Data(1)
	qnodes := make([]memory.Addr, tiles)
	for i := range qnodes {
		qnodes[i] = arena.QNode()
	}
	m.SpawnAll(tiles, func(tid int, e cpu.Env) {
		rt := lib.Bind(e, qnodes[tid])
		if tid == 0 {
			e.Compute(5000)
			rt.Lock(lock)
			e.Store(flag, 1)
			rt.CondBroadcast(cond)
			rt.Unlock(lock)
			return
		}
		rt.Lock(lock)
		for e.Load(flag) == 0 {
			rt.CondWait(cond, lock)
		}
		e.Store(reached, e.Load(reached)+1)
		rt.Unlock(lock)
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(reached); got != tiles-1 {
		t.Fatalf("reached = %d, want %d", got, tiles-1)
	}
}

func TestArenaAllocationDisjoint(t *testing.T) {
	a := syncrt.NewArena(0x40000)
	seen := map[memory.Addr]bool{}
	record := func(addr memory.Addr) {
		line := memory.LineOf(addr)
		if seen[line] {
			t.Fatalf("line %#x allocated twice", line)
		}
		if addr%memory.LineSize != 0 {
			t.Fatalf("addr %#x not line aligned", addr)
		}
		seen[line] = true
	}
	record(a.Mutex().Addr)
	record(a.Cond().Addr)
	for _, mu := range a.MutexArray(10) {
		record(mu.Addr)
	}
	record(a.QNode())
	record(a.Data(3)) // occupies 3 lines; record base
	b := a.Barrier(7)
	record(b.Addr)
	if b.Goal != 7 {
		t.Fatal("goal not recorded")
	}
	// The next allocation must clear the barrier's flag arena.
	next := a.Mutex().Addr
	if next <= b.Addr {
		t.Fatal("barrier arena not reserved")
	}
}

func TestArenaRejectsBadBase(t *testing.T) {
	for _, base := range []memory.Addr{0, 7, 63} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("base %#x accepted", base)
				}
			}()
			syncrt.NewArena(base)
		}()
	}
}

// Property: for random thread counts and iteration mixes, every software
// lock kind preserves the counter invariant.
func TestPropertySoftwareLocks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint8, kindSel uint8) bool {
		kinds := allLockKinds()
		lib := kinds[int(kindSel)%len(kinds)]
		tiles := 2 + int(seed)%5
		iters := 3 + int(seed)%8
		m := swMachine(tiles)
		arena := syncrt.NewArena(0x100000)
		lock := arena.Mutex()
		counter := arena.Data(1)
		qnodes := make([]memory.Addr, tiles)
		for i := range qnodes {
			qnodes[i] = arena.QNode()
		}
		m.SpawnAll(tiles, func(tid int, e cpu.Env) {
			rt := lib.Bind(e, qnodes[tid])
			for i := 0; i < iters; i++ {
				rt.Lock(lock)
				e.Store(counter, e.Load(counter)+1)
				rt.Unlock(lock)
				e.Compute(uint64(seed)%37 + 1)
			}
		})
		if _, err := m.Run(deadline); err != nil {
			return false
		}
		return m.Store.Load(counter) == uint64(tiles*iters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
