package syncrt

import (
	"fmt"

	"misar/internal/memory"
)

// Software lock implementations. Lock state lives in simulated memory:
//
//   TTS / spin : one word at addr (0 free, 1 held)
//   ticket     : next-ticket at addr, now-serving at addr+8 (same line)
//   MCS        : tail pointer at addr; per-thread queue node (next at
//                qnode, locked at qnode+8) on the thread's private line
//
// MCS encodes queue-node addresses directly as word values in simulated
// memory; zero means nil, so arenas must not hand out address 0.

// Backoff tuning. The TTS lock models pthread's adaptive mutex: short
// spins, then progressively longer sleeps (standing in for futex waits).
const (
	ttsBackoffBase = 16
	ttsBackoffCap  = 2048
	pauseCycles    = 8 // cost of one polite polling iteration
)

// Library-call overheads, charged as computation before each software
// operation: function call, argument marshalling, ownership bookkeeping and
// the memory-fence tail that the hardware instruction path does not pay
// (the MiSAR instructions are inlined single instructions). Values are in
// line with uncontended glibc/pthread costs on hardware of the paper's era.
const (
	pthreadLockOverhead   = 40
	pthreadUnlockOverhead = 20
	spinLockOverhead      = 6
	spinUnlockOverhead    = 3
	ticketLockOverhead    = 24
	ticketUnlockOverhead  = 10
	mcsLockOverhead       = 30
	mcsUnlockOverhead     = 20
)

func (t *T) swLock(a memory.Addr) {
	switch t.lib.Lock {
	case LockTTS:
		t.E.Compute(pthreadLockOverhead)
		t.ttsLock(a)
	case LockSpin:
		t.E.Compute(spinLockOverhead)
		t.spinLock(a)
	case LockTicket:
		t.E.Compute(ticketLockOverhead)
		t.ticketLock(a)
	case LockMCS:
		t.E.Compute(mcsLockOverhead)
		t.mcsLock(a)
	default:
		panic(fmt.Sprintf("syncrt: unknown lock kind %d", t.lib.Lock))
	}
}

func (t *T) swUnlock(a memory.Addr) {
	switch t.lib.Lock {
	case LockTTS:
		t.E.Compute(pthreadUnlockOverhead)
		t.E.Store(a, 0)
	case LockSpin:
		t.E.Compute(spinUnlockOverhead)
		t.E.Store(a, 0)
	case LockTicket:
		t.E.Compute(ticketUnlockOverhead)
		t.E.FetchAdd(a+8, 1)
	case LockMCS:
		t.E.Compute(mcsUnlockOverhead)
		t.mcsUnlock(a)
	default:
		panic(fmt.Sprintf("syncrt: unknown lock kind %d", t.lib.Lock))
	}
}

// ttsLock is the pthread-style test-and-test-and-set lock with bounded
// exponential backoff and deterministic jitter.
func (t *T) ttsLock(a memory.Addr) {
	delay := uint64(ttsBackoffBase)
	for {
		if t.E.Load(a) == 0 && t.E.CAS(a, 0, 1) {
			return
		}
		jitter := t.nextRand() % delay
		t.E.Compute(delay + jitter)
		if delay < ttsBackoffCap {
			delay *= 2
		}
	}
}

// spinLock is a raw test-and-set spinlock: maximum coherence traffic.
func (t *T) spinLock(a memory.Addr) {
	for !t.E.CAS(a, 0, 1) {
		t.E.Compute(pauseCycles)
	}
}

// ticketLock is a FIFO ticket lock: one fetch-add to take a ticket, then
// spin on the now-serving word.
func (t *T) ticketLock(a memory.Addr) {
	ticket := t.E.FetchAdd(a, 1)
	for t.E.Load(a+8) != ticket {
		t.E.Compute(pauseCycles)
	}
}

// mcsLock enqueues this thread's node and spins locally on its own line.
func (t *T) mcsLock(a memory.Addr) {
	n := t.qnode
	t.E.Store(n, 0)   // next = nil
	t.E.Store(n+8, 1) // locked = true
	pred := t.E.Swap(a, uint64(n))
	if pred == 0 {
		return
	}
	t.E.Store(memory.Addr(pred), uint64(n)) // pred.next = n
	for t.E.Load(n+8) != 0 {
		t.E.Compute(pauseCycles)
	}
}

func (t *T) mcsUnlock(a memory.Addr) {
	n := t.qnode
	next := t.E.Load(n)
	if next == 0 {
		if t.E.CAS(a, uint64(n), 0) {
			return
		}
		// A successor is enqueueing: wait for it to link itself.
		for {
			next = t.E.Load(n)
			if next != 0 {
				break
			}
			t.E.Compute(pauseCycles)
		}
	}
	t.E.Store(memory.Addr(next)+8, 0) // successor.locked = false
}
