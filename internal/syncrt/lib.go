// Package syncrt is the synchronization runtime library the workloads link
// against. It implements the paper's modified algorithms (Algorithms 1-3):
// try the hardware instruction first, fall back to a software implementation
// on FAIL/ABORT, and notify the OMU with FINISH where required. It also
// provides the pure-software baselines the evaluation compares: a
// pthread-style test-and-test-and-set mutex with bounded exponential
// backoff, a raw spinlock, a ticket lock, an MCS queue lock, a centralized
// sense-reversing barrier, a tournament barrier, and Mesa-semantics
// condition variables. All software paths execute real loads, stores, and
// atomics through the simulated cache hierarchy, so their cost emerges from
// the coherence and network models.
package syncrt

import (
	"fmt"

	"misar/internal/cpu"
	"misar/internal/fault"
	"misar/internal/isa"
	"misar/internal/memory"
	"misar/internal/metrics"
	"misar/internal/tm"
)

// LockKind selects a software lock implementation.
type LockKind uint8

const (
	// LockTTS is the pthread-style test-and-test-and-set lock with bounded
	// exponential backoff (the paper's software baseline and HW fallback).
	LockTTS LockKind = iota
	// LockSpin is a raw test-and-set spinlock (Fig. 5's "spinlock").
	LockSpin
	// LockTicket is a FIFO ticket lock.
	LockTicket
	// LockMCS is the MCS queue lock (the paper's "MCS" advanced baseline).
	LockMCS
)

// CondKind selects the condition-variable semantics.
type CondKind uint8

const (
	// CondMesa allows spurious wakeups (POSIX default; waiters re-check
	// their predicate in a loop).
	CondMesa CondKind = iota
	// CondNoSpurious implements the paper's §4.3.2 timestamp scheme: a
	// waiter returns only for a genuine signal or broadcast, re-waiting
	// after hardware ABORTs.
	CondNoSpurious
)

// BarrierKind selects a software barrier implementation.
type BarrierKind uint8

const (
	// BarrierCentral is a centralized sense-reversing barrier (pthread-like).
	BarrierCentral BarrierKind = iota
	// BarrierTournament is the MCS tournament barrier ("Tour" baseline).
	BarrierTournament
	// BarrierTree is the treeAry-way combining-tree barrier: shallower than
	// the tournament at large participant counts, with bounded fan-in at
	// every counter. The software baseline for the 256/1024-tile sweeps.
	BarrierTree
)

// Lib is a library configuration: whether the hardware instructions are
// attempted first, and which software implementations serve as primary
// (when UseHW is false) or fallback (when UseHW is true).
type Lib struct {
	UseHW   bool
	Lock    LockKind
	Barrier BarrierKind
	Cond    CondKind

	// TM runs critical sections as transactions (internal/tm) instead of
	// lock/unlock pairs: Critical becomes a retried transaction and
	// Load/Store inside it become transactional. Barriers and condition
	// variables keep their configured (software or hardware) paths —
	// transactions replace mutual exclusion, not rendezvous. Explicit
	// Lock/Unlock calls still work under TM (workloads whose critical
	// sections cannot be expressed as closures, e.g. cond-var wait loops,
	// keep using them).
	TM bool
	// TMNoValidate disables commit-time read-set validation — a
	// deliberately broken protocol used to prove the runtime checker and
	// the tm-commit model both catch it. Never enable outside tests.
	TMNoValidate bool
}

// Desc returns a short stable identifier for the configuration, e.g.
// "hw+tts/central/mesa". It is deliberately not a String method: the
// experiment harness fingerprints *Lib with %+v for memoization, and a
// Stringer would collapse distinct configurations sharing a description.
func (l *Lib) Desc() string {
	lock := [...]string{"tts", "spin", "ticket", "mcs"}[l.Lock]
	bar := [...]string{"central", "tour", "tree"}[l.Barrier]
	cond := [...]string{"mesa", "nospurious"}[l.Cond]
	prefix := "sw"
	if l.UseHW {
		prefix = "hw"
	}
	if l.TM {
		prefix = "tm"
		if l.TMNoValidate {
			prefix = "tm-noval"
		}
	}
	return prefix + "+" + lock + "/" + bar + "/" + cond
}

// PthreadLib is the paper's software baseline: pthread-style everything.
func PthreadLib() *Lib { return &Lib{Lock: LockTTS, Barrier: BarrierCentral} }

// SpinLib swaps the mutex for a raw spinlock (Fig. 5).
func SpinLib() *Lib { return &Lib{Lock: LockSpin, Barrier: BarrierCentral} }

// MCSTourLib is the advanced software baseline: MCS locks and tournament
// barriers (the paper's "MCS-Tour").
func MCSTourLib() *Lib { return &Lib{Lock: LockMCS, Barrier: BarrierTournament} }

// MCSTreeLib pairs MCS locks with the combining-tree barrier — the scaling
// software baseline for the 256/1024-tile machines, where the tournament's
// log2 depth starts to dominate barrier latency.
func MCSTreeLib() *Lib { return &Lib{Lock: LockMCS, Barrier: BarrierTree} }

// HWLib is the paper's modified library (Algorithms 1-3): hardware first,
// pthread-style software fallback.
func HWLib() *Lib { return &Lib{UseHW: true, Lock: LockTTS, Barrier: BarrierCentral} }

// TMLib runs critical sections as TL2-style software transactions
// (internal/tm), with the pthread-style software paths for barriers,
// condition variables, and any explicit Lock/Unlock a workload still issues.
func TMLib() *Lib { return &Lib{TM: true, Lock: LockTTS, Barrier: BarrierCentral} }

// Mutex, Cond and Barrier are synchronization variables. They are plain
// descriptors — all state lives in simulated memory (and the MSA).
type Mutex struct{ Addr memory.Addr }

type Cond struct{ Addr memory.Addr }

type Barrier struct {
	Addr     memory.Addr
	Goal     int
	flagBase memory.Addr // tournament flag arena
}

// T is a per-thread binding of the library: it carries the thread-local
// software synchronization state (backoff PRNG, barrier generations, MCS
// queue node).
type T struct {
	E   cpu.Env
	lib *Lib

	rngState uint64
	gen      map[memory.Addr]uint64 // per-barrier/cond generation
	qnode    memory.Addr            // this thread's MCS queue node

	// Software-path latency histograms, resolved once at bind time. Nil
	// (zero-cost) when the machine is unmetered.
	swLockLat    *metrics.Histogram
	swUnlockLat  *metrics.Histogram
	swBarrierLat *metrics.Histogram
	swCondLat    *metrics.Histogram

	// Safety-invariant checker, resolved once at bind time; nil (all methods
	// no-op) when invariant checking is disabled.
	check *fault.Checker

	// tm is the thread's transaction context, bound only when lib.TM.
	tm *tm.Ctx
}

// Bind creates the per-thread library handle. qnodeArena must give each
// thread a private cache line for its MCS node; use Arena.QNode.
func (l *Lib) Bind(e cpu.Env, qnode memory.Addr) *T {
	t := &T{
		E:        e,
		lib:      l,
		rngState: uint64(e.ThreadID())*0x9E3779B97F4A7C15 + 0x1234567,
		gen:      make(map[memory.Addr]uint64),
		qnode:    qnode,
	}
	if reg := e.Metrics(); reg != nil {
		t.swLockLat = reg.Histogram("syncrt.sw_lock_cycles")
		t.swUnlockLat = reg.Histogram("syncrt.sw_unlock_cycles")
		t.swBarrierLat = reg.Histogram("syncrt.sw_barrier_cycles")
		t.swCondLat = reg.Histogram("syncrt.sw_cond_wait_cycles")
	}
	t.check = e.Check()
	if l.TM {
		t.tm = tm.New(e, l.TMNoValidate)
	}
	return t
}

// TM returns the thread's transaction context, nil unless the library is
// transactional.
func (t *T) TM() *tm.Ctx { return t.tm }

// Critical runs body as one critical section protected by m: a Lock/Unlock
// pair under lock-based libraries (the exact operation sequence of writing
// the pair by hand), a retried transaction under TM (m is then unused —
// conflicts are data-driven, not name-driven). Inside a transactional body,
// use t.Load / t.Store (or t.TM().Read / Write) for shared data; the body
// may re-run after aborts, so it must be idempotent up to its transactional
// writes.
func (t *T) Critical(m Mutex, body func()) {
	if t.lib.TM {
		t.tm.Run(body)
		return
	}
	t.Lock(m)
	body()
	t.Unlock(m)
}

// Load reads a shared word: transactionally when called inside a
// transactional Critical, directly through the cache hierarchy otherwise.
func (t *T) Load(a memory.Addr) uint64 {
	if t.tm.InTx() {
		return t.tm.Read(a)
	}
	return t.E.Load(a)
}

// Store writes a shared word; transactional inside a transactional Critical
// (buffered until commit), direct otherwise.
func (t *T) Store(a memory.Addr, v uint64) {
	if t.tm.InTx() {
		t.tm.Write(a, v)
		return
	}
	t.E.Store(a, v)
}

// nextRand is a tiny deterministic xorshift for backoff jitter.
func (t *T) nextRand() uint64 {
	x := t.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rngState = x
	return x
}

// timedSwLock and friends wrap the software fallbacks with latency
// observation. The histogram pointers are nil on an unmetered machine, so
// the overhead there is two engine-clock reads per fallback — off the
// hardware fast path entirely.
func (t *T) timedSwLock(a memory.Addr) {
	t.check.LockWaiting(a, t.E.ThreadID(), fault.WorldSW)
	start := t.E.Now()
	t.swLock(a)
	// The acquiring CAS has committed and the thread runs synchronously with
	// the event kernel parked, so this registration is atomic with respect to
	// every other simulated operation on a.
	t.check.LockAcquired(a, t.E.ThreadID(), fault.WorldSW)
	t.swLockLat.Observe(uint64(t.E.Now() - start))
}

func (t *T) timedSwUnlock(a memory.Addr) {
	// World-consistent release registration: when the library is
	// hardware-first, the UNLOCK instruction already visited the MSA (or
	// failed locally in always-fail mode) and the SW release was registered
	// there — at the point the protocol's OMU bookkeeping treats the lock as
	// leaving the software world. Registering here instead would race a
	// subsequent hardware grant processed at the slice before this thread's
	// FAIL response arrived. Pure-software libraries never issue the
	// instruction, so the thread-side registration is the only one.
	if !t.lib.UseHW {
		t.check.LockReleased(a, fault.WorldSW)
	}
	start := t.E.Now()
	t.swUnlock(a)
	t.swUnlockLat.Observe(uint64(t.E.Now() - start))
}

func (t *T) timedSwBarrier(b Barrier) {
	start := t.E.Now()
	t.swBarrier(b)
	t.swBarrierLat.Observe(uint64(t.E.Now() - start))
}

func (t *T) timedSwCondWait(c Cond, m Mutex) {
	t.check.CondWaiting(c.Addr, t.E.ThreadID())
	start := t.E.Now()
	t.swCondWait(c, m)
	t.swCondLat.Observe(uint64(t.E.Now() - start))
	t.check.CondWoken(c.Addr, t.E.ThreadID())
}

func (t *T) timedSwCondWaitNS(c Cond, m Mutex) {
	t.check.CondWaiting(c.Addr, t.E.ThreadID())
	start := t.E.Now()
	t.swCondWaitNS(c, m)
	t.swCondLat.Observe(uint64(t.E.Now() - start))
	t.check.CondWoken(c.Addr, t.E.ThreadID())
}

// --- Algorithm 1: Lock / Unlock ---

// Lock acquires m, trying the hardware LOCK instruction first.
func (t *T) Lock(m Mutex) {
	if t.lib.UseHW {
		res := t.E.Sync(isa.OpLock, m.Addr, 0, 0)
		if res == isa.Success {
			return
		}
		// FAIL or ABORT: fall back to the software lock.
	}
	t.timedSwLock(m.Addr)
}

// Unlock releases m, trying the hardware UNLOCK instruction first.
func (t *T) Unlock(m Mutex) {
	if t.lib.UseHW {
		if t.E.Sync(isa.OpUnlock, m.Addr, 0, 0) == isa.Success {
			return
		}
	}
	t.timedSwUnlock(m.Addr)
}

// --- Algorithm 2: Barrier ---

// Wait blocks until all b.Goal participants arrive.
func (t *T) Wait(b Barrier) {
	if t.lib.UseHW {
		res := t.E.Sync(isa.OpBarrier, b.Addr, b.Goal, 0)
		if res == isa.Success {
			return
		}
		t.timedSwBarrier(b)
		// Notify the OMU that this thread has left the software barrier.
		t.E.Sync(isa.OpFinish, b.Addr, 0, 0)
		return
	}
	t.timedSwBarrier(b)
}

// --- Algorithm 3: Condition variables ---

// CondWait atomically releases m and waits on c, re-acquiring m before
// returning. Under the default Mesa semantics spurious wakeups are possible
// (callers must re-check their predicate in a loop); under CondNoSpurious
// the wait returns only for a genuine signal or broadcast.
func (t *T) CondWait(c Cond, m Mutex) {
	if t.lib.Cond == CondNoSpurious {
		if t.lib.UseHW {
			t.condWaitNS(c, m)
			return
		}
		t.timedSwCondWaitNS(c, m)
		return
	}
	if t.lib.UseHW {
		switch t.E.Sync(isa.OpCondWait, c.Addr, 0, m.Addr) {
		case isa.Success:
			return // woken and lock re-acquired by the MSA
		case isa.Abort:
			// Suspension/teardown: re-acquire the lock (spurious wakeup)
			// and tell the OMU we are out.
			t.Lock(m)
			t.E.Sync(isa.OpFinish, c.Addr, 0, 0)
			return
		}
		t.timedSwCondWait(c, m)
		t.E.Sync(isa.OpFinish, c.Addr, 0, 0)
		return
	}
	t.timedSwCondWait(c, m)
}

// CondSignal wakes at least one waiter of c, if any.
func (t *T) CondSignal(c Cond) {
	if t.lib.Cond == CondNoSpurious {
		if t.lib.UseHW {
			t.condSignalNS(c)
			return
		}
		t.swCondSignalNS(c)
		return
	}
	if t.lib.UseHW {
		if t.E.Sync(isa.OpCondSignal, c.Addr, 0, 0) == isa.Success {
			return
		}
	}
	t.swCondBump(c)
}

// CondBroadcast wakes all waiters of c.
func (t *T) CondBroadcast(c Cond) {
	if t.lib.Cond == CondNoSpurious {
		if t.lib.UseHW {
			t.condBcastNS(c)
			return
		}
		t.swCondBcastNS(c)
		return
	}
	if t.lib.UseHW {
		if t.E.Sync(isa.OpCondBcast, c.Addr, 0, 0) == isa.Success {
			return
		}
	}
	t.swCondBump(c)
}

func (t *T) String() string {
	return fmt.Sprintf("T(%d)", t.E.ThreadID())
}
