package syncrt

import (
	"fmt"
	"math/bits"

	"misar/internal/fault"
	"misar/internal/memory"
)

// Software barriers. Both implementations are generation-counted so a
// barrier object can be reused indefinitely without sense-flip races.
//
//   central    : arrival count at Addr, release generation at Addr+8
//                (same line — the classic pthread-style contended barrier)
//   tournament : per-(round,thread) arrival flags and per-thread release
//                flags, each on a private cache line in the flag arena, so
//                all spinning is local (MCS & Scott's tournament barrier)
//   tree       : treeAry-way combining tree — per-node arrival counters and
//                release generations on private lines. Depth log4(goal)
//                instead of the tournament's log2(goal), at the price of a
//                fetch-and-add per node; the natural software baseline for
//                the 256/1024-tile machines, where log2 depth dominates.

const barrierPollCycles = 24 // polling interval while waiting for release

// barrierCallOverhead is the library-call cost of entering a software
// barrier (function call, participant bookkeeping).
const barrierCallOverhead = 25

func (t *T) swBarrier(b Barrier) {
	// Registered before any simulated operation: the arrival must be visible
	// to the checker before another participant can observe this thread's
	// count/flag update and release the episode.
	t.check.BarrierArrive(b.Addr, t.E.ThreadID(), b.Goal, fault.WorldSW)
	t.E.Compute(barrierCallOverhead)
	switch t.lib.Barrier {
	case BarrierCentral:
		t.centralBarrier(b)
	case BarrierTournament:
		t.tournamentBarrier(b)
	case BarrierTree:
		t.treeBarrier(b)
	default:
		panic(fmt.Sprintf("syncrt: unknown barrier kind %d", t.lib.Barrier))
	}
}

// generation returns this thread's next generation number for barrier b.
func (t *T) generation(a memory.Addr) uint64 {
	g := t.gen[a] + 1
	t.gen[a] = g
	return g
}

func (t *T) centralBarrier(b Barrier) {
	g := t.generation(b.Addr)
	arrived := t.E.FetchAdd(b.Addr, 1) + 1
	if int(arrived) == b.Goal {
		// Every participant registered its arrival before its FetchAdd, so
		// the checker's episode is complete here — close it before the reset
		// stores let the next episode begin.
		t.check.BarrierRelease(b.Addr)
		t.E.Store(b.Addr, 0)   // reset count for next episode
		t.E.Store(b.Addr+8, g) // publish release generation
		return
	}
	for t.E.Load(b.Addr+8) < g {
		t.E.Compute(barrierPollCycles)
	}
}

// Tournament flag addressing within the barrier's arena.
func tourArrive(b Barrier, round, tid int) memory.Addr {
	return b.flagBase + memory.Addr((round*b.Goal+tid)*memory.LineSize)
}

func tourRelease(b Barrier, rounds, tid int) memory.Addr {
	return b.flagBase + memory.Addr((rounds*b.Goal+tid)*memory.LineSize)
}

// tourRounds returns ceil(log2(goal)).
func tourRounds(goal int) int {
	if goal <= 1 {
		return 0
	}
	return bits.Len(uint(goal - 1))
}

func (t *T) tournamentBarrier(b Barrier) {
	if b.flagBase == 0 {
		panic("syncrt: tournament barrier requires an arena (use Arena.Barrier)")
	}
	i := t.E.ThreadID() % b.Goal
	g := t.generation(b.Addr)
	rounds := tourRounds(b.Goal)

	wonUpTo := 0 // rounds this thread won (it must release those losers)
	for k := 0; k < rounds; k++ {
		if i%(1<<(k+1)) == 0 {
			// Winner (or bye): wait for this round's loser, if it exists.
			partner := i + 1<<k
			if partner < b.Goal {
				for t.E.Load(tourArrive(b, k, partner)) < g {
					t.E.Compute(pauseCycles)
				}
			}
			wonUpTo = k + 1
			continue
		}
		// Loser: notify the winner, then wait for release.
		t.E.Store(tourArrive(b, k, i), g)
		for t.E.Load(tourRelease(b, rounds, i)) < g {
			t.E.Compute(barrierPollCycles)
		}
		break
	}
	// Release phase: wake the losers of every round this thread won,
	// top-down (the champion starts the cascade).
	if wonUpTo == rounds {
		// The champion saw every other participant's arrival flag, so the
		// checker's episode is complete; close it before the cascade frees
		// anyone into the next episode.
		t.check.BarrierRelease(b.Addr)
	}
	for k := wonUpTo - 1; k >= 0; k-- {
		partner := i + 1<<k
		if partner < b.Goal {
			t.E.Store(tourRelease(b, rounds, partner), g)
		}
	}
}

// treeAry is the combining tree's fan-in. Four balances depth against
// per-node counter contention: a 1024-thread barrier is 5 levels deep
// (versus the tournament's 10 rounds) with at most 4 adders per counter.
const treeAry = 4

// treeNodes returns the per-level node counts of the combining tree over
// goal threads, leaves first: level 0 has ceil(goal/treeAry) nodes, each
// next level combines treeAry of the previous, down to a single root.
func treeNodes(goal int) []int {
	if goal <= 1 {
		return nil
	}
	var levels []int
	for n := goal; n > 1; {
		n = (n + treeAry - 1) / treeAry
		levels = append(levels, n)
	}
	return levels
}

// treeNodeLines is the flag-arena footprint: two private lines per node
// (arrival counter, release generation).
func treeNodeLines(goal int) int {
	total := 0
	for _, n := range treeNodes(goal) {
		total += n
	}
	return 2 * total
}

// Tree node addressing within the barrier's arena. Nodes are numbered level
// by level from the leaves; node (level, idx) owns two consecutive lines.
func treeNodeBase(b Barrier, levels []int, level, idx int) memory.Addr {
	before := 0
	for l := 0; l < level; l++ {
		before += levels[l]
	}
	return b.flagBase + memory.Addr(2*(before+idx)*memory.LineSize)
}

func treeArrive(b Barrier, levels []int, level, idx int) memory.Addr {
	return treeNodeBase(b, levels, level, idx)
}

func treeRelease(b Barrier, levels []int, level, idx int) memory.Addr {
	return treeNodeBase(b, levels, level, idx) + memory.Addr(memory.LineSize)
}

// treeFanIn returns how many arrivals node (level, idx) collects: treeAry
// for interior positions, fewer for the ragged last node of a level.
func treeFanIn(goal int, levels []int, level, idx int) int {
	prev := goal // arrivals into level 0 come from the threads themselves
	if level > 0 {
		prev = levels[level-1]
	}
	fan := prev - idx*treeAry
	if fan > treeAry {
		fan = treeAry
	}
	return fan
}

// treeBarrier is the combining-tree barrier: each thread fetch-adds into its
// leaf node's counter; the arrival that completes a node climbs to the
// parent, and the thread that completes the root starts a top-down release
// cascade along every climbed path. All spinning is on a node-private line.
func (t *T) treeBarrier(b Barrier) {
	if b.Goal == 1 {
		return
	}
	if b.flagBase == 0 {
		panic("syncrt: tree barrier requires an arena (use Arena.Barrier)")
	}
	i := t.E.ThreadID() % b.Goal
	g := t.generation(b.Addr)
	levels := treeNodes(b.Goal)

	// Climb while this thread's arrival completes a node, recording the
	// climbed path; stop (and spin) at the first incomplete node.
	idx := i / treeAry
	type node struct{ level, idx int }
	var climbed []node
	spinAt := node{-1, -1}
	for level := range levels {
		arrived := t.E.FetchAdd(treeArrive(b, levels, level, idx), 1) + 1
		if int(arrived) < treeFanIn(b.Goal, levels, level, idx) {
			spinAt = node{level, idx}
			break
		}
		// Completed the node: reset its counter for the next episode. Safe
		// before climbing — nobody re-arrives here until this thread's own
		// release write (below) lets the node's spinners leave the barrier.
		t.E.Store(treeArrive(b, levels, level, idx), 0)
		climbed = append(climbed, node{level, idx})
		idx /= treeAry
	}
	if spinAt.level >= 0 {
		for t.E.Load(treeRelease(b, levels, spinAt.level, spinAt.idx)) < g {
			t.E.Compute(barrierPollCycles)
		}
	} else {
		// Completed the root: every participant's arrival has been combined
		// into this thread's final count — close the checker episode before
		// the cascade frees anyone into the next one.
		t.check.BarrierRelease(b.Addr)
	}
	// Release top-down: wake the spinners of every node this thread
	// completed; each of them continues the cascade below its own node.
	for k := len(climbed) - 1; k >= 0; k-- {
		t.E.Store(treeRelease(b, levels, climbed[k].level, climbed[k].idx), g)
	}
}
