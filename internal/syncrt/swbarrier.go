package syncrt

import (
	"fmt"
	"math/bits"

	"misar/internal/fault"
	"misar/internal/memory"
)

// Software barriers. Both implementations are generation-counted so a
// barrier object can be reused indefinitely without sense-flip races.
//
//   central    : arrival count at Addr, release generation at Addr+8
//                (same line — the classic pthread-style contended barrier)
//   tournament : per-(round,thread) arrival flags and per-thread release
//                flags, each on a private cache line in the flag arena, so
//                all spinning is local (MCS & Scott's tournament barrier)

const barrierPollCycles = 24 // polling interval while waiting for release

// barrierCallOverhead is the library-call cost of entering a software
// barrier (function call, participant bookkeeping).
const barrierCallOverhead = 25

func (t *T) swBarrier(b Barrier) {
	// Registered before any simulated operation: the arrival must be visible
	// to the checker before another participant can observe this thread's
	// count/flag update and release the episode.
	t.check.BarrierArrive(b.Addr, t.E.ThreadID(), b.Goal, fault.WorldSW)
	t.E.Compute(barrierCallOverhead)
	switch t.lib.Barrier {
	case BarrierCentral:
		t.centralBarrier(b)
	case BarrierTournament:
		t.tournamentBarrier(b)
	default:
		panic(fmt.Sprintf("syncrt: unknown barrier kind %d", t.lib.Barrier))
	}
}

// generation returns this thread's next generation number for barrier b.
func (t *T) generation(a memory.Addr) uint64 {
	g := t.gen[a] + 1
	t.gen[a] = g
	return g
}

func (t *T) centralBarrier(b Barrier) {
	g := t.generation(b.Addr)
	arrived := t.E.FetchAdd(b.Addr, 1) + 1
	if int(arrived) == b.Goal {
		// Every participant registered its arrival before its FetchAdd, so
		// the checker's episode is complete here — close it before the reset
		// stores let the next episode begin.
		t.check.BarrierRelease(b.Addr)
		t.E.Store(b.Addr, 0)   // reset count for next episode
		t.E.Store(b.Addr+8, g) // publish release generation
		return
	}
	for t.E.Load(b.Addr+8) < g {
		t.E.Compute(barrierPollCycles)
	}
}

// Tournament flag addressing within the barrier's arena.
func tourArrive(b Barrier, round, tid int) memory.Addr {
	return b.flagBase + memory.Addr((round*b.Goal+tid)*memory.LineSize)
}

func tourRelease(b Barrier, rounds, tid int) memory.Addr {
	return b.flagBase + memory.Addr((rounds*b.Goal+tid)*memory.LineSize)
}

// tourRounds returns ceil(log2(goal)).
func tourRounds(goal int) int {
	if goal <= 1 {
		return 0
	}
	return bits.Len(uint(goal - 1))
}

func (t *T) tournamentBarrier(b Barrier) {
	if b.flagBase == 0 {
		panic("syncrt: tournament barrier requires an arena (use Arena.Barrier)")
	}
	i := t.E.ThreadID() % b.Goal
	g := t.generation(b.Addr)
	rounds := tourRounds(b.Goal)

	wonUpTo := 0 // rounds this thread won (it must release those losers)
	for k := 0; k < rounds; k++ {
		if i%(1<<(k+1)) == 0 {
			// Winner (or bye): wait for this round's loser, if it exists.
			partner := i + 1<<k
			if partner < b.Goal {
				for t.E.Load(tourArrive(b, k, partner)) < g {
					t.E.Compute(pauseCycles)
				}
			}
			wonUpTo = k + 1
			continue
		}
		// Loser: notify the winner, then wait for release.
		t.E.Store(tourArrive(b, k, i), g)
		for t.E.Load(tourRelease(b, rounds, i)) < g {
			t.E.Compute(barrierPollCycles)
		}
		break
	}
	// Release phase: wake the losers of every round this thread won,
	// top-down (the champion starts the cascade).
	if wonUpTo == rounds {
		// The champion saw every other participant's arrival flag, so the
		// checker's episode is complete; close it before the cascade frees
		// anyone into the next episode.
		t.check.BarrierRelease(b.Addr)
	}
	for k := wonUpTo - 1; k >= 0; k-- {
		partner := i + 1<<k
		if partner < b.Goal {
			t.E.Store(tourRelease(b, rounds, partner), g)
		}
	}
}
