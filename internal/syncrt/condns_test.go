package syncrt_test

import (
	"testing"

	"misar/internal/cpu"
	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/syncrt"
)

func nsLib(useHW bool) *syncrt.Lib {
	return &syncrt.Lib{
		UseHW:   useHW,
		Lock:    syncrt.LockTTS,
		Barrier: syncrt.BarrierCentral,
		Cond:    syncrt.CondNoSpurious,
	}
}

// TestCondNSExactWakeups: with no-spurious semantics, the number of waiter
// returns equals the number of delivered signals — waiters never observe a
// wakeup that wasn't addressed to them.
func TestCondNSExactWakeups(t *testing.T) {
	for _, useHW := range []bool{false, true} {
		useHW := useHW
		name := "software"
		if useHW {
			name = "hardware"
		}
		t.Run(name, func(t *testing.T) {
			const tiles = 6
			const signals = 10
			cfg := machine.MSAOMU(tiles, 2)
			if !useHW {
				cfg.CPU.Mode = cpu.ModeAlwaysFail
			}
			m := machine.New(cfg)
			arena := syncrt.NewArena(0x100000)
			lib := nsLib(useHW)
			lock := arena.Mutex()
			cond := arena.Cond()
			delivered := arena.Data(1)
			woken := arena.Data(1)
			qnodes := make([]memory.Addr, tiles)
			for i := range qnodes {
				qnodes[i] = arena.QNode()
			}
			m.SpawnAll(tiles, func(tid int, e cpu.Env) {
				rt := lib.Bind(e, qnodes[tid])
				if tid == 0 {
					for i := 0; i < signals; i++ {
						e.Compute(3000) // let a waiter block
						rt.Lock(lock)
						e.Store(delivered, e.Load(delivered)+1)
						rt.CondSignal(cond)
						rt.Unlock(lock)
						// Wait for consumption before the next signal.
						for e.Load(woken) < e.Load(delivered) {
							e.Compute(300)
						}
					}
					// Release everyone still waiting.
					rt.Lock(lock)
					e.Store(delivered, 1<<32)
					rt.CondBroadcast(cond)
					rt.Unlock(lock)
					return
				}
				for {
					rt.Lock(lock)
					for e.Load(woken) >= e.Load(delivered) {
						rt.CondWait(cond, lock)
					}
					if e.Load(delivered) >= 1<<32 {
						rt.Unlock(lock)
						return
					}
					e.Store(woken, e.Load(woken)+1)
					rt.Unlock(lock)
				}
			})
			if _, err := m.Run(deadline); err != nil {
				t.Fatal(err)
			}
			if got := m.Store.Load(woken); got != signals {
				t.Fatalf("woken = %d, want %d", got, signals)
			}
		})
	}
}

// TestCondNSSuspensionNoSpurious: suspending a hardware cond waiter ABORTs
// it; under no-spurious semantics the library must put it back to waiting
// rather than return, and a later signal must still wake it exactly once.
func TestCondNSSuspensionNoSpurious(t *testing.T) {
	m := machine.New(machine.MSAOMU(4, 2))
	arena := syncrt.NewArena(0x100000)
	lib := nsLib(true)
	lock := arena.Mutex()
	cond := arena.Cond()
	ready := arena.Data(1)
	spurious := arena.Data(1)
	woken := arena.Data(1)
	qn := []memory.Addr{arena.QNode(), arena.QNode()}

	waiter := m.Complex.Spawn(0, func(e cpu.Env) {
		rt := lib.Bind(e, qn[0])
		rt.Lock(lock)
		for e.Load(ready) == 0 {
			rt.CondWait(cond, lock)
			if e.Load(ready) == 0 {
				// A no-spurious CondWait must never return here.
				e.Store(spurious, e.Load(spurious)+1)
			}
		}
		e.Store(woken, e.Load(woken)+1)
		rt.Unlock(lock)
	})
	signaler := m.Complex.Spawn(1, func(e cpu.Env) {
		rt := lib.Bind(e, qn[1])
		e.Compute(40_000) // well after the suspension episode
		rt.Lock(lock)
		e.Store(ready, 1)
		rt.CondSignal(cond)
		rt.Unlock(lock)
	})
	m.Complex.Start(waiter, 0, 0)
	m.Complex.Start(signaler, 1, 0)
	// Suspend the waiter mid-wait (forces an MSA ABORT), resume shortly.
	m.Engine.At(5_000, func() {
		m.Complex.Suspend(waiter, func() {
			m.Engine.After(2_000, func() { m.Complex.Resume(waiter, 0) })
		})
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(spurious); got != 0 {
		t.Fatalf("observed %d spurious wakeups under CondNoSpurious", got)
	}
	if got := m.Store.Load(woken); got != 1 {
		t.Fatalf("woken = %d, want 1", got)
	}
	if m.MSAStats().Aborts == 0 {
		t.Fatal("suspension did not exercise the ABORT path")
	}
}

// Mesa semantics, by contrast, may return spuriously after the same
// suspension — the predicate loop absorbs it. This pins the behavioural
// difference between the two CondKinds.
func TestCondMesaAbsorbsSpuriousViaPredicateLoop(t *testing.T) {
	m := machine.New(machine.MSAOMU(4, 2))
	arena := syncrt.NewArena(0x100000)
	lib := syncrt.HWLib() // Mesa
	lock := arena.Mutex()
	cond := arena.Cond()
	ready := arena.Data(1)
	woken := arena.Data(1)
	qn := []memory.Addr{arena.QNode(), arena.QNode()}
	waiter := m.Complex.Spawn(0, func(e cpu.Env) {
		rt := lib.Bind(e, qn[0])
		rt.Lock(lock)
		for e.Load(ready) == 0 {
			rt.CondWait(cond, lock)
		}
		e.Store(woken, 1)
		rt.Unlock(lock)
	})
	signaler := m.Complex.Spawn(1, func(e cpu.Env) {
		rt := lib.Bind(e, qn[1])
		e.Compute(40_000)
		rt.Lock(lock)
		e.Store(ready, 1)
		rt.CondSignal(cond)
		rt.Unlock(lock)
	})
	m.Complex.Start(waiter, 0, 0)
	m.Complex.Start(signaler, 1, 0)
	m.Engine.At(5_000, func() {
		m.Complex.Suspend(waiter, func() {
			m.Engine.After(2_000, func() { m.Complex.Resume(waiter, 0) })
		})
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if m.Store.Load(woken) != 1 {
		t.Fatal("waiter never completed")
	}
}
