package noc

import (
	"testing"
	"testing/quick"

	"misar/internal/sim"
)

func newTestNet(w, h int) (*sim.Engine, *Network) {
	e := sim.NewEngine()
	n := New(e, DefaultConfig(w, h))
	return e, n
}

func TestHops(t *testing.T) {
	_, n := newTestNet(4, 4)
	cases := []struct {
		src, dst, want int
	}{
		{0, 0, 0},
		{0, 3, 3},
		{0, 15, 6},
		{5, 6, 1},
		{5, 9, 1},
		{12, 3, 6},
	}
	for _, c := range cases {
		if got := n.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestLocalDelivery(t *testing.T) {
	e, n := newTestNet(2, 2)
	var at sim.Time
	var got *Message
	n.Attach(1, func(m *Message) { at, got = e.Now(), m })
	for i := 0; i < 4; i++ {
		if i != 1 {
			n.Attach(i, func(*Message) { t.Error("stray delivery") })
		}
	}
	e.At(10, func() { n.Send(&Message{Src: 1, Dst: 1, Bytes: 8, Payload: "x"}) })
	e.Run()
	if got == nil || got.Payload != "x" {
		t.Fatal("message not delivered")
	}
	if at != 10+DefaultConfig(2, 2).LocalLatency {
		t.Fatalf("local delivery at %d", at)
	}
}

// Uncontended latency: hops*(router+link) + (flits-1) serialization.
func TestUncontendedLatency(t *testing.T) {
	e, n := newTestNet(4, 4)
	cfg := DefaultConfig(4, 4)
	var at sim.Time
	n.Attach(15, func(m *Message) { at = e.Now() })
	for i := 0; i < 15; i++ {
		n.Attach(i, func(*Message) {})
	}
	e.At(0, func() { n.Send(&Message{Src: 0, Dst: 15, Bytes: 16}) })
	e.Run()
	hops := sim.Time(6)
	want := hops*(cfg.RouterLatency+cfg.LinkLatency) + 0 // 1 flit
	if at != want {
		t.Fatalf("latency = %d, want %d", at, want)
	}
}

func TestMultiFlitSerialization(t *testing.T) {
	e, n := newTestNet(2, 1)
	cfg := DefaultConfig(2, 1)
	var at sim.Time
	n.Attach(1, func(m *Message) { at = e.Now() })
	n.Attach(0, func(*Message) {})
	// 80 bytes = 5 flits at 16B/flit.
	e.At(0, func() { n.Send(&Message{Src: 0, Dst: 1, Bytes: 80}) })
	e.Run()
	want := cfg.RouterLatency + cfg.LinkLatency + 4
	if at != want {
		t.Fatalf("latency = %d, want %d", at, want)
	}
}

// Two messages on the same link must serialize: the second waits for the
// first's flits to clear the link.
func TestLinkContention(t *testing.T) {
	e, n := newTestNet(2, 1)
	cfg := DefaultConfig(2, 1)
	var arrivals []sim.Time
	n.Attach(1, func(m *Message) { arrivals = append(arrivals, e.Now()) })
	n.Attach(0, func(*Message) {})
	e.At(0, func() {
		n.Send(&Message{Src: 0, Dst: 1, Bytes: 64}) // 4 flits
		n.Send(&Message{Src: 0, Dst: 1, Bytes: 16}) // 1 flit
	})
	e.Run()
	if len(arrivals) != 2 {
		t.Fatalf("got %d deliveries", len(arrivals))
	}
	perHop := cfg.RouterLatency + cfg.LinkLatency
	if arrivals[0] != perHop+3 {
		t.Errorf("first arrival %d, want %d", arrivals[0], perHop+3)
	}
	// Second message's head leaves at cycle 4 (after first's 4 flits).
	if arrivals[1] != 4+perHop {
		t.Errorf("second arrival %d, want %d", arrivals[1], 4+perHop)
	}
}

func TestOppositeLinksIndependent(t *testing.T) {
	e, n := newTestNet(2, 1)
	var got0, got1 sim.Time
	n.Attach(0, func(m *Message) { got0 = e.Now() })
	n.Attach(1, func(m *Message) { got1 = e.Now() })
	e.At(0, func() {
		n.Send(&Message{Src: 0, Dst: 1, Bytes: 16})
		n.Send(&Message{Src: 1, Dst: 0, Bytes: 16})
	})
	e.Run()
	if got0 != got1 {
		t.Fatalf("opposite-direction messages interfered: %d vs %d", got0, got1)
	}
}

func TestXYRoutingDeterministicPath(t *testing.T) {
	// In XY routing, 0->5 in a 2x4 mesh (w=2) goes east/west first then
	// vertical; verify no panic and delivery happens for all pairs.
	e, n := newTestNet(2, 4)
	count := 0
	for i := 0; i < 8; i++ {
		n.Attach(i, func(*Message) { count++ })
	}
	e.At(0, func() {
		for s := 0; s < 8; s++ {
			for d := 0; d < 8; d++ {
				n.Send(&Message{Src: s, Dst: d, Bytes: 8})
			}
		}
	})
	e.Run()
	if count != 64 {
		t.Fatalf("delivered %d, want 64", count)
	}
}

func TestStats(t *testing.T) {
	e, n := newTestNet(4, 4)
	for i := 0; i < 16; i++ {
		n.Attach(i, func(*Message) {})
	}
	e.At(0, func() {
		n.Send(&Message{Src: 0, Dst: 15, Bytes: 32}) // 2 flits
		n.Send(&Message{Src: 3, Dst: 3, Bytes: 8})   // local
	})
	e.Run()
	s := n.Stats()
	if s.Messages != 2 {
		t.Errorf("Messages = %d", s.Messages)
	}
	if s.Flits != 3 {
		t.Errorf("Flits = %d", s.Flits)
	}
	if s.AvgLatency() <= 0 {
		t.Error("AvgLatency should be positive")
	}
	if s.MaxLatency < sim.Time(6*3) {
		t.Errorf("MaxLatency = %d too small", s.MaxLatency)
	}
}

func TestAttachTwicePanics(t *testing.T) {
	_, n := newTestNet(2, 2)
	n.Attach(0, func(*Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("double Attach did not panic")
		}
	}()
	n.Attach(0, func(*Message) {})
}

func TestBadRoutePanics(t *testing.T) {
	e, n := newTestNet(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad route did not panic")
		}
	}()
	e.At(0, func() { n.Send(&Message{Src: 0, Dst: 99, Bytes: 8}) })
	e.Run()
}

// Property: every message is delivered exactly once, to the right tile, and
// latency is at least the uncontended minimum.
func TestPropertyDeliveryAndMinLatency(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	f := func(pairs []uint16) bool {
		e := sim.NewEngine()
		n := New(e, cfg)
		type rec struct {
			dst int
			lat sim.Time
		}
		var recs []rec
		inject := make(map[*Message]sim.Time)
		for i := 0; i < 16; i++ {
			i := i
			n.Attach(i, func(m *Message) {
				recs = append(recs, rec{i, e.Now() - inject[m]})
			})
		}
		var msgs []*Message
		e.At(0, func() {
			for _, p := range pairs {
				src := int(p) % 16
				dst := int(p>>4) % 16
				m := &Message{Src: src, Dst: dst, Bytes: 8 + int(p%64)}
				inject[m] = e.Now()
				msgs = append(msgs, m)
				n.Send(m)
			}
		})
		e.Run()
		if len(recs) != len(msgs) {
			return false
		}
		for i, m := range msgs {
			// With same-cycle injection and deterministic ordering,
			// deliveries can reorder, so just check latency bound per
			// message by recomputing min for its pair via any record.
			_ = i
			minLat := sim.Time(n.Hops(m.Src, m.Dst))*(cfg.RouterLatency+cfg.LinkLatency) + cfg.LocalLatency*boolToTime(m.Src == m.Dst)
			found := false
			for _, r := range recs {
				if r.dst == m.Dst && r.lat >= minLat {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func boolToTime(b bool) sim.Time {
	if b {
		return 1
	}
	return 0
}

func BenchmarkMeshAllToAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		n := New(e, DefaultConfig(8, 8))
		for t := 0; t < 64; t++ {
			n.Attach(t, func(*Message) {})
		}
		e.At(0, func() {
			for s := 0; s < 64; s++ {
				n.Send(&Message{Src: s, Dst: (s * 7) % 64, Bytes: 16})
			}
		})
		e.Run()
	}
}
