package noc

import (
	"sort"
	"testing"

	"misar/internal/sim"
)

// rowShard maps a W×H mesh onto k shards by row bands (the same contiguous
// partition the machine uses), so boundary hops are the north/south links.
func rowShard(w, h, k int) func(int) int {
	rowsPer := (h + k - 1) / k
	return func(tile int) int {
		s := (tile / w) / rowsPer
		if s >= k {
			s = k - 1
		}
		return s
	}
}

// delivery is one observed arrival, comparable across kernel modes.
type delivery struct {
	at       sim.Time
	src, dst int
	payload  int
}

func runTraffic(t *testing.T, shards int) ([]delivery, Stats) {
	t.Helper()
	const w, h = 4, 4
	cfg := DefaultConfig(w, h)
	var net *Network
	var engines []*sim.Engine
	var group *sim.ShardGroup
	if shards == 0 { // serial reference
		e := sim.NewEngine()
		net = New(e, cfg)
		engines = []*sim.Engine{e}
	} else {
		group = sim.NewShardGroup(shards, cfg.RouterLatency+cfg.LinkLatency)
		net = New(group.Engine(0), cfg)
		net.SetShards(group, rowShard(w, h, shards))
		engines = group.Engines()
	}
	shardOf := rowShard(w, h, max(shards, 1))

	// One delivery lane per tile: handlers append only to their own tile's
	// lane, so recording is race-free in sharded mode.
	lanes := make([][]delivery, w*h)
	for tile := 0; tile < w*h; tile++ {
		tile := tile
		eng := engines[0]
		if shards > 0 {
			eng = engines[shardOf(tile)]
		}
		net.Attach(tile, func(m *Message) {
			lanes[tile] = append(lanes[tile], delivery{eng.Now(), m.Src, m.Dst, m.Payload.(int)})
		})
	}

	// Deterministic all-to-some traffic crossing every shard boundary,
	// injected from each source tile's own engine.
	id := 0
	for src := 0; src < w*h; src++ {
		eng := engines[0]
		if shards > 0 {
			eng = engines[shardOf(src)]
		}
		for _, dst := range []int{(src + 5) % (w * h), (src + w*2) % (w * h), src} {
			src, dst, pid := src, dst, id
			eng.At(sim.Time(1+(id%3)), func() { net.Post(src, dst, 24, pid) })
			id++
		}
	}

	if shards == 0 {
		engines[0].Run()
	} else if drained, _ := group.RunUntilCheck(1_000_000, 1, nil); !drained {
		t.Fatal("sharded run did not drain")
	}

	var all []delivery
	for _, lane := range lanes {
		all = append(all, lane...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].payload < all[j].payload
	})
	return all, net.Stats()
}

// The traffic above has per-link contention, but identical injection cycles
// and deterministic routing: the sharded network must deliver every message
// at exactly the serial network's arrival cycle, because conservative
// windows never reorder physically-ordered link grants — same-cycle grant
// ties on a single link cannot occur for distinct messages here.
func TestShardedNetworkMatchesSerialTiming(t *testing.T) {
	serial, serialStats := runTraffic(t, 0)
	for _, k := range []int{1, 2, 4} {
		got, gotStats := runTraffic(t, k)
		if len(got) != len(serial) {
			t.Fatalf("k=%d: %d deliveries, serial %d", k, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("k=%d: delivery %d = %+v, serial %+v", k, i, got[i], serial[i])
			}
		}
		if gotStats.Messages != serialStats.Messages ||
			gotStats.Flits != serialStats.Flits ||
			gotStats.HopCount != serialStats.HopCount ||
			gotStats.TotalLatency != serialStats.TotalLatency ||
			gotStats.MaxLatency != serialStats.MaxLatency {
			t.Fatalf("k=%d: merged stats %+v, serial %+v", k, gotStats, serialStats)
		}
		if gotStats.HopHist.Count() != serialStats.HopHist.Count() {
			t.Fatalf("k=%d: hop hist count %d, serial %d",
				k, gotStats.HopHist.Count(), serialStats.HopHist.Count())
		}
	}
}

func TestSetShardsRejectsIncompatibleModes(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	g := sim.NewShardGroup(2, 3)

	cfg := DefaultConfig(4, 4)
	cfg.RouteAtInjection = true
	nAtInj := New(g.Engine(0), cfg)
	mustPanic("RouteAtInjection+SetShards", func() { nAtInj.SetShards(g, rowShard(4, 4, 2)) })

	nDelay := New(g.Engine(0), DefaultConfig(4, 4))
	nDelay.SetDelay(func(src, dst int) sim.Time { return 1 })
	mustPanic("delay+SetShards", func() { nDelay.SetShards(g, rowShard(4, 4, 2)) })

	nSharded := New(g.Engine(0), DefaultConfig(4, 4))
	nSharded.SetShards(g, rowShard(4, 4, 2))
	mustPanic("SetShards+SetDelay", func() { nSharded.SetDelay(func(src, dst int) sim.Time { return 1 }) })

	big := sim.NewShardGroup(2, 100)
	nBig := New(big.Engine(0), DefaultConfig(4, 4))
	mustPanic("oversized lookahead", func() { nBig.SetShards(big, rowShard(4, 4, 2)) })

	nMap := New(g.Engine(0), DefaultConfig(4, 4))
	mustPanic("bad tile map", func() { nMap.SetShards(g, func(int) int { return 7 }) })
}

