package noc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"misar/internal/sim"
)

// The coherence protocol and the MSA's silent-lock race resolution both
// rely on point-to-point ordering: two messages from the same source to the
// same destination are delivered in injection order. This holds in the mesh
// because XY routing is deterministic (same path) and each link serves
// flits in arrival order. These tests pin the property down.

func TestPointToPointOrdering(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, DefaultConfig(4, 4))
	var got []int
	for i := 0; i < 16; i++ {
		i := i
		n.Attach(i, func(m *Message) {
			if i == 13 {
				got = append(got, m.Payload.(int))
			}
		})
	}
	// Inject 50 messages 0->13 at staggered times with varying sizes, plus
	// cross traffic that shares links.
	e.At(0, func() {
		for k := 0; k < 50; k++ {
			n.Send(&Message{Src: 0, Dst: 13, Bytes: 8 + (k%5)*16, Payload: k})
			if k%3 == 0 {
				n.Send(&Message{Src: 1, Dst: 12, Bytes: 64})
				n.Send(&Message{Src: 4, Dst: 15, Bytes: 32})
			}
		}
	})
	e.Run()
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	for k, v := range got {
		if v != k {
			t.Fatalf("p2p ordering violated at %d: %v", k, got[:k+1])
		}
	}
}

// Property: same-source-same-destination FIFO holds under random injection
// times, sizes, and background traffic.
func TestPropertyPointToPointFIFO(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		n := New(e, DefaultConfig(4, 4))
		src := rng.Intn(16)
		dst := rng.Intn(16)
		var got []int
		for i := 0; i < 16; i++ {
			i := i
			n.Attach(i, func(m *Message) {
				if seqv, ok := m.Payload.(int); ok && i == dst {
					got = append(got, seqv)
				}
			})
		}
		count := 20 + rng.Intn(30)
		tick := sim.Time(0)
		for k := 0; k < count; k++ {
			k := k
			tick += sim.Time(rng.Intn(5))
			at := tick
			e.At(at, func() {
				n.Send(&Message{Src: src, Dst: dst, Bytes: 8 + rng.Intn(80), Payload: k})
				// Random cross traffic.
				for j := 0; j < rng.Intn(3); j++ {
					n.Send(&Message{Src: rng.Intn(16), Dst: rng.Intn(16), Bytes: 8 + rng.Intn(64), Payload: "x"})
				}
			})
		}
		e.Run()
		if len(got) != count {
			return false
		}
		for k, v := range got {
			if v != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
