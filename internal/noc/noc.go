// Package noc models the on-chip interconnect: a packet-switched 2D mesh
// with XY dimension-order routing, per-hop router and link latency, and
// bandwidth contention (one flit per directed link per cycle).
//
// The model is cut-through at message granularity: a message's head flit
// advances hop by hop, waiting at each hop until the outgoing link is free;
// the link is then occupied for the message's full flit count, and the tail
// arrives flits-1 cycles after the head. This preserves the two properties
// the MiSAR evaluation depends on — distance-dependent latency (MSA requests
// travel to the home tile and back) and contention-dependent latency
// (invalidation storms from software synchronization slow each other down) —
// without simulating individual flit buffers as Booksim does (see DESIGN.md,
// substitution table).
//
// The per-hop walk runs on pooled messages and static event handlers, so
// steady-state traffic injected with Post allocates nothing. An approximate
// single-event-per-message model is available via Config.RouteAtInjection.
package noc

import (
	"fmt"

	"misar/internal/sim"
	"misar/internal/stats"
)

// Config describes mesh geometry and timing.
type Config struct {
	Width, Height int      // mesh dimensions; Width*Height tiles
	RouterLatency sim.Time // per-hop pipeline latency in cycles
	LinkLatency   sim.Time // per-hop wire latency in cycles
	FlitBytes     int      // flit width; message sizes are rounded up
	LocalLatency  sim.Time // latency for a tile sending to itself
	// RouteAtInjection opts in to the approximate fast model: the whole XY
	// route's links are reserved at Send time and a single delivery event is
	// scheduled, instead of one event per hop with each link reserved when
	// the head flit reaches it. The two models agree whenever routes are
	// uncontended, but under contention they diverge: eager reservation
	// hands a link to the earlier-injected message even when a later-
	// injected message's head would physically reach it first. The golden
	// harness measured that divergence at 1–4% on the contended Fig. 5
	// microbenchmarks (see DESIGN.md "Event kernel"), so the per-hop model
	// remains the default and the reference.
	RouteAtInjection bool
}

// DefaultConfig returns the timing used in the evaluation: a 2-cycle router,
// 1-cycle links and 16-byte flits, matching typical many-core NoC parameters
// of the paper's era.
func DefaultConfig(width, height int) Config {
	return Config{
		Width:         width,
		Height:        height,
		RouterLatency: 2,
		LinkLatency:   1,
		FlitBytes:     16,
		LocalLatency:  1,
	}
}

// Message is a packet traversing the mesh. Payload is opaque to the network.
type Message struct {
	Src, Dst int
	Bytes    int // payload size; converted to flits by the network
	Payload  any

	// In-flight bookkeeping, owned by the network between injection and
	// delivery. Keeping the walk state here (rather than in per-hop
	// closures) lets every hop and delivery event be a pooled, static
	// (handler, *Message) pair — the steady-state send path allocates
	// nothing.
	net    *Network
	inject sim.Time
	at     int // tile the head flit has reached
	nflits int
	pooled bool // recycled into the network's free list after delivery
}

// Handler receives messages delivered to a tile.
type Handler func(*Message)

// direction indices for the four mesh links plus ejection.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
	numDirs
)

// DirNames labels the four directed mesh links in index order (the index a
// link occupies in LinkFlits).
var DirNames = [numDirs]string{"east", "west", "north", "south"}

// Stats aggregates network activity.
type Stats struct {
	Messages     uint64
	Flits        uint64
	TotalLatency sim.Time // sum over messages of (deliver - inject)
	MaxLatency   sim.Time
	HopCount     uint64
	// HopHist distributes messages over their XY route length (local
	// deliveries observe 0 hops).
	HopHist stats.Histogram
}

// AvgLatency returns the mean end-to-end message latency in cycles.
func (s *Stats) AvgLatency() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Messages)
}

// Network is a W×H mesh. Tiles are numbered row-major: tile = y*W + x.
type Network struct {
	cfg      Config
	engine   *sim.Engine
	handlers []Handler
	// linkFree[tile][dir] is the first cycle at which that directed link can
	// accept a new message's first flit.
	linkFree [][]sim.Time
	// linkFlits[tile][dir] counts flits carried by that directed link.
	linkFlits [][]uint64
	// free[shard] recycles Post-injected messages after delivery. Serial
	// networks have exactly one pool. In sharded mode Post pops from the
	// source tile's shard pool and delivery pushes to the destination
	// tile's, so each pool is touched only by its own shard's goroutine.
	free [][]*Message
	// stats[shard] accumulates network activity; Stats() merges. Injection
	// counts accrue to the source tile's shard, hop counts to the hopping
	// tile's, latency to the destination's — always the shard executing.
	stats []Stats

	// Sharded mode (nil group = serial). shardOf maps tile -> shard; every
	// event touching tile state runs on that tile's shard engine, and hops
	// crossing a shard boundary travel through group.Post with at least
	// RouterLatency+LinkLatency of slack — which is why the group lookahead
	// must not exceed that sum.
	group   *sim.ShardGroup
	shardOf []int
	// crossCheck, when installed on a sharded network, observes every
	// boundary-crossing arrival (destination shard, arrival cycle). The
	// machine wires it to fault.Checker.ShardDelivery, the runtime monitor
	// of the conservative kernel's no-straggler property.
	crossCheck func(shard int, when sim.Time)

	// delay, when installed, returns extra injection latency per message
	// (fault-campaign jitter). minStart[src*tiles+dst] is the earliest route
	// start the next message of that pair may use: route starts are kept
	// strictly increasing per (src,dst), so jitter can reorder messages
	// between pairs but never within one — the protocol depends on
	// point-to-point ordering (DESIGN.md §9.3: LOCK_SILENT before InvAck).
	delay    func(src, dst int) sim.Time
	minStart []sim.Time
}

// New builds the mesh and attaches it to the engine.
func New(engine *sim.Engine, cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d", cfg.Width, cfg.Height))
	}
	if cfg.FlitBytes <= 0 {
		cfg.FlitBytes = 16
	}
	n := cfg.Width * cfg.Height
	nw := &Network{
		cfg:       cfg,
		engine:    engine,
		handlers:  make([]Handler, n),
		linkFree:  make([][]sim.Time, n),
		linkFlits: make([][]uint64, n),
	}
	for i := range nw.linkFree {
		nw.linkFree[i] = make([]sim.Time, numDirs)
		nw.linkFlits[i] = make([]uint64, numDirs)
	}
	nw.free = make([][]*Message, 1)
	nw.stats = make([]Stats, 1)
	return nw
}

// SetShards switches the network into sharded mode: tile state is owned by
// the shard tileShard assigns it, hop events execute on the owning shard's
// engine, and boundary-crossing hops are handed over through the group.
// Must be called before any traffic. The group's lookahead must not exceed
// RouterLatency+LinkLatency (the minimum cross-tile hop), and the
// approximate route-at-injection model and injection-delay hooks are
// incompatible with sharding (both touch remote-tile state directly).
func (n *Network) SetShards(g *sim.ShardGroup, tileShard func(tile int) int) {
	if n.cfg.RouteAtInjection {
		panic("noc: RouteAtInjection is incompatible with sharded mode (eager remote link reservation)")
	}
	if n.delay != nil {
		panic("noc: injection-delay hook is incompatible with sharded mode")
	}
	if minHop := n.cfg.RouterLatency + n.cfg.LinkLatency; g.Lookahead() > minHop {
		panic(fmt.Sprintf("noc: shard lookahead %d exceeds min hop latency %d", g.Lookahead(), minHop))
	}
	n.group = g
	n.shardOf = make([]int, n.Tiles())
	for t := range n.shardOf {
		s := tileShard(t)
		if s < 0 || s >= g.Shards() {
			panic(fmt.Sprintf("noc: tile %d mapped to shard %d of %d", t, s, g.Shards()))
		}
		n.shardOf[t] = s
	}
	n.free = make([][]*Message, g.Shards())
	n.stats = make([]Stats, g.Shards())
}

// SetDeliveryCheck installs the cross-shard arrival monitor (sharded mode
// only). fn runs on the destination shard's goroutine at each boundary
// arrival; it must be internally synchronized (fault.Checker.Synchronize).
func (n *Network) SetDeliveryCheck(fn func(shard int, when sim.Time)) {
	if n.group == nil {
		panic("noc: SetDeliveryCheck requires sharded mode (SetShards first)")
	}
	n.crossCheck = fn
}

// engineAt returns the engine on which events for tile's state must run.
func (n *Network) engineAt(tile int) *sim.Engine {
	if n.group == nil {
		return n.engine
	}
	return n.group.Engine(n.shardOf[tile])
}

// statsAt returns the stats accumulator owned by tile's shard.
func (n *Network) statsAt(tile int) *Stats {
	if n.group == nil {
		return &n.stats[0]
	}
	return &n.stats[n.shardOf[tile]]
}

// Tiles returns the number of tiles in the mesh.
func (n *Network) Tiles() int { return n.cfg.Width * n.cfg.Height }

// Attach registers the message handler for a tile. Exactly one handler per
// tile; re-attaching panics to catch wiring bugs.
func (n *Network) Attach(tile int, h Handler) {
	if n.handlers[tile] != nil {
		panic(fmt.Sprintf("noc: tile %d already has a handler", tile))
	}
	n.handlers[tile] = h
}

// Stats returns a snapshot of accumulated network statistics. In sharded
// mode the per-shard accumulators are merged in shard order — sums for
// counts and latency totals, max for the latency high-water mark, histogram
// merge for the hop distribution — so the result is deterministic for a
// deterministic run. Call only between windows (e.g. after the run).
func (n *Network) Stats() Stats {
	if len(n.stats) == 1 {
		return n.stats[0]
	}
	var out Stats
	for i := range n.stats {
		s := &n.stats[i]
		out.Messages += s.Messages
		out.Flits += s.Flits
		out.TotalLatency += s.TotalLatency
		if s.MaxLatency > out.MaxLatency {
			out.MaxLatency = s.MaxLatency
		}
		out.HopCount += s.HopCount
		out.HopHist.Merge(&s.HopHist)
	}
	return out
}

// SetDelay installs a per-message injection-delay hook (nil removes it).
// With no hook installed the send path is untouched; with one installed,
// every message's route start is clamped to preserve per-(src,dst) FIFO
// order even when only some messages are delayed.
func (n *Network) SetDelay(fn func(src, dst int) sim.Time) {
	if n.group != nil && fn != nil {
		panic("noc: injection-delay hook is incompatible with sharded mode")
	}
	n.delay = fn
	if fn != nil && n.minStart == nil {
		n.minStart = make([]sim.Time, n.Tiles()*n.Tiles())
	}
}

// LinkFlits returns the flits carried so far by tile's directed link in
// direction dir (an index into DirNames).
func (n *Network) LinkFlits(tile, dir int) uint64 { return n.linkFlits[tile][dir] }

// XY returns mesh coordinates for a tile.
func (n *Network) XY(tile int) (x, y int) {
	return tile % n.cfg.Width, tile / n.cfg.Width
}

// Hops returns the XY-routing hop count between two tiles.
func (n *Network) Hops(src, dst int) int {
	sx, sy := n.XY(src)
	dx, dy := n.XY(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// flits converts a byte size to a flit count (minimum one).
func (n *Network) flits(bytes int) int {
	f := (bytes + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes
	if f < 1 {
		f = 1
	}
	return f
}

// Post injects a message built from the network's internal pool: the
// message struct is recycled after the destination handler returns, so the
// steady-state send path allocates nothing. Handlers must not retain the
// *Message past their return (retaining the Payload is fine — the network
// never touches it after delivery).
func (n *Network) Post(src, dst, bytes int, payload any) {
	pool := 0
	if n.group != nil {
		pool = n.shardOf[src]
	}
	var m *Message
	if k := len(n.free[pool]); k > 0 {
		m = n.free[pool][k-1]
		n.free[pool][k-1] = nil
		n.free[pool] = n.free[pool][:k-1]
	} else {
		m = &Message{}
	}
	m.Src, m.Dst, m.Bytes, m.Payload = src, dst, bytes, payload
	m.pooled = true
	n.route(m)
}

// Send injects a caller-owned message at the current cycle. Delivery invokes
// the destination tile's handler at the computed arrival time. The message
// is never recycled; allocation-sensitive senders should use Post.
func (n *Network) Send(m *Message) {
	m.pooled = false
	n.route(m)
}

// route applies the optional injection-delay hook, then hands the message
// to routeNow — immediately on the common path, or via a scheduled event
// when the start was pushed into the future.
func (n *Network) route(m *Message) {
	if n.delay == nil {
		n.routeNow(m)
		return
	}
	now := n.engine.Now()
	start := now + n.delay(m.Src, m.Dst)
	k := m.Src*n.Tiles() + m.Dst
	if min := n.minStart[k]; start < min {
		start = min
	}
	n.minStart[k] = start + 1
	if start > now {
		m.net = n
		n.engine.AtCall(start, routeNowEvent, m)
		return
	}
	n.routeNow(m)
}

// routeNowEvent resumes a jitter-delayed message at its clamped start time.
func routeNowEvent(arg any) {
	m := arg.(*Message)
	m.net.routeNow(m)
}

// routeNow reserves the message's path and schedules its delivery.
func (n *Network) routeNow(m *Message) {
	if m.Src < 0 || m.Src >= n.Tiles() || m.Dst < 0 || m.Dst >= n.Tiles() {
		panic(fmt.Sprintf("noc: bad route %d->%d", m.Src, m.Dst))
	}
	inject := n.engineAt(m.Src).Now()
	flits := n.flits(m.Bytes)
	st := n.statsAt(m.Src)
	st.Messages++
	st.Flits += uint64(flits)
	st.HopHist.Observe(uint64(n.Hops(m.Src, m.Dst)))
	m.net = n
	m.inject = inject
	m.nflits = flits

	if m.Src == m.Dst {
		n.engineAt(m.Src).AtCall(inject+n.cfg.LocalLatency, deliverMsg, m)
		return
	}
	if !n.cfg.RouteAtInjection {
		m.at = m.Src
		n.hop(m)
		return
	}
	// Route-at-injection: walk the XY route once, reserving each directed
	// link in path order, then schedule a single delivery event. This makes
	// the reservations the per-hop walk would make, but eagerly — under
	// contention that reorders link grants, so this model is approximate
	// (see Config.RouteAtInjection).
	head := inject
	at := m.Src
	for at != m.Dst {
		next, dir := n.nextHop(at, m.Dst)
		start := head
		if free := n.linkFree[at][dir]; free > start {
			start = free
		}
		n.linkFree[at][dir] = start + sim.Time(flits)
		n.linkFlits[at][dir] += uint64(flits)
		n.stats[0].HopCount++ // route-at-injection is serial-only
		head = start + n.cfg.RouterLatency + n.cfg.LinkLatency
		at = next
	}
	// Tail arrives flits-1 cycles after the head.
	n.engine.AtCall(head+sim.Time(flits-1), deliverMsg, m)
}

// hop reserves the link out of m.at for the head flit, which is ready to
// leave now, and schedules hopArrived at the next router. Called at
// injection time for the first hop and from hopArrived for the rest, so the
// head-ready time is always the current cycle.
func (n *Network) hop(m *Message) {
	next, dir := n.nextHop(m.at, m.Dst)
	// The head must wait for the link to be free, then occupies it for the
	// message's full flit count.
	start := n.engineAt(m.at).Now()
	if free := n.linkFree[m.at][dir]; free > start {
		start = free
	}
	n.linkFree[m.at][dir] = start + sim.Time(m.nflits)
	n.linkFlits[m.at][dir] += uint64(m.nflits)
	n.statsAt(m.at).HopCount++
	arrive := start + n.cfg.RouterLatency + n.cfg.LinkLatency
	if n.group != nil {
		if from, to := n.shardOf[m.at], n.shardOf[next]; from != to {
			// Boundary hop: hand the message to the owning shard. arrive is
			// at least now+RouterLatency+LinkLatency >= now+lookahead (the
			// constraint SetShards enforced), so the post is always
			// timestamp-safe; after this call the source shard must not
			// touch m again.
			m.at = next
			if n.crossCheck != nil {
				n.group.Post(from, to, arrive, crossArrived, m)
			} else {
				n.group.Post(from, to, arrive, hopArrived, m)
			}
			return
		}
	}
	m.at = next
	n.engineAt(m.at).AtCall(arrive, hopArrived, m)
}

// crossArrived is hopArrived for boundary-crossing hops on a monitored
// network: it reports the arrival to the installed crossCheck first.
func crossArrived(arg any) {
	m := arg.(*Message)
	n := m.net
	n.crossCheck(n.shardOf[m.at], n.engineAt(m.at).Now())
	hopArrived(arg)
}

// hopArrived fires when the head flit reaches a router: either the
// destination — where the tail trails the head by nflits-1 cycles — or an
// intermediate hop, where the head immediately contends for the next link.
func hopArrived(arg any) {
	m := arg.(*Message)
	n := m.net
	if m.at == m.Dst {
		e := n.engineAt(m.at)
		e.AtCall(e.Now()+sim.Time(m.nflits-1), deliverMsg, m)
		return
	}
	n.hop(m)
}

// deliverMsg is the delivery event handler: it records latency statistics,
// invokes the destination handler, and recycles pool-owned messages.
func deliverMsg(arg any) {
	m := arg.(*Message)
	n := m.net
	st := n.statsAt(m.Dst)
	lat := n.engineAt(m.Dst).Now() - m.inject
	st.TotalLatency += lat
	if lat > st.MaxLatency {
		st.MaxLatency = lat
	}
	h := n.handlers[m.Dst]
	if h == nil {
		panic(fmt.Sprintf("noc: no handler attached to tile %d", m.Dst))
	}
	pool := 0
	if n.group != nil {
		pool = n.shardOf[m.Dst]
	}
	h(m)
	if m.pooled {
		*m = Message{}
		n.free[pool] = append(n.free[pool], m)
	}
}

// nextHop computes XY routing: correct X first, then Y.
func (n *Network) nextHop(at, dst int) (next, dir int) {
	ax, ay := n.XY(at)
	dx, dy := n.XY(dst)
	switch {
	case ax < dx:
		return at + 1, dirEast
	case ax > dx:
		return at - 1, dirWest
	case ay < dy:
		return at + n.cfg.Width, dirSouth
	case ay > dy:
		return at - n.cfg.Width, dirNorth
	}
	panic("noc: nextHop called with at == dst")
}
