package cpu

import (
	"fmt"

	"misar/internal/coherence"
	corepkg "misar/internal/core"
	"misar/internal/fault"
	"misar/internal/isa"
	"misar/internal/memory"
	"misar/internal/metrics"
	"misar/internal/obs"
	"misar/internal/sim"
	"misar/internal/stats"
	"misar/internal/trace"
)

// Mode selects how synchronization instructions are implemented.
type Mode uint8

const (
	// ModeMSA sends synchronization requests to the MSA home tile.
	ModeMSA Mode = iota
	// ModeAlwaysFail is the paper's MSA-0: every instruction returns FAIL
	// locally without any message — the trivial ISA implementation.
	ModeAlwaysFail
	// ModeIdeal resolves synchronization with zero latency and perfect
	// semantics (the paper's Ideal configuration).
	ModeIdeal
)

// Config describes one core's synchronization behaviour.
type Config struct {
	Mode Mode
	// HWSyncOpt enables the §5 silent re-acquire fast path at the core.
	HWSyncOpt bool
	// IssueLatency is the per-synchronization-instruction pipeline cost
	// (the instructions act as fences and issue at commit; the paper found
	// the resulting stalls negligible, and so do we — but we model them).
	IssueLatency sim.Time
}

// DefaultConfig returns the standard core configuration.
func DefaultConfig() Config {
	return Config{Mode: ModeMSA, HWSyncOpt: true, IssueLatency: 1}
}

// Stats counts per-core activity.
type Stats struct {
	SyncIssued      [9]uint64 // indexed by isa.SyncOp
	SilentLocks     uint64    // LOCKs completed locally via the HWSync bit
	SyncStallCycles sim.Time  // cycles spent waiting for sync responses
	// SyncStallByKind breaks SyncStallCycles down by the class of the
	// stalling instruction (indexed by LatencyKind).
	SyncStallByKind [numLatKinds]sim.Time
	ComputeCycles   uint64
	Suspends        uint64
	Resumes         uint64
	Migrations      uint64
}

// LatencyKind buckets the per-operation latency histograms a core keeps.
type LatencyKind int

// Histogram indices for Core.Latency.
const (
	LatLock LatencyKind = iota
	LatUnlock
	LatBarrier
	LatCond
	numLatKinds
)

func latKindOf(op isa.SyncOp) LatencyKind {
	switch op {
	case isa.OpLock:
		return LatLock
	case isa.OpUnlock:
		return LatUnlock
	case isa.OpBarrier:
		return LatBarrier
	}
	return LatCond
}

// outstanding tracks the single in-flight synchronization instruction.
type outstanding struct {
	t      *Thread
	op     isa.SyncOp
	addr   memory.Addr
	lock   memory.Addr
	issued sim.Time
	nacked bool // a SUSPEND was nacked; park on completion
}

// Core is one tile's processor. It adopts at most one thread at a time and
// has at most one outstanding synchronization instruction.
type Core struct {
	id     int
	tiles  int
	cfg    Config
	engine *sim.Engine
	l1     *coherence.L1
	// sendSync delivers a request to the MSA at the sync address's home.
	sendSync func(home int, r *corepkg.Req)
	ideal    *Ideal // shared zero-latency implementation (ModeIdeal)

	cur *Thread
	out *outstanding
	// outBuf backs out: one synchronization instruction is in flight at a
	// time, so the tracking record never needs a fresh allocation.
	outBuf outstanding
	// pendReq parks a dispatched request across its issue-latency event for
	// the static handlers below; memDone is the one closure every memory
	// access completes through. Both rely on the same single-outstanding-
	// operation invariant: c.cur cannot change between dispatch and the
	// event firing, because the issuing thread stays blocked until then.
	pendReq   threadReq
	memDone   func(v uint64)
	idealDone func(res isa.Result)
	rmwFn     coherence.RMWFunc
	// reqPool supplies outgoing MSA requests (nil: plain allocation).
	reqPool *corepkg.ReqPool
	gen     uint64 // context-switch generation (invalidates stale grants)
	// expectGrant counts HWSync block grants this thread is entitled to
	// install, per line. Cleared on context switch.
	expectGrant map[memory.Addr]int

	stats    Stats
	lat      [numLatKinds]stats.Histogram
	tracer   *trace.Buffer       // nil unless tracing is attached
	metrics  *metrics.Registry   // nil unless the machine is metered
	check    *fault.Checker      // nil unless invariant checking is enabled
	injector *fault.Injector     // nil unless fault injection is enabled
	flight   *obs.FlightRecorder // this core's shard recorder; nil when absent
}

// Latency returns the core's latency histogram for one operation class.
func (c *Core) Latency(k LatencyKind) *stats.Histogram { return &c.lat[k] }

// SetTracer attaches an event recorder to this core (nil detaches).
func (c *Core) SetTracer(b *trace.Buffer) { c.tracer = b }

// SetMetrics attaches the machine's metrics registry (nil detaches). The
// core itself records through its Stats struct either way; the registry is
// exposed to the thread via Env.Metrics so the synchronization runtime can
// resolve its own instruments.
func (c *Core) SetMetrics(r *metrics.Registry) { c.metrics = r }

// Metrics returns the attached registry (nil when metering is off).
func (c *Core) Metrics() *metrics.Registry { return c.metrics }

// SetChecker attaches the safety-invariant checker (nil detaches). The core
// registers silent lock re-acquisitions (the §5 fast path completes locally,
// before the home slice learns of it) and exposes the checker to thread code
// via Env.Check.
func (c *Core) SetChecker(ch *fault.Checker) { c.check = ch }

// SetReqPool makes outgoing MSA requests come from p (the machine recycles
// each request after the destination slice handles it).
func (c *Core) SetReqPool(p *corepkg.ReqPool) { c.reqPool = p }

// SetInjector attaches the machine's fault injector (nil detaches). The core
// itself injects nothing; the injector is exposed to thread code via
// Env.Faults so the TM runtime can roll its spurious-abort site.
func (c *Core) SetInjector(i *fault.Injector) { c.injector = i }

// SetFlight attaches this core's shard flight recorder (nil detaches),
// exposed to thread code via Env.Flight for transaction begin/commit/abort
// events.
func (c *Core) SetFlight(f *obs.FlightRecorder) { c.flight = f }

func (c *Core) trace(kind trace.Kind, addr memory.Addr, detail string) {
	if c.tracer == nil {
		return
	}
	c.tracer.Record(trace.Event{
		At: c.engine.Now(), Tile: c.id, Kind: kind,
		Addr: addr, Core: c.id, Detail: detail,
	})
}

// NewCore builds a core. sendSync is wired by the machine; ideal may be nil
// unless Mode is ModeIdeal.
func NewCore(id, tiles int, cfg Config, engine *sim.Engine, l1 *coherence.L1,
	sendSync func(home int, r *corepkg.Req), ideal *Ideal) *Core {
	c := &Core{
		id: id, tiles: tiles, cfg: cfg, engine: engine, l1: l1,
		sendSync: sendSync, ideal: ideal,
		expectGrant: make(map[memory.Addr]int),
	}
	c.memDone = func(v uint64) { c.resume(c.cur, v) }
	c.idealDone = func(res isa.Result) { c.resumeSyncResult(c.cur, res) }
	// rmwFn interprets the pending RMW request when the L1 commits it. The
	// core has one access in flight at a time and the issuing thread stays
	// blocked until it commits, so pendReq is stable even across a miss.
	c.rmwFn = func(st *memory.Store, a memory.Addr) uint64 {
		r := &c.pendReq
		switch r.rmw {
		case rmwAdd:
			return st.Add(a, r.val)
		case rmwSwap:
			return st.Swap(a, r.val)
		default: // rmwCAS
			if _, ok := st.CompareAndSwap(a, r.val2, r.val); ok {
				return 1
			}
			return 0
		}
	}
	l1.SetAcceptHWSync(func(line memory.Addr) bool {
		if c.expectGrant[line] > 0 {
			c.expectGrant[line]--
			return true
		}
		return false
	})
	return c
}

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Outstanding reports the core's in-flight synchronization instruction for
// the liveness watchdog: operation, address, and issue cycle. ok is false
// when nothing is outstanding.
func (c *Core) Outstanding() (op isa.SyncOp, addr memory.Addr, issued sim.Time, ok bool) {
	if c.out == nil {
		return 0, 0, 0, false
	}
	return c.out.op, c.out.addr, c.out.issued, true
}

// Current returns the thread currently adopted by this core (nil if idle).
func (c *Core) Current() *Thread { return c.cur }

// ID returns the core's tile id.
func (c *Core) ID() int { return c.id }

// adopt installs a thread on this core and processes its next request.
func (c *Core) adopt(t *Thread) {
	if c.cur != nil {
		panic(fmt.Sprintf("cpu: core %d already runs thread %d", c.id, c.cur.id))
	}
	if c.out != nil {
		panic(fmt.Sprintf("cpu: core %d adopting a thread with a response still in flight", c.id))
	}
	c.cur = t
	t.core = c
}

// await blocks the kernel until the current thread issues its next request,
// then dispatches it.
func (c *Core) await() {
	t := c.cur
	req, ok := <-t.toKernel
	if !ok {
		c.cur = nil
		t.finish()
		return
	}
	c.dispatch(t, req)
}

// resume delivers a result to the thread and processes its next request —
// unless a suspension is pending, in which case the thread parks with the
// result delivered when it is resumed.
func (c *Core) resume(t *Thread, v uint64) {
	if t.wantSuspend {
		t.park(parkedResult, v)
		return
	}
	t.toThread <- v
	c.await()
}

func (c *Core) dispatch(t *Thread, r threadReq) {
	switch r.kind {
	case reqCompute:
		c.stats.ComputeCycles += r.cycles
		c.engine.AfterCall(sim.Time(r.cycles), coreComputeDone, c)
	case reqLoad:
		c.l1.Access(r.addr, coherence.AccLoad, 0, nil, c.memDone)
	case reqStore:
		c.l1.Access(r.addr, coherence.AccStore, r.val, nil, c.memDone)
	case reqRMW:
		c.pendReq = r
		c.l1.Access(r.addr, coherence.AccRMW, 0, c.rmwFn, c.memDone)
	case reqSync:
		c.stats.SyncIssued[r.op]++
		c.trace(trace.Issue, r.addr, r.op.String())
		c.handleSync(t, r)
	}
}

func (c *Core) handleSync(t *Thread, r threadReq) {
	switch c.cfg.Mode {
	case ModeAlwaysFail:
		// MSA-0: fail locally, no message (§6: the trivial implementation).
		if r.op == isa.OpUnlock {
			// The library's software release follows this FAIL; hardware-
			// first libraries register software releases at the point the
			// FAIL is produced (see syncrt.timedSwUnlock), which here is
			// the core itself.
			c.check.LockReleased(r.addr, fault.WorldSW)
		}
		if r.op == isa.OpFinish {
			c.engine.AfterCall(c.cfg.IssueLatency, coreResumeSuccess, c)
		} else {
			c.engine.AfterCall(c.cfg.IssueLatency, coreResumeFail, c)
		}
		return
	case ModeIdeal:
		// Pay the 1-cycle issue cost so time always advances, then resolve
		// with zero communication latency.
		c.pendReq = r
		c.engine.AfterCall(c.cfg.IssueLatency, coreIdealIssue, c)
		return
	}
	// ModeMSA.
	home := memory.HomeOf(r.addr, c.tiles)
	switch {
	case r.op == isa.OpFinish:
		c.sendSync(home, c.reqPool.Get(corepkg.Req{Op: r.op, Addr: r.addr, Core: c.id}))
		c.engine.AfterCall(c.cfg.IssueLatency, coreResumeSuccess, c)
	case r.op == isa.OpLock && c.cfg.HWSyncOpt && c.l1.HWSyncHit(r.addr):
		// §5 fast path: the lock's line is still here, writable, with the
		// HWSync bit — re-acquire silently and just notify the home.
		c.stats.SilentLocks++
		c.check.LockAcquired(r.addr, c.id, fault.WorldHW)
		c.sendSync(home, c.reqPool.Get(corepkg.Req{Op: isa.OpLockSilent, Addr: r.addr, Core: c.id}))
		c.engine.AfterCall(c.cfg.IssueLatency, coreResumeSuccess, c)
	default:
		c.outBuf = outstanding{t: t, op: r.op, addr: r.addr, lock: r.lock, issued: c.engine.Now()}
		c.out = &c.outBuf
		c.pendReq = r
		c.engine.AfterCall(c.cfg.IssueLatency, coreSendPending, c)
	}
}

// Static event handlers for the dispatch paths above; arg is the *Core.
// Each fires while the issuing thread's operation is the core's only
// outstanding work, so c.cur is still the issuing thread.
func coreComputeDone(arg any) { c := arg.(*Core); c.resume(c.cur, 0) }

func coreResumeFail(arg any) { c := arg.(*Core); c.resume(c.cur, uint64(isa.Fail)) }

func coreResumeSuccess(arg any) { c := arg.(*Core); c.resume(c.cur, uint64(isa.Success)) }

func coreIdealIssue(arg any) {
	c := arg.(*Core)
	r := c.pendReq
	c.ideal.Do(c.cur, r.op, r.addr, r.goal, r.lock, c.idealDone)
}

func coreSendPending(arg any) {
	c := arg.(*Core)
	r := c.pendReq
	c.sendSync(memory.HomeOf(r.addr, c.tiles),
		c.reqPool.Get(corepkg.Req{Op: r.op, Addr: r.addr, Core: c.id, Goal: r.goal, Lock: r.lock}))
}

// sendSuspend notifies the home of the outstanding operation's address that
// this core is being interrupted (§4.1.2).
func (c *Core) sendSuspend(o *outstanding) {
	home := memory.HomeOf(o.addr, c.tiles)
	c.sendSync(home, c.reqPool.Get(corepkg.Req{Op: isa.OpSuspend, Addr: o.addr, Core: c.id}))
}

// HandleResp processes an MSA response addressed to this core.
func (c *Core) HandleResp(r *corepkg.Resp) {
	if r.Op == isa.OpSuspend {
		// Nack: not queued at that home; keep waiting for the original
		// response and park when it arrives. The nack can also arrive
		// *after* the original response resolved the operation (the grant
		// and the SUSPEND crossed in the network) — then it is stale and
		// ignored. If a different operation is outstanding by then, marking
		// it nacked is harmless: it only suppresses a redundant SUSPEND.
		if c.out != nil {
			c.out.nacked = true
		}
		return
	}
	if c.out == nil {
		panic(fmt.Sprintf("cpu: core %d got %v response with nothing outstanding", c.id, r.Op))
	}
	// Copy the record: once c.out is cleared, resuming the thread (or its
	// scheduler callbacks) may adopt other work that reuses outBuf.
	o := *c.out
	if r.Op != o.op || r.Addr != o.addr {
		panic(fmt.Sprintf("cpu: core %d response %v/%#x does not match outstanding %v/%#x",
			c.id, r.Op, r.Addr, o.op, o.addr))
	}
	c.out = nil
	c.outBuf = outstanding{} // drop the thread reference
	elapsed := c.engine.Now() - o.issued
	c.stats.SyncStallCycles += elapsed
	c.stats.SyncStallByKind[latKindOf(o.op)] += elapsed
	c.lat[latKindOf(o.op)].Observe(uint64(elapsed))
	if c.tracer != nil { // guard: the detail concat allocates
		c.trace(trace.Complete, o.addr, o.op.String()+" "+r.Result.String())
	}
	if r.ClearHWSync {
		// Handoff: drop the bit *and* any in-flight grant entitlement for
		// this line — a grant still in the network belongs to our previous
		// tenure and must not re-arm the silent path.
		line := memory.LineOf(r.Addr)
		c.l1.ClearHWSyncLine(line)
		delete(c.expectGrant, line)
	}
	if r.Result == isa.Abort && r.Reason == corepkg.ReasonRequeue {
		// Our own suspension dequeued the LOCK: squash and re-execute the
		// instruction when the thread resumes (§4.1.2).
		o.t.park(parkedReissue, uint64(r.Op))
		o.t.reissue = threadReq{kind: reqSync, op: o.op, addr: o.addr, lock: o.lock}
		return
	}
	if r.Result == isa.Success && (o.op == isa.OpLock || o.op == isa.OpCondWait) && c.cfg.HWSyncOpt {
		// A HWSync block grant is on its way for the lock's line.
		line := memory.LineOf(o.addr)
		if o.op == isa.OpCondWait {
			line = memory.LineOf(o.lock)
		}
		c.expectGrant[line]++
	}
	c.resumeSyncResult(o.t, r.Result)
}

// resumeSyncResult delivers a sync instruction's result, parking first if a
// suspension is pending (the instruction completes; the fallback code runs
// when the thread is scheduled again, per §4.3.2).
func (c *Core) resumeSyncResult(t *Thread, res isa.Result) {
	if t.wantSuspend {
		t.park(parkedResult, uint64(res))
		return
	}
	t.toThread <- uint64(res)
	c.await()
}

// contextSwitch clears per-thread state a departing thread leaves on the
// core: HWSync bits (a new thread must not silently acquire the old
// thread's locks) and pending grant entitlements.
func (c *Core) contextSwitch() {
	c.trace(trace.CtxSwitch, 0, "context switch")
	c.gen++
	c.l1.ClearAllHWSync()
	for k := range c.expectGrant {
		delete(c.expectGrant, k)
	}
}
