package cpu

import (
	"fmt"

	"misar/internal/sim"
)

type parkKind uint8

const (
	parkedNone parkKind = iota
	parkedResult
	parkedReissue
)

// Thread is one simulated software thread: a goroutine exchanging requests
// and results with the event kernel through a synchronous handoff.
type Thread struct {
	id   int
	core *Core
	body func(Env)

	toThread chan uint64
	toKernel chan threadReq

	started bool
	done    bool
	err     any // recovered panic from the thread body, if any

	wantSuspend bool
	parked      parkKind
	parkVal     uint64
	reissue     threadReq
	onParked    func() // scheduler notification, may be nil
	onDone      func() // completion notification, may be nil
}

// ID returns the thread id.
func (t *Thread) ID() int { return t.id }

// Done reports whether the thread's body has returned.
func (t *Thread) Done() bool { return t.done }

// Parked reports whether the thread is currently suspended.
func (t *Thread) Parked() bool { return t.parked != parkedNone }

// Err returns the recovered panic value if the thread body panicked.
func (t *Thread) Err() any { return t.err }

// CoreID returns the id of the core the thread last ran on, or -1 before it
// was first scheduled. Used by the liveness watchdog to attribute blocked
// threads to tiles.
func (t *Thread) CoreID() int {
	if t.core == nil {
		return -1
	}
	return t.core.id
}

// Complex manages the machine's cores and threads.
type Complex struct {
	engine  *sim.Engine
	cores   []*Core
	threads []*Thread
	running int
}

// NewComplex groups cores into a schedulable unit.
func NewComplex(engine *sim.Engine, cores []*Core) *Complex {
	return &Complex{engine: engine, cores: cores}
}

// Core returns core i.
func (x *Complex) Core(i int) *Core { return x.cores[i] }

// Threads returns all spawned threads.
func (x *Complex) Threads() []*Thread { return x.threads }

// Running reports how many threads have started but not finished.
func (x *Complex) Running() int { return x.running }

// Spawn creates (but does not start) a thread.
func (x *Complex) Spawn(id int, body func(Env)) *Thread {
	t := &Thread{
		id:       id,
		body:     body,
		toThread: make(chan uint64),
		toKernel: make(chan threadReq),
	}
	x.threads = append(x.threads, t)
	return t
}

// Start launches the thread on a core at simulated time `at`. The thread's
// body runs as a goroutine; the kernel blocks whenever the thread is
// executing Go code, preserving determinism.
func (x *Complex) Start(t *Thread, core int, at sim.Time) {
	if t.started {
		panic(fmt.Sprintf("cpu: thread %d started twice", t.id))
	}
	t.started = true
	x.running++
	x.engine.At(at, func() {
		c := x.cores[core]
		c.adopt(t)
		t.onDone = func() { x.running-- }
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(threadKilled); !ok {
						t.err = r
					}
				}
				close(t.toKernel)
			}()
			t.body(env{t})
		}()
		c.await()
	})
}

// finish is called by the core when the thread's request channel closes.
func (t *Thread) finish() {
	t.done = true
	if t.onDone != nil {
		t.onDone()
	}
}

// park suspends the thread at an operation boundary: the pending result (or
// instruction re-issue) is delivered when the thread is resumed. The core is
// context-switched and freed.
func (t *Thread) park(kind parkKind, val uint64) {
	t.parked = kind
	t.parkVal = val
	t.wantSuspend = false
	c := t.core
	c.stats.Suspends++
	c.contextSwitch()
	c.cur = nil
	if t.onParked != nil {
		t.onParked()
	}
}

// Suspend asks the OS shim to take the thread off its core. The suspension
// takes effect at the thread's next operation boundary; if a LOCK, BARRIER,
// or COND_WAIT is outstanding, a SUSPEND request is sent to the MSA so the
// thread is dequeued or the operation aborted (paper §4.1.2/§4.2.2/§4.3.2).
// onParked (may be nil) fires when the thread has actually left the core.
func (x *Complex) Suspend(t *Thread, onParked func()) {
	if t.done || t.parked != parkedNone {
		if onParked != nil {
			onParked()
		}
		return
	}
	t.onParked = onParked
	t.wantSuspend = true
	c := t.core
	if o := c.out; o != nil && o.t == t && !o.nacked && c.cfg.Mode == ModeMSA {
		c.sendSuspend(o)
	}
}

// Resume places a parked thread back onto a core (possibly a different one —
// migration) and continues it.
func (x *Complex) Resume(t *Thread, core int) {
	if t.parked == parkedNone {
		panic(fmt.Sprintf("cpu: resuming thread %d that is not parked", t.id))
	}
	c := x.cores[core]
	kind := t.parked
	t.parked = parkedNone
	if t.core != nil && t.core.id != core {
		c.stats.Migrations++
	}
	c.stats.Resumes++
	c.adopt(t)
	switch kind {
	case parkedResult:
		c.resume(t, t.parkVal)
	case parkedReissue:
		c.dispatch(t, t.reissue)
	}
}

// Kill tears down all unfinished threads (used when a run is abandoned).
func (x *Complex) Kill() {
	for _, t := range x.threads {
		if t.started && !t.done {
			close(t.toThread)
		}
	}
}
