package cpu_test

import (
	"strings"
	"testing"

	"misar/internal/cpu"
	"misar/internal/isa"
	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/sim"
)

const deadline = sim.Time(100_000_000)

func newMachine(tiles int, mode cpu.Mode) *machine.Machine {
	cfg := machine.Default(tiles)
	cfg.CPU.Mode = mode
	if mode != cpu.ModeMSA {
		cfg.CPU.HWSyncOpt = false
	}
	return machine.New(cfg)
}

func TestComputeAdvancesTime(t *testing.T) {
	m := newMachine(1, cpu.ModeAlwaysFail)
	var at sim.Time
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		e.Compute(123)
		at = e.Now()
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if at != 123 {
		t.Fatalf("Now after Compute(123) = %d", at)
	}
}

func TestComputeZeroIsFree(t *testing.T) {
	m := newMachine(1, cpu.ModeAlwaysFail)
	var at sim.Time
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		e.Compute(0)
		at = e.Now()
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("Compute(0) advanced time to %d", at)
	}
}

func TestMemoryOpsThroughEnv(t *testing.T) {
	m := newMachine(2, cpu.ModeAlwaysFail)
	var loaded, old, swapped uint64
	var casOK, casFail bool
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		e.Store(0x1000, 7)
		loaded = e.Load(0x1000)
		old = e.FetchAdd(0x1000, 3)
		swapped = e.Swap(0x1000, 99)
		casOK = e.CAS(0x1000, 99, 5)
		casFail = e.CAS(0x1000, 99, 6)
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if loaded != 7 || old != 7 || swapped != 10 || !casOK || casFail {
		t.Fatalf("loaded=%d old=%d swapped=%d casOK=%v casFail=%v",
			loaded, old, swapped, casOK, casFail)
	}
	if m.Store.Load(0x1000) != 5 {
		t.Fatalf("final = %d", m.Store.Load(0x1000))
	}
}

func TestAlwaysFailMode(t *testing.T) {
	m := newMachine(2, cpu.ModeAlwaysFail)
	var lockRes, finishRes isa.Result
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		lockRes = e.Sync(isa.OpLock, 0x2000, 0, 0)
		finishRes = e.Sync(isa.OpFinish, 0x2000, 0, 0)
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if lockRes != isa.Fail {
		t.Fatalf("MSA-0 LOCK = %v, want FAIL", lockRes)
	}
	if finishRes != isa.Success {
		t.Fatalf("MSA-0 FINISH = %v, want SUCCESS (pure notification)", finishRes)
	}
	// No messages may have been sent for sync ops.
	if n := m.Net.Stats().Messages; n != 0 {
		t.Fatalf("MSA-0 sent %d messages", n)
	}
}

func TestIdealLockSemantics(t *testing.T) {
	m := newMachine(4, cpu.ModeIdeal)
	const iters = 10
	counter := memory.Addr(0x3000)
	m.SpawnAll(4, func(tid int, e cpu.Env) {
		for i := 0; i < iters; i++ {
			if e.Sync(isa.OpLock, 0x2000, 0, 0) != isa.Success {
				t.Error("ideal lock failed")
			}
			v := e.Load(counter)
			e.Compute(3)
			e.Store(counter, v+1)
			e.Sync(isa.OpUnlock, 0x2000, 0, 0)
			e.Compute(9)
		}
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(counter); got != 4*iters {
		t.Fatalf("counter = %d, want %d", got, 4*iters)
	}
}

func TestIdealBarrierAndCond(t *testing.T) {
	m := newMachine(4, cpu.ModeIdeal)
	bar := memory.Addr(0x2000)
	lock := memory.Addr(0x2040)
	cond := memory.Addr(0x2080)
	flag := memory.Addr(0x20c0)
	woken := memory.Addr(0x2100)
	m.SpawnAll(4, func(tid int, e cpu.Env) {
		e.Sync(isa.OpBarrier, bar, 4, 0)
		if tid == 0 {
			e.Compute(1000)
			e.Sync(isa.OpLock, lock, 0, 0)
			e.Store(flag, 1)
			e.Sync(isa.OpCondBcast, cond, 0, 0)
			e.Sync(isa.OpUnlock, lock, 0, 0)
			return
		}
		e.Sync(isa.OpLock, lock, 0, 0)
		for e.Load(flag) == 0 {
			e.Sync(isa.OpCondWait, cond, 0, lock)
		}
		e.Store(woken, e.Load(woken)+1)
		e.Sync(isa.OpUnlock, lock, 0, 0)
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.Load(woken); got != 3 {
		t.Fatalf("woken = %d, want 3", got)
	}
}

func TestThreadPanicSurfacesAsError(t *testing.T) {
	m := newMachine(1, cpu.ModeAlwaysFail)
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		e.Compute(5)
		panic("workload bug")
	})
	_, err := m.Run(deadline)
	if err == nil || !strings.Contains(err.Error(), "workload bug") {
		t.Fatalf("err = %v, want workload bug surfaced", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := newMachine(2, cpu.ModeIdeal)
	m.SpawnAll(2, func(tid int, e cpu.Env) {
		if tid == 0 {
			e.Sync(isa.OpLock, 0x2000, 0, 0)
			// Never unlocks; thread 1 waits forever.
			return
		}
		e.Compute(100)
		e.Sync(isa.OpLock, 0x2000, 0, 0)
	})
	_, err := m.Run(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "blocked") {
		t.Fatalf("err = %v, want deadlock report", err)
	}
	m.Complex.Kill()
}

func TestSuspendDuringCompute(t *testing.T) {
	m := newMachine(2, cpu.ModeMSA)
	var resumedAt sim.Time
	th := m.Complex.Spawn(0, func(e cpu.Env) {
		e.Compute(1000)
		resumedAt = e.Now()
	})
	m.Complex.Start(th, 0, 0)
	parked := sim.Time(0)
	m.Engine.At(100, func() {
		m.Complex.Suspend(th, func() {
			parked = m.Engine.Now()
			m.Engine.After(5000, func() { m.Complex.Resume(th, 1) })
		})
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	// Suspension takes effect at the Compute boundary (cycle 1000).
	if parked != 1000 {
		t.Fatalf("parked at %d, want 1000", parked)
	}
	if resumedAt != 6000 {
		t.Fatalf("resumed op completed at %d, want 6000", resumedAt)
	}
	if m.Cores[1].Stats().Migrations != 1 {
		t.Fatal("migration not counted")
	}
}

func TestSuspendFinishedThreadIsNoop(t *testing.T) {
	m := newMachine(1, cpu.ModeAlwaysFail)
	th := m.Complex.Spawn(0, func(e cpu.Env) { e.Compute(10) })
	m.Complex.Start(th, 0, 0)
	called := false
	m.Engine.At(50, func() {
		m.Complex.Suspend(th, func() { called = true })
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("onParked not called for finished thread")
	}
}

func TestCoreStats(t *testing.T) {
	m := newMachine(2, cpu.ModeMSA)
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		e.Compute(50)
		e.Sync(isa.OpLock, 0x2000, 0, 0)
		e.Sync(isa.OpUnlock, 0x2000, 0, 0)
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	st := m.Cores[0].Stats()
	if st.ComputeCycles != 50 {
		t.Errorf("ComputeCycles = %d", st.ComputeCycles)
	}
	if st.SyncIssued[isa.OpLock] != 1 || st.SyncIssued[isa.OpUnlock] != 1 {
		t.Errorf("SyncIssued = %v", st.SyncIssued)
	}
	if st.SyncStallCycles == 0 {
		t.Error("SyncStallCycles = 0, expected round-trip stalls")
	}
}

// TestHWSyncFastPathLatency: a silent re-acquire completes in issue latency
// without a round trip.
func TestHWSyncFastPathLatency(t *testing.T) {
	m := machine.New(machine.MSAOMU(4, 2))
	var firstLat, silentLat sim.Time
	m.SpawnAll(1, func(tid int, e cpu.Env) {
		t0 := e.Now()
		e.Sync(isa.OpLock, 0x2000, 0, 0)
		firstLat = e.Now() - t0
		e.Sync(isa.OpUnlock, 0x2000, 0, 0)
		e.Compute(500) // let the grant land
		t1 := e.Now()
		e.Sync(isa.OpLock, 0x2000, 0, 0)
		silentLat = e.Now() - t1
		e.Sync(isa.OpUnlock, 0x2000, 0, 0)
	})
	if _, err := m.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if silentLat >= firstLat {
		t.Fatalf("silent lock (%d) not faster than first lock (%d)", silentLat, firstLat)
	}
	if silentLat > 3 {
		t.Fatalf("silent lock took %d cycles, want <= issue latency", silentLat)
	}
}
