package cpu

import (
	"fmt"

	"misar/internal/isa"
	"misar/internal/memory"
)

// Ideal implements the paper's Ideal configuration: synchronization with
// perfect semantics and zero communication latency. Each instruction still
// pays its 1-cycle issue cost (so simulated time advances), but no messages,
// cache misses, or queueing delays occur. Waiting time that is inherent to
// the synchronization (a held lock, an unreleased barrier) remains — exactly
// the "only the necessary waiting time remains" behaviour of §6.2.
type Ideal struct {
	locks map[memory.Addr]*ilock
	bars  map[memory.Addr]*ibar
	conds map[memory.Addr]*icond
}

type ilock struct {
	held bool
	q    []func()
}

type ibar struct {
	waiting []func(isa.Result)
}

type icond struct {
	waiters []func() // each re-acquires its lock then completes the wait
}

// NewIdeal builds the shared zero-latency synchronization table.
func NewIdeal() *Ideal {
	return &Ideal{
		locks: make(map[memory.Addr]*ilock),
		bars:  make(map[memory.Addr]*ibar),
		conds: make(map[memory.Addr]*icond),
	}
}

func (i *Ideal) lock(a memory.Addr) *ilock {
	l, ok := i.locks[a]
	if !ok {
		l = &ilock{}
		i.locks[a] = l
	}
	return l
}

func (i *Ideal) acquire(a memory.Addr, grant func()) {
	l := i.lock(a)
	if !l.held {
		l.held = true
		grant()
		return
	}
	l.q = append(l.q, grant)
}

func (i *Ideal) release(a memory.Addr) {
	l := i.lock(a)
	if !l.held {
		panic(fmt.Sprintf("cpu: ideal unlock of free lock %#x", a))
	}
	if len(l.q) > 0 {
		next := l.q[0]
		l.q = l.q[1:]
		next() // ownership transfers directly
		return
	}
	l.held = false
}

// Do executes one synchronization instruction with ideal semantics; done
// receives the result (always SUCCESS, possibly after inherent waiting).
func (i *Ideal) Do(t *Thread, op isa.SyncOp, addr memory.Addr, goal int, lockAddr memory.Addr, done func(isa.Result)) {
	switch op {
	case isa.OpLock:
		i.acquire(addr, func() { done(isa.Success) })
	case isa.OpUnlock:
		i.release(addr)
		done(isa.Success)
	case isa.OpBarrier:
		b, ok := i.bars[addr]
		if !ok {
			b = &ibar{}
			i.bars[addr] = b
		}
		b.waiting = append(b.waiting, done)
		if len(b.waiting) == goal {
			ws := b.waiting
			b.waiting = nil
			for _, w := range ws {
				w(isa.Success)
			}
		}
	case isa.OpCondWait:
		c, ok := i.conds[addr]
		if !ok {
			c = &icond{}
			i.conds[addr] = c
		}
		i.release(lockAddr)
		la := lockAddr
		c.waiters = append(c.waiters, func() {
			i.acquire(la, func() { done(isa.Success) })
		})
	case isa.OpCondSignal:
		if c, ok := i.conds[addr]; ok && len(c.waiters) > 0 {
			w := c.waiters[0]
			c.waiters = c.waiters[1:]
			w()
		}
		done(isa.Success)
	case isa.OpCondBcast:
		if c, ok := i.conds[addr]; ok {
			ws := c.waiters
			c.waiters = nil
			for _, w := range ws {
				w()
			}
		}
		done(isa.Success)
	case isa.OpFinish:
		done(isa.Success)
	default:
		panic(fmt.Sprintf("cpu: ideal cannot execute %v", op))
	}
}
