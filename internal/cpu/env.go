// Package cpu models the cores and the simulated threads that run on them.
//
// A simulated thread is a Go goroutine that issues timed operations —
// Compute, loads/stores/atomics, and the MiSAR synchronization instructions —
// through the Env interface. The event kernel and the thread goroutines hand
// control back and forth synchronously (exactly one runs at a time), so the
// simulation stays deterministic while workload and synchronization-library
// code reads as ordinary sequential Go.
//
// Each core runs one thread at a time (the paper's configuration). The
// scheduler shim supports suspending a thread, resuming it on the same or a
// different core (migration), which exercises the MSA's SUSPEND/ABORT paths.
package cpu

import (
	"misar/internal/fault"
	"misar/internal/isa"
	"misar/internal/memory"
	"misar/internal/metrics"
	"misar/internal/obs"
	"misar/internal/sim"
)

// Env is the execution environment a simulated thread sees. All methods
// block (in simulated time) until the operation commits.
type Env interface {
	// ThreadID identifies the thread; Core the tile it currently runs on.
	ThreadID() int
	Core() int
	// Now returns the current simulated cycle.
	Now() sim.Time
	// Compute advances the thread by a block of computation.
	Compute(cycles uint64)
	// Load/Store access the simulated memory through this core's L1.
	Load(a memory.Addr) uint64
	Store(a memory.Addr, v uint64)
	// FetchAdd/Swap/CAS are atomic read-modify-writes.
	FetchAdd(a memory.Addr, delta uint64) uint64
	Swap(a memory.Addr, v uint64) uint64
	CAS(a memory.Addr, old, new uint64) bool
	// Sync executes a synchronization instruction. goal is the barrier
	// participant count; lock is COND_WAIT's associated lock.
	Sync(op isa.SyncOp, addr memory.Addr, goal int, lock memory.Addr) isa.Result
	// Metrics returns the machine's metrics registry, or nil when metering
	// is disabled. Library code resolves instruments through it once at bind
	// time (a nil registry yields nil, zero-cost instruments).
	Metrics() *metrics.Registry
	// Check returns the machine's safety-invariant checker, or nil when
	// invariant checking is disabled. Same bind-once contract as Metrics:
	// a nil checker's methods are no-ops.
	Check() *fault.Checker
	// Faults returns the machine's fault injector, or nil when fault
	// injection is disabled (nil-receiver-safe, like Check).
	Faults() *fault.Injector
	// Flight returns the flight recorder of this core's shard, or nil when
	// none is attached (nil-receiver-safe, like Check).
	Flight() *obs.FlightRecorder
}

// reqKind enumerates thread→kernel requests.
type reqKind uint8

const (
	reqCompute reqKind = iota
	reqLoad
	reqStore
	reqRMW
	reqSync
)

// rmwKind selects the atomic read-modify-write operation. RMW requests carry
// an opcode plus operands rather than a closure so issuing one stays
// allocation-free; the core owns the single closure that interprets them.
type rmwKind uint8

const (
	rmwAdd  rmwKind = iota // val = delta
	rmwSwap                // val = new value
	rmwCAS                 // val = new value, val2 = expected old value
)

type threadReq struct {
	kind   reqKind
	cycles uint64
	addr   memory.Addr
	val    uint64
	val2   uint64
	rmw    rmwKind
	op     isa.SyncOp
	goal   int
	lock   memory.Addr
}

// threadKilled is panicked inside a thread goroutine to unwind it when the
// machine is torn down mid-run.
type threadKilled struct{}

// env implements Env for one thread.
type env struct{ t *Thread }

func (e env) ThreadID() int { return e.t.id }
func (e env) Core() int     { return e.t.core.id }
func (e env) Now() sim.Time { return e.t.core.engine.Now() }

func (e env) Metrics() *metrics.Registry { return e.t.core.metrics }

func (e env) Check() *fault.Checker { return e.t.core.check }

func (e env) Faults() *fault.Injector { return e.t.core.injector }

func (e env) Flight() *obs.FlightRecorder { return e.t.core.flight }

// call sends a request to the kernel and blocks until its result arrives.
func (e env) call(r threadReq) uint64 {
	e.t.toKernel <- r
	v, ok := <-e.t.toThread
	if !ok {
		panic(threadKilled{})
	}
	return v
}

func (e env) Compute(cycles uint64) {
	if cycles == 0 {
		return
	}
	e.call(threadReq{kind: reqCompute, cycles: cycles})
}

func (e env) Load(a memory.Addr) uint64 {
	return e.call(threadReq{kind: reqLoad, addr: a})
}

func (e env) Store(a memory.Addr, v uint64) {
	e.call(threadReq{kind: reqStore, addr: a, val: v})
}

func (e env) FetchAdd(a memory.Addr, delta uint64) uint64 {
	return e.call(threadReq{kind: reqRMW, addr: a, rmw: rmwAdd, val: delta})
}

func (e env) Swap(a memory.Addr, v uint64) uint64 {
	return e.call(threadReq{kind: reqRMW, addr: a, rmw: rmwSwap, val: v})
}

func (e env) CAS(a memory.Addr, old, new uint64) bool {
	return e.call(threadReq{kind: reqRMW, addr: a, rmw: rmwCAS, val: new, val2: old}) == 1
}

func (e env) Sync(op isa.SyncOp, addr memory.Addr, goal int, lock memory.Addr) isa.Result {
	v := e.call(threadReq{kind: reqSync, op: op, addr: addr, goal: goal, lock: lock})
	return isa.Result(v)
}
