package core

import (
	"fmt"

	"misar/internal/fault"
	"misar/internal/isa"
	"misar/internal/memory"
	"misar/internal/obs"
	"misar/internal/trace"
)

// msaMsgNames decodes msaMsgKind for the protocol tracer and the flight
// recorder (registered so obs can render FMsaMsg args without importing core).
var msaMsgNames = [...]string{"unlock&pin", "unlock&pin-resp", "lock-behalf", "unpin", "omu-adjust"}

func init() { obs.RegisterArgNames(obs.FMsaMsg, msaMsgNames[:]) }

// Condition-variable support (§4.3). A COND_WAIT atomically releases the
// associated lock and enqueues the waiter; the release travels to the lock's
// home as an UNLOCK&PIN message that also pins the lock's MSA entry so it
// cannot be deallocated while the condition variable holds an entry. Waking
// a waiter sends a LOCK request to the lock's home on the waiter's behalf;
// the lock's home replies directly to the waiter when the lock is granted,
// completing the COND_WAIT instruction. The last wake carries LOCK&UNPIN.

func (s *Slice) handleCondWait(r *Req) {
	cond, lock, c := r.Addr, r.Lock, r.Core
	e := s.find(isa.TypeCond, cond)
	if e != nil {
		if e.reserved || e.pinCore >= 0 {
			// Another waiter mid-handshake would have to hold the same lock
			// concurrently — impossible for a correctly used cond var.
			panic(fmt.Sprintf("core: concurrent COND_WAIT handshakes on %#x", cond))
		}
		// Hit: release the (already pinned) lock on the waiter's behalf.
		e.pinCore = c
		s.sendMsa(memory.HomeOf(lock, s.tiles), &MsaMsg{
			Kind: kindUnlockPin, Lock: lock, Cond: cond, Core: c, NeedPin: false,
		})
		return
	}
	e = s.tryAllocate(isa.TypeCond, cond)
	if e == nil {
		s.stats.CondSW++
		s.omuInc(cond)
		s.respond(c, isa.OpCondWait, cond, isa.Fail, ReasonNone)
		return
	}
	// Reserve the entry (§4.3.1): it becomes real only if the lock's home
	// confirms the unlock-and-pin.
	e.reserved = true
	e.lockAddr = lock
	e.pinCore = c
	s.sendMsa(memory.HomeOf(lock, s.tiles), &MsaMsg{
		Kind: kindUnlockPin, Lock: lock, Cond: cond, Core: c, NeedPin: true,
	})
}

func (s *Slice) handleCondSignal(r *Req, bcast bool) {
	op := isa.OpCondSignal
	if bcast {
		op = isa.OpCondBcast
	}
	e := s.find(isa.TypeCond, r.Addr)
	if e == nil {
		s.stats.CondSW++
		s.respond(r.Core, op, r.Addr, isa.Fail, ReasonNone)
		return
	}
	if e.reserved || e.pinCore >= 0 {
		// A waiter's handshake is in flight; hold the signal until it
		// resolves so a signal sent under the mutex is never lost.
		if bcast {
			e.pendBcast = append(e.pendBcast, r.Core)
		} else {
			e.pendSig = append(e.pendSig, r.Core)
		}
		return
	}
	s.deliverSignal(e, r.Core, bcast)
}

// deliverSignal wakes waiter(s) for a live entry and acknowledges the
// signaler. An entry exists only while it has waiters, so a hit always wakes
// at least one.
func (s *Slice) deliverSignal(e *entry, signaler int, bcast bool) {
	s.stats.CondHW++
	op := isa.OpCondSignal
	if bcast {
		op = isa.OpCondBcast
	}
	s.respond(signaler, op, e.addr, isa.Success, ReasonNone)
	if bcast {
		for s.wakeOne(e) {
		}
		return
	}
	s.wakeOne(e)
}

// wakeOne releases one waiter (NBTC order), sending the lock's home a LOCK
// on the waiter's behalf — LOCK&UNPIN if this empties the queue, which also
// frees the entry. It reports whether a waiter was woken.
func (s *Slice) wakeOne(e *entry) bool {
	if !e.valid || e.waiters.Empty() {
		return false
	}
	w := s.pickWaiter(e.waiters)
	e.waiters.Remove(w)
	last := e.waiters.Empty()
	s.sendMsa(memory.HomeOf(e.lockAddr, s.tiles), &MsaMsg{
		Kind: kindLockBehalf, Lock: e.lockAddr, Cond: e.addr, Core: w, Unpin: last,
	})
	if last {
		s.dealloc(e)
	}
	return true
}

// suspendCondWaiter aborts one waiting thread out of the queue (§4.3.2).
// The fallback re-acquires the lock and FINISHes, so the cond's OMU counter
// is pre-charged here to keep the books balanced.
func (s *Slice) suspendCondWaiter(e *entry, c int) {
	e.waiters.Remove(c)
	s.omuInc(e.addr)
	s.respond(c, isa.OpCondWait, e.addr, isa.Abort, ReasonFallback)
	if e.waiters.Empty() && !e.reserved && e.pinCore < 0 {
		s.sendMsa(memory.HomeOf(e.lockAddr, s.tiles), &MsaMsg{
			Kind: kindUnpinOnly, Lock: e.lockAddr, Cond: e.addr,
		})
		s.dealloc(e)
	}
}

// HandleMsa processes an MSA-to-MSA message.
func (s *Slice) HandleMsa(m *MsaMsg) {
	s.fl(obs.FMsaMsg, m.Lock, m.Core, uint32(m.Kind))
	if s.tracer != nil {
		s.trace(trace.MsaInternal, m.Lock, m.Core, msaMsgNames[m.Kind])
	}
	switch m.Kind {
	case kindUnlockPin:
		s.handleUnlockPin(m)
	case kindUnlockPinResp:
		s.handleUnlockPinResp(m)
	case kindLockBehalf:
		s.handleLockBehalf(m)
	case kindUnpinOnly:
		s.handleUnpinOnly(m)
	case kindOmuAdjust:
		s.omuInc(m.Cond)
	default:
		panic(fmt.Sprintf("core: unknown MSA message kind %d", m.Kind))
	}
}

// handleUnlockPin runs at the lock's home: perform a normal unlock for the
// waiter entering COND_WAIT, pin the entry if requested, and confirm.
func (s *Slice) handleUnlockPin(m *MsaMsg) {
	condHome := memory.HomeOf(m.Cond, s.tiles)
	e := s.find(isa.TypeLock, m.Lock)
	if e == nil || e.draining || e.owner != m.Core {
		// The waiter does not hold this lock in hardware; the whole
		// cond-wait falls back to software (§4.3.1 FAIL path). The lock
		// itself is untouched.
		s.sendMsa(condHome, &MsaMsg{Kind: kindUnlockPinResp, Lock: m.Lock, Cond: m.Cond, Core: m.Core, OK: false, NeedPin: m.NeedPin})
		return
	}
	s.stats.UnlockHW++
	e.owner = -1
	// COND_WAIT's atomic release of the associated mutex.
	s.check.LockReleased(m.Lock, fault.WorldHW)
	if m.NeedPin {
		e.pins++
	}
	if !e.waiters.Empty() {
		s.promote(e)
	}
	// A pinned entry with no owner and no waiters stays allocated (§4.3.1).
	s.sendMsa(condHome, &MsaMsg{Kind: kindUnlockPinResp, Lock: m.Lock, Cond: m.Cond, Core: m.Core, OK: true, NeedPin: m.NeedPin})
}

// handleUnlockPinResp runs at the cond's home, resolving the reservation.
func (s *Slice) handleUnlockPinResp(m *MsaMsg) {
	e := s.find(isa.TypeCond, m.Cond)
	if e == nil || e.pinCore != m.Core {
		panic(fmt.Sprintf("core: stray UnlockPinResp for %#x", m.Cond))
	}
	c := e.pinCore
	e.pinCore = -1
	if m.OK {
		e.reserved = false
		e.waiters.Add(c)
		s.stats.CondHW++
		s.drainPendingSignals(e)
		return
	}
	// The unlock failed: the waiter still holds the lock and must run the
	// software cond-wait (which releases the lock itself).
	s.omuInc(e.addr)
	s.respond(c, isa.OpCondWait, e.addr, isa.Fail, ReasonNone)
	if m.NeedPin {
		// Fresh reservation: tear it down and fail any queued signalers.
		s.failPendingSignals(e)
		s.dealloc(e)
		return
	}
	s.drainPendingSignals(e)
}

func (s *Slice) drainPendingSignals(e *entry) {
	sigs, bcasts := e.pendSig, e.pendBcast
	e.pendSig, e.pendBcast = nil, nil
	for _, sg := range sigs {
		if e.valid && !e.waiters.Empty() {
			s.deliverSignal(e, sg, false)
		} else {
			s.stats.CondSW++
			s.respond(sg, isa.OpCondSignal, e.addr, isa.Fail, ReasonNone)
		}
	}
	for _, sg := range bcasts {
		if e.valid && !e.waiters.Empty() {
			s.deliverSignal(e, sg, true)
		} else {
			s.stats.CondSW++
			s.respond(sg, isa.OpCondBcast, e.addr, isa.Fail, ReasonNone)
		}
	}
}

func (s *Slice) failPendingSignals(e *entry) {
	for _, sg := range e.pendSig {
		s.stats.CondSW++
		s.respond(sg, isa.OpCondSignal, e.addr, isa.Fail, ReasonNone)
	}
	for _, sg := range e.pendBcast {
		s.stats.CondSW++
		s.respond(sg, isa.OpCondBcast, e.addr, isa.Fail, ReasonNone)
	}
	e.pendSig, e.pendBcast = nil, nil
}

// handleLockBehalf runs at the lock's home: re-acquire the lock for a woken
// cond waiter, optionally unpinning first. The grant replies directly to the
// waiter, completing its COND_WAIT.
func (s *Slice) handleLockBehalf(m *MsaMsg) {
	e := s.find(isa.TypeLock, m.Lock)
	if e == nil || e.draining {
		// The pinned entry is gone (torn down by a migrated-owner abort).
		// Fall the waiter back to software: it re-locks and FINISHes, so
		// pre-charge the cond's OMU counter.
		s.sendMsa(memory.HomeOf(m.Cond, s.tiles), &MsaMsg{Kind: kindOmuAdjust, Cond: m.Cond})
		s.respond(m.Core, isa.OpCondWait, m.Cond, isa.Abort, ReasonFallback)
		return
	}
	if m.Unpin {
		if e.pins <= 0 {
			panic(fmt.Sprintf("core: unpin of unpinned lock %#x", m.Lock))
		}
		e.pins--
	}
	s.stats.LockHW++
	s.enqueueLocker(e, m.Core, isa.OpCondWait, m.Cond)
}

// handleUnpinOnly runs at the lock's home when a cond entry died without a
// final wake (last waiter suspended).
func (s *Slice) handleUnpinOnly(m *MsaMsg) {
	e := s.find(isa.TypeLock, m.Lock)
	if e == nil {
		return
	}
	if e.pins > 0 {
		e.pins--
	}
	if e.pins == 0 && e.owner == -1 && e.waiters.Empty() && !e.draining && !e.revoking {
		s.maybeRetire(e)
	}
}
