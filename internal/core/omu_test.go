package core

import (
	"testing"
	"testing/quick"

	"misar/internal/memory"
)

func TestOMUBasicCounting(t *testing.T) {
	o := NewOMU(4)
	a := memory.Addr(0x1000)
	if o.Count(a) != 0 {
		t.Fatal("fresh counter nonzero")
	}
	o.Inc(a)
	o.Inc(a)
	if o.Count(a) != 2 {
		t.Fatalf("count = %d", o.Count(a))
	}
	o.Dec(a)
	if o.Count(a) != 1 {
		t.Fatalf("count = %d", o.Count(a))
	}
	st := o.Stats()
	if st.Incs != 2 || st.Decs != 1 || st.MaxValue != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOMUUnderflowPanics(t *testing.T) {
	o := NewOMU(4)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	o.Dec(0x1000)
}

func TestOMUMinimumOneCounter(t *testing.T) {
	o := NewOMU(0)
	o.Inc(0x40)
	if o.Count(0x9999999) != 1 {
		t.Fatal("single counter must alias everything")
	}
}

// TestOMUHashSpreadsStridedAddresses is a regression test: synchronization
// variables are line aligned and often allocated at a fixed stride (one per
// home tile, i.e. stride = tiles*64 bytes). A weak hash collapsed them all
// onto one counter, silently turning a 4-counter OMU into a 1-counter OMU.
func TestOMUHashSpreadsStridedAddresses(t *testing.T) {
	for _, stride := range []int{64, 2 * 64, 16 * 64, 64 * 64} {
		for _, counters := range []int{2, 4, 8} {
			o := NewOMU(counters)
			used := map[int]int{}
			for j := 0; j < 64; j++ {
				used[o.index(memory.Addr(0x1000000+j*stride))]++
			}
			if len(used) < counters {
				t.Errorf("stride %d, %d counters: only %d counters used (%v)",
					stride, counters, len(used), used)
			}
			// No counter may absorb more than 60% of the addresses.
			for idx, n := range used {
				if n > 64*6/10 {
					t.Errorf("stride %d, %d counters: counter %d absorbs %d/64",
						stride, counters, idx, n)
				}
			}
		}
	}
}

// Property: inc/dec sequences never corrupt counts (modelled against a map).
func TestPropertyOMUMatchesOracle(t *testing.T) {
	f := func(ops []uint16) bool {
		o := NewOMU(4)
		oracle := map[int]int{} // per-index
		for _, op := range ops {
			a := memory.Addr(0x1000 + uint64(op%256)*64)
			i := o.index(a)
			if op%2 == 0 {
				o.Inc(a)
				oracle[i]++
			} else if oracle[i] > 0 {
				o.Dec(a)
				oracle[i]--
			}
			if int(o.Count(a)) != oracle[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
