// Package core implements the paper's contribution: the Minimalistic
// Synchronization Accelerator (MSA) and the Overflow Management Unit (OMU).
//
// One Slice lives in each tile, co-located with the tile's LLC slice and
// directory (the MSA entry for a synchronization address lives in that
// address's coherence home tile). A slice holds a handful of entries — each
// tracking one active lock, barrier, or condition variable — plus the OMU's
// small untagged counter array that records how many threads are currently
// inside the *software* implementation of each (hashed) synchronization
// address. The OMU is what makes the hardware/software boundary safe: an
// acquire-type operation is granted a hardware entry only when no software
// activity is live on that address, and software entry/exit (FAILed
// instructions, FINISH notifications) keep the counters in balance.
package core

import (
	"misar/internal/isa"
	"misar/internal/memory"
)

// AbortReason distinguishes the two ways an MSA can abort an operation.
type AbortReason uint8

const (
	// ReasonNone accompanies non-abort results.
	ReasonNone AbortReason = iota
	// ReasonFallback: the entry was torn down (migrated-owner unlock,
	// barrier suspension, cond-waiter suspension); the synchronization
	// library must fall back to software (Algorithms 1-3).
	ReasonFallback
	// ReasonRequeue: the core's own suspension dequeued a lock waiter; the
	// LOCK instruction is squashed and must be re-executed when the thread
	// resumes (paper §4.1.2). The library never observes this result.
	ReasonRequeue
)

// Req is a synchronization request from a core to the MSA slice in the
// synchronization address's home tile.
type Req struct {
	Op   isa.SyncOp
	Addr memory.Addr // synchronization variable address
	Core int         // requesting core
	Goal int         // BARRIER: participant count
	Lock memory.Addr // COND_WAIT: associated lock address
}

// Resp is the MSA's reply completing a core's synchronization instruction.
// For COND_WAIT the reply may originate from the *lock's* home tile (the
// tile that granted the re-acquired lock), not the condition variable's.
type Resp struct {
	Op     isa.SyncOp // the instruction being completed
	Addr   memory.Addr
	Core   int
	Result isa.Result
	Reason AbortReason
	// ClearHWSync instructs the core to drop its HWSync bit for the lock's
	// line: the UNLOCK handed the lock to a waiter, so a silent re-acquire
	// by the unlocker would race the new owner (§5 handoff rule).
	ClearHWSync bool
}

// msaMsgKind enumerates MSA-to-MSA messages used by the condition-variable
// protocol (paper §4.3): the cond home unlocks-and-pins the lock at the
// lock's home, and later re-acquires it on behalf of released waiters.
type msaMsgKind uint8

const (
	kindUnlockPin msaMsgKind = iota
	kindUnlockPinResp
	kindLockBehalf
	kindUnpinOnly
	// kindOmuAdjust pre-charges the cond's OMU counter when a cond waiter is
	// aborted from the *lock's* home, so the FINISH in its fallback balances.
	kindOmuAdjust
)

// MsaMsg is an MSA-to-MSA message.
type MsaMsg struct {
	Kind    msaMsgKind
	Lock    memory.Addr // lock address (destination entry)
	Cond    memory.Addr // originating condition variable address
	Core    int         // thread's core (unlocker / waiter being woken)
	NeedPin bool        // kindUnlockPin: increment the pin count on success
	Unpin   bool        // kindLockBehalf: decrement the pin count first
	OK      bool        // kindUnlockPinResp
}

// Wire sizes: all MSA messages are small control packets.
const (
	ReqBytes  = 16
	RespBytes = 8
	MsaBytes  = 16
)

// ReqPool and RespPool recycle the fixed-size records exchanged between
// cores and MSA slices. Both message kinds are consumed by exactly one
// handler call at the destination (the MSA records waiters by core id, never
// by retaining the request), so the machine's delivery handler returns them
// here afterwards. A nil pool degrades to plain allocation for directly
// wired tests.
type ReqPool struct{ free []*Req }

// Get returns a request initialized to r.
func (p *ReqPool) Get(r Req) *Req {
	if p == nil {
		fresh := r
		return &fresh
	}
	if k := len(p.free); k > 0 {
		q := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		*q = r
		return q
	}
	fresh := r
	return &fresh
}

// Put recycles a delivered request.
func (p *ReqPool) Put(r *Req) {
	if p == nil {
		return
	}
	*r = Req{}
	p.free = append(p.free, r)
}

// RespPool is ReqPool's counterpart for MSA responses.
type RespPool struct{ free []*Resp }

// Get returns a response initialized to r.
func (p *RespPool) Get(r Resp) *Resp {
	if p == nil {
		fresh := r
		return &fresh
	}
	if k := len(p.free); k > 0 {
		q := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		*q = r
		return q
	}
	fresh := r
	return &fresh
}

// Put recycles a delivered response.
func (p *RespPool) Put(r *Resp) {
	if p == nil {
		return
	}
	*r = Resp{}
	p.free = append(p.free, r)
}
