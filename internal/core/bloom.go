package core

import (
	"fmt"

	"misar/internal/memory"
)

// BloomOMU is the counting-Bloom-filter variant of the overflow management
// unit that the paper suggests as an upgrade over simple counters (§3.2:
// "This can be avoided by using enough OMU counters, or even using counting
// Bloom filters instead of simple counters").
//
// Each address maps to K counters through independent hash functions; an
// address is considered software-active only if *all* K of its counters are
// nonzero. False positives (needless software steering) still exist but drop
// roughly exponentially with K for the same storage budget; false negatives
// remain impossible, which is the property correctness rests on: Inc raises
// all K counters, so an address with live software activity always sees all
// of its counters nonzero.
type BloomOMU struct {
	counters []uint32
	hashes   int
	stats    OMUStats
}

// NewBloomOMU builds a filter with n counters and k hash functions
// (minimums 1; k is capped at n).
func NewBloomOMU(n, k int) *BloomOMU {
	if n < 1 {
		n = 1
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return &BloomOMU{counters: make([]uint32, n), hashes: k}
}

// indices yields the K counter slots for an address. Each slot uses an
// independently seeded full-avalanche mix — with only a few counters, the
// usual double-hashing shortcut leaves the probe indices correlated and
// forfeits the Bloom advantage.
func (b *BloomOMU) indices(a memory.Addr) []int {
	out := make([]int, b.hashes)
	n := uint64(len(b.counters))
	for i := range out {
		h := (uint64(a) >> 6) + uint64(i)*0x9E3779B97F4A7C15
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
		h *= 0xC4CEB9FE1A85EC53
		h ^= h >> 33
		out[i] = int(h % n)
	}
	return out
}

// Active reports whether a may have live software activity (all K counters
// nonzero). Never reports false for an address with live activity.
func (b *BloomOMU) Active(a memory.Addr) bool {
	for _, i := range b.indices(a) {
		if b.counters[i] == 0 {
			return false
		}
	}
	return true
}

// Inc records a thread entering the software implementation of a.
func (b *BloomOMU) Inc(a memory.Addr) {
	for _, i := range b.indices(a) {
		b.counters[i]++
		if b.counters[i] > b.stats.MaxValue {
			b.stats.MaxValue = b.counters[i]
		}
	}
	b.stats.Incs++
}

// Dec records a thread leaving the software implementation of a.
func (b *BloomOMU) Dec(a memory.Addr) {
	for _, i := range b.indices(a) {
		if b.counters[i] == 0 {
			panic(fmt.Sprintf("core: Bloom OMU underflow for addr %#x", a))
		}
		b.counters[i]--
	}
	b.stats.Decs++
}

// Stats returns a snapshot of filter statistics.
func (b *BloomOMU) Stats() OMUStats { return b.stats }

// overflowTracker abstracts the two OMU variants so the slice can use
// either.
type overflowTracker interface {
	// ActiveSW reports whether the address may have live software activity.
	ActiveSW(a memory.Addr) bool
	// Level returns the activity estimate for the address (exact count for
	// the plain array, minimum counter for the Bloom filter).
	Level(a memory.Addr) uint32
	Inc(a memory.Addr)
	Dec(a memory.Addr)
	Stats() OMUStats
}

// Adapters.

// ActiveSW for the plain counter array: nonzero counter.
func (o *OMU) ActiveSW(a memory.Addr) bool { return o.Count(a) > 0 }

// ActiveSW for the Bloom filter.
func (b *BloomOMU) ActiveSW(a memory.Addr) bool { return b.Active(a) }

// Level returns the minimum of the address's K counters (an upper bound on
// its true software-activity count).
func (b *BloomOMU) Level(a memory.Addr) uint32 {
	min := uint32(1<<31 - 1)
	for _, i := range b.indices(a) {
		if b.counters[i] < min {
			min = b.counters[i]
		}
	}
	return min
}
