package core

import (
	"testing"

	"misar/internal/coherence"
	"misar/internal/isa"
	"misar/internal/memory"
	"misar/internal/noc"
	"misar/internal/sim"
)

// rig wires slices, directories and L1s over a real mesh, with scripted
// "cores" that simply record the responses they receive.
type rig struct {
	engine *sim.Engine
	net    *noc.Network
	store  *memory.Store
	l1     []*coherence.L1
	dir    []*coherence.Directory
	msa    []*Slice
	got    [][]Resp // responses per core, in arrival order
}

func newRig(tiles int, cfg Config) *rig {
	w := 1
	for w*w < tiles {
		w++
	}
	e := sim.NewEngine()
	n := noc.New(e, noc.DefaultConfig(w, (tiles+w-1)/w))
	r := &rig{
		engine: e, net: n, store: memory.NewStore(),
		l1:  make([]*coherence.L1, tiles),
		dir: make([]*coherence.Directory, tiles),
		msa: make([]*Slice, tiles),
		got: make([][]Resp, tiles),
	}
	for i := 0; i < tiles; i++ {
		i := i
		sendCoh := func(dst int, m *coherence.Msg) {
			n.Send(&noc.Message{Src: i, Dst: dst, Bytes: m.Bytes(), Payload: m})
		}
		r.l1[i] = coherence.NewL1(i, tiles, coherence.DefaultL1Config(), e, r.store, sendCoh)
		r.dir[i] = coherence.NewDirectory(i, tiles, coherence.DirConfig{LLCLatency: 2, MemLatency: 5}, e, sendCoh)
		r.msa[i] = NewSlice(i, tiles, cfg, e, r.dir[i],
			func(core int, resp *Resp) {
				n.Send(&noc.Message{Src: i, Dst: core, Bytes: RespBytes, Payload: resp})
			},
			func(tile int, m *MsaMsg) {
				n.Send(&noc.Message{Src: i, Dst: tile, Bytes: MsaBytes, Payload: m})
			})
		n.Attach(i, func(nm *noc.Message) {
			switch p := nm.Payload.(type) {
			case *coherence.Msg:
				switch p.Kind {
				case coherence.RspDataS, coherence.RspDataE, coherence.MsgInv, coherence.MsgFwd:
					r.l1[i].Handle(p)
				default:
					r.dir[i].Handle(p)
				}
			case *Resp:
				r.got[i] = append(r.got[i], *p)
			case *MsaMsg:
				r.msa[i].HandleMsa(p)
			case *Req:
				r.msa[i].HandleReq(p)
			}
		})
	}
	return r
}

// send issues a sync request from core c at the current/scheduled time.
func (r *rig) send(at sim.Time, c int, req Req) {
	req.Core = c
	r.engine.At(at, func() {
		home := memory.HomeOf(req.Addr, len(r.msa))
		cp := req
		r.net.Send(&noc.Message{Src: c, Dst: home, Bytes: ReqBytes, Payload: &cp})
	})
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if !r.engine.RunUntil(10_000_000) {
		t.Fatal("MSA rig did not quiesce")
	}
}

// last returns the most recent response core c received.
func (r *rig) last(t *testing.T, c int) Resp {
	t.Helper()
	if len(r.got[c]) == 0 {
		t.Fatalf("core %d received no response", c)
	}
	return r.got[c][len(r.got[c])-1]
}

func noOpt() Config {
	c := DefaultConfig()
	c.HWSyncOpt = false
	return c
}

const lockA = memory.Addr(0x10000)
const lockB = memory.Addr(0x20040)
const barA = memory.Addr(0x30080)
const condA = memory.Addr(0x400c0)

func TestLockGrantAndQueue(t *testing.T) {
	r := newRig(4, noOpt())
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.send(50, 1, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Success {
		t.Fatalf("first LOCK = %v", got.Result)
	}
	if len(r.got[1]) != 0 {
		t.Fatal("second LOCK should be held, not answered")
	}
	// Unlock hands off to the waiter.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	if got := r.last(t, 0); got.Op != isa.OpUnlock || got.Result != isa.Success {
		t.Fatalf("UNLOCK = %+v", got)
	}
	if got := r.last(t, 1); got.Op != isa.OpLock || got.Result != isa.Success {
		t.Fatalf("handoff = %+v", got)
	}
}

func TestReleaseMissDefaultsToSoftware(t *testing.T) {
	r := newRig(4, noOpt())
	home := memory.HomeOf(lockA, 4)
	// Make the lock software-managed: two acquires, only then unlocks.
	r.msa[home].omu.Inc(lockA) // simulate live software activity
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Fail {
		t.Fatalf("LOCK with live OMU counter = %v, want FAIL", got.Result)
	}
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Fail {
		t.Fatalf("UNLOCK miss = %v, want FAIL (default-to-software)", got.Result)
	}
	// The two increments (manual + failed LOCK) minus UNLOCK's decrement.
	if c := r.msa[home].omu.Level(lockA); c != 1 {
		t.Fatalf("OMU count = %d, want 1", c)
	}
}

func TestCapacityOverflowSteersToSoftware(t *testing.T) {
	cfg := noOpt()
	cfg.Entries = 1
	r := newRig(2, cfg) // even lines all map to slice 0
	a1 := memory.Addr(0x1000)
	a2 := memory.Addr(0x2000)
	r.send(0, 0, Req{Op: isa.OpLock, Addr: a1})
	r.run(t)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: a1})
	r.run(t)
	// Entry for a1 freed on empty queue (no HWSync opt): a2 gets the entry.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpLock, Addr: a2})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Success {
		t.Fatalf("a2 LOCK = %v, want SUCCESS after a1 freed", got.Result)
	}
	s := r.msa[0].Stats()
	if s.Allocs != 2 || s.Deallocs != 1 {
		t.Fatalf("allocs=%d deallocs=%d", s.Allocs, s.Deallocs)
	}
}

func TestCapacityFullFails(t *testing.T) {
	cfg := noOpt()
	cfg.Entries = 1
	r := newRig(2, cfg)
	a1, a2 := memory.Addr(0x1000), memory.Addr(0x2000)
	r.send(0, 0, Req{Op: isa.OpLock, Addr: a1}) // holds the only entry
	r.run(t)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpLock, Addr: a2})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Fail {
		t.Fatalf("LOCK with full MSA = %v, want FAIL", got.Result)
	}
	if r.msa[0].Stats().CapacitySteers != 1 {
		t.Fatal("CapacitySteers not counted")
	}
}

func TestOMUBlocksReallocationUntilDrain(t *testing.T) {
	cfg := noOpt()
	cfg.Entries = 1
	r := newRig(2, cfg)
	a1, a2 := memory.Addr(0x1000), memory.Addr(0x2000)
	// a1 takes the entry; a2 overflows to software (OMU counter 1).
	r.send(0, 0, Req{Op: isa.OpLock, Addr: a1})
	r.send(100, 0, Req{Op: isa.OpLock, Addr: a2})
	r.run(t)
	// Free the entry.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: a1})
	r.run(t)
	// a2 is still live in software: a new LOCK must keep going to software
	// even though an entry is free (the §3.2 correctness scenario).
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpLock, Addr: a2})
	r.run(t)
	if got := r.last(t, 1); got.Result != isa.Fail {
		t.Fatalf("LOCK on software-live lock = %v, want FAIL", got.Result)
	}
	if r.msa[0].Stats().OMUSteers == 0 {
		t.Fatal("OMUSteers not counted")
	}
	// Drain software: both software lockers unlock.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: a2})
	r.send(r.engine.Now()+200, 1, Req{Op: isa.OpUnlock, Addr: a2})
	r.run(t)
	// Now the lock is eligible for hardware again.
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpLock, Addr: a2})
	r.run(t)
	if got := r.last(t, 1); got.Result != isa.Success {
		t.Fatalf("LOCK after drain = %v, want SUCCESS", got.Result)
	}
}

func TestNBTCFairness(t *testing.T) {
	r := newRig(4, noOpt())
	// Core 0 holds; cores 1,2,3 wait.
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.send(50, 1, Req{Op: isa.OpLock, Addr: lockA})
	r.send(51, 2, Req{Op: isa.OpLock, Addr: lockA})
	r.send(52, 3, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	var order []int
	unlockNext := func(c int) {
		r.send(r.engine.Now()+1, c, Req{Op: isa.OpUnlock, Addr: lockA})
	}
	unlockNext(0)
	r.run(t)
	for i := 0; i < 3; i++ {
		// Find who got the lock.
		for c := 1; c <= 3; c++ {
			if len(r.got[c]) > 0 && r.got[c][len(r.got[c])-1].Op == isa.OpLock &&
				r.got[c][len(r.got[c])-1].Result == isa.Success && !contains(order, c) {
				order = append(order, c)
				unlockNext(c)
			}
		}
		r.run(t)
	}
	if len(order) != 3 {
		t.Fatalf("handoff order incomplete: %v", order)
	}
	// NBTC starts at 0, so round-robin grants 1, then 2, then 3.
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("handoff order = %v, want [1 2 3]", order)
		}
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestMigratedUnlockAbortsWaiters(t *testing.T) {
	r := newRig(4, noOpt())
	home := memory.HomeOf(lockA, 4)
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.send(50, 1, Req{Op: isa.OpLock, Addr: lockA})
	r.send(51, 2, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	// Owner's thread migrated to core 3 and unlocks from there.
	r.send(r.engine.Now()+1, 3, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	if got := r.last(t, 3); got.Result != isa.Success {
		t.Fatalf("migrated UNLOCK = %v, want SUCCESS", got.Result)
	}
	for _, c := range []int{1, 2} {
		got := r.last(t, c)
		if got.Result != isa.Abort || got.Reason != ReasonFallback {
			t.Fatalf("waiter %d got %+v, want ABORT/fallback", c, got)
		}
	}
	// OMU charged once per aborted waiter.
	if c := r.msa[home].omu.Level(lockA); c != 2 {
		t.Fatalf("OMU count = %d, want 2", c)
	}
	if r.msa[home].LiveEntries() != 0 {
		t.Fatal("entry not torn down after abort")
	}
}

func TestBarrierReleaseAll(t *testing.T) {
	r := newRig(4, noOpt())
	for c := 0; c < 4; c++ {
		r.send(sim.Time(10*c), c, Req{Op: isa.OpBarrier, Addr: barA, Goal: 4})
	}
	r.run(t)
	for c := 0; c < 4; c++ {
		got := r.last(t, c)
		if got.Op != isa.OpBarrier || got.Result != isa.Success {
			t.Fatalf("core %d: %+v", c, got)
		}
	}
	home := memory.HomeOf(barA, 4)
	if r.msa[home].LiveEntries() != 0 {
		t.Fatal("barrier entry not freed after release")
	}
	// Entry is reusable for the next episode.
	for c := 0; c < 4; c++ {
		r.send(r.engine.Now()+sim.Time(c+1), c, Req{Op: isa.OpBarrier, Addr: barA, Goal: 4})
	}
	r.run(t)
	for c := 0; c < 4; c++ {
		if n := countSuccess(r.got[c], isa.OpBarrier); n != 2 {
			t.Fatalf("core %d barrier successes = %d, want 2", c, n)
		}
	}
}

func countSuccess(rs []Resp, op isa.SyncOp) int {
	n := 0
	for _, r := range rs {
		if r.Op == op && r.Result == isa.Success {
			n++
		}
	}
	return n
}

func TestBarrierSuspendAbortsAll(t *testing.T) {
	r := newRig(4, noOpt())
	home := memory.HomeOf(barA, 4)
	for c := 0; c < 3; c++ {
		r.send(sim.Time(10*c), c, Req{Op: isa.OpBarrier, Addr: barA, Goal: 4})
	}
	r.run(t)
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpSuspend, Addr: barA})
	r.run(t)
	for c := 0; c < 3; c++ {
		got := r.last(t, c)
		if got.Result != isa.Abort || got.Reason != ReasonFallback {
			t.Fatalf("core %d got %+v, want ABORT", c, got)
		}
	}
	if c := r.msa[home].omu.Level(barA); c != 3 {
		t.Fatalf("OMU count = %d, want 3 (one per aborted participant)", c)
	}
	if r.msa[home].LiveEntries() != 0 {
		t.Fatal("barrier entry survived suspension")
	}
}

func TestLockSuspendRequeues(t *testing.T) {
	r := newRig(4, noOpt())
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.send(50, 1, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpSuspend, Addr: lockA})
	r.run(t)
	got := r.last(t, 1)
	if got.Result != isa.Abort || got.Reason != ReasonRequeue {
		t.Fatalf("suspended waiter got %+v, want ABORT/requeue", got)
	}
	// Unlock must not grant to the dequeued core.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	if n := countSuccess(r.got[1], isa.OpLock); n != 0 {
		t.Fatal("dequeued waiter was granted the lock")
	}
}

func TestSuspendNackWhenNotQueued(t *testing.T) {
	r := newRig(4, noOpt())
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	r.send(r.engine.Now()+1, 2, Req{Op: isa.OpSuspend, Addr: lockA})
	r.run(t)
	got := r.last(t, 2)
	if got.Op != isa.OpSuspend || got.Result != isa.Fail {
		t.Fatalf("suspend of non-waiter = %+v, want nack", got)
	}
}

func TestFinishDecrementsOMU(t *testing.T) {
	r := newRig(4, noOpt())
	home := memory.HomeOf(barA, 4)
	r.msa[home].omu.Inc(barA)
	r.send(0, 0, Req{Op: isa.OpFinish, Addr: barA})
	r.run(t)
	if c := r.msa[home].omu.Level(barA); c != 0 {
		t.Fatalf("OMU count = %d after FINISH, want 0", c)
	}
}

// --- HWSync optimization (§5) ---

func TestHWSyncGrantAndStandby(t *testing.T) {
	r := newRig(4, DefaultConfig())
	home := memory.HomeOf(lockA, 4)
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	if !r.l1[0].HWSyncHit(lockA) {
		t.Fatal("HWSync bit not granted with the lock")
	}
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	// Entry stays in standby: still allocated, silently re-acquirable.
	if r.msa[home].LiveEntries() != 1 {
		t.Fatal("standby entry was deallocated")
	}
	if !r.l1[0].HWSyncHit(lockA) {
		t.Fatal("HWSync bit lost after unlock")
	}
	// Silent re-acquire: core completes locally and only notifies.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpLockSilent, Addr: lockA})
	r.run(t)
	if r.msa[home].Stats().SilentLocks != 1 {
		t.Fatal("LOCK_SILENT not recorded")
	}
	// Unlock again: normal hardware unlock of the silently-held lock.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Success {
		t.Fatalf("unlock of silent hold = %v", got.Result)
	}
}

func TestStandbyRevocationOnContention(t *testing.T) {
	r := newRig(4, DefaultConfig())
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	// Core 1 requests the standby lock: core 0's block must be revoked
	// before the grant, and core 1 then receives the lock.
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	if got := r.last(t, 1); got.Result != isa.Success {
		t.Fatalf("contending LOCK = %v", got.Result)
	}
	if r.l1[0].HWSyncHit(lockA) {
		t.Fatal("core 0 kept the HWSync bit after revocation")
	}
	if !r.l1[1].HWSyncHit(lockA) {
		t.Fatal("core 1 did not receive the HWSync bit")
	}
	home := memory.HomeOf(lockA, 4)
	if r.msa[home].Stats().Revokes == 0 {
		t.Fatal("revocation not counted")
	}
}

func TestStandbyReclaimAfterBitLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 1
	r := newRig(2, cfg)
	a1, a2 := memory.Addr(0x1000), memory.Addr(0x2000)
	r.send(0, 0, Req{Op: isa.OpLock, Addr: a1})
	r.run(t)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: a1})
	r.run(t)
	// Standby entry occupies the slot: a2 cannot allocate.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpLock, Addr: a2})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Fail {
		t.Fatalf("LOCK while standby holds slot = %v, want FAIL", got.Result)
	}
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: a2}) // drain SW
	r.run(t)
	// Kill core 0's exclusivity on a1's line (e.g. a conflicting access).
	r.engine.At(r.engine.Now()+1, func() {
		r.l1[1].Access(a1, coherence.AccLoad, 0, nil, func(uint64) {})
	})
	r.run(t)
	// Now a2 can reclaim the lapsed standby entry.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpLock, Addr: a2})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Success {
		t.Fatalf("LOCK after standby lapse = %v, want SUCCESS", got.Result)
	}
	if r.msa[0].Stats().Reclaims != 1 {
		t.Fatal("reclaim not counted")
	}
}

// --- Condition variables (§4.3) ---

// condSetup puts core 0 in possession of lockB in hardware.
func condSetup(t *testing.T, r *rig) {
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockB})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Success {
		t.Fatalf("setup LOCK = %v", got.Result)
	}
}

func TestCondWaitSignalRoundTrip(t *testing.T) {
	r := newRig(4, noOpt())
	condSetup(t, r)
	lockHome := memory.HomeOf(lockB, 4)
	condHome := memory.HomeOf(condA, 4)
	// Core 0 waits: releases lockB, enqueues on condA.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpCondWait, Addr: condA, Lock: lockB})
	r.run(t)
	if len(r.got[0]) != 1 {
		t.Fatal("COND_WAIT should hold its reply")
	}
	// The lock is now free: another core can take it in hardware.
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpLock, Addr: lockB})
	r.run(t)
	if got := r.last(t, 1); got.Result != isa.Success {
		t.Fatalf("LOCK after cond release = %v", got.Result)
	}
	// Signaler (holding the lock) wakes core 0, then unlocks.
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpCondSignal, Addr: condA})
	r.run(t)
	if got := r.last(t, 1); got.Op != isa.OpCondSignal || got.Result != isa.Success {
		t.Fatalf("COND_SIGNAL = %+v", got)
	}
	// Core 0 cannot finish its wait until the lock is released.
	if countSuccess(r.got[0], isa.OpCondWait) != 0 {
		t.Fatal("COND_WAIT completed while lock still held")
	}
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpUnlock, Addr: lockB})
	r.run(t)
	got := r.last(t, 0)
	if got.Op != isa.OpCondWait || got.Result != isa.Success || got.Addr != condA {
		t.Fatalf("COND_WAIT completion = %+v", got)
	}
	// Entry freed after the last waiter; pin released.
	if r.msa[condHome].find(isa.TypeCond, condA) != nil {
		t.Fatal("cond entry not freed")
	}
	le := r.msa[lockHome].find(isa.TypeLock, lockB)
	if le == nil || le.pins != 0 {
		t.Fatalf("lock pin not released: %+v", le)
	}
	// Core 0 now owns the lock again (cond-wait re-acquired it).
	if le.owner != 0 {
		t.Fatalf("lock owner = %d, want 0", le.owner)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	r := newRig(4, noOpt())
	// Three waiters, serially acquiring the lock then waiting.
	for c := 0; c < 3; c++ {
		r.send(r.engine.Now(), c, Req{Op: isa.OpLock, Addr: lockB})
		r.run(t)
		r.send(r.engine.Now()+1, c, Req{Op: isa.OpCondWait, Addr: condA, Lock: lockB})
		r.run(t)
	}
	r.send(r.engine.Now()+1, 3, Req{Op: isa.OpCondBcast, Addr: condA})
	r.run(t)
	if got := r.last(t, 3); got.Result != isa.Success {
		t.Fatalf("COND_BCAST = %v", got.Result)
	}
	// All three waiters re-acquire the lock one at a time.
	for i := 0; i < 3; i++ {
		granted := -1
		for c := 0; c < 3; c++ {
			if countSuccess(r.got[c], isa.OpCondWait) == 1 && !holdsUnlock(r.got[c]) {
				granted = c
				break
			}
		}
		if granted < 0 {
			t.Fatalf("round %d: no waiter holds the lock", i)
		}
		r.send(r.engine.Now()+1, granted, Req{Op: isa.OpUnlock, Addr: lockB})
		r.run(t)
	}
	for c := 0; c < 3; c++ {
		if countSuccess(r.got[c], isa.OpCondWait) != 1 {
			t.Fatalf("core %d cond-wait completions = %d", c, countSuccess(r.got[c], isa.OpCondWait))
		}
	}
}

func holdsUnlock(rs []Resp) bool {
	return countSuccess(rs, isa.OpUnlock) > 0
}

func TestCondSignalMissFails(t *testing.T) {
	r := newRig(4, noOpt())
	r.send(0, 2, Req{Op: isa.OpCondSignal, Addr: condA})
	r.run(t)
	if got := r.last(t, 2); got.Result != isa.Fail {
		t.Fatalf("signal with no entry = %v, want FAIL", got.Result)
	}
}

func TestCondWaitSWLockFails(t *testing.T) {
	// The lock is handled in software; the cond var must fall back too
	// (§4.3.1: a HW cond var requires a HW lock).
	r := newRig(4, noOpt())
	lockHome := memory.HomeOf(lockB, 4)
	r.msa[lockHome].omu.Inc(lockB) // lock is software-live
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockB})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Fail {
		t.Fatal("setup: lock should be software")
	}
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpCondWait, Addr: condA, Lock: lockB})
	r.run(t)
	if got := r.last(t, 0); got.Op != isa.OpCondWait || got.Result != isa.Fail {
		t.Fatalf("COND_WAIT with SW lock = %+v, want FAIL", got)
	}
	condHome := memory.HomeOf(condA, 4)
	if r.msa[condHome].LiveEntries() != 0 {
		t.Fatal("reserved cond entry not torn down")
	}
	if r.msa[condHome].omu.Level(condA) != 1 {
		t.Fatal("cond OMU not charged for software waiter")
	}
}

func TestCondWaiterSuspension(t *testing.T) {
	r := newRig(4, noOpt())
	condSetup(t, r)
	condHome := memory.HomeOf(condA, 4)
	lockHome := memory.HomeOf(lockB, 4)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpCondWait, Addr: condA, Lock: lockB})
	r.run(t)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpSuspend, Addr: condA})
	r.run(t)
	got := r.last(t, 0)
	if got.Op != isa.OpCondWait || got.Result != isa.Abort || got.Reason != ReasonFallback {
		t.Fatalf("suspended waiter got %+v", got)
	}
	if r.msa[condHome].omu.Level(condA) != 1 {
		t.Fatal("cond OMU not pre-charged for the fallback FINISH")
	}
	if r.msa[condHome].LiveEntries() != 0 {
		t.Fatal("cond entry not freed after last waiter left")
	}
	le := r.msa[lockHome].find(isa.TypeLock, lockB)
	if le != nil && le.pins != 0 {
		t.Fatalf("lock still pinned: %+v", le)
	}
}

func TestLockOnlyConfigRejectsBarriers(t *testing.T) {
	cfg := noOpt()
	cfg.Barriers = false
	cfg.Conds = false
	r := newRig(4, cfg)
	r.send(0, 0, Req{Op: isa.OpBarrier, Addr: barA, Goal: 4})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Fail {
		t.Fatalf("BARRIER on lock-only MSA = %v, want FAIL", got.Result)
	}
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Success {
		t.Fatalf("LOCK on lock-only MSA = %v, want SUCCESS", got.Result)
	}
}

func TestWithoutOMUEntriesArePermanent(t *testing.T) {
	cfg := noOpt()
	cfg.Entries = 1
	cfg.OMUEnabled = false
	r := newRig(2, cfg)
	a1, a2 := memory.Addr(0x1000), memory.Addr(0x2000)
	r.send(0, 0, Req{Op: isa.OpLock, Addr: a1})
	r.run(t)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: a1})
	r.run(t)
	// Entry still bound to a1 forever; a2 is permanently software.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpLock, Addr: a2})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Fail {
		t.Fatalf("a2 without OMU = %v, want FAIL", got.Result)
	}
	// a1 re-locks in hardware (permanent binding).
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpLock, Addr: a1})
	r.run(t)
	if got := r.last(t, 1); got.Result != isa.Success {
		t.Fatalf("a1 without OMU = %v, want SUCCESS", got.Result)
	}
}

func TestMSAInfUnbounded(t *testing.T) {
	cfg := noOpt()
	cfg.Entries = -1
	r := newRig(2, cfg)
	for i := 0; i < 50; i++ {
		r.send(sim.Time(i*40), 0, Req{Op: isa.OpLock, Addr: memory.Addr(0x1000 + i*0x80)})
	}
	r.run(t)
	if n := countSuccess(r.got[0], isa.OpLock); n != 50 {
		t.Fatalf("successes = %d, want 50 (unbounded entries)", n)
	}
	if r.msa[0].LiveEntries() != 50 {
		t.Fatalf("live entries = %d", r.msa[0].LiveEntries())
	}
}
