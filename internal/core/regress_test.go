package core

import (
	"testing"

	"misar/internal/coherence"
	"misar/internal/isa"
	"misar/internal/memory"
)

// Regression tests for bugs found during bring-up. Each reproduces the
// original failing scenario at the MSA protocol level.

// Without the OMU, a condition variable entry that empties must be
// re-allocatable by the same address with a fresh pin handshake (the
// original code reused it in place, skipping the UNLOCK&PIN and eventually
// underflowing the lock's pin count).
func TestWithoutOMUCondReuseRepins(t *testing.T) {
	cfg := noOpt()
	cfg.OMUEnabled = false
	cfg.Entries = 4
	r := newRig(4, cfg)
	lockHome := memory.HomeOf(lockB, 4)
	for round := 0; round < 3; round++ {
		// Core 0 takes the lock and waits on the cond.
		r.send(r.engine.Now()+1, 0, Req{Op: isa.OpLock, Addr: lockB})
		r.run(t)
		r.send(r.engine.Now()+1, 0, Req{Op: isa.OpCondWait, Addr: condA, Lock: lockB})
		r.run(t)
		le := r.msa[lockHome].find(isa.TypeLock, lockB)
		if le == nil || le.pins != 1 {
			t.Fatalf("round %d: lock pins = %+v, want 1", round, le)
		}
		// Core 1 signals; core 0 re-acquires and unlocks.
		r.send(r.engine.Now()+1, 1, Req{Op: isa.OpCondSignal, Addr: condA})
		r.run(t)
		if got := r.last(t, 0); got.Op != isa.OpCondWait || got.Result != isa.Success {
			t.Fatalf("round %d: wait completion = %+v", round, got)
		}
		le = r.msa[lockHome].find(isa.TypeLock, lockB)
		if le == nil || le.pins != 0 {
			t.Fatalf("round %d: pins after unpin = %+v", round, le)
		}
		r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockB})
		r.run(t)
	}
}

// A standby entry's slot must be reclaimable by LRU order: the least
// recently used standby entry is revoked, not the most recent.
func TestStandbyReclaimIsLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 2
	r := newRig(2, cfg) // even lines home at slice 0
	a1, a2, a3 := memory.Addr(0x1000), memory.Addr(0x2000), memory.Addr(0x3000)
	lockUnlock := func(c int, a memory.Addr) {
		r.send(r.engine.Now()+1, c, Req{Op: isa.OpLock, Addr: a})
		r.run(t)
		r.send(r.engine.Now()+1, c, Req{Op: isa.OpUnlock, Addr: a})
		r.run(t)
	}
	lockUnlock(0, a1) // a1 standby, oldest
	lockUnlock(0, a2) // a2 standby, newer; slice now full (proactive reclaim kicks in)
	r.run(t)
	// Allow background reclaim of a1 (the LRU victim) to finish.
	if !r.engine.RunUntil(r.engine.Now() + 5000) {
		t.Fatal("did not quiesce")
	}
	if r.msa[0].find(isa.TypeLock, a2) == nil {
		t.Fatal("recently used standby entry was reclaimed instead of LRU")
	}
	// a3 must find a free slot immediately (a1 was reclaimed proactively).
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpLock, Addr: a3})
	r.run(t)
	if got := r.last(t, 0); got.Result != isa.Success {
		t.Fatalf("a3 LOCK = %v, want SUCCESS after proactive reclaim", got.Result)
	}
}

// An UNLOCK that hands the lock to a waiter must instruct the releaser to
// clear its HWSync bit; otherwise its next LOCK silently re-acquires a lock
// that now belongs to the waiter (found by the machine-level stress test).
func TestHandoffClearsReleaserBit(t *testing.T) {
	r := newRig(4, DefaultConfig())
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpLock, Addr: lockA}) // waiter
	r.run(t)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	// The unlock response must carry the clear flag.
	var unlockResp *Resp
	for i := range r.got[0] {
		if r.got[0][i].Op == isa.OpUnlock {
			unlockResp = &r.got[0][i]
		}
	}
	if unlockResp == nil || !unlockResp.ClearHWSync {
		t.Fatalf("handoff unlock response = %+v, want ClearHWSync", unlockResp)
	}
	// And an unlock with no waiters must not clear (standby keeps the bit).
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	var second *Resp
	for i := range r.got[1] {
		if r.got[1][i].Op == isa.OpUnlock {
			second = &r.got[1][i]
		}
	}
	if second == nil || second.ClearHWSync {
		t.Fatalf("idle unlock response = %+v, want no clear", second)
	}
}

// A LOCK_SILENT racing a standby revocation must be honoured: the silent
// holder wins the lock and the revocation's requester waits.
func TestSilentRacesRevocation(t *testing.T) {
	r := newRig(4, DefaultConfig())
	home := memory.HomeOf(lockA, 4)
	// Core 0 owns the standby entry with the block+bit.
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	if !r.l1[0].HWSyncHit(lockA) {
		t.Fatal("setup: no standby bit")
	}
	// Core 1's LOCK and core 0's LOCK_SILENT race: inject both in the same
	// cycle. The silent notification is point-to-point ordered before core
	// 0's invalidation ack, so core 0 must own and core 1 must wait.
	now := r.engine.Now() + 1
	r.send(now, 1, Req{Op: isa.OpLock, Addr: lockA})
	r.send(now, 0, Req{Op: isa.OpLockSilent, Addr: lockA})
	r.run(t)
	e := r.msa[home].find(isa.TypeLock, lockA)
	if e == nil || e.owner != 0 {
		t.Fatalf("entry owner = %+v, want core 0 (silent winner)", e)
	}
	if countSuccess(r.got[1], isa.OpLock) != 1 {
		// Core 1 acquired once at setup... it did not: setup used core 0.
		t.Log("waiter correctly held")
	}
	// Core 0 releases; core 1 must now get the lock.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	if countSuccess(r.got[1], isa.OpLock) != 1 {
		t.Fatal("waiter never granted after silent holder released")
	}
}

// Pinned lock entries must survive queue emptiness (§4.3.1) and retire only
// after the unpin.
func TestPinBlocksRetirement(t *testing.T) {
	r := newRig(4, noOpt())
	lockHome := memory.HomeOf(lockB, 4)
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockB})
	r.run(t)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpCondWait, Addr: condA, Lock: lockB})
	r.run(t)
	// Lock is free (released by the cond wait) and unowned, but pinned.
	e := r.msa[lockHome].find(isa.TypeLock, lockB)
	if e == nil {
		t.Fatal("pinned lock entry was deallocated")
	}
	if e.owner != -1 || e.pins != 1 {
		t.Fatalf("entry = owner %d pins %d", e.owner, e.pins)
	}
	// Wake the waiter (LOCK&UNPIN path) and release.
	r.send(r.engine.Now()+1, 2, Req{Op: isa.OpCondSignal, Addr: condA})
	r.run(t)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockB})
	r.run(t)
	e = r.msa[lockHome].find(isa.TypeLock, lockB)
	if e != nil && e.pins != 0 {
		t.Fatalf("pins = %d after unpin", e.pins)
	}
}

// Reserved cond entries must hold signals until the UNLOCK&PIN handshake
// resolves, then deliver them (a signal sent under the mutex is never lost).
func TestSignalDuringReservationDelivered(t *testing.T) {
	r := newRig(4, noOpt())
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockB})
	r.run(t)
	// Inject COND_WAIT and a COND_SIGNAL in the same cycle: the signal can
	// arrive at the cond home while the reservation is in flight.
	now := r.engine.Now() + 1
	r.send(now, 0, Req{Op: isa.OpCondWait, Addr: condA, Lock: lockB})
	r.send(now, 2, Req{Op: isa.OpCondSignal, Addr: condA})
	r.run(t)
	// Whatever the interleaving, the system must not deadlock and the
	// signaler must get an answer.
	if len(r.got[2]) == 0 {
		t.Fatal("signaler never answered")
	}
	// If the signal was queued and delivered, core 0's wait completed.
	sig := r.last(t, 2)
	if sig.Result == isa.Success && countSuccess(r.got[0], isa.OpCondWait) != 1 {
		t.Fatal("delivered signal did not complete the wait")
	}
}

// The directory's IsExclusiveAt must reflect reality after the full
// grant/revoke cycle (used by standby retirement decisions).
func TestStandbyRetireAfterBitLossViaEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 2
	r := newRig(2, cfg)
	a1 := memory.Addr(0x1000)
	r.send(0, 0, Req{Op: isa.OpLock, Addr: a1})
	r.run(t)
	// Another core writes the lock line's neighbour... actually write the
	// line itself via a plain store (models an unrelated program bug or a
	// reused address): core 1 takes exclusive ownership.
	r.engine.At(r.engine.Now()+1, func() {
		r.l1[1].Access(a1, coherence.AccStore, 0, nil, func(uint64) {})
	})
	r.run(t)
	// Unlock now: holder's line is gone, so no standby; entry must retire.
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: a1})
	r.run(t)
	if r.msa[0].find(isa.TypeLock, a1) != nil {
		t.Fatal("entry stayed in standby without a usable block")
	}
}
