package core

import (
	"fmt"

	"misar/internal/bitset"
	"misar/internal/coherence"
	"misar/internal/fault"
	"misar/internal/isa"
	"misar/internal/memory"
	"misar/internal/metrics"
	"misar/internal/obs"
	"misar/internal/sim"
	"misar/internal/trace"
)

// Config selects the accelerator variant under evaluation.
type Config struct {
	// Entries is the per-slice entry count. Negative means unbounded
	// (the paper's MSA-inf configuration).
	Entries int
	// OMUCounters is the per-slice OMU counter count (the paper evaluates
	// four). Ignored when OMUEnabled is false.
	OMUCounters int
	// OMUBloom selects the counting-Bloom-filter OMU variant the paper
	// suggests in §3.2, with OMUHashes hash functions over the same
	// OMUCounters-counter storage budget.
	OMUBloom  bool
	OMUHashes int
	// OMUEnabled selects overflow management. When false the slice models
	// the paper's "without OMU" baseline (Fig. 7): entries are never
	// deallocated, so the first addresses to arrive keep them forever, and
	// overflowing addresses are permanently served in software.
	OMUEnabled bool
	// HWSyncOpt enables the §5 optimization: lock grants ship the lock's
	// cache line in Exclusive state with the HWSync bit, and entries linger
	// in standby so the same core can silently re-acquire.
	HWSyncOpt bool
	// Locks, Barriers, Conds select which synchronization types the slice
	// accelerates (Fig. 9 evaluates lock-only and barrier-only variants).
	// Unsupported types always take the software path.
	Locks, Barriers, Conds bool
	// FixedPriority replaces the NBTC round-robin grant policy with
	// lowest-core-first selection (ablation A3: what the fairness register
	// buys).
	FixedPriority bool
	// UnsafeNoOMUCheck is a TEST-ONLY toggle that skips the OMU activity
	// check on allocation, deliberately breaking the exclusivity property
	// the OMU exists to enforce. It exists so the fault/invariant layer can
	// prove it catches a broken OMU (hardware and software handling the
	// same variable at once) instead of hanging. Never set outside tests.
	UnsafeNoOMUCheck bool
}

// DefaultConfig is the paper's headline MSA/OMU-2 configuration.
func DefaultConfig() Config {
	return Config{
		Entries:     2,
		OMUCounters: 4,
		OMUEnabled:  true,
		HWSyncOpt:   true,
		Locks:       true,
		Barriers:    true,
		Conds:       true,
	}
}

// Stats aggregates one slice's activity. "HW" counts operations the
// accelerator completed; "SW" counts operations steered to the software
// fallback (FAIL responses).
type Stats struct {
	LockHW, LockSW       uint64
	UnlockHW, UnlockSW   uint64
	BarrierHW, BarrierSW uint64
	CondHW, CondSW       uint64
	SilentLocks          uint64 // LOCK_SILENT notifications (HW lock grants)

	Allocs, Deallocs uint64
	Reclaims         uint64 // standby entries reclaimed for a new address
	OMUSteers        uint64 // acquire misses steered to SW by a live counter
	CapacitySteers   uint64 // acquire misses steered to SW by a full MSA
	Aborts           uint64 // operations terminated with ABORT
	Grants           uint64 // HWSync block grants shipped
	Revokes          uint64 // standby revocations issued
}

// HWOps returns the operations completed in hardware.
func (s *Stats) HWOps() uint64 {
	return s.LockHW + s.UnlockHW + s.BarrierHW + s.CondHW + s.SilentLocks
}

// SWOps returns the operations steered to software.
func (s *Stats) SWOps() uint64 {
	return s.LockSW + s.UnlockSW + s.BarrierSW + s.CondSW
}

// Add accumulates other into s.
func (s *Stats) Add(o *Stats) {
	s.LockHW += o.LockHW
	s.LockSW += o.LockSW
	s.UnlockHW += o.UnlockHW
	s.UnlockSW += o.UnlockSW
	s.BarrierHW += o.BarrierHW
	s.BarrierSW += o.BarrierSW
	s.CondHW += o.CondHW
	s.CondSW += o.CondSW
	s.SilentLocks += o.SilentLocks
	s.Allocs += o.Allocs
	s.Deallocs += o.Deallocs
	s.Reclaims += o.Reclaims
	s.OMUSteers += o.OMUSteers
	s.CapacitySteers += o.CapacitySteers
	s.Aborts += o.Aborts
	s.Grants += o.Grants
	s.Revokes += o.Revokes
}

// entry is one MSA entry (paper Fig. 1): type, synchronization address,
// HWQueue bit vector, auxiliary information, and a valid bit. The paper's
// HWQueue holds waiters plus the lock owner; here the owner is held in a
// separate field and `waiters` holds the rest, which is equivalent.
type entry struct {
	valid   bool
	empty   bool // without-OMU: slot permanently bound to addr but inactive
	typ     isa.SyncType
	addr    memory.Addr
	lastUse uint64 // slice op tick, for LRU standby reclaim

	waiters bitset.Set // one bit per waiting core (barriers: arrived cores)
	owner   int        // locks: owning core, -1 when free

	// AuxInfo (paper Fig. 1) — meaning depends on typ:
	goal     int         // barrier: participant count
	pins     int         // lock: condition variables pinning this entry
	lockAddr memory.Addr // cond: associated lock address

	// behalf maps a waiting core to the condition-variable address whose
	// COND_WAIT the eventual lock grant completes (§4.3: the lock home
	// responds directly to the released waiter).
	behalf map[int]memory.Addr

	// §5 standby machinery (locks only).
	standby     bool // free, but standbyCore may silently re-acquire
	standbyCore int  // core holding (or receiving) the HWSync block
	revoking    bool // revocation in flight; promotion deferred
	reclaiming  bool // background revoke-then-free of a standby entry
	grantsOut   int  // block grants still in flight
	draining    bool // tear-down in progress; steer new requests to SW

	// reserved cond-entry machinery (§4.3.1 UNLOCK&PIN handshake).
	reserved  bool
	pinCore   int   // waiter whose UNLOCK&PIN handshake is in flight, -1 none
	pendSig   []int // signaler cores queued while a handshake is in flight
	pendBcast []int
}

// newEntry builds a recyclable entry with its HWQueue vector sized to the
// machine; the vector is cleared, never reallocated, across reuse.
func newEntry(tiles int) *entry {
	return &entry{owner: -1, standbyCore: -1, pinCore: -1, waiters: bitset.New(tiles)}
}

// Slice is one tile's MSA slice plus its OMU.
type Slice struct {
	tile, tiles int
	cfg         Config
	engine      *sim.Engine
	dir         *coherence.Directory

	// sendResp delivers a Resp to a core; sendMsa delivers an MsaMsg to a
	// peer slice. Both are wired by the machine over the NoC.
	sendResp func(core int, r *Resp)
	sendMsa  func(tile int, m *MsaMsg)

	// respPool supplies outgoing responses (nil: plain allocation).
	respPool *RespPool

	entries []*entry
	omu     overflowTracker
	nbtc    int    // next-bit-to-check fairness register (one per slice)
	tick    uint64 // op counter for LRU standby reclaim
	stats   Stats
	tracer  *trace.Buffer // nil unless protocol tracing is attached
	flight  *obs.FlightRecorder

	// inj/check are the fault-injection and safety-invariant hooks. Both
	// are nil-receiver-safe (the disabled machine pays one comparison per
	// site, same contract as the metrics instruments below).
	inj     *fault.Injector
	check   *fault.Checker
	lastReq sim.Time // cycle of the last request handled (watchdog diagnosis)

	met sliceMetrics
	// swActive is an exact shadow of the per-address software-activity level,
	// maintained only while metrics are attached. The OMU itself is untagged
	// (that is the point of its hardware economy), so comparing a steer
	// decision against this shadow classifies it as genuine or a false
	// positive from counter aliasing / Bloom collision.
	swActive map[memory.Addr]int
}

// sliceMetrics holds the slice's resolved per-tile instruments. All fields
// are nil when metering is off; every method is nil-receiver safe, so the
// hot paths below record unconditionally.
type sliceMetrics struct {
	allocs, deallocs     *metrics.Counter
	standbys, reclaims   *metrics.Counter
	omuSteers, capSteers *metrics.Counter
	falseSteers          *metrics.Counter
	silentLocks, aborts  *metrics.Counter
	grants, revokes      *metrics.Counter
}

// SetTracer attaches a protocol-event recorder (nil detaches).
func (s *Slice) SetTracer(b *trace.Buffer) { s.tracer = b }

// SetFlight attaches the machine's always-on flight recorder (nil detaches).
// Unlike the tracer — opt-in, unbounded, rich — the flight ring is fixed-size
// and allocation-free, so it stays attached on every run and its tail is
// dumped into liveness/safety/panic errors.
func (s *Slice) SetFlight(f *obs.FlightRecorder) { s.flight = f }

// SetInjector attaches the fault injector (nil detaches).
func (s *Slice) SetInjector(i *fault.Injector) { s.inj = i }

// SetChecker attaches the safety-invariant checker (nil detaches).
func (s *Slice) SetChecker(c *fault.Checker) { s.check = c }

// SetRespPool makes outgoing responses come from p (the machine recycles
// each response after the destination core handles it).
func (s *Slice) SetRespPool(p *RespPool) { s.respPool = p }

// SetMetrics resolves this slice's per-tile instruments from reg (nil
// detaches and returns the slice to the zero-cost path).
func (s *Slice) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		s.met = sliceMetrics{}
		s.swActive = nil
		return
	}
	n := func(metric string) string { return metrics.TileName("msa", s.tile, metric) }
	s.met = sliceMetrics{
		allocs:      reg.Counter(n("entry_allocs")),
		deallocs:    reg.Counter(n("entry_deallocs")),
		standbys:    reg.Counter(n("entry_standbys")),
		reclaims:    reg.Counter(n("entry_reclaims")),
		omuSteers:   reg.Counter(n("omu_steers")),
		capSteers:   reg.Counter(n("capacity_steers")),
		falseSteers: reg.Counter(n("omu_false_steers")),
		silentLocks: reg.Counter(n("silent_locks")),
		aborts:      reg.Counter(n("aborts")),
		grants:      reg.Counter(n("grants")),
		revokes:     reg.Counter(n("revokes")),
	}
	s.swActive = make(map[memory.Addr]int)
}

// fl records one flight-ring event. The guard keeps detached slices (unit
// tests building a bare Slice) at one comparison; attached recording is a
// single ring-slot store (obs.FlightRecorder.Record), no allocations.
func (s *Slice) fl(kind obs.FlightKind, addr memory.Addr, core int, arg uint32) {
	if s.flight == nil {
		return
	}
	s.flight.Record(obs.FlightEvent{
		At: s.engine.Now(), Kind: kind, Tile: int16(s.tile),
		Core: int16(core), Addr: addr, Arg: arg,
	})
}

// trace records a protocol event when tracing is attached.
func (s *Slice) trace(kind trace.Kind, addr memory.Addr, core int, detail string) {
	if s.tracer == nil {
		return
	}
	s.tracer.Record(trace.Event{
		At: s.engine.Now(), Tile: s.tile, Kind: kind,
		Addr: addr, Core: core, Detail: detail,
	})
}

// NewSlice builds the MSA slice for one tile. dir is the co-located
// directory used for HWSync block grants and revocations.
func NewSlice(tile, tiles int, cfg Config, engine *sim.Engine, dir *coherence.Directory,
	sendResp func(core int, r *Resp), sendMsa func(tile int, m *MsaMsg)) *Slice {
	var omu overflowTracker = NewOMU(cfg.OMUCounters)
	if cfg.OMUBloom {
		omu = NewBloomOMU(cfg.OMUCounters, cfg.OMUHashes)
	}
	s := &Slice{
		tile: tile, tiles: tiles, cfg: cfg, engine: engine, dir: dir,
		sendResp: sendResp, sendMsa: sendMsa,
		omu: omu,
	}
	n := cfg.Entries
	if n < 0 {
		n = 0 // grown on demand
	}
	s.entries = make([]*entry, 0, n)
	for i := 0; i < n; i++ {
		s.entries = append(s.entries, newEntry(tiles))
	}
	return s
}

// Stats returns a snapshot of this slice's counters.
func (s *Slice) Stats() Stats { return s.stats }

// OMUStats exposes the slice's OMU for inspection.
func (s *Slice) OMUStats() OMUStats { return s.omu.Stats() }

// LiveEntries reports how many entries are currently valid.
func (s *Slice) LiveEntries() int {
	n := 0
	for _, e := range s.entries {
		if e.valid {
			n++
		}
	}
	return n
}

func (s *Slice) find(typ isa.SyncType, addr memory.Addr) *entry {
	for _, e := range s.entries {
		if e.valid && !e.empty && e.typ == typ && e.addr == addr {
			s.tick++
			e.lastUse = s.tick
			return e
		}
	}
	return nil
}

func (s *Slice) supports(typ isa.SyncType) bool {
	switch typ {
	case isa.TypeLock:
		return s.cfg.Locks
	case isa.TypeBarrier:
		return s.cfg.Barriers
	case isa.TypeCond:
		return s.cfg.Conds
	}
	return false
}

// tryAllocate returns a fresh entry for addr, or nil when the request must
// be served in software (unsupported type, live OMU counter, or no capacity).
// The caller is responsible for the OMU increment on the nil path.
func (s *Slice) tryAllocate(typ isa.SyncType, addr memory.Addr) *entry {
	if !s.supports(typ) {
		return nil
	}
	if s.cfg.OMUEnabled && !s.cfg.UnsafeNoOMUCheck && s.omu.ActiveSW(addr) {
		s.stats.OMUSteers++
		s.met.omuSteers.Inc()
		s.fl(obs.FSteer, addr, -1, uint32(typ))
		if s.swActive != nil && s.swActive[addr] == 0 {
			s.met.falseSteers.Inc()
		}
		return nil
	}
	// Fault site: steer an otherwise-allocatable acquire as if the OMU had
	// vetoed it. Only meaningful with the OMU: the caller's counter
	// increment then keeps the worlds separated, exactly like a real steer.
	if s.cfg.OMUEnabled && s.inj.ForceSteer() {
		s.stats.OMUSteers++
		s.met.omuSteers.Inc()
		s.fl(obs.FSteer, addr, -1, uint32(typ))
		s.trace(trace.Steer, addr, -1, "forced steer (fault)")
		return nil
	}
	e := s.boundEntry(typ, addr)
	if e == nil {
		e = s.freeEntry()
	}
	// Fault site: artificial capacity reduction — refuse a free entry as if
	// the slice were smaller than configured.
	if e != nil && s.cfg.OMUEnabled && s.inj.ForceCapacitySteer() {
		e = nil
	}
	if e == nil {
		s.stats.CapacitySteers++
		s.met.capSteers.Inc()
		s.fl(obs.FCapSteer, addr, -1, uint32(typ))
		// Kick off a background reclaim of a standby entry (revoke its
		// HWSync block, then free it) so a future request finds room.
		s.startReclaim(nil)
		return nil
	}
	s.stats.Allocs++
	s.met.allocs.Inc()
	s.tick++
	e.waiters.Clear()
	*e = entry{valid: true, typ: typ, addr: addr, owner: -1, standbyCore: -1, pinCore: -1,
		lastUse: s.tick, waiters: e.waiters}
	s.fl(obs.FAlloc, addr, -1, uint32(typ))
	s.trace(trace.EntryAlloc, addr, -1, typ.String())
	// Invariant: no thread may be active in the software path of addr while
	// an MSA entry goes live for it (OMU exclusivity, PAPER.md §3.2).
	s.check.HWAlloc(addr)
	return e
}

// boundEntry returns the empty slot permanently bound to (typ, addr) in
// without-OMU mode, if any.
func (s *Slice) boundEntry(typ isa.SyncType, addr memory.Addr) *entry {
	if s.cfg.OMUEnabled {
		return nil
	}
	for _, e := range s.entries {
		if e.valid && e.empty && e.typ == typ && e.addr == addr {
			return e
		}
	}
	return nil
}

// freeEntry finds an invalid entry, reclaims a lapsed standby entry, or
// grows the table in the unbounded (MSA-inf) configuration.
func (s *Slice) freeEntry() *entry {
	for _, e := range s.entries {
		if !e.valid {
			return e
		}
	}
	if s.cfg.Entries < 0 {
		e := newEntry(s.tiles)
		s.entries = append(s.entries, e)
		return e
	}
	if !s.cfg.OMUEnabled {
		return nil // entries are permanent without the OMU
	}
	// A standby lock entry whose holder's line is no longer writable can
	// never be silently re-acquired again, so it is safe to reclaim.
	for _, e := range s.entries {
		if e.valid && e.typ == isa.TypeLock && e.standby && !e.revoking &&
			!e.draining && e.grantsOut == 0 && e.pins == 0 && e.waiters.Empty() &&
			!s.dir.IsExclusiveAt(memory.LineOf(e.addr), e.standbyCore) {
			s.stats.Reclaims++
			s.stats.Deallocs++
			s.met.reclaims.Inc()
			s.met.deallocs.Inc()
			s.fl(obs.FFree, e.addr, e.standbyCore, uint32(e.typ))
			e.valid = false
			return e
		}
	}
	return nil
}

// hasFreeSlot reports whether an invalid entry is available (unbounded
// slices always have room).
func (s *Slice) hasFreeSlot() bool {
	if s.cfg.Entries < 0 {
		return true
	}
	for _, e := range s.entries {
		if !e.valid {
			return true
		}
	}
	return false
}

func (s *Slice) dealloc(e *entry) {
	if !s.cfg.OMUEnabled {
		// Without the OMU entries are permanent: the slot stays bound to
		// its address forever (paper Fig. 7 "without OMU" baseline) but
		// becomes inactive, so the next acquire re-allocates it and runs
		// the full allocation protocol (e.g. the cond-var pin handshake).
		e.waiters.Clear()
		*e = entry{valid: true, empty: true, typ: e.typ, addr: e.addr,
			owner: -1, standbyCore: -1, pinCore: -1, waiters: e.waiters}
		return
	}
	s.stats.Deallocs++
	s.met.deallocs.Inc()
	s.fl(obs.FFree, e.addr, -1, uint32(e.typ))
	s.trace(trace.EntryFree, e.addr, -1, e.typ.String())
	e.valid = false
}

func (s *Slice) respond(core int, op isa.SyncOp, addr memory.Addr, res isa.Result, reason AbortReason) {
	if res == isa.Abort {
		s.stats.Aborts++
		s.met.aborts.Inc()
		s.trace(trace.Abort, addr, core, op.String())
	}
	if s.tracer != nil { // guard: the detail concat allocates
		s.trace(trace.SyncResp, addr, core, op.String()+" "+res.String())
	}
	s.fl(obs.FMsaResp, addr, core, uint32(op)<<8|uint32(res))
	s.send(core, s.respPool.Get(Resp{Op: op, Addr: addr, Core: core, Result: res, Reason: reason}))
}

// delayedResp carries a held-back acknowledgment (fault path only; the
// allocation happens only when a fault actually fires).
type delayedResp struct {
	s    *Slice
	core int
	r    *Resp
}

func sliceSendDelayed(arg any) {
	d := arg.(*delayedResp)
	d.s.sendResp(d.core, d.r)
}

// send delivers one acknowledgment to a core, optionally held back by the
// fault injector. All slice-to-core responses funnel through here so the
// ack-delay site covers grants, aborts, and ClearHWSync handoffs alike.
func (s *Slice) send(core int, r *Resp) {
	if d := s.inj.AckDelay(); d > 0 {
		s.engine.AfterCall(d, sliceSendDelayed, &delayedResp{s: s, core: core, r: r})
		return
	}
	s.sendResp(core, r)
}

func (s *Slice) omuInc(addr memory.Addr) {
	if s.cfg.OMUEnabled {
		s.omu.Inc(addr)
		s.check.SWEnter(addr)
		if s.swActive != nil {
			s.swActive[addr]++
		}
	}
}

func (s *Slice) omuAdd(addr memory.Addr, n int) {
	for i := 0; i < n; i++ {
		s.omuInc(addr)
	}
}

func (s *Slice) omuDec(addr memory.Addr) {
	if s.cfg.OMUEnabled {
		s.omu.Dec(addr)
		s.check.SWExit(addr)
		if s.swActive != nil {
			if s.swActive[addr] <= 1 {
				delete(s.swActive, addr)
			} else {
				s.swActive[addr]--
			}
		}
	}
}

// HandleReq processes a synchronization request arriving from a core.
func (s *Slice) HandleReq(r *Req) {
	if memory.HomeOf(r.Addr, s.tiles) != s.tile {
		panic(fmt.Sprintf("core: tile %d is not home of sync addr %#x", s.tile, r.Addr))
	}
	s.lastReq = s.engine.Now()
	s.fl(obs.FMsaReq, r.Addr, r.Core, uint32(r.Op))
	s.trace(trace.SyncReq, r.Addr, r.Core, r.Op.String())
	// Fault site: spurious un-steer — run a standby-reclaim sweep with no
	// capacity pressure, revoking a silent holder's re-acquire privilege.
	if s.inj.ForceEvict() {
		s.startReclaim(nil)
	}
	switch r.Op {
	case isa.OpLock:
		s.handleLock(r)
	case isa.OpUnlock:
		s.handleUnlock(r)
	case isa.OpBarrier:
		s.handleBarrier(r)
	case isa.OpCondWait:
		s.handleCondWait(r)
	case isa.OpCondSignal:
		s.handleCondSignal(r, false)
	case isa.OpCondBcast:
		s.handleCondSignal(r, true)
	case isa.OpFinish:
		s.omuDec(r.Addr)
	case isa.OpSuspend:
		s.handleSuspend(r)
	case isa.OpLockSilent:
		s.handleLockSilent(r)
	default:
		panic(fmt.Sprintf("core: unknown sync op %v", r.Op))
	}
}

// --- Locks (§4.1) ---

func (s *Slice) handleLock(r *Req) {
	e := s.find(isa.TypeLock, r.Addr)
	if e == nil {
		e = s.tryAllocate(isa.TypeLock, r.Addr)
		if e == nil {
			s.stats.LockSW++
			s.omuInc(r.Addr)
			s.trace(trace.Steer, r.Addr, r.Core, "lock to software")
			s.respond(r.Core, isa.OpLock, r.Addr, isa.Fail, ReasonNone)
			return
		}
	}
	if e.draining {
		// Entry tear-down in progress (post-abort): steer to software; the
		// OMU keeps the worlds separate.
		s.stats.LockSW++
		s.omuInc(r.Addr)
		s.respond(r.Core, isa.OpLock, r.Addr, isa.Fail, ReasonNone)
		return
	}
	s.stats.LockHW++
	s.enqueueLocker(e, r.Core, isa.OpLock, r.Addr)
}

// enqueueLocker adds core to the lock entry's queue and grants immediately
// when possible. respOp/respAddr identify the instruction the eventual
// grant completes (LOCK on the lock, or COND_WAIT on a condition variable).
func (s *Slice) enqueueLocker(e *entry, core int, respOp isa.SyncOp, respAddr memory.Addr) {
	if e.owner == core {
		panic(fmt.Sprintf("core: core %d re-locking %#x while owning it", core, e.addr))
	}
	if respOp == isa.OpCondWait {
		if e.behalf == nil {
			e.behalf = make(map[int]memory.Addr)
		}
		e.behalf[core] = respAddr
	}
	e.waiters.Add(core)
	if e.owner == -1 && !e.revoking {
		if s.cfg.HWSyncOpt && e.standby && e.standbyCore != core {
			// A silent holder may exist: revoke its block before granting.
			// Any LOCK_SILENT it sent is point-to-point ordered before its
			// InvAck, so it will be observed before the revocation
			// completes.
			e.revoking = true
			s.stats.Revokes++
			s.met.revokes.Inc()
			s.fl(obs.FRevoke, e.addr, e.standbyCore, 0)
			s.trace(trace.Revoke, e.addr, e.standbyCore, "revoke before grant")
			s.dir.Revoke(memory.LineOf(e.addr), func() { s.afterRevoke(e) })
			return
		}
		e.standby = false
		s.promote(e)
	}
	// Otherwise the reply is held: the core stalls until promoted (§4.1).
}

func (s *Slice) afterRevoke(e *entry) {
	e.revoking = false
	e.standby = false
	if e.draining {
		s.finishDrain(e)
		return
	}
	if e.reclaiming {
		e.reclaiming = false
		if e.owner == -1 && e.waiters.Empty() && e.pins == 0 {
			// No one slipped in during the revocation: free the slot.
			s.stats.Reclaims++
			s.met.reclaims.Inc()
			s.dealloc(e)
			return
		}
		// The standby holder silently re-acquired, or waiters arrived:
		// the entry stays live and the reclaim is abandoned.
	}
	s.promote(e)
}

// startReclaim picks the least-recently-used idle standby lock entry
// (skipping `except`, typically the entry that just entered standby) and
// revokes its HWSync block in the background; once no silent re-acquire is
// possible the entry is freed. Requests hitting the entry meanwhile are
// queued normally, which simply cancels the reclaim.
func (s *Slice) startReclaim(except *entry) {
	if !s.cfg.OMUEnabled || !s.cfg.HWSyncOpt {
		return
	}
	var victim *entry
	for _, e := range s.entries {
		if e == except {
			continue
		}
		if e.valid && e.typ == isa.TypeLock && e.standby && !e.revoking &&
			!e.reclaiming && !e.draining && e.grantsOut == 0 && e.pins == 0 &&
			e.owner == -1 && e.waiters.Empty() {
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
	}
	if victim == nil {
		return
	}
	victim.revoking = true
	victim.reclaiming = true
	s.stats.Revokes++
	s.met.revokes.Inc()
	s.fl(obs.FReclaim, victim.addr, victim.standbyCore, uint32(victim.typ))
	s.trace(trace.EntryRecl, victim.addr, victim.standbyCore, "reclaim start")
	s.dir.Revoke(memory.LineOf(victim.addr), func() { s.afterRevoke(victim) })
}

// pickWaiter selects the next core to grant: round-robin from the slice's
// NBTC register (§4.1 fairness), or lowest-first under FixedPriority.
func (s *Slice) pickWaiter(waiters bitset.Set) int {
	if s.cfg.FixedPriority {
		if c := waiters.Next(0); c >= 0 {
			return c
		}
		panic("core: pickWaiter on empty set")
	}
	c := waiters.Next(s.nbtc)
	if c < 0 {
		c = waiters.Next(0)
	}
	if c < 0 {
		panic("core: pickWaiter on empty set")
	}
	s.nbtc = (c + 1) % s.tiles
	return c
}

// promote grants the lock to the next waiter, chosen round-robin starting at
// the slice's NBTC register (§4.1 fairness).
func (s *Slice) promote(e *entry) {
	if e.owner != -1 || e.revoking || e.draining || e.waiters.Empty() {
		return
	}
	next := s.pickWaiter(e.waiters)
	e.waiters.Remove(next)
	e.owner = next
	s.check.LockAcquired(e.addr, next, fault.WorldHW)
	respOp, respAddr := isa.OpLock, e.addr
	if a, ok := e.behalf[next]; ok {
		respOp, respAddr = isa.OpCondWait, a
		delete(e.behalf, next)
	}
	s.respond(next, respOp, respAddr, isa.Success, ReasonNone)
	if s.cfg.HWSyncOpt {
		// Ship the lock's line in Exclusive state with the HWSync bit (§5).
		e.standbyCore = next
		e.grantsOut++
		s.stats.Grants++
		s.met.grants.Inc()
		s.fl(obs.FGrant, e.addr, next, 0)
		s.trace(trace.Grant, e.addr, next, "block grant")
		s.dir.GrantExclusive(memory.LineOf(e.addr), next, func() {
			e.grantsOut--
			if e.draining && e.grantsOut == 0 && !e.revoking {
				s.finishDrain(e)
			}
		})
	}
}

func (s *Slice) handleUnlock(r *Req) {
	e := s.find(isa.TypeLock, r.Addr)
	if e == nil || e.draining {
		// Default-to-software (§3.1): the lock is software-managed.
		s.stats.UnlockSW++
		// This FAIL is the protocol's software release point (the OMU
		// decrement below ends the software episode), so register the
		// release here rather than thread-side: a subsequent hardware grant
		// can be processed at this slice before the FAIL response reaches
		// the unlocking thread.
		s.check.LockReleased(r.Addr, fault.WorldSW)
		s.omuDec(r.Addr)
		s.respond(r.Core, isa.OpUnlock, r.Addr, isa.Fail, ReasonNone)
		return
	}
	s.stats.UnlockHW++
	if e.owner == r.Core {
		e.owner = -1
		s.check.LockReleased(r.Addr, fault.WorldHW)
		handoff := !e.waiters.Empty()
		// On a handoff the unlocker must drop its HWSync bit: the lock is
		// about to belong to someone else, so a silent re-acquire from the
		// stale bit would break mutual exclusion.
		s.send(r.Core, s.respPool.Get(Resp{Op: isa.OpUnlock, Addr: r.Addr, Core: r.Core,
			Result: isa.Success, ClearHWSync: handoff}))
		if handoff {
			s.promote(e)
		} else {
			s.maybeRetire(e)
		}
		return
	}
	// UNLOCK from a core whose HWQueue bit is not set: the owning thread
	// migrated (§4.1.2). Reply SUCCESS to the unlocker, ABORT every waiter
	// to the software path, charge the OMU for each, and tear down.
	s.check.LockReleased(r.Addr, fault.WorldHW)
	s.send(r.Core, s.respPool.Get(Resp{Op: isa.OpUnlock, Addr: r.Addr, Core: r.Core,
		Result: isa.Success, ClearHWSync: true}))
	s.abortLockEntry(e)
}

// abortLockEntry aborts all waiters of a lock entry to software and tears
// the entry down (migrated-owner unlock, §4.1.2).
func (s *Slice) abortLockEntry(e *entry) {
	if !s.cfg.OMUEnabled {
		panic("core: lock abort requires the OMU (no safe software fallback without it)")
	}
	for c := 0; c < s.tiles; c++ {
		if !e.waiters.Has(c) {
			continue
		}
		if condAddr, ok := e.behalf[c]; ok {
			// A cond waiter re-acquiring the lock: its fallback re-locks in
			// software and then FINISHes the cond var, so pre-charge the
			// cond's OMU counter at the cond's home.
			s.sendMsa(memory.HomeOf(condAddr, s.tiles), &MsaMsg{
				Kind: kindOmuAdjust, Cond: condAddr,
			})
			s.respond(c, isa.OpCondWait, condAddr, isa.Abort, ReasonFallback)
			delete(e.behalf, c)
			continue
		}
		s.omuInc(e.addr)
		s.respond(c, isa.OpLock, e.addr, isa.Abort, ReasonFallback)
	}
	e.waiters.Clear()
	e.owner = -1
	e.draining = true
	if e.grantsOut == 0 && !e.revoking {
		s.finishDrain(e)
	}
}

// finishDrain revokes any lingering HWSync block and deallocates.
func (s *Slice) finishDrain(e *entry) {
	if s.cfg.HWSyncOpt && e.standbyCore >= 0 {
		s.dir.Revoke(memory.LineOf(e.addr), func() { s.dealloc(e) })
		return
	}
	s.dealloc(e)
}

// maybeRetire handles a lock entry whose queue just emptied: keep it in
// standby while the holder's HWSync block remains usable, otherwise free it.
func (s *Slice) maybeRetire(e *entry) {
	if e.pins > 0 {
		return // pinned by a condition variable (§4.3.1)
	}
	if s.cfg.HWSyncOpt && e.standbyCore >= 0 &&
		(e.grantsOut > 0 || s.dir.IsExclusiveAt(memory.LineOf(e.addr), e.standbyCore)) {
		// The holder may silently re-acquire: stay in standby (a later
		// grant to anyone else revokes the block first). If standby entries
		// have exhausted the slice, proactively free the coldest one so
		// the next allocation does not have to fall back to software.
		e.standby = true
		s.met.standbys.Inc()
		s.fl(obs.FStandby, e.addr, e.standbyCore, uint32(e.typ))
		s.trace(trace.EntryStand, e.addr, e.standbyCore, "standby")
		if s.cfg.OMUEnabled && !s.hasFreeSlot() {
			s.startReclaim(e)
		}
		return
	}
	if !s.cfg.OMUEnabled {
		return // permanent binding without the OMU
	}
	s.dealloc(e)
}

func (s *Slice) handleLockSilent(r *Req) {
	e := s.find(isa.TypeLock, r.Addr)
	if e == nil {
		panic(fmt.Sprintf("core: LOCK_SILENT for %#x with no entry (invariant violation)", r.Addr))
	}
	if e.owner != -1 || e.draining {
		panic(fmt.Sprintf("core: LOCK_SILENT for %#x from core %d in invalid state (owner=%d draining=%v standby=%v revoking=%v reclaiming=%v standbyCore=%d grantsOut=%d waiters=%v)",
			r.Addr, r.Core, e.owner, e.draining, e.standby, e.revoking, e.reclaiming, e.standbyCore, e.grantsOut, e.waiters))
	}
	s.stats.SilentLocks++
	s.met.silentLocks.Inc()
	s.fl(obs.FSilent, r.Addr, r.Core, 0)
	s.trace(trace.Silent, r.Addr, r.Core, "silent acquire")
	e.owner = r.Core
	e.standby = false
	// No response: the core already completed its LOCK locally (§5), and it
	// registered the acquisition with the invariant checker at that point —
	// no second registration here.
}

// --- Barriers (§4.2) ---

func (s *Slice) handleBarrier(r *Req) {
	e := s.find(isa.TypeBarrier, r.Addr)
	if e == nil {
		e = s.tryAllocate(isa.TypeBarrier, r.Addr)
		if e == nil {
			s.stats.BarrierSW++
			s.omuInc(r.Addr)
			s.respond(r.Core, isa.OpBarrier, r.Addr, isa.Fail, ReasonNone)
			return
		}
		e.goal = r.Goal
	}
	if e.goal == 0 {
		e.goal = r.Goal // permanent entry reused (without-OMU mode)
	}
	if e.goal != r.Goal {
		panic(fmt.Sprintf("core: barrier %#x goal mismatch %d vs %d", r.Addr, e.goal, r.Goal))
	}
	s.stats.BarrierHW++
	e.waiters.Add(r.Core)
	s.check.BarrierArrive(r.Addr, r.Core, e.goal, fault.WorldHW)
	if e.waiters.Count() == e.goal {
		// All arrived: release everyone (direct notification).
		s.check.BarrierRelease(r.Addr)
		e.waiters.ForEach(func(c int) {
			s.respond(c, isa.OpBarrier, r.Addr, isa.Success, ReasonNone)
		})
		e.waiters.Clear()
		e.goal = 0
		s.dealloc(e)
	}
}

// --- Suspension (§4.1.2, §4.2.2, §4.3.2) ---

func (s *Slice) handleSuspend(r *Req) {
	// The request addresses whichever entry the address resolves to; the
	// core sends it only while a LOCK/BARRIER/COND_WAIT is outstanding.
	if e := s.find(isa.TypeLock, r.Addr); e != nil && e.waiters.Has(r.Core) {
		// Dequeue the lock waiter; the core re-executes LOCK on resume.
		e.waiters.Remove(r.Core)
		s.respond(r.Core, isa.OpLock, r.Addr, isa.Abort, ReasonRequeue)
		return
	}
	if e := s.find(isa.TypeBarrier, r.Addr); e != nil && e.waiters.Has(r.Core) {
		// Force the whole barrier to software (§4.2.2).
		if !s.cfg.OMUEnabled {
			panic("core: barrier abort requires the OMU")
		}
		e.waiters.ForEach(func(c int) {
			s.omuInc(e.addr)
			s.respond(c, isa.OpBarrier, e.addr, isa.Abort, ReasonFallback)
		})
		s.check.BarrierAbort(e.addr)
		e.waiters.Clear()
		e.goal = 0
		s.dealloc(e)
		return
	}
	if e := s.find(isa.TypeCond, r.Addr); e != nil && e.waiters.Has(r.Core) {
		s.suspendCondWaiter(e, r.Core)
		return
	}
	// Not queued here (already granted, or waiting for the lock at another
	// home): tell the core to keep waiting for the original response.
	s.respond(r.Core, isa.OpSuspend, r.Addr, isa.Fail, ReasonNone)
}

// --- Watchdog introspection ---

// EntrySnapshot is a read-only copy of one live MSA entry, consumed by the
// machine's liveness watchdog when building a deadlock diagnosis.
type EntrySnapshot struct {
	Typ      isa.SyncType
	Addr     memory.Addr
	Owner    int        // locks: owning core, -1 free
	Waiters  bitset.Set // one bit per waiting core (barriers: arrived cores)
	Goal     int        // barriers: participant count
	Pins     int        // locks: condition variables pinning the entry
	Standby  bool
	Draining bool
	Revoking bool
	LockAddr memory.Addr // conds: associated lock
}

// Snapshot returns the live (valid, non-empty) entries of this slice.
func (s *Slice) Snapshot() []EntrySnapshot {
	var out []EntrySnapshot
	for _, e := range s.entries {
		if !e.valid || e.empty {
			continue
		}
		out = append(out, EntrySnapshot{
			Typ: e.typ, Addr: e.addr, Owner: e.owner, Waiters: e.waiters.Clone(),
			Goal: e.goal, Pins: e.pins, Standby: e.standby,
			Draining: e.draining, Revoking: e.revoking, LockAddr: e.lockAddr,
		})
	}
	return out
}

// LastReq returns the cycle at which this slice handled its most recent
// request (0 if it never saw one). The watchdog reports it as the tile's
// last-event timestamp.
func (s *Slice) LastReq() sim.Time { return s.lastReq }
