package core

import (
	"testing"
	"testing/quick"

	"misar/internal/isa"
	"misar/internal/memory"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloomOMU(8, 2)
	addrs := []memory.Addr{0x1000, 0x2040, 0x3080, 0x40c0, 0x5100}
	for _, a := range addrs {
		b.Inc(a)
	}
	for _, a := range addrs {
		if !b.Active(a) {
			t.Fatalf("false negative for %#x", a)
		}
	}
	for _, a := range addrs {
		b.Dec(a)
	}
	for _, a := range addrs {
		if b.Active(a) {
			t.Fatalf("%#x still active after balanced dec", a)
		}
	}
}

func TestBloomUnderflowPanics(t *testing.T) {
	b := NewBloomOMU(8, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Dec(0x1000)
}

func TestBloomParamClamping(t *testing.T) {
	b := NewBloomOMU(0, 0)
	b.Inc(0x40)
	if !b.Active(0x40) {
		t.Fatal("degenerate filter broken")
	}
	// k > n must clamp rather than panic.
	b2 := NewBloomOMU(2, 10)
	b2.Inc(0x40)
	b2.Dec(0x40)
}

// The headline property the paper wants: for the same storage budget, the
// Bloom filter steers fewer innocent addresses to software than the plain
// counter array.
func TestBloomFewerFalsePositivesThanPlain(t *testing.T) {
	// Bloom filters pay off once the counter budget exceeds the live set by
	// enough for k>1 to cut false positives (the classic occupancy
	// trade-off); the paper suggests them for exactly that regime.
	const counters = 32
	plain := NewOMU(counters)
	bloom := NewBloomOMU(counters, 2)
	// Two addresses are genuinely software-active.
	hot := []memory.Addr{0x10000, 0x20040}
	for _, a := range hot {
		plain.Inc(a)
		bloom.Inc(a)
	}
	plainFP, bloomFP, probes := 0, 0, 0
	for j := 0; j < 200; j++ {
		a := memory.Addr(0x100000 + j*64)
		probes++
		if plain.ActiveSW(a) {
			plainFP++
		}
		if bloom.ActiveSW(a) {
			bloomFP++
		}
	}
	if bloomFP >= plainFP {
		t.Fatalf("bloom false positives (%d) not below plain (%d) over %d probes",
			bloomFP, plainFP, probes)
	}
}

// Property: Inc/Dec sequences keep ActiveSW a sound over-approximation —
// an address with outstanding Incs is always Active.
func TestPropertyBloomSoundness(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewBloomOMU(4, 2)
		outstanding := map[memory.Addr]int{}
		for _, op := range ops {
			a := memory.Addr(0x1000 + uint64(op%32)*64)
			if op&0x80 == 0 {
				b.Inc(a)
				outstanding[a]++
			} else if outstanding[a] > 0 {
				b.Dec(a)
				outstanding[a]--
			}
			for aa, n := range outstanding {
				if n > 0 && !b.Active(aa) {
					return false // false negative: correctness violation
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: the slice works identically with the Bloom OMU.
func TestSliceWithBloomOMU(t *testing.T) {
	cfg := noOpt()
	cfg.OMUBloom = true
	cfg.OMUHashes = 2
	r := newRig(4, cfg)
	r.send(0, 0, Req{Op: isa.OpLock, Addr: lockA})
	r.send(50, 1, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	r.send(r.engine.Now()+1, 0, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	if countSuccess(r.got[1], isa.OpLock) != 1 {
		t.Fatal("handoff failed under Bloom OMU")
	}
	// Overflow path: charge then drain, address becomes HW-eligible again.
	home := memory.HomeOf(lockA, 4)
	r.msa[home].omu.Inc(lockA)
	r.send(r.engine.Now()+1, 1, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	r.send(r.engine.Now()+1, 2, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	if got := r.last(t, 2); got.Result != isa.Fail {
		t.Fatalf("LOCK with live Bloom entry = %v, want FAIL", got.Result)
	}
	r.send(r.engine.Now()+1, 2, Req{Op: isa.OpUnlock, Addr: lockA})
	r.run(t)
	r.msa[home].omu.Dec(lockA) // balance the manual charge
	r.send(r.engine.Now()+1, 3, Req{Op: isa.OpLock, Addr: lockA})
	r.run(t)
	if got := r.last(t, 3); got.Result != isa.Success {
		t.Fatalf("LOCK after Bloom drain = %v, want SUCCESS", got.Result)
	}
}
