package core

import (
	"fmt"

	"misar/internal/memory"
)

// OMU is the Overflow Management Unit (§3.2): a small set of counters
// indexed — without tags — by the synchronization address. A counter records
// how many threads are currently "active" (waiting or lock-owning) in the
// *software* implementation of any address hashing to it. Acquire-type
// operations may allocate an MSA entry only when the counter is zero;
// otherwise they are steered to software to keep the hardware and software
// worlds from ever handling the same variable concurrently.
//
// Because the counters are untagged, distinct addresses may alias. Aliasing
// can cost performance (a variable is needlessly steered to software) but
// never correctness: a variable that already owns an MSA entry keeps using
// it regardless of the counters, because the MSA is checked first.
type OMU struct {
	counters []uint32
	stats    OMUStats
}

// OMUStats reports counter activity.
type OMUStats struct {
	Incs, Decs uint64
	MaxValue   uint32
}

// NewOMU builds an OMU with n counters (minimum 1).
func NewOMU(n int) *OMU {
	if n < 1 {
		n = 1
	}
	return &OMU{counters: make([]uint32, n)}
}

// index hashes a synchronization address onto a counter. Synchronization
// variables are line aligned and often allocated at regular strides, so a
// full-avalanche finalizer (murmur3) is used: every product bit depends on
// every address bit, keeping even a tiny counter array evenly loaded.
func (o *OMU) index(a memory.Addr) int {
	h := uint64(a) >> 6
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return int(h % uint64(len(o.counters)))
}

// Count returns the counter value for a.
func (o *OMU) Count(a memory.Addr) uint32 {
	return o.counters[o.index(a)]
}

// Inc records a thread entering the software implementation of a.
func (o *OMU) Inc(a memory.Addr) {
	i := o.index(a)
	o.counters[i]++
	o.stats.Incs++
	if o.counters[i] > o.stats.MaxValue {
		o.stats.MaxValue = o.counters[i]
	}
}

// Dec records a thread leaving the software implementation of a. Every Dec
// pairs with exactly one earlier Inc; going negative is a protocol bug and
// panics.
func (o *OMU) Dec(a memory.Addr) {
	i := o.index(a)
	if o.counters[i] == 0 {
		panic(fmt.Sprintf("core: OMU counter underflow for addr %#x", a))
	}
	o.counters[i]--
	o.stats.Decs++
}

// Level returns the exact counter value for a (same as Count).
func (o *OMU) Level(a memory.Addr) uint32 { return o.Count(a) }

// Stats returns a snapshot of the OMU statistics.
func (o *OMU) Stats() OMUStats { return o.stats }

// OMUIndex exposes the counter index an n-counter OMU uses for address a.
// Tests use it to construct aliasing address pairs (two distinct variables
// sharing one untagged counter) deterministically.
func OMUIndex(a memory.Addr, n int) int {
	if n < 1 {
		n = 1
	}
	o := OMU{counters: make([]uint32, n)}
	return o.index(a)
}
