// Package bitset provides the fixed-capacity core bit vectors the machine
// keeps per synchronization entry and per directory line. The paper's 16/64
// evaluation fits in one machine word; scaling the sharded kernel to 256 and
// 1024 tiles does not, so the HWQueue and sharer vectors hold a small word
// slice instead. Capacity is fixed at construction (one machine has one tile
// count) and every operation is allocation-free except New and Clone.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a fixed-capacity bit vector. The zero value is an empty set of
// capacity zero; build real sets with New so Add never grows the backing
// array (entries are recycled across a whole run and must not reallocate).
type Set []uint64

// New returns an empty set able to hold members in [0, n).
func New(n int) Set {
	return make(Set, (n+63)/64)
}

// Add inserts i. Adding past the construction capacity panics — in this
// machine that is always a tile index exceeding the configured tile count.
func (s Set) Add(i int) { s[i>>6] |= 1 << uint(i&63) }

// Remove deletes i if present.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is a member. Out-of-capacity (and negative) indices
// are reported absent, so callers may probe with sentinel cores like -1.
func (s Set) Has(i int) bool {
	if i < 0 || i>>6 >= len(s) {
		return false
	}
	return s[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of members.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes every member, keeping the capacity.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Clone returns an independent copy. Snapshot paths use it so published
// copies never alias the live vector the slice keeps mutating.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Next returns the smallest member >= from, or -1 if none. Scans by word,
// so sparse sets over many tiles cost O(words), not O(tiles).
func (s Set) Next(from int) int {
	if from < 0 {
		from = 0
	}
	for w := from >> 6; w < len(s); w++ {
		word := s[w]
		if w == from>>6 {
			word &^= (1 << uint(from&63)) - 1
		}
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// ForEach calls fn for every member in ascending order.
func (s Set) ForEach(fn func(int)) {
	for w, word := range s {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w<<6 + b)
			word &^= 1 << uint(b)
		}
	}
}

// String renders the members compactly for diagnostics: "{3,17,40}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
