package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(130) // three words, last partially used
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("fresh set not empty")
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Has(%d) false after Add", i)
		}
	}
	if s.Count() != 5 || s.Empty() {
		t.Fatalf("count = %d, want 5", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 4 {
		t.Fatal("Remove(64) did not stick")
	}
	s.Remove(64) // idempotent
	if s.Count() != 4 {
		t.Fatal("double Remove changed the count")
	}
	if s.Has(-1) || s.Has(1000) {
		t.Fatal("out-of-range Has must report absent")
	}
	if got := s.String(); got != "{0,63,127,129}" {
		t.Fatalf("String = %q", got)
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left members behind")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(100)
	s.Add(7)
	c := s.Clone()
	s.Add(70)
	if c.Has(70) {
		t.Fatal("clone aliases the original")
	}
	if !c.Has(7) {
		t.Fatal("clone lost a member")
	}
	if Set(nil).Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
}

func TestNext(t *testing.T) {
	s := New(256)
	for _, i := range []int{5, 64, 200} {
		s.Add(i)
	}
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 200}, {200, 200}, {201, -1}, {-3, 5},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if New(64).Next(0) != -1 {
		t.Error("Next on empty set should be -1")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(1024)
	want := []int{0, 1, 63, 64, 511, 512, 1023}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("visited %d members, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d: got %v", i, got)
		}
	}
}

// TestAgainstReference fuzzes the set against a map at the 1024-tile scale
// the sharded machine needs.
func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(1024)
	ref := map[int]bool{}
	for step := 0; step < 20000; step++ {
		i := rng.Intn(1024)
		if rng.Intn(2) == 0 {
			s.Add(i)
			ref[i] = true
		} else {
			s.Remove(i)
			delete(ref, i)
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("count %d, reference %d", s.Count(), len(ref))
	}
	for i := 0; i < 1024; i++ {
		if s.Has(i) != ref[i] {
			t.Fatalf("membership of %d diverged", i)
		}
	}
	n := 0
	s.ForEach(func(i int) {
		n++
		if !ref[i] {
			t.Fatalf("ForEach visited non-member %d", i)
		}
	})
	if n != len(ref) {
		t.Fatalf("ForEach visited %d, want %d", n, len(ref))
	}
}
