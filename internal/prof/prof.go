// Package prof wires runtime/pprof behind the -cpuprofile/-memprofile flags
// shared by the command-line tools. Importing the package registers the two
// flags on the default flag set; call Start right after flag.Parse and defer
// the returned stop function.
//
// The profiles are ordinary pprof files: inspect them with
//
//	go tool pprof -top misar-fig cpu.out
//	go tool pprof -top -sample_index=alloc_objects misar-fig mem.out
//
// EXPERIMENTS.md walks through a full profiling session over the figure
// pipeline.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuOut = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memOut = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// function ends the CPU profile and, when -memprofile was given, snapshots
// the heap after a forced GC; it must run before the process exits, so defer
// it immediately (note os.Exit skips defers — error paths lose the profile,
// which is fine for a measurement tool). Flag errors are fatal: asking for a
// profile and silently not getting one wastes the whole run.
func Start() (stop func()) {
	var cpuFile *os.File
	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *memOut != "" {
			f, err := os.Create(*memOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				os.Exit(1)
			}
			runtime.GC() // settle transient garbage so live objects dominate
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}
