package metrics

import (
	"strings"
	"testing"
)

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs_accepted").Inc()
	r.Counter("serve.jobs_accepted").Inc()
	r.Gauge("queue.depth").Observe(7)
	h := r.Histogram("http.latency_us.jobs-submit")
	h.Observe(100)
	h.Observe(300)

	var b strings.Builder
	if err := WriteText(&b, "misar", r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"misar_serve_jobs_accepted 2\n",
		"misar_queue_depth 7\n",
		"misar_http_latency_us_jobs_submit_count 2\n",
		"misar_http_latency_us_jobs_submit_sum 400\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second render of the same snapshot is byte-identical.
	var b2 strings.Builder
	WriteText(&b2, "misar", r.Snapshot())
	if b2.String() != out {
		t.Error("two renders of equal snapshots differ")
	}
	// Sorted.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Errorf("output not sorted: %q after %q", lines[i], lines[i-1])
		}
	}
}

func TestWriteTextNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := WriteText(&b, "misar", r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry rendered %q", b.String())
	}
}
