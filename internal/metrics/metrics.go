// Package metrics is the machine-wide observability layer: a dependency-light
// registry of typed instruments (Counter, max-tracking Gauge, and
// stats.Histogram-backed latency histograms) with hierarchical dot-separated
// names such as "msa.tile3.overflow_steers" or "noc.link_flits.east".
//
// The design mirrors trace.Buffer's zero-cost-when-disabled contract at the
// instrument level: components resolve their instruments once at attach time
// and record through plain pointers; every instrument method is safe on a nil
// receiver and compiles to a single predictable branch, so an unmetered
// machine pays no allocations and no measurable time on its hot paths.
//
// Sharding: instruments are resolved per tile (the name carries the tile,
// e.g. "msa.tile3.entry_allocs") and each simulated machine owns a private
// Registry, so the parallel experiment harness never contends — recording
// touches only the per-tile instrument structs of the machine being
// simulated, and the registry map itself is consulted only during resolution
// and snapshotting.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"misar/internal/stats"
)

// Counter is a monotonically increasing uint64 instrument. A nil Counter
// records nothing.
type Counter struct{ v uint64 }

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a max-tracking instrument: Observe keeps the largest value seen
// (occupancies, queue depths, watermark-style measurements). A nil Gauge
// records nothing.
type Gauge struct{ v uint64 }

// Observe records v, keeping the maximum. Safe on a nil receiver.
func (g *Gauge) Observe(v uint64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Value returns the largest observation (0 for nil).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v
}

// LevelGauge is a true level instrument: it tracks the *current* value of a
// quantity that rises and falls (queue depth, jobs in flight), where Gauge
// deliberately retains only the maximum. Keep both when a level matters
// operationally and its high-water mark matters for capacity planning: the
// convention is the level under the plain name and the watermark under
// "<name>.max". A nil LevelGauge records nothing. Like every instrument
// here it is not internally synchronized — writers serialize externally
// (the sim is single-threaded; the serving layer holds its metrics lock).
type LevelGauge struct{ v int64 }

// Set replaces the level. Safe on a nil receiver.
func (g *LevelGauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the level by delta (negative to decrease). Safe on a nil
// receiver.
func (g *LevelGauge) Add(delta int64) {
	if g != nil {
		g.v += delta
	}
}

// Value returns the current level (0 for nil).
func (g *LevelGauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a power-of-two bucketed latency histogram (see
// stats.Histogram for the bucket-edge semantics). A nil Histogram records
// nothing.
type Histogram struct{ h stats.Histogram }

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h != nil {
		h.h.Observe(v)
	}
}

// Merge accumulates a stats.Histogram into h. Safe on a nil receiver.
func (h *Histogram) Merge(o *stats.Histogram) {
	if h != nil {
		h.h.Merge(o)
	}
}

// Hist returns the underlying stats.Histogram (nil for a nil Histogram).
func (h *Histogram) Hist() *stats.Histogram {
	if h == nil {
		return nil
	}
	return &h.h
}

// Registry holds a machine's instruments by hierarchical name. The zero
// value is not usable; construct with NewRegistry. A nil *Registry is the
// disabled state: resolution returns nil instruments, which record nothing.
//
// Resolution (Counter/Gauge/Histogram) and Snapshot take an internal lock;
// recording through a resolved instrument is lock-free. Resolve once at
// component attach time, never on a hot path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	levels     map[string]*LevelGauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		levels:     make(map[string]*LevelGauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the max-gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Level returns the level gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Level(name string) *LevelGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.levels[name]
	if !ok {
		g = &LevelGauge{}
		r.levels[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Merge folds every instrument of o into r: counters and level gauges sum,
// max-gauges keep the larger observation, histograms accumulate buckets.
// Instruments that exist only in o are created in r. The sharded machine
// merges its per-shard registries in shard order after the run, so the
// result is deterministic. Safe when either registry is nil (no-op).
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil || r == o {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for name, c := range o.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range o.gauges {
		r.Gauge(name).Observe(g.Value())
	}
	for name, g := range o.levels {
		r.Level(name).Add(g.Value())
	}
	for name, h := range o.histograms {
		r.Histogram(name).Merge(&h.h)
	}
}

// Name joins hierarchical name parts with dots: Name("noc", "flits") ==
// "noc.flits".
func Name(parts ...string) string { return strings.Join(parts, ".") }

// TileName builds the conventional per-tile instrument name:
// TileName("msa", 3, "overflow_steers") == "msa.tile3.overflow_steers".
func TileName(component string, tile int, metric string) string {
	return fmt.Sprintf("%s.tile%d.%s", component, tile, metric)
}

// HistogramSnapshot is the exported summary of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
}

// SnapshotHistogram summarizes a stats.Histogram.
func SnapshotHistogram(h *stats.Histogram) HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
	}
}

// Snapshot is a point-in-time copy of every instrument's value, keyed by
// name. encoding/json emits map keys sorted, so a marshalled Snapshot is
// deterministic and diffable.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]uint64            `json:"gauges,omitempty"`
	Levels     map[string]int64             `json:"levels,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. A nil registry yields an
// empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]uint64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.levels) > 0 {
		s.Levels = make(map[string]int64, len(r.levels))
		for name, g := range r.levels {
			s.Levels[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = SnapshotHistogram(&h.h)
		}
	}
	return s
}

// Names returns every registered instrument name, sorted, prefixed by its
// kind ("counter:", "gauge:", "histogram:") — handy for debugging wiring.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.levels)+len(r.histograms))
	for n := range r.counters {
		out = append(out, "counter:"+n)
	}
	for n := range r.gauges {
		out = append(out, "gauge:"+n)
	}
	for n := range r.levels {
		out = append(out, "level:"+n)
	}
	for n := range r.histograms {
		out = append(out, "histogram:"+n)
	}
	sort.Strings(out)
	return out
}
