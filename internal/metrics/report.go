package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ReportSchema is the version stamp embedded in every JSON report. Bump it
// whenever a field is renamed, removed, or changes meaning; the golden test
// in report_golden_test.go pins the rendered form.
const ReportSchema = 1

// Report is the per-simulation observability artifact: identification of
// the run plus a full metrics snapshot. The harness attaches one to every
// metered simulation; cmd/misar-sim and cmd/misar-fig dump them as JSON.
//
// Marshalling is deterministic: fixed field order for the struct,
// lexicographically sorted keys for the instrument maps (encoding/json map
// behaviour), so two reports of the same simulation are byte-identical and
// reports diff cleanly across code changes.
type Report struct {
	Schema  int    `json:"schema"`
	Kind    string `json:"kind"` // "app" or "micro"
	App     string `json:"app"`
	Config  string `json:"config"`
	Lib     string `json:"lib,omitempty"`
	Tiles  int    `json:"tiles"`
	Cycles uint64 `json:"cycles"`
	// Metrics is marshalled by inlining its maps as top-level counters/
	// gauges/histograms keys (see MarshalJSON), not as a nested object.
	Metrics Snapshot `json:"-"`
}

// MarshalJSON inlines the snapshot maps under stable top-level keys.
func (r *Report) MarshalJSON() ([]byte, error) {
	type alias Report // break recursion
	return json.Marshal(&struct {
		*alias
		Counters   map[string]uint64            `json:"counters"`
		Gauges     map[string]uint64            `json:"gauges,omitempty"`
		Levels     map[string]int64             `json:"levels,omitempty"`
		Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	}{
		alias:      (*alias)(r),
		Counters:   r.Metrics.Counters,
		Gauges:     r.Metrics.Gauges,
		Levels:     r.Metrics.Levels,
		Histograms: r.Metrics.Histograms,
	})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (r *Report) UnmarshalJSON(b []byte) error {
	type alias Report
	aux := struct {
		*alias
		Counters   map[string]uint64            `json:"counters"`
		Gauges     map[string]uint64            `json:"gauges"`
		Levels     map[string]int64             `json:"levels"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}{alias: (*alias)(r)}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	r.Metrics = Snapshot{Counters: aux.Counters, Gauges: aux.Gauges, Levels: aux.Levels, Histograms: aux.Histograms}
	if r.Metrics.Counters == nil {
		r.Metrics.Counters = map[string]uint64{}
	}
	return nil
}

// WriteJSON writes the report as indented, newline-terminated JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: marshal report: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJSONFile writes the report to path (creating parent directories).
func (r *Report) WriteJSONFile(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer f.Close()
	if err := r.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// Filename derives a deterministic, filesystem-safe name for the report,
// e.g. "app_fluidanimate_MSA-OMU-2-8c_hw.json".
func (r *Report) Filename() string {
	return sanitize(fmt.Sprintf("%s_%s_%s_%s", r.Kind, r.App, r.Config, r.Lib)) + ".json"
}

// sanitize keeps [A-Za-z0-9._-], mapping runs of anything else to one '-'.
func sanitize(s string) string {
	var b strings.Builder
	pending := false
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			if pending && b.Len() > 0 {
				b.WriteByte('-')
			}
			pending = false
			b.WriteRune(c)
		default:
			pending = true
		}
	}
	return b.String()
}
