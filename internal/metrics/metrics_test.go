package metrics

import (
	"encoding/json"
	"testing"

	"misar/internal/stats"
)

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Observe(9)
	h.Observe(3)
	h.Merge(&stats.Histogram{})
	if c.Value() != 0 || g.Value() != 0 || h.Hist() != nil {
		t.Fatal("nil instruments recorded something")
	}
}

func TestNilRegistryResolvesNil(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned live instruments")
	}
	if r.Names() != nil {
		t.Fatal("nil registry has names")
	}
	s := r.Snapshot()
	if s.Counters == nil || len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot: %+v", s)
	}
}

// TestNilInstrumentsZeroAlloc is half of the issue's overhead acceptance
// criterion: the disabled path must not allocate. The time half is covered
// by BenchmarkFig5 metered-vs-unmetered in internal/harness.
func TestNilInstrumentsZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Observe(5)
		h.Observe(7)
	})
	if allocs != 0 {
		t.Fatalf("nil instruments allocated %.1f per op", allocs)
	}
}

func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("msa.tile0.entry_allocs")
	c1.Inc()
	c2 := r.Counter("msa.tile0.entry_allocs")
	if c1 != c2 {
		t.Fatal("same name resolved to different counters")
	}
	if c2.Value() != 1 {
		t.Fatalf("value = %d", c2.Value())
	}
	if r.Histogram("h") != r.Histogram("h") || r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge/histogram get-or-create not idempotent")
	}
}

func TestGaugeKeepsMax(t *testing.T) {
	g := NewRegistry().Gauge("omu.tile0.max_level")
	g.Observe(4)
	g.Observe(9)
	g.Observe(2)
	if g.Value() != 9 {
		t.Fatalf("gauge = %d, want 9", g.Value())
	}
}

func TestLevelGaugeTracksCurrentValue(t *testing.T) {
	r := NewRegistry()
	g := r.Level("serve.queue.depth")
	g.Add(3)
	g.Add(-2)
	if g.Value() != 1 {
		t.Fatalf("level = %d, want 1 (levels must go down, not keep max)", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("level = %d after Set, want 7", g.Value())
	}
	if got := r.Snapshot().Levels["serve.queue.depth"]; got != 7 {
		t.Fatalf("snapshot level = %d, want 7", got)
	}
	// Identity: re-resolution returns the same instrument.
	if r.Level("serve.queue.depth") != g {
		t.Fatal("Level did not memoize")
	}
	// Nil safety.
	var ng *LevelGauge
	ng.Set(5)
	ng.Add(1)
	if ng.Value() != 0 {
		t.Fatal("nil level gauge recorded")
	}
	var nr *Registry
	if nr.Level("x") != nil {
		t.Fatal("nil registry returned a live level gauge")
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c")
	r.Level("d")
	got := r.Names()
	want := []string{"counter:b", "gauge:a", "histogram:c", "level:d"}
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestTileName(t *testing.T) {
	if got := TileName("msa", 3, "overflow_steers"); got != "msa.tile3.overflow_steers" {
		t.Fatalf("TileName = %q", got)
	}
	if got := Name("noc", "flits"); got != "noc.flits" {
		t.Fatalf("Name = %q", got)
	}
}

// TestSnapshotMarshalDeterministic relies on encoding/json's sorted map
// keys: two snapshots of registries populated in different orders must
// marshal byte-identically.
func TestSnapshotMarshalDeterministic(t *testing.T) {
	build := func(names []string) []byte {
		r := NewRegistry()
		for i, n := range names {
			r.Counter(n).Add(uint64(i%3) + 1)
		}
		r.Gauge("g").Observe(5)
		r.Histogram("h").Observe(100)
		s := r.Snapshot()
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// Counters a=1 b=2 c=3 regardless of creation order.
	a := build([]string{"a", "b", "c"})
	r2 := NewRegistry()
	r2.Counter("c").Add(3)
	r2.Counter("a").Add(1)
	r2.Counter("b").Add(2)
	r2.Gauge("g").Observe(5)
	r2.Histogram("h").Observe(100)
	b, err := json.Marshal(r2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("snapshot marshal depends on insertion order:\n%s\n%s", a, b)
	}
}

func TestSnapshotHistogramPercentiles(t *testing.T) {
	var h stats.Histogram
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := SnapshotHistogram(&h)
	if s.Count != 100 || s.Sum != 5050 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.P50 == 0 || s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
}

// TestMergeFoldsEveryInstrumentKind: the sharded machine's post-run merge —
// counters and levels sum, max-gauges keep the larger value, histograms
// accumulate, and instruments unknown to the destination are created.
func TestMergeFoldsEveryInstrumentKind(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("shared").Add(10)
	dst.Gauge("peak").Observe(7)
	dst.Level("depth").Add(3)
	dst.Histogram("lat").Observe(4)

	src := NewRegistry()
	src.Counter("shared").Add(5)
	src.Counter("only_src").Add(2)
	src.Gauge("peak").Observe(9)
	src.Level("depth").Add(-1)
	src.Histogram("lat").Observe(16)

	dst.Merge(src)
	if v := dst.Counter("shared").Value(); v != 15 {
		t.Errorf("shared counter = %d, want 15", v)
	}
	if v := dst.Counter("only_src").Value(); v != 2 {
		t.Errorf("src-only counter = %d, want 2", v)
	}
	if v := dst.Gauge("peak").Value(); v != 9 {
		t.Errorf("peak gauge = %d, want 9", v)
	}
	if v := dst.Level("depth").Value(); v != 2 {
		t.Errorf("depth level = %d, want 2", v)
	}
	if c := dst.Histogram("lat").Hist().Count(); c != 2 {
		t.Errorf("histogram count = %d, want 2", c)
	}
	// src is untouched; nil/self merges are no-ops.
	if v := src.Counter("shared").Value(); v != 5 {
		t.Errorf("merge mutated source: %d", v)
	}
	dst.Merge(nil)
	(*Registry)(nil).Merge(src)
	dst.Merge(dst)
	if v := dst.Counter("shared").Value(); v != 15 {
		t.Errorf("no-op merges changed counter to %d", v)
	}
}

// TestMergeOrderInvariantTotals: merging per-shard registries in any order
// yields identical snapshots — the machine merges in shard order for
// determinism, but the totals themselves are order-free.
func TestMergeOrderInvariantTotals(t *testing.T) {
	mk := func(seed uint64) *Registry {
		r := NewRegistry()
		r.Counter("ops").Add(seed)
		r.Gauge("hwm").Observe(seed * 3 % 17)
		r.Histogram("lat").Observe(seed + 1)
		return r
	}
	ab := NewRegistry()
	ab.Merge(mk(1))
	ab.Merge(mk(2))
	ba := NewRegistry()
	ba.Merge(mk(2))
	ba.Merge(mk(1))
	a, _ := json.Marshal(ab.Snapshot())
	b, _ := json.Marshal(ba.Snapshot())
	if string(a) != string(b) {
		t.Fatalf("merge order changed totals:\n%s\n%s", a, b)
	}
}
