package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"misar/internal/stats"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

func sampleReport() *Report {
	r := NewRegistry()
	r.Counter("msa.lock_hw").Add(343)
	r.Counter("msa.lock_sw").Add(9)
	r.Counter("msa.omu_steers").Add(8)
	r.Counter("msa.tile0.entry_allocs").Add(12)
	r.Counter("noc.flits").Add(22927)
	r.Gauge("omu.tile0.max_level").Observe(8)
	r.Gauge("sim.cycles").Observe(235453)
	var h stats.Histogram
	for _, v := range []uint64{3, 11, 11, 25, 2375} {
		h.Observe(v)
	}
	r.Histogram("cpu.latency.lock").Merge(&h)
	return &Report{
		Schema:  ReportSchema,
		Kind:    "app",
		App:     "fluidanimate",
		Config:  "MSA/OMU-2 8c",
		Lib:     "hw+tts/central/mesa",
		Tiles:   8,
		Cycles:  235453,
		Metrics: r.Snapshot(),
	}
}

// TestReportGolden pins the JSON report schema byte-for-byte: field order,
// key sorting, indentation, and histogram summary fields. A diff here is a
// schema change — bump ReportSchema and refresh with
// `go test ./internal/metrics -run Golden -update-golden`.
func TestReportGolden(t *testing.T) {
	var got bytes.Buffer
	if err := sampleReport().WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("report differs from golden file.\ngot:\n%s\nwant:\n%s", got.String(), want)
	}
}

func TestReportRoundTrip(t *testing.T) {
	orig := sampleReport()
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != orig.Schema || back.App != orig.App || back.Cycles != orig.Cycles {
		t.Fatalf("identification lost: %+v", back)
	}
	if back.Metrics.Counters["msa.lock_hw"] != 343 {
		t.Fatalf("counters lost: %+v", back.Metrics.Counters)
	}
	if back.Metrics.Gauges["sim.cycles"] != 235453 {
		t.Fatalf("gauges lost: %+v", back.Metrics.Gauges)
	}
	if back.Metrics.Histograms["cpu.latency.lock"].Count != 5 {
		t.Fatalf("histograms lost: %+v", back.Metrics.Histograms)
	}
}

func TestReportNoNestedMetricsKey(t *testing.T) {
	b, err := json.Marshal(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["Metrics"]; ok {
		t.Fatal("snapshot leaked as a nested Metrics object; it must inline as counters/gauges/histograms")
	}
	for _, key := range []string{"counters", "gauges", "histograms", "schema"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("missing top-level %q key in %s", key, b)
		}
	}
}

func TestReportFilename(t *testing.T) {
	got := sampleReport().Filename()
	want := "app_fluidanimate_MSA-OMU-2-8c_hw-tts-central-mesa.json"
	if got != want {
		t.Fatalf("Filename = %q, want %q", got, want)
	}
}

func TestWriteJSONFileCreatesDirs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "deeper", "r.json")
	if err := sampleReport().WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("written file does not parse: %v", err)
	}
}
