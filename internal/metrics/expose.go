package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteText renders a Snapshot in the Prometheus text exposition format
// (one "name value" line per sample, gauge/counter distinction left to the
// scraper's recording rules — the simulator's instruments are all
// monotonic within a run). Metric names are mangled to the exposition
// grammar: every byte outside [a-zA-Z0-9_] becomes '_', and prefix is
// prepended ("misar" yields misar_serve_jobs_accepted). Histograms expand
// to _count/_sum/_max/_p50/_p95/_p99 samples. Output is sorted, so two
// snapshots with equal values render byte-identically.
func WriteText(w io.Writer, prefix string, s Snapshot) error {
	var lines []string
	add := func(name string, format string, v any) {
		lines = append(lines, fmt.Sprintf("%s %s", mangle(prefix, name), fmt.Sprintf(format, v)))
	}
	for name, v := range s.Counters {
		add(name, "%d", v)
	}
	for name, v := range s.Gauges {
		add(name, "%d", v)
	}
	for name, v := range s.Levels {
		add(name, "%d", v)
	}
	for name, h := range s.Histograms {
		add(name+"_count", "%d", h.Count)
		add(name+"_sum", "%d", h.Sum)
		add(name+"_max", "%d", h.Max)
		add(name+"_p50", "%d", h.P50)
		add(name+"_p95", "%d", h.P95)
		add(name+"_p99", "%d", h.P99)
	}
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := io.WriteString(w, ln+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// mangle rewrites a dotted instrument name into exposition-format grammar.
func mangle(prefix, name string) string {
	var b strings.Builder
	b.Grow(len(prefix) + 1 + len(name))
	b.WriteString(prefix)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
