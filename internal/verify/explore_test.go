package verify

import (
	"strings"
	"testing"
)

func TestValContainsAndString(t *testing.T) {
	cases := []struct {
		v    Val
		in   []int
		out  []int
		want string
	}{
		{N(3), []int{3}, []int{0, 2, 4, -1}, "3"},
		{Omega, []int{0, 1, 100}, []int{-1}, "ω"},
		{AtLeast(2), []int{2, 3, 99}, []int{0, 1, -5}, "ω≥2"},
	}
	for _, c := range cases {
		for _, n := range c.in {
			if !c.v.Contains(n) {
				t.Errorf("%v should contain %d", c.v, n)
			}
		}
		for _, n := range c.out {
			if c.v.Contains(n) {
				t.Errorf("%v should not contain %d", c.v, n)
			}
		}
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestAtomRefine(t *testing.T) {
	// EQ on an interval collapses to the exact value.
	got := Atom{Var: 0, Op: EQ, C: 0}.refine(Omega)
	if len(got) != 1 || got[0] != N(0) {
		t.Fatalf("EQ refine of ω = %v, want [0]", got)
	}
	// EQ below the interval's lower bound is unsatisfiable.
	if got := (Atom{Var: 0, Op: EQ, C: 1}).refine(AtLeast(2)); got != nil {
		t.Fatalf("EQ 1 refine of ω≥2 = %v, want nil", got)
	}
	// LE fans an interval out into its exact members.
	got = Atom{Var: 0, Op: LE, C: 2}.refine(AtLeast(1))
	if len(got) != 2 || got[0] != N(1) || got[1] != N(2) {
		t.Fatalf("LE 2 refine of ω≥1 = %v, want [1 2]", got)
	}
	// GE raises an interval's lower bound.
	got = Atom{Var: 0, Op: GE, C: 3}.refine(Omega)
	if len(got) != 1 || got[0] != AtLeast(3) {
		t.Fatalf("GE 3 refine of ω = %v, want [ω≥3]", got)
	}
	// Exact values pass through unchanged when they satisfy the atom.
	got = Atom{Var: 0, Op: GE, C: 1}.refine(N(2))
	if len(got) != 1 || got[0] != N(2) {
		t.Fatalf("GE 1 refine of 2 = %v, want [2]", got)
	}
	if got := (Atom{Var: 0, Op: GE, C: 3}).refine(N(2)); got != nil {
		t.Fatalf("GE 3 refine of 2 = %v, want nil", got)
	}
}

func TestExprEval(t *testing.T) {
	cfg := Config{N(2), Omega, N(0)}
	// 2 + ω - 1 is an interval with lower bound 1.
	v, ok := Expr{Coef: []int{1, 1, 0}, Const: -1}.eval(cfg, 3)
	if !ok || v != AtLeast(1) {
		t.Fatalf("eval = %v %v, want ω≥1", v, ok)
	}
	// An exact negative result blocks the rule.
	if _, ok := (Expr{Coef: []int{0, 0, 1}, Const: -1}).eval(cfg, 3); ok {
		t.Fatal("exact negative result should block")
	}
	// An interval dipping negative clamps to ω.
	v, ok = Expr{Coef: []int{0, 1, 0}, Const: -5}.eval(cfg, 3)
	if !ok || v != Omega {
		t.Fatalf("eval = %v %v, want ω", v, ok)
	}
}

func TestNormalizeSaturates(t *testing.T) {
	cfg := Config{N(9), AtLeast(7), N(3)}
	if !normalize(cfg, 5) {
		t.Fatal("normalize should report saturation")
	}
	if cfg[0] != AtLeast(5) || cfg[1] != AtLeast(5) || cfg[2] != N(3) {
		t.Fatalf("normalized = %v", cfg)
	}
	if normalize(cfg, 5) {
		t.Fatal("second normalize should be a no-op")
	}
}

// readerWriter is the snippet-style reader/writer counter system: readers
// and writers over an implicit ω pool of idle threads.
func readerWriter() *System {
	const r, w = 0, 1
	u := func(c int, vars ...int) Expr { return sum(2, c, vars...) }
	return &System{
		Name:  "reader-writer",
		Vars:  []string{"r", "w"},
		Inits: []Config{{N(0), N(0)}},
		Rules: []Rule{
			{Name: "start-read", Guard: []Atom{{w, EQ, 0}}, Update: []Expr{u(1, r), u(0, w)}},
			{Name: "end-read", Guard: []Atom{{r, GE, 1}}, Update: []Expr{u(-1, r), u(0, w)}},
			{Name: "start-write", Guard: []Atom{{w, EQ, 0}, {r, EQ, 0}}, Update: []Expr{u(0, r), u(1, w)}},
			{Name: "end-write", Guard: []Atom{{w, GE, 1}}, Update: []Expr{u(0, r), u(-1, w)}},
		},
		Unsafe: []Pred{
			{Name: "two-writers", Atoms: []Atom{{w, GE, 2}}},
			{Name: "reader-and-writer", Atoms: []Atom{{r, GE, 1}, {w, GE, 1}}},
		},
	}
}

func TestReaderWriterSafe(t *testing.T) {
	res, err := Explore(readerWriter())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safe {
		t.Fatalf("reader-writer should be safe, got witness:\n%s", WitnessString(res))
	}
	if res.Explored == 0 || res.Depth == 0 {
		t.Fatalf("implausible exploration stats: %+v", res)
	}
}

func TestReaderWriterBrokenUnsafe(t *testing.T) {
	sys := readerWriter()
	sys.Name = "reader-writer/no-reader-check"
	// Drop the r == 0 atom from start-write: a writer may start under
	// active readers.
	replaceRule(sys, "start-write", Rule{
		Name:   "start-write",
		Guard:  []Atom{{1, EQ, 0}},
		Update: []Expr{sum(2, 0, 0), sum(2, 1, 1)},
	})
	res, err := Explore(sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe {
		t.Fatal("broken reader-writer should be unsafe")
	}
	if res.Unsafe != "reader-and-writer" {
		t.Fatalf("unsafe predicate = %q", res.Unsafe)
	}
	// Shortest witness: start-read, start-write.
	if len(res.Witness) != 2 {
		t.Fatalf("witness length = %d, want 2:\n%s", len(res.Witness), WitnessString(res))
	}
	replayWitness(t, sys, res)
}

// replayWitness re-executes a witness trace through System.Apply and asserts
// it really ends in an Unsafe configuration — the trace is evidence, not
// just prose.
func replayWitness(t *testing.T, s *System, res *Result) {
	t.Helper()
	theta := s.theta()
	var cur Config
	for _, init := range s.Inits {
		c := init.clone()
		normalize(c, theta)
		if c.String() == res.Init {
			cur = c
			break
		}
	}
	if cur == nil {
		t.Fatalf("witness init %s not found among system inits", res.Init)
	}
	for i, st := range res.Witness {
		var next Config
		for _, succ := range s.Apply(cur, st.Rule) {
			if succ.String() == st.Config {
				next = succ
				break
			}
		}
		if next == nil {
			t.Fatalf("witness step %d (%s -> %s) not reproducible from %s", i+1, st.Rule, st.Config, cur)
		}
		cur = next
	}
	if s.unsafeAt(cur) == "" {
		t.Fatalf("witness end config %s is not unsafe", cur)
	}
}

func TestWitnessIsShortest(t *testing.T) {
	// Two paths to the violation: a 1-step "jump" and a 3-step chain. BFS
	// must return the jump.
	u := func(c int, vars ...int) Expr { return sum(1, c, vars...) }
	sys := &System{
		Name:  "shortest",
		Vars:  []string{"x"},
		Inits: []Config{{N(0)}},
		Rules: []Rule{
			{Name: "step", Update: []Expr{u(1, 0)}},
			{Name: "jump", Update: []Expr{u(3, 0)}},
		},
		Unsafe: []Pred{{Name: "x3", Atoms: []Atom{{0, GE, 3}}}},
	}
	res, err := Explore(sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe {
		t.Fatal("should be unsafe")
	}
	if len(res.Witness) != 1 || res.Witness[0].Rule != "jump" {
		t.Fatalf("witness = %v, want single jump", res.Witness)
	}
}

func TestUnsafeInit(t *testing.T) {
	sys := &System{
		Name:   "born-bad",
		Vars:   []string{"x"},
		Inits:  []Config{{N(1)}},
		Rules:  []Rule{{Name: "noop", Update: []Expr{sum(1, 0, 0)}}},
		Unsafe: []Pred{{Name: "any", Atoms: []Atom{{0, GE, 1}}}},
	}
	res, err := Explore(sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe || len(res.Witness) != 0 || res.Init != "(1)" {
		t.Fatalf("unsafe init mishandled: %+v", res)
	}
}

func TestOmegaUnsafePredicateRefinement(t *testing.T) {
	// ω covers 0, so a >=1 predicate over ω must fire (may-semantics on
	// Unsafe), but an EQ 5 predicate over an exact 3 must not.
	sys := &System{
		Name:   "omega-pred",
		Vars:   []string{"x", "y"},
		Inits:  []Config{{Omega, N(3)}},
		Rules:  []Rule{{Name: "noop", Update: []Expr{sum(2, 0, 0), sum(2, 0, 1)}}},
		Unsafe: []Pred{{Name: "y5", Atoms: []Atom{{1, EQ, 5}}}},
	}
	res, err := Explore(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safe {
		t.Fatal("EQ 5 on exact 3 should not fire")
	}
	sys.Unsafe = []Pred{{Name: "x1", Atoms: []Atom{{0, GE, 1}}}}
	res, err = Explore(sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe {
		t.Fatal(">=1 over ω must fire: ω contains 1")
	}
}

func TestValidateRejects(t *testing.T) {
	u1 := func(c int, vars ...int) Expr { return sum(1, c, vars...) }
	ok := func() *System {
		return &System{
			Name:   "ok",
			Vars:   []string{"x"},
			Inits:  []Config{{N(0)}},
			Rules:  []Rule{{Name: "r", Update: []Expr{u1(0, 0)}}},
			Unsafe: []Pred{{Name: "p", Atoms: []Atom{{0, GE, 1}}}},
		}
	}
	if err := ok().Validate(); err != nil {
		t.Fatalf("baseline system invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*System)
		want string
	}{
		{"no-vars", func(s *System) { s.Vars = nil }, "no variables"},
		{"no-inits", func(s *System) { s.Inits = nil }, "no initial"},
		{"init-arity", func(s *System) { s.Inits = []Config{{N(0), N(0)}} }, "values"},
		{"no-rules", func(s *System) { s.Rules = nil }, "no rules"},
		{"unnamed-rule", func(s *System) { s.Rules[0].Name = "" }, "unnamed"},
		{"dup-rule", func(s *System) { s.Rules = append(s.Rules, s.Rules[0]) }, "duplicate"},
		{"update-arity", func(s *System) { s.Rules[0].Update = nil }, "updates"},
		{"coef-arity", func(s *System) { s.Rules[0].Update = []Expr{{Coef: []int{1, 2}}} }, "coefficients"},
		{"neg-coef", func(s *System) { s.Rules[0].Update = []Expr{{Coef: []int{-1}}} }, "negative coefficient"},
		{"guard-var", func(s *System) { s.Rules[0].Guard = []Atom{{Var: 7, Op: GE, C: 1}} }, "out of range"},
		{"no-unsafe", func(s *System) { s.Unsafe = nil }, "no Unsafe"},
		{"empty-pred", func(s *System) { s.Unsafe[0].Atoms = nil }, "no atoms"},
		{"pred-var", func(s *System) { s.Unsafe[0].Atoms = []Atom{{Var: 9, Op: GE, C: 1}} }, "out of range"},
		{"theta-overflow", func(s *System) { s.Theta = 300 }, "255"},
		{"neg-init", func(s *System) { s.Inits = []Config{{Val{Lo: -1}}} }, "negative init"},
	}
	for _, c := range cases {
		s := ok()
		c.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a malformed system", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if _, err := Explore(s); err == nil {
			t.Errorf("%s: Explore accepted a malformed system", c.name)
		}
	}
}

func TestThetaDerivation(t *testing.T) {
	sys := readerWriter()
	if got := sys.theta(); got != 4 {
		t.Fatalf("theta = %d, want floor 4", got)
	}
	sys.Rules[0].Guard = []Atom{{0, LE, 9}}
	if got := sys.theta(); got != 10 {
		t.Fatalf("theta = %d, want 10 (largest guard constant + 1)", got)
	}
	sys.Theta = 50
	if got := sys.theta(); got != 50 {
		t.Fatalf("theta = %d, want explicit 50", got)
	}
}

func TestApplyUnknownRulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply on an unknown rule should panic")
		}
	}()
	readerWriter().Apply(Config{N(0), N(0)}, "no-such-rule")
}
