package verify

import "fmt"

// This file holds the five shipped protocol models, extracted from the
// simulator (not invented): the MESI directory protocol as implemented in
// internal/coherence, the OMU's HW/SW-world exclusivity per sync address,
// MSA lock mutual exclusion including the overflow-to-SW handoff, barrier
// epoch separation, and the conservative shard window protocol of the
// parallel event kernel. Every rule's Doc names the concrete transition
// it models; internal/verify/bridge_test.go drives the concrete machine
// through those transitions and asserts the abstract post-states, so the
// models cannot silently drift from the simulator.
//
// Each model also ships deliberately-broken variants (the abstract
// counterparts of test toggles like core.Config.UnsafeNoOMUCheck); the
// checker must report every one of them Unsafe with a witness trace.

// Model pairs a certified system with its deliberately-broken variants and
// the runtime invariant classes (fault.ViolationKind strings) it certifies.
type Model struct {
	System *System
	// Broken variants must each be reported Unsafe by Explore; a Safe
	// verdict on any of them means the checker lost detection power.
	Broken []*System
	// Invariants lists the fault.Checker violation-kind names whose
	// protocol this model certifies (see fault.Invariants for the inverse
	// mapping; the consistency test asserts the two stay total).
	Invariants []string
}

// Models returns the shipped protocol models in certification order.
func Models() []Model {
	return []Model{
		{
			System:     MESI(),
			Broken:     []*System{MESINoInvalidate()},
			Invariants: []string{"mutual-exclusion"},
		},
		{
			System:     OMUExclusivity(),
			Broken:     []*System{OMUNoCheck()},
			Invariants: []string{"omu-exclusivity"},
		},
		{
			System:     LockMutex(),
			Broken:     []*System{LockNoOMUCheck(), LockBlindSWStore(), LockPromoteHeld()},
			Invariants: []string{"mutual-exclusion", "lock-world-split"},
		},
		{
			System:     BarrierEpoch(),
			Broken:     []*System{BarrierEarlyRelease()},
			Invariants: []string{"barrier-epoch", "barrier-world-split"},
		},
		{
			System:     WindowProtocol(),
			Broken:     []*System{WindowZeroLookahead(), WindowEarlyFlip()},
			Invariants: []string{"shard-delivery"},
		},
		{
			System:     TMCommit(),
			Broken:     []*System{TMNoValidate(), TMLockLeak(), TMBlindAcquire()},
			Invariants: []string{"tm-commit-overlap", "tm-atomicity"},
		},
	}
}

// ModelByName returns the shipped model with the given system name.
func ModelByName(name string) (Model, bool) {
	for _, m := range Models() {
		if m.System.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// sum builds the linear expression c + v1 + v2 + ... over an n-variable
// system (repeating a variable raises its coefficient).
func sum(n, c int, vars ...int) Expr {
	e := Expr{Coef: make([]int, n), Const: c}
	for _, v := range vars {
		e.Coef[v]++
	}
	return e
}

// brokenCopy deep-copies sys under a derived name so a variant can replace
// rules without aliasing the pristine model.
func brokenCopy(sys *System, suffix string) *System {
	cp := *sys
	cp.Name = sys.Name + "/" + suffix
	cp.Rules = append([]Rule(nil), sys.Rules...)
	return &cp
}

// replaceRule swaps the named rule for r.
func replaceRule(sys *System, name string, r Rule) {
	for i := range sys.Rules {
		if sys.Rules[i].Name == name {
			sys.Rules[i] = r
			return
		}
	}
	panic(fmt.Sprintf("verify: %s has no rule %q to replace", sys.Name, name))
}

// --- Model 1: MESI directory protocol (internal/coherence) ---

// MESI variable indices.
const (
	mI = iota // cores holding the line Invalid (equivalently: not holding it)
	mS        // cores in Shared
	mE        // cores in Exclusive
	mM        // cores in Modified
)

// MESI models the directory protocol exactly as internal/coherence
// implements it: a single cache line, counters of cores per MESI state,
// ω cores. The single-writer property is the substrate of the §5 HWSync
// silent re-acquire (L1.HWSyncHit requires E or M), so breaking it breaks
// lock mutual exclusion.
func MESI() *System {
	const n = 4
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	return &System{
		Name: "mesi",
		Vars: []string{"i", "s", "e", "m"},
		Inits: []Config{
			{Omega, N(0), N(0), N(0)},
		},
		Rules: []Rule{
			{
				Name:  "read-cold",
				Doc:   "Directory.start dirInvalid -> finishExclusive: first GetS is granted Exclusive (MESI E optimization, RspDataE)",
				Guard: []Atom{{mI, GE, 1}, {mS, EQ, 0}, {mE, EQ, 0}, {mM, EQ, 0}},
				Update: []Expr{
					u(-1, mI), u(0), u(1), u(0),
				},
			},
			{
				Name:  "read-shared",
				Doc:   "Directory.start dirShared + txnGetS: sharers |= requester, RspDataS",
				Guard: []Atom{{mI, GE, 1}, {mS, GE, 1}},
				Update: []Expr{
					u(-1, mI), u(1, mS), u(0, mE), u(0, mM),
				},
			},
			{
				Name:  "read-owner-e",
				Doc:   "Directory.start dirExclusive + GetS: MsgFwd FwdDowngrade; L1 owner E->S + FwdAckS; handleFwdAckS -> RspDataS",
				Guard: []Atom{{mI, GE, 1}, {mE, GE, 1}},
				Update: []Expr{
					u(-1, mI), u(2, mS), u(-1, mE), u(0, mM),
				},
			},
			{
				Name:  "read-owner-m",
				Doc:   "Directory.start dirExclusive + GetS with Modified owner: FwdDowngrade, owner M->S, requester Shared",
				Guard: []Atom{{mI, GE, 1}, {mM, GE, 1}},
				Update: []Expr{
					u(-1, mI), u(2, mS), u(0, mE), u(-1, mM),
				},
			},
			{
				Name:  "write-from-i",
				Doc:   "L1.Access store miss -> ReqGetX; Directory invalidates every sharer/owner (MsgInv/MsgFwd); fill + commit -> Modified",
				Guard: []Atom{{mI, GE, 1}},
				Update: []Expr{
					u(-1, mI, mS, mE, mM), u(0), u(0), u(1),
				},
			},
			{
				Name:  "write-from-s",
				Doc:   "L1.Access store on Shared is an upgrade miss -> ReqGetX; other sharers invalidated; commit -> Modified",
				Guard: []Atom{{mS, GE, 1}},
				Update: []Expr{
					u(-1, mI, mS, mE, mM), u(0), u(0), u(1),
				},
			},
			{
				Name:  "write-hit-e",
				Doc:   "L1.commit store on Exclusive: silent E->M upgrade, no directory transaction",
				Guard: []Atom{{mE, GE, 1}},
				Update: []Expr{
					u(0, mI), u(0, mS), u(-1, mE), u(1, mM),
				},
			},
			{
				Name:  "grant",
				Doc:   "Directory.GrantExclusive (MSA HWSync block grant, txnGrant): recalls every copy, requester Exclusive with HWSync bit",
				Guard: []Atom{{mI, GE, 1}},
				Update: []Expr{
					u(-1, mI, mS, mE, mM), u(0), u(1), u(0),
				},
			},
			{
				Name:  "evict-s",
				Doc:   "L1.evict Shared -> ReqPutS; Directory.handlePutS drops the sharer bit",
				Guard: []Atom{{mS, GE, 1}},
				Update: []Expr{
					u(1, mI), u(-1, mS), u(0, mE), u(0, mM),
				},
			},
			{
				Name:  "evict-e",
				Doc:   "L1.evict Exclusive -> ReqPutE; Directory.handlePutEM invalidates the line",
				Guard: []Atom{{mE, GE, 1}},
				Update: []Expr{
					u(1, mI), u(0, mS), u(-1, mE), u(0, mM),
				},
			},
			{
				Name:  "writeback-m",
				Doc:   "L1.evict Modified -> ReqPutM writeback; Directory.handlePutEM invalidates the line",
				Guard: []Atom{{mM, GE, 1}},
				Update: []Expr{
					u(1, mI), u(0, mS), u(0, mE), u(-1, mM),
				},
			},
			{
				Name:  "revoke",
				Doc:   "Directory.Revoke (MSA standby revocation, txnRevoke): every copy invalidated, line uncached",
				Guard: nil,
				Update: []Expr{
					u(0, mI, mS, mE, mM), u(0), u(0), u(0),
				},
			},
		},
		Unsafe: []Pred{
			{Name: "two-modified", Atoms: []Atom{{mM, GE, 2}}},
			{Name: "two-exclusive", Atoms: []Atom{{mE, GE, 2}}},
			{Name: "exclusive-and-modified", Atoms: []Atom{{mE, GE, 1}, {mM, GE, 1}}},
			{Name: "modified-with-sharer", Atoms: []Atom{{mM, GE, 1}, {mS, GE, 1}}},
			{Name: "exclusive-with-sharer", Atoms: []Atom{{mE, GE, 1}, {mS, GE, 1}}},
		},
	}
}

// MESINoInvalidate breaks the write path: a GetX is granted without
// invalidating the existing copies (the abstract counterpart of a directory
// that forgets its sharer vector). Must verify Unsafe.
func MESINoInvalidate() *System {
	sys := brokenCopy(MESI(), "no-invalidate-on-write")
	const n = 4
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	replaceRule(sys, "write-from-i", Rule{
		Name:  "write-from-i",
		Doc:   "BROKEN: GetX grant without invalidating sharers or recalling the owner",
		Guard: []Atom{{mI, GE, 1}},
		Update: []Expr{
			u(-1, mI), u(0, mS), u(0, mE), u(1, mM),
		},
	})
	return sys
}

// --- Model 2: OMU HW/SW-world exclusivity (internal/core OMU + Slice) ---

// OMU variable indices.
const (
	oH  = iota // live accepting MSA entries for the address (0 or 1)
	oD         // draining entries (post-abort tear-down)
	oHW        // threads in the hardware path (HWQueue waiters + owner)
	oW         // threads active in the software path (the OMU counter level)
)

// OMUExclusivity models the Overflow Management Unit property of PAPER.md
// §3.2 for one synchronization address: an MSA entry may only be allocated
// while no thread is active in the software path, so the hardware and
// software worlds never handle the same variable concurrently.
func OMUExclusivity() *System {
	const n = 4
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	return &System{
		Name: "omu-exclusivity",
		Vars: []string{"h", "d", "hw", "w"},
		Inits: []Config{
			{N(0), N(0), N(0), N(0)}, // ω idle threads are implicit: acquire rules fire unguarded
		},
		Rules: []Rule{
			{
				Name:  "alloc",
				Doc:   "Slice.tryAllocate: omu.ActiveSW(addr) veto, then entry alloc + Checker.HWAlloc; requester enters the HW path",
				Guard: []Atom{{oH, EQ, 0}, {oD, EQ, 0}, {oW, EQ, 0}},
				Update: []Expr{
					u(1), u(0, oD), u(1, oHW), u(0, oW),
				},
			},
			{
				Name:  "hw-join",
				Doc:   "Slice.find hit: another thread joins the live entry's HWQueue (enqueueLocker / barrier arrival)",
				Guard: []Atom{{oH, GE, 1}},
				Update: []Expr{
					u(0, oH), u(0, oD), u(1, oHW), u(0, oW),
				},
			},
			{
				Name:  "sw-steer",
				Doc:   "Slice.handleLock/handleBarrier FAIL: OMU-live or capacity steer to software + omuInc (Checker.SWEnter)",
				Guard: []Atom{{oH, EQ, 0}, {oD, EQ, 0}},
				Update: []Expr{
					u(0, oH), u(0, oD), u(0, oHW), u(1, oW),
				},
			},
			{
				Name:  "sw-steer-drain",
				Doc:   "Slice.handleLock on a draining entry: FAIL + omuInc while the tear-down completes",
				Guard: []Atom{{oD, GE, 1}},
				Update: []Expr{
					u(0, oH), u(0, oD), u(0, oHW), u(1, oW),
				},
			},
			{
				Name:  "hw-complete",
				Doc:   "Slice.respond Success: a hardware operation completes and its thread leaves the HW path",
				Guard: []Atom{{oHW, GE, 1}},
				Update: []Expr{
					u(0, oH), u(0, oD), u(-1, oHW), u(0, oW),
				},
			},
			{
				Name:  "retire",
				Doc:   "Slice.maybeRetire / dealloc: an idle entry is freed (or standby-reclaimed)",
				Guard: []Atom{{oH, GE, 1}, {oHW, EQ, 0}},
				Update: []Expr{
					u(-1, oH), u(0, oD), u(0, oHW), u(0, oW),
				},
			},
			{
				Name:  "abort",
				Doc:   "Slice.abortLockEntry / handleSuspend barrier abort: every HW waiter is ABORTed to software (omuInc each), entry drains",
				Guard: []Atom{{oH, GE, 1}},
				Update: []Expr{
					u(-1, oH), u(1, oD), u(0), u(0, oW, oHW),
				},
			},
			{
				Name:  "drain-done",
				Doc:   "Slice.finishDrain: lingering HWSync block revoked, entry deallocated",
				Guard: []Atom{{oD, GE, 1}},
				Update: []Expr{
					u(0, oH), u(-1, oD), u(0, oHW), u(0, oW),
				},
			},
			{
				Name:  "sw-finish",
				Doc:   "Slice.HandleReq OpFinish -> omuDec (Checker.SWExit): a thread leaves the software path",
				Guard: []Atom{{oW, GE, 1}},
				Update: []Expr{
					u(0, oH), u(0, oD), u(0, oHW), u(-1, oW),
				},
			},
		},
		Unsafe: []Pred{
			{Name: "hw-sw-overlap", Atoms: []Atom{{oH, GE, 1}, {oW, GE, 1}}},
			{Name: "double-entry", Atoms: []Atom{{oH, GE, 2}}},
		},
	}
}

// OMUNoCheck is the abstract counterpart of core.Config.UnsafeNoOMUCheck:
// allocation skips the software-activity veto. Must verify Unsafe.
func OMUNoCheck() *System {
	sys := brokenCopy(OMUExclusivity(), "no-omu-check")
	const n = 4
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	replaceRule(sys, "alloc", Rule{
		Name:  "alloc",
		Doc:   "BROKEN (UnsafeNoOMUCheck): tryAllocate without the omu.ActiveSW veto",
		Guard: []Atom{{oH, EQ, 0}, {oD, EQ, 0}},
		Update: []Expr{
			u(1), u(0, oD), u(1, oHW), u(0, oW),
		},
	})
	return sys
}

// --- Model 3: MSA lock mutual exclusion with overflow handoff ---

// Lock variable indices.
const (
	lEL = iota // live accepting lock entry (0 or 1)
	lED        // draining entry
	lHO        // hardware owner (HWQueue grant holder)
	lHQ        // hardware waiters
	lSO        // software holder (the lock word in simulated memory)
	lSP        // software-path threads not holding (waiting, or released pre-FINISH)
)

// LockMutex models one lock address across both worlds: the MSA entry's
// owner/waiter queue (§4.1), the software fallback lock word, and the
// overflow handoffs between them (steer on OMU/capacity, migrated-owner
// abort §4.1.2, drain). The OMU counter level is so+sp.
func LockMutex() *System {
	const n = 6
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	return &System{
		Name: "msa-lock-mutex",
		Vars: []string{"el", "ed", "ho", "hq", "so", "sp"},
		Inits: []Config{
			{N(0), N(0), N(0), N(0), N(0), N(0)},
		},
		Rules: []Rule{
			{
				Name:  "alloc-grant",
				Doc:   "handleLock -> tryAllocate (OMU veto: counter must be 0) -> enqueueLocker immediate grant; Checker.LockAcquired(HW)",
				Guard: []Atom{{lEL, EQ, 0}, {lED, EQ, 0}, {lSO, EQ, 0}, {lSP, EQ, 0}},
				Update: []Expr{
					u(1), u(0, lED), u(1), u(0, lHQ), u(0, lSO), u(0, lSP),
				},
			},
			{
				Name:  "hw-enqueue",
				Doc:   "enqueueLocker: waiters |= bit(core); the reply is held until promotion (§4.1)",
				Guard: []Atom{{lEL, GE, 1}, {lED, EQ, 0}},
				Update: []Expr{
					u(0, lEL), u(0, lED), u(0, lHO), u(1, lHQ), u(0, lSO), u(0, lSP),
				},
			},
			{
				Name:  "hw-promote",
				Doc:   "Slice.promote: owner==-1, NBTC round-robin pick; Checker.LockAcquired(HW); §5 silent re-acquire lands here too",
				Guard: []Atom{{lEL, GE, 1}, {lHO, EQ, 0}, {lHQ, GE, 1}},
				Update: []Expr{
					u(0, lEL), u(0, lED), u(1), u(-1, lHQ), u(0, lSO), u(0, lSP),
				},
			},
			{
				Name:  "hw-unlock",
				Doc:   "handleUnlock owner path: owner=-1, Checker.LockReleased(HW); promote/maybeRetire follow as separate steps",
				Guard: []Atom{{lHO, GE, 1}},
				Update: []Expr{
					u(0, lEL), u(0, lED), u(-1, lHO), u(0, lHQ), u(0, lSO), u(0, lSP),
				},
			},
			{
				Name:  "retire",
				Doc:   "maybeRetire: queue empty -> standby then dealloc/reclaim (startReclaim); entry leaves the slice",
				Guard: []Atom{{lEL, GE, 1}, {lHO, EQ, 0}, {lHQ, EQ, 0}},
				Update: []Expr{
					u(-1, lEL), u(0, lED), u(0, lHO), u(0, lHQ), u(0, lSO), u(0, lSP),
				},
			},
			{
				Name:  "steer",
				Doc:   "handleLock FAIL (OMU-live or capacity steer): thread takes syncrt.swLock + omuInc",
				Guard: []Atom{{lEL, EQ, 0}, {lED, EQ, 0}},
				Update: []Expr{
					u(0, lEL), u(0, lED), u(0, lHO), u(0, lHQ), u(0, lSO), u(1, lSP),
				},
			},
			{
				Name:  "steer-drain",
				Doc:   "handleLock on a draining entry: FAIL + omuInc while tear-down completes",
				Guard: []Atom{{lED, GE, 1}},
				Update: []Expr{
					u(0, lEL), u(0, lED), u(0, lHO), u(0, lHQ), u(0, lSO), u(1, lSP),
				},
			},
			{
				Name:  "abort",
				Doc:   "handleUnlock from a non-queue core (§4.1.2 migrated owner) -> abortLockEntry: waiters ABORT ReasonFallback + omuInc each, entry drains",
				Guard: []Atom{{lEL, GE, 1}},
				Update: []Expr{
					u(-1, lEL), u(1, lED), u(0), u(0), u(0, lSO), u(0, lSP, lHQ),
				},
			},
			{
				Name:  "drain-done",
				Doc:   "finishDrain: HWSync block revoked, entry deallocated",
				Guard: []Atom{{lED, GE, 1}},
				Update: []Expr{
					u(0, lEL), u(-1, lED), u(0, lHO), u(0, lHQ), u(0, lSO), u(0, lSP),
				},
			},
			{
				Name:  "sw-acquire",
				Doc:   "syncrt.swLock (TTS CAS / ticket / MCS) takes the free lock word; Checker.LockAcquired(SW)",
				Guard: []Atom{{lSP, GE, 1}, {lSO, EQ, 0}},
				Update: []Expr{
					u(0, lEL), u(0, lED), u(0, lHO), u(0, lHQ), u(1), u(-1, lSP),
				},
			},
			{
				Name:  "sw-release",
				Doc:   "syncrt.swUnlock stores 0; the slice's UNLOCK FAIL path registers Checker.LockReleased(SW)",
				Guard: []Atom{{lSO, GE, 1}},
				Update: []Expr{
					u(0, lEL), u(0, lED), u(0, lHO), u(0, lHQ), u(-1, lSO), u(1, lSP),
				},
			},
			{
				Name:  "sw-finish",
				Doc:   "OpFinish -> omuDec: the software episode ends (Checker.SWExit)",
				Guard: []Atom{{lSP, GE, 1}},
				Update: []Expr{
					u(0, lEL), u(0, lED), u(0, lHO), u(0, lHQ), u(0, lSO), u(-1, lSP),
				},
			},
			{
				Name:  "hw-requeue",
				Doc:   "handleSuspend on a queued lock waiter: dequeued with ReasonRequeue, the core re-executes LOCK on resume",
				Guard: []Atom{{lHQ, GE, 1}},
				Update: []Expr{
					u(0, lEL), u(0, lED), u(0, lHO), u(-1, lHQ), u(0, lSO), u(0, lSP),
				},
			},
		},
		Unsafe: []Pred{
			{Name: "two-hw-owners", Atoms: []Atom{{lHO, GE, 2}}},
			{Name: "two-sw-holders", Atoms: []Atom{{lSO, GE, 2}}},
			{Name: "hw-sw-split-ownership", Atoms: []Atom{{lHO, GE, 1}, {lSO, GE, 1}}},
		},
	}
}

// LockNoOMUCheck allocates a lock entry while threads are still active in
// the software path (UnsafeNoOMUCheck on the lock path). Must verify Unsafe.
func LockNoOMUCheck() *System {
	sys := brokenCopy(LockMutex(), "no-omu-check")
	const n = 6
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	replaceRule(sys, "alloc-grant", Rule{
		Name:  "alloc-grant",
		Doc:   "BROKEN (UnsafeNoOMUCheck): entry allocated and granted with software holders/waiters still live",
		Guard: []Atom{{lEL, EQ, 0}, {lED, EQ, 0}},
		Update: []Expr{
			u(1), u(0, lED), u(1), u(0, lHQ), u(0, lSO), u(0, lSP),
		},
	})
	return sys
}

// LockBlindSWStore breaks the software acquire: the fallback lock writes
// the word without testing it (a CAS that lost its compare). Must verify
// Unsafe.
func LockBlindSWStore() *System {
	sys := brokenCopy(LockMutex(), "blind-sw-store")
	const n = 6
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	replaceRule(sys, "sw-acquire", Rule{
		Name:  "sw-acquire",
		Doc:   "BROKEN: swLock stores 1 without the free-word test (CAS without compare)",
		Guard: []Atom{{lSP, GE, 1}},
		Update: []Expr{
			u(0, lEL), u(0, lED), u(0, lHO), u(0, lHQ), u(1, lSO), u(-1, lSP),
		},
	})
	return sys
}

// LockPromoteHeld breaks promotion: the slice grants to the next waiter
// without checking the entry's owner field (losing promote's owner==-1
// early-return). Must verify Unsafe.
func LockPromoteHeld() *System {
	sys := brokenCopy(LockMutex(), "promote-held")
	const n = 6
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	replaceRule(sys, "hw-promote", Rule{
		Name:  "hw-promote",
		Doc:   "BROKEN: promote grants a waiter while the entry still has an owner",
		Guard: []Atom{{lEL, GE, 1}, {lHQ, GE, 1}},
		Update: []Expr{
			u(0, lEL), u(0, lED), u(1, lHO), u(-1, lHQ), u(0, lSO), u(0, lSP),
		},
	})
	return sys
}

// --- Model 4: barrier epoch separation ---

// Barrier variable indices: a two-epoch window over one barrier object.
const (
	bQ  = iota // computing in the current epoch, not yet arrived
	bA         // arrived in the current epoch, waiting for release
	bD         // released from the current epoch, computing in the next
	bA2        // arrived at the NEXT episode already
)

// BarrierEpoch models epoch separation for one barrier (§4.2 and the
// software central/tournament barriers): an episode may release only when
// every participant has arrived, so no thread can reach the episode after
// next while a thread still sits in the current one. Participant counts 1–4
// are covered exhaustively; the ω init covers the unbounded tail (where a
// release additionally requires the cofinite arrival refinement).
func BarrierEpoch() *System {
	const n = 4
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	return &System{
		Name: "barrier-epoch",
		Vars: []string{"q", "a", "d", "a2"},
		Inits: []Config{
			{N(1), N(0), N(0), N(0)},
			{N(2), N(0), N(0), N(0)},
			{N(3), N(0), N(0), N(0)},
			{N(4), N(0), N(0), N(0)},
			{Omega, N(0), N(0), N(0)},
		},
		Rules: []Rule{
			{
				Name:  "arrive",
				Doc:   "Slice.handleBarrier waiters|=bit / syncrt centralBarrier FetchAdd; Checker.BarrierArrive",
				Guard: []Atom{{bQ, GE, 1}},
				Update: []Expr{
					u(-1, bQ), u(1, bA), u(0, bD), u(0, bA2),
				},
			},
			{
				Name:  "release",
				Doc:   "all arrived: Slice.handleBarrier responds Success to every waiter / centralBarrier publishes the release generation; Checker.BarrierRelease",
				Guard: []Atom{{bQ, EQ, 0}, {bA, GE, 1}},
				Update: []Expr{
					u(0, bQ), u(0), u(0, bD, bA), u(0, bA2),
				},
			},
			{
				Name:  "next-arrive",
				Doc:   "a released core reaches the same barrier's next episode (the next epoch's Checker.BarrierArrive)",
				Guard: []Atom{{bD, GE, 1}},
				Update: []Expr{
					u(0, bQ), u(0, bA), u(-1, bD), u(1, bA2),
				},
			},
			{
				Name:  "shift",
				Doc:   "epoch-window relabel: once no thread remains in epoch k, epoch k+1 becomes current (abstraction bookkeeping, no concrete transition)",
				Guard: []Atom{{bQ, EQ, 0}, {bA, EQ, 0}},
				Update: []Expr{
					u(0, bD), u(0, bA2), u(0), u(0),
				},
			},
		},
		Unsafe: []Pred{
			{Name: "two-epochs-ahead", Atoms: []Atom{{bQ, GE, 1}, {bA2, GE, 1}}},
		},
	}
}

// BarrierEarlyRelease drops the all-arrived guard: the episode releases
// with participants still computing (the concrete shapes are a stale
// arrival count — centralBarrier publishing the generation before the
// reset — or a double arrival inflating the count). Must verify Unsafe.
func BarrierEarlyRelease() *System {
	sys := brokenCopy(BarrierEpoch(), "early-release")
	const n = 4
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	replaceRule(sys, "release", Rule{
		Name:  "release",
		Doc:   "BROKEN: release fires before every participant arrived (stale/double-counted arrivals)",
		Guard: []Atom{{bA, GE, 1}},
		Update: []Expr{
			u(0, bQ), u(0), u(0, bD, bA), u(0, bA2),
		},
	})
	return sys
}

// --- Model 5: conservative shard window protocol (internal/sim ShardGroup) ---

// Window-protocol variable indices. The abstraction is receiver-centric:
// one destination shard observed across one window boundary, ω sender
// events. Tokens are conserved through the flip (next window's work is the
// recycled previous-window work), which keeps every update linear.
const (
	wPre     = iota // source-shard events of the current window, unexecuted
	wPreDone        // source-shard events already executed this window
	wStale          // source events stranded behind an early flip (broken variants only)
	wRun            // destination-shard events of the current window, unexecuted
	wDone           // destination-shard events already executed this window
	wCur            // injected cross-shard messages deliverable in the current window
	wNext           // posted cross-shard messages buffered for the next window
	wLate           // messages timestamped behind the destination clock (stragglers)
)

// WindowProtocol models sim.ShardGroup's conservative window loop: sources
// post cross-shard messages only with at least `lookahead` of slack (the
// Post panic guard), posts buffer on the fill side of the double-buffered
// mailbox, and the coordinator flips the buffers only at the barrier, after
// every shard has drained its window. Under those three guards no message
// can ever carry a timestamp behind its destination shard's clock — the
// no-straggler property that makes the parallel kernel's timing exact. Its
// runtime shadow is fault.ViolationShardDelivery (the NoC's cross-shard
// arrival monitor); the broken variants below delete one guard each and
// must be refuted.
func WindowProtocol() *System {
	const n = 8
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	return &System{
		Name: "window-protocol",
		Vars: []string{"pre", "preDone", "stale", "run", "done", "cur", "next", "late"},
		Inits: []Config{
			{Omega, N(0), N(0), Omega, N(0), N(0), N(0), N(0)},
		},
		Rules: []Rule{
			{
				Name:  "send-exec",
				Doc:   "a source-shard event with no cross-shard output runs inside Engine.RunUntil(windowEnd)",
				Guard: []Atom{{wPre, GE, 1}},
				Update: []Expr{
					u(-1, wPre), u(1, wPreDone), u(0, wStale), u(0, wRun),
					u(0, wDone), u(0, wCur), u(0, wNext), u(0, wLate),
				},
			},
			{
				Name:  "send-post",
				Doc:   "ShardGroup.Post: the `when < now+lookahead` panic guard forces delivery past windowEnd, onto the fill side of the mailbox",
				Guard: []Atom{{wPre, GE, 1}},
				Update: []Expr{
					u(-1, wPre), u(0, wPreDone), u(0, wStale), u(0, wRun),
					u(0, wDone), u(0, wCur), u(1, wNext), u(0, wLate),
				},
			},
			{
				Name:  "recv-exec",
				Doc:   "a destination-shard local event runs; the shard clock advances within [T, T+L-1]",
				Guard: []Atom{{wRun, GE, 1}},
				Update: []Expr{
					u(0, wPre), u(0, wPreDone), u(0, wStale), u(-1, wRun),
					u(1, wDone), u(0, wCur), u(0, wNext), u(0, wLate),
				},
			},
			{
				Name:  "deliver",
				Doc:   "inject() drained this message at the window barrier and AtCall'd it at its timestamp >= T, so it executes in heap order like any local event",
				Guard: []Atom{{wCur, GE, 1}},
				Update: []Expr{
					u(0, wPre), u(0, wPreDone), u(0, wStale), u(0, wRun),
					u(1, wDone), u(-1, wCur), u(0, wNext), u(0, wLate),
				},
			},
			{
				Name:  "window-flip",
				Doc:   "coordinator barrier: await() until every shard drained its window (pre==0, run==0, cur==0), then fill^=1 and release(); destinations drain the quiescent side next window",
				Guard: []Atom{{wPre, EQ, 0}, {wRun, EQ, 0}, {wCur, EQ, 0}},
				Update: []Expr{
					u(0, wPreDone), u(0), u(0, wStale), u(0, wDone),
					u(0), u(0, wNext), u(0), u(0, wLate),
				},
			},
		},
		Unsafe: []Pred{
			{Name: "straggler", Atoms: []Atom{{wLate, GE, 1}}},
		},
	}
}

// WindowZeroLookahead removes the Post lookahead guard: a source may post a
// delivery time inside the destination's current window, and once the
// destination clock has advanced (done >= 1) the message lands in its past.
// The concrete shape is sim.ShardGroup.Post without its panic guard, or a
// NoC accepting a sharded lookahead above the min hop latency (the check
// SetShards enforces). Must verify Unsafe.
func WindowZeroLookahead() *System {
	sys := brokenCopy(WindowProtocol(), "zero-lookahead")
	const n = 8
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	replaceRule(sys, "send-post", Rule{
		Name:  "send-post",
		Doc:   "BROKEN: no lookahead slack — the post targets the destination's current window behind its clock",
		Guard: []Atom{{wPre, GE, 1}, {wDone, GE, 1}},
		Update: []Expr{
			u(-1, wPre), u(0, wPreDone), u(0, wStale), u(0, wRun),
			u(0, wDone), u(0, wCur), u(0, wNext), u(1, wLate),
		},
	})
	return sys
}

// WindowEarlyFlip removes the barrier's source-drained guard: the
// coordinator flips the mailbox buffers while source events of the old
// window are still pending. Those stranded events later post with
// timestamps computed against their stale clock — behind the advanced
// window start. The concrete shape is release() before await(), the
// double-buffer race the epoch barrier exists to prevent. Must verify
// Unsafe.
func WindowEarlyFlip() *System {
	sys := brokenCopy(WindowProtocol(), "early-flip")
	const n = 8
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	replaceRule(sys, "window-flip", Rule{
		Name:  "window-flip",
		Doc:   "BROKEN: the flip no longer waits for the source shard to drain; its pending events are stranded on a stale clock",
		Guard: []Atom{{wRun, EQ, 0}, {wCur, EQ, 0}},
		Update: []Expr{
			u(0, wPreDone), u(0), u(0, wStale, wPre), u(0, wDone),
			u(0), u(0, wNext), u(0), u(0, wLate),
		},
	})
	sys.Rules = append(sys.Rules, Rule{
		Name:  "stale-post",
		Doc:   "BROKEN: a stranded source event posts `oldNow+lookahead`, which is behind the flipped window's start",
		Guard: []Atom{{wStale, GE, 1}},
		Update: []Expr{
			u(0, wPre), u(0, wPreDone), u(-1, wStale), u(0, wRun),
			u(0, wDone), u(0, wCur), u(0, wNext), u(1, wLate),
		},
	})
	return sys
}

// --- Model 6: TM commit protocol (internal/tm, TL2-style lazy versioning) ---

// TM variable indices. The abstraction is word-centric: one transactional
// word observed across ω concurrent transactions. The word carries a
// versioned lock (tLK is its lock bit, versions are abstracted into the
// valid/stale split of the readers), tCL counts transactions whose commit
// phase holds that lock, and tCW is a poison counter: it can only rise when
// a transaction with a stale read of the word commits anyway, which the
// pristine protocol never allows.
const (
	tRV = iota // transactions holding a still-valid read of the word
	tRI        // transactions whose read was invalidated by a committed write
	tCL        // transactions whose commit phase holds the word's commit lock
	tLK        // the word's versioned-lock lock bit (0 or 1)
	tCW        // committed transactions with a stale read (broken variants only)
)

// TMCommit models internal/tm's TL2 commit protocol for one word: reads
// sample the versioned lock only while it is unlocked (tm.Ctx.TryRead's
// lockword sandwich), the commit phase CAS-acquires the lock before writing
// back, a committed write-back invalidates every outstanding read of the
// word (the version moves past each reader's snapshot), and read-set
// validation at commit admits only transactions whose reads are still valid.
// Safety: no two commit phases ever hold the same word's lock (conflicting
// write sets are serialized), the lock is never leaked by an abort, and no
// transaction with an invalidated read commits.
//
// A transaction that both reads and writes the same word validates that read
// against its own held lock (tm.Ctx.TryCommit's self-owned-slot check); in
// this abstraction such a read is subsumed by the lock-acquire/write-back
// pair, so tRV counts only readers outside the word's commit phase.
func TMCommit() *System {
	const n = 5
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	return &System{
		Name: "tm-commit",
		Vars: []string{"rv", "ri", "cl", "lk", "cw"},
		Inits: []Config{
			{N(0), N(0), N(0), N(0), N(0)}, // ω idle transactions are implicit: read/lock-acquire fire unguarded
		},
		Rules: []Rule{
			{
				Name:  "read",
				Doc:   "tm.Ctx.TryRead: load lockword (unlocked, version <= rv), load value, re-load lockword unchanged — the read is recorded valid",
				Guard: []Atom{{tLK, EQ, 0}},
				Update: []Expr{
					u(1, tRV), u(0, tRI), u(0, tCL), u(0, tLK), u(0, tCW),
				},
			},
			{
				Name:  "lock-acquire",
				Doc:   "tm.Ctx.TryCommit lock phase: CAS the word's versioned lock from unlocked to locked (sorted slot order); the transaction enters the word's commit phase",
				Guard: []Atom{{tLK, EQ, 0}},
				Update: []Expr{
					u(0, tRV), u(0, tRI), u(1, tCL), u(1, tLK), u(0, tCW),
				},
			},
			{
				Name:  "write-back-release",
				Doc:   "tm.Ctx.TryCommit write-back: store the buffered value, then store wv<<1 (unlocked, advanced version) — every outstanding read of the word becomes stale",
				Guard: []Atom{{tCL, GE, 1}},
				Update: []Expr{
					u(0), u(0, tRI, tRV), u(-1, tCL), u(-1, tLK), u(0, tCW),
				},
			},
			{
				Name:  "abort-release",
				Doc:   "tm.Ctx.abortCommit: validation failed or a later slot's lock was busy — every already-acquired lock is restored to its pre-CAS word (same version, unlocked)",
				Guard: []Atom{{tCL, GE, 1}},
				Update: []Expr{
					u(0, tRV), u(0, tRI), u(-1, tCL), u(-1, tLK), u(0, tCW),
				},
			},
			{
				Name:  "validate-commit",
				Doc:   "tm.Ctx.TryCommit validation: the word's lockword is re-loaded unlocked and unchanged since TryRead — the reader's commit proceeds",
				Guard: []Atom{{tRV, GE, 1}, {tLK, EQ, 0}},
				Update: []Expr{
					u(-1, tRV), u(0, tRI), u(0, tCL), u(0, tLK), u(0, tCW),
				},
			},
			{
				Name:  "validate-abort",
				Doc:   "tm.Ctx.TryCommit validation: the word's version moved (or its lock is held by another commit) — the stale reader aborts and retries",
				Guard: []Atom{{tRI, GE, 1}},
				Update: []Expr{
					u(0, tRV), u(-1, tRI), u(0, tCL), u(0, tLK), u(0, tCW),
				},
			},
		},
		Unsafe: []Pred{
			{Name: "two-commit-writers", Atoms: []Atom{{tCL, GE, 2}}},
			{Name: "lock-leak", Atoms: []Atom{{tLK, GE, 1}, {tCL, EQ, 0}}},
			{Name: "stale-commit", Atoms: []Atom{{tCW, GE, 1}}},
		},
	}
}

// TMNoValidate is the abstract counterpart of tm.Lib's broken-validation
// toggle (syncrt.Lib.TMNoValidate): commit skips read-set validation, so a
// transaction whose read was invalidated by a concurrent committed write
// commits anyway. Must verify Unsafe (witness: read, lock-acquire,
// write-back-release, then the stale reader commits).
func TMNoValidate() *System {
	sys := brokenCopy(TMCommit(), "no-validate")
	const n = 5
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	replaceRule(sys, "validate-abort", Rule{
		Name:  "validate-abort",
		Doc:   "BROKEN (TMNoValidate): the stale read is never re-checked — the transaction commits on an invalidated snapshot",
		Guard: []Atom{{tRI, GE, 1}},
		Update: []Expr{
			u(0, tRV), u(-1, tRI), u(0, tCL), u(0, tLK), u(1, tCW),
		},
	})
	return sys
}

// TMLockLeak breaks the abort path: a failed commit releases its bookkeeping
// but forgets to restore the word's lock bit. Must verify Unsafe
// (lock-leak: the word stays locked with no commit phase owning it).
func TMLockLeak() *System {
	sys := brokenCopy(TMCommit(), "lock-leak")
	const n = 5
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	replaceRule(sys, "abort-release", Rule{
		Name:  "abort-release",
		Doc:   "BROKEN: the abort path drops the commit phase without storing the original lockword back",
		Guard: []Atom{{tCL, GE, 1}},
		Update: []Expr{
			u(0, tRV), u(0, tRI), u(-1, tCL), u(0, tLK), u(0, tCW),
		},
	})
	return sys
}

// TMBlindAcquire breaks the lock phase: the commit writes the locked word
// without the CAS's compare, so two commit phases can hold the same word's
// lock and interleave their write-backs. Must verify Unsafe.
func TMBlindAcquire() *System {
	sys := brokenCopy(TMCommit(), "blind-acquire")
	const n = 5
	u := func(c int, vars ...int) Expr { return sum(n, c, vars...) }
	replaceRule(sys, "lock-acquire", Rule{
		Name:  "lock-acquire",
		Doc:   "BROKEN: the commit lock is taken with a plain store (CAS without compare) — a second commit phase acquires a held lock",
		Guard: nil,
		Update: []Expr{
			u(0, tRV), u(0, tRI), u(1, tCL), u(1, tLK), u(0, tCW),
		},
	})
	return sys
}
