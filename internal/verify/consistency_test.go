package verify_test

// Consistency between the RUNTIME detection layer (internal/fault's online
// checker, exercised by chaos campaigns) and the STATIC certification layer
// (internal/verify's models):
//
//   - The kind <-> model mapping must be total in both directions: every
//     violation kind the checker can emit names at least one shipped model
//     that certifies that invariant, and every invariant a model declares is
//     a real checker kind. fault.ModelsFor and Model.Invariants are
//     maintained independently (fault cannot import verify), so this test is
//     what keeps them from drifting.
//
//   - Detection power must be mirrored: for every violation kind actually
//     observed in a faulted broken-OMU chaos campaign, some model certifying
//     that invariant has a deliberately-broken variant the explorer flags
//     Unsafe. A runtime failure class with no statically-refutable model
//     would mean the certification story has a hole.

import (
	"runtime"
	"testing"

	"misar/internal/chaos"
	"misar/internal/fault"
	"misar/internal/verify"
)

// modelsByInvariant indexes the shipped models by the checker kind names
// they certify.
func modelsByInvariant(t *testing.T) map[string][]verify.Model {
	t.Helper()
	idx := map[string][]verify.Model{}
	for _, m := range verify.Models() {
		for _, inv := range m.Invariants {
			idx[inv] = append(idx[inv], m)
		}
	}
	return idx
}

func TestInvariantMappingTotal(t *testing.T) {
	idx := modelsByInvariant(t)

	// Forward: every checker kind -> at least one certifying model, and
	// fault.ModelsFor agrees exactly with the models' own declarations.
	for _, k := range fault.Kinds() {
		var declared []string
		for _, m := range idx[k.String()] {
			declared = append(declared, m.System.Name)
		}
		if len(declared) == 0 {
			t.Errorf("checker kind %q: no shipped model declares it", k)
			continue
		}
		mapped := fault.ModelsFor(k)
		if len(mapped) != len(declared) {
			t.Errorf("kind %q: fault.ModelsFor says %v, models declare %v", k, mapped, declared)
			continue
		}
		for _, name := range mapped {
			found := false
			for _, d := range declared {
				if d == name {
					found = true
				}
			}
			if !found {
				t.Errorf("kind %q: fault.ModelsFor names %q but that model does not declare the invariant", k, name)
			}
		}
	}

	// Backward: every invariant a model declares is a real checker kind.
	known := map[string]bool{}
	for _, k := range fault.Kinds() {
		known[k.String()] = true
	}
	for _, m := range verify.Models() {
		for _, inv := range m.Invariants {
			if !known[inv] {
				t.Errorf("model %q declares invariant %q, which no checker kind emits", m.System.Name, inv)
			}
		}
	}
}

// TestChaosViolationsMapToUnsafeModels runs the faulted broken-OMU campaign
// and closes the loop: every violation class the runtime checker reported
// must map to a model whose broken variant the static explorer refutes.
func TestChaosViolationsMapToUnsafeModels(t *testing.T) {
	seeds := int64(50)
	if testing.Short() {
		seeds = 10
	}
	outs := chaos.Campaign(0, seeds, runtime.GOMAXPROCS(0),
		chaos.Options{Faults: true, BrokenOMU: true}, nil)

	observed := map[fault.ViolationKind]int{}
	for _, o := range outs {
		for _, v := range o.Violations {
			observed[v.Kind]++
		}
	}
	if len(observed) == 0 {
		t.Fatal("broken-OMU campaign produced no violations — nothing to cross-check")
	}
	if observed[fault.ViolationExclusivity] == 0 {
		t.Error("campaign with the OMU check disabled never tripped omu-exclusivity")
	}

	idx := modelsByInvariant(t)
	for kind, n := range observed {
		t.Logf("observed %dx %s", n, kind)
		refuted := false
		for _, m := range idx[kind.String()] {
			for _, b := range m.Broken {
				res, err := verify.Explore(b)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Safe {
					refuted = true
				}
			}
		}
		if !refuted {
			t.Errorf("runtime violation %q: no certifying model has a broken variant the explorer flags Unsafe", kind)
		}
	}
}
