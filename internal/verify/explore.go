package verify

import "fmt"

// Step is one fired rule in a witness trace, with the configuration it
// produced.
type Step struct {
	Rule   string `json:"rule"`
	Config string `json:"config"`
}

// Result is the outcome of one exhaustive exploration.
type Result struct {
	System   string `json:"system"`
	Vars     string `json:"vars"`
	Safe     bool   `json:"safe"`
	Explored int    `json:"explored"` // distinct abstract configurations
	Depth    int    `json:"depth"`    // longest shortest-path from an init
	// Saturated reports whether ω-saturation fired anywhere. The shipped
	// protocol models are designed so the counters appearing in guards and
	// Unsafe predicates never saturate; when Saturated is false and every
	// init is finite, the abstract search is exact, not approximate.
	Saturated bool `json:"saturated"`
	// On Unsafe: the predicate that matched, the initial configuration the
	// witness starts from, and the rule sequence reaching the violation.
	Unsafe  string `json:"unsafe_pred,omitempty"`
	Init    string `json:"init,omitempty"`
	Witness []Step `json:"witness,omitempty"`
}

// MaxConfigs bounds one exploration. The abstract domain is finite —
// (2·(Θ+1))^|vars| configurations at most — so the bound only guards
// against pathological hand-written systems.
const MaxConfigs = 2_000_000

// pred links a configuration back to its BFS parent for witness extraction.
type pred struct {
	parent string // key of the predecessor config ("" for inits)
	rule   string
	cfg    Config
	depth  int
}

// Explore exhaustively enumerates the reachable abstract configurations of
// the system, breadth-first, and reports Safe or Unsafe (with a
// shortest-path witness). The search is a sound over-approximation of any
// concrete instantiation: Safe certifies the Unsafe predicates unreachable
// for every thread count covered by the initial configurations.
func Explore(s *System) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	theta := s.theta()
	res := &Result{System: s.Name, Safe: true, Vars: varList(s.Vars)}

	seen := make(map[string]pred)
	var frontier []string
	for _, init := range s.Inits {
		c := init.clone()
		if normalize(c, theta) {
			res.Saturated = true
		}
		k := c.key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = pred{cfg: c}
		frontier = append(frontier, k)
		if p := s.unsafeAt(c); p != "" {
			return s.unsafeResult(res, seen, k, p), nil
		}
	}

	for len(frontier) > 0 {
		var next []string
		for _, k := range frontier {
			cur := seen[k]
			for _, r := range s.Rules {
				succ, sat := s.apply(cur.cfg, r)
				if sat {
					res.Saturated = true
				}
				for _, post := range succ {
					pk := post.key()
					if _, ok := seen[pk]; ok {
						continue
					}
					if len(seen) >= MaxConfigs {
						return nil, fmt.Errorf("verify: system %q exceeded %d abstract configurations", s.Name, MaxConfigs)
					}
					seen[pk] = pred{parent: k, rule: r.Name, cfg: post, depth: cur.depth + 1}
					next = append(next, pk)
					if p := s.unsafeAt(post); p != "" {
						return s.unsafeResult(res, seen, pk, p), nil
					}
				}
			}
		}
		frontier = next
	}
	res.Explored = len(seen)
	for _, p := range seen {
		if p.depth > res.Depth {
			res.Depth = p.depth
		}
	}
	return res, nil
}

// unsafeResult finalizes a Result for an Unsafe configuration, extracting
// the rule trace from the BFS predecessor links.
func (s *System) unsafeResult(res *Result, seen map[string]pred, key, predName string) *Result {
	res.Safe = false
	res.Unsafe = predName
	res.Explored = len(seen)
	var steps []Step
	k := key
	for {
		p := seen[k]
		if p.parent == "" && p.rule == "" {
			res.Init = p.cfg.String()
			break
		}
		steps = append(steps, Step{Rule: p.rule, Config: p.cfg.String()})
		k = p.parent
	}
	// Reverse into init→violation order.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	res.Witness = steps
	res.Depth = len(steps)
	return res
}

func varList(vars []string) string {
	out := ""
	for i, v := range vars {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}
