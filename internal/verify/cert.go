package verify

import (
	"encoding/json"
	"fmt"
	"sort"
)

// CertSchema identifies the JSON certificate format emitted by misar-verify.
const CertSchema = "misar-verify/v1"

// ModelResult is one model's certification outcome inside a Certificate.
type ModelResult struct {
	Result
	Rules int `json:"rules"`
	// Invariants are the runtime fault.Checker violation classes this model
	// certifies (empty for broken variants, which certify nothing).
	Invariants []string `json:"invariants,omitempty"`
	// Broken marks a deliberately-injected-bug variant: for these, Safe
	// would mean the checker lost detection power.
	Broken bool `json:"broken,omitempty"`
}

// Certificate is the full output of a certification run over the shipped
// models: every pristine model explored exhaustively, plus every broken
// variant as a detection self-test.
type Certificate struct {
	Schema string        `json:"schema"`
	Models []ModelResult `json:"models"`
	// OK is true when every pristine model is Safe and every broken variant
	// is Unsafe.
	OK bool `json:"ok"`
}

// Certify explores every shipped model and broken variant and assembles the
// certificate. It returns an error only on engine failure (state-space
// blowup, malformed system), not on an Unsafe verdict — that is reported
// through the certificate.
func Certify() (*Certificate, error) {
	cert := &Certificate{Schema: CertSchema, OK: true}
	for _, m := range Models() {
		res, err := Explore(m.System)
		if err != nil {
			return nil, err
		}
		inv := append([]string(nil), m.Invariants...)
		sort.Strings(inv)
		cert.Models = append(cert.Models, ModelResult{Result: *res, Rules: len(m.System.Rules), Invariants: inv})
		if !res.Safe {
			cert.OK = false
		}
		for _, b := range m.Broken {
			bres, err := Explore(b)
			if err != nil {
				return nil, err
			}
			cert.Models = append(cert.Models, ModelResult{Result: *bres, Rules: len(b.Rules), Broken: true})
			if bres.Safe {
				cert.OK = false
			}
		}
	}
	return cert, nil
}

// MarshalIndent renders the certificate as indented JSON.
func (c *Certificate) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Summary renders a one-line human verdict per model, witness traces
// included for unexpected verdicts (pristine Unsafe, broken Safe).
func (c *Certificate) Summary() string {
	out := ""
	for _, m := range c.Models {
		verdict := "SAFE"
		if !m.Safe {
			verdict = "UNSAFE"
		}
		status := "ok"
		if m.Safe == m.Broken {
			status = "FAIL"
		}
		out += fmt.Sprintf("%-6s %-32s %s  explored=%d depth=%d\n", status, m.System, verdict, m.Explored, m.Depth)
		if m.Safe == m.Broken && !m.Safe {
			out += WitnessString(&m.Result)
		}
	}
	return out
}

// WitnessString renders an Unsafe result's trace, one rule per line.
func WitnessString(r *Result) string {
	if r.Safe {
		return ""
	}
	out := fmt.Sprintf("  witness for %s (predicate %q), vars (%s):\n", r.System, r.Unsafe, r.Vars)
	out += fmt.Sprintf("    init  %s\n", r.Init)
	for i, st := range r.Witness {
		out += fmt.Sprintf("    %2d. %-24s -> %s\n", i+1, st.Rule, st.Config)
	}
	return out
}
