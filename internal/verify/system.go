// Package verify is a small, dependency-free counter-system model checker
// in the style of the staged-mrsc counter systems (SNIPPETS.md snippet 1):
// a protocol is modeled as a vector of counters over an unbounded-thread
// abstraction, with guarded linear rewrite rules and declared Unsafe
// predicates, and certified by exhaustive reachability search over the
// abstract configuration space.
//
// The abstract domain per counter is either an exact natural number or the
// upward-closed interval [lo, ∞) — written ω when lo is 0 — so "arbitrarily
// many threads" is a single abstract value and the configuration space is
// finite. Guards refine interval values before a rule fires (a rule guarded
// on x == 0 fires on x = [0,∞) by splitting off the x = 0 member), which
// keeps the abstraction precise enough to certify the shipped protocol
// models exactly while remaining a sound over-approximation: the checker
// can report a false Unsafe, never a false Safe. See DESIGN.md §12.
package verify

import (
	"fmt"
	"strings"
)

// Val is an abstract counter value: an exact natural number (Inf false), or
// the interval [Lo, ∞) of all naturals ≥ Lo (Inf true). Omega — any natural
// number at all — is the interval [0, ∞).
type Val struct {
	Lo  int
	Inf bool
}

// Omega is the unbounded-thread start value: any natural number.
var Omega = Val{Lo: 0, Inf: true}

// N is the exact value n.
func N(n int) Val {
	if n < 0 {
		panic("verify: negative counter value")
	}
	return Val{Lo: n}
}

// AtLeast is the interval [n, ∞).
func AtLeast(n int) Val {
	if n < 0 {
		n = 0
	}
	return Val{Lo: n, Inf: true}
}

// Contains reports whether the abstract value covers the concrete count n.
func (v Val) Contains(n int) bool {
	if n < 0 {
		return false
	}
	if v.Inf {
		return n >= v.Lo
	}
	return n == v.Lo
}

func (v Val) String() string {
	if !v.Inf {
		return fmt.Sprintf("%d", v.Lo)
	}
	if v.Lo == 0 {
		return "ω"
	}
	return fmt.Sprintf("ω≥%d", v.Lo)
}

// Config is one abstract configuration: one Val per system variable.
type Config []Val

func (c Config) String() string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// clone returns an independent copy.
func (c Config) clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// key encodes the configuration for the visited set. Lo values are bounded
// by the saturation threshold, so two bytes per variable suffice.
func (c Config) key() string {
	b := make([]byte, 0, 2*len(c))
	for _, v := range c {
		inf := byte(0)
		if v.Inf {
			inf = 1
		}
		b = append(b, inf, byte(v.Lo))
	}
	return string(b)
}

// Expr is a linear combination of system variables plus a constant:
// sum(Coef[i] * var[i]) + Const. Coefficients must be non-negative (the
// counter-system idiom expresses decrements through the constant, e.g. the
// MESI rule "i + s + e + m - 1"); evaluation rejects negative coefficients
// so interval lower bounds stay sound.
type Expr struct {
	Coef  []int
	Const int
}

// eval computes the abstract value of the expression under cfg. ok is false
// when the result is provably negative (the rule cannot fire concretely).
func (e Expr) eval(cfg Config, nvars int) (Val, bool) {
	lo := e.Const
	inf := false
	for i, k := range e.Coef {
		if k == 0 {
			continue
		}
		if k < 0 {
			panic("verify: negative coefficient in update expression")
		}
		v := cfg[i]
		lo += k * v.Lo
		if v.Inf {
			inf = true
		}
	}
	if !inf && lo < 0 {
		return Val{}, false // exact negative: blocked
	}
	if lo < 0 {
		lo = 0 // interval dipping below zero clamps to [0, ∞)
	}
	return Val{Lo: lo, Inf: inf}, true
}

// CmpOp is a guard comparison operator.
type CmpOp uint8

const (
	GE CmpOp = iota // var >= C
	EQ              // var == C
	LE              // var <= C
)

func (op CmpOp) String() string {
	switch op {
	case GE:
		return ">="
	case EQ:
		return "=="
	case LE:
		return "<="
	}
	return "?"
}

// Atom is one guard conjunct over a single variable: var Op C. Restricting
// atoms to single variables keeps guard refinement exact (each atom can
// split an interval value into its satisfying members).
type Atom struct {
	Var int
	Op  CmpOp
	C   int
}

// sat reports whether some concrete member of v satisfies the atom.
func (a Atom) sat(v Val) bool {
	if v.Inf {
		switch a.Op {
		case GE:
			return true // unbounded above
		case EQ:
			return a.C >= v.Lo
		case LE:
			return v.Lo <= a.C
		}
	}
	switch a.Op {
	case GE:
		return v.Lo >= a.C
	case EQ:
		return v.Lo == a.C
	case LE:
		return v.Lo <= a.C
	}
	return false
}

// refine returns the abstract values covering exactly the members of v that
// satisfy the atom (empty when none do). An interval refined by LE or EQ
// collapses to exact values; refinement by GE stays an interval.
func (a Atom) refine(v Val) []Val {
	if !a.sat(v) {
		return nil
	}
	if !v.Inf {
		return []Val{v}
	}
	switch a.Op {
	case GE:
		lo := v.Lo
		if a.C > lo {
			lo = a.C
		}
		return []Val{{Lo: lo, Inf: true}}
	case EQ:
		return []Val{{Lo: a.C}}
	case LE:
		out := make([]Val, 0, a.C-v.Lo+1)
		for n := v.Lo; n <= a.C; n++ {
			out = append(out, Val{Lo: n})
		}
		return out
	}
	return nil
}

// Rule is one guarded rewrite: when every Guard atom is satisfiable, the
// configuration is refined through the guard and every counter is rewritten
// to its Update expression. Doc names the concrete transition in the
// simulator this abstract rule models (the bridge tests assert the mapping).
type Rule struct {
	Name   string
	Doc    string
	Guard  []Atom
	Update []Expr
}

// Pred is one named Unsafe predicate: a conjunction of atoms. A system is
// Unsafe when any reachable configuration satisfies any predicate.
type Pred struct {
	Name  string
	Atoms []Atom
}

// System is a complete counter system.
type System struct {
	Name string
	// Vars names the counters; every Config, Expr and Atom indexes into it.
	Vars []string
	// Inits are the initial configurations (ω-threads systems start from a
	// single config with Omega in the thread pool; parameterized systems —
	// the barrier's participant count — enumerate several).
	Inits []Config
	Rules []Rule
	// Unsafe predicates, checked on every reachable configuration.
	Unsafe []Pred
	// Theta is the saturation threshold: exact values above it, and interval
	// lower bounds above it, collapse to [Theta, ∞). Zero selects a bound
	// derived from the largest constant in the system (never below 4), which
	// preserves every guard and predicate's discriminating power.
	Theta int
}

// theta resolves the saturation threshold.
func (s *System) theta() int {
	t := s.Theta
	for _, r := range s.Rules {
		for _, a := range r.Guard {
			if a.C+1 > t {
				t = a.C + 1
			}
		}
	}
	for _, p := range s.Unsafe {
		for _, a := range p.Atoms {
			if a.C+1 > t {
				t = a.C + 1
			}
		}
	}
	if t < 4 {
		t = 4
	}
	return t
}

// Validate checks structural well-formedness.
func (s *System) Validate() error {
	n := len(s.Vars)
	if n == 0 {
		return fmt.Errorf("verify: system %q has no variables", s.Name)
	}
	if len(s.Inits) == 0 {
		return fmt.Errorf("verify: system %q has no initial configurations", s.Name)
	}
	for _, c := range s.Inits {
		if len(c) != n {
			return fmt.Errorf("verify: system %q: init %v has %d values, want %d", s.Name, c, len(c), n)
		}
	}
	if len(s.Rules) == 0 {
		return fmt.Errorf("verify: system %q has no rules", s.Name)
	}
	if t := s.theta(); t > 255 {
		return fmt.Errorf("verify: system %q: saturation threshold %d exceeds 255 (config keys encode one byte per bound)", s.Name, t)
	}
	for _, c := range s.Inits {
		for _, v := range c {
			if v.Lo < 0 {
				return fmt.Errorf("verify: system %q: negative init value", s.Name)
			}
		}
	}
	names := map[string]bool{}
	for _, r := range s.Rules {
		if r.Name == "" {
			return fmt.Errorf("verify: system %q has an unnamed rule", s.Name)
		}
		if names[r.Name] {
			return fmt.Errorf("verify: system %q: duplicate rule %q", s.Name, r.Name)
		}
		names[r.Name] = true
		if len(r.Update) != n {
			return fmt.Errorf("verify: system %q rule %q: %d updates, want %d", s.Name, r.Name, len(r.Update), n)
		}
		for _, u := range r.Update {
			if len(u.Coef) != n {
				return fmt.Errorf("verify: system %q rule %q: update with %d coefficients, want %d", s.Name, r.Name, len(u.Coef), n)
			}
			for _, k := range u.Coef {
				if k < 0 {
					return fmt.Errorf("verify: system %q rule %q: negative coefficient", s.Name, r.Name)
				}
			}
		}
		for _, a := range r.Guard {
			if a.Var < 0 || a.Var >= n {
				return fmt.Errorf("verify: system %q rule %q: guard variable %d out of range", s.Name, r.Name, a.Var)
			}
		}
	}
	if len(s.Unsafe) == 0 {
		return fmt.Errorf("verify: system %q declares no Unsafe predicates", s.Name)
	}
	for _, p := range s.Unsafe {
		if len(p.Atoms) == 0 {
			return fmt.Errorf("verify: system %q: unsafe predicate %q has no atoms", s.Name, p.Name)
		}
		for _, a := range p.Atoms {
			if a.Var < 0 || a.Var >= n {
				return fmt.Errorf("verify: system %q: unsafe predicate %q variable out of range", s.Name, p.Name)
			}
		}
	}
	return nil
}

// normalize saturates cfg in place against the threshold: any value whose
// lower bound exceeds theta becomes [theta, ∞). This keeps the reachable
// abstract space finite; it can only enlarge the represented set, so a Safe
// verdict remains sound. sat reports whether saturation changed anything.
func normalize(cfg Config, theta int) (saturated bool) {
	for i, v := range cfg {
		if v.Lo > theta {
			cfg[i] = Val{Lo: theta, Inf: true}
			saturated = true
		}
	}
	return saturated
}

// refineAll splits cfg through the guard atoms, returning every maximal
// sub-configuration on which all atoms hold (empty when the guard is
// unsatisfiable). Atoms constrain single variables, so refinement is a
// per-variable product; LE atoms over intervals fan out into exact values.
func refineAll(cfg Config, guard []Atom) []Config {
	out := []Config{cfg}
	for _, a := range guard {
		var next []Config
		for _, c := range out {
			for _, rv := range a.refine(c[a.Var]) {
				if rv == c[a.Var] {
					next = append(next, c)
					continue
				}
				rc := c.clone()
				rc[a.Var] = rv
				next = append(next, rc)
			}
		}
		if len(next) == 0 {
			return nil
		}
		out = next
	}
	return out
}

// unsafeAt returns the name of the first Unsafe predicate some member of
// cfg satisfies, or "".
func (s *System) unsafeAt(cfg Config) string {
	for _, p := range s.Unsafe {
		if len(refineAll(cfg, p.Atoms)) > 0 {
			return p.Name
		}
	}
	return ""
}

// Apply fires the named rule on cfg and returns the successor
// configurations after guard refinement and saturation (nil when the guard
// is unsatisfiable or the rule would drive a counter negative). The bridge
// tests use it to replay concrete machine transitions rule by rule.
func (s *System) Apply(cfg Config, rule string) []Config {
	for _, r := range s.Rules {
		if r.Name == rule {
			succ, _ := s.apply(cfg, r)
			return succ
		}
	}
	panic(fmt.Sprintf("verify: system %q has no rule %q", s.Name, rule))
}

func (s *System) apply(cfg Config, r Rule) (out []Config, saturated bool) {
	theta := s.theta()
	n := len(s.Vars)
	for _, rc := range refineAll(cfg, r.Guard) {
		post := make(Config, n)
		ok := true
		for i, u := range r.Update {
			v, valid := u.eval(rc, n)
			if !valid {
				ok = false
				break
			}
			post[i] = v
		}
		if !ok {
			continue
		}
		if normalize(post, theta) {
			saturated = true
		}
		out = append(out, post)
	}
	return out, saturated
}
