package verify_test

// The bridge tests keep the abstract models in internal/verify honest: each
// scenario drives the CONCRETE simulator (coherence rig, MSA slice rig, or a
// full machine) through a sequence of transitions, declares which abstract
// rule(s) each transition corresponds to, folds those rules through
// System.Apply, and asserts that the concrete state's abstraction is covered
// by the abstract post-state. A model that drifts from the simulator — a
// renamed transition, a changed guard, a different update — fails here.
//
// TestBridgeRuleCoverage additionally asserts that the union of declared
// rules across scenarios covers EVERY rule of every shipped model, so no
// abstract rule exists without a concrete counterpart being exercised.

import (
	"testing"

	"misar/internal/coherence"
	"misar/internal/core"
	"misar/internal/cpu"
	"misar/internal/fault"
	"misar/internal/isa"
	"misar/internal/machine"
	"misar/internal/memory"
	"misar/internal/noc"
	"misar/internal/sim"
	"misar/internal/syncrt"
	"misar/internal/tm"
	"misar/internal/verify"
)

// --- abstract-side helpers ---

func mustModel(t *testing.T, name string) *verify.System {
	t.Helper()
	m, ok := verify.ModelByName(name)
	if !ok {
		t.Fatalf("no shipped model %q", name)
	}
	return m.System
}

func initSet(sys *verify.System) []verify.Config {
	out := make([]verify.Config, 0, len(sys.Inits))
	for _, c := range sys.Inits {
		out = append(out, append(verify.Config{}, c...))
	}
	return out
}

// fold fires each rule (in order) on every configuration of the set,
// replacing the set with the union of successors.
func fold(t *testing.T, sys *verify.System, set []verify.Config, rules []string) []verify.Config {
	t.Helper()
	for _, r := range rules {
		var next []verify.Config
		seen := map[string]bool{}
		for _, c := range set {
			for _, succ := range sys.Apply(c, r) {
				k := succ.String()
				if !seen[k] {
					seen[k] = true
					next = append(next, succ)
				}
			}
		}
		if len(next) == 0 {
			t.Fatalf("%s: abstract rule %q not fireable from %v", sys.Name, r, set)
		}
		set = next
	}
	return set
}

func covers(c verify.Config, conc []int) bool {
	for i, v := range c {
		if !v.Contains(conc[i]) {
			return false
		}
	}
	return true
}

// narrow keeps the abstract configurations covering the concrete
// abstraction, failing the test when none does — the core bridge assertion.
func narrow(t *testing.T, sys *verify.System, set []verify.Config, conc []int, step string) []verify.Config {
	t.Helper()
	var out []verify.Config
	for _, c := range set {
		if covers(c, conc) {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		t.Fatalf("%s, step %q: concrete abstraction %v not covered by any abstract config in %v",
			sys.Name, step, conc, set)
	}
	return out
}

// --- declared rule sequences (also consumed by TestBridgeRuleCoverage) ---

var mesiBasicRules = [][]string{
	{"read-cold"}, {"write-hit-e"}, {"read-owner-m"}, {"read-shared"},
	{"write-from-i"}, {"read-owner-m"}, {"write-from-s"}, {"revoke"},
	{"grant"}, {"read-owner-e"},
}

var mesiEvictRules = [][]string{
	{"read-cold"}, {"evict-e"}, {"write-from-i"}, {"writeback-m"},
	{"read-cold"}, {"read-owner-e"}, {"evict-s"},
}

var lockHWRules = [][]string{
	{"alloc-grant"}, {"hw-enqueue"}, {"hw-enqueue"}, {"hw-requeue"},
	{"hw-unlock", "hw-promote"}, {"hw-unlock", "retire"},
}

var omuHWRules = [][]string{
	{"alloc", "hw-complete"}, {"hw-join"}, {"hw-join"}, {"hw-complete"},
	{"hw-complete"}, {"retire"},
}

var lockSteerRules = [][]string{
	nil, {"steer"}, {"steer"}, nil, {"steer"},
	{"sw-finish"}, {"sw-finish"}, {"sw-finish"},
}

var omuSteerRules = [][]string{
	nil, {"sw-steer"}, {"sw-steer"}, nil, {"sw-steer"},
	{"sw-finish"}, {"sw-finish"}, {"sw-finish"},
}

var lockAbortRules = [][]string{
	{"alloc-grant"}, {"hw-enqueue"},
	{"abort", "steer-drain", "drain-done"},
	{"sw-finish"}, {"sw-finish"},
}

var omuAbortRules = [][]string{
	{"alloc", "hw-complete"}, {"hw-join"},
	{"abort", "sw-steer-drain", "drain-done"},
	{"sw-finish"}, {"sw-finish"},
}

var lockSWRules = [][]string{
	{"steer", "sw-acquire"}, {"sw-release", "sw-finish"},
}

var omuSWRules = [][]string{
	{"sw-steer"}, {"sw-finish"},
}

var barrierRules = [][]string{
	{"arrive"}, {"arrive"}, {"arrive", "release"},
	{"next-arrive"}, {"next-arrive"}, {"next-arrive", "shift", "release", "shift"},
}

// windowRules is the three-window shard-bridge script: window work steps
// alternate with coordinator flips. The final flip is intentionally absent —
// after the last scripted window the recycled-token flip would predict the
// NEXT window's load, and there is none.
var windowRules = [][]string{
	{"send-exec", "send-exec", "send-post", "recv-exec", "recv-exec"},
	{"window-flip"},
	{"send-exec", "send-post", "recv-exec", "recv-exec", "deliver"},
	{"window-flip"},
	{"send-exec", "recv-exec", "recv-exec", "recv-exec", "deliver"},
}

var omuBarrierRules = [][]string{
	{"alloc"}, {"hw-join"}, {"hw-join", "hw-complete", "hw-complete", "hw-complete", "retire"},
	{"alloc"}, {"hw-join"}, {"hw-join", "hw-complete", "hw-complete", "hw-complete", "retire"},
}

// tmRules is the tm-commit bridge script (TestBridgeTMCommit): the abstract
// rules the tracked word w undergoes at each of the 8 choreographed steps.
// The nil steps touch only words in other lock slots, so no w rule fires.
var tmRules = [][]string{
	{"read"},                               // 1: T1 opens and reads w
	{"lock-acquire", "abort-release"},      // 2: T0 locks w's slot, aborts on x's busy slot
	nil,                                    // 3: T0 releases the seeded x lock (raw store)
	{"lock-acquire", "write-back-release"}, // 4: T0 commits w=7, invalidating T1's read
	{"validate-abort"},                     // 5: T1's commit validates w stale and aborts
	{"read"},                               // 6: T1 re-reads the committed w
	nil,                                    // 7: T0 commits z (w's slot untouched)
	{"validate-commit"},                    // 8: T1's commit re-validates w fresh
}

func TestBridgeRuleCoverage(t *testing.T) {
	declared := map[string][][]string{
		"mesi":            append(append([][]string{}, mesiBasicRules...), mesiEvictRules...),
		"msa-lock-mutex":  concatRules(lockHWRules, lockSteerRules, lockAbortRules, lockSWRules),
		"omu-exclusivity": concatRules(omuHWRules, omuSteerRules, omuAbortRules, omuSWRules, omuBarrierRules),
		"barrier-epoch":   barrierRules,
		"window-protocol": windowRules,
		"tm-commit":       tmRules,
	}
	for name, steps := range declared {
		sys := mustModel(t, name)
		used := map[string]bool{}
		for _, step := range steps {
			for _, r := range step {
				used[r] = true
			}
		}
		for _, r := range sys.Rules {
			if !used[r.Name] {
				t.Errorf("%s: rule %q has no concrete bridge scenario exercising it", name, r.Name)
			}
		}
		for r := range used {
			found := false
			for _, mr := range sys.Rules {
				if mr.Name == r {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: bridge declares unknown rule %q", name, r)
			}
		}
	}
}

func concatRules(lists ...[][]string) [][]string {
	var out [][]string
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// --- MESI bridge (internal/coherence, exported API only) ---

type cohRig struct {
	engine *sim.Engine
	store  *memory.Store
	l1     []*coherence.L1
	dir    []*coherence.Directory
}

func newCohRig(tiles int, cfg coherence.L1Config) *cohRig {
	w := 1
	for w*w < tiles {
		w++
	}
	e := sim.NewEngine()
	n := noc.New(e, noc.DefaultConfig(w, (tiles+w-1)/w))
	r := &cohRig{engine: e, store: memory.NewStore(),
		l1:  make([]*coherence.L1, tiles),
		dir: make([]*coherence.Directory, tiles)}
	for i := 0; i < tiles; i++ {
		i := i
		send := func(dst int, m *coherence.Msg) {
			n.Send(&noc.Message{Src: i, Dst: dst, Bytes: m.Bytes(), Payload: m})
		}
		r.l1[i] = coherence.NewL1(i, tiles, cfg, e, r.store, send)
		r.dir[i] = coherence.NewDirectory(i, tiles, coherence.DefaultDirConfig(), e, send)
		n.Attach(i, func(nm *noc.Message) {
			m := nm.Payload.(*coherence.Msg)
			switch m.Kind {
			case coherence.RspDataS, coherence.RspDataE, coherence.MsgInv, coherence.MsgFwd:
				r.l1[i].Handle(m)
			default:
				r.dir[i].Handle(m)
			}
		})
	}
	return r
}

// abstractMESI counts cores per line state for addr: (i, s, e, m).
func (r *cohRig) abstractMESI(a memory.Addr) []int {
	conc := []int{0, 0, 0, 0}
	for _, l1 := range r.l1 {
		switch l1.State(a) {
		case coherence.Invalid:
			conc[0]++
		case coherence.Shared:
			conc[1]++
		case coherence.Exclusive:
			conc[2]++
		case coherence.Modified:
			conc[3]++
		}
	}
	return conc
}

// step drives fn at the next engine instant and runs to quiescence.
func (r *cohRig) step(t *testing.T, fn func()) {
	t.Helper()
	r.engine.At(r.engine.Now()+1, fn)
	if !r.engine.RunUntil(50_000_000) {
		t.Fatal("coherence rig did not quiesce")
	}
}

func TestBridgeMESIBasic(t *testing.T) {
	sys := mustModel(t, "mesi")
	r := newCohRig(4, coherence.DefaultL1Config())
	a := memory.Addr(0x1000)
	home := memory.HomeOf(a, 4)
	drives := []func(){
		func() { r.l1[0].Access(a, coherence.AccLoad, 0, nil, func(uint64) {}) },
		func() { r.l1[0].Access(a, coherence.AccStore, 1, nil, func(uint64) {}) },
		func() { r.l1[1].Access(a, coherence.AccLoad, 0, nil, func(uint64) {}) },
		func() { r.l1[2].Access(a, coherence.AccLoad, 0, nil, func(uint64) {}) },
		func() { r.l1[3].Access(a, coherence.AccStore, 2, nil, func(uint64) {}) },
		func() { r.l1[0].Access(a, coherence.AccLoad, 0, nil, func(uint64) {}) },
		func() { r.l1[0].Access(a, coherence.AccStore, 3, nil, func(uint64) {}) },
		func() { r.dir[home].Revoke(memory.LineOf(a), func() {}) },
		func() { r.dir[home].GrantExclusive(memory.LineOf(a), 2, func() {}) },
		func() { r.l1[3].Access(a, coherence.AccLoad, 0, nil, func(uint64) {}) },
	}
	set := initSet(sys)
	for i, drive := range drives {
		r.step(t, drive)
		set = fold(t, sys, set, mesiBasicRules[i])
		set = narrow(t, sys, set, r.abstractMESI(a), mesiBasicRules[i][0])
	}
}

func TestBridgeMESIEvictions(t *testing.T) {
	sys := mustModel(t, "mesi")
	// One-line caches: any access to a different line evicts addr a.
	r := newCohRig(4, coherence.L1Config{Sets: 1, Ways: 1, HitLatency: 1})
	a := memory.Addr(0x1000)
	b1, b2, b3 := a+memory.LineSize, a+2*memory.LineSize, a+3*memory.LineSize
	drives := []func(){
		func() { r.l1[0].Access(a, coherence.AccLoad, 0, nil, func(uint64) {}) },
		func() { r.l1[0].Access(b1, coherence.AccLoad, 0, nil, func(uint64) {}) }, // evicts a (clean E)
		func() { r.l1[1].Access(a, coherence.AccStore, 5, nil, func(uint64) {}) },
		func() { r.l1[1].Access(b2, coherence.AccLoad, 0, nil, func(uint64) {}) }, // writes a back (dirty M)
		func() { r.l1[2].Access(a, coherence.AccLoad, 0, nil, func(uint64) {}) },
		func() { r.l1[3].Access(a, coherence.AccLoad, 0, nil, func(uint64) {}) },
		func() { r.l1[2].Access(b3, coherence.AccLoad, 0, nil, func(uint64) {}) }, // evicts a (shared)
	}
	set := initSet(sys)
	for i, drive := range drives {
		r.step(t, drive)
		set = fold(t, sys, set, mesiEvictRules[i])
		set = narrow(t, sys, set, r.abstractMESI(a), mesiEvictRules[i][0])
	}
	if r.l1[1].Stats().Writebacks == 0 {
		t.Fatal("scenario did not exercise a dirty writeback")
	}
}

// --- MSA slice bridge (internal/core, exported API only) ---

type msaRig struct {
	engine *sim.Engine
	net    *noc.Network
	store  *memory.Store
	msa    []*core.Slice
	check  *fault.Checker
	got    [][]core.Resp
}

func newMSARig(tiles int, cfg core.Config) *msaRig {
	w := 1
	for w*w < tiles {
		w++
	}
	e := sim.NewEngine()
	n := noc.New(e, noc.DefaultConfig(w, (tiles+w-1)/w))
	r := &msaRig{engine: e, net: n, store: memory.NewStore(),
		msa:   make([]*core.Slice, tiles),
		check: fault.NewChecker(e.Now),
		got:   make([][]core.Resp, tiles)}
	l1s := make([]*coherence.L1, tiles)
	dirs := make([]*coherence.Directory, tiles)
	for i := 0; i < tiles; i++ {
		i := i
		sendCoh := func(dst int, m *coherence.Msg) {
			n.Send(&noc.Message{Src: i, Dst: dst, Bytes: m.Bytes(), Payload: m})
		}
		l1s[i] = coherence.NewL1(i, tiles, coherence.DefaultL1Config(), e, r.store, sendCoh)
		dirs[i] = coherence.NewDirectory(i, tiles, coherence.DefaultDirConfig(), e, sendCoh)
		r.msa[i] = core.NewSlice(i, tiles, cfg, e, dirs[i],
			func(c int, resp *core.Resp) {
				n.Send(&noc.Message{Src: i, Dst: c, Bytes: core.RespBytes, Payload: resp})
			},
			func(tile int, m *core.MsaMsg) {
				n.Send(&noc.Message{Src: i, Dst: tile, Bytes: core.MsaBytes, Payload: m})
			})
		r.msa[i].SetChecker(r.check)
		n.Attach(i, func(nm *noc.Message) {
			switch p := nm.Payload.(type) {
			case *coherence.Msg:
				switch p.Kind {
				case coherence.RspDataS, coherence.RspDataE, coherence.MsgInv, coherence.MsgFwd:
					l1s[i].Handle(p)
				default:
					dirs[i].Handle(p)
				}
			case *core.Resp:
				r.got[i] = append(r.got[i], *p)
			case *core.MsaMsg:
				r.msa[i].HandleMsa(p)
			case *core.Req:
				r.msa[i].HandleReq(p)
			}
		})
	}
	return r
}

func (r *msaRig) step(t *testing.T, fn func()) {
	t.Helper()
	r.engine.At(r.engine.Now()+1, fn)
	if !r.engine.RunUntil(10_000_000) {
		t.Fatal("MSA rig did not quiesce")
	}
}

func (r *msaRig) req(c int, op isa.SyncOp, addr memory.Addr, goal int) func() {
	return func() {
		home := memory.HomeOf(addr, len(r.msa))
		r.net.Send(&noc.Message{Src: c, Dst: home, Bytes: core.ReqBytes,
			Payload: &core.Req{Op: op, Addr: addr, Core: c, Goal: goal}})
	}
}

// abstractLock maps the concrete state of lock address a onto the
// msa-lock-mutex variables (el, ed, ho, hq, so, sp).
func (r *msaRig) abstractLock(a memory.Addr) []int {
	conc := []int{0, 0, 0, 0, 0, 0}
	for _, s := range r.msa {
		for _, e := range s.Snapshot() {
			if e.Typ != isa.TypeLock || e.Addr != a {
				continue
			}
			if e.Draining {
				conc[1]++
				continue
			}
			conc[0]++
			if e.Owner >= 0 {
				conc[2]++
			}
			conc[3] += e.Waiters.Count()
		}
	}
	if r.store.Load(a) != 0 {
		conc[4] = 1
	}
	conc[5] = r.check.SWLevel(a) - conc[4]
	return conc
}

// abstractOMU maps the concrete state of sync address a onto the
// omu-exclusivity variables (h, d, hw, w). hw counts threads with an
// outstanding hardware request (queued lock waiters / arrived barrier
// waiters); a granted owner's request has completed, so it is not in hw.
func (r *msaRig) abstractOMU(a memory.Addr) []int {
	conc := []int{0, 0, 0, 0}
	for _, s := range r.msa {
		for _, e := range s.Snapshot() {
			if e.Addr != a {
				continue
			}
			if e.Draining {
				conc[1]++
				continue
			}
			conc[0]++
			conc[2] += e.Waiters.Count()
		}
	}
	conc[3] = r.check.SWLevel(a)
	return conc
}

// bridgeMSAScenario folds each step's declared rules for both the lock and
// OMU models and asserts coverage of the concrete abstraction.
type msaScenario struct {
	rig      *msaRig
	addr     memory.Addr
	lockSys  *verify.System
	omuSys   *verify.System
	lockSet  []verify.Config
	omuSet   []verify.Config
	lockSeq  [][]string
	omuSeq   [][]string
	stepIdx  int
	noSWWord bool
}

func newMSAScenario(t *testing.T, rig *msaRig, addr memory.Addr, lockSeq, omuSeq [][]string) *msaScenario {
	sc := &msaScenario{rig: rig, addr: addr,
		lockSys: mustModel(t, "msa-lock-mutex"),
		omuSys:  mustModel(t, "omu-exclusivity"),
		lockSeq: lockSeq, omuSeq: omuSeq}
	sc.lockSet = initSet(sc.lockSys)
	sc.omuSet = initSet(sc.omuSys)
	return sc
}

func (sc *msaScenario) step(t *testing.T, label string, fn func()) {
	t.Helper()
	sc.rig.step(t, fn)
	if sc.lockSeq != nil {
		sc.lockSet = fold(t, sc.lockSys, sc.lockSet, sc.lockSeq[sc.stepIdx])
		sc.lockSet = narrow(t, sc.lockSys, sc.lockSet, sc.rig.abstractLock(sc.addr), label)
	}
	if sc.omuSeq != nil {
		sc.omuSet = fold(t, sc.omuSys, sc.omuSet, sc.omuSeq[sc.stepIdx])
		sc.omuSet = narrow(t, sc.omuSys, sc.omuSet, sc.rig.abstractOMU(sc.addr), label)
	}
	sc.stepIdx++
}

func (sc *msaScenario) done(t *testing.T) {
	t.Helper()
	if v := sc.rig.check.Violations(); len(v) != 0 {
		t.Fatalf("runtime checker flagged the bridge scenario: %v", v)
	}
}

// lockAddrs returns two lock addresses with the same home slice but distinct
// OMU counters, so scenarios can exhaust capacity without counter aliasing.
func lockAddrs(t *testing.T, tiles, counters int) (a, b memory.Addr) {
	a = memory.Addr(0x10000)
	for b = a + memory.Addr(tiles*memory.LineSize); ; b += memory.Addr(tiles * memory.LineSize) {
		if core.OMUIndex(b, counters) != core.OMUIndex(a, counters) {
			break
		}
		if b > a+1<<20 {
			t.Fatal("no non-aliasing address found")
		}
	}
	if memory.HomeOf(a, tiles) != memory.HomeOf(b, tiles) {
		t.Fatal("addresses not co-homed")
	}
	return a, b
}

func TestBridgeLockHW(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.HWSyncOpt = false
	rig := newMSARig(4, cfg)
	a, _ := lockAddrs(t, 4, cfg.OMUCounters)
	sc := newMSAScenario(t, rig, a, lockHWRules, omuHWRules)
	sc.step(t, "alloc-grant", rig.req(0, isa.OpLock, a, 0))
	sc.step(t, "enqueue-1", rig.req(1, isa.OpLock, a, 0))
	sc.step(t, "enqueue-2", rig.req(2, isa.OpLock, a, 0))
	sc.step(t, "requeue", rig.req(2, isa.OpSuspend, a, 0))
	sc.step(t, "unlock-promote", rig.req(0, isa.OpUnlock, a, 0))
	sc.step(t, "unlock-retire", rig.req(1, isa.OpUnlock, a, 0))
	sc.done(t)
	if got := rig.got[2]; len(got) == 0 || got[len(got)-1].Result != isa.Abort {
		t.Fatal("suspended waiter did not get the requeue ABORT")
	}
}

func TestBridgeLockSteer(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.HWSyncOpt = false
	cfg.Entries = 1
	rig := newMSARig(4, cfg)
	a, b := lockAddrs(t, 4, cfg.OMUCounters)
	home := memory.HomeOf(a, 4)
	sc := newMSAScenario(t, rig, a, lockSteerRules, omuSteerRules)
	sc.step(t, "occupy-other", rig.req(0, isa.OpLock, b, 0))
	sc.step(t, "capacity-steer", rig.req(1, isa.OpLock, a, 0))
	sc.step(t, "omu-steer", rig.req(2, isa.OpLock, a, 0))
	sc.step(t, "free-other", rig.req(0, isa.OpUnlock, b, 0))
	sc.step(t, "omu-steer-free-slot", rig.req(3, isa.OpLock, a, 0))
	sc.step(t, "finish-1", rig.req(1, isa.OpFinish, a, 0))
	sc.step(t, "finish-2", rig.req(2, isa.OpFinish, a, 0))
	sc.step(t, "finish-3", rig.req(3, isa.OpFinish, a, 0))
	sc.done(t)
	st := rig.msa[home].Stats()
	if st.CapacitySteers != 1 || st.OMUSteers != 2 {
		t.Fatalf("steer split = capacity %d / omu %d, want 1 / 2 (both causes must be exercised)",
			st.CapacitySteers, st.OMUSteers)
	}
}

func TestBridgeLockAbort(t *testing.T) {
	cfg := core.DefaultConfig() // HWSyncOpt on: the drain window is observable
	rig := newMSARig(4, cfg)
	a, _ := lockAddrs(t, 4, cfg.OMUCounters)
	home := memory.HomeOf(a, 4)
	sc := newMSAScenario(t, rig, a, lockAbortRules, omuAbortRules)
	sc.step(t, "alloc-grant", rig.req(0, isa.OpLock, a, 0))
	sc.step(t, "enqueue", rig.req(1, isa.OpLock, a, 0))
	// Migrated-owner unlock (§4.1.2) and a lock racing into the drain
	// window, back-to-back in one instant: the entry is draining (its HWSync
	// revoke is in flight) when the second request arrives.
	sc.step(t, "abort+steer-drain", func() {
		rig.msa[home].HandleReq(&core.Req{Op: isa.OpUnlock, Addr: a, Core: 3})
		if n := len(rig.msa[home].Snapshot()); n == 0 {
			t.Error("entry should be draining, not gone, inside the abort instant")
		}
		rig.msa[home].HandleReq(&core.Req{Op: isa.OpLock, Addr: a, Core: 2})
	})
	sc.step(t, "finish-1", rig.req(1, isa.OpFinish, a, 0))
	sc.step(t, "finish-2", rig.req(2, isa.OpFinish, a, 0))
	sc.done(t)
	if st := rig.msa[home].Stats(); st.Aborts == 0 {
		t.Fatal("scenario did not exercise the migrated-owner abort")
	}
}

// TestBridgeLockSoftware drives the REAL software fallback (syncrt TTS lock
// under a full machine) through steer, software acquire, software release
// and FINISH, bridging the sw-* rules to internal/syncrt.
func TestBridgeLockSoftware(t *testing.T) {
	cfg := machine.MSAOMU(2, 1)
	cfg.Invariants = true
	m := machine.New(cfg)
	a := memory.Addr(0x10000) // home slice 0
	b := memory.Addr(0x10080) // home slice 0, occupies the single entry
	arena := syncrt.NewArena(0x100000)
	qnodes := []memory.Addr{arena.QNode(), arena.QNode()}
	lockSys := mustModel(t, "msa-lock-mutex")
	omuSys := mustModel(t, "omu-exclusivity")

	var lockConcs, omuConcs [][]int
	capture := func(mach *machine.Machine) {
		conc := []int{0, 0, 0, 0, 0, 0}
		oconc := []int{0, 0, 0, 0}
		for _, s := range mach.Slices {
			for _, e := range s.Snapshot() {
				if e.Addr != a {
					continue
				}
				if e.Draining {
					conc[1]++
					oconc[1]++
					continue
				}
				conc[0]++
				oconc[0]++
				if e.Owner >= 0 {
					conc[2]++
				}
				conc[3] += e.Waiters.Count()
				oconc[2] += e.Waiters.Count()
			}
		}
		if mach.Store.Load(a) != 0 {
			conc[4] = 1
		}
		conc[5] = mach.Checker.SWLevel(a) - conc[4]
		oconc[3] = mach.Checker.SWLevel(a)
		lockConcs = append(lockConcs, conc)
		omuConcs = append(omuConcs, oconc)
	}

	m.SpawnAll(2, func(tid int, e cpu.Env) {
		rt := syncrt.HWLib().Bind(e, qnodes[tid])
		if tid == 0 {
			rt.Lock(syncrt.Mutex{Addr: b})
			e.Compute(50_000)
			rt.Unlock(syncrt.Mutex{Addr: b})
			return
		}
		e.Compute(2_000) // let thread 0 occupy the only entry first
		rt.Lock(syncrt.Mutex{Addr: a})
		capture(m) // steered + software-acquired
		e.Compute(1_000)
		rt.Unlock(syncrt.Mutex{Addr: a})
		capture(m) // software-released + FINISHed
	})
	if _, err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if len(lockConcs) != 2 {
		t.Fatalf("captured %d states, want 2", len(lockConcs))
	}
	lockSet, omuSet := initSet(lockSys), initSet(omuSys)
	for i := range lockConcs {
		lockSet = fold(t, lockSys, lockSet, lockSWRules[i])
		lockSet = narrow(t, lockSys, lockSet, lockConcs[i], lockSWRules[i][0])
		omuSet = fold(t, omuSys, omuSet, omuSWRules[i])
		omuSet = narrow(t, omuSys, omuSet, omuConcs[i], omuSWRules[i][0])
	}
	if lockConcs[0][4] != 1 {
		t.Fatal("software TTS lock word was not held at the first capture")
	}
}

// --- barrier bridge ---

func TestBridgeBarrier(t *testing.T) {
	cfg := core.DefaultConfig()
	rig := newMSARig(4, cfg)
	bar := memory.Addr(0x30000)
	const goal = 3
	barSys := mustModel(t, "barrier-epoch")
	omuSys := mustModel(t, "omu-exclusivity")
	barSet, omuSet := initSet(barSys), initSet(omuSys)

	sent := make([]int, goal)
	windowBase := 0
	// abstractBarrier derives (q, a, d, a2) from the scripted cores'
	// request/response ledger, relative to the declared epoch window.
	abstractBarrier := func(t *testing.T) []int {
		t.Helper()
		conc := []int{0, 0, 0, 0}
		for c := 0; c < goal; c++ {
			succ := 0
			for _, resp := range rig.got[c] {
				if resp.Op == isa.OpBarrier && resp.Result == isa.Success {
					succ++
				}
			}
			waiting := sent[c] > succ
			epoch := succ - windowBase
			switch {
			case epoch == 0 && !waiting:
				conc[0]++
			case epoch == 0 && waiting:
				conc[1]++
			case epoch == 1 && !waiting:
				conc[2]++
			case epoch == 1 && waiting:
				conc[3]++
			default:
				t.Fatalf("core %d outside the two-epoch window (epoch %d, waiting %v)", c, epoch, waiting)
			}
		}
		return conc
	}
	step := func(t *testing.T, i, c int) {
		t.Helper()
		sent[c]++
		rig.step(t, rig.req(c, isa.OpBarrier, bar, goal))
		for _, r := range barrierRules[i] {
			if r == "shift" {
				windowBase++
			}
		}
		barSet = fold(t, barSys, barSet, barrierRules[i])
		barSet = narrow(t, barSys, barSet, abstractBarrier(t), barrierRules[i][0])
		omuSet = fold(t, omuSys, omuSet, omuBarrierRules[i])
		omuSet = narrow(t, omuSys, omuSet, rig.abstractOMU(bar), omuBarrierRules[i][0])
	}
	for episode := 0; episode < 2; episode++ {
		for c := 0; c < goal; c++ {
			step(t, episode*goal+c, c)
		}
	}
	if v := rig.check.Violations(); len(v) != 0 {
		t.Fatalf("runtime checker flagged the barrier bridge: %v", v)
	}
}

// --- shard window-protocol bridge (internal/sim ShardGroup) ---

// TestBridgeWindowProtocol drives a REAL two-shard sim.ShardGroup window by
// window and narrows the abstract window-protocol model against a ledger of
// what the concrete kernel actually executed. Shard 0 is the sender, shard 1
// the receiver; lookahead is 3, so the windows are [0,2], [3,5], [6,8]. The
// scripted load deliberately exercises the recycled-token flip: window 1's
// sender work (2 events) equals window 0's preDone, window 2's receiver work
// (3 events) equals window 1's done, and each window's injectable mail
// equals the previous window's posts.
func TestBridgeWindowProtocol(t *testing.T) {
	const lookahead = 3
	sys := mustModel(t, "window-protocol")
	g := sim.NewShardGroup(2, lookahead)
	e0, e1 := g.Engine(0), g.Engine(1)

	check := fault.NewChecker(e1.Now)
	check.Synchronize() // mirror machine wiring in sharded mode

	// Concrete ledger. Each field is written by exactly one shard's
	// goroutine; reads happen after RunUntilCheck returns (the window
	// barrier's done-atomic publishes the writes).
	var led struct {
		s0exec int      // sender events without cross-shard output
		posts  int      // sender events that posted cross-shard mail
		s1done int      // receiver executions: local events + deliveries
		late   int      // deliveries behind the receiver clock
		hwm    sim.Time // receiver delivery high-water mark
	}
	exec0 := func() { led.s0exec++ }
	exec1 := func() { led.s1done++ }
	onDeliver := func(arg any) {
		want := arg.(sim.Time)
		now := e1.Now()
		if now != want || now < led.hwm {
			led.late++
		}
		led.hwm = now
		led.s1done++
		check.ShardDelivery(1, now) // the runtime shadow of "straggler"
	}
	post := func(when sim.Time) func() {
		return func() { led.posts++; g.Post(0, 1, when, onDeliver, when) }
	}

	// Window 0: sender execs at 0,1 and posts at 2 (delivery 2+3=5);
	// receiver execs at 0,1.
	e0.At(0, exec0)
	e0.At(1, exec0)
	e0.At(2, post(5))
	e1.At(0, exec1)
	e1.At(1, exec1)
	// Window 1: sender exec at 3, post at 4 (delivery 7); receiver execs
	// at 3,4 plus the injected delivery at 5.
	e0.At(3, exec0)
	e0.At(4, post(7))
	e1.At(3, exec1)
	e1.At(4, exec1)
	// Window 2: sender exec at 6; receiver execs at 6,7,8 plus the
	// delivery at 7.
	e0.At(6, exec0)
	e1.At(6, exec1)
	e1.At(7, exec1)
	e1.At(8, exec1)

	// Per-window scripted loads, cross-checked below against the engines'
	// own Fired/Posted counters: total sender events (execs+posts),
	// receiver local events, and deliveries injected.
	s0Sched := []int{3, 2, 1}
	s1Sched := []int{2, 2, 3}

	// One RunUntilCheck drives all three windows; the interrupt poll runs on
	// the coordinator after each window barrier — every shard parked, all
	// ledger writes published by the barrier's done-atomic — so it is the
	// exact concrete counterpart of the abstract "between rules" instant.
	type snap struct {
		s0exec, posts, s1done, late int
		fired0, fired1              uint64
	}
	var snaps []snap
	drained, interrupted := g.RunUntilCheck(8, 1, func() bool {
		snaps = append(snaps, snap{led.s0exec, led.posts, led.s1done, led.late,
			e0.Fired(), e1.Fired()})
		return false
	})
	if !drained || interrupted {
		t.Fatalf("drained=%v interrupted=%v, want drained cleanly", drained, interrupted)
	}
	if len(snaps) != 3 {
		t.Fatalf("captured %d window barriers, want 3 ([0,2] [3,5] [6,8])", len(snaps))
	}

	set := initSet(sys)
	prev := snap{}
	pendingMail := 0 // posts made last window, injectable this window
	for w, s := range snaps {
		// The kernel must have executed exactly the scripted load — the
		// ledger is only a valid abstraction if it matches the engines.
		if d := s.fired0 - prev.fired0; int(d) != s0Sched[w] {
			t.Fatalf("window %d: sender fired %d events, script says %d", w, d, s0Sched[w])
		}
		if d := s.fired1 - prev.fired1; int(d) != s1Sched[w]+pendingMail {
			t.Fatalf("window %d: receiver fired %d events, script says %d", w, d, s1Sched[w]+pendingMail)
		}

		// Work step: at the barrier every shard has drained its window
		// (pre=run=cur=0); preDone/done/next come from the ledger deltas.
		conc := []int{0, s.s0exec - prev.s0exec, 0, 0,
			s.s1done - prev.s1done, 0, s.posts - prev.posts, s.late}
		set = fold(t, sys, set, windowRules[2*w])
		set = narrow(t, sys, set, conc, windowRules[2*w][0])

		// Flip step (except after the final window): the recycled tokens
		// must equal the NEXT window's scripted load, with this window's
		// posts as the injectable mail.
		if w < 2 {
			flipConc := []int{s0Sched[w+1], 0, 0, s1Sched[w+1], 0,
				s.posts - prev.posts, 0, s.late}
			set = fold(t, sys, set, windowRules[2*w+1])
			set = narrow(t, sys, set, flipConc, "window-flip")
		}
		pendingMail = s.posts - prev.posts
		prev = s
	}

	if led.late != 0 {
		t.Fatalf("%d stragglers observed — conservative windows failed", led.late)
	}
	if got := g.Posted(); got != 2 {
		t.Fatalf("group mailed %d cross-shard events, script says 2", got)
	}
	if got := g.Windows(); got != 3 {
		t.Fatalf("group executed %d windows, script says 3", got)
	}
	if v := check.Violations(); len(v) != 0 {
		t.Fatalf("runtime shard-delivery checker flagged the bridge: %v", v)
	}
}

// --- TM commit-protocol bridge (internal/tm stepping API, full machine) ---

// TestBridgeTMCommit drives the REAL STM runtime (tm.Ctx on a software-only
// machine, invariant checker attached) through an 8-step two-thread
// choreography that fires every tm-commit rule, and narrows the abstract
// model against the concrete abstraction of one tracked word w:
//
//	[rv, ri, cl, lk, cw] = [valid readers of w, invalidated readers of w,
//	commit-lock holders of w's slot, w's lock bit, stale commits]
//
// Every capture happens inside the active thread's code with the serial
// kernel parked, after the step's last simulated op — so the concrete state
// is exactly the abstract "between rules" instant. rv/ri come from a ledger
// of what each thread's open read of w observed (the lock word at read time)
// compared against w's current lock word; cl is 0 at every capture (no
// commit phase spans a step boundary) and cw is 0 because the real protocol
// never commits stale — the abstract fold agrees, which is the point.
func TestBridgeTMCommit(t *testing.T) {
	sys := mustModel(t, "tm-commit")
	cfg := machine.Default(2)
	cfg.Name = "tm-bridge"
	cfg.CPU.Mode = cpu.ModeAlwaysFail
	cfg.Invariants = true
	m := machine.New(cfg)

	// Word selection: w is the tracked word. x must hash to a LATER slot
	// than w (sorted acquisition then locks w's slot first, and the busy x
	// slot aborts the commit, restoring w — firing lock-acquire and
	// abort-release in one step). y and z need slots distinct from w's and
	// each other's, so their commit traffic fires no w rule.
	w := memory.Addr(0x100000)
	var picks []memory.Addr
	for a := w + 8; len(picks) < 3 && a < w+1<<20; a += 8 {
		la := tm.LockAddr(a)
		if la <= tm.LockAddr(w) {
			continue
		}
		dup := false
		for _, p := range picks {
			if tm.LockAddr(p) == la {
				dup = true
			}
		}
		if !dup {
			picks = append(picks, a)
		}
	}
	if len(picks) < 3 {
		t.Fatal("no three slot-distinct words after w's slot found")
	}
	x, y, z := picks[0], picks[1], picks[2]

	turn := memory.Addr(0x200000)
	seen := [2]int64{-1, -1} // lock word each thread's open read of w saw; -1 = none
	capture := func() []int {
		lw := m.Store.Load(tm.LockAddr(w))
		conc := []int{0, 0, 0, int(lw & 1), 0}
		for _, s := range seen {
			if s < 0 {
				continue
			}
			if uint64(s) == lw {
				conc[0]++
			} else {
				conc[1]++
			}
		}
		return conc
	}
	var concs [][]int
	step := func(e cpu.Env, k int, fn func()) {
		for e.Load(turn) != uint64(k) {
			e.Compute(20)
		}
		fn()
		concs = append(concs, capture())
		e.Store(turn, uint64(k+1))
	}

	m.SpawnAll(2, func(tid int, e cpu.Env) {
		ctx := tm.New(e, false)
		if tid == 1 {
			step(e, 0, func() { // step 1: read
				ctx.Begin() // rv = 0
				if _, ok := ctx.TryRead(w); !ok {
					t.Error("step 1: TryRead(w) aborted on a cold word")
				}
				seen[1] = int64(m.Store.Load(tm.LockAddr(w)))
			})
			step(e, 4, func() { // step 5: validate-abort
				ctx.Write(y, 1)
				if ctx.TryCommit() {
					t.Error("step 5: commit validated a stale read of w")
				}
				seen[1] = -1
			})
			step(e, 5, func() { // step 6: read (fresh transaction)
				ctx.Begin() // rv = 2
				if _, ok := ctx.TryRead(w); !ok {
					t.Error("step 6: re-read of the committed w aborted")
				}
				seen[1] = int64(m.Store.Load(tm.LockAddr(w)))
			})
			step(e, 7, func() { // step 8: validate-commit
				ctx.Write(y, 2)
				if !ctx.TryCommit() {
					t.Error("step 8: fully validated commit failed")
				}
				seen[1] = -1
			})
			return
		}
		step(e, 1, func() { // step 2: lock-acquire + abort-release
			if !e.CAS(tm.LockAddr(x), 0, 1) {
				t.Error("step 2: failed to seed x's lock word held")
			}
			ctx.Begin()
			ctx.Write(w, 5)
			ctx.Write(x, 5)
			if ctx.TryCommit() {
				t.Error("step 2: commit succeeded over x's held lock")
			}
		})
		step(e, 2, func() { e.Store(tm.LockAddr(x), 0) }) // step 3: unseed x
		step(e, 3, func() {                               // step 4: lock-acquire + write-back-release
			ctx.Begin() // rv = 0
			ctx.Write(w, 7)
			if !ctx.TryCommit() {
				t.Error("step 4: uncontended commit of w failed")
			}
		})
		step(e, 6, func() { // step 7: unrelated commit, no w rule
			ctx.Begin() // rv = 2
			ctx.Write(z, 3)
			if !ctx.TryCommit() {
				t.Error("step 7: unrelated commit of z failed")
			}
		})
	})
	if _, err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}

	// Pin the concrete run shape the script reasons about.
	if got := m.Store.Load(w); got != 7 {
		t.Fatalf("w = %d, want 7 (step 4's commit)", got)
	}
	if got := m.Store.Load(y); got != 2 {
		t.Fatalf("y = %d, want 2 (step 8's commit)", got)
	}
	if got := m.Store.Load(z); got != 3 {
		t.Fatalf("z = %d, want 3 (step 7's commit)", got)
	}
	if clk := m.Store.Load(tm.ClockAddr); clk != 4 {
		t.Fatalf("global clock = %d, want 4 (steps 4, 5, 7, 8 each bump)", clk)
	}
	if v := m.Checker.Violations(); len(v) != 0 {
		t.Fatalf("runtime TM shadow flagged the bridge scenario: %v", v)
	}

	if len(concs) != len(tmRules) {
		t.Fatalf("captured %d steps, script declares %d", len(concs), len(tmRules))
	}
	set := initSet(sys)
	for i, conc := range concs {
		set = fold(t, sys, set, tmRules[i])
		label := "no-tm-rule"
		if len(tmRules[i]) > 0 {
			label = tmRules[i][0]
		}
		set = narrow(t, sys, set, conc, label)
	}
}
