package verify

import "testing"

// TestShippedModelsCertifySafe is the certification itself: every pristine
// model must be exhaustively Safe.
func TestShippedModelsCertifySafe(t *testing.T) {
	for _, m := range Models() {
		m := m
		t.Run(m.System.Name, func(t *testing.T) {
			res, err := Explore(m.System)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Safe {
				t.Fatalf("model reported UNSAFE:\n%s", WitnessString(res))
			}
			t.Logf("safe: explored=%d depth=%d saturated=%v", res.Explored, res.Depth, res.Saturated)
		})
	}
}

// TestBrokenVariantsDetected proves detection power: every deliberately
// broken variant must be Unsafe, with a short, replayable witness.
func TestBrokenVariantsDetected(t *testing.T) {
	for _, m := range Models() {
		for _, b := range m.Broken {
			b := b
			t.Run(b.Name, func(t *testing.T) {
				res, err := Explore(b)
				if err != nil {
					t.Fatal(err)
				}
				if res.Safe {
					t.Fatal("broken variant certified Safe: the checker lost detection power")
				}
				if len(res.Witness) == 0 && res.Init == "" {
					t.Fatal("unsafe verdict without a witness")
				}
				replayWitness(t, b, res)
				t.Logf("unsafe via %q in %d steps:\n%s", res.Unsafe, len(res.Witness), WitnessString(res))
			})
		}
	}
}

// TestModelHygiene pins down structural expectations the rest of the PR
// relies on: names are unique, every model declares invariants, broken
// variants derive their names from the pristine model, and docs point at
// concrete code.
func TestModelHygiene(t *testing.T) {
	models := Models()
	if len(models) != 6 {
		t.Fatalf("want 6 shipped models, got %d", len(models))
	}
	seen := map[string]bool{}
	for _, m := range models {
		if err := m.System.Validate(); err != nil {
			t.Errorf("%s: %v", m.System.Name, err)
		}
		if seen[m.System.Name] {
			t.Errorf("duplicate model name %q", m.System.Name)
		}
		seen[m.System.Name] = true
		if len(m.Invariants) == 0 {
			t.Errorf("%s: no runtime invariants declared", m.System.Name)
		}
		if len(m.Broken) == 0 {
			t.Errorf("%s: no broken variant to self-test detection", m.System.Name)
		}
		for _, r := range m.System.Rules {
			if r.Doc == "" {
				t.Errorf("%s: rule %q has no Doc naming its concrete transition", m.System.Name, r.Name)
			}
		}
		for _, b := range m.Broken {
			if got, want := b.Name[:len(m.System.Name)], m.System.Name; got != want {
				t.Errorf("broken variant %q not derived from %q", b.Name, want)
			}
			if seen[b.Name] {
				t.Errorf("duplicate variant name %q", b.Name)
			}
			seen[b.Name] = true
		}
	}
	if _, ok := ModelByName("mesi"); !ok {
		t.Error("ModelByName(mesi) not found")
	}
	if _, ok := ModelByName("nope"); ok {
		t.Error("ModelByName(nope) should not resolve")
	}
}

// TestBrokenVariantsDoNotMutatePristine guards brokenCopy's deep copy: the
// broken constructors must not alias the pristine rule slices.
func TestBrokenVariantsDoNotMutatePristine(t *testing.T) {
	for _, m := range Models() {
		_ = m.Broken // constructors already ran
		res, err := Explore(m.System)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Safe {
			t.Fatalf("%s became unsafe after building broken variants — aliasing bug", m.System.Name)
		}
	}
	if err := recoverReplace(); err == "" {
		t.Fatal("replaceRule on a missing rule should panic")
	}
}

func recoverReplace() (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg, _ = r.(string)
		}
	}()
	replaceRule(MESI(), "no-such-rule", Rule{})
	return ""
}

// TestCertify asserts the aggregate certificate: OK, one entry per system,
// broken entries flagged, and a schema the CI artifact can key on.
func TestCertify(t *testing.T) {
	cert, err := Certify()
	if err != nil {
		t.Fatal(err)
	}
	if cert.Schema != CertSchema {
		t.Fatalf("schema = %q", cert.Schema)
	}
	if !cert.OK {
		t.Fatalf("certificate not OK:\n%s", cert.Summary())
	}
	wantEntries := 0
	for _, m := range Models() {
		wantEntries += 1 + len(m.Broken)
	}
	if len(cert.Models) != wantEntries {
		t.Fatalf("certificate has %d entries, want %d", len(cert.Models), wantEntries)
	}
	for _, mr := range cert.Models {
		if mr.Broken && mr.Safe {
			t.Errorf("%s: broken variant certified Safe", mr.System)
		}
		if !mr.Broken && !mr.Safe {
			t.Errorf("%s: pristine model Unsafe", mr.System)
		}
		if mr.Rules == 0 {
			t.Errorf("%s: zero rules in certificate", mr.System)
		}
	}
	if _, err := cert.MarshalIndent(); err != nil {
		t.Fatal(err)
	}
}

// TestExplorationDeterminism: two explorations of the same model must agree
// exactly — the BFS has no map-iteration dependence in its verdicts.
func TestExplorationDeterminism(t *testing.T) {
	for _, m := range Models() {
		a, err := Explore(m.System)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Explore(m.System)
		if err != nil {
			t.Fatal(err)
		}
		if a.Explored != b.Explored || a.Depth != b.Depth || a.Safe != b.Safe {
			t.Errorf("%s: non-deterministic exploration: %+v vs %+v", m.System.Name, a, b)
		}
	}
}
