package verify

import (
	"fmt"
	"testing"
)

// FuzzReachability cross-checks the ω-explorer against a bounded concrete
// brute-force oracle on randomly generated counter systems (Petri-net style:
// each rule consumes and produces tokens, plus fuzz-chosen extra guard
// atoms). Two properties are enforced:
//
//   - Soundness (always): if the concrete oracle — instantiating an ω init
//     with every thread count N ≤ 4 and exploring exhaustively with values
//     capped — reaches an Unsafe state, the abstract explorer must report
//     Unsafe. A concrete trace is real; the over-approximation may never
//     hide it. This is the "false Safe impossible" half of DESIGN.md §12.
//
//   - Exactness (finite inits, no saturation): when no init carries ω and
//     the exploration never saturated, the abstract semantics coincide with
//     the concrete semantics, so the verdicts must agree exactly — the
//     explorer may not invent a false Unsafe either.
//
// Every Unsafe verdict's witness is additionally replayed through Apply.
func FuzzReachability(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 2})
	f.Add([]byte{1, 1, 1, 0, 2, 3, 7, 9})
	f.Add([]byte{0, 2, 0, 1, 1, 3, 0xe5, 0x12, 1, 0x40, 5})
	f.Add([]byte{1, 3, 2, 2, 0, 1, 0x55, 0xaa, 3, 9, 0x1c, 6, 0})
	f.Add([]byte{2, 0xff, 0x80, 0x42, 0x13, 0x37, 0xde, 0xad, 0xbe, 0xef})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		s := systemFromBytes(data)
		if err := s.Validate(); err != nil {
			t.Fatalf("fuzz decoder produced an invalid system: %v", err)
		}
		res, err := Explore(s)
		if err != nil {
			t.Skip() // abstract state-space cap; nothing to compare
		}
		concUnsafe := oracleReachesUnsafe(s, 16)
		if concUnsafe && res.Safe {
			t.Fatalf("SOUNDNESS: concrete oracle reaches an unsafe state but the explorer certified Safe\nsystem: %+v", s)
		}
		if finiteInits(s) && !res.Saturated && !res.Safe && !concUnsafe {
			t.Fatalf("EXACTNESS: no ω, no saturation, yet explorer reports Unsafe %q the oracle cannot reach\nsystem: %+v", res.Unsafe, s)
		}
		if !res.Safe {
			replayWitness(t, s, res)
		}
	})
}

// systemFromBytes deterministically decodes a small counter system from fuzz
// input. Bytes past the end read as zero, so every input of length ≥ 2
// decodes to a Validate-clean system: 2-3 variables, 1-4 Petri-style rules
// (consume/produce vectors as guards and identity-plus-constant updates),
// optional extra EQ/LE/GE guard atoms, and one 1-2 atom Unsafe predicate.
func systemFromBytes(data []byte) *System {
	src := byteSrc{data: data}
	nv := 2 + int(src.next())%2
	nr := 1 + int(src.next())%4
	omegaInit := src.next()&1 == 1

	vars := make([]string, nv)
	init := make(Config, nv)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i)
		init[i] = N(int(src.next()) % 3)
	}
	if omegaInit {
		init[0] = Omega
	}
	s := &System{Name: "fuzz", Vars: vars, Inits: []Config{init}}

	for r := 0; r < nr; r++ {
		cb, pb, gb := src.next(), src.next(), src.next()
		rule := Rule{Name: fmt.Sprintf("r%d", r), Doc: "fuzz", Update: make([]Expr, nv)}
		for i := 0; i < nv; i++ {
			consume := int(cb>>uint(i)) & 1
			produce := int(pb>>uint(2*i)) & 3 % 3
			coef := make([]int, nv)
			coef[i] = 1
			rule.Update[i] = Expr{Coef: coef, Const: produce - consume}
			if consume > 0 {
				rule.Guard = append(rule.Guard, Atom{Var: i, Op: GE, C: consume})
			}
		}
		if op := gb & 3; op != 0 {
			rule.Guard = append(rule.Guard, Atom{
				Var: int(gb>>2) % nv,
				Op:  [4]CmpOp{0, EQ, LE, GE}[op],
				C:   int(gb>>4) % 3,
			})
		}
		s.Rules = append(s.Rules, rule)
	}

	ub := src.next()
	pred := Pred{Name: "bad", Atoms: []Atom{{Var: int(ub) % nv, Op: GE, C: 1 + int(ub>>2)%3}}}
	if ub2 := src.next(); ub2&1 == 1 {
		pred.Atoms = append(pred.Atoms, Atom{Var: int(ub2>>1) % nv, Op: GE, C: 1 + int(ub2>>3)%2})
	}
	s.Unsafe = []Pred{pred}
	return s
}

type byteSrc struct {
	data []byte
	i    int
}

func (b *byteSrc) next() byte {
	if b.i >= len(b.data) {
		return 0
	}
	v := b.data[b.i]
	b.i++
	return v
}

func finiteInits(s *System) bool {
	for _, c := range s.Inits {
		for _, v := range c {
			if v.Inf {
				return false
			}
		}
	}
	return true
}

// oracleReachesUnsafe is the bounded concrete brute force: every ω init
// variable is instantiated with 0..4 concrete threads, then plain BFS over
// integer vectors, dropping successors that exceed the value cap. Because it
// only ever follows real transitions, any Unsafe state it finds is truly
// reachable — truncation can cause misses, never false positives, which is
// exactly the direction the soundness check needs.
func oracleReachesUnsafe(s *System, cap int) bool {
	var frontier [][]int
	for _, ic := range s.Inits {
		starts := [][]int{make([]int, len(ic))}
		for i, v := range ic {
			if !v.Inf {
				for _, st := range starts {
					st[i] = v.Lo
				}
				continue
			}
			var widened [][]int
			for _, st := range starts {
				for n := v.Lo; n <= v.Lo+4; n++ {
					w := append([]int(nil), st...)
					w[i] = n
					widened = append(widened, w)
				}
			}
			starts = widened
		}
		frontier = append(frontier, starts...)
	}
	seen := map[string]bool{}
	for len(frontier) > 0 {
		st := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		k := fmt.Sprint(st)
		if seen[k] {
			continue
		}
		seen[k] = true
		if concreteUnsafe(s, st) {
			return true
		}
		for _, r := range s.Rules {
			if next, ok := concreteFire(st, r, cap); ok {
				frontier = append(frontier, next)
			}
		}
	}
	return false
}

func concreteUnsafe(s *System, st []int) bool {
	for _, p := range s.Unsafe {
		all := true
		for _, a := range p.Atoms {
			if !concreteSat(a, st[a.Var]) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func concreteSat(a Atom, v int) bool {
	switch a.Op {
	case GE:
		return v >= a.C
	case EQ:
		return v == a.C
	case LE:
		return v <= a.C
	}
	return false
}

func concreteFire(st []int, r Rule, cap int) ([]int, bool) {
	for _, a := range r.Guard {
		if !concreteSat(a, st[a.Var]) {
			return nil, false
		}
	}
	next := make([]int, len(st))
	for i, u := range r.Update {
		v := u.Const
		for j, k := range u.Coef {
			v += k * st[j]
		}
		if v < 0 {
			return nil, false // blocked, matching abstract exact semantics
		}
		if v > cap {
			return nil, false // truncated: a miss, never a false positive
		}
		next[i] = v
	}
	return next, true
}

// TestFuzzDecoderCorpus pins the seed corpus through the same checks the
// fuzzer applies, so `go test` exercises the cross-check even when native
// fuzzing is not invoked.
func TestFuzzDecoderCorpus(t *testing.T) {
	seeds := [][]byte{
		{0, 0, 0, 1, 2},
		{1, 1, 1, 0, 2, 3, 7, 9},
		{0, 2, 0, 1, 1, 3, 0xe5, 0x12, 1, 0x40, 5},
		{1, 3, 2, 2, 0, 1, 0x55, 0xaa, 3, 9, 0x1c, 6, 0},
		{2, 0xff, 0x80, 0x42, 0x13, 0x37, 0xde, 0xad, 0xbe, 0xef},
	}
	sawUnsafe, sawOmega := false, false
	for _, seed := range seeds {
		s := systemFromBytes(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %v: %v", seed, err)
		}
		if !finiteInits(s) {
			sawOmega = true
		}
		res, err := Explore(s)
		if err != nil {
			t.Fatalf("seed %v: %v", seed, err)
		}
		conc := oracleReachesUnsafe(s, 16)
		if conc && res.Safe {
			t.Fatalf("seed %v: oracle unsafe, explorer Safe", seed)
		}
		if !res.Safe {
			sawUnsafe = true
		}
	}
	if !sawUnsafe {
		t.Error("corpus exercises no Unsafe verdict — weak seeds")
	}
	if !sawOmega {
		t.Error("corpus exercises no ω init — weak seeds")
	}
}
