package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"misar/internal/obs"
	"misar/internal/service"
	"misar/internal/store"
)

// PeerStoreOptions configure the fleet-aware result store.
type PeerStoreOptions struct {
	// Replicas is the replication factor for freshly computed results
	// (owner included): after a local Put, the record is pushed to the
	// key's next Replicas-1 ring successors. < 1 means 2 — every result
	// survives one node loss.
	Replicas int
	// Fanout bounds how many peers a local miss consults before giving up
	// and re-simulating; < 1 means 3. The ring replicas are tried first
	// (most likely holders), then other alive peers up to the bound.
	Fanout int
	// FetchTimeout bounds one peer GET/PUT; <= 0 means 5s.
	FetchTimeout time.Duration
	// Logger receives replication and fetch-failure logs; nil disables.
	Logger *slog.Logger
}

func (o PeerStoreOptions) withDefaults() PeerStoreOptions {
	if o.Replicas < 1 {
		o.Replicas = 2
	}
	if o.Fanout < 1 {
		o.Fanout = 3
	}
	if o.FetchTimeout <= 0 {
		o.FetchTimeout = 5 * time.Second
	}
	return o
}

// PeerStoreStats counts peer-path activity since construction.
type PeerStoreStats struct {
	PeerHits    uint64 `json:"peer_hits"`    // local misses satisfied by a peer
	PeerMisses  uint64 `json:"peer_misses"`  // fan-outs that found nothing
	PeerErrors  uint64 `json:"peer_errors"`  // transport failures during fetch
	Replicated  uint64 `json:"replicated"`   // records pushed to a peer
	ReplicaErrs uint64 `json:"replica_errs"` // failed replication pushes
}

// inflightFetch is one single-flight peer fan-out; joiners wait on done and
// read the shared outcome.
type inflightFetch struct {
	done    chan struct{}
	payload []byte
	ok      bool
}

// PeerStore implements harness.ResultStore over a local *store.Store plus
// the fleet: a local miss fans out (bounded, single-flight per fingerprint)
// to the peers most likely to hold the record — the key's ring replicas
// first — and backfills the local store on a hit, so the next lookup is
// local. Local puts replicate asynchronously to the key's ring successors.
// Every network failure is treated as a miss: the worst case is always a
// re-simulation, never a wedged lookup.
type PeerStore struct {
	local *store.Store
	mem   *Membership
	opt   PeerStoreOptions
	hc    *http.Client

	mu       sync.Mutex
	inflight map[string]*inflightFetch

	wg sync.WaitGroup // outstanding async replications

	peerHits    atomic.Uint64
	peerMisses  atomic.Uint64
	peerErrors  atomic.Uint64
	replicated  atomic.Uint64
	replicaErrs atomic.Uint64
}

// NewPeerStore wraps local with peer fetch and replication over the
// membership view.
func NewPeerStore(local *store.Store, mem *Membership, opt PeerStoreOptions) *PeerStore {
	opt = opt.withDefaults()
	return &PeerStore{
		local:    local,
		mem:      mem,
		opt:      opt,
		hc:       &http.Client{Timeout: opt.FetchTimeout},
		inflight: make(map[string]*inflightFetch),
	}
}

// Local returns the wrapped on-disk store.
func (p *PeerStore) Local() *store.Store { return p.local }

// Stats returns the peer-path counters.
func (p *PeerStore) Stats() PeerStoreStats {
	return PeerStoreStats{
		PeerHits:    p.peerHits.Load(),
		PeerMisses:  p.peerMisses.Load(),
		PeerErrors:  p.peerErrors.Load(),
		Replicated:  p.replicated.Load(),
		ReplicaErrs: p.replicaErrs.Load(),
	}
}

// Wait blocks until every in-flight async replication has finished —
// draining servers and tests call it; the hot path never does.
func (p *PeerStore) Wait() { p.wg.Wait() }

// GetCtx looks up fp locally, then across the fleet. Concurrent misses on
// the same fingerprint share one fan-out (single-flight), so a thundering
// herd of identical cold requests costs the fleet one set of peer GETs —
// and, upstream of here, the owner's runner single-flights the simulation
// itself.
func (p *PeerStore) GetCtx(ctx context.Context, fp string) ([]byte, bool) {
	if b, ok := p.local.GetCtx(ctx, fp); ok {
		return b, true
	}
	if p.mem == nil {
		return nil, false
	}

	p.mu.Lock()
	if f, ok := p.inflight[fp]; ok {
		p.mu.Unlock()
		select {
		case <-f.done:
			return f.payload, f.ok
		case <-ctx.Done():
			return nil, false
		}
	}
	f := &inflightFetch{done: make(chan struct{})}
	p.inflight[fp] = f
	p.mu.Unlock()

	f.payload, f.ok = p.fetchFromPeers(ctx, fp)
	p.mu.Lock()
	delete(p.inflight, fp)
	p.mu.Unlock()
	close(f.done)
	return f.payload, f.ok
}

// fetchCandidates orders the peers to try: the key's ring replicas (minus
// self) first, then any other alive peers, truncated to the fan-out bound.
func (p *PeerStore) fetchCandidates(fp string) []string {
	ring := p.mem.Ring()
	seen := map[string]bool{p.mem.Self(): true}
	var out []string
	add := func(u string) {
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	for _, u := range ring.Replicas(fp, p.opt.Replicas+1) {
		add(u)
	}
	for _, u := range p.mem.AlivePeers() {
		add(u)
	}
	if len(out) > p.opt.Fanout {
		out = out[:p.opt.Fanout]
	}
	return out
}

func (p *PeerStore) fetchFromPeers(ctx context.Context, fp string) ([]byte, bool) {
	for _, peer := range p.fetchCandidates(fp) {
		payload, err := p.fetchOne(ctx, peer, fp)
		if err != nil {
			p.peerErrors.Add(1)
			p.mem.MarkSuspect(peer, "store fetch: "+err.Error())
			continue
		}
		if payload == nil {
			continue // clean 404: peer answered, record not there
		}
		p.peerHits.Add(1)
		// Backfill so the next lookup — and every future restart — is
		// local. A failed backfill only costs warmth.
		p.local.PutCtx(ctx, fp, payload)
		return payload, true
	}
	p.peerMisses.Add(1)
	return nil, false
}

// fetchOne GETs one record from one peer. (nil, nil) means a clean miss.
func (p *PeerStore) fetchOne(ctx context.Context, peer, fp string) ([]byte, error) {
	fctx, cancel := context.WithTimeout(ctx, p.opt.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, peer+"/v1/store/"+fp, nil)
	if err != nil {
		return nil, err
	}
	if id := obs.TraceIDOf(ctx); id != "" {
		req.Header.Set(service.TraceHeader, id)
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		payload, err := io.ReadAll(io.LimitReader(resp.Body, maxRecordBytes+1))
		if err != nil {
			return nil, err
		}
		if len(payload) > maxRecordBytes {
			return nil, fmt.Errorf("record exceeds %d bytes", maxRecordBytes)
		}
		return payload, nil
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
}

// PutCtx persists locally, then replicates to the key's ring successors in
// the background. Replication is best-effort by design: the record is
// already durable on the owner, and a peer that missed it will fetch it on
// demand — the async push only buys recovery latency after a node loss.
func (p *PeerStore) PutCtx(ctx context.Context, fp string, payload []byte) error {
	if err := p.local.PutCtx(ctx, fp, payload); err != nil {
		return err
	}
	if p.mem == nil || p.opt.Replicas < 2 {
		return nil
	}
	trace := obs.TraceIDOf(ctx)
	for _, peer := range p.replicaTargets(fp) {
		p.wg.Add(1)
		go func(peer string) {
			defer p.wg.Done()
			if err := p.replicateOne(peer, fp, payload, trace); err != nil {
				p.replicaErrs.Add(1)
				p.mem.MarkSuspect(peer, "replicate: "+err.Error())
				if p.opt.Logger != nil {
					p.opt.Logger.LogAttrs(context.Background(), slog.LevelWarn, "fleet: replication failed",
						slog.String("peer", peer), slog.String("fingerprint", fp),
						slog.String("error", err.Error()))
				}
				return
			}
			p.replicated.Add(1)
		}(peer)
	}
	return nil
}

// replicaTargets returns the peers (self excluded) among the key's first
// Replicas ring positions.
func (p *PeerStore) replicaTargets(fp string) []string {
	var out []string
	for _, u := range p.mem.Ring().Replicas(fp, p.opt.Replicas) {
		if u != p.mem.Self() {
			out = append(out, u)
		}
	}
	return out
}

func (p *PeerStore) replicateOne(peer, fp string, payload []byte, trace string) error {
	ctx, cancel := context.WithTimeout(context.Background(), p.opt.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+"/v1/store/"+fp, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if trace != "" {
		req.Header.Set(service.TraceHeader, trace)
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
