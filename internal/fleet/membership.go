package fleet

import (
	"context"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// PeerState is one peer's position in the failure-detection state machine:
//
//	alive ──probe fails──▶ suspect ──DeadAfter consecutive fails──▶ dead
//	  ▲                       │                                      │
//	  └────── probe succeeds ──┴──────── probe succeeds ─────────────┘
//
// Suspect peers stay in the routing ring (a single dropped probe must not
// remap every key they own); dead peers are ejected until a probe succeeds
// again. Transport failures observed by the router or peer store also count
// as probe failures (MarkSuspect), so detection is bounded by traffic, not
// just the probe cadence.
type PeerState int

const (
	StateAlive PeerState = iota
	StateSuspect
	StateDead
)

func (s PeerState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// PeerStatus is one peer's externally visible health (GET /v1/fleet).
type PeerStatus struct {
	URL      string `json:"url"`
	State    string `json:"state"`
	Failures int    `json:"consecutive_failures"`
	LastErr  string `json:"last_error,omitempty"`
	// LastProbeMS is the wall-clock timestamp of the last probe attempt.
	LastProbeMS int64 `json:"last_probe_unix_ms,omitempty"`
}

// MembershipOptions configure the failure detector.
type MembershipOptions struct {
	// ProbeInterval is the /healthz probe cadence; <= 0 means 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe; <= 0 means ProbeInterval/2.
	ProbeTimeout time.Duration
	// DeadAfter is the consecutive-failure count that marks a peer dead;
	// < 1 means 2.
	DeadAfter int
	// Logger receives state-transition logs; nil disables.
	Logger *slog.Logger
}

func (o MembershipOptions) withDefaults() MembershipOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ProbeInterval / 2
	}
	if o.DeadAfter < 1 {
		o.DeadAfter = 2
	}
	return o
}

// peerRecord is the detector's per-peer state.
type peerRecord struct {
	url       string
	state     PeerState
	failures  int
	lastErr   string
	lastProbe time.Time
}

// Membership is one node's live view of the fleet: itself plus every
// configured peer, each tracked through the alive/suspect/dead state
// machine by a background prober and by transport evidence from the data
// path. Ring() projects the non-dead members onto a consistent-hash ring.
type Membership struct {
	self string
	opt  MembershipOptions
	hc   *http.Client

	mu    sync.Mutex
	peers map[string]*peerRecord
	ring  *Ring  // cached; rebuilt when the member set changes
	key   string // member-set signature the cached ring was built for

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NormalizeURL gives addresses the canonical form membership keys on:
// scheme prefix, no trailing slash.
func NormalizeURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// NewMembership builds the detector for self (this node's advertised base
// URL) and its peers. Call Start to begin probing; a Membership that is
// never started still routes — every peer optimistically alive.
func NewMembership(self string, peers []string, opt MembershipOptions) *Membership {
	m := &Membership{
		self:  NormalizeURL(self),
		opt:   opt.withDefaults(),
		peers: make(map[string]*peerRecord),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	m.hc = &http.Client{Timeout: m.opt.ProbeTimeout}
	for _, p := range peers {
		u := NormalizeURL(p)
		if u == m.self || u == "http://" {
			continue
		}
		m.peers[u] = &peerRecord{url: u, state: StateAlive}
	}
	return m
}

// Self returns this node's advertised base URL.
func (m *Membership) Self() string { return m.self }

// Start launches the background prober. Call at most once, paired with
// Stop.
func (m *Membership) Start() {
	m.mu.Lock()
	m.started = true
	m.mu.Unlock()
	go m.probeLoop()
}

// Stop terminates the prober (if started) and waits for it to exit.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if started {
		<-m.done
	}
}

func (m *Membership) probeLoop() {
	defer close(m.done)
	ticker := time.NewTicker(m.opt.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.probeAll()
		}
	}
}

// probeAll probes every peer concurrently and folds the verdicts in. One
// slow peer must not delay detection of the others.
func (m *Membership) probeAll() {
	m.mu.Lock()
	urls := make([]string, 0, len(m.peers))
	for u := range m.peers {
		urls = append(urls, u)
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			err := m.probe(u)
			if err == nil {
				m.MarkAlive(u)
			} else {
				m.markFailure(u, err.Error())
			}
		}(u)
	}
	wg.Wait()
}

// probe is one /healthz round-trip. Any answer — even "draining" — counts
// as alive: a draining node refuses new jobs itself (503) but can still
// serve peer store fetches.
func (m *Membership) probe(url string) error {
	ctx, cancel := context.WithTimeout(context.Background(), m.opt.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &probeStatusError{code: resp.StatusCode}
	}
	return nil
}

type probeStatusError struct{ code int }

func (e *probeStatusError) Error() string {
	return "healthz status " + http.StatusText(e.code)
}

// MarkAlive records a successful contact with peer url (probe or data
// path), resurrecting it if it was suspect or dead.
func (m *Membership) MarkAlive(url string) {
	m.transition(NormalizeURL(url), true, "")
}

// MarkSuspect records a transport failure observed on the data path
// (forwarding a job, fetching a record). Counted exactly like a failed
// probe, so a busy fleet detects death in one round-trip instead of
// waiting out the probe interval.
func (m *Membership) MarkSuspect(url string, reason string) {
	m.markFailure(NormalizeURL(url), reason)
}

func (m *Membership) markFailure(url, reason string) {
	m.transition(url, false, reason)
}

func (m *Membership) transition(url string, ok bool, reason string) {
	m.mu.Lock()
	rec := m.peers[url]
	if rec == nil {
		m.mu.Unlock()
		return
	}
	was := rec.state
	rec.lastProbe = time.Now()
	if ok {
		rec.state, rec.failures, rec.lastErr = StateAlive, 0, ""
	} else {
		rec.failures++
		rec.lastErr = reason
		if rec.failures >= m.opt.DeadAfter {
			rec.state = StateDead
		} else {
			rec.state = StateSuspect
		}
	}
	now := rec.state
	m.mu.Unlock()
	if was != now && m.opt.Logger != nil {
		m.opt.Logger.LogAttrs(context.Background(), slog.LevelWarn, "fleet: peer state change",
			slog.String("peer", url), slog.String("from", was.String()),
			slog.String("to", now.String()), slog.String("reason", reason))
	}
}

// Members returns self plus every non-dead peer — the routing ring's node
// set. Sorted for determinism.
func (m *Membership) Members() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.membersLocked()
}

func (m *Membership) membersLocked() []string {
	out := []string{m.self}
	for _, rec := range m.peers {
		if rec.state != StateDead {
			out = append(out, rec.url)
		}
	}
	sort.Strings(out)
	return out
}

// AlivePeers returns the non-dead peers (self excluded) — the peer-fetch
// candidate pool.
func (m *Membership) AlivePeers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, rec := range m.peers {
		if rec.state != StateDead {
			out = append(out, rec.url)
		}
	}
	sort.Strings(out)
	return out
}

// Ring returns the consistent-hash ring over the current members. The ring
// is rebuilt only when the member set changes, so the submit path pays a
// signature comparison, not a sort.
func (m *Membership) Ring() *Ring {
	m.mu.Lock()
	defer m.mu.Unlock()
	members := m.membersLocked()
	key := strings.Join(members, "\n")
	if m.ring == nil || m.key != key {
		m.ring = NewRing(members)
		m.key = key
	}
	return m.ring
}

// Snapshot reports every peer's detector state, self excluded, sorted by
// URL.
func (m *Membership) Snapshot() []PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerStatus, 0, len(m.peers))
	for _, rec := range m.peers {
		st := PeerStatus{
			URL:      rec.url,
			State:    rec.state.String(),
			Failures: rec.failures,
			LastErr:  rec.lastErr,
		}
		if !rec.lastProbe.IsZero() {
			st.LastProbeMS = rec.lastProbe.UnixMilli()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
