package fleet

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func keys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", rng.Uint64())
	}
	return out
}

// Every member must compute the identical ring regardless of the order it
// learned the node list in — otherwise two nodes route the same key to
// different owners and the fleet loses its locality.
func TestRingDeterministicAcrossOrderings(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	perms := [][]string{
		{nodes[0], nodes[1], nodes[2]},
		{nodes[2], nodes[0], nodes[1]},
		{nodes[1], nodes[2], nodes[0], nodes[0]}, // duplicate ignored
	}
	rings := make([]*Ring, len(perms))
	for i, p := range perms {
		rings[i] = NewRing(p)
	}
	for _, k := range keys(200) {
		want := rings[0].Owner(k)
		for i := 1; i < len(rings); i++ {
			if got := rings[i].Owner(k); got != want {
				t.Fatalf("ring %d owner(%s) = %s, want %s", i, k, got, want)
			}
		}
	}
}

func TestRingSpreadsOwnership(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(nodes)
	counts := map[string]int{}
	const n = 3000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	for _, node := range nodes {
		share := float64(counts[node]) / n
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.0f%% of keys (counts %v)", node, share*100, counts)
		}
	}
}

// Removing one node must remap only the keys that node owned; everyone
// else's warm store stays authoritative.
func TestRingMinimalRemapOnNodeLoss(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	full := NewRing(nodes)
	without := NewRing(nodes[:2]) // c died
	for _, k := range keys(500) {
		before := full.Owner(k)
		after := without.Owner(k)
		if before != nodes[2] && after != before {
			t.Fatalf("key %s moved from surviving node %s to %s", k, before, after)
		}
		if after == nodes[2] {
			t.Fatalf("key %s routed to a removed node", k)
		}
	}
}

func TestRingReplicas(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(nodes)
	for _, k := range keys(100) {
		reps := r.Replicas(k, 2)
		if len(reps) != 2 {
			t.Fatalf("Replicas(%s, 2) = %v", k, reps)
		}
		if reps[0] != r.Owner(k) {
			t.Errorf("first replica %s is not the owner %s", reps[0], r.Owner(k))
		}
		if reps[0] == reps[1] {
			t.Errorf("duplicate replica %v", reps)
		}
		// Asking for more than the fleet has returns the whole fleet.
		if all := r.Replicas(k, 10); len(all) != len(nodes) {
			t.Errorf("Replicas(k, 10) = %v, want all %d nodes", all, len(nodes))
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if NewRing(nil).Owner("k") != "" {
		t.Error("empty ring owner should be \"\"")
	}
	if got := NewRing(nil).Replicas("k", 2); got != nil {
		t.Errorf("empty ring replicas = %v", got)
	}
	one := NewRing([]string{"http://solo:1"})
	if one.Owner("anything") != "http://solo:1" {
		t.Error("single-node ring must own every key")
	}
	if !reflect.DeepEqual(one.Replicas("k", 5), []string{"http://solo:1"}) {
		t.Error("single-node replicas should be just the node")
	}
}
