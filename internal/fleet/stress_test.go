package fleet_test

// Multi-process fault-tolerance stress: three real misar-served processes
// joined into a fleet, hundreds of concurrent clients, one node SIGKILLed
// mid-sweep. The acceptance bar (ISSUE 9): zero client-visible errors,
// byte-identical results before and after the kill, a single trace ID
// spanning a failed-over request, and overload degrading to fast 429s —
// never timeouts. Run under -race in CI (the client side is instrumented;
// the servers are separate processes).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"misar/internal/fleet"
	"misar/internal/obs"
	"misar/internal/service"
	"misar/internal/service/client"
	"misar/internal/trace"
)

// buildServed compiles the real misar-served binary (go run cannot receive
// a SIGKILL aimed at the server itself).
func buildServed(t *testing.T) string {
	t.Helper()
	gomod, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(gomod)))
	if root == "." || root == "/" {
		t.Fatal("not inside a module")
	}
	bin := filepath.Join(t.TempDir(), "misar-served")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/misar-served")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building misar-served: %v\n%s", err, out)
	}
	return bin
}

// freePorts reserves n distinct loopback ports by binding and releasing
// them. The tiny race against other processes is acceptable in tests.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		ports[i] = l.Addr().(*net.TCPAddr).Port
	}
	for _, l := range listeners {
		l.Close()
	}
	return ports
}

type servedProc struct {
	url string
	cmd *exec.Cmd
}

// startFleetProcs boots n misar-served processes wired into one fleet.
func startFleetProcs(t *testing.T, bin string, n int, extraArgs ...string) []*servedProc {
	t.Helper()
	ports := freePorts(t, n)
	urls := make([]string, n)
	for i, p := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}
	procs := make([]*servedProc, n)
	for i := range procs {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		args := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-self", urls[i],
			"-peers", strings.Join(peers, ","),
			"-store", filepath.Join(t.TempDir(), fmt.Sprintf("store-%d", i)),
			"-workers", "4",
			"-queue", "1024",
			"-heartbeat", "50ms",
			"-probe-interval", "200ms",
			"-log=false",
		}
		args = append(args, extraArgs...)
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = &servedProc{url: urls[i], cmd: cmd}
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.cmd.Process != nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, p := range procs {
		if err := client.New(p.url).WaitHealthy(ctx); err != nil {
			t.Fatalf("%s never became healthy: %v", p.url, err)
		}
	}
	return procs
}

// jobMatrix is the sweep: every micro op at several tile counts — small
// enough that a full stress run finishes in seconds, wide enough that every
// node owns several keys.
func jobMatrix() []service.JobRequest {
	ops := []string{"LockAcquire", "LockHandoff", "BarrierHandoff", "CondSignal", "CondBroadcast"}
	tiles := []int{2, 4, 8, 16}
	var out []service.JobRequest
	for _, op := range ops {
		for _, n := range tiles {
			out = append(out, service.JobRequest{Kind: "micro", App: op, Config: "msaomu2", Tiles: n})
		}
	}
	return out
}

// canonicalResult strips run-environment variance (elapsed, spans, job IDs)
// down to the simulation outcome, which must be byte-identical across
// nodes, retries, and failover.
func canonicalResult(t *testing.T, ev *service.JobEvent) []byte {
	t.Helper()
	if ev == nil || ev.Result == nil {
		t.Fatal("terminal event without a result")
	}
	b, err := json.Marshal(ev.Result)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFleetKillANodeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process stress; skipped in -short")
	}
	bin := buildServed(t)
	procs := startFleetProcs(t, bin, 3)
	urls := []string{procs[0].url, procs[1].url, procs[2].url}
	matrix := jobMatrix()

	f := client.NewFleet(urls, client.RetryPolicy{
		MaxAttempts:    6,
		BaseBackoff:    50 * time.Millisecond,
		MaxBackoff:     2 * time.Second,
		AttemptTimeout: 10 * time.Second,
	})

	// Phase 1 — baseline on the healthy fleet: one result per matrix key.
	baseline := make(map[string][]byte, len(matrix))
	for _, req := range matrix {
		ev, err := f.Submit(context.Background(), req, nil)
		if err != nil {
			t.Fatalf("baseline %s/%d: %v", req.App, req.Tiles, err)
		}
		baseline[req.App+"/"+fmt.Sprint(req.Tiles)] = canonicalResult(t, ev)
	}

	// Pick the victim and, for the traced failover probe, a key it owns.
	ring := fleet.NewRing(urls)
	victim := 2
	var victimKey *service.JobRequest
	for i := range matrix {
		fp, err := service.RequestFingerprint(&matrix[i])
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(fp) == urls[victim] {
			victimKey = &matrix[i]
			break
		}
	}
	if victimKey == nil {
		// With 20 keys and 3 nodes this is (1-1/3)^20 ≈ 0.03% — but don't
		// leave a theoretical flake in the suite.
		victimKey = &matrix[0]
	}

	// Phase 2 — the stampede: hundreds of concurrent clients sweeping the
	// matrix while the victim dies mid-flight.
	const clients = 200
	const perClient = 6
	var (
		errCount   atomic.Uint64
		mismatches atomic.Uint64
		killOnce   sync.Once
		killedAt   atomic.Int64
		wg         sync.WaitGroup
	)
	startGun := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-startGun
			for i := 0; i < perClient; i++ {
				req := matrix[(c*perClient+i)%len(matrix)]
				key := req.App + "/" + fmt.Sprint(req.Tiles)
				ev, err := f.Submit(context.Background(), req, nil)
				if err != nil {
					errCount.Add(1)
					t.Errorf("client %d job %d (%s): %v", c, i, key, err)
					continue
				}
				if got := canonicalResult(t, ev); !bytes.Equal(got, baseline[key]) {
					mismatches.Add(1)
					t.Errorf("client %d job %d (%s): result differs from baseline\n got %s\nwant %s",
						c, i, key, got, baseline[key])
				}
			}
		}(c)
	}
	close(startGun)

	// SIGKILL the victim while the sweep is in flight.
	go func() {
		time.Sleep(150 * time.Millisecond)
		killOnce.Do(func() {
			killedAt.Store(time.Now().UnixNano())
			procs[victim].cmd.Process.Kill()
			procs[victim].cmd.Wait()
		})
	}()
	wg.Wait()

	if n := errCount.Load(); n != 0 {
		t.Fatalf("%d client-visible errors across %d submissions; the bar is zero", n, clients*perClient)
	}
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("%d result mismatches after failover; results must be byte-identical", n)
	}

	// Recovery latency: time from SIGKILL until a survivor's failure
	// detector marks the victim dead.
	survivor := urls[(victim+1)%3]
	detectDeadline := time.Now().Add(15 * time.Second)
	var detected time.Time
	for time.Now().Before(detectDeadline) {
		resp, err := http.Get(survivor + "/v1/fleet")
		if err == nil {
			var st fleet.FleetStatus
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			for _, p := range st.Peers {
				if p.URL == urls[victim] && p.State == "dead" {
					detected = time.Now()
				}
			}
		}
		if !detected.IsZero() {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if detected.IsZero() {
		t.Fatal("survivors never marked the killed node dead")
	}
	t.Logf("kill-to-detection latency: %v", detected.Sub(time.Unix(0, killedAt.Load())))

	// The traced failover probe: a cold key (a tile count the sweep never
	// ran) submitted through a client whose rotation starts at the corpse,
	// under a caller-chosen trace ID with an attempt recorder. The first
	// attempt dies against the dead node, the retry lands on a survivor and
	// executes the job cold — and every span, from the failed client attempt
	// through the winning one to the server-side execution, must carry that
	// single ID. That is the "trace survives failover" guarantee.
	traceID := "stress-failover-trace"
	rec := obs.NewRecorder(0)
	ctx := obs.WithRecorder(obs.WithTrace(context.Background(), traceID), rec)
	probe := *victimKey
	probe.Tiles = 32 // not in jobMatrix: cold everywhere, so failover re-executes
	probeFleet := client.NewFleet(
		[]string{urls[victim], urls[(victim+1)%3], urls[(victim+2)%3]},
		client.RetryPolicy{
			MaxAttempts:    6,
			BaseBackoff:    50 * time.Millisecond,
			MaxBackoff:     2 * time.Second,
			AttemptTimeout: 10 * time.Second,
		})
	final, err := probeFleet.Submit(ctx, probe, nil)
	if err != nil {
		t.Fatalf("traced failover submission: %v", err)
	}
	if final.Trace != traceID {
		t.Fatalf("terminal trace = %q, want %q", final.Trace, traceID)
	}
	if len(final.Spans) == 0 {
		t.Fatal("terminal event carries no spans")
	}
	merged := append(rec.SpansFor(traceID), final.Spans...)
	if len(merged) < 3 {
		t.Errorf("merged failover trace has %d spans, want >= 3 (failed attempt, winning attempt, execution)", len(merged))
	}
	clientAttempts := 0
	for _, sp := range merged {
		if sp.Trace != traceID {
			t.Errorf("span %s/%s carries trace %q, want %q", sp.Proc, sp.Name, sp.Trace, traceID)
		}
		if sp.Name == "client.submit" {
			clientAttempts++
		}
	}
	if clientAttempts < 2 {
		t.Errorf("recorded %d client.submit attempts, want >= 2 (the probe must actually fail over)", clientAttempts)
	}

	// Merged Chrome trace of the failed-over job, for CI artifact upload.
	if out := os.Getenv("FLEET_TRACE_OUT"); out != "" {
		fh, err := os.Create(out)
		if err != nil {
			t.Fatalf("FLEET_TRACE_OUT: %v", err)
		}
		if err := trace.WriteChromeSpans(fh, merged); err != nil {
			t.Fatalf("writing Chrome trace: %v", err)
		}
		if err := fh.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote failed-over job trace (%d spans) to %s", len(merged), out)
	}

	// The fleet still works at full strength minus one: a final clean sweep
	// on the survivors, still byte-identical.
	for _, req := range matrix {
		ev, err := f.Submit(context.Background(), req, nil)
		if err != nil {
			t.Fatalf("post-kill sweep %s/%d: %v", req.App, req.Tiles, err)
		}
		key := req.App + "/" + fmt.Sprint(req.Tiles)
		if got := canonicalResult(t, ev); !bytes.Equal(got, baseline[key]) {
			t.Errorf("post-kill sweep %s: result differs from baseline", key)
		}
	}
}

// Overload must answer fast — a 429 with an honest Retry-After — never hang
// the client into a timeout. This is the degradation ladder's bottom rung,
// exercised against a real process.
func TestFleetOverloadDegradesToFast429(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process stress; skipped in -short")
	}
	bin := buildServed(t)
	ports := freePorts(t, 1)
	url := fmt.Sprintf("http://127.0.0.1:%d", ports[0])
	cmd := exec.Command(bin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", ports[0]),
		"-store", filepath.Join(t.TempDir(), "store"),
		"-workers", "1",
		"-queue", "2",
		"-heartbeat", "50ms",
		"-log=false",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := client.New(url).WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}

	// Fill the queue (workers 1, queue 2) with slow app simulations.
	submitAsync := func(req service.JobRequest) int {
		body, _ := json.Marshal(req)
		resp, err := http.Post(url+"/v1/jobs?wait=0", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		json.NewDecoder(resp.Body).Decode(&struct{}{})
		return resp.StatusCode
	}
	slow := func(tiles int) service.JobRequest {
		return service.JobRequest{App: "fluidanimate", Config: "msaomu2", Tiles: tiles}
	}
	if c1 := submitAsync(slow(64)); c1 != http.StatusAccepted {
		t.Fatalf("first fill got %d", c1)
	}
	if c2 := submitAsync(slow(48)); c2 != http.StatusAccepted {
		t.Fatalf("second fill got %d", c2)
	}

	// Flood with batch jobs: every rejection must land fast, as a 429 with
	// a Retry-After — not dangle until a client timeout.
	var rejected int
	for i := 0; i < 20; i++ {
		req := slow(32 + i)
		req.Priority = service.PriorityBatch
		body, _ := json.Marshal(req)
		start := time.Now()
		hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
		hreq, _ := http.NewRequestWithContext(hctx, http.MethodPost, url+"/v1/jobs?wait=0", bytes.NewReader(body))
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(hreq)
		elapsed := time.Since(start)
		hcancel()
		if err != nil {
			t.Fatalf("flood request %d timed out or failed after %v: %v", i, elapsed, err)
		}
		ra := resp.Header.Get("Retry-After")
		json.NewDecoder(resp.Body).Decode(&struct{}{})
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected++
			if elapsed > 2*time.Second {
				t.Errorf("flood request %d: 429 took %v, want fast rejection", i, elapsed)
			}
			if ra == "" {
				t.Errorf("flood request %d: 429 without Retry-After", i)
			}
		}
	}
	if rejected == 0 {
		t.Fatal("overload never produced a 429; queue should have been saturated")
	}
	t.Logf("flood: %d/20 batch submissions shed with fast 429s", rejected)
}
