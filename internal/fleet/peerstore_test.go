package fleet

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"misar/internal/obs"
	"misar/internal/store"
)

// peerServer is a minimal stand-in for a fleet node's store endpoints,
// backed by its own store directory.
func peerServer(t *testing.T) (*store.Store, *httptest.Server, *atomic.Uint64) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var gets atomic.Uint64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/store/{fp}", func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		payload, ok := st.Get(r.PathValue("fp"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(payload)
	})
	mux.HandleFunc("PUT /v1/store/{fp}", func(w http.ResponseWriter, r *http.Request) {
		payload, _ := io.ReadAll(r.Body)
		if err := st.Put(r.PathValue("fp"), payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return st, hs, &gets
}

func newPeerStore(t *testing.T, peerURLs []string) (*PeerStore, *Membership) {
	t.Helper()
	local, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMembership("http://self-not-listening:1", peerURLs, MembershipOptions{})
	ps := NewPeerStore(local, mem, PeerStoreOptions{FetchTimeout: 2 * time.Second})
	return ps, mem
}

func TestPeerFetchBackfills(t *testing.T) {
	peerSt, peer, gets := peerServer(t)
	fp := store.Fingerprint("warm result")
	payload := []byte(`{"cycles":777}`)
	if err := peerSt.Put(fp, payload); err != nil {
		t.Fatal(err)
	}

	ps, _ := newPeerStore(t, []string{peer.URL})
	got, ok := ps.GetCtx(context.Background(), fp)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("peer fetch = %q, %v", got, ok)
	}
	if st := ps.Stats(); st.PeerHits != 1 {
		t.Errorf("stats = %+v, want 1 peer hit", st)
	}

	// Backfilled: the second lookup is local, no new peer GET.
	before := gets.Load()
	if got, ok := ps.GetCtx(context.Background(), fp); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("post-backfill lookup = %q, %v", got, ok)
	}
	if gets.Load() != before {
		t.Error("backfilled record still fetched from the peer")
	}
}

// A thundering herd of identical cold lookups must collapse to one peer
// fan-out.
func TestPeerFetchSingleFlight(t *testing.T) {
	peerSt, _, _ := peerServer(t)
	fp := store.Fingerprint("contended")
	if err := peerSt.Put(fp, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	// A slow proxy in front of the peer so the herd piles up behind one
	// in-flight fetch.
	var slowGets atomic.Uint64
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slowGets.Add(1)
		<-release
		payload, ok := peerSt.Get(strings.TrimPrefix(r.URL.Path, "/v1/store/"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(payload)
	}))
	defer slow.Close()

	ps, _ := newPeerStore(t, []string{slow.URL})
	const herd = 16
	var wg sync.WaitGroup
	results := make([][]byte, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, ok := ps.GetCtx(context.Background(), fp)
			if ok {
				results[i] = b
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // herd assembles behind the in-flight fetch
	close(release)
	wg.Wait()

	if n := slowGets.Load(); n != 1 {
		t.Errorf("herd of %d caused %d peer GETs, want 1", herd, n)
	}
	for i, r := range results {
		if string(r) != "payload" {
			t.Errorf("herd member %d got %q", i, r)
		}
	}
}

func TestPutReplicatesToRingSuccessors(t *testing.T) {
	peerSt, peer, _ := peerServer(t)
	ps, _ := newPeerStore(t, []string{peer.URL})

	fp := store.Fingerprint("fresh result")
	payload := []byte(`{"cycles":1234}`)
	if err := ps.PutCtx(context.Background(), fp, payload); err != nil {
		t.Fatal(err)
	}
	ps.Wait() // replication is async; drain it

	if got, ok := peerSt.Get(fp); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("replica on peer = %q, %v", got, ok)
	}
	if st := ps.Stats(); st.Replicated != 1 || st.ReplicaErrs != 0 {
		t.Errorf("stats = %+v, want 1 replication", st)
	}
	// And the local copy is there too, of course.
	if got, ok := ps.Local().Get(fp); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("local copy = %q, %v", got, ok)
	}
}

// countingHandler counts slog records whose message matches.
type countingHandler struct {
	msg string
	n   *atomic.Uint64
}

func (h countingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h countingHandler) Handle(_ context.Context, r slog.Record) error {
	if r.Message == h.msg {
		h.n.Add(1)
	}
	return nil
}
func (h countingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h countingHandler) WithGroup(string) slog.Handler      { return h }

// The satellite acceptance test: a torn-write (truncated) local record is
// evicted exactly once — one eviction counter tick, one log line — and the
// lookup transparently recovers the payload from a peer replica.
func TestTornWriteEvictedOnceAndRefetchedFromPeer(t *testing.T) {
	peerSt, peer, _ := peerServer(t)
	fp := store.Fingerprint("torn record")
	payload := []byte(`{"cycles":4242,"coverage":1.0}`)
	if err := peerSt.Put(fp, payload); err != nil {
		t.Fatal(err)
	}

	ps, _ := newPeerStore(t, []string{peer.URL})
	local := ps.Local()
	var evictLogs atomic.Uint64
	local.SetLogger(slog.New(countingHandler{msg: "store: corrupt record evicted", n: &evictLogs}))

	// Write the record locally, then tear it: truncate to half, as a crash
	// mid-write (without the store's atomic rename) would.
	if err := local.Put(fp, payload); err != nil {
		t.Fatal(err)
	}
	recPath := filepath.Join(local.Dir(), fp[:2], fp[2:]+".rec")
	fi, err := os.Stat(recPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(recPath, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	ctx := obs.WithTrace(context.Background(), "trace-torn-write")
	got, ok := ps.GetCtx(ctx, fp)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("recovery fetch = %q, %v; want peer payload", got, ok)
	}
	if ev := local.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want exactly 1", ev)
	}
	if n := evictLogs.Load(); n != 1 {
		t.Errorf("eviction log lines = %d, want exactly 1", n)
	}
	if st := ps.Stats(); st.PeerHits != 1 {
		t.Errorf("peer stats = %+v, want 1 hit", st)
	}

	// The backfill repaired the local copy: no second eviction, no second
	// peer fetch.
	got2, ok := ps.GetCtx(ctx, fp)
	if !ok || !bytes.Equal(got2, payload) {
		t.Fatalf("post-repair lookup = %q, %v", got2, ok)
	}
	if ev := local.Stats().Evictions; ev != 1 {
		t.Errorf("evictions after repair = %d, still want exactly 1", ev)
	}
	if n := evictLogs.Load(); n != 1 {
		t.Errorf("eviction log lines after repair = %d, still want exactly 1", n)
	}
}

// A dead peer costs one failed candidate, feeds the failure detector, and
// the lookup degrades to a clean miss (the caller re-simulates).
func TestPeerFetchDegradesOnDeadPeer(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listening anymore

	ps, mem := newPeerStore(t, []string{deadURL})
	fp := store.Fingerprint("nowhere")
	if _, ok := ps.GetCtx(context.Background(), fp); ok {
		t.Fatal("hit from a dead fleet")
	}
	if st := ps.Stats(); st.PeerErrors != 1 || st.PeerMisses != 1 {
		t.Errorf("stats = %+v, want 1 error + 1 miss", st)
	}
	snap := mem.Snapshot()
	if len(snap) != 1 || snap[0].Failures == 0 {
		t.Errorf("transport failure not fed to the detector: %+v", snap)
	}
}
