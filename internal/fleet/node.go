package fleet

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"time"

	"misar/internal/obs"
	"misar/internal/service"
)

// maxRecordBytes bounds one store record on the wire. Result records are a
// few KB of JSON; 32 MiB leaves two orders of magnitude of headroom while
// still refusing to buffer something pathological.
const maxRecordBytes = 32 << 20

// ForwardedHeader marks a job request already routed once. A node that
// receives it executes locally no matter what its ring says — membership
// views can disagree transiently during churn, and without this marker two
// nodes with crossed views would bounce a job between them forever.
const ForwardedHeader = "X-Misar-Forwarded"

// NodeOptions configure one fleet node.
type NodeOptions struct {
	// ForwardTimeout bounds the *connection* to the owner, not the job: once
	// the owner starts streaming, the stream runs as long as the job does.
	// <= 0 means 10s.
	ForwardTimeout time.Duration
	// Logger receives routing logs; nil disables.
	Logger *slog.Logger
}

// Node wraps one misar-served Server with fleet behavior. Its handler
// intercepts job submissions and routes each to the node whose store owns
// the job's content fingerprint (consistent hashing over the live member
// set); everything else — and any job this node owns, or that was already
// forwarded once — falls through to the local service. It also exposes the
// store-record endpoints peers fetch and replicate through, and the
// membership view.
//
// Failover is server-side here and client-side in client.Fleet; the two
// compose. If the owner cannot be reached, the forwarding node degrades to
// local execution (the result is byte-identical — the simulator is
// deterministic — only warmth is lost). If the owner answers with an error
// status, that status is proxied through untouched so the client's retry
// policy sees the truth.
type Node struct {
	svc  *service.Server
	mem  *Membership
	ps   *PeerStore
	opt  NodeOptions
	hc   *http.Client
	mux  *http.ServeMux
	fwds chan struct{} // bounds concurrent outbound forwards
}

// NewNode assembles the fleet wrapper. ps may be nil (routing without peer
// replication); mem is required.
func NewNode(svc *service.Server, mem *Membership, ps *PeerStore, opt NodeOptions) *Node {
	if opt.ForwardTimeout <= 0 {
		opt.ForwardTimeout = 10 * time.Second
	}
	n := &Node{
		svc: svc,
		mem: mem,
		ps:  ps,
		opt: opt,
		// Transport-level timeout only for dialing/headers; the body stream
		// must live as long as the job.
		hc:   &http.Client{Transport: http.DefaultTransport},
		fwds: make(chan struct{}, 64),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", n.handleSubmit)
	mux.HandleFunc("GET /v1/store/{fp}", n.handleStoreGet)
	mux.HandleFunc("PUT /v1/store/{fp}", n.handleStorePut)
	mux.HandleFunc("GET /v1/fleet", n.handleFleet)
	mux.Handle("/", svc.Handler())
	n.mux = mux
	return n
}

// Handler returns the node's HTTP handler: fleet routes layered over the
// wrapped service.
func (n *Node) Handler() http.Handler { return n.mux }

// Membership returns the node's membership view.
func (n *Node) Membership() *Membership { return n.mem }

// handleSubmit routes one job submission. The decision tree:
//
//  1. Already forwarded, or fingerprint unknown, or ring empty, or we own
//     it → run locally.
//  2. Otherwise → proxy the stream from the owner, marking it forwarded.
//     Owner unreachable → mark it suspect and run locally (degraded, still
//     correct).
func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(ForwardedHeader) != "" {
		n.svc.Handler().ServeHTTP(w, r)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, `{"error":"request body too large or unreadable"}`, http.StatusBadRequest)
		return
	}
	r.Body.Close()

	owner := ""
	var req service.JobRequest
	if json.Unmarshal(body, &req) == nil {
		if fp, err := service.RequestFingerprint(&req); err == nil {
			owner = n.mem.Ring().Owner(fp)
		}
		// An unroutable request (bad JSON, unknown app) runs locally, where
		// the service will produce its usual diagnostic.
	}
	if owner == "" || owner == n.mem.Self() {
		n.serveLocal(w, r, body)
		return
	}
	if !n.forward(w, r, owner, body) {
		n.serveLocal(w, r, body)
	}
}

// serveLocal replays the buffered body into the wrapped service.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(newByteReader(body))
	r2.ContentLength = int64(len(body))
	n.svc.Handler().ServeHTTP(w, r2)
}

// forward proxies the submission to the owner and streams its NDJSON reply
// back, flushing per write so heartbeats and progress arrive live. Returns
// false only on transport failure before any byte was relayed — the caller
// then degrades to local execution. HTTP-level errors (429, 5xx) are
// relayed, not retried: the client's retry policy owns that decision.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte) bool {
	select {
	case n.fwds <- struct{}{}:
		defer func() { <-n.fwds }()
	default:
		return false // forwarding saturated; run locally rather than queue
	}

	ctx := r.Context()
	traceID := r.Header.Get(service.TraceHeader)
	if traceID != "" {
		ctx = obs.WithTrace(ctx, traceID)
	}
	if rec := n.svc.Recorder(); rec != nil {
		ctx = obs.WithRecorder(ctx, rec)
	}
	sp := obs.StartSpan(ctx, "fleet", "fleet.forward")
	sp.SetArg("owner", owner)
	defer sp.End()

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Bound only the connection phase: cancel if no response arrives in
	// ForwardTimeout, but once streaming starts the job owns the clock.
	connTimer := time.AfterFunc(n.opt.ForwardTimeout, cancel)

	preq, err := http.NewRequestWithContext(cctx, http.MethodPost, owner+"/v1/jobs", newByteReader(body))
	if err != nil {
		connTimer.Stop()
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(ForwardedHeader, n.mem.Self())
	if traceID != "" {
		preq.Header.Set(service.TraceHeader, traceID)
	}
	resp, err := n.hc.Do(preq)
	if !connTimer.Stop() {
		// Timer already fired: the owner took too long to answer.
		if resp != nil {
			resp.Body.Close()
		}
		n.mem.MarkSuspect(owner, "forward: connect timeout")
		n.logForwardFail(owner, traceID, "connect timeout")
		return false
	}
	if err != nil {
		n.mem.MarkSuspect(owner, "forward: "+err.Error())
		n.logForwardFail(owner, traceID, err.Error())
		return false
	}
	defer resp.Body.Close()
	n.mem.MarkAlive(owner)

	h := w.Header()
	for _, k := range []string{"Content-Type", "Retry-After", service.TraceHeader} {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		m, rerr := resp.Body.Read(buf)
		if m > 0 {
			if _, werr := w.Write(buf[:m]); werr != nil {
				return true // client went away; nothing left to salvage
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			// Stream ended — cleanly or not. Bytes already reached the
			// client, so local fallback would corrupt the stream; the
			// client-side watchdog handles a truncated one.
			return true
		}
	}
}

func (n *Node) logForwardFail(owner, trace, reason string) {
	if n.opt.Logger == nil {
		return
	}
	n.opt.Logger.LogAttrs(context.Background(), slog.LevelWarn, "fleet: forward failed, running locally",
		slog.String("owner", owner), slog.String("trace", trace), slog.String("reason", reason))
}

// handleStoreGet serves one local store record to a peer. Strictly local —
// no recursive peer fetch — so two nodes missing the same record cannot
// chase each other.
func (n *Node) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !validFingerprint(fp) || n.svc.Store() == nil {
		http.Error(w, `{"error":"bad fingerprint or no store"}`, http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if id := r.Header.Get(service.TraceHeader); id != "" {
		ctx = obs.WithTrace(ctx, id)
	}
	payload, ok := n.svc.Store().GetCtx(ctx, fp)
	if !ok {
		http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

// handleStorePut accepts one replicated record from a peer. The local store
// re-verifies integrity on every read, so a corrupt push costs an eviction,
// never a wrong answer.
func (n *Node) handleStorePut(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !validFingerprint(fp) || n.svc.Store() == nil {
		http.Error(w, `{"error":"bad fingerprint or no store"}`, http.StatusBadRequest)
		return
	}
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRecordBytes))
	if err != nil {
		http.Error(w, `{"error":"body unreadable or too large"}`, http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if id := r.Header.Get(service.TraceHeader); id != "" {
		ctx = obs.WithTrace(ctx, id)
	}
	if err := n.svc.Store().PutCtx(ctx, fp, payload); err != nil {
		http.Error(w, `{"error":"store write failed"}`, http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// FleetStatus is the GET /v1/fleet response: this node's view of the fleet.
type FleetStatus struct {
	Self    string          `json:"self"`
	Members []string        `json:"members"`
	Peers   []PeerStatus    `json:"peers"`
	Store   *PeerStoreStats `json:"store,omitempty"`
}

func (n *Node) handleFleet(w http.ResponseWriter, r *http.Request) {
	st := FleetStatus{
		Self:    n.mem.Self(),
		Members: n.mem.Members(),
		Peers:   n.mem.Snapshot(),
	}
	if n.ps != nil {
		s := n.ps.Stats()
		st.Store = &s
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// validFingerprint accepts hex SHA-256 fingerprints and the "micro:<op>"
// form micro-benchmark results key on.
func validFingerprint(fp string) bool {
	if len(fp) == 0 || len(fp) > 128 {
		return false
	}
	if _, err := hex.DecodeString(fp); err == nil {
		return true
	}
	for _, c := range fp {
		ok := c == ':' || c == '-' || c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// newByteReader returns a fresh reader over b (forward needs a rewindable
// body; http.NewRequest special-cases *bytes.Reader for retries).
func newByteReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	m := copy(p, r.b[r.off:])
	r.off += m
	return m, nil
}
