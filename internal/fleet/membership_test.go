package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalizeURL(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8091":         "http://127.0.0.1:8091",
		"http://a:1/":            "http://a:1",
		"https://b.example.com/": "https://b.example.com",
	}
	for in, want := range cases {
		if got := NormalizeURL(in); got != want {
			t.Errorf("NormalizeURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// The state machine: one failure suspects (peer stays routable), DeadAfter
// consecutive failures kill (peer leaves the ring), one success resurrects.
func TestMembershipStateMachine(t *testing.T) {
	m := NewMembership("http://self:1", []string{"http://peer:2"}, MembershipOptions{DeadAfter: 2})

	if got := m.Members(); len(got) != 2 {
		t.Fatalf("members = %v, want self+peer", got)
	}

	m.MarkSuspect("http://peer:2", "transport error")
	if st := m.Snapshot()[0]; st.State != "suspect" || st.Failures != 1 {
		t.Fatalf("after 1 failure: %+v", st)
	}
	// Suspect peers still route: a single dropped probe must not remap keys.
	if got := m.Members(); len(got) != 2 {
		t.Fatalf("suspect peer left the member set: %v", got)
	}

	m.MarkSuspect("http://peer:2", "transport error again")
	if st := m.Snapshot()[0]; st.State != "dead" {
		t.Fatalf("after %d failures: %+v", 2, st)
	}
	if got := m.Members(); len(got) != 1 || got[0] != "http://self:1" {
		t.Fatalf("dead peer still in member set: %v", got)
	}
	if got := m.AlivePeers(); len(got) != 0 {
		t.Fatalf("dead peer still a fetch candidate: %v", got)
	}

	m.MarkAlive("http://peer:2")
	if st := m.Snapshot()[0]; st.State != "alive" || st.Failures != 0 {
		t.Fatalf("after resurrection: %+v", st)
	}
	if got := m.Members(); len(got) != 2 {
		t.Fatalf("resurrected peer missing from member set: %v", got)
	}
}

// The ring must be rebuilt when membership changes and cached when it
// doesn't.
func TestMembershipRingTracksMembers(t *testing.T) {
	m := NewMembership("http://self:1", []string{"http://peer:2"}, MembershipOptions{DeadAfter: 1})
	r1 := m.Ring()
	if len(r1.Nodes()) != 2 {
		t.Fatalf("ring nodes = %v", r1.Nodes())
	}
	if m.Ring() != r1 {
		t.Error("unchanged membership rebuilt the ring")
	}
	m.MarkSuspect("http://peer:2", "down") // DeadAfter 1: instantly dead
	r2 := m.Ring()
	if len(r2.Nodes()) != 1 {
		t.Fatalf("ring after death = %v", r2.Nodes())
	}
}

// End-to-end probe loop against real HTTP endpoints: a healthy peer stays
// alive, a killed one is detected dead within a few probe intervals, and an
// unstarted Membership still stops cleanly.
func TestMembershipProbing(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer healthy.Close()
	var dying atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dying.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer flaky.Close()

	m := NewMembership("http://self:1", []string{healthy.URL, flaky.URL}, MembershipOptions{
		ProbeInterval: 10 * time.Millisecond,
		DeadAfter:     2,
	})
	m.Start()
	defer m.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(m.AlivePeers()) == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.AlivePeers(); len(got) != 2 {
		t.Fatalf("healthy peers never confirmed alive: %v", got)
	}

	dying.Store(true)
	for time.Now().Before(deadline) {
		if len(m.AlivePeers()) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.AlivePeers(); len(got) != 1 || got[0] != healthy.URL {
		t.Fatalf("failing peer never detected: %v", got)
	}

	dying.Store(false)
	for time.Now().Before(deadline) {
		if len(m.AlivePeers()) == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.AlivePeers(); len(got) != 2 {
		t.Fatalf("recovered peer never resurrected: %v", got)
	}
}

func TestMembershipStopWithoutStart(t *testing.T) {
	m := NewMembership("http://self:1", []string{"http://peer:2"}, MembershipOptions{})
	done := make(chan struct{})
	go func() {
		m.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop() on an unstarted Membership hung")
	}
}
