package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"misar/internal/harness"
	"misar/internal/obs"
	"misar/internal/service"
	"misar/internal/service/client"
	"misar/internal/store"
)

// testFleetNode is one in-process fleet member.
type testFleetNode struct {
	url  string
	svc  *service.Server
	mem  *Membership
	ps   *PeerStore
	node *Node
	hs   *httptest.Server
}

// startTestFleet boots n fleet nodes on real loopback listeners (the
// membership needs each node's URL before its handler exists, so listeners
// come first). Probing is not started: peers stay optimistically alive,
// which keeps the tests deterministic; the data path supplies failure
// evidence where a test needs it.
func startTestFleet(t *testing.T, n int) []*testFleetNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*testFleetNode, n)
	for i := range nodes {
		mem := NewMembership(urls[i], urls, MembershipOptions{})
		var ps *PeerStore
		svc, err := service.New(service.Options{
			Workers:   2,
			StoreDir:  t.TempDir(),
			Heartbeat: 20 * time.Millisecond,
			WrapStore: func(st *store.Store) harness.ResultStore {
				ps = NewPeerStore(st, mem, PeerStoreOptions{FetchTimeout: 2 * time.Second})
				return ps
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		node := NewNode(svc, mem, ps, NodeOptions{ForwardTimeout: 2 * time.Second})
		hs := &httptest.Server{
			Listener: listeners[i],
			Config:   &http.Server{Handler: node.Handler()},
		}
		hs.Start()
		nodes[i] = &testFleetNode{url: urls[i], svc: svc, mem: mem, ps: ps, node: node, hs: hs}
		t.Cleanup(func() {
			nodes[i].svc.Close()
			nodes[i].hs.Close()
		})
	}
	return nodes
}

func microJob(op string) service.JobRequest {
	return service.JobRequest{Kind: "micro", App: op, Config: "msaomu2", Tiles: 4}
}

// ownerOf maps a request to the node the fleet should run it on.
func ownerOf(t *testing.T, nodes []*testFleetNode, req service.JobRequest) int {
	t.Helper()
	fp, err := service.RequestFingerprint(&req)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].mem.Ring().Owner(fp)
	for i, nd := range nodes {
		if nd.url == owner {
			return i
		}
	}
	t.Fatalf("owner %s is not a fleet member", owner)
	return -1
}

// A job submitted to a non-owner must execute on the owner — that is the
// whole point of the ring.
func TestNodeRoutesToOwner(t *testing.T) {
	nodes := startTestFleet(t, 3)
	req := microJob("LockAcquire")
	owner := ownerOf(t, nodes, req)
	entry := (owner + 1) % len(nodes) // deliberately not the owner

	c := client.New(nodes[entry].url)
	final, err := c.Submit(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Result == nil || final.Result.Micro == nil {
		t.Fatalf("no micro result: %+v", final)
	}
	for i, nd := range nodes {
		want := 0
		if i == owner {
			want = 1
		}
		if got := nd.svc.RunnerStats().Executed; got != want {
			t.Errorf("node %d executed %d sims, want %d", i, got, want)
		}
	}
}

// A forwarded request must execute where it lands, even on a non-owner:
// the loop-prevention contract.
func TestNodeForwardedHeaderExecutesLocally(t *testing.T) {
	nodes := startTestFleet(t, 3)
	req := microJob("CondSignal")
	owner := ownerOf(t, nodes, req)
	entry := (owner + 1) % len(nodes)

	body, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, nodes[entry].url+"/v1/jobs", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ForwardedHeader, "http://someone-else:1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Drain the NDJSON stream to completion.
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var ev service.JobEvent
		if err := dec.Decode(&ev); err != nil {
			break
		}
	}
	if got := nodes[entry].svc.RunnerStats().Executed; got != 1 {
		t.Errorf("forwarded job executed on entry node %d times, want 1", got)
	}
	if got := nodes[owner].svc.RunnerStats().Executed; got != 0 {
		t.Errorf("forwarded job re-forwarded to owner (%d executions)", got)
	}
}

// Kill the owner: the entry node's forward fails, it degrades to local
// execution, the client sees a normal successful stream, and the owner is
// marked suspect.
func TestNodeFallsBackWhenOwnerUnreachable(t *testing.T) {
	nodes := startTestFleet(t, 3)
	req := microJob("BarrierHandoff")
	owner := ownerOf(t, nodes, req)
	entry := (owner + 1) % len(nodes)

	nodes[owner].hs.CloseClientConnections()
	nodes[owner].hs.Close() // the "kill"

	ctx := obs.WithTrace(context.Background(), "trace-failover-test")
	c := client.New(nodes[entry].url)
	final, err := c.Submit(ctx, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Result == nil || final.Result.Micro == nil {
		t.Fatalf("no micro result after failover: %+v", final)
	}
	if final.Trace != "trace-failover-test" {
		t.Errorf("trace ID lost across failover: %q", final.Trace)
	}
	if got := nodes[entry].svc.RunnerStats().Executed; got != 1 {
		t.Errorf("entry node executed %d sims, want 1 (local fallback)", got)
	}
	snap := nodes[entry].mem.Snapshot()
	var found bool
	for _, st := range snap {
		if st.URL == nodes[owner].url && st.Failures > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("dead owner not marked by the detector: %+v", snap)
	}
}

// The failover result must be byte-identical to what the owner would have
// produced: determinism is what makes re-execution a correct recovery
// strategy.
func TestNodeFailoverResultIdentical(t *testing.T) {
	nodes := startTestFleet(t, 3)
	req := microJob("LockHandoff")
	owner := ownerOf(t, nodes, req)
	entry := (owner + 1) % len(nodes)

	// First run on the healthy fleet (executes on the owner).
	c := client.New(nodes[entry].url)
	healthy, err := c.Submit(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the owner; the re-execution happens on the entry node.
	nodes[owner].hs.Close()
	failed, err := c.Submit(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(healthy.Result)
	b, _ := json.Marshal(failed.Result)
	if !bytes.Equal(a, b) {
		t.Errorf("failover result differs:\n%s\nvs\n%s", a, b)
	}
}

func TestNodeStoreEndpoints(t *testing.T) {
	nodes := startTestFleet(t, 2)
	fp := store.Fingerprint("endpoint test")
	payload := []byte("record payload")

	// PUT to node 0, GET it back.
	preq, _ := http.NewRequest(http.MethodPut, nodes[0].url+"/v1/store/"+fp, bytes.NewReader(payload))
	resp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	g, err := http.Get(nodes[0].url + "/v1/store/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(g.Body)
	if g.StatusCode != http.StatusOK || !bytes.Equal(buf.Bytes(), payload) {
		t.Fatalf("GET = %d %q", g.StatusCode, buf.Bytes())
	}

	// Missing record is a clean 404, malformed fingerprint a 400.
	if r2, _ := http.Get(nodes[0].url + "/v1/store/" + store.Fingerprint("absent")); r2.StatusCode != http.StatusNotFound {
		t.Errorf("missing record status %d", r2.StatusCode)
	}
	if r3, _ := http.Get(nodes[0].url + "/v1/store/..%2F..%2Fetc"); r3.StatusCode == http.StatusOK {
		t.Errorf("malformed fingerprint accepted: %d", r3.StatusCode)
	}
}

func TestNodeFleetStatusEndpoint(t *testing.T) {
	nodes := startTestFleet(t, 3)
	resp, err := http.Get(nodes[0].url + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self != nodes[0].url {
		t.Errorf("self = %q, want %q", st.Self, nodes[0].url)
	}
	if len(st.Members) != 3 {
		t.Errorf("members = %v, want 3", st.Members)
	}
	if len(st.Peers) != 2 {
		t.Errorf("peers = %v, want 2", st.Peers)
	}
	if st.Store == nil {
		t.Error("store stats missing from fleet status")
	}
}
