// Package fleet turns N independent misar-served processes into one
// resilient service: a consistent-hash ring routes each job to the node
// whose store owns its content fingerprint, a health-checked membership
// view routes around dead nodes, a peer-aware result store lets any node
// serve any warm result (owner miss → bounded-fanout peer GET → local
// backfill, with single-flight dedup), and successful results replicate to
// ring successors so a killed node's warmth survives it.
//
// The design follows MiSAR's own overflow-management philosophy: when the
// fast path (the owner's warm store) saturates or fails, degrade
// deterministically to a slower-but-correct path — a peer's replica, then a
// local re-simulation — instead of wedging. See DESIGN.md §15.
package fleet

import (
	"hash/fnv"
	"sort"
)

// vnodesPerNode is the number of ring points each node projects. 128 keeps
// the ownership split within a few percent of uniform for small fleets
// while the ring stays tiny (3 nodes → 384 points).
const vnodesPerNode = 128

// ringPoint is one virtual node position.
type ringPoint struct {
	h    uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node base URLs.
// Keys are content fingerprints (hex SHA-256 of the canonical run key, see
// harness.StoreKey); Owner maps a key to the node whose store should hold
// it. Adding or removing one node remaps only the keys that node owned —
// the property that makes membership churn cheap: every other node's warm
// store stays authoritative.
type Ring struct {
	points []ringPoint
	nodes  []string
}

// hash64 positions a string on the ring. FNV-1a is not cryptographic, but
// ring placement only needs dispersion, not adversarial resistance — the
// keys themselves are already SHA-256 fingerprints.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NewRing builds a ring over nodes (duplicates ignored). An empty node set
// yields a ring whose Owner is always "".
func NewRing(nodes []string) *Ring {
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{h: hash64(fmt2(n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Hash ties between different nodes are broken lexically so every
		// member computes the identical ring regardless of input order.
		return r.points[i].node < r.points[j].node
	})
	sort.Strings(r.nodes)
	return r
}

// fmt2 renders the vnode label without fmt.Sprintf (this runs 128× per
// node on every membership change).
func fmt2(node string, v int) string {
	buf := make([]byte, 0, len(node)+8)
	buf = append(buf, node...)
	buf = append(buf, '#')
	if v == 0 {
		return string(append(buf, '0'))
	}
	var digits [8]byte
	i := len(digits)
	for v > 0 {
		i--
		digits[i] = byte('0' + v%10)
		v /= 10
	}
	return string(append(buf, digits[i:]...))
}

// Nodes returns the ring's member set, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning key: the first ring point at or after the
// key's hash, wrapping. "" when the ring is empty.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Replicas returns up to n distinct nodes for key in ring order, the owner
// first — the replication set for the key's record and the preference order
// for peer fetches.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
