package obs

import (
	"testing"

	"misar/internal/isa"
	"misar/internal/sim"
)

// BenchmarkFlightRecord is the obs-overhead benchmark gated in CI via
// misar-bench -against/-max-regress: the flight recorder is always on, so
// its per-event cost must stay a handful of nanoseconds and zero
// allocations (one ring-slot store, see FlightRecorder.Record).
func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlightRecorder(DefaultFlightCapacity)
	ev := FlightEvent{At: 1, Kind: FMsaReq, Tile: 3, Core: 7, Addr: 0x1000040, Arg: uint32(isa.OpLock)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.At++
		f.Record(ev)
	}
}

// churnLoop is internal/sim's BenchmarkEngineChurn body with the flight
// recorder attached at production density: real app runs record one flight
// event per 3-6 fired engine events (streamcluster/fluidanimate at 8-32
// tiles, Engine.Fired vs FlightRecorder.Total), and each iteration here
// fires two, so recording every second iteration is one record per 4 fired
// events. f == nil is the bare reference: the nil check is the exact
// branch real call sites pay.
func churnLoop(b *testing.B, f *FlightRecorder) {
	e := sim.NewEngine()
	nop := func(any) {}
	for i := 0; i < 64; i++ {
		e.AtCall(sim.Time(i), nop, nil)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AfterCall(3, nop, nil)
		dead := e.AfterCall(5, nop, nil)
		e.AfterCall(1, nop, nil)
		dead.Cancel()
		e.Step()
		e.Step()
		if i&1 == 0 {
			f.Record(FlightEvent{At: e.Now(), Kind: FMsaReq, Tile: 1, Core: 2, Addr: 0x1000040, Arg: uint32(isa.OpLock)})
		}
	}
}

// BenchmarkEngineChurnBare is the reference for the flight-recorder
// overhead gate: the same loop as BenchmarkEngineChurnFlight with a nil
// recorder. misar-bench runs the pair back-to-back in one process (so
// machine noise largely cancels) and fails if the recorder costs more than
// 5%; -against gates the absolute numbers like every other benchmark.
func BenchmarkEngineChurnBare(b *testing.B)   { churnLoop(b, nil) }
func BenchmarkEngineChurnFlight(b *testing.B) { churnLoop(b, NewFlightRecorder(DefaultFlightCapacity)) }

// BenchmarkFlightSnapshot measures the dump path (taken only on failures
// and /flight requests, never on the hot path).
func BenchmarkFlightSnapshot(b *testing.B) {
	f := NewFlightRecorder(DefaultFlightCapacity)
	for i := 0; i < DefaultFlightCapacity*2; i++ {
		f.Record(FlightEvent{At: at(i), Kind: FMsaReq})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := f.Snapshot(); len(d.Events) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
