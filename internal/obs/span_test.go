package obs

import (
	"context"
	"testing"
	"time"

	"misar/internal/trace"
)

func TestTraceContextPropagation(t *testing.T) {
	rec := NewRecorder(16)
	ctx := WithRecorder(WithTrace(context.Background(), "abc123"), rec)
	if TraceIDOf(ctx) != "abc123" || RecorderOf(ctx) != rec {
		t.Fatal("context values lost")
	}

	// Transfer carries obs values onto a fresh lifecycle context.
	detached := Transfer(context.Background(), ctx)
	if TraceIDOf(detached) != "abc123" || RecorderOf(detached) != rec {
		t.Fatal("Transfer lost obs values")
	}
	// ...but not cancellation: detached must survive the source's death.
	if detached.Done() != nil {
		t.Fatal("Transfer must not inherit cancellation")
	}
}

func TestStartSpanRecords(t *testing.T) {
	rec := NewRecorder(16)
	ctx := WithRecorder(WithTrace(context.Background(), "t1"), rec)
	sp := StartSpan(ctx, "sim", "sim.run")
	sp.SetArg("label", "x on y")
	time.Sleep(time.Millisecond)
	sp.End()

	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	got := spans[0]
	if got.Trace != "t1" || got.Proc != "sim" || got.Name != "sim.run" {
		t.Errorf("span = %+v", got)
	}
	if got.Dur <= 0 {
		t.Errorf("span duration %d, want > 0", got.Dur)
	}
	if got.Args["label"] != "x on y" {
		t.Errorf("span args = %v", got.Args)
	}
}

func TestStartSpanUntracedIsNoop(t *testing.T) {
	sp := StartSpan(context.Background(), "sim", "sim.run")
	if sp != nil {
		t.Fatal("untraced context should yield a nil span")
	}
	sp.SetArg("k", "v") // must not panic
	sp.End()
}

func TestRecorderRingAndFilter(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 6; i++ {
		id := "even"
		if i%2 == 1 {
			id = "odd"
		}
		rec.Record(trace.Span{Trace: id, Name: "s", Start: int64(i)})
	}
	if got := len(rec.Spans()); got != 4 {
		t.Fatalf("retained %d spans, want 4", got)
	}
	if rec.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", rec.Dropped())
	}
	odd := rec.SpansFor("odd")
	for _, sp := range odd {
		if sp.Trace != "odd" {
			t.Errorf("filter leaked %+v", sp)
		}
	}
	if len(odd) != 2 { // spans 3 and 5 survive the ring
		t.Errorf("odd spans = %d, want 2", len(odd))
	}
	// Oldest-first after wrapping.
	all := rec.Spans()
	for i := 1; i < len(all); i++ {
		if all[i].Start < all[i-1].Start {
			t.Fatalf("spans out of order: %+v", all)
		}
	}
}

func TestNilRecorderAndNilSpan(t *testing.T) {
	var rec *Recorder
	rec.Record(trace.Span{})
	if rec.Spans() != nil || rec.Dropped() != 0 {
		t.Fatal("nil recorder must be inert")
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || a == b {
		t.Fatalf("trace IDs %q / %q: want 16 hex chars, distinct", a, b)
	}
}
