package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"misar/internal/trace"
)

// NewTraceID mints a 16-hex-character random trace ID at the request edge
// (the HTTP client or misar-sim -remote). Everything downstream propagates
// it; nothing downstream mints one — a span without a trace ID means the
// caller did not ask for tracing.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken host; a constant ID keeps tracing
		// functional (spans still correlate within one process).
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// ctxKey keys the obs context values.
type ctxKey int

const (
	traceKey ctxKey = iota
	recorderKey
)

// WithTrace returns ctx tagged with the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey, id)
}

// TraceIDOf returns the trace ID carried by ctx ("" when untraced).
func TraceIDOf(ctx context.Context) string {
	id, _ := ctx.Value(traceKey).(string)
	return id
}

// WithRecorder returns ctx carrying the span recorder.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey, r)
}

// RecorderOf returns the span recorder carried by ctx (nil when absent).
func RecorderOf(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey).(*Recorder)
	return r
}

// Transfer copies the obs values (trace ID, recorder) from src onto dst.
// The harness uses it to detach a run's lifecycle from the submitter's
// cancellation while keeping the submitter's tracing: the run context must
// not die with the request, but its spans still belong to the request's
// trace.
func Transfer(dst, src context.Context) context.Context {
	if id := TraceIDOf(src); id != "" {
		dst = WithTrace(dst, id)
	}
	if r := RecorderOf(src); r != nil {
		dst = WithRecorder(dst, r)
	}
	return dst
}

// Recorder collects wall-clock spans, bounded so a long-running server's
// span memory cannot grow without limit: when full, the oldest spans are
// overwritten and Dropped counts them. Safe for concurrent use; a nil
// *Recorder records nothing.
type Recorder struct {
	mu      sync.Mutex
	ring    []trace.Span
	next    int
	dropped uint64
}

// DefaultSpanCapacity bounds a Recorder built with capacity < 1: roomy
// enough for thousands of served jobs between scrapes of a /trace endpoint.
const DefaultSpanCapacity = 8192

// NewRecorder builds a span recorder retaining up to capacity spans.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = DefaultSpanCapacity
	}
	return &Recorder{ring: make([]trace.Span, 0, capacity)}
}

// Record appends one finished span. Safe on a nil receiver.
func (r *Recorder) Record(sp trace.Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, sp)
	} else {
		r.ring[r.next] = sp
		r.next = (r.next + 1) % len(r.ring)
		r.dropped++
	}
	r.mu.Unlock()
}

// Spans returns a copy of every retained span, oldest-first.
func (r *Recorder) Spans() []trace.Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]trace.Span, 0, len(r.ring))
	if len(r.ring) == cap(r.ring) && r.dropped > 0 {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}

// SpansFor returns the retained spans tagged with trace ID id, oldest-first.
func (r *Recorder) SpansFor(id string) []trace.Span {
	var out []trace.Span
	for _, sp := range r.Spans() {
		if sp.Trace == id {
			out = append(out, sp)
		}
	}
	return out
}

// Dropped reports how many spans were lost to ring overwrites.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ActiveSpan is an in-progress span started by StartSpan. A nil *ActiveSpan
// (the untraced case) accepts every method as a no-op, so instrumentation
// sites never branch.
type ActiveSpan struct {
	rec   *Recorder
	sp    trace.Span
	start time.Time
}

// StartSpan opens a span on the recorder and trace ID carried by ctx.
// Returns nil — a no-op span — when ctx carries no recorder, so untraced
// runs pay only a context lookup.
func StartSpan(ctx context.Context, proc, name string) *ActiveSpan {
	rec := RecorderOf(ctx)
	if rec == nil {
		return nil
	}
	now := time.Now()
	return &ActiveSpan{
		rec:   rec,
		start: now,
		sp: trace.Span{
			Trace: TraceIDOf(ctx),
			Proc:  proc,
			Name:  name,
			Start: now.UnixMicro(),
		},
	}
}

// SetArg attaches one key/value shown in the trace UI. Safe on nil.
func (a *ActiveSpan) SetArg(k, v string) {
	if a == nil {
		return
	}
	if a.sp.Args == nil {
		a.sp.Args = map[string]string{}
	}
	a.sp.Args[k] = v
}

// End closes the span and records it. Safe on nil; idempotence is not
// required — call exactly once, usually via defer.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.sp.Dur = time.Since(a.start).Microseconds()
	a.rec.Record(a.sp)
}
