// Package obs is the serving-path observability layer: an always-on flight
// recorder of recent simulator events, wall-clock span recording for
// end-to-end request tracing, and trace-ID propagation through contexts.
//
// The two halves mirror the repo's two time domains. The FlightRecorder
// lives inside one simulated machine and records *simulated-time* events
// (MSA operations, OMU steers, coherence messages, NoC deliveries) into a
// fixed ring with zero allocations, so the last moments before a liveness or
// safety failure are always available post mortem. The span Recorder lives
// in the serving processes and records *wall-clock* intervals (client
// submit, queue wait, store lookup, simulation phases) tagged with a trace
// ID minted at the edge, so one served job renders as a single timeline in
// Perfetto (see trace.WriteChromeSpans).
package obs

import (
	"encoding/json"
	"fmt"
	"sync"

	"misar/internal/isa"
	"misar/internal/memory"
	"misar/internal/sim"
	"misar/internal/trace"
)

// FlightKind classifies one flight-recorder event.
type FlightKind uint8

// Flight event kinds. The Arg encodings are fixed per kind and documented
// here; Detail decodes them for humans.
const (
	FNone    FlightKind = iota
	FMsaReq             // MSA request delivered to a home slice; Arg = isa.SyncOp
	FMsaResp            // MSA response delivered to a core; Arg = op<<8 | isa.Result
	FMsaMsg             // MSA-to-MSA cond-protocol message; Arg = internal kind
	FCoh                // coherence message delivered; Arg = coherence MsgKind
	FSteer              // OMU steered an acquire to software; Arg = isa.SyncType
	FCapSteer           // capacity steer (no entry allocatable); Arg = isa.SyncType
	FAlloc              // MSA entry allocated; Arg = isa.SyncType
	FFree               // MSA entry deallocated; Arg = isa.SyncType
	FStandby            // entry entered standby; Arg = isa.SyncType
	FReclaim            // standby entry reclaim started; Arg = isa.SyncType
	FGrant              // HWSync block grant shipped; Core = grantee
	FRevoke             // standby revocation issued
	FSilent             // LOCK_SILENT recorded
	FTxBegin            // TM transaction attempt began; Arg = attempt number (0 = first)
	FTxCommit           // TM transaction committed; Arg = write-set size
	FTxAbort            // TM transaction aborted; Arg = tm abort reason (see tm.AbortReason)
	numFlightKinds
)

var flightKindNames = [numFlightKinds]string{
	FNone:     "none",
	FMsaReq:   "msa-req",
	FMsaResp:  "msa-resp",
	FMsaMsg:   "msa-msg",
	FCoh:      "coh",
	FSteer:    "steer",
	FCapSteer: "cap-steer",
	FAlloc:    "alloc",
	FFree:     "free",
	FStandby:  "standby",
	FReclaim:  "reclaim",
	FGrant:    "grant",
	FRevoke:   "revoke",
	FSilent:   "silent",
	FTxBegin:  "tx-begin",
	FTxCommit: "tx-commit",
	FTxAbort:  "tx-abort",
}

func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return fmt.Sprintf("FlightKind(%d)", uint8(k))
}

// flightKindByName is the inverse of flightKindNames, for decoding dumps.
var flightKindByName = func() map[string]FlightKind {
	m := make(map[string]FlightKind, numFlightKinds)
	for k, n := range flightKindNames {
		m[n] = FlightKind(k)
	}
	return m
}()

// argNames holds optional per-kind Arg decode tables registered by the
// packages that own the encodings obs cannot import (e.g. machine registers
// the coherence message-kind names for FCoh). Read-mostly; written at init.
var (
	argNamesMu sync.RWMutex
	argNames   = map[FlightKind][]string{}
)

// RegisterArgNames installs a decode table for kind's Arg values: Arg n
// renders as names[n] in Detail. Unregistered or out-of-range args render
// numerically, so registration is cosmetic, never required.
func RegisterArgNames(kind FlightKind, names []string) {
	argNamesMu.Lock()
	argNames[kind] = names
	argNamesMu.Unlock()
}

func argName(kind FlightKind, arg uint32) (string, bool) {
	argNamesMu.RLock()
	names := argNames[kind]
	argNamesMu.RUnlock()
	if int(arg) < len(names) {
		return names[arg], true
	}
	return "", false
}

// FlightEvent is one compact flight-recorder entry. The struct is plain
// value data — no strings, no pointers — so recording is a single ring-slot
// store and a dump marshals without touching the machine again.
type FlightEvent struct {
	At   sim.Time    // simulated cycle
	Addr memory.Addr // synchronization / cache-line address (0 when n/a)
	Arg  uint32      // kind-specific payload, see the FlightKind docs
	Kind FlightKind
	Tile int16 // tile that recorded the event (the home slice / destination)
	Core int16 // core or peer tile involved, -1 when n/a
}

// Detail renders the kind-specific Arg for humans.
func (e FlightEvent) Detail() string {
	switch e.Kind {
	case FMsaReq:
		return isa.SyncOp(e.Arg).String()
	case FMsaResp:
		return isa.SyncOp(e.Arg>>8).String() + " " + isa.Result(e.Arg&0xff).String()
	case FSteer, FCapSteer, FAlloc, FFree, FStandby, FReclaim:
		return isa.SyncType(e.Arg).String()
	default:
		if n, ok := argName(e.Kind, e.Arg); ok {
			return n
		}
		if e.Arg != 0 {
			return fmt.Sprintf("arg=%d", e.Arg)
		}
		return ""
	}
}

func (e FlightEvent) String() string {
	return fmt.Sprintf("%10d  tile %-2d %-9s core %-3d %#10x  %s",
		e.At, e.Tile, e.Kind, e.Core, uint64(e.Addr), e.Detail())
}

// flightEventJSON is the wire form of one event (kind by name, arg decoded).
type flightEventJSON struct {
	At     uint64 `json:"at"`
	Kind   string `json:"kind"`
	Tile   int16  `json:"tile"`
	Core   int16  `json:"core"`
	Addr   uint64 `json:"addr,omitempty"`
	Arg    uint32 `json:"arg,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// MarshalJSON renders the event with its kind named and its Arg decoded.
func (e FlightEvent) MarshalJSON() ([]byte, error) {
	return json.Marshal(flightEventJSON{
		At: uint64(e.At), Kind: e.Kind.String(), Tile: e.Tile, Core: e.Core,
		Addr: uint64(e.Addr), Arg: e.Arg, Detail: e.Detail(),
	})
}

// UnmarshalJSON is the inverse of MarshalJSON (the decoded Detail is
// regenerated, not read back).
func (e *FlightEvent) UnmarshalJSON(b []byte) error {
	var j flightEventJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	kind, ok := flightKindByName[j.Kind]
	if !ok {
		return fmt.Errorf("obs: unknown flight event kind %q", j.Kind)
	}
	*e = FlightEvent{
		At: sim.Time(j.At), Kind: kind, Tile: j.Tile, Core: j.Core,
		Addr: memory.Addr(j.Addr), Arg: j.Arg,
	}
	return nil
}

// TraceEvent converts the compact record into the trace package's richer
// event form, so flight dumps render through the existing text and
// Chrome-trace writers (cmd/misar-trace -from-flight).
func (e FlightEvent) TraceEvent() trace.Event {
	var kind trace.Kind
	switch e.Kind {
	case FMsaReq:
		kind = trace.SyncReq
	case FMsaResp:
		kind = trace.SyncResp
	case FMsaMsg:
		kind = trace.MsaInternal
	case FSteer, FCapSteer:
		kind = trace.Steer
	case FAlloc:
		kind = trace.EntryAlloc
	case FFree:
		kind = trace.EntryFree
	case FStandby:
		kind = trace.EntryStand
	case FReclaim:
		kind = trace.EntryRecl
	case FGrant:
		kind = trace.Grant
	case FRevoke:
		kind = trace.Revoke
	case FSilent:
		kind = trace.Silent
	default:
		kind = trace.Kind(e.Kind.String())
	}
	return trace.Event{
		At: e.At, Tile: int(e.Tile), Kind: kind,
		Addr: e.Addr, Core: int(e.Core), Detail: e.Detail(),
	}
}

// TraceEvents converts a dump slice (see FlightEvent.TraceEvent).
func TraceEvents(events []FlightEvent) []trace.Event {
	out := make([]trace.Event, len(events))
	for i, e := range events {
		out[i] = e.TraceEvent()
	}
	return out
}

// DefaultFlightCapacity is the per-machine ring size: large enough to span
// the window between a fault and the watchdog tripping (tens of thousands of
// simulated cycles of sync traffic), small enough that every machine carries
// one without thought (~128 KiB).
const DefaultFlightCapacity = 4096

// FlightRecorder is a fixed-size ring of the most recent FlightEvents. It is
// single-writer by construction — the simulator's event loop is
// single-threaded — so Record is one bounds-checked store and two integer
// updates: no locks, no allocations, nothing on the hot path that can grow.
// A nil *FlightRecorder records nothing, so call sites never branch beyond
// the receiver check.
//
// Readers (error dumps, the /flight endpoint) must only call Events or
// Snapshot after the simulation has stopped; the recorder is not a
// concurrent structure, it is a crash recorder.
type FlightRecorder struct {
	ring  []FlightEvent
	next  int
	total uint64 // events ever recorded (total - len(ring) were overwritten)
}

// NewFlightRecorder builds a recorder holding the last capacity events;
// capacity < 1 selects DefaultFlightCapacity.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{ring: make([]FlightEvent, 0, capacity)}
}

// Record appends one event, overwriting the oldest when full. Safe on a nil
// receiver. Zero allocations.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	f.total++
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ev)
		return
	}
	f.ring[f.next] = ev
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
	}
}

// Len reports how many events are retained.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Total reports how many events were ever recorded (Total - Len were lost
// to ring overwrites).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.total
}

// Events returns the retained events oldest-first. The slice is a copy; the
// recorder can keep running (though see the type docs on concurrency).
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil || len(f.ring) == 0 {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.ring))
	if len(f.ring) == cap(f.ring) {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	} else {
		out = append(out, f.ring...)
	}
	return out
}

// FlightDumpSchema versions the serialized FlightDump layout.
const FlightDumpSchema = "misar-flight/v1"

// FlightDump is the serializable snapshot of a recorder, as returned by the
// job server's /flight endpoint and consumed by misar-trace -from-flight.
type FlightDump struct {
	Schema string        `json:"schema"`
	Job    string        `json:"job,omitempty"`   // serving job ID, when known
	Label  string        `json:"label,omitempty"` // experiment label
	Trace  string        `json:"trace,omitempty"` // serving trace ID
	Total  uint64        `json:"total"`           // events ever recorded
	Events []FlightEvent `json:"events"`
}

// Snapshot builds a FlightDump of the recorder's current contents.
func (f *FlightRecorder) Snapshot() FlightDump {
	return FlightDump{Schema: FlightDumpSchema, Total: f.Total(), Events: f.Events()}
}
