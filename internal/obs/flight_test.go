package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"misar/internal/isa"
	"misar/internal/sim"
	"misar/internal/trace"
)

func at(i int) sim.Time { return sim.Time(i) }

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(FlightEvent{At: at(i), Kind: FMsaReq, Tile: int16(i)})
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}
	evs := f.Events()
	for i, ev := range evs {
		if want := at(6 + i); ev.At != want {
			t.Errorf("event %d at cycle %d, want %d (oldest-first after wrap)", i, ev.At, want)
		}
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(FlightEvent{At: 1})
	f.Record(FlightEvent{At: 2})
	evs := f.Events()
	if len(evs) != 2 || evs[0].At != 1 || evs[1].At != 2 {
		t.Fatalf("partial fill events = %+v", evs)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEvent{}) // must not panic
	if f.Len() != 0 || f.Total() != 0 || f.Events() != nil {
		t.Fatal("nil recorder must be inert")
	}
}

func TestFlightRecordZeroAllocs(t *testing.T) {
	f := NewFlightRecorder(64)
	ev := FlightEvent{At: 3, Kind: FMsaReq, Tile: 1, Core: 2, Addr: 0x40, Arg: uint32(isa.OpLock)}
	allocs := testing.AllocsPerRun(1000, func() { f.Record(ev) })
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", allocs)
	}
}

func TestFlightEventJSONRoundTrip(t *testing.T) {
	in := []FlightEvent{
		{At: 100, Kind: FMsaReq, Tile: 3, Core: 7, Addr: 0x1000040, Arg: uint32(isa.OpLock)},
		{At: 150, Kind: FMsaResp, Tile: 3, Core: 7, Addr: 0x1000040,
			Arg: uint32(isa.OpLock)<<8 | uint32(isa.Fail)},
		{At: 160, Kind: FSteer, Tile: 3, Core: -1, Addr: 0x1000040, Arg: uint32(isa.TypeLock)},
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []FlightEvent
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost events: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("event %d: %+v != %+v", i, in[i], out[i])
		}
	}
	if !strings.Contains(string(blob), `"kind":"msa-resp"`) {
		t.Errorf("marshalled form should name kinds: %s", blob)
	}
}

func TestFlightEventDetail(t *testing.T) {
	resp := FlightEvent{Kind: FMsaResp, Arg: uint32(isa.OpLock)<<8 | uint32(isa.Fail)}
	if d := resp.Detail(); !strings.Contains(d, "LOCK") || !strings.Contains(d, "FAIL") {
		t.Errorf("resp detail %q should carry op and result", d)
	}
	RegisterArgNames(FCoh, []string{"GetS", "GetX"})
	if d := (FlightEvent{Kind: FCoh, Arg: 1}).Detail(); d != "GetX" {
		t.Errorf("registered arg name not used: %q", d)
	}
	if d := (FlightEvent{Kind: FCoh, Arg: 99}).Detail(); d != "arg=99" {
		t.Errorf("out-of-range arg should render numerically, got %q", d)
	}
}

func TestFlightTraceEventConversion(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(FlightEvent{At: 10, Kind: FMsaReq, Tile: 2, Core: 5, Addr: 0x40, Arg: uint32(isa.OpBarrier)})
	f.Record(FlightEvent{At: 20, Kind: FGrant, Tile: 2, Core: 5, Addr: 0x40})
	evs := TraceEvents(f.Events())
	if evs[0].Kind != trace.SyncReq || evs[1].Kind != trace.Grant {
		t.Fatalf("converted kinds = %v, %v", evs[0].Kind, evs[1].Kind)
	}
	if evs[0].Tile != 2 || evs[0].Core != 5 || evs[0].Addr != 0x40 {
		t.Errorf("converted fields lost: %+v", evs[0])
	}
	if !strings.Contains(evs[0].Detail, "BARRIER") {
		t.Errorf("detail %q should name the op", evs[0].Detail)
	}
}

func TestFlightDumpSnapshot(t *testing.T) {
	f := NewFlightRecorder(2)
	for i := 0; i < 5; i++ {
		f.Record(FlightEvent{At: at(i)})
	}
	d := f.Snapshot()
	if d.Schema != FlightDumpSchema || d.Total != 5 || len(d.Events) != 2 {
		t.Fatalf("snapshot = %+v", d)
	}
}

