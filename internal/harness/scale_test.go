package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestScalePointDeterministic pins the cycle-accuracy contract of the scale
// workload: the simulated end cycle and event count of one (tiles, shards)
// point are pure functions of the configuration, independent of host timing
// and worker interleaving. Wall-clock is the only nondeterministic column.
func TestScalePointDeterministic(t *testing.T) {
	for _, shards := range []int{1, 4} {
		end1, fired1, _, ok, err := scalePoint(64, shards)
		if err != nil || !ok {
			t.Fatalf("scalePoint(64, %d): ok=%v err=%v", shards, ok, err)
		}
		end2, fired2, _, _, err := scalePoint(64, shards)
		if err != nil {
			t.Fatal(err)
		}
		if end1 != end2 || fired1 != fired2 {
			t.Fatalf("shards=%d nondeterministic: end %d vs %d, fired %d vs %d",
				shards, end1, end2, fired1, fired2)
		}
	}
}

// TestScaleSweepBeyond64Tiles is the scaling proof the sharded kernel PR
// exists for: the machine must simulate past the former 64-tile bitvector
// cap. One 256-tile sweep point per shard count, including the serial
// kernel, must complete and tabulate.
func TestScaleSweepBeyond64Tiles(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 256-tile machine at four shard counts")
	}
	tbl, err := ScaleSweep(Options{Tiles: []int{256}})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	tbl.Render(&b)
	out := b.String()
	for _, row := range []string{"256c/k1", "256c/k2", "256c/k4", "256c/k8"} {
		if !strings.Contains(out, row) {
			t.Fatalf("sweep output missing row %q:\n%s", row, out)
		}
	}
}

// TestScaleSweepSkipsIncompatibleShardCounts: a mesh whose height no shard
// count beyond 1 divides (16 tiles = 4x4 rows only splits 2 and 4 ways, so
// k8 must vanish, not fail).
func TestScaleSweepSkipsIncompatibleShardCounts(t *testing.T) {
	tbl, err := ScaleSweep(Options{Tiles: []int{16}})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	tbl.Render(&b)
	out := b.String()
	if !strings.Contains(out, "16c/k4") {
		t.Fatalf("missing compatible row 16c/k4:\n%s", out)
	}
	if strings.Contains(out, "16c/k8") {
		t.Fatalf("16c/k8 should be skipped (4x4 mesh has no 8-way row split):\n%s", out)
	}
}
