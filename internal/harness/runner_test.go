package harness

import (
	"strings"
	"sync"
	"testing"

	"misar/internal/machine"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

// These tests are the Runner's concurrency proof obligations and are
// designed to run under `go test -race` (CI does): an oversubscribed pool,
// many goroutines hammering one cache key, the progress callback under
// contention, and panic containment.

// TestRunnerOversubscribedPool drives a 32-worker pool with only three
// distinct experiments, submitted repeatedly from 16 goroutines each —
// maximum contention on the memo cache with most workers idle.
func TestRunnerOversubscribedPool(t *testing.T) {
	r := NewRunner(32)
	cfg := machine.MSAOMU(4, 2)
	kinds := []struct {
		op string
		fn MicroFn
	}{
		{"LockAcquire", workload.MicroLockAcquire},
		{"LockHandoff", workload.MicroLockHandoff},
		{"CondSignal", workload.MicroCondSignal},
	}
	const resubmits = 16
	results := make([][]workload.MicroResult, len(kinds))
	for i := range results {
		results[i] = make([]workload.MicroResult, resubmits)
	}
	var wg sync.WaitGroup
	for ki, k := range kinds {
		for j := 0; j < resubmits; j++ {
			ki, k, j := ki, k, j
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := r.Micro(k.op, k.fn, cfg, syncrt.HWLib()).Micro()
				if err != nil {
					t.Errorf("%s: %v", k.op, err)
					return
				}
				results[ki][j] = res
			}()
		}
	}
	wg.Wait()
	for ki, k := range kinds {
		for j := 1; j < resubmits; j++ {
			if results[ki][j] != results[ki][0] {
				t.Errorf("%s: submission %d saw %+v, submission 0 saw %+v",
					k.op, j, results[ki][j], results[ki][0])
			}
		}
	}
	st := r.Stats()
	if st.Submitted != len(kinds)*resubmits {
		t.Errorf("submitted = %d, want %d", st.Submitted, len(kinds)*resubmits)
	}
	if st.Unique != len(kinds) {
		t.Errorf("unique = %d, want %d: every resubmission must hit the cache", st.Unique, len(kinds))
	}
	if st.Done != st.Unique {
		t.Errorf("done = %d, want %d", st.Done, st.Unique)
	}
}

// TestRunnerProgressUnderContention checks the progress callback: exactly
// one event per unique run, with Done strictly increasing 1..N, while
// submissions race from many goroutines.
func TestRunnerProgressUnderContention(t *testing.T) {
	r := NewRunner(8)
	var events []ProgressEvent
	r.SetProgress(func(ev ProgressEvent) { events = append(events, ev) })

	cfg4 := machine.MSAOMU(4, 2)
	cfg8 := machine.MSAOMU(8, 2)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := cfg4
			if i%2 == 0 {
				cfg = cfg8
			}
			if _, err := r.Micro("LockAcquire", workload.MicroLockAcquire, cfg, syncrt.HWLib()).Micro(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Callbacks are serialized under the Runner's lock, but the final
	// event may still be in flight after the last Wait returns (Wait
	// unblocks on close(done), which precedes the callback); Stats takes
	// the same lock, so one call synchronizes with any straggler.
	for r.Stats().Done < 2 {
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("progress events = %d, want 2 unique runs", len(events))
	}
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Errorf("event %d: Done = %d, want %d", i, ev.Done, i+1)
		}
		if ev.Err != nil {
			t.Errorf("event %d: unexpected error %v", i, ev.Err)
		}
		if !strings.Contains(ev.Label, "LockAcquire") {
			t.Errorf("event %d: label %q", i, ev.Label)
		}
	}
}

// TestRunnerPanicBecomesError: a panicking experiment must surface as an
// error on every sharer's Wait, not crash the process.
func TestRunnerPanicBecomesError(t *testing.T) {
	r := NewRunner(2)
	boom := func(machine.Config, *syncrt.Lib) workload.MicroResult {
		panic("boom")
	}
	first := r.Micro("boom", boom, machine.MSAOMU(4, 2), syncrt.HWLib())
	second := r.Micro("boom", boom, machine.MSAOMU(4, 2), syncrt.HWLib())
	for _, run := range []*Run{first, second} {
		if _, err := run.Micro(); err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("want panic converted to error, got %v", err)
		}
	}
	// The pool must still be usable after a panic (the worker slot was
	// released).
	if _, err := r.Micro("LockAcquire", workload.MicroLockAcquire, machine.MSAOMU(4, 2), syncrt.HWLib()).Micro(); err != nil {
		t.Fatalf("runner unusable after panic: %v", err)
	}
}

// TestRunnerSerialPoolStillConcurrentSafe: Workers(1) with concurrent
// submitters — submissions must not deadlock waiting for each other's
// slot, since submit never blocks the caller.
func TestRunnerSerialPoolStillConcurrentSafe(t *testing.T) {
	r := NewRunner(1)
	if r.Workers() != 1 {
		t.Fatalf("Workers = %d", r.Workers())
	}
	cfg := machine.MSAOMU(4, 2)
	var wg sync.WaitGroup
	ops := []struct {
		op string
		fn MicroFn
	}{
		{"LockAcquire", workload.MicroLockAcquire},
		{"BarrierHandoff", workload.MicroBarrierHandoff},
	}
	for i := 0; i < 8; i++ {
		op := ops[i%len(ops)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Micro(op.op, op.fn, cfg, syncrt.HWLib()).Micro(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if st := r.Stats(); st.Unique != len(ops) {
		t.Errorf("unique = %d, want %d", st.Unique, len(ops))
	}
}

// TestRunnerWorkersFloor: worker counts below 1 clamp to a serial pool.
func TestRunnerWorkersFloor(t *testing.T) {
	for _, n := range []int{-3, 0, 1} {
		if got := NewRunner(n).Workers(); got != 1 {
			t.Errorf("NewRunner(%d).Workers() = %d, want 1", n, got)
		}
	}
}
