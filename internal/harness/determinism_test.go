package harness

import (
	"bytes"
	"testing"

	"misar/internal/machine"
	"misar/internal/stats"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

// TestRunnerDeterminism is the Runner's core proof obligation: parallel
// execution must be an implementation detail. Each QuickOptions() app runs
// on MSA/OMU-2 twice serially and once through an 8-worker Runner; all
// three must agree on the final cycle count and coverage, and a table
// rendered from the Runner's results must be byte-identical to one
// rendered from the serial results.
func TestRunnerDeterminism(t *testing.T) {
	o := QuickOptions()
	tiles := o.Tiles[0]
	cfg := machine.MSAOMU(tiles, 2)

	r := NewRunner(8)
	runs := make(map[string]*Run, len(o.Apps))
	apps := make(map[string]workload.App, len(o.Apps))
	for _, name := range o.Apps {
		app, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown app %q", name)
		}
		apps[name] = app
		runs[name] = r.App(app, cfg, syncrt.HWLib())
	}

	serial := stats.NewTable("determinism", "Cycles", "Coverage %")
	viaRunner := stats.NewTable("determinism", "Cycles", "Coverage %")
	for _, name := range o.Apps {
		m1, c1, err := workload.Run(apps[name], cfg, syncrt.HWLib())
		if err != nil {
			t.Fatalf("%s serial run 1: %v", name, err)
		}
		m2, c2, err := workload.Run(apps[name], cfg, syncrt.HWLib())
		if err != nil {
			t.Fatalf("%s serial run 2: %v", name, err)
		}
		if c1 != c2 {
			t.Errorf("%s: serial runs disagree: %d vs %d cycles", name, c1, c2)
		}
		if m1.Coverage() != m2.Coverage() {
			t.Errorf("%s: serial coverage disagrees: %v vs %v", name, m1.Coverage(), m2.Coverage())
		}
		mp, cp, err := runs[name].App()
		if err != nil {
			t.Fatalf("%s via Runner: %v", name, err)
		}
		if cp != c1 {
			t.Errorf("%s: Runner cycles %d != serial %d", name, cp, c1)
		}
		if mp.Coverage() != m1.Coverage() {
			t.Errorf("%s: Runner coverage %v != serial %v", name, mp.Coverage(), m1.Coverage())
		}
		serial.AddRow(name, float64(c1), m1.Coverage()*100)
		viaRunner.AddRow(name, float64(cp), mp.Coverage()*100)
	}

	var bs, bp bytes.Buffer
	serial.Render(&bs)
	viaRunner.Render(&bp)
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Errorf("rendered tables differ:\nserial:\n%s\nrunner:\n%s", bs.String(), bp.String())
	}
}

// TestFig6SerialParallelIdentical renders the same figure serially and
// through an oversubscribed pool; the output must be byte-identical —
// same rows, same order, same formatting.
func TestFig6SerialParallelIdentical(t *testing.T) {
	o := QuickOptions()
	serial, err := NewRunner(1).Fig6(o)
	if err != nil {
		t.Fatalf("serial Fig6: %v", err)
	}
	parallel, err := NewRunner(8).Fig6(o)
	if err != nil {
		t.Fatalf("parallel Fig6: %v", err)
	}
	var bs, bp bytes.Buffer
	serial.Render(&bs)
	parallel.Render(&bp)
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Errorf("serial and parallel Fig6 renderings differ:\nserial:\n%s\nparallel:\n%s",
			bs.String(), bp.String())
	}
}

// TestHeadlineSerialParallelIdentical repeats the byte-identity check on
// the Headline artifact, whose four configurations per app maximize
// in-flight interleaving within one figure.
func TestHeadlineSerialParallelIdentical(t *testing.T) {
	o := Options{Tiles: []int{8}, Apps: []string{"fluidanimate", "streamcluster"}}
	serial, err := NewRunner(1).Headline(o)
	if err != nil {
		t.Fatalf("serial Headline: %v", err)
	}
	parallel, err := NewRunner(8).Headline(o)
	if err != nil {
		t.Fatalf("parallel Headline: %v", err)
	}
	var bs, bp bytes.Buffer
	serial.Render(&bs)
	parallel.Render(&bp)
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Errorf("serial and parallel Headline renderings differ:\nserial:\n%s\nparallel:\n%s",
			bs.String(), bp.String())
	}
}

// TestMemoizedRunIdenticalToFresh: a memo hit must return exactly the
// result a fresh simulation would have produced.
func TestMemoizedRunIdenticalToFresh(t *testing.T) {
	app, ok := workload.ByName("fluidanimate")
	if !ok {
		t.Fatal("fluidanimate missing")
	}
	cfg := machine.MSAOMU(8, 2)
	r := NewRunner(4)
	first := r.App(app, cfg, syncrt.HWLib())
	second := r.App(app, cfg, syncrt.HWLib())
	if first != second {
		t.Fatal("identical submissions should share one *Run")
	}
	_, c1, err := first.App()
	if err != nil {
		t.Fatal(err)
	}
	_, fresh, err := workload.Run(app, cfg, syncrt.HWLib())
	if err != nil {
		t.Fatal(err)
	}
	if c1 != fresh {
		t.Errorf("memoized cycles %d != fresh simulation %d", c1, fresh)
	}
	if st := r.Stats(); st.Submitted != 2 || st.Unique != 1 {
		t.Errorf("stats = %+v, want 2 submissions / 1 unique", st)
	}
	// Distinct configs must not alias even when only a nested field
	// differs (the sweeps mutate fields without renaming).
	tweaked := cfg
	tweaked.MSA.OMUCounters++
	if r.App(app, tweaked, syncrt.HWLib()) == first {
		t.Error("config differing only in OMUCounters aliased in the cache")
	}
}
