package harness

import (
	"strconv"
	"strings"
	"testing"

	"misar/internal/stats"
)

func quick() Options { return QuickOptions() }

// runFig executes a figure, failing the test on error.
func runFig(t *testing.T, fig func(Options) (*stats.Table, error), o Options) *stats.Table {
	t.Helper()
	tab, err := fig(o)
	if err != nil {
		t.Fatalf("figure failed: %v", err)
	}
	return tab
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", cell, err)
	}
	return v
}

func TestTable1Static(t *testing.T) {
	tab := Table1()
	if tab.Rows() != 13 {
		t.Fatalf("Table 1 rows = %d, want 13", tab.Rows())
	}
	cells, ok := tab.Lookup("MSA/OMU (this repo)")
	if !ok {
		t.Fatal("MSA/OMU row missing")
	}
	if cells[0] != "Lock, Barrier, CondVar" || cells[4] != "HW" {
		t.Fatalf("MSA/OMU row wrong: %v", cells)
	}
}

func TestFig5Quick(t *testing.T) {
	tab := runFig(t, Fig5, Options{Tiles: []int{8}})
	if tab.Rows() != 5 {
		t.Fatalf("rows = %d, want 5", tab.Rows())
	}
	// Contended handoff: MSA/OMU-2 (col 2) beats Pthread (col 0) and
	// Spinlock (col 4).
	for r := 0; r < tab.Rows(); r++ {
		if !strings.HasPrefix(tab.RowLabel(r), "LockHandoff") {
			continue
		}
		msa := cellFloat(t, tab.Cell(r, 2))
		pt := cellFloat(t, tab.Cell(r, 0))
		spin := cellFloat(t, tab.Cell(r, 4))
		if msa >= pt || msa >= spin {
			t.Errorf("handoff: msa=%.0f pt=%.0f spin=%.0f", msa, pt, spin)
		}
	}
}

func TestFig6Quick(t *testing.T) {
	tab := runFig(t, Fig6, quick())
	cells, ok := tab.Lookup("GeoMean/8c")
	if !ok {
		t.Fatal("GeoMean row missing")
	}
	// Columns: MSA-0, MCS-Tour, MSA/OMU-1, MSA/OMU-2, MSA-inf, Ideal.
	msa0 := cellFloat(t, cells[0])
	omu2 := cellFloat(t, cells[3])
	inf := cellFloat(t, cells[4])
	ideal := cellFloat(t, cells[5])
	if omu2 <= 1.0 {
		t.Errorf("MSA/OMU-2 geomean %.2f should show speedup on sync-heavy subset", omu2)
	}
	if msa0 < 0.90 || msa0 > 1.10 {
		t.Errorf("MSA-0 geomean %.2f should be close to baseline", msa0)
	}
	if ideal < inf*0.95 {
		t.Errorf("Ideal (%.2f) should be at least MSA-inf (%.2f)", ideal, inf)
	}
}

func TestFig6UnknownAppIsError(t *testing.T) {
	_, err := Fig6(Options{Tiles: []int{8}, Apps: []string{"no-such-app"}})
	if err == nil || !strings.Contains(err.Error(), "no-such-app") {
		t.Fatalf("want unknown-app error, got %v", err)
	}
}

func TestFig7Quick(t *testing.T) {
	tab := runFig(t, Fig7, quick())
	for r := 0; r < tab.Rows(); r++ {
		without := cellFloat(t, tab.Cell(r, 0))
		with := cellFloat(t, tab.Cell(r, 1))
		if with <= without {
			t.Errorf("%s: coverage with OMU (%.1f) should beat without (%.1f)",
				tab.RowLabel(r), with, without)
		}
		if with < 50 {
			t.Errorf("%s: coverage with OMU only %.1f%%", tab.RowLabel(r), with)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	tab := runFig(t, Fig8, Options{Tiles: []int{8}})
	with := cellFloat(t, tab.Cell(0, 0))
	without := cellFloat(t, tab.Cell(0, 1))
	if with <= without {
		t.Errorf("HWSync optimization should help fluidanimate: with=%.3f without=%.3f", with, without)
	}
}

func TestFig9Quick(t *testing.T) {
	tab := runFig(t, Fig9, quick())
	// streamcluster (barrier app): lock-only loses the win.
	cells, ok := tab.Lookup("streamcluster")
	if !ok {
		t.Fatal("streamcluster row missing")
	}
	full := cellFloat(t, cells[0])
	lockOnly := cellFloat(t, cells[1])
	barrierOnly := cellFloat(t, cells[2])
	if lockOnly >= full*0.98 {
		t.Errorf("streamcluster: lock-only (%.2f) should lose vs full (%.2f)", lockOnly, full)
	}
	if barrierOnly < full*0.9 {
		t.Errorf("streamcluster: barrier-only (%.2f) should retain most of full (%.2f)", barrierOnly, full)
	}
}

func TestAblationsQuick(t *testing.T) {
	o := Options{Tiles: []int{8}}
	if tab := runFig(t, OMUSweep, o); tab.Rows() != 5 {
		t.Error("OMU sweep rows")
	}
	if tab := runFig(t, EntrySweep, o); tab.Rows() != 5 {
		t.Error("entry sweep rows")
	}
	ftab := runFig(t, Fairness, o)
	min := cellFloat(t, ftab.Cell(0, 0))
	max := cellFloat(t, ftab.Cell(0, 1))
	if max > min*1.5+8 {
		t.Errorf("NBTC fairness poor: min=%.0f max=%.0f", min, max)
	}
	stab := runFig(t, SuspendStress, o)
	for r := 0; r < stab.Rows(); r++ {
		if stab.Cell(r, 2) != "yes" {
			t.Errorf("%s: counter check failed", stab.RowLabel(r))
		}
	}
	// Disturbance must trigger aborts.
	if stab.Cell(1, 1) == "0" {
		t.Error("suspend stress recorded no aborts")
	}
}

func TestHeadlineQuick(t *testing.T) {
	tab := runFig(t, Headline, quick())
	if tab.Rows() != 4 {
		t.Fatal("headline rows")
	}
	speedup := cellFloat(t, tab.Cell(0, 0))
	coverage := cellFloat(t, tab.Cell(1, 0))
	if speedup <= 1.0 {
		t.Errorf("headline speedup %.2f <= 1 on sync-heavy subset", speedup)
	}
	if coverage < 60 {
		t.Errorf("headline coverage %.1f%% too low", coverage)
	}
}

// TestSharedRunnerMemoizesAcrossFigures drives Fig8 and Headline through
// one Runner: the pthread baseline and the MSA/OMU-2 run for fluidanimate
// appear in both, so the shared cache must record fewer unique simulations
// than submissions.
func TestSharedRunnerMemoizesAcrossFigures(t *testing.T) {
	o := Options{Tiles: []int{8}, Apps: []string{"fluidanimate"}}
	r := NewRunner(4)
	runFig(t, r.Fig8, o)
	runFig(t, r.Headline, o)
	st := r.Stats()
	// Fig8 submits 3 runs, Headline 4; baseline and MSA/OMU-2 are shared.
	if st.Submitted != 7 {
		t.Errorf("submitted = %d, want 7", st.Submitted)
	}
	if st.Unique != 5 {
		t.Errorf("unique = %d, want 5 (baseline and MSA/OMU-2 shared)", st.Unique)
	}
	if st.Done != st.Unique {
		t.Errorf("done = %d, want %d", st.Done, st.Unique)
	}
}
