package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"misar/internal/stats"
	"misar/internal/store"
)

// quickTables renders a representative figure set (micros, speedups,
// coverage) through one runner and returns the concatenated bytes.
func quickTables(t *testing.T, r *Runner) string {
	t.Helper()
	o := QuickOptions()
	o.Apps = o.Apps[:2] // keep the warm/cold double run cheap
	var out strings.Builder
	for _, fig := range []func(Options) (*stats.Table, error){r.Fig5, r.Fig6, r.Fig7} {
		tb, err := fig(o)
		if err != nil {
			t.Fatal(err)
		}
		tb.Render(&out)
		out.WriteString("\n")
	}
	return out.String()
}

// TestStoreWarmMatchesCold is the acceptance criterion in miniature: a cold
// runner populates the store, a second runner (a "restarted process") must
// render byte-identical tables from the store alone, executing zero
// simulations.
func TestStoreWarmMatchesCold(t *testing.T) {
	dir := t.TempDir()

	cold, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(4)
	r1.SetStore(cold)
	coldTables := quickTables(t, r1)
	st1 := r1.Stats()
	if st1.Executed != st1.Unique || st1.StoreHits != 0 {
		t.Fatalf("cold run stats: %+v", st1)
	}
	if cold.Len() != st1.Unique {
		t.Fatalf("store holds %d records after %d unique runs", cold.Len(), st1.Unique)
	}

	warm, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(4)
	r2.SetStore(warm)
	warmTables := quickTables(t, r2)
	st2 := r2.Stats()
	if st2.Executed != 0 {
		t.Errorf("warm run executed %d simulations, want 0", st2.Executed)
	}
	if st2.StoreHits != st2.Unique {
		t.Errorf("warm run: %d store hits for %d unique runs", st2.StoreHits, st2.Unique)
	}
	if warmTables != coldTables {
		t.Errorf("warm tables differ from cold:\ncold:\n%s\nwarm:\n%s", coldTables, warmTables)
	}
}

// A corrupted record must silently fall back to re-execution, and the
// tables must still come out identical.
func TestStoreCorruptRecordReexecutes(t *testing.T) {
	dir := t.TempDir()
	cold, _ := store.Open(dir)
	r1 := NewRunner(4)
	r1.SetStore(cold)
	coldTables := quickTables(t, r1)

	// Flip a byte in every record: the warm run must re-execute everything.
	n := 0
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".rec" {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0x55
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		n++
		return nil
	})
	if n == 0 {
		t.Fatal("no records written by cold run")
	}

	warm, _ := store.Open(dir)
	r2 := NewRunner(4)
	r2.SetStore(warm)
	warmTables := quickTables(t, r2)
	st2 := r2.Stats()
	if st2.StoreHits != 0 || st2.Executed != st2.Unique {
		t.Errorf("corrupt store: stats %+v, want all re-executed", st2)
	}
	if s := warm.Stats(); s.Evictions == 0 {
		t.Errorf("no evictions recorded: %+v", s)
	}
	if warmTables != coldTables {
		t.Errorf("tables diverged after corruption fallback")
	}
}

// Metered runs round-trip their reports through the store: a warm metered
// run must produce the same report JSON with zero executions.
func TestStoreRoundTripsReports(t *testing.T) {
	dir := t.TempDir()
	run := func() ([]byte, RunnerStats) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(2)
		r.SetStore(st)
		r.EnableMetrics()
		o := QuickOptions()
		o.Tiles = []int{4}
		o.Apps = o.Apps[:1]
		if _, err := r.Fig6(o); err != nil {
			t.Fatal(err)
		}
		reps := r.Reports()
		if len(reps) == 0 {
			t.Fatal("no reports from metered run")
		}
		var blob []byte
		for _, rep := range reps {
			b, err := rep.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			blob = append(blob, b...)
		}
		return blob, r.Stats()
	}
	coldBlob, coldStats := run()
	warmBlob, warmStats := run()
	if warmStats.Executed != 0 {
		t.Errorf("warm metered run executed %d sims (cold %+v, warm %+v)",
			warmStats.Executed, coldStats, warmStats)
	}
	if string(coldBlob) != string(warmBlob) {
		t.Errorf("metered reports diverged between cold and warm runs")
	}
}
