package harness

import (
	"fmt"

	"misar/internal/machine"
	"misar/internal/stats"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

// tmSweepLevels are the contention points of the three-way comparison: the
// permille of critical sections that hit the shared hot set (see
// workload.TMSweepApp). Low contention is TM's best case (conflict-free
// sections commit without ever serializing); high contention is its worst
// (abort/retry burns work a lock would simply queue).
var tmSweepLevels = []struct {
	name        string
	hotPermille int
}{
	{"low", 50},
	{"med", 300},
	{"high", 800},
}

// TMSweep runs the package-level three-way comparison (see Runner.TMSweep).
func TMSweep(o Options) (*stats.Table, error) { return NewRunner(o.Parallel).TMSweep(o) }

// TMSweep compares the three synchronization backends — pthread-style
// software locks, the MSA hardware path, and software transactional memory —
// on the contention-parameterized sweep workload, reporting speedup over the
// pthread baseline plus the TM backend's abort/commit ratio at each point.
// The TM runs are always metered (the ratio comes from the tm.* counters);
// metering never changes simulated timing, so the speedup columns are
// comparable with the unmetered baselines.
func (r *Runner) TMSweep(o Options) (*stats.Table, error) {
	t := stats.NewTable("TM: three-way backend comparison",
		"Pthread (cycles)", "MSA/OMU-2 x", "TM x", "TM aborts/commit")
	type pointRuns struct {
		label          string
		base, msa, tm_ *Run
	}
	var points []pointRuns
	for _, lvl := range tmSweepLevels {
		app := workload.TMSweepApp(lvl.hotPermille)
		for _, tiles := range o.Tiles {
			tmc := tmCfg(tiles)
			tmc.Metrics = true
			points = append(points, pointRuns{
				label: fmt.Sprintf("%s/%dc", lvl.name, tiles),
				base:  r.App(app, baselineCfg(tiles), syncrt.PthreadLib()),
				msa:   r.App(app, machine.MSAOMU(tiles, 2), syncrt.HWLib()),
				tm_:   r.App(app, tmc, syncrt.TMLib()),
			})
		}
	}
	for _, p := range points {
		base, err := p.base.Result()
		if err != nil {
			return nil, err
		}
		msa, err := p.msa.Result()
		if err != nil {
			return nil, err
		}
		tmRes, err := p.tm_.Result()
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if rep := tmRes.Report; rep != nil {
			commits := rep.Metrics.Counters["tm.commits"]
			aborts := rep.Metrics.Counters["tm.aborts"]
			if commits > 0 {
				ratio = float64(aborts) / float64(commits)
			}
		}
		t.AddRow(p.label,
			float64(base.Cycles),
			float64(base.Cycles)/float64(msa.Cycles),
			float64(base.Cycles)/float64(tmRes.Cycles),
			ratio)
	}
	return t, nil
}
