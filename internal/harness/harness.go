// Package harness defines one runnable experiment per table and figure of
// the paper's evaluation (§6), plus the ablations listed in DESIGN.md. Each
// experiment returns a stats.Table whose rows/series match what the paper
// reports; cmd/misar-fig renders them and bench_test.go wraps them in
// testing.B benchmarks.
package harness

import (
	"fmt"

	"misar/internal/cpu"
	"misar/internal/machine"
	"misar/internal/sim"
	"misar/internal/stats"
	"misar/internal/syncrt"
	"misar/internal/workload"
)

// Options scales experiments: the full paper configuration is Tiles =
// {16, 64} over the whole suite, which takes a while on one host; tests use
// smaller settings.
type Options struct {
	Tiles []int    // core counts to evaluate (paper: 16 and 64)
	Apps  []string // subset of app names; nil = full suite
}

// DefaultOptions reproduces the paper's configuration.
func DefaultOptions() Options {
	return Options{Tiles: []int{16, 64}}
}

// QuickOptions is a reduced configuration for tests and smoke runs.
func QuickOptions() Options {
	return Options{
		Tiles: []int{8},
		Apps:  []string{"radiosity", "ocean-nc", "fluidanimate", "streamcluster"},
	}
}

func (o Options) apps() []workload.App {
	suite := workload.Suite()
	if o.Apps == nil {
		return suite
	}
	var out []workload.App
	for _, name := range o.Apps {
		a, ok := workload.ByName(name)
		if !ok {
			panic(fmt.Sprintf("harness: unknown app %q", name))
		}
		out = append(out, a)
	}
	return out
}

// configEntry names a machine+library combination under evaluation.
type configEntry struct {
	name string
	cfg  func(tiles int) machine.Config
	lib  func() *syncrt.Lib
}

func baselineCfg(tiles int) machine.Config {
	c := machine.Default(tiles)
	c.Name = "pthread"
	c.CPU.Mode = cpu.ModeAlwaysFail
	return c
}

// fig6Configs is the paper's Fig. 6 series (speedup is vs the pthread
// baseline, which is run separately as the denominator).
func fig6Configs() []configEntry {
	return []configEntry{
		{"MSA-0", machine.MSA0, syncrt.HWLib},
		{"MCS-Tour", baselineCfg, syncrt.MCSTourLib},
		{"MSA/OMU-1", func(t int) machine.Config { return machine.MSAOMU(t, 1) }, syncrt.HWLib},
		{"MSA/OMU-2", func(t int) machine.Config { return machine.MSAOMU(t, 2) }, syncrt.HWLib},
		{"MSA-inf", machine.MSAInf, syncrt.HWLib},
		{"Ideal", machine.Ideal, syncrt.HWLib},
	}
}

// runApp executes one app on one configuration, returning total cycles.
func runApp(app workload.App, cfg machine.Config, lib *syncrt.Lib) (*machine.Machine, sim.Time) {
	m, cycles, err := workload.Run(app, cfg, lib)
	if err != nil {
		panic(fmt.Sprintf("harness: %s on %s: %v", app.Name, cfg.Name, err))
	}
	return m, cycles
}

// Fig5 reproduces Figure 5: raw synchronization latency (cycles, the paper
// plots it on a log scale) for five operations × five schemes × core
// counts.
func Fig5(o Options) *stats.Table {
	t := stats.NewTable("Fig5: raw latency (cycles)",
		"Pthread", "MSA-0", "MSA/OMU-2", "MCS-Tour", "Spinlock")
	type scheme struct {
		cfg func(int) machine.Config
		lib func() *syncrt.Lib
	}
	schemes := []scheme{
		{baselineCfg, syncrt.PthreadLib},
		{machine.MSA0, syncrt.HWLib},
		{func(t int) machine.Config { return machine.MSAOMU(t, 2) }, syncrt.HWLib},
		{baselineCfg, syncrt.MCSTourLib},
		{baselineCfg, syncrt.SpinLib},
	}
	kinds := []struct {
		name string
		run  func(machine.Config, *syncrt.Lib) workload.MicroResult
	}{
		{"LockAcquire", workload.MicroLockAcquire},
		{"LockHandoff", workload.MicroLockHandoff},
		{"BarrierHandoff", workload.MicroBarrierHandoff},
		{"CondSignal", workload.MicroCondSignal},
		{"CondBroadcast", workload.MicroCondBroadcast},
	}
	for _, k := range kinds {
		for _, tiles := range o.Tiles {
			cells := make([]float64, len(schemes))
			for i, s := range schemes {
				cells[i] = k.run(s.cfg(tiles), s.lib()).Cycles
			}
			t.AddRow(fmt.Sprintf("%s/%dc", k.name, tiles), cells...)
		}
	}
	return t
}

// Fig6 reproduces Figure 6: whole-application speedup over the pthread
// baseline for each configuration, per benchmark and geomean.
func Fig6(o Options) *stats.Table {
	cfgs := fig6Configs()
	cols := make([]string, len(cfgs))
	for i, c := range cfgs {
		cols[i] = c.name
	}
	t := stats.NewTable("Fig6: speedup vs pthread", cols...)
	for _, tiles := range o.Tiles {
		speedups := make([][]float64, len(cfgs))
		for _, app := range o.apps() {
			_, base := runApp(app, baselineCfg(tiles), syncrt.PthreadLib())
			cells := make([]float64, len(cfgs))
			for i, c := range cfgs {
				_, cycles := runApp(app, c.cfg(tiles), c.lib())
				cells[i] = float64(base) / float64(cycles)
				speedups[i] = append(speedups[i], cells[i])
			}
			if app.SyncSensitive {
				t.AddRow(fmt.Sprintf("%s/%dc", app.Name, tiles), cells...)
			}
		}
		geo := make([]float64, len(cfgs))
		for i := range cfgs {
			geo[i] = stats.Geomean(speedups[i])
		}
		t.AddRow(fmt.Sprintf("GeoMean/%dc", tiles), geo...)
	}
	return t
}

// Fig7 reproduces Figure 7: percentage of synchronization operations
// handled by the MSA with and without the OMU, for 1- and 2-entry slices.
func Fig7(o Options) *stats.Table {
	t := stats.NewTable("Fig7: MSA coverage (%)", "Without OMU", "With OMU")
	for _, entries := range []int{1, 2} {
		for _, tiles := range o.Tiles {
			var with, without []float64
			for _, app := range o.apps() {
				mw, _ := runApp(app, machine.MSAOMU(tiles, entries), syncrt.HWLib())
				with = append(with, mw.Coverage()*100)
				mo, _ := runApp(app, machine.WithoutOMU(machine.MSAOMU(tiles, entries)), syncrt.HWLib())
				without = append(without, mo.Coverage()*100)
			}
			t.AddRow(fmt.Sprintf("MSA-%d/%dc", entries, tiles),
				stats.Mean(without), stats.Mean(with))
		}
	}
	return t
}

// Fig8 reproduces Figure 8: fluidanimate speedup with and without the
// HWSync-bit optimization.
func Fig8(o Options) *stats.Table {
	t := stats.NewTable("Fig8: fluidanimate speedup", "With Optimization", "Without Optimization")
	app, _ := workload.ByName("fluidanimate")
	for _, tiles := range o.Tiles {
		_, base := runApp(app, baselineCfg(tiles), syncrt.PthreadLib())
		_, with := runApp(app, machine.MSAOMU(tiles, 2), syncrt.HWLib())
		_, without := runApp(app, machine.WithoutHWSync(machine.MSAOMU(tiles, 2)), syncrt.HWLib())
		t.AddRow(fmt.Sprintf("fluidanimate/%dc", tiles),
			float64(base)/float64(with), float64(base)/float64(without))
	}
	return t
}

// Fig9 reproduces Figure 9: speedup when the MSA supports only locks or
// only barriers, at the paper's 64-core point (o.Tiles[last] here).
func Fig9(o Options) *stats.Table {
	tiles := o.Tiles[len(o.Tiles)-1]
	t := stats.NewTable(fmt.Sprintf("Fig9: %dc speedup", tiles),
		"MSA/OMU-2", "MSA-LockOnly", "MSA-BarrierOnly")
	cfgs := []machine.Config{
		machine.MSAOMU(tiles, 2),
		machine.LockOnly(machine.MSAOMU(tiles, 2)),
		machine.BarrierOnly(machine.MSAOMU(tiles, 2)),
	}
	var speedups [3][]float64
	for _, app := range o.apps() {
		_, base := runApp(app, baselineCfg(tiles), syncrt.PthreadLib())
		cells := make([]float64, 3)
		for i, cfg := range cfgs {
			_, cycles := runApp(app, cfg, syncrt.HWLib())
			cells[i] = float64(base) / float64(cycles)
			speedups[i] = append(speedups[i], cells[i])
		}
		if app.SyncSensitive {
			t.AddRow(app.Name, cells...)
		}
	}
	t.AddRow("GeoMean", stats.Geomean(speedups[0][:]), stats.Geomean(speedups[1][:]), stats.Geomean(speedups[2][:]))
	return t
}

// Headline reproduces the abstract's claims: MSA/OMU-2 speedup over
// pthreads, coverage, and distance from Ideal.
func Headline(o Options) *stats.Table {
	tiles := o.Tiles[len(o.Tiles)-1]
	t := stats.NewTable(fmt.Sprintf("Headline @ %dc", tiles), "Value")
	var speedups, infIdeal, omuInf, coverage []float64
	for _, app := range o.apps() {
		_, base := runApp(app, baselineCfg(tiles), syncrt.PthreadLib())
		m, hw := runApp(app, machine.MSAOMU(tiles, 2), syncrt.HWLib())
		_, inf := runApp(app, machine.MSAInf(tiles), syncrt.HWLib())
		_, ideal := runApp(app, machine.Ideal(tiles), syncrt.HWLib())
		speedups = append(speedups, float64(base)/float64(hw))
		infIdeal = append(infIdeal, float64(inf)/float64(ideal))
		omuInf = append(omuInf, float64(hw)/float64(inf))
		coverage = append(coverage, m.Coverage()*100)
	}
	t.AddRow("GeoMean MSA/OMU-2 speedup vs pthread (paper: 1.43x)", stats.Geomean(speedups))
	t.AddRow("Mean MSA coverage % (paper: 93%)", stats.Mean(coverage))
	t.AddRow("MSA-inf slowdown vs Ideal (paper: within ~3%)", stats.Geomean(infIdeal))
	t.AddRow("MSA/OMU-2 slowdown vs MSA-inf (paper: similar)", stats.Geomean(omuInf))
	return t
}
